// End-to-end pipelined horizontal phase benchmark.
//
// Builds a generated DNA corpus with ParallelBuilder at 1/2/4/8 workers and
// emits BENCH_era.json (wall seconds, MB/s, prefetch hit rate, worker busy
// fraction) in the current directory.
//
// Methodology notes:
//  * The corpus lives in real files (PosixEnv) wrapped in LatencyEnv: at
//    laptop/CI scale the page cache hides device time entirely, so without a
//    modeled device every run degenerates to pure CPU — on a single-core CI
//    box that would make overlap unmeasurable. With per-request latency
//    charged as real sleeps, prefetching and multi-worker scheduling show up
//    as genuine wall-clock speedup, which is exactly the paper's CPU/I-O
//    overlap claim (Section 4.4). The model is NVMe-like: concurrent
//    requests do not serialize against each other.
//  * The memory budget scales with the worker count, so every run plans the
//    identical partition (same FM, same groups) and the speedup isolates
//    scheduling/overlap rather than plan differences; this is also what
//    makes the output index byte-identical across rows (asserted in
//    tests/pipeline_test.cc on small inputs). The tile-cache and
//    prefetch-ring carves come out of the retrieved-data slack (R and the
//    trie area above their floors; see era/memory_layout.h), so cached
//    and uncached rows share the plan too.
//  * Row 0 is the 1-worker run with prefetching and the tile cache disabled
//    — the unpipelined reference every speedup is relative to. The
//    1-worker prefetch-only row is the uncached reference for
//    io_amplification: the bench FAILS (exit 1) if the cached 1-worker run
//    does not come in strictly below it, which is the CI regression guard
//    for this record.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/options.h"
#include "era/parallel_builder.h"
#include "io/latency_env.h"
#include "io/posix_env.h"
#include "text/corpus.h"
#include "text/text_generator.h"

namespace era {
namespace {

using bench::ArgOr;
using bench::ScopedRemoveAll;

struct RunResult {
  unsigned workers = 0;
  bool prefetch = false;
  bool tile_cache = false;
  double wall_seconds = 0;
  double horizontal_seconds = 0;
  double vertical_seconds = 0;
  double mb_per_second = 0;
  double speedup = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;
  uint64_t prefetch_depth_hits = 0;
  double prefetch_hit_rate = 0;
  double io_amplification = 0;
  double device_read_mb = 0;
  double tile_hit_rate = 0;
  uint64_t tile_hits = 0;
  uint64_t tile_misses = 0;
  double worker_busy_fraction = 0;
  uint64_t num_groups = 0;
  uint64_t num_subtrees = 0;
};

int Main(int argc, char** argv) {
  const double text_mb = ArgOr(argc, argv, "mb", 4.0);
  const double bandwidth_mb = ArgOr(argc, argv, "bandwidth-mb", 96.0);
  const double per_core_budget_mb = ArgOr(argc, argv, "budget-mb", 8.0);
  const double buffer_kb = ArgOr(argc, argv, "buffer-kb", 256.0);
  // Pure sequential scans: at this corpus/window scale a 64 KiB+ gap skip
  // re-reads a full window per seek, which amplifies device traffic past
  // plain read-through — and read-ahead can only double-buffer scans it can
  // predict. The paper's seek optimization pays off when skips dwarf the
  // window; that regime is the figure benches' territory.
  const bool seek_opt = ArgOr(argc, argv, "seek-opt", 0.0) != 0.0;
  const uint64_t body_len = static_cast<uint64_t>(text_mb * 1024 * 1024);

  LatencyModel model;
  model.read_bytes_per_second = bandwidth_mb * 1024 * 1024;
  model.write_bytes_per_second = bandwidth_mb * 1024 * 1024;

  Env* posix = GetDefaultEnv();
  LatencyEnv env(posix, model);

  const std::string root =
      "/tmp/era_e2e_" + std::to_string(::getpid());
  std::fprintf(stderr, "corpus: %.1f MB DNA, device %.0f MB/s, work dir %s\n",
               text_mb, bandwidth_mb, root.c_str());
  Status dir_status = posix->CreateDir(root);
  if (!dir_status.ok()) {
    std::fprintf(stderr, "%s\n", dir_status.ToString().c_str());
    return 1;
  }
  ScopedRemoveAll cleanup{root};  // corpus + 5 index builds, even on failure
  // Materialize through the raw env: corpus generation is setup, not the
  // measured build.
  std::string text = GenerateDna(body_len, /*seed=*/42);
  auto info = MaterializeText(posix, root + "/text", Alphabet::Dna(), text);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  text.clear();
  text.shrink_to_fit();

  struct Config {
    unsigned workers;
    bool prefetch;
    bool tile_cache;
  };
  // The two uncached 1-worker rows reproduce the PR 2 pipeline baselines;
  // every cached row then shows what the shared tile cache (and the
  // affinity-ordered scheduling feeding it) removes from the device.
  // Uncached rows keep the seek optimization off (see the note above: at
  // this window scale a skip re-reads a full window, amplifying device
  // traffic past read-through — PR 2's measured optimum). Cached rows turn
  // it ON: with resident tiles a skip costs nothing, and sparse late
  // rounds then fetch only the windows they actually probe (the cache's
  // span-granular bypass reads exactly those bytes on a miss).
  const std::vector<Config> configs = {{1, false, false}, {1, true, false},
                                       {1, true, true},   {2, true, true},
                                       {4, true, true},   {8, true, true}};

  std::vector<RunResult> rows;
  double baseline_wall = 0;
  for (const Config& config : configs) {
    BuildOptions options;
    options.env = &env;
    options.work_dir = root + "/w" + std::to_string(config.workers) +
                       (config.prefetch ? "p" : "s") +
                       (config.tile_cache ? "c" : "u");
    // Budget scales with workers: identical per-core share => identical
    // partition plan and output index across ALL rows — the tile-cache
    // and prefetch-ring carves come out of the retrieved-data slack and
    // never move FM (see era/memory_layout.cc).
    options.memory_budget = static_cast<uint64_t>(
        per_core_budget_mb * 1024 * 1024 * config.workers);
    options.input_buffer_bytes = static_cast<uint64_t>(buffer_kb * 1024);
    options.r_buffer_bytes = static_cast<uint64_t>(
        ArgOr(argc, argv, "r-buffer-mb", 4.0) * 1024 * 1024);
    options.seek_optimization = config.tile_cache ? true : seek_opt;
    options.prefetch_reads = config.prefetch;
    options.tile_cache = config.tile_cache;

    ParallelBuilder builder(options, config.workers);
    auto result = builder.Build(*info);
    if (!result.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const BuildStats& stats = result->stats;

    RunResult row;
    row.workers = config.workers;
    row.prefetch = config.prefetch;
    row.tile_cache = config.tile_cache;
    row.wall_seconds = stats.total_seconds;
    row.horizontal_seconds = stats.horizontal_seconds;
    row.vertical_seconds = stats.vertical_seconds;
    row.mb_per_second = text_mb / stats.total_seconds;
    if (baseline_wall == 0) baseline_wall = stats.total_seconds;
    row.speedup = baseline_wall / stats.total_seconds;
    row.prefetch_hits = stats.io.prefetch_hits;
    row.prefetch_misses = stats.io.prefetch_misses;
    row.prefetch_depth_hits = stats.io.prefetch_depth_hits;
    const uint64_t refills = stats.io.prefetch_hits + stats.io.prefetch_misses;
    row.prefetch_hit_rate =
        refills == 0 ? 0
                     : static_cast<double>(stats.io.prefetch_hits) / refills;
    row.io_amplification = stats.io_amplification();
    row.device_read_mb =
        static_cast<double>(stats.io.bytes_read) / (1024 * 1024);
    row.tile_hit_rate = stats.tile_hit_rate();
    row.tile_hits = stats.io.tile_hits;
    row.tile_misses = stats.io.tile_misses;
    double busy = 0;
    for (double b : result->worker_busy_seconds) busy += b;
    row.worker_busy_fraction =
        busy / (static_cast<double>(config.workers) *
                std::max(stats.horizontal_seconds, 1e-9));
    row.num_groups = stats.num_groups;
    row.num_subtrees = stats.num_subtrees;
    rows.push_back(row);

    std::fprintf(stderr,
                 "workers=%u prefetch=%d cache=%d wall=%.2fs horiz=%.2fs "
                 "speedup=%.2fx hit_rate=%.2f depth_hits=%llu "
                 "tile_hit_rate=%.2f io_amp=%.1fx busy=%.2f groups=%llu "
                 "rounds=%llu read=%lluMB written=%lluMB\n",
                 row.workers, row.prefetch ? 1 : 0, row.tile_cache ? 1 : 0,
                 row.wall_seconds, row.horizontal_seconds, row.speedup,
                 row.prefetch_hit_rate,
                 static_cast<unsigned long long>(row.prefetch_depth_hits),
                 row.tile_hit_rate, row.io_amplification,
                 row.worker_busy_fraction,
                 static_cast<unsigned long long>(row.num_groups),
                 static_cast<unsigned long long>(stats.prepare_rounds),
                 static_cast<unsigned long long>(stats.io.bytes_read >> 20),
                 static_cast<unsigned long long>(stats.io.bytes_written >> 20));
  }

  // Regression guard (run by CI as a smoke): the cached 1-worker run must
  // move strictly fewer device bytes than the uncached (--no-tile-cache
  // equivalent) 1-worker run, or the whole point of the cache is gone.
  const RunResult* uncached_ref = nullptr;
  const RunResult* cached_ref = nullptr;
  for (const RunResult& row : rows) {
    if (row.workers == 1 && row.prefetch && !row.tile_cache) {
      uncached_ref = &row;
    }
    if (row.workers == 1 && row.prefetch && row.tile_cache) {
      cached_ref = &row;
    }
  }
  if (uncached_ref == nullptr || cached_ref == nullptr ||
      cached_ref->io_amplification >= uncached_ref->io_amplification) {
    std::fprintf(stderr,
                 "FAIL: cached io_amplification (%.2f) is not below the "
                 "uncached run's (%.2f)\n",
                 cached_ref == nullptr ? -1.0 : cached_ref->io_amplification,
                 uncached_ref == nullptr ? -1.0
                                         : uncached_ref->io_amplification);
    return 1;
  }

  FILE* out = std::fopen("BENCH_era.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_era.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"e2e_build\",\n");
  std::fprintf(out, "  \"corpus\": \"generated DNA (seed 42)\",\n");
  std::fprintf(out, "  \"text_mb\": %.2f,\n", text_mb);
  std::fprintf(out, "  \"per_core_budget_mb\": %.2f,\n", per_core_budget_mb);
  std::fprintf(out,
               "  \"device\": {\"kind\": \"LatencyEnv\", "
               "\"bandwidth_mb_per_s\": %.1f, \"request_latency_us\": %.0f, "
               "\"concurrent_requests\": \"independent\"},\n",
               bandwidth_mb, model.read_latency_seconds * 1e6);
  std::fprintf(out, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(
        out,
        "    {\"workers\": %u, \"prefetch\": %s, \"tile_cache\": %s, "
        "\"wall_seconds\": %.3f, "
        "\"horizontal_seconds\": %.3f, \"vertical_seconds\": %.3f, "
        "\"mb_per_second\": %.3f, \"speedup_vs_serial\": %.3f, "
        "\"io_amplification\": %.2f, \"device_read_mb\": %.1f, "
        "\"tile_hit_rate\": %.3f, \"tile_hits\": %llu, "
        "\"tile_misses\": %llu, "
        "\"prefetch_hits\": %llu, \"prefetch_misses\": %llu, "
        "\"prefetch_depth_hits\": %llu, "
        "\"prefetch_hit_rate\": %.3f, \"worker_busy_fraction\": %.3f, "
        "\"groups\": %llu, \"subtrees\": %llu}%s\n",
        r.workers, r.prefetch ? "true" : "false",
        r.tile_cache ? "true" : "false", r.wall_seconds,
        r.horizontal_seconds, r.vertical_seconds, r.mb_per_second, r.speedup,
        r.io_amplification, r.device_read_mb, r.tile_hit_rate,
        static_cast<unsigned long long>(r.tile_hits),
        static_cast<unsigned long long>(r.tile_misses),
        static_cast<unsigned long long>(r.prefetch_hits),
        static_cast<unsigned long long>(r.prefetch_misses),
        static_cast<unsigned long long>(r.prefetch_depth_hits),
        r.prefetch_hit_rate, r.worker_busy_fraction,
        static_cast<unsigned long long>(r.num_groups),
        static_cast<unsigned long long>(r.num_subtrees),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote BENCH_era.json\n");
  return 0;
}

}  // namespace
}  // namespace era

int main(int argc, char** argv) { return era::Main(argc, argv); }
