// End-to-end pipelined horizontal phase benchmark.
//
// Builds a generated DNA corpus with ParallelBuilder at 1/2/4/8 workers and
// emits BENCH_era.json (wall seconds, MB/s, prefetch hit rate, worker busy
// fraction) in the current directory.
//
// Methodology notes:
//  * The corpus lives in real files (PosixEnv) wrapped in LatencyEnv: at
//    laptop/CI scale the page cache hides device time entirely, so without a
//    modeled device every run degenerates to pure CPU — on a single-core CI
//    box that would make overlap unmeasurable. With per-request latency
//    charged as real sleeps, prefetching and multi-worker scheduling show up
//    as genuine wall-clock speedup, which is exactly the paper's CPU/I-O
//    overlap claim (Section 4.4). The model is NVMe-like: concurrent
//    requests do not serialize against each other.
//  * The memory budget scales with the worker count, so every run plans the
//    identical partition (same FM, same groups) and the speedup isolates
//    scheduling/overlap rather than plan differences; this is also what
//    makes the output index byte-identical across rows (asserted in
//    tests/pipeline_test.cc on small inputs).
//  * Row 0 is the 1-worker run with prefetching disabled — the unpipelined
//    reference every speedup is relative to.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/options.h"
#include "era/parallel_builder.h"
#include "io/latency_env.h"
#include "io/posix_env.h"
#include "text/corpus.h"
#include "text/text_generator.h"

namespace era {
namespace {

using bench::ArgOr;
using bench::ScopedRemoveAll;

struct RunResult {
  unsigned workers = 0;
  bool prefetch = false;
  double wall_seconds = 0;
  double horizontal_seconds = 0;
  double vertical_seconds = 0;
  double mb_per_second = 0;
  double speedup = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;
  double prefetch_hit_rate = 0;
  double worker_busy_fraction = 0;
  uint64_t num_groups = 0;
  uint64_t num_subtrees = 0;
};

int Main(int argc, char** argv) {
  const double text_mb = ArgOr(argc, argv, "mb", 4.0);
  const double bandwidth_mb = ArgOr(argc, argv, "bandwidth-mb", 96.0);
  const double per_core_budget_mb = ArgOr(argc, argv, "budget-mb", 8.0);
  const double buffer_kb = ArgOr(argc, argv, "buffer-kb", 256.0);
  // Pure sequential scans: at this corpus/window scale a 64 KiB+ gap skip
  // re-reads a full window per seek, which amplifies device traffic past
  // plain read-through — and read-ahead can only double-buffer scans it can
  // predict. The paper's seek optimization pays off when skips dwarf the
  // window; that regime is the figure benches' territory.
  const bool seek_opt = ArgOr(argc, argv, "seek-opt", 0.0) != 0.0;
  const uint64_t body_len = static_cast<uint64_t>(text_mb * 1024 * 1024);

  LatencyModel model;
  model.read_bytes_per_second = bandwidth_mb * 1024 * 1024;
  model.write_bytes_per_second = bandwidth_mb * 1024 * 1024;

  Env* posix = GetDefaultEnv();
  LatencyEnv env(posix, model);

  const std::string root =
      "/tmp/era_e2e_" + std::to_string(::getpid());
  std::fprintf(stderr, "corpus: %.1f MB DNA, device %.0f MB/s, work dir %s\n",
               text_mb, bandwidth_mb, root.c_str());
  Status dir_status = posix->CreateDir(root);
  if (!dir_status.ok()) {
    std::fprintf(stderr, "%s\n", dir_status.ToString().c_str());
    return 1;
  }
  ScopedRemoveAll cleanup{root};  // corpus + 5 index builds, even on failure
  // Materialize through the raw env: corpus generation is setup, not the
  // measured build.
  std::string text = GenerateDna(body_len, /*seed=*/42);
  auto info = MaterializeText(posix, root + "/text", Alphabet::Dna(), text);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  text.clear();
  text.shrink_to_fit();

  struct Config {
    unsigned workers;
    bool prefetch;
  };
  const std::vector<Config> configs = {
      {1, false}, {1, true}, {2, true}, {4, true}, {8, true}};

  std::vector<RunResult> rows;
  double baseline_wall = 0;
  for (const Config& config : configs) {
    BuildOptions options;
    options.env = &env;
    options.work_dir = root + "/w" + std::to_string(config.workers) +
                       (config.prefetch ? "p" : "s");
    // Budget scales with workers: identical per-core share => identical
    // partition plan and output index across rows.
    options.memory_budget = static_cast<uint64_t>(
        per_core_budget_mb * 1024 * 1024 * config.workers);
    options.input_buffer_bytes = static_cast<uint64_t>(buffer_kb * 1024);
    options.r_buffer_bytes = static_cast<uint64_t>(
        ArgOr(argc, argv, "r-buffer-mb", 4.0) * 1024 * 1024);
    options.seek_optimization = seek_opt;
    options.prefetch_reads = config.prefetch;

    ParallelBuilder builder(options, config.workers);
    auto result = builder.Build(*info);
    if (!result.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const BuildStats& stats = result->stats;

    RunResult row;
    row.workers = config.workers;
    row.prefetch = config.prefetch;
    row.wall_seconds = stats.total_seconds;
    row.horizontal_seconds = stats.horizontal_seconds;
    row.vertical_seconds = stats.vertical_seconds;
    row.mb_per_second = text_mb / stats.total_seconds;
    if (baseline_wall == 0) baseline_wall = stats.total_seconds;
    row.speedup = baseline_wall / stats.total_seconds;
    row.prefetch_hits = stats.io.prefetch_hits;
    row.prefetch_misses = stats.io.prefetch_misses;
    const uint64_t refills = stats.io.prefetch_hits + stats.io.prefetch_misses;
    row.prefetch_hit_rate =
        refills == 0 ? 0
                     : static_cast<double>(stats.io.prefetch_hits) / refills;
    double busy = 0;
    for (double b : result->worker_busy_seconds) busy += b;
    row.worker_busy_fraction =
        busy / (static_cast<double>(config.workers) *
                std::max(stats.horizontal_seconds, 1e-9));
    row.num_groups = stats.num_groups;
    row.num_subtrees = stats.num_subtrees;
    rows.push_back(row);

    std::fprintf(stderr,
                 "workers=%u prefetch=%d wall=%.2fs horiz=%.2fs speedup=%.2fx "
                 "hit_rate=%.2f busy=%.2f groups=%llu rounds=%llu "
                 "read=%lluMB written=%lluMB\n",
                 row.workers, row.prefetch ? 1 : 0, row.wall_seconds,
                 row.horizontal_seconds, row.speedup, row.prefetch_hit_rate,
                 row.worker_busy_fraction,
                 static_cast<unsigned long long>(row.num_groups),
                 static_cast<unsigned long long>(stats.prepare_rounds),
                 static_cast<unsigned long long>(stats.io.bytes_read >> 20),
                 static_cast<unsigned long long>(stats.io.bytes_written >> 20));
  }

  FILE* out = std::fopen("BENCH_era.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_era.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"e2e_build\",\n");
  std::fprintf(out, "  \"corpus\": \"generated DNA (seed 42)\",\n");
  std::fprintf(out, "  \"text_mb\": %.2f,\n", text_mb);
  std::fprintf(out, "  \"per_core_budget_mb\": %.2f,\n", per_core_budget_mb);
  std::fprintf(out,
               "  \"device\": {\"kind\": \"LatencyEnv\", "
               "\"bandwidth_mb_per_s\": %.1f, \"request_latency_us\": %.0f, "
               "\"concurrent_requests\": \"independent\"},\n",
               bandwidth_mb, model.read_latency_seconds * 1e6);
  std::fprintf(out, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(
        out,
        "    {\"workers\": %u, \"prefetch\": %s, \"wall_seconds\": %.3f, "
        "\"horizontal_seconds\": %.3f, \"vertical_seconds\": %.3f, "
        "\"mb_per_second\": %.3f, \"speedup_vs_serial\": %.3f, "
        "\"prefetch_hits\": %llu, \"prefetch_misses\": %llu, "
        "\"prefetch_hit_rate\": %.3f, \"worker_busy_fraction\": %.3f, "
        "\"groups\": %llu, \"subtrees\": %llu}%s\n",
        r.workers, r.prefetch ? "true" : "false", r.wall_seconds,
        r.horizontal_seconds, r.vertical_seconds, r.mb_per_second, r.speedup,
        static_cast<unsigned long long>(r.prefetch_hits),
        static_cast<unsigned long long>(r.prefetch_misses),
        r.prefetch_hit_rate, r.worker_busy_fraction,
        static_cast<unsigned long long>(r.num_groups),
        static_cast<unsigned long long>(r.num_subtrees),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote BENCH_era.json\n");
  return 0;
}

}  // namespace
}  // namespace era

int main(int argc, char** argv) { return era::Main(argc, argv); }
