// Figure 9(b): elastic range vs static 16/32-symbol ranges.
// Expected shape: elastic wins and its advantage grows with string length
// (paper: 46%-240%); a larger static range is NOT a substitute — 32 symbols
// beats 16 on long strings but loses on short ones.

#include <cstdio>

#include "bench/bench_common.h"
#include "era/era_builder.h"

namespace era {
namespace bench {
namespace {

BuildStats RunOnce(const TextInfo& text, uint64_t budget,
                   RangePolicyKind policy, uint32_t fixed_range) {
  BuildOptions options = BenchOptions(budget, "fig9b");
  options.range_policy = policy;
  options.fixed_range = fixed_range;
  EraBuilder builder(options);
  auto result = builder.Build(text);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result->stats;
}

void Run() {
  const uint64_t budget = Scaled(2 << 20);  // paper: 1 GB
  std::printf("Figure 9(b): elastic range, DNA, budget = %s (paper: 1 GB)\n\n",
              Mib(budget).c_str());
  Table table({"DNA(MiB)", "elastic", "static-16", "static-32",
               "elastic rounds", "static-16 rounds", "gain vs s16"});
  for (uint64_t kb : {512, 1024, 1536}) {
    uint64_t n = Scaled(static_cast<uint64_t>(kb) << 10);
    TextInfo text = MakeCorpus(CorpusKind::kDna, n);
    BuildStats elastic =
        RunOnce(text, budget, RangePolicyKind::kElastic, 0);
    BuildStats s16 = RunOnce(text, budget, RangePolicyKind::kFixed, 16);
    BuildStats s32 = RunOnce(text, budget, RangePolicyKind::kFixed, 32);
    table.AddRow({Mib(n), Secs(TimingOf(elastic).modeled),
                  Secs(TimingOf(s16).modeled), Secs(TimingOf(s32).modeled),
                  Num(elastic.prepare_rounds), Num(s16.prepare_rounds),
                  Ratio(TimingOf(s16).modeled / TimingOf(elastic).modeled)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  era::bench::Run();
  return 0;
}
