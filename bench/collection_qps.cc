// Concurrent document-query serving benchmark.
//
// Builds a generated multi-document DNA collection once (CollectionBuilder
// over the work-stealing pipeline), then replays a mixed CountDocs /
// TopKDocuments / LocateInDoc workload against one DocEngine at 1/2/4/8
// threads and emits BENCH_collection.json (QPS, speedup, cache hit rate,
// doc-query counters) in the current directory.
//
// Methodology notes:
//  * Same device treatment as bench/query_qps.cc: the index and text live in
//    real files (PosixEnv) wrapped in LatencyEnv, so per-request device
//    latency is charged as real sleeps (NVMe-like: concurrent requests do
//    not serialize) and thread scaling measures what the serving layer buys.
//  * Every row replays the identical workload (thread t takes items
//    t, t+T, ...); the answer checksum must match across rows — the bench
//    fails if any thread count changes any answer.
//  * Each row runs on a freshly opened engine (cold cache) so the reported
//    hit rate is comparable across rows.
//  * A slice of the workload is made of boundary spans (suffix of one
//    document + prefix of the next, no separator): the collection layout
//    guarantees those make it to the mismatch paths instead of matching.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "collection/collection_builder.h"
#include "collection/doc_engine.h"
#include "common/timer.h"
#include "io/latency_env.h"
#include "io/posix_env.h"

namespace era {
namespace {

using bench::ArgOr;
using bench::ScopedRemoveAll;

/// One workload item; `kind` cycles deterministically with the item index.
struct WorkItem {
  enum Kind { kCountDocs, kTopK, kLocateInDoc } kind = kCountDocs;
  std::string pattern;
  uint32_t doc_id = 0;  // kLocateInDoc only
};

std::vector<WorkItem> SampleDocWorkload(const std::vector<std::string>& docs,
                                        std::size_t num_items, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> doc_dist(0, docs.size() - 1);
  std::uniform_int_distribution<std::size_t> len_dist(4, 20);
  std::vector<WorkItem> items;
  items.reserve(num_items);
  while (items.size() < num_items) {
    WorkItem item;
    const std::size_t i = items.size();
    item.kind = i % 4 == 0   ? WorkItem::kTopK
                : i % 4 == 1 ? WorkItem::kLocateInDoc
                             : WorkItem::kCountDocs;
    std::size_t d = doc_dist(rng);
    const std::string& doc = docs[d];
    if (doc.size() < 8) continue;
    std::size_t len = std::min(len_dist(rng), doc.size());
    std::uniform_int_distribution<std::size_t> pos_dist(0, doc.size() - len);
    item.pattern = doc.substr(pos_dist(rng), len);
    if (i % 10 == 9 && d + 1 < docs.size() && !docs[d + 1].empty()) {
      // Boundary span: guaranteed not to cross in the indexed layout.
      std::size_t a = 1 + rng() % 6;
      a = std::min(a, doc.size());
      std::size_t b = 1 + rng() % 6;
      b = std::min(b, docs[d + 1].size());
      item.pattern = doc.substr(doc.size() - a) + docs[d + 1].substr(0, b);
    } else if (i % 10 == 4) {
      item.pattern.back() = "ACGT"[rng() % 4];  // mostly-absent mutant
    }
    item.doc_id = static_cast<uint32_t>(doc_dist(rng));
    items.push_back(std::move(item));
  }
  return items;
}

struct ReplayRow {
  unsigned threads = 0;
  uint64_t queries = 0;
  double wall_seconds = 0;
  double qps = 0;
  double speedup = 0;
  uint64_t checksum = 0;
  TreeIndex::CacheSnapshot cache;
  double cache_hit_rate = 0;
  DocQueryStats doc_stats;
};

/// Replays `items` from `num_threads` threads (thread t takes items t,
/// t+T, ...); the checksum folds every answer, so it is thread-count
/// invariant iff the answers are.
StatusOr<ReplayRow> ReplayDocWorkload(DocEngine* engine,
                                      const std::vector<WorkItem>& items,
                                      unsigned num_threads) {
  struct Outcome {
    Status status = Status::OK();
    uint64_t checksum = 0;
    uint64_t queries = 0;
  };
  std::vector<Outcome> outcomes(num_threads);

  auto worker = [&](unsigned t) {
    Outcome& out = outcomes[t];
    for (std::size_t i = t; i < items.size(); i += num_threads) {
      const WorkItem& item = items[i];
      switch (item.kind) {
        case WorkItem::kCountDocs: {
          auto count = engine->CountDocs(item.pattern);
          if (!count.ok()) {
            out.status = count.status();
            return;
          }
          out.checksum += *count;
          break;
        }
        case WorkItem::kTopK: {
          auto topk = engine->TopKDocuments(item.pattern, 5);
          if (!topk.ok()) {
            out.status = topk.status();
            return;
          }
          for (const DocHit& hit : *topk) {
            out.checksum += (hit.doc_id + 1) * hit.occurrences;
          }
          break;
        }
        case WorkItem::kLocateInDoc: {
          auto local = engine->LocateInDoc(item.pattern, item.doc_id);
          if (!local.ok()) {
            out.status = local.status();
            return;
          }
          for (uint64_t offset : *local) out.checksum += offset + 1;
          break;
        }
      }
      ++out.queries;
    }
  };

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (std::thread& thread : threads) thread.join();

  ReplayRow row;
  row.threads = num_threads;
  row.wall_seconds = timer.Seconds();
  for (const Outcome& out : outcomes) {
    ERA_RETURN_NOT_OK(out.status);
    row.checksum += out.checksum;
    row.queries += out.queries;
  }
  row.qps = row.wall_seconds > 0
                ? static_cast<double>(row.queries) / row.wall_seconds
                : 0;
  return row;
}

int Main(int argc, char** argv) {
  const std::size_t num_docs =
      static_cast<std::size_t>(ArgOr(argc, argv, "docs", 64.0));
  const double doc_kb = ArgOr(argc, argv, "doc-kb", 64.0);
  const double bandwidth_mb = ArgOr(argc, argv, "bandwidth-mb", 96.0);
  const double budget_mb = ArgOr(argc, argv, "budget-mb", 8.0);
  const double cache_mb = ArgOr(argc, argv, "cache-mb", 64.0);
  const std::size_t num_items =
      static_cast<std::size_t>(ArgOr(argc, argv, "patterns", 3000.0));

  LatencyModel model;
  model.read_bytes_per_second = bandwidth_mb * 1024 * 1024;
  model.write_bytes_per_second = bandwidth_mb * 1024 * 1024;

  Env* posix = GetDefaultEnv();
  LatencyEnv env(posix, model);

  const std::string root = "/tmp/era_colqps_" + std::to_string(::getpid());
  std::fprintf(stderr,
               "collection: %zu DNA docs x ~%.0f KB, device %.0f MB/s, "
               "%zu queries, work dir %s\n",
               num_docs, doc_kb, bandwidth_mb, num_items, root.c_str());
  if (Status s = posix->CreateDir(root); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  ScopedRemoveAll cleanup{root};

  // Corpus + build are setup, not the measured serving path: raw env.
  CollectionBuildOptions build_options;
  build_options.build.env = posix;
  build_options.build.work_dir = root + "/idx";
  build_options.build.memory_budget =
      static_cast<uint64_t>(budget_mb * 1024 * 1024);

  std::vector<std::string> docs;
  {
    const Alphabet alphabet = Alphabet::Dna();
    std::mt19937_64 rng(42);
    std::uniform_int_distribution<int> symbol_dist(0, alphabet.size() - 1);
    const std::size_t base_len = static_cast<std::size_t>(doc_kb * 1024);
    std::uniform_int_distribution<std::size_t> len_dist(
        base_len / 2, base_len + base_len / 2);
    for (std::size_t d = 0; d < num_docs; ++d) {
      std::size_t len = len_dist(rng);
      std::string body;
      body.reserve(len);
      for (std::size_t j = 0; j < len; ++j) {
        body.push_back(alphabet.Symbol(symbol_dist(rng)));
      }
      docs.push_back(std::move(body));
    }
    CollectionBuilder builder(alphabet, build_options);
    for (std::size_t d = 0; d < docs.size(); ++d) {
      if (Status s = builder.AddDocument("doc" + std::to_string(d), docs[d]);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    auto result = builder.Build();
    if (!result.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "index: %zu sub-trees over %llu document bytes\n",
                 result->index.subtrees().size(),
                 static_cast<unsigned long long>(
                     result->documents.TotalDocumentBytes()));
  }

  std::vector<WorkItem> items = SampleDocWorkload(docs, num_items, 42);

  QueryEngineOptions engine_options;
  engine_options.cache.budget_bytes =
      static_cast<uint64_t>(cache_mb * 1024 * 1024);

  std::vector<ReplayRow> rows;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    // Fresh engine per row: cold cache, comparable hit rates.
    auto engine = DocEngine::Open(&env, root + "/idx", engine_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    auto row = ReplayDocWorkload(engine->get(), items, threads);
    if (!row.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   row.status().ToString().c_str());
      return 1;
    }
    row->speedup = rows.empty() ? 1.0
                                : (rows[0].qps > 0 ? row->qps / rows[0].qps
                                                   : 0);
    row->cache = (*engine)->engine().cache();
    const uint64_t lookups = row->cache.hits + row->cache.misses;
    row->cache_hit_rate =
        lookups == 0 ? 0 : static_cast<double>(row->cache.hits) / lookups;
    row->doc_stats = (*engine)->doc_stats();
    rows.push_back(*row);

    std::fprintf(
        stderr,
        "threads=%u qps=%.0f wall=%.2fs speedup=%.2fx hit_rate=%.3f "
        "offsets_resolved=%llu checksum=%llu\n",
        threads, row->qps, row->wall_seconds, row->speedup,
        row->cache_hit_rate,
        static_cast<unsigned long long>(row->doc_stats.offsets_resolved),
        static_cast<unsigned long long>(row->checksum));
  }

  for (const ReplayRow& row : rows) {
    if (row.checksum != rows[0].checksum) {
      std::fprintf(stderr,
                   "FATAL: answer checksum diverges across thread counts "
                   "(%u threads)\n",
                   row.threads);
      return 1;
    }
    if (row.doc_stats.offsets_outside_documents != 0) {
      std::fprintf(stderr,
                   "FATAL: %llu occurrences resolved outside documents\n",
                   static_cast<unsigned long long>(
                       row.doc_stats.offsets_outside_documents));
      return 1;
    }
  }

  FILE* out = std::fopen("BENCH_collection.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_collection.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"collection_qps\",\n");
  std::fprintf(out, "  \"corpus\": \"generated DNA collection (seed 42)\",\n");
  std::fprintf(out, "  \"documents\": %zu,\n", docs.size());
  std::fprintf(out, "  \"doc_kb\": %.1f,\n", doc_kb);
  std::fprintf(out, "  \"queries\": %zu,\n", items.size());
  std::fprintf(out,
               "  \"workload\": {\"mix\": \"25%% TopKDocuments(k=5), 25%% "
               "LocateInDoc, 50%% CountDocs\", \"boundary_span_fraction\": "
               "0.1, \"mutant_fraction\": 0.1},\n");
  std::fprintf(out,
               "  \"device\": {\"kind\": \"LatencyEnv\", "
               "\"bandwidth_mb_per_s\": %.1f, \"request_latency_us\": %.0f, "
               "\"concurrent_requests\": \"independent\"},\n",
               bandwidth_mb, model.read_latency_seconds * 1e6);
  std::fprintf(out, "  \"cache_budget_mb\": %.1f,\n", cache_mb);
  std::fprintf(out, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ReplayRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"threads\": %u, \"qps\": %.1f, \"wall_seconds\": %.3f, "
        "\"speedup_vs_single_thread\": %.3f, \"queries\": %llu, "
        "\"cache_hit_rate\": %.3f, \"cache_hits\": %llu, "
        "\"cache_misses\": %llu, \"cache_evictions\": %llu, "
        "\"doc_queries\": %llu, \"offsets_resolved\": %llu, "
        "\"docs_matched\": %llu, \"offsets_outside_documents\": %llu, "
        "\"answer_checksum\": %llu}%s\n",
        r.threads, r.qps, r.wall_seconds, r.speedup,
        static_cast<unsigned long long>(r.queries), r.cache_hit_rate,
        static_cast<unsigned long long>(r.cache.hits),
        static_cast<unsigned long long>(r.cache.misses),
        static_cast<unsigned long long>(r.cache.evictions),
        static_cast<unsigned long long>(r.doc_stats.queries),
        static_cast<unsigned long long>(r.doc_stats.offsets_resolved),
        static_cast<unsigned long long>(r.doc_stats.docs_matched),
        static_cast<unsigned long long>(
            r.doc_stats.offsets_outside_documents),
        static_cast<unsigned long long>(r.checksum),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote BENCH_collection.json\n");
  return 0;
}

}  // namespace
}  // namespace era

int main(int argc, char** argv) { return era::Main(argc, argv); }
