// Shared infrastructure for the paper-reproduction benchmark harnesses.
//
// Every binary reproduces one table or figure of the paper (see DESIGN.md §5
// and EXPERIMENTS.md). Sizes are laptop-scaled: the paper's GB-scale corpora
// map to MB-scale synthetic corpora at the same memory:string ratios. Each
// harness prints the paper's rows plus two time columns:
//   wall(s)     measured wall-clock seconds (page-cache-backed I/O)
//   modeled(s)  wall + DiskModel-priced I/O events (the disk-bound component
//               the paper's testbed measured; see io/io_stats.h)
// ERA_BENCH_SCALE=<float> multiplies all string sizes and memory budgets.

#ifndef ERA_BENCH_BENCH_COMMON_H_
#define ERA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/options.h"
#include "era/era_builder.h"
#include "io/io_stats.h"
#include "text/corpus.h"

namespace era {
namespace bench {

/// Global scale factor from ERA_BENCH_SCALE (default 1.0).
double ScaleFactor();

/// `base` bytes scaled by ScaleFactor() (rounded to 4 KB).
uint64_t Scaled(uint64_t base);

/// Directory for benchmark corpora and work dirs (created on demand).
std::string BenchDataDir();

/// Materializes (or reuses) a corpus of `body_length` symbols.
TextInfo MakeCorpus(CorpusKind kind, uint64_t body_length, uint64_t seed = 7);

/// Fresh work dir under BenchDataDir(); wiped lazily by reuse.
std::string WorkDir(const std::string& tag);

/// Default build options for benchmarks (posix env, given budget).
BuildOptions BenchOptions(uint64_t memory_budget, const std::string& tag);

/// One result row.
struct Row {
  std::vector<std::string> cells;
};

/// Fixed-width table printer (paper-style series).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

/// Formats seconds/bytes/ratios compactly.
std::string Secs(double s);
std::string Mib(uint64_t bytes);
std::string Num(uint64_t v);
std::string Ratio(double r);

/// Wall + modeled seconds for a finished build.
struct Timing {
  double wall = 0;
  double modeled = 0;
};
Timing TimingOf(const BuildStats& stats);

/// The disk model used by every harness (100 MB/s, 8 ms seeks).
const DiskModel& BenchDiskModel();

/// `--name=<double>` flag from argv, or `def` (shared by the standalone
/// JSON-emitting harnesses, which take no gbench-style flags).
double ArgOr(int argc, char** argv, const char* name, double def);

/// Removes `path` recursively on every exit path, success or failure.
struct ScopedRemoveAll {
  std::string path;
  ~ScopedRemoveAll();
};

}  // namespace bench
}  // namespace era

#endif  // ERA_BENCH_BENCH_COMMON_H_
