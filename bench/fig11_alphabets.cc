// Figure 11: ERA and WaveFront across alphabet sizes (DNA |Σ|=4,
// Protein |Σ|=20, English |Σ|=26).
// Expected shapes: ERA degrades only mildly with |Σ| (it sorts leaves
// lexicographically up front), while WaveFront's per-insertion tree
// navigation suffers from the larger branching factor.

#include <cstdio>

#include "bench/bench_common.h"
#include "era/era_builder.h"
#include "wavefront/wavefront.h"

namespace era {
namespace bench {
namespace {

void Run() {
  const uint64_t budget = Scaled(2 << 20);  // paper: 1 GB
  std::printf("Figure 11: alphabets, budget = %s (paper: 1 GB)\n\n",
              Mib(budget).c_str());
  Table table({"Size(MiB)", "corpus", "ERA", "WF", "WF/ERA"});
  for (uint64_t kb : {1280, 1536}) {
    uint64_t n = Scaled(static_cast<uint64_t>(kb) << 10);
    for (CorpusKind kind :
         {CorpusKind::kDna, CorpusKind::kProtein, CorpusKind::kEnglish}) {
      TextInfo text = MakeCorpus(kind, n);
      EraBuilder era_builder(BenchOptions(budget, "f11_era"));
      auto era_result = era_builder.Build(text);
      WaveFrontBuilder wf(BenchOptions(budget, "f11_wf"));
      auto wf_result = wf.Build(text);
      if (!era_result.ok() || !wf_result.ok()) {
        std::fprintf(stderr, "build failed\n");
        std::exit(1);
      }
      double era_time = TimingOf(era_result->stats).modeled;
      double wf_time = TimingOf(wf_result->stats).modeled;
      table.AddRow({Mib(n), CorpusName(kind), Secs(era_time), Secs(wf_time),
                    Ratio(wf_time / era_time)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  era::bench::Run();
  return 0;
}
