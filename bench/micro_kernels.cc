// Micro-benchmarks (google-benchmark) for the computational kernels under
// the paper's algorithms: SA-IS, Kasai LCP, Aho-Corasick scanning,
// SubTreePrepare, BuildSubTree, Ukkonen, CRC32 and symbol packing.

#include <benchmark/benchmark.h>

#include "alphabet/encoded_string.h"
#include "common/crc32.h"
#include "era/build_subtree.h"
#include "suffixtree/canonical.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "era/subtree_prepare_baseline.h"
#include "io/mem_env.h"
#include "io/string_reader.h"
#include "sa/lcp.h"
#include "sa/sais.h"
#include "text/aho_corasick.h"
#include "text/text_generator.h"
#include "ukkonen/ukkonen.h"

namespace era {
namespace {

std::string DnaText(uint64_t n) { return GenerateDna(n, 12345); }

void BM_SaIs(benchmark::State& state) {
  std::string text = DnaText(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto sa = BuildSuffixArray(text);
    benchmark::DoNotOptimize(sa.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_SaIs)->Arg(64 << 10)->Arg(512 << 10);

void BM_KasaiLcp(benchmark::State& state) {
  std::string text = DnaText(static_cast<uint64_t>(state.range(0)));
  auto sa = BuildSuffixArray(text);
  for (auto _ : state) {
    auto lcp = BuildLcpArray(text, sa);
    benchmark::DoNotOptimize(lcp.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_KasaiLcp)->Arg(64 << 10)->Arg(512 << 10);

void BM_AhoCorasickScan(benchmark::State& state) {
  std::string text = DnaText(1 << 20);
  MemEnv env;
  (void)env.WriteFile("/s", text);
  std::vector<std::string> patterns;
  for (const char* p : {"ACGT", "TTA", "GGAC", "CACA", "TGTGT"}) {
    patterns.push_back(p);
  }
  auto ac = AhoCorasick::Build(patterns);
  IoStats stats;
  auto reader = OpenStringReader(&env, "/s", {}, &stats);
  uint64_t matches = 0;
  for (auto _ : state) {
    (void)ac->ScanAll(reader->get(),
                      [&](int32_t, uint64_t) { ++matches; });
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_AhoCorasickScan);

// SubTreePrepare old-vs-new: BM_SubTreePrepare runs the allocation-free
// radix/arena/batched-fetch kernel, BM_SubTreePrepareBaseline the checked-in
// pre-refactor path (era/subtree_prepare_baseline.h). 512 KiB DNA, elastic
// range — the acceptance configuration for the rewrite's speedup.
template <typename Preparer>
void RunSubTreePrepare(benchmark::State& state) {
  std::string text = DnaText(512 << 10);
  MemEnv env;
  (void)env.WriteFile("/s", text);
  VirtualTree group;
  group.prefixes = {{"AC", 0}, {"CA", 0}, {"GG", 0},
                    {"GT", 0}, {"TG", 0}, {"TT", 0}};
  IoStats stats;
  for (auto _ : state) {
    auto reader = OpenStringReader(&env, "/s", {}, &stats);
    Preparer preparer(group, RangePolicy::Elastic(1 << 20, 4, 4096),
                      reader->get(), text.size());
    (void)preparer.Run();
    benchmark::DoNotOptimize(preparer.results().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}

void BM_SubTreePrepare(benchmark::State& state) {
  RunSubTreePrepare<GroupPreparer>(state);
}
BENCHMARK(BM_SubTreePrepare);

void BM_SubTreePrepareBaseline(benchmark::State& state) {
  RunSubTreePrepare<BaselineGroupPreparer>(state);
}
BENCHMARK(BM_SubTreePrepareBaseline);

void BM_BuildSubTree(benchmark::State& state) {
  std::string text = DnaText(1 << 20);
  SaLcp canon;
  canon.sa = BuildSuffixArray(text);
  auto lcp = BuildLcpArray(text, canon.sa);
  PreparedSubTree prepared;
  prepared.prefix = "";
  prepared.leaves = canon.sa;
  prepared.branches.resize(canon.sa.size());
  prepared.branches[0].defined = true;
  for (std::size_t i = 1; i < canon.sa.size(); ++i) {
    prepared.branches[i].offset = lcp[i];
    prepared.branches[i].defined = true;
  }
  for (auto _ : state) {
    auto tree = BuildSubTree(prepared, text.size());
    benchmark::DoNotOptimize(&tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(canon.sa.size()));
}
BENCHMARK(BM_BuildSubTree);

void BM_Ukkonen(benchmark::State& state) {
  std::string text = DnaText(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto tree = BuildUkkonenTree(text);
    benchmark::DoNotOptimize(&tree);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Ukkonen)->Arg(64 << 10)->Arg(256 << 10);

void BM_Crc32(benchmark::State& state) {
  std::string data = DnaText(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32);

void BM_EncodedStringExtract(benchmark::State& state) {
  std::string text = DnaText(1 << 20);
  auto encoded = EncodedString::Encode(Alphabet::Dna(), text);
  char buf[64];
  uint64_t pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoded->Extract(pos % (1 << 20), 64, buf));
    pos += 4097;
  }
  state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EncodedStringExtract);

}  // namespace
}  // namespace era

BENCHMARK_MAIN();
