// Figure 10(a): ERA vs WaveFront vs B2ST vs TRELLIS, memory sweep on the
// genome-like corpus (paper: human genome, 0.5-16 GB RAM; scaled 1:256).
// Expected shapes:
//   * ERA ~2x faster than the best competitor in the out-of-core regime;
//   * WaveFront beats B2ST with ample memory but collapses when memory is
//     tight; * TRELLIS only runs once S fits in RAM and then loses to both
//     out-of-core methods on account of its random-I/O merge phase.

#include <cstdio>

#include "b2st/b2st.h"
#include "bench/bench_common.h"
#include "era/era_builder.h"
#include "trellis/trellis.h"
#include "wavefront/wavefront.h"

namespace era {
namespace bench {
namespace {

void Run() {
  const uint64_t n = Scaled(1280 << 10);  // paper: 2.6 GBps genome
  TextInfo text = MakeCorpus(CorpusKind::kDna, n);
  std::printf("Figure 10(a): serial comparison, genome-like DNA %s, memory "
              "sweep (paper: 0.5-16 GB)\n\n",
              Mib(n).c_str());
  Table table({"Memory(MiB)", "WF", "B2ST", "TRELLIS", "ERA",
               "ERA gain vs best"});
  for (uint64_t kb : {1024, 2048, 4096, 8192}) {
    uint64_t budget = Scaled(static_cast<uint64_t>(kb) << 10);
    std::vector<std::string> row{Mib(budget)};

    WaveFrontBuilder wf(BenchOptions(budget, "f10a_wf"));
    auto wf_result = wf.Build(text);
    double wf_time = -1;
    if (wf_result.ok()) {
      wf_time = TimingOf(wf_result->stats).modeled;
      row.push_back(Secs(wf_time));
    } else {
      row.push_back("-");
    }

    B2stBuilder b2st(BenchOptions(budget, "f10a_b2st"));
    auto b2st_result = b2st.Build(text);
    double b2st_time = -1;
    if (b2st_result.ok()) {
      b2st_time = TimingOf(b2st_result->stats).modeled;
      row.push_back(Secs(b2st_time));
    } else {
      row.push_back("-");
    }

    TrellisBuilder trellis(BenchOptions(budget, "f10a_tr"));
    auto trellis_result = trellis.Build(text);
    double trellis_time = -1;
    if (trellis_result.ok()) {
      trellis_time = TimingOf(trellis_result->stats).modeled;
      row.push_back(Secs(trellis_time));
    } else {
      row.push_back("-");  // S does not fit in memory (paper: plot gap)
    }

    EraBuilder era_builder(BenchOptions(budget, "f10a_era"));
    auto era_result = era_builder.Build(text);
    if (!era_result.ok()) {
      std::fprintf(stderr, "ERA failed: %s\n",
                   era_result.status().ToString().c_str());
      std::exit(1);
    }
    double era_time = TimingOf(era_result->stats).modeled;
    row.push_back(Secs(era_time));

    double best = -1;
    for (double t : {wf_time, b2st_time, trellis_time}) {
      if (t > 0 && (best < 0 || t < best)) best = t;
    }
    row.push_back(best > 0 ? Ratio(best / era_time) : "-");
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  era::bench::Run();
  return 0;
}
