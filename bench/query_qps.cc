// Concurrent query-serving benchmark: format v2 vs v3 under one cache budget.
//
// Builds the same generated DNA index twice — once with counted v2 files,
// once with bit-packed v3 files — then replays a mixed Count/Locate pattern
// workload against each at 1/4/8 threads and emits BENCH_query.json (QPS,
// speedup, cache hit rate, compression ratio, query counters) in the current
// directory.
//
// Methodology notes:
//  * Like bench/e2e_build.cc, the index and text live in real files
//    (PosixEnv) wrapped in LatencyEnv: the page cache hides device time at
//    CI scale, so without a modeled device every row degenerates to pure
//    CPU. With per-request latency charged as real sleeps (NVMe-like:
//    concurrent requests do not serialize), the thread-scaling rows measure
//    exactly what a serving layer buys — per-thread reader sessions overlap
//    their device waits while the sharded cache keeps sub-tree loads off the
//    device.
//  * Both formats run under the SAME cache byte budget. The v3 serving form
//    is charged at its packed size, so more sub-trees stay resident — the
//    bench asserts v3's hit rate strictly exceeds v2's at every thread
//    count, and that v3 compresses >= 2x vs the counted records.
//  * Every row replays the identical workload (thread t takes patterns
//    t, t+T, ...), so the occurrence checksum must match across every row —
//    thread counts AND formats (the byte-identical-answers criterion); the
//    bench fails if it does not.
//  * Each row runs on a freshly opened engine (cold cache) so the reported
//    hit rate is comparable across rows.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/options.h"
#include "era/era_builder.h"
#include "io/latency_env.h"
#include "io/posix_env.h"
#include "query/query_engine.h"
#include "query/query_workload.h"
#include "suffixtree/serializer.h"
#include "text/corpus.h"
#include "text/text_generator.h"

namespace era {
namespace {

using bench::ArgOr;
using bench::ScopedRemoveAll;

struct FormatInfo {
  std::string name;        // "v2" / "v3"
  std::string dir;         // index directory
  uint64_t nodes = 0;      // total nodes across sub-trees
  uint64_t disk_bytes = 0;
  uint64_t serving_bytes = 0;   // what the cache would charge, all sub-trees
  uint64_t inflated_bytes = 0;  // counted-record equivalent
  double bytes_per_node = 0;
  double compression_ratio = 0;  // inflated / serving
};

struct Row {
  const FormatInfo* format = nullptr;
  unsigned threads = 0;
  ReplayResult replay;
  double speedup = 0;
  TreeIndex::CacheSnapshot cache;
  double cache_hit_rate = 0;
  QueryStats stats;
};

int Main(int argc, char** argv) {
  const double text_mb = ArgOr(argc, argv, "mb", 4.0);
  const double bandwidth_mb = ArgOr(argc, argv, "bandwidth-mb", 96.0);
  const double budget_mb = ArgOr(argc, argv, "budget-mb", 8.0);
  const double cache_mb = ArgOr(argc, argv, "cache-mb", 64.0);
  const std::size_t num_patterns =
      static_cast<std::size_t>(ArgOr(argc, argv, "patterns", 4000.0));
  const uint64_t body_len = static_cast<uint64_t>(text_mb * 1024 * 1024);

  LatencyModel model;
  model.read_bytes_per_second = bandwidth_mb * 1024 * 1024;
  model.write_bytes_per_second = bandwidth_mb * 1024 * 1024;

  Env* posix = GetDefaultEnv();
  LatencyEnv env(posix, model);

  const std::string root = "/tmp/era_qps_" + std::to_string(::getpid());
  std::fprintf(stderr,
               "corpus: %.1f MB DNA, device %.0f MB/s, %zu patterns, "
               "work dir %s\n",
               text_mb, bandwidth_mb, num_patterns, root.c_str());
  Status dir_status = posix->CreateDir(root);
  if (!dir_status.ok()) {
    std::fprintf(stderr, "%s\n", dir_status.ToString().c_str());
    return 1;
  }
  ScopedRemoveAll cleanup{root};

  // Corpus + index builds are setup, not the measured serving path: both go
  // through the raw env.
  std::string text = GenerateDna(body_len, /*seed=*/42);
  auto info = MaterializeText(posix, root + "/text", Alphabet::Dna(), text);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }

  std::vector<FormatInfo> formats = {{"v2", root + "/idx_v2"},
                                     {"v3", root + "/idx_v3"}};
  for (FormatInfo& fmt : formats) {
    BuildOptions options;
    options.env = posix;
    options.work_dir = fmt.dir;
    options.memory_budget = static_cast<uint64_t>(budget_mb * 1024 * 1024);
    options.format = fmt.name == "v2" ? SubTreeFormat::kCounted
                                      : SubTreeFormat::kPacked;
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    if (!result.ok()) {
      std::fprintf(stderr, "build (%s) failed: %s\n", fmt.name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    for (const SubTreeEntry& entry : result->index.subtrees()) {
      auto st = InspectSubTreeFile(posix, fmt.dir + "/" + entry.filename);
      if (!st.ok()) {
        std::fprintf(stderr, "inspect failed: %s\n",
                     st.status().ToString().c_str());
        return 1;
      }
      fmt.nodes += st->node_count;
      fmt.disk_bytes += st->file_bytes;
      fmt.serving_bytes += st->serving_bytes;
      fmt.inflated_bytes += st->inflated_bytes;
    }
    fmt.bytes_per_node =
        fmt.nodes == 0 ? 0
                       : static_cast<double>(fmt.serving_bytes) / fmt.nodes;
    fmt.compression_ratio =
        fmt.serving_bytes == 0
            ? 0
            : static_cast<double>(fmt.inflated_bytes) / fmt.serving_bytes;
    std::fprintf(stderr,
                 "index %s: %zu sub-trees, %llu nodes, %.2f bytes/node "
                 "resident, %.2fx vs counted records\n",
                 fmt.name.c_str(), result->index.subtrees().size(),
                 static_cast<unsigned long long>(fmt.nodes),
                 fmt.bytes_per_node, fmt.compression_ratio);
  }

  QueryWorkloadOptions workload_options;
  workload_options.num_patterns = num_patterns;
  std::vector<std::string> patterns =
      SamplePatternWorkload(text, workload_options);
  text.clear();
  text.shrink_to_fit();

  QueryEngineOptions engine_options;
  engine_options.cache.budget_bytes =
      static_cast<uint64_t>(cache_mb * 1024 * 1024);

  std::vector<Row> rows;
  double baseline_qps = 0;
  for (const FormatInfo& fmt : formats) {
    for (unsigned threads : {1u, 4u, 8u}) {
      // Fresh engine per row: cold cache, comparable hit rates.
      auto engine = QueryEngine::Open(&env, fmt.dir, engine_options);
      if (!engine.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      auto replay =
          ReplayWorkload(engine->get(), patterns, threads, workload_options);
      if (!replay.ok()) {
        std::fprintf(stderr, "replay failed: %s\n",
                     replay.status().ToString().c_str());
        return 1;
      }
      Row row;
      row.format = &fmt;
      row.threads = threads;
      row.replay = *replay;
      if (baseline_qps == 0) baseline_qps = replay->qps;
      row.speedup = baseline_qps > 0 ? replay->qps / baseline_qps : 0;
      row.cache = (*engine)->cache();
      const uint64_t lookups = row.cache.hits + row.cache.misses;
      row.cache_hit_rate =
          lookups == 0 ? 0 : static_cast<double>(row.cache.hits) / lookups;
      row.stats = (*engine)->stats();
      rows.push_back(row);

      std::fprintf(
          stderr,
          "format=%s threads=%u qps=%.0f wall=%.2fs speedup=%.2fx "
          "hit_rate=%.3f (hits=%llu misses=%llu evicted=%lluB "
          "resident=%llu trees) checksum=%llu\n",
          fmt.name.c_str(), threads, replay->qps, replay->wall_seconds,
          row.speedup, row.cache_hit_rate,
          static_cast<unsigned long long>(row.cache.hits),
          static_cast<unsigned long long>(row.cache.misses),
          static_cast<unsigned long long>(row.cache.evicted_bytes),
          static_cast<unsigned long long>(row.cache.resident_trees),
          static_cast<unsigned long long>(replay->occurrence_checksum));
    }
  }

  // ---- Self-guards: the bench fails rather than publish a regression. ----
  for (const Row& row : rows) {
    if (row.replay.occurrence_checksum != rows[0].replay.occurrence_checksum) {
      std::fprintf(stderr,
                   "FATAL: occurrence checksum diverges (format %s, %u "
                   "threads) — formats must answer byte-identically\n",
                   row.format->name.c_str(), row.threads);
      return 1;
    }
  }
  const FormatInfo& v3 = formats[1];

  // ---- Registry overhead guard: serving with the metrics registry on the
  // Count hot path must stay within 2% of the registry-free path (v3 at 8
  // threads, best of 3 per arm so scheduler noise cannot fail the build on
  // a single bad run). Runs before the format-comparison guards so the
  // overhead figure is reported even when those trip on a loaded machine. ----
  auto best_qps = [&](bool metrics_on, double* qps) -> bool {
    *qps = 0;
    for (int rep = 0; rep < 3; ++rep) {
      QueryEngineOptions arm_options = engine_options;
      arm_options.metrics_enabled = metrics_on;
      auto engine = QueryEngine::Open(&env, v3.dir, arm_options);
      if (!engine.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     engine.status().ToString().c_str());
        return false;
      }
      auto replay =
          ReplayWorkload(engine->get(), patterns, 8, workload_options);
      if (!replay.ok()) {
        std::fprintf(stderr, "replay failed: %s\n",
                     replay.status().ToString().c_str());
        return false;
      }
      *qps = std::max(*qps, replay->qps);
    }
    return true;
  };
  double qps_metrics_off = 0;
  double qps_metrics_on = 0;
  if (!best_qps(false, &qps_metrics_off) || !best_qps(true, &qps_metrics_on)) {
    return 1;
  }
  const double overhead_ratio =
      qps_metrics_off > 0 ? qps_metrics_on / qps_metrics_off : 0;
  std::fprintf(stderr,
               "registry overhead (v3, 8 threads, best of 3): "
               "metrics_on=%.0f qps vs metrics_off=%.0f qps (ratio %.3f)\n",
               qps_metrics_on, qps_metrics_off, overhead_ratio);
  if (overhead_ratio < 0.98) {
    std::fprintf(stderr,
                 "FATAL: metrics registry costs more than 2%% QPS "
                 "(ratio %.3f < 0.98)\n",
                 overhead_ratio);
    return 1;
  }

  if (v3.compression_ratio < 2.0) {
    std::fprintf(stderr, "FATAL: v3 compression ratio %.2fx < 2x\n",
                 v3.compression_ratio);
    return 1;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const Row& row_v2 = rows[i];
    const Row& row_v3 = rows[i + 3];
    if (row_v3.cache_hit_rate <= row_v2.cache_hit_rate) {
      std::fprintf(stderr,
                   "FATAL: v3 hit rate %.3f is not strictly above v2's %.3f "
                   "at %u threads (same %.0f MB budget)\n",
                   row_v3.cache_hit_rate, row_v2.cache_hit_rate,
                   row_v2.threads, cache_mb);
      return 1;
    }
    if (row_v3.replay.qps <= row_v2.replay.qps) {
      std::fprintf(stderr,
                   "FATAL: v3 qps %.0f does not beat v2 qps %.0f at %u "
                   "threads\n",
                   row_v3.replay.qps, row_v2.replay.qps, row_v2.threads);
      return 1;
    }
  }

  FILE* out = std::fopen("BENCH_query.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_query.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"query_qps\",\n");
  std::fprintf(out, "  \"corpus\": \"generated DNA (seed 42)\",\n");
  std::fprintf(out, "  \"text_mb\": %.2f,\n", text_mb);
  std::fprintf(out, "  \"patterns\": %zu,\n", patterns.size());
  std::fprintf(out,
               "  \"workload\": {\"min_len\": %zu, \"max_len\": %zu, "
               "\"absent_fraction\": %.2f, \"locate_every\": %zu, "
               "\"locate_limit\": %zu},\n",
               workload_options.min_len, workload_options.max_len,
               workload_options.absent_fraction, workload_options.locate_every,
               workload_options.locate_limit);
  std::fprintf(out,
               "  \"device\": {\"kind\": \"LatencyEnv\", "
               "\"bandwidth_mb_per_s\": %.1f, \"request_latency_us\": %.0f, "
               "\"concurrent_requests\": \"independent\"},\n",
               bandwidth_mb, model.read_latency_seconds * 1e6);
  std::fprintf(out, "  \"cache_budget_mb\": %.1f,\n", cache_mb);
  std::fprintf(out, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"formats\": [\n");
  for (std::size_t i = 0; i < formats.size(); ++i) {
    const FormatInfo& f = formats[i];
    std::fprintf(out,
                 "    {\"format\": \"%s\", \"nodes\": %llu, "
                 "\"disk_bytes\": %llu, \"serving_bytes\": %llu, "
                 "\"inflated_bytes\": %llu, \"bytes_per_node\": %.2f, "
                 "\"compression_ratio_vs_counted\": %.3f}%s\n",
                 f.name.c_str(), static_cast<unsigned long long>(f.nodes),
                 static_cast<unsigned long long>(f.disk_bytes),
                 static_cast<unsigned long long>(f.serving_bytes),
                 static_cast<unsigned long long>(f.inflated_bytes),
                 f.bytes_per_node, f.compression_ratio,
                 i + 1 < formats.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"registry_overhead\": {\"config\": \"v3 8 threads, best "
               "of 3\", \"qps_metrics_off\": %.1f, \"qps_metrics_on\": %.1f, "
               "\"ratio\": %.4f},\n",
               qps_metrics_off, qps_metrics_on, overhead_ratio);
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"format\": \"%s\", \"threads\": %u, \"qps\": %.1f, "
        "\"wall_seconds\": %.3f, "
        "\"speedup_vs_single_thread\": %.3f, \"queries\": %llu, "
        "\"count_queries\": %llu, \"locate_queries\": %llu, "
        "\"cache_hit_rate\": %.3f, \"cache_hits\": %llu, "
        "\"cache_misses\": %llu, \"cache_evictions\": %llu, "
        "\"cache_evicted_bytes\": %llu, \"cache_resident_bytes\": %llu, "
        "\"resident_subtrees\": %llu, \"bytes_per_node\": %.2f, "
        "\"nodes_visited\": %llu, \"leaves_enumerated\": %llu, "
        "\"trie_resolved_counts\": %llu, \"p50_ms\": %.3f, "
        "\"p90_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"occurrence_checksum\": %llu}%s\n",
        r.format->name.c_str(), r.threads, r.replay.qps,
        r.replay.wall_seconds, r.speedup,
        static_cast<unsigned long long>(r.replay.queries),
        static_cast<unsigned long long>(r.replay.count_queries),
        static_cast<unsigned long long>(r.replay.locate_queries),
        r.cache_hit_rate, static_cast<unsigned long long>(r.cache.hits),
        static_cast<unsigned long long>(r.cache.misses),
        static_cast<unsigned long long>(r.cache.evictions),
        static_cast<unsigned long long>(r.cache.evicted_bytes),
        static_cast<unsigned long long>(r.cache.resident_bytes),
        static_cast<unsigned long long>(r.cache.resident_trees),
        r.format->bytes_per_node,
        static_cast<unsigned long long>(r.stats.nodes_visited),
        static_cast<unsigned long long>(r.stats.leaves_enumerated),
        static_cast<unsigned long long>(r.stats.trie_resolved_counts),
        r.replay.p50_ms, r.replay.p90_ms, r.replay.p99_ms,
        static_cast<unsigned long long>(r.replay.occurrence_checksum),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote BENCH_query.json\n");
  return 0;
}

}  // namespace
}  // namespace era

int main(int argc, char** argv) { return era::Main(argc, argv); }
