// Figure 7: ERA-str (ComputeSuffixSubTree/BranchEdge) vs ERA-str+mem
// (SubTreePrepare/BuildSubTree).
//   (a) DNA size sweep at a fixed memory budget (paper: 256-2048 MBps at
//       512 MB; here scaled 1:256).
//   (b) memory sweep at a fixed string size (paper: 0.5-4 GB at 2 GBps).
// Expected shape: str+mem consistently faster, gap widening with string
// size (the paper's Figure 7).

#include <cstdio>

#include "bench/bench_common.h"
#include "era/era_builder.h"

namespace era {
namespace bench {
namespace {

Timing RunOnce(const TextInfo& text, uint64_t budget, HorizontalMethod method,
               const std::string& tag) {
  BuildOptions options = BenchOptions(budget, tag);
  options.horizontal = method;
  EraBuilder builder(options);
  auto result = builder.Build(text);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return TimingOf(result->stats);
}

void SizeSweep() {
  std::printf("Figure 7(a): horizontal methods, DNA size sweep, budget = "
              "%s (paper: 512 MB)\n\n",
              Mib(Scaled(1 << 20)).c_str());
  Table table({"DNA(MiB)", "ERA-str wall", "ERA-str modeled",
               "ERA-str+mem wall", "ERA-str+mem modeled", "speedup(modeled)"});
  const uint64_t budget = Scaled(1 << 20);
  for (uint64_t kb : {512, 768, 1024}) {
    uint64_t n = Scaled(static_cast<uint64_t>(kb) << 10);
    TextInfo text = MakeCorpus(CorpusKind::kDna, n);
    Timing str = RunOnce(text, budget, HorizontalMethod::kBranchEdge,
                         "fig7a_str");
    Timing mem = RunOnce(text, budget, HorizontalMethod::kPrepareBuild,
                         "fig7a_mem");
    table.AddRow({Mib(n), Secs(str.wall), Secs(str.modeled), Secs(mem.wall),
                  Secs(mem.modeled), Ratio(str.modeled / mem.modeled)});
  }
  table.Print();
}

void MemorySweep() {
  std::printf("\nFigure 7(b): horizontal methods, memory sweep, |S| = %s "
              "(paper: 2 GBps)\n\n",
              Mib(Scaled(2 << 20)).c_str());
  Table table({"Memory(MiB)", "ERA-str wall", "ERA-str modeled",
               "ERA-str+mem wall", "ERA-str+mem modeled", "speedup(modeled)"});
  TextInfo text = MakeCorpus(CorpusKind::kDna, Scaled(1 << 20));
  for (uint64_t kb : {512, 1024, 2048, 4096}) {
    uint64_t budget = Scaled(static_cast<uint64_t>(kb) << 10);
    Timing str = RunOnce(text, budget, HorizontalMethod::kBranchEdge,
                         "fig7b_str");
    Timing mem = RunOnce(text, budget, HorizontalMethod::kPrepareBuild,
                         "fig7b_mem");
    table.AddRow({Mib(budget), Secs(str.wall), Secs(str.modeled),
                  Secs(mem.wall), Secs(mem.modeled),
                  Ratio(str.modeled / mem.modeled)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  era::bench::SizeSweep();
  era::bench::MemorySweep();
  return 0;
}
