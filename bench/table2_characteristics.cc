// Table 2: qualitative comparison of construction algorithms, with the
// string-access column backed by measurement: each builder runs on a small
// corpus and its recorded I/O pattern (sequential refills vs random seeks)
// is printed next to the paper's classification.

#include <cstdio>

#include "b2st/b2st.h"
#include "bench/bench_common.h"
#include "era/era_builder.h"
#include "trellis/trellis.h"
#include "ukkonen/ukkonen.h"
#include "wavefront/wavefront.h"

namespace era {
namespace bench {
namespace {

std::string AccessPattern(const IoStats& io) {
  // Classify by the share of random repositionings among window moves.
  // Each scan legitimately repositions once (back to the scan start), so
  // one seek per started scan is discounted.
  uint64_t seeks = io.seeks > io.scans_started
                       ? io.seeks - io.scans_started
                       : 0;
  uint64_t moves = io.sequential_refills + seeks;
  if (moves == 0) return "in-memory";
  double random_share =
      static_cast<double>(seeks) / static_cast<double>(moves);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s (%.0f%% random)",
                random_share < 0.3 ? "Sequential" : "Random",
                random_share * 100.0);
  return buf;
}

void Run() {
  const uint64_t n = Scaled(512 << 10);
  const uint64_t budget = Scaled(1 << 20);
  TextInfo text = MakeCorpus(CorpusKind::kDna, n);
  std::printf("Table 2: algorithm characteristics (DNA %s, budget %s); "
              "string-access measured from IoStats\n\n",
              Mib(n).c_str(), Mib(budget).c_str());

  Table table({"Algorithm", "Category", "Complexity", "Parallel",
               "String access (paper)", "String access (measured)",
               "scans", "seeks"});

  {
    // Ukkonen: in-memory; measured I/O is just the initial load.
    std::string content;
    IoStats io;
    Env* env = GetDefaultEnv();
    Status s = env->ReadFileToString(text.path, &content);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
    io.bytes_read = content.size();
    auto tree = BuildUkkonenTree(content);
    if (!tree.ok()) std::exit(1);
    table.AddRow({"Ukkonen", "In-memory", "O(n)", "No", "Random (in RAM)",
                  "in-memory", "1", "0"});
  }
  {
    TrellisBuilder trellis(BenchOptions(budget, "t2_trellis"));
    auto result = trellis.Build(text);
    if (result.ok()) {
      table.AddRow({"TRELLIS", "Semi-disk-based", "O(n^2)", "No",
                    "Random (merge phase)", AccessPattern(result->stats.io),
                    Num(result->stats.io.scans_started),
                    Num(result->stats.io.seeks)});
    } else {
      table.AddRow({"TRELLIS", "Semi-disk-based", "O(n^2)", "No",
                    "Random (merge phase)", "S exceeds memory", "-", "-"});
    }
  }
  {
    WaveFrontBuilder wf(BenchOptions(budget, "t2_wf"));
    auto result = wf.Build(text);
    if (!result.ok()) std::exit(1);
    table.AddRow({"WaveFront", "Out-of-core", "O(n^2)", "Yes", "Sequential",
                  AccessPattern(result->stats.io),
                  Num(result->stats.io.scans_started),
                  Num(result->stats.io.seeks)});
  }
  {
    B2stBuilder b2st(BenchOptions(budget, "t2_b2st"));
    auto result = b2st.Build(text);
    if (!result.ok()) std::exit(1);
    table.AddRow({"B2ST", "Out-of-core", "O(cn)", "No", "Sequential",
                  AccessPattern(result->stats.io),
                  Num(result->stats.io.scans_started),
                  Num(result->stats.io.seeks)});
  }
  {
    BuildOptions options = BenchOptions(budget, "t2_era");
    options.seek_optimization = false;  // pure sequential mode
    EraBuilder era_builder(options);
    auto result = era_builder.Build(text);
    if (!result.ok()) std::exit(1);
    table.AddRow({"ERA", "Out-of-core", "O(n^2)", "Yes", "Sequential",
                  AccessPattern(result->stats.io),
                  Num(result->stats.io.scans_started),
                  Num(result->stats.io.seeks)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  era::bench::Run();
  return 0;
}
