// Dictionary-matching benchmark: shared-descent MatchDictionary vs the
// per-pattern Count loop vs Aho-Corasick text streaming, v2 and v3 formats.
//
// Builds the same generated DNA index twice (counted v2, bit-packed v3),
// samples one shared-prefix-heavy dictionary (SampleDictionaryWorkload:
// anchor groups, duplicates, mutants, stragglers), then answers the whole
// dictionary three ways and emits BENCH_dict.json:
//
//   * per_pattern — the oracle loop: one engine->Count per item. Every item
//     pays its own root-to-locus descent, so shared prefixes are re-walked
//     once per pattern.
//   * dict — one engine->MatchDictionary call: duplicates fold, the sorted
//     range cursor walks each distinct shared prefix once, each touched
//     sub-tree opens once.
//   * aho_corasick — the index-free baseline: build the automaton over the
//     dictionary and stream the TEXT through it once. Wins when the text is
//     small and the dictionary huge; the index wins the other way around.
//
// Methodology follows bench/query_qps.cc: real files (PosixEnv) wrapped in
// LatencyEnv so device time is modeled (without it the page cache turns
// every arm into pure CPU), fresh engine per arm (cold cache, comparable
// hit rates), and every arm must produce the identical occurrence checksum
// (sum of per-item counts, duplicates counted individually) — the bench
// fails rather than publish rows that disagree. The headline self-guard:
// dict must beat per_pattern by >= 1.5x on both formats.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/options.h"
#include "common/timer.h"
#include "era/era_builder.h"
#include "io/latency_env.h"
#include "io/posix_env.h"
#include "io/string_reader.h"
#include "query/query_engine.h"
#include "query/query_workload.h"
#include "text/aho_corasick.h"
#include "text/corpus.h"
#include "text/text_generator.h"

namespace era {
namespace {

using bench::ArgOr;
using bench::ScopedRemoveAll;

struct Row {
  std::string format;  // "v2" / "v3" / "-" (text scan)
  std::string arm;     // "per_pattern" / "dict" / "aho_corasick"
  double wall_seconds = 0;
  double patterns_per_second = 0;
  uint64_t checksum = 0;  // sum of per-item counts, duplicates individually
  double cache_hit_rate = 0;
  QueryStats stats;
};

int Main(int argc, char** argv) {
  const double text_mb = ArgOr(argc, argv, "mb", 4.0);
  const double bandwidth_mb = ArgOr(argc, argv, "bandwidth-mb", 96.0);
  const double budget_mb = ArgOr(argc, argv, "budget-mb", 8.0);
  const double cache_mb = ArgOr(argc, argv, "cache-mb", 64.0);
  const std::size_t num_patterns =
      static_cast<std::size_t>(ArgOr(argc, argv, "patterns", 10000.0));
  const uint64_t body_len = static_cast<uint64_t>(text_mb * 1024 * 1024);

  LatencyModel model;
  model.read_bytes_per_second = bandwidth_mb * 1024 * 1024;
  model.write_bytes_per_second = bandwidth_mb * 1024 * 1024;

  Env* posix = GetDefaultEnv();
  LatencyEnv env(posix, model);

  const std::string root = "/tmp/era_dict_" + std::to_string(::getpid());
  std::fprintf(stderr,
               "corpus: %.1f MB DNA, device %.0f MB/s, %zu patterns, "
               "work dir %s\n",
               text_mb, bandwidth_mb, num_patterns, root.c_str());
  if (Status s = posix->CreateDir(root); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  ScopedRemoveAll cleanup{root};

  // Corpus + index builds are setup, not the measured path: raw env.
  std::string text = GenerateDna(body_len, /*seed=*/42);
  auto info = MaterializeText(posix, root + "/text", Alphabet::Dna(), text);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }

  struct FormatInfo {
    std::string name;
    std::string dir;
  };
  std::vector<FormatInfo> formats = {{"v2", root + "/idx_v2"},
                                     {"v3", root + "/idx_v3"}};
  for (const FormatInfo& fmt : formats) {
    BuildOptions options;
    options.env = posix;
    options.work_dir = fmt.dir;
    options.memory_budget = static_cast<uint64_t>(budget_mb * 1024 * 1024);
    options.format = fmt.name == "v2" ? SubTreeFormat::kCounted
                                      : SubTreeFormat::kPacked;
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    if (!result.ok()) {
      std::fprintf(stderr, "build (%s) failed: %s\n", fmt.name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
  }

  // One shared-prefix-heavy dictionary for every arm (the defaults: 32
  // anchor groups, 20% duplicates, 10% mutants, 5% stragglers).
  DictWorkloadOptions workload;
  workload.num_patterns = num_patterns;
  const std::vector<std::string> patterns =
      SampleDictionaryWorkload(text, workload);

  QueryEngineOptions engine_options;
  engine_options.cache.budget_bytes =
      static_cast<uint64_t>(cache_mb * 1024 * 1024);

  std::vector<Row> rows;
  auto run_arm = [&](const FormatInfo& fmt, const std::string& arm,
                     Row* row) -> bool {
    // Fresh engine per arm: cold cache, comparable hit rates.
    auto engine = QueryEngine::Open(&env, fmt.dir, engine_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   engine.status().ToString().c_str());
      return false;
    }
    uint64_t checksum = 0;
    WallTimer timer;
    if (arm == "per_pattern") {
      for (const std::string& pattern : patterns) {
        auto count = (*engine)->Count(pattern);
        if (!count.ok()) {
          std::fprintf(stderr, "count failed: %s\n",
                       count.status().ToString().c_str());
          return false;
        }
        checksum += *count;
      }
    } else {
      auto outcomes = (*engine)->MatchDictionary(patterns);
      if (!outcomes.ok()) {
        std::fprintf(stderr, "dict failed: %s\n",
                     outcomes.status().ToString().c_str());
        return false;
      }
      for (const DictOutcome& outcome : *outcomes) {
        if (!outcome.status.ok()) {
          std::fprintf(stderr, "dict item failed: %s\n",
                       outcome.status.ToString().c_str());
          return false;
        }
        checksum += outcome.count;
      }
    }
    row->format = fmt.name;
    row->arm = arm;
    row->wall_seconds = timer.Seconds();
    row->patterns_per_second =
        row->wall_seconds > 0
            ? static_cast<double>(patterns.size()) / row->wall_seconds
            : 0;
    row->checksum = checksum;
    const TreeIndex::CacheSnapshot cache = (*engine)->cache();
    const uint64_t lookups = cache.hits + cache.misses;
    row->cache_hit_rate =
        lookups == 0 ? 0 : static_cast<double>(cache.hits) / lookups;
    row->stats = (*engine)->stats();
    std::fprintf(
        stderr,
        "format=%s arm=%-11s wall=%.3fs patterns/s=%.0f checksum=%llu "
        "hit_rate=%.3f groups=%llu shared=%llu saved=%llu folded=%llu\n",
        row->format.c_str(), row->arm.c_str(), row->wall_seconds,
        row->patterns_per_second,
        static_cast<unsigned long long>(row->checksum), row->cache_hit_rate,
        static_cast<unsigned long long>(row->stats.dict_groups_formed),
        static_cast<unsigned long long>(row->stats.dict_descents_shared),
        static_cast<unsigned long long>(row->stats.dict_descents_saved),
        static_cast<unsigned long long>(row->stats.batch_duplicates_folded));
    return true;
  };

  for (const FormatInfo& fmt : formats) {
    for (const char* arm : {"per_pattern", "dict"}) {
      Row row;
      if (!run_arm(fmt, arm, &row)) return 1;
      rows.push_back(std::move(row));
    }
  }

  // Aho-Corasick baseline: automaton over the dictionary, one streaming
  // pass over the text through the same modeled device.
  double ac_build_seconds = 0;
  {
    WallTimer build_timer;
    auto matcher = AhoCorasick::Build(patterns);
    if (!matcher.ok()) {
      std::fprintf(stderr, "aho-corasick build failed: %s\n",
                   matcher.status().ToString().c_str());
      return 1;
    }
    ac_build_seconds = build_timer.Seconds();
    IoStats io;
    auto reader = OpenStringReader(&env, root + "/text", {}, &io);
    if (!reader.ok()) {
      std::fprintf(stderr, "reader failed: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
    std::vector<uint64_t> per_id(patterns.size(), 0);
    WallTimer scan_timer;
    Status scan = matcher->ScanAll(reader->get(), [&](int32_t id, uint64_t) {
      ++per_id[static_cast<std::size_t>(id)];
    });
    if (!scan.ok()) {
      std::fprintf(stderr, "scan failed: %s\n", scan.ToString().c_str());
      return 1;
    }
    Row row;
    row.format = "-";
    row.arm = "aho_corasick";
    row.wall_seconds = scan_timer.Seconds();
    row.patterns_per_second =
        row.wall_seconds > 0
            ? static_cast<double>(patterns.size()) / row.wall_seconds
            : 0;
    for (uint64_t c : per_id) row.checksum += c;
    std::fprintf(stderr,
                 "format=- arm=aho_corasick build=%.3fs scan=%.3fs "
                 "patterns/s=%.0f checksum=%llu\n",
                 ac_build_seconds, row.wall_seconds, row.patterns_per_second,
                 static_cast<unsigned long long>(row.checksum));
    rows.push_back(std::move(row));
  }

  // ---- Self-guards: fail rather than publish a regression. ----
  for (const Row& row : rows) {
    if (row.checksum != rows[0].checksum) {
      std::fprintf(stderr,
                   "FATAL: occurrence checksum diverges (%s/%s: %llu vs "
                   "%llu) — every arm must answer byte-identically\n",
                   row.format.c_str(), row.arm.c_str(),
                   static_cast<unsigned long long>(row.checksum),
                   static_cast<unsigned long long>(rows[0].checksum));
      return 1;
    }
  }
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const Row& per_pattern = rows[i];
    const Row& dict = rows[i + 1];
    const double speedup =
        per_pattern.wall_seconds > 0 && dict.wall_seconds > 0
            ? per_pattern.wall_seconds / dict.wall_seconds
            : 0;
    std::fprintf(stderr, "format=%s dict speedup over per_pattern: %.2fx\n",
                 per_pattern.format.c_str(), speedup);
    if (speedup < 1.5) {
      std::fprintf(stderr,
                   "FATAL: dict %.2fx over per_pattern on %s is below the "
                   "1.5x floor\n",
                   speedup, per_pattern.format.c_str());
      return 1;
    }
  }

  FILE* out = std::fopen("BENCH_dict.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_dict.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"dict_qps\",\n");
  std::fprintf(out, "  \"corpus\": \"generated DNA (seed 42)\",\n");
  std::fprintf(out, "  \"text_mb\": %.2f,\n", text_mb);
  std::fprintf(out, "  \"patterns\": %zu,\n", patterns.size());
  std::fprintf(out,
               "  \"workload\": {\"prefix_groups\": %zu, \"prefix_len\": %zu, "
               "\"min_len\": %zu, \"max_len\": %zu, "
               "\"duplicate_fraction\": %.2f, \"mutant_fraction\": %.2f, "
               "\"straggler_fraction\": %.2f},\n",
               workload.num_prefix_groups, workload.prefix_len,
               workload.min_len, workload.max_len, workload.duplicate_fraction,
               workload.mutant_fraction, workload.straggler_fraction);
  std::fprintf(out,
               "  \"device\": {\"kind\": \"LatencyEnv\", "
               "\"bandwidth_mb_per_s\": %.1f, \"request_latency_us\": %.0f},\n",
               bandwidth_mb, model.read_latency_seconds * 1e6);
  std::fprintf(out, "  \"cache_budget_mb\": %.1f,\n", cache_mb);
  std::fprintf(out, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"aho_corasick_build_seconds\": %.3f,\n",
               ac_build_seconds);
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"format\": \"%s\", \"arm\": \"%s\", \"wall_seconds\": %.3f, "
        "\"patterns_per_second\": %.1f, \"occurrence_checksum\": %llu, "
        "\"cache_hit_rate\": %.3f, \"queries\": %llu, "
        "\"nodes_visited\": %llu, \"leaves_enumerated\": %llu, "
        "\"trie_resolved_counts\": %llu, \"dict_groups_formed\": %llu, "
        "\"dict_descents_shared\": %llu, \"dict_descents_saved\": %llu, "
        "\"batch_duplicates_folded\": %llu}%s\n",
        r.format.c_str(), r.arm.c_str(), r.wall_seconds,
        r.patterns_per_second, static_cast<unsigned long long>(r.checksum),
        r.cache_hit_rate, static_cast<unsigned long long>(r.stats.queries),
        static_cast<unsigned long long>(r.stats.nodes_visited),
        static_cast<unsigned long long>(r.stats.leaves_enumerated),
        static_cast<unsigned long long>(r.stats.trie_resolved_counts),
        static_cast<unsigned long long>(r.stats.dict_groups_formed),
        static_cast<unsigned long long>(r.stats.dict_descents_shared),
        static_cast<unsigned long long>(r.stats.dict_descents_saved),
        static_cast<unsigned long long>(r.stats.batch_duplicates_folded),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote BENCH_dict.json\n");
  return 0;
}

}  // namespace
}  // namespace era

int main(int argc, char** argv) { return era::Main(argc, argv); }
