// Figure 12: shared-memory/shared-disk strong scalability, 1-8 cores, total
// memory fixed and divided equally among cores.
//   (a) genome-like corpus: ERA-No-Seek vs WaveFront;
//   (b) larger DNA corpus: adds ERA-With-Seek (the disk-seek optimization
//       helps at low core counts and hurts at 8 — asynchronous workers make
//       the disk head thrash).
// Expected shape: ERA >= 1.5x faster than WF through 4 cores, flattening at
// 8 (per-core memory shrinks, interference grows).

#include <cstdio>

#include "bench/bench_common.h"
#include "era/parallel_builder.h"

namespace era {
namespace bench {
namespace {

double RunOnce(const TextInfo& text, uint64_t total_budget, unsigned cores,
               ParallelAlgorithm algo, bool seek_optimization,
               const std::string& tag) {
  BuildOptions options = BenchOptions(total_budget, tag);
  options.seek_optimization = seek_optimization;
  ParallelBuilder builder(options, cores, algo);
  auto result = builder.Build(text);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  // Modeled time for a shared-disk machine: one disk serves all cores, so
  // the I/O price is paid serially on top of the parallel wall time.
  return result->stats.total_seconds +
         BenchDiskModel().ModeledSeconds(result->stats.io);
}

void Genome() {
  const uint64_t n = Scaled(1280 << 10);    // paper: human genome
  const uint64_t total = Scaled(8 << 20);   // paper: 16 GB
  TextInfo text = MakeCorpus(CorpusKind::kDna, n);
  std::printf("Figure 12(a): shared-memory strong scalability, genome-like "
              "%s, total memory %s\n\n",
              Mib(n).c_str(), Mib(total).c_str());
  Table table({"Cores", "WF", "ERA-NoSeek", "WF/ERA"});
  for (unsigned cores : {1u, 2u, 4u, 8u}) {
    double wf = RunOnce(text, total, cores, ParallelAlgorithm::kWaveFront,
                        false, "f12a_wf");
    double era_time = RunOnce(text, total, cores, ParallelAlgorithm::kEra,
                              false, "f12a_era");
    table.AddRow({Num(cores), Secs(wf), Secs(era_time),
                  Ratio(wf / era_time)});
  }
  table.Print();
}

void LargerDna() {
  const uint64_t n = Scaled(1536 << 10);    // paper: 4 GBps DNA
  const uint64_t total = Scaled(8 << 20);   // paper: 16 GB
  TextInfo text = MakeCorpus(CorpusKind::kDna, n);
  std::printf("\nFigure 12(b): shared-memory strong scalability, DNA %s, "
              "total memory %s\n\n",
              Mib(n).c_str(), Mib(total).c_str());
  Table table({"Cores", "WF", "ERA-NoSeek", "ERA-WithSeek"});
  for (unsigned cores : {1u, 2u, 4u, 8u}) {
    double wf = RunOnce(text, total, cores, ParallelAlgorithm::kWaveFront,
                        false, "f12b_wf");
    double no_seek = RunOnce(text, total, cores, ParallelAlgorithm::kEra,
                             false, "f12b_ns");
    double with_seek = RunOnce(text, total, cores, ParallelAlgorithm::kEra,
                               true, "f12b_ws");
    table.AddRow({Num(cores), Secs(wf), Secs(no_seek), Secs(with_seek)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  era::bench::Genome();
  era::bench::LargerDna();
  return 0;
}
