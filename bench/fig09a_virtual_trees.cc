// Figure 9(a): effect of grouping sub-trees into virtual trees.
// Expected shape: grouping wins consistently (paper: >= 23% faster) because
// one scan of S feeds the whole group instead of one sub-tree.

#include <cstdio>

#include "bench/bench_common.h"
#include "era/era_builder.h"

namespace era {
namespace bench {
namespace {

void Run() {
  const uint64_t budget = Scaled(2 << 20);  // paper: 1 GB
  std::printf("Figure 9(a): virtual trees, DNA, budget = %s (paper: 1 GB)\n\n",
              Mib(budget).c_str());
  Table table({"DNA(MiB)", "no-group wall", "no-group modeled",
               "grouped wall", "grouped modeled", "gain(modeled)",
               "scans no-group", "scans grouped"});
  for (uint64_t kb : {1024, 1536, 2048}) {
    uint64_t n = Scaled(static_cast<uint64_t>(kb) << 10);
    TextInfo text = MakeCorpus(CorpusKind::kDna, n);
    BuildStats stats[2];
    for (int grouped = 0; grouped <= 1; ++grouped) {
      BuildOptions options = BenchOptions(budget, "fig9a");
      options.group_virtual_trees = grouped == 1;
      EraBuilder builder(options);
      auto result = builder.Build(text);
      if (!result.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      stats[grouped] = result->stats;
    }
    Timing off = TimingOf(stats[0]);
    Timing on = TimingOf(stats[1]);
    table.AddRow({Mib(n), Secs(off.wall), Secs(off.modeled), Secs(on.wall),
                  Secs(on.modeled), Ratio(off.modeled / on.modeled),
                  Num(stats[0].io.scans_started),
                  Num(stats[1].io.scans_started)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  era::bench::Run();
  return 0;
}
