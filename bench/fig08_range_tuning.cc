// Figure 8: tuning the size of the read-ahead buffer R.
//   (a) DNA (|Σ| = 4): a small R suffices (paper: 32 MB best).
//   (b) Protein (|Σ| = 20): the larger branching factor needs a larger R
//       (paper: 256 MB best).
// Sizes scaled 1:256 from the paper's 2.5-4 GBps at 1 GB RAM.

#include <cstdio>

#include "bench/bench_common.h"
#include "era/era_builder.h"

namespace era {
namespace bench {
namespace {

void Sweep(CorpusKind kind, const std::vector<uint64_t>& r_sizes_kib) {
  const uint64_t budget = Scaled(2 << 20);  // paper: 1 GB
  std::printf("\nFigure 8(%s): R tuning, %s, budget = %s (paper: 1 GB)\n\n",
              kind == CorpusKind::kDna ? "a" : "b", CorpusName(kind),
              Mib(budget).c_str());
  std::vector<std::string> headers{"Size(MiB)"};
  for (uint64_t r : r_sizes_kib) headers.push_back("R=" + Num(r) + "KiB");
  Table table(headers);
  for (uint64_t kb : {1280, 1536}) {
    uint64_t n = Scaled(static_cast<uint64_t>(kb) << 10);
    TextInfo text = MakeCorpus(kind, n);
    std::vector<std::string> row{Mib(n)};
    for (uint64_t r_kib : r_sizes_kib) {
      BuildOptions options = BenchOptions(budget, "fig8");
      options.r_buffer_bytes = Scaled(r_kib << 10);
      EraBuilder builder(options);
      auto result = builder.Build(text);
      if (!result.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      row.push_back(Secs(TimingOf(result->stats).modeled));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  // Paper values divided by 256: 16/32/64/128 MB -> 64..512 KiB etc.
  era::bench::Sweep(era::CorpusKind::kDna, {64, 128, 256});
  era::bench::Sweep(era::CorpusKind::kProtein, {128, 256, 512});
  return 0;
}
