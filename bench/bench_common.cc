#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "io/env.h"

namespace era {
namespace bench {

double ScaleFactor() {
  static const double scale = [] {
    const char* raw = std::getenv("ERA_BENCH_SCALE");
    if (raw == nullptr) return 1.0;
    double v = std::atof(raw);
    return v > 0 ? v : 1.0;
  }();
  return scale;
}

uint64_t Scaled(uint64_t base) {
  uint64_t v = static_cast<uint64_t>(static_cast<double>(base) *
                                     ScaleFactor());
  return std::max<uint64_t>(4096, v & ~uint64_t{4095});
}

std::string BenchDataDir() {
  static const std::string dir = [] {
    const char* raw = std::getenv("ERA_BENCH_DIR");
    std::string d = raw != nullptr ? raw : "/tmp/era_bench";
    Status s = GetDefaultEnv()->CreateDir(d);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot create bench dir %s: %s\n", d.c_str(),
                   s.ToString().c_str());
      std::exit(1);
    }
    return d;
  }();
  return dir;
}

TextInfo MakeCorpus(CorpusKind kind, uint64_t body_length, uint64_t seed) {
  std::ostringstream path;
  path << BenchDataDir() << "/" << CorpusName(kind) << "_" << body_length
       << "_" << seed << ".txt";
  auto info = MaterializeCorpus(GetDefaultEnv(), path.str(), kind,
                                body_length, seed);
  if (!info.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 info.status().ToString().c_str());
    std::exit(1);
  }
  return *info;
}

std::string WorkDir(const std::string& tag) {
  std::string dir = BenchDataDir() + "/work_" + tag;
  Status s = GetDefaultEnv()->CreateDir(dir);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot create work dir: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  return dir;
}

BuildOptions BenchOptions(uint64_t memory_budget, const std::string& tag) {
  BuildOptions options;
  options.memory_budget = memory_budget;
  options.work_dir = WorkDir(tag);
  // The figure/table harnesses price IoStats with DiskModel to reproduce
  // the paper's algorithmic I/O; read-ahead is an implementation detail
  // whose speculative windows (one per scan tail) would drift those
  // numbers, so it stays off here. bench_e2e_build measures it instead,
  // as wall time against LatencyEnv.
  options.prefetch_reads = false;
  // Same reasoning for the shared tile cache: the figures measure the
  // paper's uncached streaming cost model; the cache's win is recorded by
  // bench_e2e_build (io_amplification columns in BENCH_era.json).
  options.tile_cache = false;
  return options;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back({cells});
}

void Table::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const Row& row : rows_) print_row(row.cells);
}

std::string Secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s);
  return buf;
}

std::string Mib(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fMiB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

std::string Num(uint64_t v) { return std::to_string(v); }

std::string Ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

const DiskModel& BenchDiskModel() {
  static const DiskModel model;
  return model;
}

Timing TimingOf(const BuildStats& stats) {
  Timing t;
  t.wall = stats.total_seconds;
  t.modeled = stats.ModeledSeconds(BenchDiskModel());
  return t;
}

double ArgOr(int argc, char** argv, const char* name, double def) {
  const std::string key = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key.c_str(), key.size()) == 0) {
      return std::atof(argv[i] + key.size());
    }
  }
  return def;
}

ScopedRemoveAll::~ScopedRemoveAll() {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
}

}  // namespace bench
}  // namespace era
