// Table 3: shared-nothing strong scalability on the genome-like corpus with
// a fixed per-node budget (paper: 1 GB per CPU, 1-16 CPUs).
// Columns mirror the paper: WaveFront time, ERA time, ERA's gain, ERA
// speed-up normalized at 2 CPUs, and the all-in speed-up including the
// string transfer and the (serial) vertical partitioning phase.

#include <cstdio>

#include "bench/bench_common.h"
#include "era/cluster_builder.h"

namespace era {
namespace bench {
namespace {

void Run() {
  const uint64_t n = Scaled(1280 << 10);         // paper: human genome
  const uint64_t per_node = Scaled(2 << 20);     // paper: 1 GB per CPU
  TextInfo text = MakeCorpus(CorpusKind::kDna, n);
  std::printf("Table 3: shared-nothing strong scalability, genome-like %s, "
              "%s per node (paper: 1 GB)\n\n",
              Mib(n).c_str(), Mib(per_node).c_str());

  struct Point {
    unsigned cpus;
    double wf = 0;
    double era = 0;
    double era_all = 0;
  };
  std::vector<Point> points;
  for (unsigned cpus : {1u, 2u, 4u, 8u, 16u}) {
    Point p;
    p.cpus = cpus;

    ClusterOptions cluster;
    cluster.num_nodes = cpus;
    cluster.per_node_budget = per_node;

    cluster.algorithm = ParallelAlgorithm::kWaveFront;
    ClusterBuilder wf(BenchOptions(per_node, "t3_wf"), cluster);
    auto wf_result = wf.Build(text);
    if (!wf_result.ok()) {
      std::fprintf(stderr, "WF failed: %s\n",
                   wf_result.status().ToString().c_str());
      std::exit(1);
    }
    // Construction-only modeled time (per-node disks: price the busiest
    // node's I/O).
    double wf_io = 0;
    for (const IoStats& io : wf_result->node_io) {
      wf_io = std::max(wf_io, BenchDiskModel().ModeledSeconds(io));
    }
    p.wf = wf_result->ConstructionSeconds() + wf_io;

    cluster.algorithm = ParallelAlgorithm::kEra;
    ClusterBuilder era_builder(BenchOptions(per_node, "t3_era"), cluster);
    auto era_result = era_builder.Build(text);
    if (!era_result.ok()) {
      std::fprintf(stderr, "ERA failed: %s\n",
                   era_result.status().ToString().c_str());
      std::exit(1);
    }
    double era_io = 0;
    for (const IoStats& io : era_result->node_io) {
      era_io = std::max(era_io, BenchDiskModel().ModeledSeconds(io));
    }
    p.era = era_result->ConstructionSeconds() + era_io;
    p.era_all = p.era + era_result->transfer_seconds +
                era_result->vertical_seconds;
    points.push_back(p);
  }

  // Speed-ups normalized at 2 CPUs, like the paper's table.
  double era_at_2 = 0;
  double era_all_at_2 = 0;
  for (const Point& p : points) {
    if (p.cpus == 2) {
      era_at_2 = p.era;
      era_all_at_2 = p.era_all;
    }
  }
  Table table({"CPU", "WaveFront(s)", "ERA(s)", "Gain", "ERA speedup",
               "ERA all speedup"});
  for (const Point& p : points) {
    double gain = p.wf / p.era;
    std::string speedup = "-";
    std::string all_speedup = "-";
    if (p.cpus >= 2 && era_at_2 > 0) {
      // Ideal speed-up vs 2 CPUs is (cpus/2); report achieved/ideal like
      // the paper (1.0 = perfect).
      double ideal = static_cast<double>(p.cpus) / 2.0;
      speedup = Ratio((era_at_2 / p.era) / ideal);
      all_speedup = Ratio((era_all_at_2 / p.era_all) / ideal);
    }
    table.AddRow({Num(p.cpus), Secs(p.wf), Secs(p.era), Ratio(gain), speedup,
                  all_speedup});
  }
  table.Print();
  std::printf("\n(speedup columns are achieved/ideal relative to 2 CPUs; "
              "1.00x = perfect scaling)\n");
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  era::bench::Run();
  return 0;
}
