// Figure 13: shared-nothing weak scalability — string size grows with the
// node count (paper: 256 MBps/node to 4096 MBps/16 nodes, 1 GB per node).
// Expected shape: construction time grows linearly with node count for both
// systems (each node still scans the whole of S), but ERA's slope is much
// smaller, so the gap widens — 2.5x at the largest size in the paper.

#include <cstdio>

#include "bench/bench_common.h"
#include "era/cluster_builder.h"

namespace era {
namespace bench {
namespace {

double ModeledCluster(const ClusterBuildResult& result) {
  double io = 0;
  for (const IoStats& node : result.node_io) {
    io = std::max(io, BenchDiskModel().ModeledSeconds(node));
  }
  return result.ConstructionSeconds() + io;
}

void Run() {
  const uint64_t per_node_string = Scaled(512 << 10);  // paper: 256 MBps
  const uint64_t per_node_budget = Scaled(2 << 20);    // paper: 1 GB
  std::printf("Figure 13: shared-nothing weak scalability, %s of DNA per "
              "node, %s per node\n\n",
              Mib(per_node_string).c_str(), Mib(per_node_budget).c_str());
  Table table({"Nodes", "DNA(MiB)", "WF", "ERA", "WF/ERA"});
  for (unsigned nodes : {1u, 2u, 4u, 6u}) {
    uint64_t n = per_node_string * nodes;
    TextInfo text = MakeCorpus(CorpusKind::kDna, n);

    ClusterOptions cluster;
    cluster.num_nodes = nodes;
    cluster.per_node_budget = per_node_budget;

    cluster.algorithm = ParallelAlgorithm::kWaveFront;
    ClusterBuilder wf(BenchOptions(per_node_budget, "f13_wf"), cluster);
    auto wf_result = wf.Build(text);

    cluster.algorithm = ParallelAlgorithm::kEra;
    ClusterBuilder era_builder(BenchOptions(per_node_budget, "f13_era"),
                               cluster);
    auto era_result = era_builder.Build(text);
    if (!wf_result.ok() || !era_result.ok()) {
      std::fprintf(stderr, "build failed\n");
      std::exit(1);
    }
    double wf_time = ModeledCluster(*wf_result);
    double era_time = ModeledCluster(*era_result);
    table.AddRow({Num(nodes), Mib(n), Secs(wf_time), Secs(era_time),
                  Ratio(wf_time / era_time)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  era::bench::Run();
  return 0;
}
