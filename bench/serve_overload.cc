// Shedding-vs-collapse benchmark: what admission control buys under
// overload, and what deadline enforcement costs when it is not needed.
//
// Emits BENCH_serve.json in the current directory and exits non-zero when
// the overload-control guarantees do not hold (CI runs this as a guard).
//
// Methodology:
//  * Index + patterns are built once (PosixEnv). Serving goes through a
//    LatencyEnv with a BOUNDED device queue depth: the device can run
//    `--slots` requests concurrently and queues the rest FIFO. The bound is
//    what makes "capacity" a real number — with unbounded concurrency every
//    offered load is below capacity and overload cannot be observed.
//  * Capacity is measured closed-loop with `--slots` threads (one per
//    device slot, so the device is saturated but never queues). All serving
//    runs warm the engine with one full workload pass first, so the rows
//    compare steady-state service, not cold-cache misses.
//  * The sweep is OPEN-LOOP: query j has a fixed scheduled arrival
//    start + j/rate and a deadline of scheduled + --deadline-ms,
//    independent of how backlogged the server is (arrivals do not slow down
//    because the server is slow — that is what makes overload dangerous).
//    Each offered load (0.5x/1x/2x/4x capacity) runs twice: admission ON
//    (slots + a small bounded queue, shed beyond) and OFF (every arrival
//    enters the engine and piles onto the device).
//  * Goodput counts only on-time, byte-correct answers: status OK, finished
//    before the deadline, and result checksum identical to the unloaded
//    reference. Everything else — shed, expired, late — is not goodput.
//  * The deadline storm is the correctness half: 8 threads fire the whole
//    workload with tiny randomized deadlines through a live admission
//    controller; every single response must be byte-correct OK,
//    DeadlineExceeded, or ResourceExhausted. Anything else (wrong bytes, a
//    hang, a crash, an unexpected code) fails the bench.
//
// Guards (exit 1 when violated):
//  * controlled goodput at 2x offered >= --min-goodput-frac * capacity
//  * controlled goodput at 4x offered >= --min-collapse-ratio * uncontrolled
//    goodput at 4x
//  * storm saw only the three legal outcomes and nonzero successes

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/query_context.h"
#include "era/era_builder.h"
#include "io/latency_env.h"
#include "io/posix_env.h"
#include "query/admission.h"
#include "query/query_engine.h"
#include "query/query_workload.h"
#include "text/corpus.h"
#include "text/text_generator.h"

namespace era {
namespace {

using bench::ArgOr;
using bench::ScopedRemoveAll;
using Clock = QueryContext::Clock;

/// Every 4th query is a Locate (mirrors the mixed serving workload); the
/// rest are Counts.
constexpr std::size_t kLocateEvery = 4;
constexpr std::size_t kLocateLimit = 100;

bool IsLocate(std::size_t j) { return j % kLocateEvery == kLocateEvery - 1; }

/// Order-independent checksum of one query's answer, comparable between the
/// unloaded reference run and the loaded runs.
uint64_t CountChecksum(uint64_t count) { return count * 0x9e3779b97f4a7c15ull; }
uint64_t LocateChecksum(const std::vector<uint64_t>& offsets) {
  uint64_t sum = offsets.size();
  for (uint64_t offset : offsets) sum += offset * 0x9e3779b97f4a7c15ull + 1;
  return sum;
}

/// Issues query j with `ctx`; returns its status and fills `checksum` on OK.
Status IssueQuery(QueryEngine* engine, const QueryContext& ctx,
                  const std::vector<std::string>& patterns, std::size_t j,
                  uint64_t* checksum) {
  const std::string& pattern = patterns[j % patterns.size()];
  if (IsLocate(j)) {
    auto hits = engine->Locate(ctx, pattern, kLocateLimit);
    if (!hits.ok()) return hits.status();
    *checksum = LocateChecksum(*hits);
    return Status::OK();
  }
  auto count = engine->Count(ctx, pattern);
  if (!count.ok()) return count.status();
  *checksum = CountChecksum(*count);
  return Status::OK();
}

/// One full pass over the workload from `threads` closed-loop threads
/// (thread t takes j = t, t+T, ...). Returns wall seconds, or < 0 on error.
double ClosedLoopPass(QueryEngine* engine,
                      const std::vector<std::string>& patterns,
                      unsigned threads) {
  std::atomic<bool> failed{false};
  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t j = t; j < patterns.size(); j += threads) {
        uint64_t checksum = 0;
        Status s = IssueQuery(engine, QueryContext::Background(), patterns, j,
                              &checksum);
        if (!s.ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (failed.load()) return -1.0;
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Aggregate of one open-loop run.
struct LoadResult {
  double offered_qps = 0;
  bool admission = false;
  uint64_t offered = 0;
  uint64_t ok = 0;
  uint64_t correct_on_time = 0;  // goodput numerator
  uint64_t late_or_wrong = 0;    // OK but after deadline / wrong bytes
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t other_errors = 0;
  double elapsed_seconds = 0;
  double goodput_qps = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
};

/// Open-loop run: `runners` threads drain a shared arrival schedule at
/// `rate` arrivals/second for ~`seconds`. Query j's deadline starts at its
/// SCHEDULED arrival — a backlogged server burns the client's budget.
LoadResult OpenLoopRun(QueryEngine* engine,
                       const std::vector<std::string>& patterns,
                       const std::vector<uint64_t>& reference, double rate,
                       bool admission, unsigned runners, double seconds,
                       double deadline_seconds) {
  LoadResult result;
  result.offered_qps = rate;
  result.admission = admission;

  std::atomic<uint64_t> next{0};
  std::mutex mu;  // guards the per-run aggregates below
  // Sojourn latencies go through the shared histogram type (lock-free
  // Observe from every runner) instead of a private sorted array; the
  // percentiles below come from its interpolated quantiles.
  Histogram sojourn_seconds;
  const auto start = Clock::now();
  const auto deadline_budget = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(deadline_seconds));

  std::vector<std::thread> workers;
  workers.reserve(runners);
  for (unsigned t = 0; t < runners; ++t) {
    workers.emplace_back([&, t] {
      uint64_t ok = 0, correct_on_time = 0, late_or_wrong = 0, shed = 0;
      uint64_t expired = 0, other = 0;
      for (;;) {
        const uint64_t j = next.fetch_add(1);
        const auto scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(j) / rate));
        if (std::chrono::duration<double>(scheduled - start).count() >
            seconds) {
          break;  // past the measurement window; stop offering
        }
        std::this_thread::sleep_until(scheduled);
        QueryContext ctx =
            QueryContext::WithDeadline(scheduled + deadline_budget);
        ctx.client_id = t;
        uint64_t checksum = 0;
        Status s = IssueQuery(engine, ctx, patterns, j, &checksum);
        const auto done = Clock::now();
        if (s.ok()) {
          ++ok;
          const bool on_time = done <= scheduled + deadline_budget;
          const bool correct = checksum == reference[j % reference.size()];
          if (on_time && correct) {
            ++correct_on_time;
            sojourn_seconds.Observe(
                std::chrono::duration<double>(done - scheduled).count());
          } else {
            ++late_or_wrong;
          }
        } else if (s.IsResourceExhausted()) {
          ++shed;
        } else if (s.IsDeadlineExceeded()) {
          ++expired;
        } else {
          ++other;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.ok += ok;
      result.correct_on_time += correct_on_time;
      result.late_or_wrong += late_or_wrong;
      result.shed += shed;
      result.deadline_exceeded += expired;
      result.other_errors += other;
    });
  }
  for (std::thread& w : workers) w.join();

  result.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.offered = result.ok + result.late_or_wrong + result.shed +
                   result.deadline_exceeded + result.other_errors;
  result.goodput_qps = result.elapsed_seconds > 0
                           ? static_cast<double>(result.correct_on_time) /
                                 result.elapsed_seconds
                           : 0;
  const HistogramSnapshot sojourn = sojourn_seconds.snapshot();
  if (sojourn.count > 0) {
    result.p50_ms = sojourn.Quantile(0.50) * 1000.0;
    result.p90_ms = sojourn.Quantile(0.90) * 1000.0;
    result.p99_ms = sojourn.Quantile(0.99) * 1000.0;
  }
  return result;
}

/// Deadline storm: every thread fires the whole workload with tiny random
/// deadlines; tallies outcomes and flags anything outside the contract.
struct StormResult {
  uint64_t queries = 0;
  uint64_t ok_correct = 0;
  uint64_t ok_wrong = 0;  // must stay 0: admitted answers must be identical
  uint64_t deadline_exceeded = 0;
  uint64_t shed = 0;
  uint64_t illegal_status = 0;  // must stay 0
};

StormResult DeadlineStorm(QueryEngine* engine,
                          const std::vector<std::string>& patterns,
                          const std::vector<uint64_t>& reference,
                          unsigned threads) {
  StormResult result;
  std::mutex mu;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(0x5eedull * (t + 1));
      std::uniform_real_distribution<double> deadline_ms(0.05, 5.0);
      StormResult local;
      for (std::size_t j = t; j < patterns.size(); j += threads) {
        QueryContext ctx =
            QueryContext::WithTimeout(deadline_ms(rng) / 1000.0);
        ctx.client_id = t;
        uint64_t checksum = 0;
        Status s = IssueQuery(engine, ctx, patterns, j, &checksum);
        ++local.queries;
        if (s.ok()) {
          if (checksum == reference[j % reference.size()]) {
            ++local.ok_correct;
          } else {
            ++local.ok_wrong;
          }
        } else if (s.IsDeadlineExceeded()) {
          ++local.deadline_exceeded;
        } else if (s.IsResourceExhausted()) {
          ++local.shed;
        } else {
          ++local.illegal_status;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.queries += local.queries;
      result.ok_correct += local.ok_correct;
      result.ok_wrong += local.ok_wrong;
      result.deadline_exceeded += local.deadline_exceeded;
      result.shed += local.shed;
      result.illegal_status += local.illegal_status;
    });
  }
  for (std::thread& w : workers) w.join();
  return result;
}

int Main(int argc, char** argv) {
  const double text_mb = ArgOr(argc, argv, "mb", 2.0);
  const double bandwidth_mb = ArgOr(argc, argv, "bandwidth-mb", 96.0);
  const double budget_mb = ArgOr(argc, argv, "budget-mb", 8.0);
  const double cache_mb = ArgOr(argc, argv, "cache-mb", 64.0);
  const std::size_t num_patterns =
      static_cast<std::size_t>(ArgOr(argc, argv, "patterns", 2000.0));
  const uint32_t slots =
      static_cast<uint32_t>(ArgOr(argc, argv, "slots", 4.0));
  const unsigned runners =
      static_cast<unsigned>(ArgOr(argc, argv, "runners", 16.0));
  const uint32_t queue =
      static_cast<uint32_t>(ArgOr(argc, argv, "queue", 8.0));
  const double seconds = ArgOr(argc, argv, "seconds", 3.0);
  double deadline_ms = ArgOr(argc, argv, "deadline-ms", 0.0);
  const double min_goodput_frac =
      ArgOr(argc, argv, "min-goodput-frac", 0.7);
  const double min_collapse_ratio =
      ArgOr(argc, argv, "min-collapse-ratio", 2.0);
  const uint64_t body_len = static_cast<uint64_t>(text_mb * 1024 * 1024);

  // The serving device: bounded queue depth = the admission slot count, so
  // the controller's cap matches what the device can genuinely run.
  LatencyModel model;
  model.read_bytes_per_second = bandwidth_mb * 1024 * 1024;
  model.write_bytes_per_second = bandwidth_mb * 1024 * 1024;
  model.queue_depth = slots;

  Env* posix = GetDefaultEnv();
  LatencyEnv env(posix, model);

  const std::string root = "/tmp/era_serve_" + std::to_string(::getpid());
  Status dir_status = posix->CreateDir(root);
  if (!dir_status.ok()) {
    std::fprintf(stderr, "%s\n", dir_status.ToString().c_str());
    return 1;
  }
  ScopedRemoveAll cleanup{root};

  // Setup (raw env): corpus, index, workload.
  std::string text = GenerateDna(body_len, /*seed=*/42);
  auto info = MaterializeText(posix, root + "/text", Alphabet::Dna(), text);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  {
    BuildOptions options;
    options.env = posix;
    options.work_dir = root + "/idx";
    options.memory_budget = static_cast<uint64_t>(budget_mb * 1024 * 1024);
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    if (!result.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
  }
  QueryWorkloadOptions workload_options;
  workload_options.num_patterns = num_patterns;
  std::vector<std::string> patterns =
      SamplePatternWorkload(text, workload_options);
  text.clear();
  text.shrink_to_fit();

  QueryEngineOptions base_options;
  base_options.cache.budget_bytes =
      static_cast<uint64_t>(cache_mb * 1024 * 1024);

  // Reference checksums from an UNLOADED engine on the raw env: ground
  // truth every loaded answer must match byte-for-byte.
  std::vector<uint64_t> reference(patterns.size(), 0);
  {
    auto engine = QueryEngine::Open(posix, root + "/idx", base_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    for (std::size_t j = 0; j < patterns.size(); ++j) {
      Status s = IssueQuery(engine->get(), QueryContext::Background(),
                            patterns, j, &reference[j]);
      if (!s.ok()) {
        std::fprintf(stderr, "reference query failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
    }
  }

  // Capacity: closed loop at one thread per device slot, warmed first.
  double capacity_qps = 0;
  {
    auto engine = QueryEngine::Open(&env, root + "/idx", base_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    if (ClosedLoopPass(engine->get(), patterns, slots) < 0) {
      std::fprintf(stderr, "warm pass failed\n");
      return 1;
    }
    const double wall = ClosedLoopPass(engine->get(), patterns, slots);
    if (wall < 0) {
      std::fprintf(stderr, "capacity pass failed\n");
      return 1;
    }
    capacity_qps = static_cast<double>(patterns.size()) / wall;
  }
  // Mean service time ~= slots / capacity (slots queries in flight). The
  // default deadline is a generous multiple: unloaded queries never miss
  // it, backlogged ones do.
  const double mean_service_ms = 1000.0 * slots / capacity_qps;
  if (deadline_ms <= 0) {
    deadline_ms = std::min(250.0, std::max(20.0, 6.0 * mean_service_ms));
  }
  std::fprintf(stderr,
               "capacity=%.0f qps (slots=%u, mean service %.2f ms), "
               "deadline=%.0f ms\n",
               capacity_qps, slots, mean_service_ms, deadline_ms);

  // The sweep: offered load 0.5x/1x/2x/4x capacity, admission on vs off.
  std::vector<LoadResult> rows;
  for (double mult : {0.5, 1.0, 2.0, 4.0}) {
    for (bool admission : {true, false}) {
      QueryEngineOptions options = base_options;
      options.admission.enabled = admission;
      options.admission.max_in_flight = slots;
      options.admission.max_queue = queue;
      auto engine = QueryEngine::Open(&env, root + "/idx", options);
      if (!engine.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      if (ClosedLoopPass(engine->get(), patterns, slots) < 0) {
        std::fprintf(stderr, "warm pass failed\n");
        return 1;
      }
      LoadResult row = OpenLoopRun(engine->get(), patterns, reference,
                                   mult * capacity_qps, admission, runners,
                                   seconds, deadline_ms / 1000.0);
      if (row.other_errors != 0) {
        std::fprintf(stderr,
                     "FATAL: %llu responses with unexpected status at "
                     "%.1fx load (admission=%d)\n",
                     static_cast<unsigned long long>(row.other_errors), mult,
                     admission ? 1 : 0);
        return 1;
      }
      ServingStats serving = (*engine)->serving();
      std::fprintf(
          stderr,
          "offered=%.1fx (%.0f qps) admission=%-3s goodput=%.0f qps "
          "ok=%llu shed=%llu expired=%llu late=%llu p50=%.1fms p99=%.1fms "
          "(served: admitted=%llu queued=%llu shed=%llu)\n",
          mult, row.offered_qps, admission ? "on" : "off", row.goodput_qps,
          static_cast<unsigned long long>(row.ok),
          static_cast<unsigned long long>(row.shed),
          static_cast<unsigned long long>(row.deadline_exceeded),
          static_cast<unsigned long long>(row.late_or_wrong), row.p50_ms,
          row.p99_ms, static_cast<unsigned long long>(serving.admitted),
          static_cast<unsigned long long>(serving.queued),
          static_cast<unsigned long long>(serving.shed));
      rows.push_back(row);
    }
  }

  // Deadline storm through a live controller.
  StormResult storm;
  {
    QueryEngineOptions options = base_options;
    options.admission.enabled = true;
    options.admission.max_in_flight = slots;
    options.admission.max_queue = queue;
    auto engine = QueryEngine::Open(&env, root + "/idx", options);
    if (!engine.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    storm = DeadlineStorm(engine->get(), patterns, reference, /*threads=*/8);
    std::fprintf(stderr,
                 "storm: %llu queries -> ok=%llu expired=%llu shed=%llu "
                 "wrong=%llu illegal=%llu\n",
                 static_cast<unsigned long long>(storm.queries),
                 static_cast<unsigned long long>(storm.ok_correct),
                 static_cast<unsigned long long>(storm.deadline_exceeded),
                 static_cast<unsigned long long>(storm.shed),
                 static_cast<unsigned long long>(storm.ok_wrong),
                 static_cast<unsigned long long>(storm.illegal_status));
  }

  // Guards.
  const LoadResult* on_2x = nullptr;
  const LoadResult* on_4x = nullptr;
  const LoadResult* off_4x = nullptr;
  for (const LoadResult& row : rows) {
    const double mult = row.offered_qps / capacity_qps;
    if (row.admission && mult > 1.5 && mult < 2.5) on_2x = &row;
    if (row.admission && mult > 3.0) on_4x = &row;
    if (!row.admission && mult > 3.0) off_4x = &row;
  }
  bool failed = false;
  if (on_2x == nullptr || on_4x == nullptr || off_4x == nullptr) {
    std::fprintf(stderr, "FATAL: sweep rows missing\n");
    failed = true;
  } else {
    if (on_2x->goodput_qps < min_goodput_frac * capacity_qps) {
      std::fprintf(stderr,
                   "GUARD FAILED: goodput at 2x with admission = %.0f qps "
                   "< %.0f%% of capacity %.0f qps\n",
                   on_2x->goodput_qps, 100 * min_goodput_frac, capacity_qps);
      failed = true;
    }
    // Uncontrolled goodput can round to ~0; guard against div-by-zero by
    // comparing cross-multiplied.
    if (on_4x->goodput_qps < min_collapse_ratio * off_4x->goodput_qps) {
      std::fprintf(stderr,
                   "GUARD FAILED: goodput at 4x, admission on (%.0f qps) < "
                   "%.1fx admission off (%.0f qps)\n",
                   on_4x->goodput_qps, min_collapse_ratio,
                   off_4x->goodput_qps);
      failed = true;
    }
  }
  if (storm.ok_wrong != 0 || storm.illegal_status != 0 ||
      storm.ok_correct == 0) {
    std::fprintf(stderr,
                 "GUARD FAILED: storm contract (wrong=%llu illegal=%llu "
                 "ok=%llu)\n",
                 static_cast<unsigned long long>(storm.ok_wrong),
                 static_cast<unsigned long long>(storm.illegal_status),
                 static_cast<unsigned long long>(storm.ok_correct));
    failed = true;
  }

  FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"serve_overload\",\n");
  std::fprintf(out, "  \"corpus\": \"generated DNA (seed 42)\",\n");
  std::fprintf(out, "  \"text_mb\": %.2f,\n", text_mb);
  std::fprintf(out, "  \"patterns\": %zu,\n", patterns.size());
  std::fprintf(out,
               "  \"device\": {\"kind\": \"LatencyEnv\", "
               "\"bandwidth_mb_per_s\": %.1f, \"request_latency_us\": %.0f, "
               "\"queue_depth\": %u},\n",
               bandwidth_mb, model.read_latency_seconds * 1e6, slots);
  std::fprintf(out,
               "  \"admission\": {\"max_in_flight\": %u, \"max_queue\": %u},"
               "\n",
               slots, queue);
  std::fprintf(out, "  \"runners\": %u,\n", runners);
  std::fprintf(out, "  \"capacity_qps\": %.1f,\n", capacity_qps);
  std::fprintf(out, "  \"mean_service_ms\": %.3f,\n", mean_service_ms);
  std::fprintf(out, "  \"deadline_ms\": %.1f,\n", deadline_ms);
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LoadResult& r = rows[i];
    std::fprintf(
        out,
        "    {\"offered_x_capacity\": %.2f, \"offered_qps\": %.1f, "
        "\"admission\": %s, \"offered\": %llu, \"ok\": %llu, "
        "\"goodput_qps\": %.1f, \"goodput\": %llu, \"shed\": %llu, "
        "\"deadline_exceeded\": %llu, \"late_or_wrong\": %llu, "
        "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"p90_ms\": %.2f, "
        "\"elapsed_seconds\": %.2f}%s\n",
        r.offered_qps / capacity_qps, r.offered_qps,
        r.admission ? "true" : "false",
        static_cast<unsigned long long>(r.offered),
        static_cast<unsigned long long>(r.ok), r.goodput_qps,
        static_cast<unsigned long long>(r.correct_on_time),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.deadline_exceeded),
        static_cast<unsigned long long>(r.late_or_wrong), r.p50_ms, r.p99_ms,
        r.p90_ms, r.elapsed_seconds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"deadline_storm\": {\"threads\": 8, \"queries\": %llu, "
               "\"ok_correct\": %llu, \"deadline_exceeded\": %llu, "
               "\"shed\": %llu, \"ok_wrong\": %llu, \"illegal_status\": "
               "%llu},\n",
               static_cast<unsigned long long>(storm.queries),
               static_cast<unsigned long long>(storm.ok_correct),
               static_cast<unsigned long long>(storm.deadline_exceeded),
               static_cast<unsigned long long>(storm.shed),
               static_cast<unsigned long long>(storm.ok_wrong),
               static_cast<unsigned long long>(storm.illegal_status));
  std::fprintf(out,
               "  \"guards\": {\"min_goodput_frac_at_2x\": %.2f, "
               "\"min_collapse_ratio_at_4x\": %.2f, \"passed\": %s}\n",
               min_goodput_frac, min_collapse_ratio,
               failed ? "false" : "true");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote BENCH_serve.json%s\n",
               failed ? " (GUARDS FAILED)" : "");
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace era

int main(int argc, char** argv) { return era::Main(argc, argv); }
