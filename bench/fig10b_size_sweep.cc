// Figure 10(b): ERA vs WaveFront vs B2ST, string-size sweep at a fixed
// (small) memory budget (paper: 2.5-4 GBps DNA at 1 GB; scaled 1:256).
// Expected shape: ERA at least 2x faster; the WaveFront gap widens with
// string length.

#include <cstdio>

#include "b2st/b2st.h"
#include "bench/bench_common.h"
#include "era/era_builder.h"
#include "wavefront/wavefront.h"

namespace era {
namespace bench {
namespace {

void Run() {
  const uint64_t budget = Scaled(2 << 20);  // paper: 1 GB
  std::printf("Figure 10(b): serial comparison, DNA size sweep, budget = %s "
              "(paper: 1 GB)\n\n",
              Mib(budget).c_str());
  Table table({"DNA(MiB)", "WF", "B2ST", "ERA", "WF/ERA", "B2ST/ERA"});
  for (uint64_t kb : {1280, 1536, 1792}) {  // 2.5-3.5 "GBps" scaled
    uint64_t n = Scaled(static_cast<uint64_t>(kb) << 10);
    TextInfo text = MakeCorpus(CorpusKind::kDna, n);

    WaveFrontBuilder wf(BenchOptions(budget, "f10b_wf"));
    auto wf_result = wf.Build(text);
    B2stBuilder b2st(BenchOptions(budget, "f10b_b2st"));
    auto b2st_result = b2st.Build(text);
    EraBuilder era_builder(BenchOptions(budget, "f10b_era"));
    auto era_result = era_builder.Build(text);
    if (!wf_result.ok() || !b2st_result.ok() || !era_result.ok()) {
      std::fprintf(stderr, "build failed\n");
      std::exit(1);
    }
    double wf_time = TimingOf(wf_result->stats).modeled;
    double b2st_time = TimingOf(b2st_result->stats).modeled;
    double era_time = TimingOf(era_result->stats).modeled;
    table.AddRow({Mib(n), Secs(wf_time), Secs(b2st_time), Secs(era_time),
                  Ratio(wf_time / era_time), Ratio(b2st_time / era_time)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace era

int main() {
  era::bench::Run();
  return 0;
}
