// Time-series motif discovery (Section 1's time-series analysis motivation,
// in the style of the paper's reference [15]).
//
//   ./timeseries_motif
//
// Generates a synthetic stream with an embedded recurring pattern,
// discretizes it SAX-style into a small symbolic alphabet, indexes the
// symbol string with ERA, and mines (a) the most frequent fixed-length
// motif and (b) the longest repeated pattern.

#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "era/era_builder.h"
#include "io/env.h"
#include "query/applications.h"
#include "query/query_engine.h"
#include "text/corpus.h"

namespace {

/// Piecewise discretization of a real-valued series into symbols a..h
/// (SAX-style equal-width bins after z-normalization).
std::string Discretize(const std::vector<double>& series, int bins) {
  double mean = 0;
  for (double v : series) mean += v;
  mean /= static_cast<double>(series.size());
  double var = 0;
  for (double v : series) var += (v - mean) * (v - mean);
  double stddev = std::sqrt(var / static_cast<double>(series.size()));
  if (stddev == 0) stddev = 1;

  std::string out;
  out.reserve(series.size() + 1);
  for (double v : series) {
    double z = (v - mean) / stddev;               // roughly in [-3, 3]
    int bin = static_cast<int>((z + 3.0) / 6.0 * bins);
    bin = std::max(0, std::min(bins - 1, bin));
    out.push_back(static_cast<char>('a' + bin));
  }
  out.push_back(era::kTerminal);
  return out;
}

}  // namespace

int main() {
  using namespace era;

  // ---- Synthetic stream: noise + a recurring "heartbeat" motif.
  const std::size_t length = 1 << 20;
  std::mt19937_64 rng(99);
  std::normal_distribution<double> noise(0.0, 0.4);
  std::vector<double> series(length);
  double level = 0;
  for (std::size_t i = 0; i < length; ++i) {
    level = 0.95 * level + noise(rng);
    series[i] = level;
  }
  // Plant the motif (two bumps) at pseudo-random offsets.
  std::vector<double> motif;
  for (int i = 0; i < 64; ++i) {
    motif.push_back(3.0 * std::sin(i / 64.0 * 2 * M_PI) +
                    1.5 * std::sin(i / 8.0 * 2 * M_PI));
  }
  const int plant_count = 24;
  for (int p = 0; p < plant_count; ++p) {
    std::size_t offset = (rng() % (length - motif.size()));
    for (std::size_t i = 0; i < motif.size(); ++i) {
      series[offset + i] = motif[i];
    }
  }

  // ---- Discretize and index.
  Env* env = GetDefaultEnv();
  const std::string dir = "/tmp/era_timeseries";
  if (Status s = env->CreateDir(dir); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::string symbols = Discretize(series, 8);
  auto alphabet = Alphabet::Create("abcdefgh");
  auto text = MaterializeText(env, dir + "/series.txt", *alphabet, symbols);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  std::printf("discretized %zu samples into %d-symbol SAX string\n", length,
              8);

  BuildOptions options;
  options.work_dir = dir + "/index";
  options.memory_budget = 2 << 20;  // out-of-core regime on purpose
  EraBuilder builder(options);
  auto result = builder.Build(*text);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed in %.2fs (%llu sub-trees, budget %s)\n",
              result->stats.total_seconds,
              static_cast<unsigned long long>(result->stats.num_subtrees),
              "2 MiB");

  // ---- Mine motifs.
  for (uint64_t k : {16ull, 32ull, 48ull}) {
    auto motif_hit = MostFrequentKmer(env, result->index, symbols, k);
    if (!motif_hit.ok()) {
      std::fprintf(stderr, "%s\n", motif_hit.status().ToString().c_str());
      return 1;
    }
    std::printf("most frequent length-%llu motif: %llu occurrences at "
                "offset %llu\n",
                static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(motif_hit->count),
                static_cast<unsigned long long>(motif_hit->offset));
  }

  auto lrs = LongestRepeatedSubstring(env, result->index, symbols);
  if (!lrs.ok()) {
    std::fprintf(stderr, "%s\n", lrs.status().ToString().c_str());
    return 1;
  }
  std::printf("longest repeated pattern: %llu samples (planted motif is %zu "
              "samples, recurring %dx)\n",
              static_cast<unsigned long long>(lrs->length), motif.size(),
              plant_count);
  return 0;
}
