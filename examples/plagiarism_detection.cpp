// Plagiarism detection via a generalized suffix tree (Section 1's document
// clustering / common-substring motivation).
//
//   ./plagiarism_detection
//
// Builds one ERA index over a collection of English-like documents (two of
// which share plagiarized passages), then reports the longest common
// substring of every document pair — the classic generalized-suffix-tree
// application.

#include <cstdio>
#include <string>
#include <vector>

#include "era/era_builder.h"
#include "io/env.h"
#include "query/applications.h"
#include "text/text_generator.h"

int main() {
  using namespace era;

  Env* env = GetDefaultEnv();
  const std::string dir = "/tmp/era_plagiarism";
  if (Status s = env->CreateDir(dir); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // ---- A small corpus of documents; documents 0 and 2 share a planted
  //      passage, documents 1 and 3 are independent.
  const std::string passage =
      "intheorysuffixtreesanswersubstringqueriesinoptimaltime";
  std::vector<std::string> docs;
  for (int d = 0; d < 4; ++d) {
    std::string text = GenerateEnglish(20000, 1000 + d);
    text.pop_back();  // strip the terminal; ConcatenateDocuments adds one
    if (d == 0) text.insert(5000, passage);
    if (d == 2) text.insert(12000, passage);
    docs.push_back(std::move(text));
  }

  // ---- Generalized text: documents joined by '#', one index for all.
  auto combined = ConcatenateDocuments(docs, '#');
  if (!combined.ok()) {
    std::fprintf(stderr, "%s\n", combined.status().ToString().c_str());
    return 1;
  }
  auto alphabet = Alphabet::Create("#abcdefghijklmnopqrstuvwxyz");
  auto text = MaterializeText(env, dir + "/docs.txt", *alphabet,
                              combined->text);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }

  BuildOptions options;
  options.work_dir = dir + "/index";
  options.memory_budget = 4 << 20;
  EraBuilder builder(options);
  auto result = builder.Build(*text);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu documents (%llu symbols) in %.2fs\n", docs.size(),
              static_cast<unsigned long long>(text->length - 1),
              result->stats.total_seconds);

  // ---- Longest common substring of every pair.
  std::printf("\npairwise longest common substrings:\n");
  for (std::size_t a = 0; a < docs.size(); ++a) {
    for (std::size_t b = a + 1; b < docs.size(); ++b) {
      auto lcs = LongestCommonSubstring(env, result->index,
                                        combined->documents,
                                        static_cast<uint32_t>(a),
                                        static_cast<uint32_t>(b));
      if (!lcs.ok()) {
        std::fprintf(stderr, "%s\n", lcs.status().ToString().c_str());
        return 1;
      }
      std::string preview =
          combined->text.substr(lcs->offset, std::min<uint64_t>(lcs->length,
                                                                 40));
      std::printf("  doc%zu vs doc%zu: %4llu symbols  \"%s%s\"%s\n", a, b,
                  static_cast<unsigned long long>(lcs->length),
                  preview.c_str(), lcs->length > 40 ? "..." : "",
                  lcs->length >= passage.size() ? "   <-- SUSPICIOUS" : "");
    }
  }
  std::printf("\n(the planted passage has %zu symbols; doc0/doc2 should "
              "stand out)\n",
              passage.size());
  return 0;
}
