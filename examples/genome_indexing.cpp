// Genome indexing: the paper's flagship scenario (Section 6) end to end.
//
//   ./genome_indexing [fasta_file]
//
// Without an argument, a synthetic genome-like sequence is generated (the
// substitution documented in DESIGN.md §4); with one, the FASTA file is
// imported. The genome is indexed with the parallel shared-memory builder,
// then analyzed: longest repeated substring and exact-match probes — the
// primitives behind read alignment and repeat discovery in bioinformatics.

#include <cstdio>
#include <cstring>
#include <string>

#include "era/parallel_builder.h"
#include "io/env.h"
#include "query/applications.h"
#include "query/query_engine.h"
#include "text/corpus.h"
#include "text/fasta.h"

int main(int argc, char** argv) {
  using namespace era;

  Env* env = GetDefaultEnv();
  const std::string dir = "/tmp/era_genome";
  if (Status s = env->CreateDir(dir); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // ---- Acquire the sequence.
  TextInfo text;
  if (argc > 1) {
    std::printf("importing FASTA %s...\n", argv[1]);
    auto imported =
        ReadFasta(env, argv[1], Alphabet::Dna(), FastaCleanPolicy::kSkip);
    if (!imported.ok()) {
      std::fprintf(stderr, "%s\n", imported.status().ToString().c_str());
      return 1;
    }
    auto info =
        MaterializeText(env, dir + "/genome.txt", Alphabet::Dna(), *imported);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    text = *info;
  } else {
    std::printf("no FASTA given; generating a synthetic genome-like "
                "sequence (4 MiB)...\n");
    auto info = MaterializeCorpus(env, dir + "/genome.txt", CorpusKind::kDna,
                                  4ull << 20, /*seed=*/2011);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    text = *info;
  }
  std::printf("sequence: %llu symbols\n",
              static_cast<unsigned long long>(text.length - 1));

  // ---- Parallel build (Section 5's shared-memory architecture).
  BuildOptions options;
  options.work_dir = dir + "/index";
  options.memory_budget = std::max<uint64_t>(4 << 20, text.length / 2);
  const unsigned cores = 4;
  ParallelBuilder builder(options, cores);
  auto result = builder.Build(text);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed on %u cores in %.2fs (vertical %.2fs; %llu virtual "
              "trees)\n",
              cores, result->stats.total_seconds,
              result->stats.vertical_seconds,
              static_cast<unsigned long long>(result->stats.num_groups));

  // ---- Analysis: the longest repeated region.
  std::string body;
  if (Status s = env->ReadFileToString(text.path, &body); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto lrs = LongestRepeatedSubstring(env, result->index, body);
  if (!lrs.ok()) {
    std::fprintf(stderr, "%s\n", lrs.status().ToString().c_str());
    return 1;
  }
  std::printf("longest repeated region: %llu bp at offset %llu\n",
              static_cast<unsigned long long>(lrs->length),
              static_cast<unsigned long long>(lrs->offset));
  if (lrs->length > 0) {
    std::string preview = body.substr(lrs->offset, std::min<uint64_t>(
                                                       lrs->length, 50));
    std::printf("  %s%s\n", preview.c_str(),
                lrs->length > 50 ? "..." : "");
  }

  // ---- Probe alignment: exact-match short reads sampled from the genome.
  auto engine = QueryEngine::Open(env, dir + "/index");
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("aligning 5 sampled 32 bp reads:\n");
  for (int r = 0; r < 5; ++r) {
    uint64_t offset = (text.length / 7) * (r + 1) % (text.length - 40);
    std::string read = body.substr(offset, 32);
    auto hits = (*engine)->Locate(read, 5);
    if (!hits.ok()) {
      std::fprintf(stderr, "%s\n", hits.status().ToString().c_str());
      return 1;
    }
    std::printf("  read@%-9llu -> %zu hit(s):",
                static_cast<unsigned long long>(offset), hits->size());
    for (uint64_t h : *hits) {
      std::printf(" %llu", static_cast<unsigned long long>(h));
    }
    std::printf("\n");
  }
  return 0;
}
