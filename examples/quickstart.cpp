// Quickstart: build a disk-based suffix-tree index with ERA and query it.
//
//   ./quickstart [body_length]
//
// Generates a synthetic DNA string, indexes it with a deliberately small
// memory budget (out-of-core regime), and runs a few exact-match queries.

#include <cstdio>
#include <cstdlib>

#include "era/era_builder.h"
#include "io/env.h"
#include "query/query_engine.h"
#include "text/corpus.h"

int main(int argc, char** argv) {
  using namespace era;

  const uint64_t body_length =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (2ull << 20);
  Env* env = GetDefaultEnv();
  const std::string dir = "/tmp/era_quickstart";
  if (Status s = env->CreateDir(dir); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 1. Materialize a corpus (any text over a declared alphabet works; FASTA
  //    import is available through text/fasta.h).
  std::printf("generating %llu symbols of DNA...\n",
              static_cast<unsigned long long>(body_length));
  auto text = MaterializeCorpus(env, dir + "/genome.txt", CorpusKind::kDna,
                                body_length, /*seed=*/42);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }

  // 2. Build the index. The budget is ~1/4 of the string: ERA runs in its
  //    out-of-core regime, partitioning the tree into virtual trees.
  BuildOptions options;
  options.work_dir = dir + "/index";
  options.memory_budget = std::max<uint64_t>(1 << 20, body_length / 2);
  EraBuilder builder(options);
  auto result = builder.Build(*text);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("built index: %s\n", result->stats.ToString().c_str());
  std::printf("  %llu sub-trees in %llu virtual trees (FM = %llu leaves)\n",
              static_cast<unsigned long long>(result->stats.num_subtrees),
              static_cast<unsigned long long>(result->stats.num_groups),
              static_cast<unsigned long long>(result->stats.fm));

  // 3. Query: open the index from disk and search.
  auto engine = QueryEngine::Open(env, dir + "/index");
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  for (const char* pattern : {"ACGT", "TTTTTTTT", "GATTACA", "CCGG"}) {
    auto count = (*engine)->Count(pattern);
    if (!count.ok()) {
      std::fprintf(stderr, "%s\n", count.status().ToString().c_str());
      return 1;
    }
    std::printf("  '%s' occurs %llu times", pattern,
                static_cast<unsigned long long>(*count));
    auto hits = (*engine)->Locate(pattern, 3);
    if (hits.ok() && !hits->empty()) {
      std::printf(" (first at");
      for (uint64_t h : *hits) {
        std::printf(" %llu", static_cast<unsigned long long>(h));
      }
      std::printf(")");
    }
    std::printf("\n");
  }
  std::printf("done; index directory: %s\n", (dir + "/index").c_str());
  return 0;
}
