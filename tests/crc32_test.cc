// CRC kernels: known vectors, seed chaining, and byte-for-byte equivalence
// of the dispatched CRC-32C path against the software reference.

#include "common/crc32.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace era {
namespace {

TEST(Crc32Test, IeeeKnownVectors) {
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32cTest, CastagnoliKnownVectors) {
  const std::string check = "123456789";
  EXPECT_EQ(Crc32c(check.data(), check.size()), 0xE3069283u);
  EXPECT_EQ(Crc32cSoftware(check.data(), check.size()), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // RFC 3720 B.4: 32 bytes of zeros.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, DispatchedMatchesSoftwareByteForByte) {
  // Covers every length 0..257 (exercises the 8-byte kernel stride and all
  // tail lengths) plus unaligned starts, with and without seeds.
  std::mt19937_64 rng(7);
  std::string data(512, '\0');
  for (char& c : data) c = static_cast<char>(rng());
  for (std::size_t offset : {0u, 1u, 3u, 7u}) {
    for (std::size_t len = 0; len + offset <= 258; ++len) {
      const char* p = data.data() + offset;
      EXPECT_EQ(Crc32c(p, len), Crc32cSoftware(p, len))
          << "offset=" << offset << " len=" << len;
      EXPECT_EQ(Crc32c(p, len, 0xDEADBEEFu),
                Crc32cSoftware(p, len, 0xDEADBEEFu))
          << "seeded, offset=" << offset << " len=" << len;
    }
  }
}

TEST(Crc32cTest, SeedChainingSplitsArbitrarily) {
  std::mt19937_64 rng(13);
  std::string data(300, '\0');
  for (char& c : data) c = static_cast<char>(rng());
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (std::size_t split : {0u, 1u, 8u, 100u, 299u, 300u}) {
    uint32_t first = Crc32c(data.data(), split);
    uint32_t chained = Crc32c(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chained, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, ReportsDispatchDecision) {
  // Informational: the decision itself is environment-dependent, but the
  // call must be stable within a process.
  EXPECT_EQ(Crc32cHardwareAvailable(), Crc32cHardwareAvailable());
}

}  // namespace
}  // namespace era
