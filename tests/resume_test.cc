// Checkpoint/resume: a build killed at an arbitrary write converges, after
// `BuildOptions::resume`, to an index byte-identical to an uninterrupted
// build — at any worker count. Plus the CHECKPOINT file format's corruption
// handling and the no-rewrite guarantee for verified groups.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "era/checkpoint.h"
#include "era/era_builder.h"
#include "era/parallel_builder.h"
#include "io/env.h"
#include "io/faulty_env.h"
#include "io/mem_env.h"
#include "tests/test_util.h"
#include "text/corpus.h"

namespace era {
namespace {

std::string TestText() {
  return testing::RepetitiveText(Alphabet::Dna(), 12000, 31);
}

BuildOptions SmallOptions(Env* env, const std::string& work_dir) {
  BuildOptions options;
  options.env = env;
  options.work_dir = work_dir;
  options.memory_budget = 2 << 20;
  options.input_buffer_bytes = 4096;
  return options;
}

/// MANIFEST plus every sub-tree file, keyed by relative name. Two builds are
/// "the same index" iff these maps are equal.
std::map<std::string, std::string> IndexBytes(Env* env,
                                              const std::string& work_dir,
                                              const TreeIndex& index) {
  std::map<std::string, std::string> bytes;
  EXPECT_TRUE(
      env->ReadFileToString(work_dir + "/MANIFEST", &bytes["MANIFEST"]).ok());
  for (const SubTreeEntry& entry : index.subtrees()) {
    EXPECT_TRUE(
        env->ReadFileToString(work_dir + "/" + entry.filename,
                              &bytes[entry.filename])
            .ok());
  }
  return bytes;
}

/// The reference index: one clean build of TestText() at a given worker
/// count (0 = serial EraBuilder). Worker counts matter: the parallel builder
/// derives FM from the per-worker memory share, so different counts build
/// legitimately different (but internally deterministic) indexes.
struct Reference {
  MemEnv env;
  TextInfo info;
  std::map<std::string, std::string> bytes;
  uint64_t num_groups = 0;

  explicit Reference(unsigned workers) {
    auto materialized =
        MaterializeText(&env, "/text", Alphabet::Dna(), TestText());
    EXPECT_TRUE(materialized.ok());
    info = *materialized;
    if (workers == 0) {
      EraBuilder builder(SmallOptions(&env, "/idx"));
      Capture(builder.Build(info));
    } else {
      ParallelBuilder builder(SmallOptions(&env, "/idx"), workers);
      Capture(builder.Build(info));
    }
  }

  template <typename Result>
  void Capture(Result result) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    bytes = IndexBytes(&env, "/idx", result->index);
    num_groups = result->stats.num_groups;
  }
};

Reference& Ref(unsigned workers = 0) {
  static std::map<unsigned, Reference*>* refs =
      new std::map<unsigned, Reference*>();
  auto it = refs->find(workers);
  if (it == refs->end()) {
    it = refs->emplace(workers, new Reference(workers)).first;
  }
  return *it->second;
}

/// Builds with `workers` (0 = serial EraBuilder) and returns (status,
/// groups_resumed, index bytes on success).
struct TrialResult {
  Status status = Status::OK();
  uint64_t groups_resumed = 0;
  std::map<std::string, std::string> bytes;
};

TrialResult RunBuild(Env* env, const TextInfo& info, unsigned workers,
                     bool resume) {
  BuildOptions options = SmallOptions(env, "/idx");
  options.resume = resume;
  TrialResult out;
  if (workers == 0) {
    EraBuilder builder(options);
    auto result = builder.Build(info);
    out.status = result.status();
    if (result.ok()) {
      out.groups_resumed = result->stats.groups_resumed;
      out.bytes = IndexBytes(env, "/idx", result->index);
    }
  } else {
    ParallelBuilder builder(options, workers);
    auto result = builder.Build(info);
    out.status = result.status();
    if (result.ok()) {
      out.groups_resumed = result->stats.groups_resumed;
      out.bytes = IndexBytes(env, "/idx", result->index);
    }
  }
  return out;
}

/// One crash-then-resume cycle: build under a FaultyEnv that crashes after
/// the `kill_at`-th append, then resume on the undamaged base env. Returns
/// groups_resumed of the resume pass; the resumed index must equal Ref().
uint64_t CrashThenResume(uint64_t kill_at, unsigned workers,
                         bool* crash_fired) {
  MemEnv base;
  auto info = MaterializeText(&base, "/text", Alphabet::Dna(), TestText());
  EXPECT_TRUE(info.ok());

  FaultSpec spec;
  spec.crash_after_writes = kill_at;
  FaultyEnv faulty(&base, spec);
  TrialResult crashed = RunBuild(&faulty, *info, workers, /*resume=*/false);
  *crash_fired = faulty.crashed();
  if (*crash_fired) {
    EXPECT_FALSE(crashed.status.ok())
        << "a build whose env crashed cannot report success";
  }

  TrialResult resumed = RunBuild(&base, *info, workers, /*resume=*/true);
  EXPECT_TRUE(resumed.status.ok())
      << "kill_at=" << kill_at << " workers=" << workers << ": "
      << resumed.status.ToString();
  EXPECT_EQ(resumed.bytes, Ref(workers).bytes)
      << "kill_at=" << kill_at << " workers=" << workers
      << ": resumed index differs from the uninterrupted build";
  return resumed.groups_resumed;
}

TEST(ResumeTest, KillSweepConvergesByteIdenticalSerial) {
  uint64_t total_resumed = 0;
  for (uint64_t kill_at : {1, 2, 3, 5, 8, 13, 21, 34, 55, 89}) {
    bool crash_fired = false;
    total_resumed += CrashThenResume(kill_at, /*workers=*/0, &crash_fired);
    if (!crash_fired) break;  // past the last write: nothing left to kill
  }
  EXPECT_GT(total_resumed, 0u)
      << "no kill point left a verifiable group behind — the sweep proved "
         "nothing about resume";
}

TEST(ResumeTest, KillSweepConvergesByteIdenticalParallel) {
  for (unsigned workers : {2u, 8u}) {
    for (uint64_t kill_at : {3, 13, 34}) {
      bool crash_fired = false;
      CrashThenResume(kill_at, workers, &crash_fired);
    }
  }
}

TEST(ResumeTest, ResumeAfterCompleteBuildSkipsEveryGroup) {
  MemEnv env;
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), TestText());
  ASSERT_TRUE(info.ok());
  TrialResult first = RunBuild(&env, *info, 0, /*resume=*/false);
  ASSERT_TRUE(first.status.ok());
  TrialResult second = RunBuild(&env, *info, 0, /*resume=*/true);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.groups_resumed, Ref().num_groups);
  EXPECT_EQ(second.bytes, Ref().bytes);
}

/// Forwarding Env that records every path opened for writing.
class RecordingEnv : public Env {
 public:
  explicit RecordingEnv(Env* base) : base_(base) {}

  StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override {
    return base_->OpenRandomAccess(path);
  }
  StatusOr<std::unique_ptr<WritableFile>> NewWritable(
      const std::string& path) override {
    written_.insert(path);
    return base_->NewWritable(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  StatusOr<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }

  const std::set<std::string>& written() const { return written_; }

 private:
  Env* base_;
  std::set<std::string> written_;
};

TEST(ResumeTest, VerifiedGroupsAreNotRewritten) {
  MemEnv env;
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), TestText());
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(RunBuild(&env, *info, 0, /*resume=*/false).status.ok());

  RecordingEnv recording(&env);
  TrialResult resumed = RunBuild(&recording, *info, 0, /*resume=*/true);
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_EQ(resumed.groups_resumed, Ref().num_groups);
  for (const std::string& path : recording.written()) {
    EXPECT_EQ(path.find("st_"), std::string::npos)
        << "resume rewrote a verified sub-tree: " << path;
  }
}

TEST(ResumeTest, CorruptSubTreeGetsItsGroupRebuilt) {
  MemEnv env;
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), TestText());
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(RunBuild(&env, *info, 0, /*resume=*/false).status.ok());

  // Flip one byte in the first sub-tree of group 0.
  std::string victim = "/idx/" + SubTreeFileName(0, 0);
  std::string bytes;
  ASSERT_TRUE(env.ReadFileToString(victim, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(env.WriteFile(victim, bytes).ok());

  TrialResult resumed = RunBuild(&env, *info, 0, /*resume=*/true);
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_EQ(resumed.groups_resumed, Ref().num_groups - 1)
      << "exactly the damaged group must rebuild";
  EXPECT_EQ(resumed.bytes, Ref().bytes) << "the rebuild must repair the file";
}

TEST(ResumeTest, FingerprintMismatchForcesFullRebuild) {
  MemEnv env;
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), TestText());
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(RunBuild(&env, *info, 0, /*resume=*/false).status.ok());

  // A different text under the same work_dir: the old CHECKPOINT describes a
  // different plan and must be ignored wholesale.
  std::string other = testing::RandomText(Alphabet::Dna(), 9000, 7);
  auto other_info = MaterializeText(&env, "/text2", Alphabet::Dna(), other);
  ASSERT_TRUE(other_info.ok());
  BuildOptions options = SmallOptions(&env, "/idx");
  options.resume = true;
  EraBuilder builder(options);
  auto result = builder.Build(*other_info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.groups_resumed, 0u);

  // And the rebuilt index is exactly what a clean build of the other text
  // produces.
  MemEnv clean;
  ASSERT_TRUE(MaterializeText(&clean, "/text2", Alphabet::Dna(), other).ok());
  EraBuilder clean_builder(SmallOptions(&clean, "/idx"));
  auto clean_result = clean_builder.Build(*other_info);
  ASSERT_TRUE(clean_result.ok());
  EXPECT_EQ(IndexBytes(&env, "/idx", result->index),
            IndexBytes(&clean, "/idx", clean_result->index));
}

TEST(ResumeTest, CheckpointOffMeansNoFileAndResumeDegrades) {
  MemEnv env;
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), TestText());
  ASSERT_TRUE(info.ok());
  BuildOptions options = SmallOptions(&env, "/idx");
  options.checkpoint = false;
  EraBuilder builder(options);
  ASSERT_TRUE(builder.Build(*info).ok());
  EXPECT_FALSE(env.FileExists("/idx/CHECKPOINT"));

  // resume with nothing to resume from: silent full rebuild.
  TrialResult resumed = RunBuild(&env, *info, 0, /*resume=*/true);
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_EQ(resumed.groups_resumed, 0u);
  EXPECT_EQ(resumed.bytes, Ref().bytes);
}

// ---------------------------------------------------------------------------
// CHECKPOINT file parsing
// ---------------------------------------------------------------------------

TEST(CheckpointFileTest, MissingFileIsIOError) {
  MemEnv env;
  EXPECT_TRUE(LoadCheckpoint(&env, "/idx").status().IsIOError());
}

TEST(CheckpointFileTest, GarbageIsCorruption) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/idx/CHECKPOINT", "not a checkpoint").ok());
  EXPECT_TRUE(LoadCheckpoint(&env, "/idx").status().IsCorruption());
}

TEST(CheckpointFileTest, TamperedBodyIsCorruption) {
  MemEnv env;
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), TestText());
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(RunBuild(&env, *info, 0, /*resume=*/false).status.ok());
  ASSERT_TRUE(LoadCheckpoint(&env, "/idx").ok()) << "sanity: valid as built";

  std::string content;
  ASSERT_TRUE(env.ReadFileToString("/idx/CHECKPOINT", &content).ok());
  // Flip a digit inside a recorded CRC; the trailing body checksum must
  // catch it.
  std::size_t pos = content.find("group: ");
  ASSERT_NE(pos, std::string::npos);
  std::size_t digit = content.find_first_of("0123456789", pos + 7);
  ASSERT_NE(digit, std::string::npos);
  content[digit] = content[digit] == '1' ? '2' : '1';
  ASSERT_TRUE(env.WriteFile("/idx/CHECKPOINT", content).ok());
  EXPECT_TRUE(LoadCheckpoint(&env, "/idx").status().IsCorruption());

  // Truncating away the trailing crc line is corruption, not acceptance.
  std::size_t crc_line = content.rfind("crc: ");
  ASSERT_NE(crc_line, std::string::npos);
  ASSERT_TRUE(
      env.WriteFile("/idx/CHECKPOINT", content.substr(0, crc_line)).ok());
  EXPECT_TRUE(LoadCheckpoint(&env, "/idx").status().IsCorruption());
}

TEST(CheckpointFileTest, SubTreeFileNameIsTheSharedSlotNaming) {
  EXPECT_EQ(SubTreeFileName(3, 7), "st_3_7.bin");
}

}  // namespace
}  // namespace era
