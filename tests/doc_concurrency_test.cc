// Concurrent document-aware serving: one DocEngine hammered from 8 threads
// with mixed CountDocs/TopKDocuments/LocateInDoc/batch traffic interleaved
// with cache-evicting sweeps, checked against serially computed answers.
// Runs under the ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "collection/collection_builder.h"
#include "collection/doc_engine.h"
#include "io/mem_env.h"
#include "tests/test_util.h"

namespace era {
namespace {

class DocConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CollectionBuildOptions options;
    options.build.env = &env_;
    options.build.work_dir = "/col";
    options.build.memory_budget = 256 << 10;  // force several sub-trees
    options.build.input_buffer_bytes = 4096;
    options.num_workers = 2;

    CollectionBuilder builder(Alphabet::Dna(), options);
    std::mt19937_64 rng(97);
    for (int d = 0; d < 40; ++d) {
      std::string body =
          testing::RepetitiveText(Alphabet::Dna(), 200 + (d % 5) * 80, rng());
      body.pop_back();
      docs_.push_back(body);
      ASSERT_TRUE(builder.AddDocument("doc" + std::to_string(d), body).ok());
    }
    auto built = builder.Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    // Tiny cache budget so concurrent traffic constantly loads and evicts.
    QueryEngineOptions engine_options;
    engine_options.cache.budget_bytes = 64 << 10;
    engine_options.cache.shards = 4;
    auto engine = DocEngine::Open(&env_, "/col", engine_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);

    // Workload + serial ground truth.
    for (int i = 0; i < 120; ++i) {
      const std::string& doc = docs_[i % docs_.size()];
      std::size_t len = 3 + static_cast<std::size_t>(rng() % 10);
      std::size_t pos = rng() % (doc.size() - len);
      patterns_.push_back(doc.substr(pos, len));
    }
    for (const std::string& pattern : patterns_) {
      auto histogram = engine_->DocumentHistogram(pattern);
      ASSERT_TRUE(histogram.ok());
      expected_histograms_.push_back(std::move(*histogram));
      auto local = engine_->LocateInDoc(pattern, 13);
      ASSERT_TRUE(local.ok());
      expected_local_.push_back(std::move(*local));
    }
  }

  MemEnv env_;
  std::vector<std::string> docs_;
  std::unique_ptr<DocEngine> engine_;
  std::vector<std::string> patterns_;
  std::vector<std::vector<DocHit>> expected_histograms_;
  std::vector<std::vector<uint64_t>> expected_local_;
};

TEST_F(DocConcurrencyTest, EightThreadsMatchSerialAnswers) {
  constexpr unsigned kThreads = 8;
  constexpr int kRounds = 3;
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> queries{0};

  auto worker = [&](unsigned t) {
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t i = t; i < patterns_.size(); i += kThreads) {
        const std::string& pattern = patterns_[i];
        switch ((i + round) % 4) {
          case 0: {
            auto count = engine_->CountDocs(pattern);
            if (!count.ok()) ++errors;
            else if (*count != expected_histograms_[i].size()) ++mismatches;
            break;
          }
          case 1: {
            auto topk = engine_->TopKDocuments(pattern, 5);
            if (!topk.ok()) ++errors;
            else if (*topk !=
                     TopKFromHistogram(expected_histograms_[i], 5)) {
              ++mismatches;
            }
            break;
          }
          case 2: {
            auto local = engine_->LocateInDoc(pattern, 13);
            if (!local.ok()) ++errors;
            else if (*local != expected_local_[i]) ++mismatches;
            break;
          }
          default: {
            auto counts = engine_->CountDocsBatch({pattern});
            if (!counts.ok() || counts->size() != 1) ++errors;
            else if ((*counts)[0] != expected_histograms_[i].size()) {
              ++mismatches;
            }
            break;
          }
        }
        ++queries;
      }
    }
  };

  // One additional thread generates cache-evicting traffic racing the doc
  // queries (same adversarial pattern as the plain-query concurrency test).
  std::atomic<bool> stop{false};
  std::thread evictor([&] {
    uint32_t id = 0;
    const TreeIndex& index = engine_->engine().index();
    while (!stop.load(std::memory_order_relaxed)) {
      index.EvictCache();
      IoStats scratch;
      (void)index.OpenSubTree(&env_, id++ % index.subtrees().size(), &scratch);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& thread : threads) thread.join();
  stop.store(true);
  evictor.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(queries.load(), kRounds * patterns_.size());

  // The doc-query aggregates are consistent with the traffic, and no
  // occurrence ever fell outside a document.
  DocQueryStats stats = engine_->doc_stats();
  EXPECT_GE(stats.queries, queries.load());
  EXPECT_EQ(stats.offsets_outside_documents, 0u);
  EXPECT_GT(engine_->engine().cache().evictions, 0u);
}

}  // namespace
}  // namespace era
