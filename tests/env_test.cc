#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

#include "io/env.h"
#include "io/mem_env.h"

namespace era {
namespace {

class EnvKinds : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      env_ = &mem_env_;
      base_ = "/test";
    } else {
      env_ = GetDefaultEnv();
      // Unique directory per run: leftover files from a previous invocation
      // must not leak into existence checks.
      base_ = ::testing::TempDir() + "era_env_test_" +
              std::to_string(
                  std::chrono::steady_clock::now().time_since_epoch().count());
      ASSERT_TRUE(env_->CreateDir(base_).ok());
    }
  }

  MemEnv mem_env_;
  Env* env_ = nullptr;
  std::string base_;
};

TEST_P(EnvKinds, WriteThenReadRoundTrip) {
  std::string path = base_ + "/file1";
  ASSERT_TRUE(env_->WriteFile(path, "hello world").ok());
  std::string content;
  ASSERT_TRUE(env_->ReadFileToString(path, &content).ok());
  EXPECT_EQ(content, "hello world");
}

TEST_P(EnvKinds, FileSizeAndExists) {
  std::string path = base_ + "/file2";
  EXPECT_FALSE(env_->FileExists(path));
  ASSERT_TRUE(env_->WriteFile(path, std::string(1000, 'x')).ok());
  EXPECT_TRUE(env_->FileExists(path));
  auto size = env_->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1000u);
}

TEST_P(EnvKinds, PositionalReads) {
  std::string path = base_ + "/file3";
  std::string data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  ASSERT_TRUE(env_->WriteFile(path, data).ok());

  auto file = env_->OpenRandomAccess(path);
  ASSERT_TRUE(file.ok());
  char buf[16];
  std::size_t got = 0;
  ASSERT_TRUE((*file)->Read(100, 16, buf, &got).ok());
  EXPECT_EQ(got, 16u);
  EXPECT_EQ(buf[0], static_cast<char>(100));
  EXPECT_EQ((*file)->Size(), 256u);
}

TEST_P(EnvKinds, ShortReadAtEof) {
  std::string path = base_ + "/file4";
  ASSERT_TRUE(env_->WriteFile(path, "abc").ok());
  auto file = env_->OpenRandomAccess(path);
  ASSERT_TRUE(file.ok());
  char buf[16];
  std::size_t got = 99;
  ASSERT_TRUE((*file)->Read(2, 16, buf, &got).ok());
  EXPECT_EQ(got, 1u);
  ASSERT_TRUE((*file)->Read(3, 16, buf, &got).ok());
  EXPECT_EQ(got, 0u);
  ASSERT_TRUE((*file)->Read(1000, 16, buf, &got).ok());
  EXPECT_EQ(got, 0u);
}

TEST_P(EnvKinds, DeleteFile) {
  std::string path = base_ + "/file5";
  ASSERT_TRUE(env_->WriteFile(path, "x").ok());
  ASSERT_TRUE(env_->DeleteFile(path).ok());
  EXPECT_FALSE(env_->FileExists(path));
  EXPECT_FALSE(env_->DeleteFile(path).ok());
}

TEST_P(EnvKinds, OpenMissingFileFails) {
  auto file = env_->OpenRandomAccess(base_ + "/nope");
  EXPECT_FALSE(file.ok());
  EXPECT_TRUE(file.status().IsIOError());
}

TEST_P(EnvKinds, OverwriteReplacesContent) {
  std::string path = base_ + "/file6";
  ASSERT_TRUE(env_->WriteFile(path, "long old content").ok());
  ASSERT_TRUE(env_->WriteFile(path, "new").ok());
  std::string content;
  ASSERT_TRUE(env_->ReadFileToString(path, &content).ok());
  EXPECT_EQ(content, "new");
}

TEST_P(EnvKinds, RenameFileReplacesTarget) {
  std::string from = base_ + "/rename_src";
  std::string to = base_ + "/rename_dst";
  ASSERT_TRUE(env_->WriteFile(from, "fresh").ok());
  ASSERT_TRUE(env_->WriteFile(to, "stale").ok());
  ASSERT_TRUE(env_->RenameFile(from, to).ok());
  EXPECT_FALSE(env_->FileExists(from));
  std::string content;
  ASSERT_TRUE(env_->ReadFileToString(to, &content).ok());
  EXPECT_EQ(content, "fresh");
  EXPECT_FALSE(env_->RenameFile(base_ + "/nope", to).ok());
}

TEST_P(EnvKinds, WritableSyncSucceeds) {
  std::string path = base_ + "/synced";
  auto file = env_->NewWritable(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abc").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("def").ok());
  ASSERT_TRUE((*file)->Close().ok());
  std::string content;
  ASSERT_TRUE(env_->ReadFileToString(path, &content).ok());
  EXPECT_EQ(content, "abcdef");
}

TEST_P(EnvKinds, AtomicallyWriteFilePublishesAndReportsCrc) {
  std::string path = base_ + "/atomic";
  uint32_t crc = 0;
  ASSERT_TRUE(AtomicallyWriteFile(env_, path, "durable payload", &crc).ok());
  std::string content;
  ASSERT_TRUE(env_->ReadFileToString(path, &content).ok());
  EXPECT_EQ(content, "durable payload");
  EXPECT_NE(crc, 0u);
  EXPECT_FALSE(env_->FileExists(path + ".tmp")) << "temp must not survive";
  // Overwrite is atomic-replace, not append.
  ASSERT_TRUE(AtomicallyWriteFile(env_, path, "v2", nullptr).ok());
  ASSERT_TRUE(env_->ReadFileToString(path, &content).ok());
  EXPECT_EQ(content, "v2");
}

TEST_P(EnvKinds, AtomicFileWriterAbandonLeavesNothing) {
  std::string path = base_ + "/abandoned";
  auto writer = AtomicFileWriter::Open(env_, path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("partial").ok());
  writer->Abandon();
  EXPECT_FALSE(env_->FileExists(path));
  EXPECT_FALSE(env_->FileExists(path + ".tmp"));
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvKinds, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "MemEnv" : "PosixEnv";
                         });

TEST(MemEnvTest, ReaderSurvivesDeletion) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/f", "persist").ok());
  auto file = env.OpenRandomAccess("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(env.DeleteFile("/f").ok());
  char buf[7];
  std::size_t got = 0;
  ASSERT_TRUE((*file)->Read(0, 7, buf, &got).ok());
  EXPECT_EQ(std::string(buf, got), "persist");
}

TEST(MemEnvTest, FileCount) {
  MemEnv env;
  EXPECT_EQ(env.FileCount(), 0u);
  ASSERT_TRUE(env.WriteFile("/a", "1").ok());
  ASSERT_TRUE(env.WriteFile("/b", "2").ok());
  EXPECT_EQ(env.FileCount(), 2u);
}

TEST(PosixEnvTest, CreateDirNested) {
  Env* env = GetDefaultEnv();
  std::string dir = ::testing::TempDir() + "era_nested/a/b/c";
  ASSERT_TRUE(env->CreateDir(dir).ok());
  ASSERT_TRUE(env->WriteFile(dir + "/f", "x").ok());
  EXPECT_TRUE(env->FileExists(dir + "/f"));
}

}  // namespace
}  // namespace era
