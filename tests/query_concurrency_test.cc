// Concurrent serving: one QueryEngine hammered from 8 threads with mixed
// Count/Locate/Contains/batch traffic interleaved with cache-evicting
// sweeps, checked against serially computed answers. Runs under the
// ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "era/era_builder.h"
#include "io/mem_env.h"
#include "query/query_engine.h"
#include "query/query_workload.h"
#include "tests/test_util.h"

namespace era {
namespace {

class QueryConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text_ = testing::RepetitiveText(Alphabet::Dna(), 12000, 47);
    auto info = MaterializeText(&env_, "/text", Alphabet::Dna(), text_);
    ASSERT_TRUE(info.ok());

    BuildOptions options;
    options.env = &env_;
    options.work_dir = "/idx";
    options.memory_budget = 256 << 10;  // force several sub-trees
    options.input_buffer_bytes = 4096;
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // Tiny cache budget so concurrent traffic constantly loads and evicts.
    QueryEngineOptions engine_options;
    engine_options.cache.budget_bytes = 64 << 10;
    engine_options.cache.shards = 4;
    auto engine = QueryEngine::Open(&env_, "/idx", engine_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);

    // Workload + serial ground truth.
    QueryWorkloadOptions workload;
    workload.num_patterns = 160;
    workload.min_len = 3;
    workload.max_len = 16;
    workload.seed = 7;
    patterns_ = SamplePatternWorkload(text_, workload);
    ASSERT_FALSE(patterns_.empty());
    for (const std::string& pattern : patterns_) {
      auto count = engine_->Count(pattern);
      ASSERT_TRUE(count.ok());
      expected_counts_.push_back(*count);
      auto hits = engine_->Locate(pattern, 25);
      ASSERT_TRUE(hits.ok());
      expected_hits_.push_back(std::move(*hits));
    }
  }

  MemEnv env_;
  std::string text_;
  std::unique_ptr<QueryEngine> engine_;
  std::vector<std::string> patterns_;
  std::vector<uint64_t> expected_counts_;
  std::vector<std::vector<uint64_t>> expected_hits_;
};

TEST_F(QueryConcurrencyTest, EightThreadsMatchSerialAnswers) {
  constexpr unsigned kThreads = 8;
  constexpr int kRounds = 3;
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> queries{0};

  auto worker = [&](unsigned t) {
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t i = t; i < patterns_.size(); i += kThreads) {
        const std::string& pattern = patterns_[i];
        switch ((i + round) % 4) {
          case 0: {
            auto count = engine_->Count(pattern);
            if (!count.ok()) ++errors;
            else if (*count != expected_counts_[i]) ++mismatches;
            break;
          }
          case 1: {
            auto hits = engine_->Locate(pattern, 25);
            if (!hits.ok()) ++errors;
            else if (*hits != expected_hits_[i]) ++mismatches;
            break;
          }
          case 2: {
            auto contains = engine_->Contains(pattern);
            if (!contains.ok()) ++errors;
            else if (*contains != (expected_counts_[i] > 0)) ++mismatches;
            break;
          }
          default: {
            auto counts = engine_->CountBatch({pattern});
            if (!counts.ok() || counts->size() != 1) ++errors;
            else if ((*counts)[0] != expected_counts_[i]) ++mismatches;
            break;
          }
        }
        ++queries;
      }
    }
  };

  // One additional thread generates cache-evicting traffic: explicit sweeps
  // plus a stream of cold sub-tree opens racing the query threads.
  std::atomic<bool> stop{false};
  std::thread evictor([&] {
    uint32_t id = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      engine_->index().EvictCache();
      IoStats scratch;
      (void)engine_->index().OpenSubTree(
          &env_, id++ % engine_->index().subtrees().size(), &scratch);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& thread : threads) thread.join();
  stop.store(true);
  evictor.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(queries.load(), kRounds * patterns_.size());

  // The tiny budget must actually have evicted under load, and the engine's
  // aggregate counters must be consistent with the traffic.
  EXPECT_GT(engine_->cache().evictions, 0u);
  QueryStats stats = engine_->stats();
  EXPECT_GE(stats.queries, queries.load());
  IoStats io = engine_->io();
  EXPECT_GT(io.cache_misses, 0u);
}

TEST_F(QueryConcurrencyTest, ReplayHelperAgreesAcrossThreadCounts) {
  QueryWorkloadOptions workload;
  workload.locate_limit = 25;
  auto serial = ReplayWorkload(engine_.get(), patterns_, 1, workload);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = ReplayWorkload(engine_.get(), patterns_, 8, workload);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(serial->occurrence_checksum, parallel->occurrence_checksum);
  EXPECT_EQ(serial->queries, parallel->queries);
  EXPECT_EQ(serial->queries, patterns_.size());
}

}  // namespace
}  // namespace era
