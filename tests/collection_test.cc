// Document-collection subsystem: DocumentMap persistence and resolution,
// CollectionBuilder ingestion, and DocEngine answers cross-checked against
// brute-force scans over the original documents.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "collection/collection_builder.h"
#include "collection/doc_engine.h"
#include "io/mem_env.h"
#include "suffixtree/serializer.h"
#include "tests/test_util.h"
#include "text/fasta.h"

namespace era {
namespace {

// ---------------------------------------------------------------------------
// DocumentMap unit tests.
// ---------------------------------------------------------------------------

TEST(DocumentMapTest, CreateValidatesLayout) {
  // Valid: ascending spans with >= 1 byte gaps.
  auto ok = DocumentMap::Create({{"a", 0, 3}, {"b", 4, 2}, {"c", 7, 0}}, '|');
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();

  // Overlapping spans.
  EXPECT_FALSE(DocumentMap::Create({{"a", 0, 3}, {"b", 2, 2}}, '|').ok());
  // No separator gap between consecutive documents.
  EXPECT_FALSE(DocumentMap::Create({{"a", 0, 3}, {"b", 3, 2}}, '|').ok());
  // Duplicate / empty names.
  EXPECT_FALSE(DocumentMap::Create({{"a", 0, 3}, {"a", 4, 2}}, '|').ok());
  EXPECT_FALSE(DocumentMap::Create({{"", 0, 3}}, '|').ok());
  // Separator may not be the terminal.
  EXPECT_FALSE(DocumentMap::Create({{"a", 0, 3}}, kTerminal).ok());
  // Spans whose arithmetic would wrap uint64 must fail closed (a CRC-valid
  // but hand-crafted DOCMAP goes through this same validation on Load).
  EXPECT_FALSE(
      DocumentMap::Create({{"a", 0, UINT64_MAX}, {"b", 5, 1}}, '|').ok());
  EXPECT_FALSE(DocumentMap::Create({{"a", 5, UINT64_MAX}}, '|').ok());
  EXPECT_FALSE(
      DocumentMap::Create({{"a", UINT64_MAX, 0}, {"b", 3, 1}}, '|').ok());
}

TEST(DocumentMapTest, ResolveEdges) {
  auto map =
      DocumentMap::Create({{"a", 0, 5}, {"empty", 6, 0}, {"b", 7, 3}}, '|');
  ASSERT_TRUE(map.ok());
  DocLocation loc;

  EXPECT_TRUE(map->Resolve(0, &loc));
  EXPECT_EQ(loc.doc_id, 0u);
  EXPECT_EQ(loc.local_offset, 0u);
  EXPECT_TRUE(map->Resolve(4, &loc));
  EXPECT_EQ(loc.doc_id, 0u);
  EXPECT_EQ(loc.local_offset, 4u);
  EXPECT_FALSE(map->Resolve(5, &loc));  // separator after doc a
  EXPECT_FALSE(map->Resolve(6, &loc));  // separator "inside" the empty doc's
                                        // slot (empty docs own no bytes)
  EXPECT_TRUE(map->Resolve(7, &loc));
  EXPECT_EQ(loc.doc_id, 2u);
  EXPECT_EQ(loc.local_offset, 0u);
  EXPECT_TRUE(map->Resolve(9, &loc));
  EXPECT_EQ(loc.doc_id, 2u);
  EXPECT_FALSE(map->Resolve(10, &loc));   // terminal
  EXPECT_FALSE(map->Resolve(1000, &loc));  // way past the end

  // Span resolution: inside, exactly filling, and crossing out of a doc.
  EXPECT_TRUE(map->ResolveSpan(7, 3, &loc));
  EXPECT_EQ(loc.doc_id, 2u);
  EXPECT_TRUE(map->ResolveSpan(0, 5, &loc));
  EXPECT_FALSE(map->ResolveSpan(3, 3, &loc));  // runs into the separator
  EXPECT_FALSE(map->ResolveSpan(5, 1, &loc));  // starts on the separator

  EXPECT_EQ(map->TotalDocumentBytes(), 8u);
  auto id = map->FindDocument("empty");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);
  EXPECT_FALSE(map->FindDocument("nope").ok());
}

TEST(DocumentMapTest, SaveLoadRoundTrip) {
  MemEnv env;
  auto map = DocumentMap::Create(
      {{"genome/chr1", 0, 100}, {"genome/chr2", 101, 0}, {"x", 102, 7}}, '|');
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Save(&env, "/DOCMAP").ok());

  auto loaded = DocumentMap::Load(&env, "/DOCMAP");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->separator(), '|');
  ASSERT_EQ(loaded->num_documents(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded->document(i).name, map->document(i).name);
    EXPECT_EQ(loaded->document(i).start, map->document(i).start);
    EXPECT_EQ(loaded->document(i).length, map->document(i).length);
  }
}

TEST(DocumentMapTest, CorruptionIsDetected) {
  MemEnv env;
  auto map = DocumentMap::Create({{"a", 0, 9}, {"bb", 10, 4}}, '|');
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Save(&env, "/DOCMAP").ok());
  std::string good;
  ASSERT_TRUE(env.ReadFileToString("/DOCMAP", &good).ok());

  // Any single flipped byte (magic, payload, or stored CRC) must fail Load.
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    ASSERT_TRUE(env.WriteFile("/DOCMAP", bad).ok());
    auto loaded = DocumentMap::Load(&env, "/DOCMAP");
    EXPECT_FALSE(loaded.ok()) << "flipped byte " << i << " not detected";
  }

  // Truncations must fail too (including cutting into the CRC footer).
  for (std::size_t keep : {0u, 4u, 11u}) {
    ASSERT_TRUE(env.WriteFile("/DOCMAP", good.substr(0, keep)).ok());
    EXPECT_FALSE(DocumentMap::Load(&env, "/DOCMAP").ok()) << keep;
  }
  ASSERT_TRUE(
      env.WriteFile("/DOCMAP", good.substr(0, good.size() - 2)).ok());
  EXPECT_FALSE(DocumentMap::Load(&env, "/DOCMAP").ok());

  // Not-a-DOCMAP content.
  ASSERT_TRUE(env.WriteFile("/DOCMAP", "format: era-tree-index-v1\n").ok());
  EXPECT_FALSE(DocumentMap::Load(&env, "/DOCMAP").ok());
}

// ---------------------------------------------------------------------------
// CollectionBuilder ingestion.
// ---------------------------------------------------------------------------

CollectionBuildOptions SmallCollectionOptions(Env* env, const std::string& dir,
                                              unsigned workers = 1) {
  CollectionBuildOptions options;
  options.build.env = env;
  options.build.work_dir = dir;
  options.build.memory_budget = 512 << 10;
  options.build.input_buffer_bytes = 4096;
  options.num_workers = workers;
  return options;
}

TEST(CollectionBuilderTest, RejectsBadDocuments) {
  MemEnv env;
  CollectionBuilder builder(Alphabet::Dna(),
                            SmallCollectionOptions(&env, "/idx"));
  EXPECT_FALSE(builder.AddDocument("", "ACGT").ok());
  EXPECT_TRUE(builder.AddDocument("a", "ACGT").ok());
  EXPECT_FALSE(builder.AddDocument("a", "GGTT").ok());  // duplicate name
  EXPECT_FALSE(builder.AddDocument("sep", "AC|GT").ok());
  EXPECT_FALSE(
      builder.AddDocument("term", std::string("AC") + kTerminal).ok());
  EXPECT_FALSE(builder.AddDocument("foreign", "ACGTN").ok());
  EXPECT_EQ(builder.num_documents(), 1u);
}

TEST(CollectionBuilderTest, RejectsSeparatorBelowAlphabet) {
  MemEnv env;
  auto options = SmallCollectionOptions(&env, "/idx");
  options.separator = 'A';  // inside the DNA alphabet: must be refused
  CollectionBuilder builder(Alphabet::Dna(), options);
  ASSERT_TRUE(builder.AddDocument("a", "ACGT").ok());
  EXPECT_FALSE(builder.Build().ok());
}

TEST(CollectionBuilderTest, BuildsEmptyCollectionFails) {
  MemEnv env;
  CollectionBuilder builder(Alphabet::Dna(),
                            SmallCollectionOptions(&env, "/idx"));
  EXPECT_FALSE(builder.Build().ok());
}

TEST(CollectionBuilderTest, FastaRecordsBecomeDocuments) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/multi.fa",
                            "> chr1 \nACGT\nACGT\n"
                            ">chr2\nggtt\n"
                            ">chr3\nNNNACANNN\n")
                  .ok());
  CollectionBuilder builder(Alphabet::Dna(),
                            SmallCollectionOptions(&env, "/fasta_idx"));
  ASSERT_TRUE(
      builder.AddFastaFile(&env, "/multi.fa", FastaCleanPolicy::kSkip).ok());
  ASSERT_EQ(builder.num_documents(), 3u);

  auto result = builder.Build();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->documents.document(0).name, "chr1");
  EXPECT_EQ(result->documents.document(0).length, 8u);  // line-wrap joined
  EXPECT_EQ(result->documents.document(1).name, "chr2");
  EXPECT_EQ(result->documents.document(1).length, 4u);  // uppercased
  EXPECT_EQ(result->documents.document(2).name, "chr3");
  EXPECT_EQ(result->documents.document(2).length, 3u);  // 'N' runs skipped

  auto engine = DocEngine::Open(&env, "/fasta_idx");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto docs = (*engine)->CountDocs("ACGT");
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(*docs, 1u);  // only chr1 (chr2 is GGTT, chr3 is ACA)
  auto gg = (*engine)->CountDocs("GG");
  ASSERT_TRUE(gg.ok());
  EXPECT_EQ(*gg, 1u);
  auto local = (*engine)->LocateInDoc("ACGT", 0);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*local, (std::vector<uint64_t>{0, 4}));
}

TEST(CollectionBuilderTest, TextFilesAndTerminalStripping) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/a.txt", std::string("ACGTAC") + kTerminal).ok());
  ASSERT_TRUE(env.WriteFile("/b.txt", "GGTT").ok());
  CollectionBuilder builder(Alphabet::Dna(),
                            SmallCollectionOptions(&env, "/txt_idx"));
  ASSERT_TRUE(builder.AddTextFile(&env, "/a.txt").ok());
  ASSERT_TRUE(builder.AddTextFile(&env, "/b.txt", "bee").ok());
  auto result = builder.Build();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->documents.document(0).name, "/a.txt");
  EXPECT_EQ(result->documents.document(0).length, 6u);
  EXPECT_EQ(result->documents.document(1).name, "bee");
}

// ---------------------------------------------------------------------------
// Randomized cross-check against brute-force document scans.
// ---------------------------------------------------------------------------

/// Overlapping occurrence offsets of `pattern` in `doc` by naive scan.
std::vector<uint64_t> ScanDoc(const std::string& doc,
                              const std::string& pattern) {
  std::vector<uint64_t> hits;
  if (pattern.empty() || doc.size() < pattern.size()) return hits;
  std::size_t pos = doc.find(pattern);
  while (pos != std::string::npos) {
    hits.push_back(pos);
    pos = doc.find(pattern, pos + 1);
  }
  return hits;
}

struct BruteForce {
  std::vector<DocHit> histogram;  // ascending doc id, matching docs only
  std::map<uint32_t, std::vector<uint64_t>> local_hits;
};

BruteForce ScanAllDocs(const std::vector<std::string>& docs,
                       const std::string& pattern) {
  BruteForce result;
  for (uint32_t d = 0; d < docs.size(); ++d) {
    std::vector<uint64_t> hits = ScanDoc(docs[d], pattern);
    if (!hits.empty()) {
      result.histogram.push_back({d, hits.size()});
      result.local_hits[d] = std::move(hits);
    }
  }
  return result;
}

class CollectionRandomizedTest
    : public ::testing::TestWithParam<std::pair<const char*, int>> {
 protected:
  Alphabet TestAlphabet() const {
    switch (GetParam().second) {
      case 0:
        return Alphabet::Dna();
      case 1:
        return Alphabet::Protein();
      default:
        return Alphabet::English();
    }
  }
};

TEST_P(CollectionRandomizedTest, DocQueriesMatchBruteForceScans) {
  const Alphabet alphabet = TestAlphabet();
  const uint64_t seed = 1000 + GetParam().second;
  std::mt19937_64 rng(seed);

  // >= 50 documents with wildly varying lengths, some empty, some highly
  // repetitive (shared units => patterns hitting many documents).
  std::vector<std::string> docs;
  std::string shared_unit =
      testing::RandomText(alphabet, 12, seed + 7);
  shared_unit.pop_back();  // strip terminal
  std::uniform_int_distribution<std::size_t> len_dist(10, 300);
  for (int d = 0; d < 56; ++d) {
    if (d % 19 == 3) {
      docs.emplace_back();  // empty document
      continue;
    }
    std::string body = testing::RandomText(alphabet, len_dist(rng), rng());
    body.pop_back();
    if (d % 3 == 0) {
      // Plant the shared unit so many documents contain a common pattern.
      std::uniform_int_distribution<std::size_t> pos_dist(0, body.size());
      body.insert(pos_dist(rng), shared_unit);
    }
    docs.push_back(std::move(body));
  }
  ASSERT_GE(docs.size(), 50u);

  MemEnv env;
  const unsigned workers = GetParam().second == 0 ? 3 : 1;
  CollectionBuilder builder(alphabet,
                            SmallCollectionOptions(&env, "/col", workers));
  for (std::size_t d = 0; d < docs.size(); ++d) {
    ASSERT_TRUE(builder.AddDocument("doc" + std::to_string(d), docs[d]).ok());
  }
  auto built = builder.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->documents.num_documents(), docs.size());

  auto engine = DocEngine::Open(&env, "/col");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Pattern mix: substrings of random documents, the shared unit and its
  // pieces, mutated (mostly-absent) strings, and boundary spans.
  std::vector<std::string> patterns = {shared_unit,
                                       shared_unit.substr(0, 4),
                                       shared_unit.substr(3, 6)};
  std::uniform_int_distribution<std::size_t> pat_len_dist(2, 14);
  while (patterns.size() < 60) {
    std::uniform_int_distribution<std::size_t> doc_dist(0, docs.size() - 1);
    const std::string& doc = docs[doc_dist(rng)];
    if (doc.size() < 2) continue;
    std::size_t len = std::min(pat_len_dist(rng), doc.size());
    std::uniform_int_distribution<std::size_t> pos_dist(0, doc.size() - len);
    std::string pattern = doc.substr(pos_dist(rng), len);
    if (patterns.size() % 5 == 0) {
      pattern.back() = alphabet.Symbol(
          static_cast<int>(rng() % static_cast<uint64_t>(alphabet.size())));
    }
    patterns.push_back(std::move(pattern));
  }

  uint64_t nonzero_answers = 0;
  for (const std::string& pattern : patterns) {
    BruteForce expected = ScanAllDocs(docs, pattern);

    auto histogram = (*engine)->DocumentHistogram(pattern);
    ASSERT_TRUE(histogram.ok()) << histogram.status().ToString();
    EXPECT_EQ(*histogram, expected.histogram) << "pattern: " << pattern;

    auto count_docs = (*engine)->CountDocs(pattern);
    ASSERT_TRUE(count_docs.ok());
    EXPECT_EQ(*count_docs, expected.histogram.size());
    nonzero_answers += *count_docs > 0 ? 1 : 0;

    for (std::size_t k : {1u, 3u, 1000u}) {
      auto topk = (*engine)->TopKDocuments(pattern, k);
      ASSERT_TRUE(topk.ok());
      EXPECT_EQ(*topk, TopKFromHistogram(expected.histogram, k))
          << "pattern: " << pattern << " k=" << k;
    }
  }
  EXPECT_GT(nonzero_answers, 10u);  // the workload actually exercises hits

  // LocateInDoc on every matching (pattern, doc) pair of a pattern subset.
  for (std::size_t i = 0; i < 10; ++i) {
    const std::string& pattern = patterns[i];
    BruteForce expected = ScanAllDocs(docs, pattern);
    for (uint32_t d : {0u, 5u, 17u, 42u}) {
      auto local = (*engine)->LocateInDoc(pattern, d);
      ASSERT_TRUE(local.ok());
      auto it = expected.local_hits.find(d);
      if (it == expected.local_hits.end()) {
        EXPECT_TRUE(local->empty()) << "pattern: " << pattern << " doc " << d;
      } else {
        EXPECT_EQ(*local, it->second) << "pattern: " << pattern << " doc " << d;
      }
    }
  }

  // The doc path never saw an occurrence outside a document: a pattern over
  // the document alphabet cannot start on a separator or terminal byte.
  EXPECT_EQ((*engine)->doc_stats().offsets_outside_documents, 0u);
  EXPECT_GT((*engine)->doc_stats().queries, 0u);
}

TEST_P(CollectionRandomizedTest, PatternsNeverMatchAcrossBoundaries) {
  const Alphabet alphabet = TestAlphabet();
  const uint64_t seed = 2000 + GetParam().second;
  std::mt19937_64 rng(seed);

  std::vector<std::string> docs;
  for (int d = 0; d < 50; ++d) {
    std::string body = testing::RandomText(alphabet, 40 + (d % 7) * 30, rng());
    body.pop_back();
    docs.push_back(std::move(body));
  }

  MemEnv env;
  CollectionBuilder builder(alphabet, SmallCollectionOptions(&env, "/iso"));
  for (std::size_t d = 0; d < docs.size(); ++d) {
    ASSERT_TRUE(builder.AddDocument("doc" + std::to_string(d), docs[d]).ok());
  }
  auto built = builder.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto engine = DocEngine::Open(&env, "/iso");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Boundary spans: the last `a` symbols of doc i glued to the first `b`
  // symbols of doc i+1 — exactly what a collection index must NOT match
  // (the separator sits between them in the indexed text).
  uint64_t spans_checked = 0;
  for (std::size_t d = 0; d + 1 < docs.size(); d += 3) {
    const std::string& left = docs[d];
    const std::string& right = docs[d + 1];
    for (std::size_t a : {1u, 3u, 6u}) {
      for (std::size_t b : {1u, 3u, 6u}) {
        if (left.size() < a || right.size() < b) continue;
        std::string span = left.substr(left.size() - a) + right.substr(0, b);
        BruteForce expected = ScanAllDocs(docs, span);

        // Document-level answers equal the brute-force scan (usually zero
        // documents; coincidental in-document occurrences stay counted).
        auto histogram = (*engine)->DocumentHistogram(span);
        ASSERT_TRUE(histogram.ok());
        EXPECT_EQ(*histogram, expected.histogram) << "span: " << span;

        // And the raw pattern engine over the CONCATENATED text agrees with
        // the sum of in-document occurrences: the separator layout leaves no
        // extra cross-boundary match to find.
        uint64_t in_doc_total = 0;
        for (const DocHit& hit : expected.histogram) {
          in_doc_total += hit.occurrences;
        }
        auto raw = (*engine)->engine().Count(span);
        ASSERT_TRUE(raw.ok());
        EXPECT_EQ(*raw, in_doc_total) << "span: " << span;
        ++spans_checked;
      }
    }
  }
  EXPECT_GT(spans_checked, 100u);

  // Patterns carrying the reserved bytes are rejected outright.
  EXPECT_FALSE((*engine)->CountDocs(std::string(1, kDocSeparator)).ok());
  EXPECT_FALSE(
      (*engine)->CountDocs(docs[0].substr(0, 2) + kDocSeparator).ok());
  EXPECT_FALSE((*engine)->CountDocs(std::string(1, kTerminal)).ok());
  EXPECT_FALSE((*engine)->CountDocs("").ok());
  EXPECT_FALSE((*engine)->LocateInDoc("A|", 0).ok());
  EXPECT_FALSE(
      (*engine)
          ->LocateInDoc(docs[0].substr(0, 1),
                        built->documents.num_documents())
          .ok());
}

INSTANTIATE_TEST_SUITE_P(Alphabets, CollectionRandomizedTest,
                         ::testing::Values(std::make_pair("dna", 0),
                                           std::make_pair("protein", 1),
                                           std::make_pair("english", 2)),
                         [](const auto& info) { return info.param.first; });

// ---------------------------------------------------------------------------
// DocEngine over index format versions and corrupt catalogs.
// ---------------------------------------------------------------------------

TEST(DocEngineTest, OpenFailsOnCorruptDocmap) {
  MemEnv env;
  CollectionBuilder builder(Alphabet::Dna(),
                            SmallCollectionOptions(&env, "/cor"));
  ASSERT_TRUE(builder.AddSyntheticDocuments(8, 200, 11).ok());
  ASSERT_TRUE(builder.Build().ok());
  ASSERT_TRUE(DocEngine::Open(&env, "/cor").ok());

  std::string raw;
  ASSERT_TRUE(env.ReadFileToString("/cor/DOCMAP", &raw).ok());
  std::string bad = raw;
  bad[raw.size() / 2] = static_cast<char>(bad[raw.size() / 2] ^ 0x01);
  ASSERT_TRUE(env.WriteFile("/cor/DOCMAP", bad).ok());
  auto engine = DocEngine::Open(&env, "/cor");
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), Status::Code::kCorruption);

  // Missing DOCMAP: a plain index directory is not a collection.
  ASSERT_TRUE(env.DeleteFile("/cor/DOCMAP").ok());
  EXPECT_FALSE(DocEngine::Open(&env, "/cor").ok());
}

TEST(DocEngineTest, V1MirrorAnswersIdentically) {
  MemEnv env;
  CollectionBuilder builder(Alphabet::Dna(),
                            SmallCollectionOptions(&env, "/v2col"));
  std::mt19937_64 rng(33);
  std::vector<std::string> docs;
  for (int d = 0; d < 20; ++d) {
    std::string body = testing::RepetitiveText(Alphabet::Dna(), 150, rng());
    body.pop_back();
    docs.push_back(body);
    ASSERT_TRUE(builder.AddDocument("doc" + std::to_string(d), body).ok());
  }
  auto built = builder.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  // Mirror: same MANIFEST, TEXT reference and DOCMAP, but every sub-tree
  // file rewritten in the legacy v1 linked format.
  ASSERT_TRUE(env.CreateDir("/v1col").ok());
  for (const char* file : {"MANIFEST", "DOCMAP"}) {
    std::string raw;
    ASSERT_TRUE(
        env.ReadFileToString(std::string("/v2col/") + file, &raw).ok());
    ASSERT_TRUE(env.WriteFile(std::string("/v1col/") + file, raw).ok());
  }
  for (const SubTreeEntry& entry : built->index.subtrees()) {
    TreeBuffer tree;
    std::string prefix;
    ASSERT_TRUE(ReadSubTree(&env, "/v2col/" + entry.filename, &tree, &prefix,
                            nullptr)
                    .ok());
    ASSERT_TRUE(WriteSubTreeV1(&env, "/v1col/" + entry.filename, prefix, tree,
                               nullptr)
                    .ok());
  }

  auto v2 = DocEngine::Open(&env, "/v2col");
  auto v1 = DocEngine::Open(&env, "/v1col");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();

  std::vector<std::string> patterns;
  for (const std::string& doc : docs) {
    patterns.push_back(doc.substr(0, 5));
    patterns.push_back(doc.substr(doc.size() / 2, 8));
  }
  patterns.push_back("ACGTACGTACGTACGT");  // likely absent
  for (const std::string& pattern : patterns) {
    auto h2 = (*v2)->DocumentHistogram(pattern);
    auto h1 = (*v1)->DocumentHistogram(pattern);
    ASSERT_TRUE(h2.ok());
    ASSERT_TRUE(h1.ok());
    EXPECT_EQ(*h2, *h1) << "pattern: " << pattern;
    auto top2 = (*v2)->TopKDocuments(pattern, 4);
    auto top1 = (*v1)->TopKDocuments(pattern, 4);
    ASSERT_TRUE(top2.ok());
    ASSERT_TRUE(top1.ok());
    EXPECT_EQ(*top2, *top1);
    auto loc2 = (*v2)->LocateInDoc(pattern, 7);
    auto loc1 = (*v1)->LocateInDoc(pattern, 7);
    ASSERT_TRUE(loc2.ok());
    ASSERT_TRUE(loc1.ok());
    EXPECT_EQ(*loc2, *loc1);
  }
}

TEST(DocEngineTest, BatchedVariantsMatchSingles) {
  MemEnv env;
  CollectionBuilder builder(Alphabet::Dna(),
                            SmallCollectionOptions(&env, "/batch"));
  ASSERT_TRUE(builder.AddSyntheticDocuments(30, 120, 5).ok());
  ASSERT_TRUE(builder.Build().ok());
  auto engine = DocEngine::Open(&env, "/batch");
  ASSERT_TRUE(engine.ok());

  std::vector<std::string> patterns = {"A", "AC", "GT", "ACGTACGT", "TTTT"};
  auto counts = (*engine)->CountDocsBatch(patterns);
  ASSERT_TRUE(counts.ok());
  auto topks = (*engine)->TopKDocumentsBatch(patterns, 3);
  ASSERT_TRUE(topks.ok());
  ASSERT_EQ(counts->size(), patterns.size());
  ASSERT_EQ(topks->size(), patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    auto count = (*engine)->CountDocs(patterns[i]);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ((*counts)[i], *count);
    auto topk = (*engine)->TopKDocuments(patterns[i], 3);
    ASSERT_TRUE(topk.ok());
    EXPECT_EQ((*topks)[i], *topk);
  }
  // Errors propagate out of batches.
  EXPECT_FALSE((*engine)->CountDocsBatch({"A", "|"}).ok());
  EXPECT_FALSE((*engine)->TopKDocumentsBatch({"A", ""}, 2).ok());
}

}  // namespace
}  // namespace era
