// TileCache unit suite: boundary reads, budget accounting, eviction under
// pinning, scan-resistant admission, the CachedFile adapter, and an
// 8-thread eviction racer (also run under ThreadSanitizer in CI).

#include "io/tile_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "io/mem_env.h"

namespace era {
namespace {

constexpr uint32_t kTile = 4096;  // minimum legal tile size, test-friendly

class TileCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_.resize(10 * kTile + 123);  // deliberately not tile-aligned
    std::mt19937_64 rng(7);
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = static_cast<char>('A' + (rng() % 26));
    }
    ASSERT_TRUE(env_.WriteFile("/s", data_).ok());
  }

  std::shared_ptr<TileCache> Open(uint64_t budget_bytes, uint32_t shards = 1) {
    TileCacheOptions options;
    options.budget_bytes = budget_bytes;
    options.tile_bytes = kTile;
    options.shards = shards;
    auto cache = TileCache::Open(&env_, "/s", options);
    EXPECT_TRUE(cache.ok());
    return *cache;
  }

  MemEnv env_;
  std::string data_;
};

TEST_F(TileCacheTest, RejectsBadOptions) {
  TileCacheOptions options;
  options.tile_bytes = 1000;  // not a power of two
  EXPECT_FALSE(TileCache::Open(&env_, "/s", options).ok());
  options.tile_bytes = 2048;  // below the 4 KiB floor
  EXPECT_FALSE(TileCache::Open(&env_, "/s", options).ok());
  options.tile_bytes = 4096;
  options.budget_bytes = 0;
  EXPECT_FALSE(TileCache::Open(&env_, "/s", options).ok());
}

TEST_F(TileCacheTest, ReadsSpanningTileBoundariesMatchContent) {
  auto cache = Open(/*budget=*/64 * kTile);
  std::string buf(3 * kTile, '\0');
  std::size_t got = 0;
  // Start mid-tile, span two boundaries.
  ASSERT_TRUE(
      cache->ReadAt(kTile / 2, 2 * kTile + 100, buf.data(), &got).ok());
  EXPECT_EQ(got, 2 * kTile + 100u);
  EXPECT_EQ(buf.substr(0, got), data_.substr(kTile / 2, got));
}

TEST_F(TileCacheTest, ShortReadsAtAndPastEof) {
  auto cache = Open(64 * kTile);
  std::string buf(2 * kTile, '\0');
  std::size_t got = 0;
  // Straddles end-of-file: short read.
  ASSERT_TRUE(
      cache->ReadAt(data_.size() - 50, 2 * kTile, buf.data(), &got).ok());
  EXPECT_EQ(got, 50u);
  EXPECT_EQ(buf.substr(0, got), data_.substr(data_.size() - 50));
  // Entirely past end-of-file: zero bytes, not an error.
  ASSERT_TRUE(
      cache->ReadAt(data_.size() + 10, kTile, buf.data(), &got).ok());
  EXPECT_EQ(got, 0u);
}

TEST_F(TileCacheTest, HitMissAndDeviceByteAccounting) {
  auto cache = Open(64 * kTile);
  std::string buf(kTile, '\0');
  std::size_t got = 0;
  ASSERT_TRUE(cache->ReadAt(0, kTile, buf.data(), &got).ok());
  TileCache::Snapshot snapshot = cache->stats();
  EXPECT_EQ(snapshot.misses, 1u);
  EXPECT_EQ(snapshot.hits, 0u);
  EXPECT_EQ(snapshot.device_bytes_read, kTile);
  EXPECT_EQ(snapshot.resident_tiles, 1u);
  EXPECT_EQ(snapshot.resident_bytes, kTile);
  // Same tile again: pure hit, no device traffic.
  ASSERT_TRUE(cache->ReadAt(100, 200, buf.data(), &got).ok());
  snapshot = cache->stats();
  EXPECT_EQ(snapshot.misses, 1u);
  EXPECT_EQ(snapshot.hits, 1u);
  EXPECT_EQ(snapshot.device_bytes_read, kTile);
}

TEST_F(TileCacheTest, BudgetIsRespectedAndEvictionsAreCounted) {
  // Budget of 3 tiles, single shard. A forward scan freezes the shallowest
  // tiles and bypasses the rest (scan resistance); a backward scan then
  // brings shallower newcomers, which ARE allowed to evict deeper
  // touch-cold residents. Residency must respect the budget throughout.
  auto cache = Open(3 * kTile);
  std::string buf(kTile, '\0');
  std::size_t got = 0;
  const uint64_t tiles = (data_.size() + kTile - 1) / kTile;
  for (uint64_t t = 0; t < tiles; ++t) {
    ASSERT_TRUE(cache->ReadAt(t * kTile, kTile, buf.data(), &got).ok());
    EXPECT_LE(cache->stats().resident_bytes, 3 * kTile);
  }
  TileCache::Snapshot snapshot = cache->stats();
  EXPECT_EQ(snapshot.evictions, 0u);  // forward scan: freeze + bypass
  EXPECT_GT(snapshot.bypasses, 0u);
  EXPECT_LE(snapshot.resident_tiles, 3u);

  // Evict the frozen prefix's deepest entry by re-reading from the middle
  // of the file downward: each newcomer is shallower than some resident.
  cache->EvictAll();
  for (uint64_t t = tiles; t-- > 4;) {
    ASSERT_TRUE(cache->ReadAt(t * kTile, kTile, buf.data(), &got).ok());
    EXPECT_LE(cache->stats().resident_bytes, 3 * kTile);
  }
  snapshot = cache->stats();
  EXPECT_GT(snapshot.evictions, 0u);
  EXPECT_GT(snapshot.evicted_bytes, 0u);
  EXPECT_LE(snapshot.resident_tiles, 3u);
}

TEST_F(TileCacheTest, EvictionNeverInvalidatesPinnedTiles) {
  auto cache = Open(2 * kTile);
  // Pin a deep tile and keep the shared_ptr across traffic that evicts it
  // (shallower newcomers may displace deeper touch-cold residents).
  auto pinned = cache->GetTile(9);
  ASSERT_TRUE(pinned.ok());
  const std::string before((*pinned)->data.begin(), (*pinned)->data.end());
  std::string buf(kTile, '\0');
  std::size_t got = 0;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t t = 0; t < 9; ++t) {
      ASSERT_TRUE(cache->ReadAt(t * kTile, kTile, buf.data(), &got).ok());
    }
  }
  EXPECT_GT(cache->stats().evictions, 0u);
  // The pinned bytes are untouched even though tile 9 was evicted long ago.
  EXPECT_EQ(std::string((*pinned)->data.begin(), (*pinned)->data.end()),
            before);
  EXPECT_EQ(before, data_.substr(9 * kTile, kTile));
}

TEST_F(TileCacheTest, SingleOversizedResidencyGrace) {
  // Budget below one tile: the cache must still retain one tile (the PR 3
  // cache's "never below one resident entry" rule) so it degrades to a
  // one-tile cache instead of caching nothing.
  auto cache = Open(kTile / 2);
  std::string buf(kTile, '\0');
  std::size_t got = 0;
  ASSERT_TRUE(cache->ReadAt(0, kTile, buf.data(), &got).ok());
  EXPECT_EQ(cache->stats().resident_tiles, 1u);
  ASSERT_TRUE(cache->ReadAt(0, kTile, buf.data(), &got).ok());
  EXPECT_EQ(cache->stats().hits, 1u);
}

TEST_F(TileCacheTest, RepeatedFullScansAreScanResistant) {
  // 11-tile file through a 4-tile budget: plain LRU would evict every tile
  // moments before its next use and hit 0% on every pass. The reuse-gated
  // admission freezes a resident subset instead, so later passes hit.
  auto cache = Open(4 * kTile);
  std::string buf(kTile, '\0');
  std::size_t got = 0;
  for (int pass = 0; pass < 6; ++pass) {
    for (uint64_t pos = 0; pos < data_.size(); pos += kTile) {
      ASSERT_TRUE(cache->ReadAt(pos, kTile, buf.data(), &got).ok());
    }
  }
  TileCache::Snapshot snapshot = cache->stats();
  // 6 passes x 11 tiles = 66 lookups; a frozen 4-tile set gives ~4 hits per
  // pass from pass 2 on. Require a healthy fraction of that, not LRU's 0.
  EXPECT_GE(snapshot.hits, 15u);
  EXPECT_GT(snapshot.bypasses, 0u);
  EXPECT_LE(snapshot.resident_bytes, 4 * kTile);
}

TEST_F(TileCacheTest, EvictAllDropsResidencyButKeepsServing) {
  auto cache = Open(8 * kTile);
  std::string buf(kTile, '\0');
  std::size_t got = 0;
  ASSERT_TRUE(cache->ReadAt(0, kTile, buf.data(), &got).ok());
  EXPECT_EQ(cache->stats().resident_tiles, 1u);
  cache->EvictAll();
  EXPECT_EQ(cache->stats().resident_tiles, 0u);
  EXPECT_EQ(cache->stats().resident_bytes, 0u);
  ASSERT_TRUE(cache->ReadAt(0, kTile, buf.data(), &got).ok());
  EXPECT_EQ(buf.substr(0, got), data_.substr(0, kTile));
}

TEST_F(TileCacheTest, CachedFileAdapterServesIdenticalBytes) {
  auto cache = Open(4 * kTile, /*shards=*/2);
  std::unique_ptr<RandomAccessFile> file = NewCachedFile(cache);
  EXPECT_EQ(file->Size(), data_.size());
  std::mt19937_64 rng(99);
  std::string buf(3000, '\0');
  for (int i = 0; i < 500; ++i) {
    const uint64_t pos = rng() % (data_.size() + 200);
    const std::size_t len = 1 + rng() % buf.size();
    std::size_t got = 0;
    // Alternate Read and ReadAt: both must be position-stateless.
    Status s = (i % 2 == 0) ? file->Read(pos, len, buf.data(), &got)
                            : file->ReadAt(pos, len, buf.data(), &got);
    ASSERT_TRUE(s.ok());
    const std::size_t expect =
        pos >= data_.size()
            ? 0
            : std::min<std::size_t>(len, data_.size() - pos);
    ASSERT_EQ(got, expect) << "pos " << pos << " len " << len;
    if (got > 0) {
      ASSERT_EQ(buf.substr(0, got), data_.substr(pos, got));
    }
  }
}

TEST_F(TileCacheTest, EightThreadEvictionRacer) {
  // Tiny budget + 8 reader threads + an EvictAll racer: every byte served
  // must still match the file, and accounting must stay consistent. This
  // test runs in the build-tsan CI job.
  auto cache = Open(2 * kTile, /*shards=*/4);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      std::string buf(2 * kTile, '\0');
      for (int i = 0; i < 600; ++i) {
        const uint64_t pos = rng() % data_.size();
        const std::size_t len = 1 + rng() % buf.size();
        std::size_t got = 0;
        if (!cache->ReadAt(pos, len, buf.data(), &got).ok() ||
            got != std::min<std::size_t>(len, data_.size() - pos) ||
            buf.compare(0, got, data_, pos, got) != 0) {
          ++failures;
          return;
        }
        if (i % 50 == 0) {
          auto pinned = cache->GetTile(pos / kTile);
          if (!pinned.ok() || (*pinned)->data.empty()) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  std::thread evictor([&] {
    while (!stop.load()) {
      cache->EvictAll();
      std::this_thread::yield();
    }
  });
  for (auto& t : readers) t.join();
  stop = true;
  evictor.join();
  EXPECT_EQ(failures.load(), 0);
  TileCache::Snapshot snapshot = cache->stats();
  EXPECT_GT(snapshot.misses, 0u);
  EXPECT_EQ(snapshot.resident_bytes,
            cache->stats().resident_bytes);  // coherent snapshot
}

}  // namespace
}  // namespace era
