// Metrics registry, histogram, tracing, and exporter tests.
//
// Pins the observability substrate from common/metrics.h: bucket semantics
// (upper-inclusive, Prometheus `le`), quantile estimation against a
// sorted-sample oracle, counter sharding under thread contention (run under
// TSan in CI), trace ring wraparound, exporter round-trips, and the
// guarantee that turning the registry on does not change any of the
// engine's existing snapshot values.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "era/era_builder.h"
#include "io/mem_env.h"
#include "query/query_engine.h"
#include "query/query_workload.h"
#include "tests/test_util.h"

namespace era {
namespace {

// ---------------------------------------------------------------------------
// Histogram buckets and quantiles
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsAreUpperInclusive) {
  Histogram histogram(std::vector<double>{1.0, 2.0, 4.0});
  // A trailing +inf bucket is appended.
  ASSERT_EQ(histogram.bounds().size(), 4u);
  EXPECT_TRUE(std::isinf(histogram.bounds().back()));

  // Exactly-on-boundary values land in the bucket whose bound they equal
  // (value <= bound), matching Prometheus `le` and the admission layer's
  // original wait histogram.
  EXPECT_EQ(histogram.BucketFor(0.0), 0u);
  EXPECT_EQ(histogram.BucketFor(1.0), 0u);
  EXPECT_EQ(histogram.BucketFor(1.0000001), 1u);
  EXPECT_EQ(histogram.BucketFor(2.0), 1u);
  EXPECT_EQ(histogram.BucketFor(4.0), 2u);
  EXPECT_EQ(histogram.BucketFor(4.1), 3u);
  EXPECT_EQ(histogram.BucketFor(1e12), 3u);
}

TEST(HistogramTest, ObserveFillsTheRightBuckets) {
  Histogram histogram(std::vector<double>{1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 100.0}) {
    histogram.Observe(v);
  }
  HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(snap.counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(snap.counts[2], 1u);  // 3.0
  EXPECT_EQ(snap.counts[3], 2u);  // 5.0, 100.0
  EXPECT_EQ(snap.count, 7u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 5.0 + 100.0);
}

TEST(HistogramTest, LogBucketsCoverTheRequestedRange) {
  std::vector<double> bounds = Histogram::LogBuckets(1e-6, 16.0, 2.0);
  ASSERT_GE(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  // The ladder is terminated by +inf; the finite rungs are geometric and
  // the last one is within one factor of the requested max.
  EXPECT_TRUE(std::isinf(bounds.back()));
  const std::size_t finite = bounds.size() - 1;
  EXPECT_GE(bounds[finite - 1] * 2.0, 16.0);
  for (std::size_t i = 1; i < finite; ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    EXPECT_NEAR(bounds[i] / bounds[i - 1], 2.0, 1e-9);
  }
}

TEST(HistogramTest, QuantileMatchesSortedSampleOracle) {
  // Fine geometric buckets (5% steps) so interpolation error is bounded by
  // one bucket width; the oracle is the exact order statistic.
  Histogram histogram(Histogram::LogBuckets(1e-4, 10.0, 1.05));
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(-4.0, 1.0);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    double v = std::min(dist(rng), 9.0);
    samples.push_back(v);
    histogram.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99}) {
    double oracle =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    double estimate = histogram.Quantile(q);
    // The estimate must land within one bucket of the oracle: at 5% bucket
    // steps that is <= ~10% relative error.
    EXPECT_NEAR(estimate, oracle, oracle * 0.11)
        << "q=" << q << " oracle=" << oracle << " estimate=" << estimate;
  }
}

TEST(HistogramTest, QuantileOnEmptyHistogramIsNan) {
  Histogram histogram;
  EXPECT_TRUE(std::isnan(histogram.Quantile(0.5)));
}

// ---------------------------------------------------------------------------
// Counter sharding under contention (runs under TSan in CI)
// ---------------------------------------------------------------------------

TEST(CounterTest, EightThreadContentionLosesNothing) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, IncrementByDelta) {
  Counter counter;
  counter.Increment(41);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(GaugeTest, SetAddFromManyThreads) {
  Gauge gauge;
  gauge.Set(100.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 1000; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.Value(), 100.0 + 4 * 1000);
}

TEST(HistogramTest, ConcurrentObserveLosesNothing) {
  Histogram histogram(std::vector<double>{0.5, 1.5, 2.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(static_cast<double>(t % 3));  // 0, 1, or 2
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

// ---------------------------------------------------------------------------
// Registry and exporters
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, GetReturnsTheSameSeriesForSameNameAndLabels) {
  MetricsRegistry registry;
  auto a = registry.GetCounter("era_test_total", "help");
  auto b = registry.GetCounter("era_test_total", "help");
  EXPECT_EQ(a.get(), b.get());
  auto labeled =
      registry.GetCounter("era_test_total", "help", {{"engine", "1"}});
  EXPECT_NE(a.get(), labeled.get());
  a->Increment(3);
  labeled->Increment(5);
  // Two series of one family, distinguished by labels.
  int matches = 0;
  for (const MetricSample& sample : registry.Snapshot()) {
    if (sample.name != "era_test_total") continue;
    ++matches;
    if (sample.labels.empty()) {
      EXPECT_DOUBLE_EQ(sample.value, 3.0);
    } else {
      ASSERT_EQ(sample.labels.size(), 1u);
      EXPECT_EQ(sample.labels[0].first, "engine");
      EXPECT_DOUBLE_EQ(sample.value, 5.0);
    }
  }
  EXPECT_EQ(matches, 2);
}

TEST(MetricsRegistryTest, CollectorsContributeAndCanBeRemoved) {
  MetricsRegistry registry;
  uint64_t id = registry.AddCollector([](std::vector<MetricSample>* out) {
    MetricSample sample;
    sample.name = "era_collected_items";
    sample.help = "from a collector";
    sample.kind = MetricKind::kGauge;
    sample.value = 7;
    out->push_back(std::move(sample));
  });
  auto has_collected = [&registry] {
    for (const MetricSample& sample : registry.Snapshot()) {
      if (sample.name == "era_collected_items") return true;
    }
    return false;
  };
  EXPECT_TRUE(has_collected());
  registry.RemoveCollector(id);
  EXPECT_FALSE(has_collected());
}

TEST(MetricsRegistryTest, PrometheusExportIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("era_reads_total", "Total reads")->Increment(12);
  registry.GetGauge("era_resident_bytes", "Resident bytes")->Set(4096);
  auto histogram = registry.GetHistogram("era_wait_seconds", "Queue wait",
                                         {}, {0.1, 1.0});
  histogram->Observe(0.05);
  histogram->Observe(0.5);
  histogram->Observe(10.0);

  const std::string text = registry.ExportPrometheus();
  // One HELP and one TYPE line per family.
  for (const char* name :
       {"era_reads_total", "era_resident_bytes", "era_wait_seconds"}) {
    const std::string help = std::string("# HELP ") + name + " ";
    const std::string type = std::string("# TYPE ") + name + " ";
    EXPECT_NE(text.find(help), std::string::npos) << name;
    EXPECT_EQ(text.find(help), text.rfind(help)) << "duplicate HELP " << name;
    EXPECT_EQ(text.find(type), text.rfind(type)) << "duplicate TYPE " << name;
  }
  EXPECT_NE(text.find("# TYPE era_reads_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE era_resident_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE era_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("era_reads_total 12"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == count.
  EXPECT_NE(text.find("era_wait_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("era_wait_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("era_wait_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("era_wait_seconds_count 3"), std::string::npos);
  // Exposition format: every non-comment line is "name{labels} value" or
  // "name value"; no blank metric names, no negative counter values.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    EXPECT_NE(value[0], '-') << "negative sample: " << line;
  }
}

TEST(MetricsRegistryTest, JsonExportRoundTripsValues) {
  MetricsRegistry registry;
  registry.GetCounter("era_reads_total", "Total reads")->Increment(12);
  auto histogram =
      registry.GetHistogram("era_wait_seconds", "Queue wait", {}, {0.1, 1.0});
  histogram->Observe(0.5);

  const std::string json = registry.ExportJson();
  // Minimal structural validation: balanced braces/brackets and the
  // expected fields present with the expected values.
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"era_reads_total\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"era_wait_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"value\":12"), std::string::npos);
}

TEST(MetricsRegistryTest, RenderLabelsEscapesAndOrders) {
  EXPECT_EQ(RenderLabels({}), "");
  EXPECT_EQ(RenderLabels({{"a", "1"}, {"b", "x"}}), "a=\"1\",b=\"x\"");
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, RingWrapsKeepingTheNewestTraces) {
  TraceRecorderOptions options;
  options.ring_capacity = 4;
  TraceRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    auto trace = recorder.StartTrace("count", /*client_id=*/0);
    { TraceSpan span(trace.get(), "match"); }
    recorder.FinishTrace(trace, Status::OK());
  }
  EXPECT_EQ(recorder.traces_started(), 10u);
  EXPECT_EQ(recorder.traces_completed(), 10u);
  auto recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 4u);
  // Oldest first, and only the newest four survive the wrap.
  for (std::size_t i = 1; i < recent.size(); ++i) {
    EXPECT_GT(recent[i]->id, recent[i - 1]->id);
  }
  EXPECT_EQ(recent.back()->id, recent.front()->id + 3);
}

TEST(TraceRecorderTest, SlowRingAndSpanCap) {
  TraceRecorderOptions options;
  options.slow_query_seconds = 0.001;
  options.log_slow = false;
  options.max_spans_per_trace = 2;
  TraceRecorder recorder(options);
  auto trace = recorder.StartTrace("locate", /*client_id=*/3);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(trace.get(), "subtree_open");
  }
  // Push the trace past the slow threshold deterministically.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  recorder.FinishTrace(trace, Status::OK());
  EXPECT_EQ(recorder.slow_traces(), 1u);
  auto slow = recorder.Slow();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0]->spans.size(), 2u);
  EXPECT_EQ(slow[0]->dropped_spans, 3u);
  EXPECT_EQ(slow[0]->client_id, 3u);
}

TEST(TraceRecorderTest, NullTraceSpansAreNoOps) {
  TraceSpan span(nullptr, "match");
  span.set_note("cache_hit");  // must not crash
}

TEST(TraceRecorderTest, ChromeTracingExportIsBalancedJson) {
  TraceRecorder recorder;
  auto trace = recorder.StartTrace("count", /*client_id=*/0);
  {
    TraceSpan outer(trace.get(), "match");
    TraceSpan inner(trace.get(), "subtree_open");
    inner.set_note("cache_miss");
  }
  recorder.FinishTrace(trace, Status::OK());
  const std::string json = recorder.ExportChromeTracing();
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"match\""), std::string::npos);
  EXPECT_NE(json.find("\"subtree_open\""), std::string::npos);
  EXPECT_NE(json.find("cache_miss"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Phase profiler
// ---------------------------------------------------------------------------

TEST(PhaseProfilerTest, RecordsMergeByPhaseAndWorker) {
  PhaseProfiler profiler;
  profiler.Record("prepare", 0, 1.0);
  profiler.Record("prepare", 0, 0.5);
  profiler.Record("prepare", 1, 2.0);
  profiler.Record("build_subtree", 1, 3.0, /*calls=*/4);
  auto entries = profiler.Entries();
  ASSERT_EQ(entries.size(), 3u);
  // First-recorded phase order, workers ascending within a phase.
  EXPECT_EQ(entries[0].phase, "prepare");
  EXPECT_EQ(entries[0].worker, 0u);
  EXPECT_DOUBLE_EQ(entries[0].seconds, 1.5);
  EXPECT_EQ(entries[0].calls, 2u);
  EXPECT_EQ(entries[1].worker, 1u);
  EXPECT_EQ(entries[2].phase, "build_subtree");
  EXPECT_EQ(entries[2].calls, 4u);

  PhaseProfiler other;
  other.Merge(entries);
  other.Record("prepare", 0, 0.5);
  auto merged = other.Entries();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_DOUBLE_EQ(merged[0].seconds, 2.0);
}

TEST(PhaseProfilerTest, FormatPhaseTableRendersRows) {
  EXPECT_EQ(FormatPhaseTable({}), "");
  PhaseProfiler profiler;
  profiler.Record("vertical_partition", 0, 0.25);
  profiler.Record("prepare", 0, 1.0);
  profiler.Record("prepare", 1, 2.0);
  const std::string table = FormatPhaseTable(profiler.Entries());
  EXPECT_NE(table.find("vertical_partition"), std::string::npos);
  EXPECT_NE(table.find("prepare"), std::string::npos);
  EXPECT_EQ(table.back(), '\n');
}

// ---------------------------------------------------------------------------
// Engine integration: registry on/off equivalence and span nesting
// ---------------------------------------------------------------------------

class MetricsEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text_ = testing::RepetitiveText(Alphabet::Dna(), 6000, 23);
    auto info = MaterializeText(&env_, "/text", Alphabet::Dna(), text_);
    ASSERT_TRUE(info.ok());
    BuildOptions options;
    options.env = &env_;
    options.work_dir = "/idx";
    options.memory_budget = 256 << 10;  // several sub-trees
    options.input_buffer_bytes = 4096;
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  MemEnv env_;
  std::string text_;
};

TEST_F(MetricsEngineTest, SnapshotValuesIdenticalWithRegistryOnOrOff) {
  QueryWorkloadOptions workload_options;
  workload_options.num_patterns = 400;
  std::vector<std::string> patterns =
      SamplePatternWorkload(text_, workload_options);

  auto run = [&](bool metrics_enabled, MetricsRegistry* registry,
                 QueryStats* stats, IoStats* io, uint64_t* checksum) {
    QueryEngineOptions options;
    options.metrics_enabled = metrics_enabled;
    options.registry = registry;
    auto engine = QueryEngine::Open(&env_, "/idx", options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    // One thread: multi-threaded replay makes cache hit/miss attribution
    // timing-dependent, and this test pins exact equality.
    auto replay =
        ReplayWorkload(engine->get(), patterns, 1, workload_options);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    *checksum = replay->occurrence_checksum;
    *stats = (*engine)->stats();
    *io = (*engine)->io();
  };

  MetricsRegistry registry;  // private registry: no Global() pollution
  QueryStats stats_on, stats_off;
  IoStats io_on, io_off;
  uint64_t checksum_on = 0, checksum_off = 0;
  run(true, &registry, &stats_on, &io_on, &checksum_on);
  run(false, nullptr, &stats_off, &io_off, &checksum_off);

  EXPECT_EQ(checksum_on, checksum_off);
  for (const QueryStatsField& field : QueryStatsFields()) {
    EXPECT_EQ(stats_on.*(field.member), stats_off.*(field.member))
        << field.name;
  }
  for (const IoStatsField& field : IoStatsFields()) {
    EXPECT_EQ(io_on.*(field.member), io_off.*(field.member)) << field.name;
  }
  // The registry-backed engine exported real values: its query counter
  // matches the struct view.
  bool found = false;
  for (const MetricSample& sample : registry.Snapshot()) {
    if (sample.name == "era_query_queries_total") {
      found = true;
      EXPECT_DOUBLE_EQ(sample.value, static_cast<double>(stats_on.queries));
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsEngineTest, TracedQueriesRecordNestedSpans) {
  QueryEngineOptions options;
  MetricsRegistry registry;
  options.registry = &registry;
  options.trace.enabled = true;
  options.trace.sample_every = 1;
  auto engine = QueryEngine::Open(&env_, "/idx", options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_NE((*engine)->tracer(), nullptr);

  std::string pattern = text_.substr(100, 12);
  ASSERT_TRUE((*engine)->Count(pattern).ok());
  ASSERT_TRUE((*engine)->Locate(pattern, 50).ok());

  TraceRecorder* tracer = (*engine)->tracer();
  EXPECT_EQ(tracer->traces_completed(), 2u);
  auto recent = tracer->Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0]->label, "count");
  EXPECT_EQ(recent[1]->label, "locate");

  for (const auto& trace : recent) {
    EXPECT_EQ(trace->status, "OK");
    EXPECT_GT(trace->total_us, 0.0);
    bool saw_admission = false, saw_match = false;
    for (const TraceSpanRecord& span : trace->spans) {
      // Every span nests inside the request: starts at or after zero and
      // ends at or before the trace end (tolerance for clock rounding).
      EXPECT_GE(span.start_us, 0.0);
      EXPECT_LE(span.start_us + span.dur_us, trace->total_us + 50.0)
          << span.name;
      EXPECT_GE(span.depth, 0);
      if (std::string(span.name) == "admission") saw_admission = true;
      if (std::string(span.name) == "match") saw_match = true;
    }
    EXPECT_TRUE(saw_admission) << trace->label;
    EXPECT_TRUE(saw_match) << trace->label;
  }

  // The locate trace collected leaves.
  bool saw_collect = false;
  for (const TraceSpanRecord& span : recent[1]->spans) {
    if (std::string(span.name) == "collect") saw_collect = true;
  }
  EXPECT_TRUE(saw_collect);

  // Sampling: every second request traced when sample_every == 2.
  QueryEngineOptions sampled = options;
  sampled.trace.sample_every = 2;
  auto engine2 = QueryEngine::Open(&env_, "/idx", sampled);
  ASSERT_TRUE(engine2.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE((*engine2)->Count(pattern).ok());
  }
  EXPECT_EQ((*engine2)->tracer()->traces_completed(), 3u);
}

}  // namespace
}  // namespace era
