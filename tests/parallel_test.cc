// Shared-memory and shared-nothing parallel construction: identical output
// to the serial builder, clean work division, and coherent phase accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/thread_pool.h"
#include "era/cluster_builder.h"
#include "era/memory_layout.h"
#include "era/parallel_builder.h"
#include "io/mem_env.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"

namespace era {
namespace {

struct Workload {
  MemEnv env;
  TextInfo info;
  std::string text;
};

std::unique_ptr<Workload> MakeWorkload(std::size_t length, uint64_t seed) {
  auto w = std::make_unique<Workload>();
  w->text = testing::RepetitiveText(Alphabet::Dna(), length, seed);
  auto info = MaterializeText(&w->env, "/text", Alphabet::Dna(), w->text);
  EXPECT_TRUE(info.ok());
  w->info = *info;
  return w;
}

BuildOptions BaseOptions(Env* env, const std::string& dir) {
  BuildOptions options;
  options.env = env;
  options.work_dir = dir;
  options.memory_budget = 2 << 20;
  options.input_buffer_bytes = 4096;
  return options;
}

class ParallelWorkers : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelWorkers, MatchesOracleAndSerial) {
  unsigned workers = GetParam();
  auto w = MakeWorkload(20000, 51);

  ParallelBuilder builder(BaseOptions(&w->env, "/par"), workers);
  auto result = builder.Build(w->info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(&w->env, result->index, w->text));
  EXPECT_TRUE(ValidateIndex(&w->env, result->index, w->text).ok());
  EXPECT_EQ(result->worker_seconds.size(), workers);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ParallelWorkers,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "workers_" + std::to_string(info.param);
                         });

TEST(ParallelBuilderTest, OutputIdenticalAcrossWorkerCounts) {
  auto w = MakeWorkload(15000, 52);
  std::vector<uint64_t> reference;
  for (unsigned workers : {1u, 3u, 7u}) {
    ParallelBuilder builder(
        BaseOptions(&w->env, "/par" + std::to_string(workers)), workers);
    auto result = builder.Build(w->info);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto order = testing::GlobalLeafOrder(&w->env, result->index);
    ASSERT_TRUE(order.ok());
    if (reference.empty()) {
      reference = *order;
    } else {
      EXPECT_EQ(*order, reference) << workers << " workers diverged";
    }
  }
}

TEST(ParallelBuilderTest, PerCoreBudgetShrinksFm) {
  // Dividing memory across cores lowers FM (more, smaller sub-trees): the
  // contention mechanism behind Figure 12(a)'s 8-core knee.
  auto w = MakeWorkload(15000, 53);
  ParallelBuilder one(BaseOptions(&w->env, "/p1"), 1);
  ParallelBuilder eight(BaseOptions(&w->env, "/p8"), 8);
  auto r1 = one.Build(w->info);
  auto r8 = eight.Build(w->info);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r8.ok());
  EXPECT_GT(r1->stats.fm, r8->stats.fm);
  EXPECT_LE(r1->stats.num_subtrees, r8->stats.num_subtrees);
}

TEST(ParallelBuilderTest, RejectsZeroWorkers) {
  auto w = MakeWorkload(5000, 58);
  ParallelBuilder builder(BaseOptions(&w->env, "/zero"), 0);
  auto result = builder.Build(w->info);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
}

TEST(ParallelBuilderTest, RejectsBudgetSmallerThanWorkerCount) {
  // A budget below the worker count used to silently plan a zero-byte
  // per-core layout; it must be rejected up front.
  auto w = MakeWorkload(5000, 57);
  BuildOptions options = BaseOptions(&w->env, "/tiny");
  // Passes the generic >= 64 KB validation but still divides to zero bytes
  // per worker; the guard rejects it before any thread is spawned.
  options.memory_budget = 1 << 16;
  ParallelBuilder builder(options, (1 << 16) + 1);
  auto result = builder.Build(w->info);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
}

TEST(ParallelBuilderTest, LptOrderSortsGroupsByDescendingFrequency) {
  // The giant group must be dispatched first, not land on the last free
  // worker (longest-processing-time heuristic).
  std::vector<VirtualTree> groups(5);
  groups[0].total_frequency = 10;
  groups[1].total_frequency = 500;
  groups[2].total_frequency = 10;  // tie with 0: index order breaks it
  groups[3].total_frequency = 90000;
  groups[4].total_frequency = 4000;
  std::vector<std::size_t> order = LptGroupOrder(groups);
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 4, 1, 0, 2}));
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(groups[order[i - 1]].total_frequency,
              groups[order[i]].total_frequency)
        << "dispatch order is not LPT at position " << i;
  }
}

TEST(ParallelBuilderTest, TileAffinityOrderChainsOverlappingFootprints) {
  // Four groups: two live in the first half of the text, two in the second.
  // Affinity must schedule same-half groups adjacently so the shared tile
  // cache serves the second of each pair, while the LPT head still leads.
  std::vector<VirtualTree> groups(4);
  groups[0].total_frequency = 1000;
  groups[0].footprint_mask = 0x00000000FFFFFFFFull;  // first half
  groups[1].total_frequency = 900;
  groups[1].footprint_mask = 0xFFFFFFFF00000000ull;  // second half
  groups[2].total_frequency = 800;
  groups[2].footprint_mask = 0x00000000FFFF0000ull;  // first half
  groups[3].total_frequency = 700;
  groups[3].footprint_mask = 0xFFFF000000000000ull;  // second half
  std::vector<std::size_t> order = TileAffinityOrder(groups);
  // LPT head (group 0) first; its half-mate (2) next; then the other half
  // pair in LPT order.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 1, 3}));
}

TEST(ParallelBuilderTest, TileAffinityOrderDegradesToLptOnUniformMasks) {
  // Short prefixes over random text occur everywhere: every mask is the
  // same, so the refinement must reproduce the LPT order exactly (this is
  // what keeps the committed DNA bench schedule comparable across PRs).
  std::vector<VirtualTree> groups(5);
  const uint64_t everywhere = ~uint64_t{0};
  groups[0].total_frequency = 10;
  groups[1].total_frequency = 500;
  groups[2].total_frequency = 10;
  groups[3].total_frequency = 90000;
  groups[4].total_frequency = 4000;
  for (auto& g : groups) g.footprint_mask = everywhere;
  EXPECT_EQ(TileAffinityOrder(groups), LptGroupOrder(groups));
}

TEST(ParallelBuilderTest, PartitionPlanCarriesFootprintMasks) {
  auto w = MakeWorkload(30000, 61);
  BuildOptions options = BaseOptions(&w->env, "/fp");
  options.memory_budget = 1 << 20;
  auto layout = PlanMemory(options, w->info.alphabet.size());
  ASSERT_TRUE(layout.ok());
  auto plan = VerticalPartition(w->info, options, layout->fm);
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->groups.size(), 1u);
  for (const VirtualTree& group : plan->groups) {
    EXPECT_NE(group.footprint_mask, 0u)
        << "every group occurs somewhere, so its mask cannot be empty";
    uint64_t union_of_members = 0;
    for (const PrefixInfo& p : group.prefixes) {
      EXPECT_NE(p.footprint_mask, 0u) << p.prefix;
      union_of_members |= p.footprint_mask;
    }
    EXPECT_EQ(group.footprint_mask, union_of_members);
  }
  // The affinity order is a permutation of all groups.
  std::vector<std::size_t> order = TileAffinityOrder(plan->groups);
  std::vector<char> seen(plan->groups.size(), 0);
  for (std::size_t g : order) {
    ASSERT_LT(g, seen.size());
    EXPECT_FALSE(seen[g]);
    seen[g] = 1;
  }
}

TEST(ParallelBuilderTest, LptOrderMatchesRealPartitionPlan) {
  // End-to-end: the order fed to the queue for a real plan is monotonically
  // non-increasing in total_frequency.
  auto w = MakeWorkload(30000, 59);
  BuildOptions options = BaseOptions(&w->env, "/lpt");
  options.memory_budget = 1 << 20;  // small budget => many groups
  auto layout = PlanMemory(options, w->info.alphabet.size());
  ASSERT_TRUE(layout.ok());
  auto plan = VerticalPartition(w->info, options, layout->fm);
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->groups.size(), 2u);
  std::vector<std::size_t> order = LptGroupOrder(plan->groups);
  ASSERT_EQ(order.size(), plan->groups.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(plan->groups[order[i - 1]].total_frequency,
              plan->groups[order[i]].total_frequency);
  }
}

TEST(ParallelBuilderTest, WaveFrontVariantMatchesOracle) {
  auto w = MakeWorkload(10000, 54);
  ParallelBuilder builder(BaseOptions(&w->env, "/pwf"), 4,
                          ParallelAlgorithm::kWaveFront);
  auto result = builder.Build(w->info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(&w->env, result->index, w->text));
}

ClusterOptions MakeCluster(unsigned nodes) {
  ClusterOptions cluster;
  cluster.num_nodes = nodes;
  cluster.per_node_budget = 1 << 20;
  cluster.network_bytes_per_second = 16.0 * 1024 * 1024;
  return cluster;
}

class ClusterNodes : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClusterNodes, MatchesOracle) {
  unsigned nodes = GetParam();
  auto w = MakeWorkload(20000, 61);
  ClusterBuilder builder(BaseOptions(&w->env, "/cluster"),
                         MakeCluster(nodes));
  auto result = builder.Build(w->info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(&w->env, result->index, w->text));
  EXPECT_EQ(result->node_seconds.size(), nodes);
  EXPECT_EQ(result->node_io.size(), nodes);

  // Phase accounting: transfer is |S| / bandwidth; all-in time adds the
  // serial phases (Table 3's last column).
  double expected_transfer =
      static_cast<double>(w->info.length) / (16.0 * 1024 * 1024);
  EXPECT_NEAR(result->transfer_seconds, expected_transfer, 1e-9);
  EXPECT_GE(result->AllSeconds(), result->ConstructionSeconds());
  EXPECT_NEAR(result->AllSeconds(),
              result->makespan_seconds + result->transfer_seconds +
                  result->vertical_seconds,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, ClusterNodes,
                         ::testing::Values(1u, 2u, 5u, 16u),
                         [](const auto& info) {
                           return "nodes_" + std::to_string(info.param);
                         });

TEST(ClusterBuilderTest, OutputIdenticalAcrossNodeCounts) {
  auto w = MakeWorkload(15000, 62);
  std::vector<uint64_t> reference;
  for (unsigned nodes : {1u, 4u, 9u}) {
    ClusterBuilder builder(
        BaseOptions(&w->env, "/c" + std::to_string(nodes)),
        MakeCluster(nodes));
    auto result = builder.Build(w->info);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto order = testing::GlobalLeafOrder(&w->env, result->index);
    ASSERT_TRUE(order.ok());
    if (reference.empty()) {
      reference = *order;
    } else {
      EXPECT_EQ(*order, reference) << nodes << " nodes diverged";
    }
  }
}

TEST(ClusterBuilderTest, LoadBalancingSpreadsWork) {
  // With many groups and LPT assignment, per-node I/O should be within a
  // reasonable factor across nodes (near-optimal speed-up in Table 3).
  auto w = MakeWorkload(40000, 63);
  ClusterOptions cluster = MakeCluster(4);
  cluster.per_node_budget = 512 << 10;  // more, smaller groups
  ClusterBuilder builder(BaseOptions(&w->env, "/bal"), cluster);
  auto result = builder.Build(w->info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  uint64_t min_bytes = ~0ull;
  uint64_t max_bytes = 0;
  for (const IoStats& io : result->node_io) {
    min_bytes = std::min(min_bytes, io.bytes_read);
    max_bytes = std::max(max_bytes, io.bytes_read);
  }
  ASSERT_GT(min_bytes, 0u);
  EXPECT_LE(max_bytes, 3 * min_bytes)
      << "grossly unbalanced node I/O: " << min_bytes << " vs " << max_bytes;
}

TEST(ClusterBuilderTest, WaveFrontClusterMatchesOracle) {
  auto w = MakeWorkload(10000, 64);
  ClusterOptions cluster = MakeCluster(3);
  cluster.algorithm = ParallelAlgorithm::kWaveFront;
  ClusterBuilder builder(BaseOptions(&w->env, "/cwf"), cluster);
  auto result = builder.Build(w->info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(&w->env, result->index, w->text));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilCompletion) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 8);
}

}  // namespace
}  // namespace era
