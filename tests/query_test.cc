// Query engine and applications against naive string-scan oracles.

#include "query/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "era/era_builder.h"
#include "io/mem_env.h"
#include "query/applications.h"
#include "tests/test_util.h"

namespace era {
namespace {

/// All occurrence positions of `pattern` in `text` by naive scan (the
/// terminal byte is part of the text and may match).
std::vector<uint64_t> NaiveLocate(const std::string& text,
                                  const std::string& pattern) {
  std::vector<uint64_t> hits;
  std::size_t pos = text.find(pattern);
  while (pos != std::string::npos) {
    hits.push_back(pos);
    pos = text.find(pattern, pos + 1);
  }
  return hits;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text_ = testing::RepetitiveText(Alphabet::Dna(), 8000, 71);
    auto info = MaterializeText(&env_, "/text", Alphabet::Dna(), text_);
    ASSERT_TRUE(info.ok());

    BuildOptions options;
    options.env = &env_;
    options.work_dir = "/idx";
    options.memory_budget = 512 << 10;  // force several sub-trees
    options.input_buffer_bytes = 4096;
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    auto engine = QueryEngine::Open(&env_, "/idx");
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  void CheckPattern(const std::string& pattern) {
    auto expected = NaiveLocate(text_, pattern);
    auto located = engine_->Locate(pattern);
    ASSERT_TRUE(located.ok()) << located.status().ToString();
    EXPECT_EQ(*located, expected) << "pattern: " << pattern;
    auto count = engine_->Count(pattern);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, expected.size()) << "pattern: " << pattern;
    auto contains = engine_->Contains(pattern);
    ASSERT_TRUE(contains.ok());
    EXPECT_EQ(*contains, !expected.empty());
  }

  MemEnv env_;
  std::string text_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, ShortPatternsWithinTrie) {
  for (const char* p : {"A", "C", "G", "T", "AC", "GT", "TT"}) {
    CheckPattern(p);
  }
}

TEST_F(QueryEngineTest, MediumPatternsFromText) {
  for (std::size_t offset : {0u, 100u, 500u, 4000u, 7900u}) {
    CheckPattern(text_.substr(offset, 12));
  }
}

TEST_F(QueryEngineTest, LongPatternsIncludingFullSuffixes) {
  CheckPattern(text_.substr(7000));             // suffix incl. terminal
  CheckPattern(text_.substr(0, 200));           // long prefix
  CheckPattern(text_.substr(2500, 64));
}

TEST_F(QueryEngineTest, AbsentPatterns) {
  CheckPattern("ACGTACGTACGTACGTACGTACGTACGTACGT");
  // A pattern that diverges from the text in its last symbol.
  std::string almost = text_.substr(1000, 20);
  almost.back() = almost.back() == 'A' ? 'C' : 'A';
  CheckPattern(almost);
}

TEST_F(QueryEngineTest, EmptyPatternRejected) {
  EXPECT_FALSE(engine_->Locate("").ok());
  EXPECT_FALSE(engine_->Count("").ok());
}

TEST_F(QueryEngineTest, LimitReturnsTheSmallestOffsets) {
  // Regression: leaves used to be collected in tree order up to the limit
  // and only then sorted, so Locate(p, k) could return k arbitrary (not the
  // k smallest) offsets. The guarantee is now: smallest `limit` offsets.
  for (const std::string& pattern :
       {std::string("A"), std::string("T"), text_.substr(100, 6)}) {
    auto full = engine_->Locate(pattern);
    ASSERT_TRUE(full.ok());
    ASSERT_GT(full->size(), 5u) << "pattern: " << pattern;
    for (std::size_t limit : {1u, 2u, 5u}) {
      auto limited = engine_->Locate(pattern, limit);
      ASSERT_TRUE(limited.ok());
      std::vector<uint64_t> expected(full->begin(), full->begin() + limit);
      EXPECT_EQ(*limited, expected)
          << "pattern: " << pattern << " limit: " << limit;
    }
  }
}

TEST_F(QueryEngineTest, ArbitraryOrderStopsEnumeratingAtTheLimit) {
  // LocateOrder::kArbitrary is the bounded-enumeration contract: the engine
  // may stop decoding leaf slots as soon as `limit` are in hand. The
  // regression pin is on leaves_enumerated — a decode-everything-then-trim
  // implementation would satisfy the result check but light this up.
  const std::string pattern = text_.substr(100, 4);
  auto full = engine_->Locate(pattern);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->size(), 8u);

  for (std::size_t limit : {1u, 3u, 8u}) {
    const uint64_t before = engine_->stats().leaves_enumerated;
    auto limited = engine_->Locate(pattern, limit, LocateOrder::kArbitrary);
    ASSERT_TRUE(limited.ok());
    EXPECT_EQ(limited->size(), limit);
    // Arbitrary subset, but still sorted and still real occurrences.
    for (std::size_t i = 0; i + 1 < limited->size(); ++i) {
      EXPECT_LT((*limited)[i], (*limited)[i + 1]);
    }
    for (uint64_t hit : *limited) {
      EXPECT_NE(std::find(full->begin(), full->end(), hit), full->end());
    }
    // The pin: exactly `limit` slots were decoded, not the full match set.
    EXPECT_EQ(engine_->stats().leaves_enumerated - before, limit)
        << "limit: " << limit;
  }

  // kSmallest with the same limit must keep enumerating everything (that is
  // what buys the "smallest offsets" guarantee).
  const uint64_t before = engine_->stats().leaves_enumerated;
  auto smallest = engine_->Locate(pattern, 3);
  ASSERT_TRUE(smallest.ok());
  std::vector<uint64_t> expected(full->begin(), full->begin() + 3);
  EXPECT_EQ(*smallest, expected);
  EXPECT_EQ(engine_->stats().leaves_enumerated - before, full->size());
}

TEST_F(QueryEngineTest, CountNeverEnumeratesLeaves) {
  // Patterns long enough to leave the trie and land in a sub-tree with many
  // occurrences below the match node.
  std::vector<std::string> patterns = {text_.substr(0, 6),
                                       text_.substr(500, 8),
                                       text_.substr(4000, 10)};
  for (const std::string& pattern : patterns) {
    auto count = engine_->Count(pattern);
    ASSERT_TRUE(count.ok());
    EXPECT_GT(*count, 1u) << "pattern: " << pattern;  // non-trivial subtree
  }
  QueryStats stats = engine_->stats();
  // Count answers come from the counted layout's subtree leaf counts: zero
  // leaf records were materialized, and the walk visited a bounded number of
  // nodes per query (binary-search probes over |P| levels, not occ leaves).
  EXPECT_EQ(stats.leaves_enumerated, 0u);
  EXPECT_GT(stats.queries, 0u);
  EXPECT_LT(stats.nodes_visited, 64u * patterns.size());

  // Locate does enumerate; the counter proves the instrumentation works.
  auto hits = engine_->Locate(patterns[0]);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(engine_->stats().leaves_enumerated, hits->size());

  // Contains goes through Count: still no enumeration.
  auto contains = engine_->Contains(patterns[1]);
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(*contains);
  EXPECT_EQ(engine_->stats().leaves_enumerated, hits->size());
}

TEST_F(QueryEngineTest, BatchedApisMatchSingles) {
  std::vector<std::string> patterns = {"A",
                                       "ACG",
                                       text_.substr(10, 12),
                                       text_.substr(3000, 7),
                                       "ACGTACGTACGTACGTACGTACGTACGTACGT"};
  auto counts = engine_->CountBatch(patterns);
  ASSERT_TRUE(counts.ok());
  auto locates = engine_->LocateBatch(patterns, 20);
  ASSERT_TRUE(locates.ok());
  ASSERT_EQ(counts->size(), patterns.size());
  ASSERT_EQ(locates->size(), patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    auto count = engine_->Count(patterns[i]);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ((*counts)[i], *count) << "pattern: " << patterns[i];
    auto hits = engine_->Locate(patterns[i], 20);
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ((*locates)[i], *hits) << "pattern: " << patterns[i];
  }
  EXPECT_FALSE(engine_->CountBatch({"A", ""}).ok());  // errors propagate
}

TEST_F(QueryEngineTest, CountUsesTrieWithoutSubTreeIo) {
  uint64_t reads_before = engine_->io().bytes_read;
  auto count = engine_->Count("A");  // resolvable from trie frequencies
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(engine_->io().bytes_read, reads_before);
}

TEST(QueryEngineLifecycleTest, OpenFailsOnMissingIndex) {
  MemEnv env;
  EXPECT_FALSE(QueryEngine::Open(&env, "/nope").ok());
}

// ---------------------------------------------------------------------------
// Applications.
// ---------------------------------------------------------------------------

class ApplicationsTest : public ::testing::Test {
 protected:
  /// Builds an ERA index over `text` in `dir`, returning it.
  TreeIndex BuildIndex(const std::string& text, const std::string& dir,
                       const Alphabet& alphabet) {
    auto info = MaterializeText(&env_, dir + "_text", alphabet, text);
    EXPECT_TRUE(info.ok());
    BuildOptions options;
    options.env = &env_;
    options.work_dir = dir;
    options.memory_budget = 512 << 10;
    options.input_buffer_bytes = 4096;
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result->index);
  }

  MemEnv env_;
};

TEST_F(ApplicationsTest, LongestRepeatedSubstringMatchesLcpOracle) {
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 5000, 81);
  TreeIndex index = BuildIndex(text, "/lrs", Alphabet::Dna());

  auto lrs = LongestRepeatedSubstring(&env_, index, text);
  ASSERT_TRUE(lrs.ok()) << lrs.status().ToString();

  // Oracle: the maximum LCP between adjacent suffixes.
  SaLcp oracle = testing::OracleSaLcp(text);
  uint64_t max_lcp =
      *std::max_element(oracle.lcp.begin(), oracle.lcp.end());
  EXPECT_EQ(lrs->length, max_lcp);
  // The witness substring must indeed occur at least twice.
  std::string witness = text.substr(lrs->offset, lrs->length);
  EXPECT_NE(text.find(witness, text.find(witness) + 1), std::string::npos);
}

TEST_F(ApplicationsTest, LongestRepeatedSubstringOnRandomText) {
  std::string text = testing::RandomText(Alphabet::Protein(), 4000, 82);
  TreeIndex index = BuildIndex(text, "/lrs2", Alphabet::Protein());
  auto lrs = LongestRepeatedSubstring(&env_, index, text);
  ASSERT_TRUE(lrs.ok());
  SaLcp oracle = testing::OracleSaLcp(text);
  EXPECT_EQ(lrs->length,
            *std::max_element(oracle.lcp.begin(), oracle.lcp.end()));
}

TEST_F(ApplicationsTest, MostFrequentKmerMatchesNaiveCount) {
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 3000, 83);
  TreeIndex index = BuildIndex(text, "/kmer", Alphabet::Dna());

  for (uint64_t k : {3u, 8u, 16u}) {
    auto motif = MostFrequentKmer(&env_, index, text, k);
    ASSERT_TRUE(motif.ok()) << motif.status().ToString();

    // Naive: count all k-windows inside the body.
    std::map<std::string, uint64_t> counts;
    for (std::size_t i = 0; i + k < text.size(); ++i) {
      counts[text.substr(i, k)]++;
    }
    uint64_t best = 0;
    for (const auto& [w, c] : counts) best = std::max(best, c);
    EXPECT_EQ(motif->count, best) << "k=" << k;
    EXPECT_EQ(counts[text.substr(motif->offset, k)], best) << "k=" << k;
  }
}

TEST_F(ApplicationsTest, ConcatenateDocumentsLayout) {
  auto combined = ConcatenateDocuments({"abc", "de", "f"}, '#');
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined->text, std::string("abc#de#f") + kTerminal);
  ASSERT_EQ(combined->documents.num_documents(), 3u);
  EXPECT_EQ(combined->documents.document(0).start, 0u);
  EXPECT_EQ(combined->documents.document(1).start, 4u);
  EXPECT_EQ(combined->documents.document(2).start, 7u);
  EXPECT_EQ(combined->documents.document(1).length, 2u);
  EXPECT_EQ(combined->documents.document(1).name, "doc1");
  EXPECT_EQ(combined->documents.separator(), '#');
  EXPECT_FALSE(ConcatenateDocuments({}, '#').ok());
}

TEST_F(ApplicationsTest, ConcatenateDocumentsRejectsReservedBytes) {
  // A document containing the separator or the terminal must fail at
  // ingestion (InvalidArgument), not later at LCS query time.
  auto sep_collision = ConcatenateDocuments({"ab#c", "de"}, '#');
  EXPECT_FALSE(sep_collision.ok());
  EXPECT_EQ(sep_collision.status().code(), Status::Code::kInvalidArgument);
  auto term_collision =
      ConcatenateDocuments({std::string("ab") + kTerminal, "de"}, '#');
  EXPECT_FALSE(term_collision.ok());
  EXPECT_EQ(term_collision.status().code(), Status::Code::kInvalidArgument);
  // The separator itself may not be the terminal.
  EXPECT_FALSE(ConcatenateDocuments({"ab"}, kTerminal).ok());
}

TEST_F(ApplicationsTest, ConcatenateDocumentsDegenerateLayouts) {
  // Single document: no separators, just the terminal.
  auto single = ConcatenateDocuments({"abc"}, '#');
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->text, std::string("abc") + kTerminal);
  ASSERT_EQ(single->documents.num_documents(), 1u);
  DocLocation loc;
  EXPECT_TRUE(single->documents.Resolve(2, &loc));
  EXPECT_EQ(loc.doc_id, 0u);
  EXPECT_FALSE(single->documents.Resolve(3, &loc));  // terminal

  // Empty documents in every position.
  auto with_empty = ConcatenateDocuments({"", "ab", "", "c", ""}, '#');
  ASSERT_TRUE(with_empty.ok());
  EXPECT_EQ(with_empty->text, std::string("#ab##c#") + kTerminal);
  ASSERT_EQ(with_empty->documents.num_documents(), 5u);
  EXPECT_TRUE(with_empty->documents.Resolve(1, &loc));
  EXPECT_EQ(loc.doc_id, 1u);
  EXPECT_EQ(loc.local_offset, 0u);
  EXPECT_TRUE(with_empty->documents.Resolve(5, &loc));
  EXPECT_EQ(loc.doc_id, 3u);
  // Separators and the terminal resolve to no document.
  for (uint64_t off : {0u, 3u, 4u, 6u, 7u}) {
    EXPECT_FALSE(with_empty->documents.Resolve(off, &loc)) << off;
  }
}

TEST_F(ApplicationsTest, LongestCommonSubstringMatchesNaiveDp) {
  // Two English-like documents with a planted common phrase.
  std::string a = testing::RandomText(Alphabet::English(), 600, 84);
  a.pop_back();  // strip terminal
  std::string b = testing::RandomText(Alphabet::English(), 500, 85);
  b.pop_back();
  const std::string planted = "thequickbrownfoxjumps";
  a.insert(200, planted);
  b.insert(350, planted);

  auto combined = ConcatenateDocuments({a, b}, '#');
  ASSERT_TRUE(combined.ok());
  auto alphabet = Alphabet::Create("#abcdefghijklmnopqrstuvwxyz");
  ASSERT_TRUE(alphabet.ok());
  TreeIndex index = BuildIndex(combined->text, "/lcs", *alphabet);

  auto lcs = LongestCommonSubstring(&env_, index, combined->documents, 0, 1);
  ASSERT_TRUE(lcs.ok()) << lcs.status().ToString();

  // Naive DP oracle for the LCS length.
  std::vector<std::vector<uint32_t>> dp(a.size() + 1,
                                        std::vector<uint32_t>(b.size() + 1));
  uint32_t naive = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        dp[i][j] = dp[i - 1][j - 1] + 1;
        naive = std::max(naive, dp[i][j]);
      }
    }
  }
  EXPECT_GE(naive, planted.size());
  EXPECT_EQ(lcs->length, naive);

  // The witness must occur in both documents.
  std::string witness = combined->text.substr(lcs->offset, lcs->length);
  EXPECT_NE(a.find(witness), std::string::npos);
  EXPECT_NE(b.find(witness), std::string::npos);
}

}  // namespace
}  // namespace era
