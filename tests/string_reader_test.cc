#include "io/string_reader.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "io/mem_env.h"

namespace era {
namespace {

class StringReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_.resize(1 << 20);
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = static_cast<char>('A' + (i % 26));
    }
    ASSERT_TRUE(env_.WriteFile("/s", data_).ok());
  }

  std::unique_ptr<StringReader> Open(const StringReaderOptions& options) {
    auto reader = OpenStringReader(&env_, "/s", options, &stats_);
    EXPECT_TRUE(reader.ok());
    return std::move(*reader);
  }

  MemEnv env_;
  IoStats stats_;
  std::string data_;
};

TEST_F(StringReaderTest, SequentialFetchMatchesContent) {
  StringReaderOptions options;
  options.buffer_bytes = 8192;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[64];
  uint32_t got = 0;
  for (uint64_t pos = 0; pos < 100000; pos += 1000) {
    ASSERT_TRUE(reader->Fetch(pos, 64, buf, &got).ok());
    ASSERT_EQ(got, 64u);
    EXPECT_EQ(std::string(buf, 64), data_.substr(pos, 64));
  }
}

TEST_F(StringReaderTest, BackwardsFetchWithinScanFails) {
  auto reader = Open({});
  reader->BeginScan();
  char buf[8];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(5000, 8, buf, &got).ok());
  EXPECT_FALSE(reader->Fetch(4000, 8, buf, &got).ok());
}

TEST_F(StringReaderTest, NewScanAllowsRewind) {
  auto reader = Open({});
  reader->BeginScan();
  char buf[8];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(5000, 8, buf, &got).ok());
  reader->BeginScan();
  ASSERT_TRUE(reader->Fetch(0, 8, buf, &got).ok());
  EXPECT_EQ(std::string(buf, got), data_.substr(0, 8));
  EXPECT_EQ(stats_.scans_started, 2u);
}

TEST_F(StringReaderTest, FetchClampsAtEof) {
  auto reader = Open({});
  reader->BeginScan(data_.size() - 10);
  char buf[64];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(data_.size() - 10, 64, buf, &got).ok());
  EXPECT_EQ(got, 10u);
  ASSERT_TRUE(reader->Fetch(data_.size() + 5, 64, buf, &got).ok());
  EXPECT_EQ(got, 0u);
}

TEST_F(StringReaderTest, ReadThroughBillsSequentialBytes) {
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  options.seek_optimization = false;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[4];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(0, 4, buf, &got).ok());
  uint64_t before = stats_.bytes_read;
  // Jump far ahead: without seek optimization, the gap is read through.
  ASSERT_TRUE(reader->Fetch(500000, 4, buf, &got).ok());
  EXPECT_GE(stats_.bytes_read - before, 490000u);
  EXPECT_EQ(stats_.bytes_skipped, 0u);
}

TEST_F(StringReaderTest, SeekOptimizationSkipsGap) {
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  options.seek_optimization = true;
  options.skip_threshold_bytes = 64 << 10;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[4];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(0, 4, buf, &got).ok());
  uint64_t read_before = stats_.bytes_read;
  uint64_t seeks_before = stats_.seeks;
  ASSERT_TRUE(reader->Fetch(500000, 4, buf, &got).ok());
  EXPECT_EQ(std::string(buf, 4), data_.substr(500000, 4));
  // Only one buffer worth of data fetched; the gap was skipped with a seek.
  EXPECT_LE(stats_.bytes_read - read_before, options.buffer_bytes);
  EXPECT_EQ(stats_.seeks, seeks_before + 1);
  EXPECT_GT(stats_.bytes_skipped, 400000u);
}

TEST_F(StringReaderTest, SmallGapIsReadThroughEvenWithSeekOpt) {
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  options.seek_optimization = true;
  options.skip_threshold_bytes = 64 << 10;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[4];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(0, 4, buf, &got).ok());
  uint64_t seeks_before = stats_.seeks;
  ASSERT_TRUE(reader->Fetch(10000, 4, buf, &got).ok());  // < threshold
  EXPECT_EQ(stats_.seeks, seeks_before);
  EXPECT_EQ(std::string(buf, 4), data_.substr(10000, 4));
}

TEST_F(StringReaderTest, RandomFetchCountsSeeks) {
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  auto reader = Open(options);
  char buf[16];
  uint32_t got = 0;
  ASSERT_TRUE(reader->RandomFetch(900000, 16, buf, &got).ok());
  EXPECT_EQ(std::string(buf, got), data_.substr(900000, 16));
  uint64_t seeks_after_first = stats_.seeks;
  EXPECT_GE(seeks_after_first, 1u);
  // A second fetch inside the same window is free.
  ASSERT_TRUE(reader->RandomFetch(900100, 16, buf, &got).ok());
  EXPECT_EQ(stats_.seeks, seeks_after_first);
  // Jumping back is another seek.
  ASSERT_TRUE(reader->RandomFetch(100, 16, buf, &got).ok());
  EXPECT_EQ(stats_.seeks, seeks_after_first + 1);
}

TEST_F(StringReaderTest, FetchSpanningBufferBoundary) {
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[256];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(4000, 256, buf, &got).ok());
  EXPECT_EQ(got, 256u);
  EXPECT_EQ(std::string(buf, 256), data_.substr(4000, 256));
}

TEST_F(StringReaderTest, FetchBatchMatchesContentAndCoalesces) {
  StringReaderOptions options;
  options.buffer_bytes = 64 << 10;
  auto reader = Open(options);
  reader->BeginScan();

  // Adjacent and overlapping windows, the SubTreePrepare request shape.
  char out[8][32];
  std::vector<FetchRequest> requests;
  uint64_t pos = 1000;
  for (int i = 0; i < 8; ++i) {
    requests.push_back({pos, 32, out[i], 0});
    pos += (i % 2 == 0) ? 16 : 32;  // every other request overlaps
  }
  ASSERT_TRUE(reader->FetchBatch(requests).ok());
  for (const FetchRequest& r : requests) {
    ASSERT_EQ(r.got, 32u);
    EXPECT_EQ(std::string(r.out, r.got), data_.substr(r.pos, 32));
  }
  // The whole batch fits in one window residency: one refill, no seeks.
  EXPECT_EQ(stats_.sequential_refills, 1u);
  EXPECT_EQ(stats_.seeks, 0u);
  EXPECT_EQ(stats_.fetch_batches, 1u);
  EXPECT_EQ(stats_.batched_requests, 8u);
}

TEST_F(StringReaderTest, FetchBatchShortReadsAtEof) {
  auto reader = Open({});
  reader->BeginScan();
  char a[64], b[64], c[64];
  std::vector<FetchRequest> requests = {
      {data_.size() - 100, 64, a, 0},  // fully inside
      {data_.size() - 10, 64, b, 0},   // short
      {data_.size() + 5, 64, c, 0},    // past the end
  };
  ASSERT_TRUE(reader->FetchBatch(requests).ok());
  EXPECT_EQ(requests[0].got, 64u);
  EXPECT_EQ(requests[1].got, 10u);
  EXPECT_EQ(std::string(requests[1].out, requests[1].got),
            data_.substr(data_.size() - 10));
  EXPECT_EQ(requests[2].got, 0u);
}

TEST_F(StringReaderTest, FetchBatchRejectsUnsortedStream) {
  auto reader = Open({});
  reader->BeginScan();
  char a[8], b[8];
  std::vector<FetchRequest> requests = {{5000, 8, a, 0}, {4000, 8, b, 0}};
  Status status = reader->FetchBatch(requests);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST_F(StringReaderTest, RandomFetchBatchHitsResidentWindow) {
  StringReaderOptions options;
  options.buffer_bytes = 8192;
  options.random_window_bytes = 4096;
  auto reader = Open(options);
  char a[16], b[16], c[16];
  // First request repositions (one seek); the other two hit the window.
  std::vector<FetchRequest> requests = {
      {500000, 16, a, 0}, {500100, 16, b, 0}, {500050, 16, c, 0}};
  ASSERT_TRUE(reader->RandomFetchBatch(requests).ok());
  for (const FetchRequest& r : requests) {
    ASSERT_EQ(r.got, 16u);
    EXPECT_EQ(std::string(r.out, r.got), data_.substr(r.pos, 16));
  }
  EXPECT_EQ(stats_.seeks, 1u);
  EXPECT_EQ(stats_.fetch_batches, 1u);
  EXPECT_EQ(stats_.batched_requests, 3u);
}

TEST(DiskModelTest, PricesTransferAndSeeks) {
  IoStats stats;
  stats.bytes_read = 100 * 1024 * 1024;  // 1 second at 100 MB/s
  stats.seeks = 125;                     // 1 second at 8 ms each
  DiskModel model;
  EXPECT_NEAR(model.ModeledSeconds(stats), 2.0, 1e-9);
}

// ---------------------------------------------------------------------------
// PrefetchingStringReader
// ---------------------------------------------------------------------------

TEST_F(StringReaderTest, PrefetchingSequentialScanMatchesAndHits) {
  StringReaderOptions options;
  options.buffer_bytes = 16384;
  options.prefetch = true;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[128];
  uint32_t got = 0;
  for (uint64_t pos = 0; pos + 128 <= data_.size(); pos += 4096) {
    ASSERT_TRUE(reader->Fetch(pos, 128, buf, &got).ok());
    ASSERT_EQ(got, 128u);
    ASSERT_EQ(std::string(buf, got), data_.substr(pos, 128)) << pos;
  }
  // 1 MiB through 16 KiB windows: after the first (cold) refill every
  // window should come from the double buffer.
  EXPECT_GT(stats_.prefetch_hits, 50u);
  EXPECT_LE(stats_.prefetch_misses, 2u);
  EXPECT_GT(stats_.prefetched_bytes, 0u);
  // Prefetched traffic is billed into bytes_read like any other read.
  EXPECT_GE(stats_.bytes_read, data_.size());
}

TEST_F(StringReaderTest, PrefetchingMatchesPlainReaderUnderRandomizedUse) {
  // Adversarial equivalence: the same call sequence against a plain and a
  // prefetching reader must return identical bytes — across scan restarts,
  // seek-optimized gaps, EOF short reads, and interleaved RandomFetch.
  StringReaderOptions plain_options;
  plain_options.buffer_bytes = 8192;
  plain_options.seek_optimization = true;
  plain_options.skip_threshold_bytes = 16384;
  StringReaderOptions prefetch_options = plain_options;
  prefetch_options.prefetch = true;

  IoStats plain_stats;
  auto plain = OpenStringReader(&env_, "/s", plain_options, &plain_stats);
  ASSERT_TRUE(plain.ok());
  auto prefetching = Open(prefetch_options);

  std::mt19937_64 rng(1234);
  char a[256], b[256];
  uint64_t pos = 0;
  (*plain)->BeginScan();
  prefetching->BeginScan();
  for (int step = 0; step < 3000; ++step) {
    const int kind = static_cast<int>(rng() % 20);
    if (kind == 0) {
      pos = rng() % data_.size();
      (*plain)->BeginScan(pos);
      prefetching->BeginScan(pos);
      continue;
    }
    if (kind == 1) {
      // Interleaved random access (the vertical partitioner's tail probe).
      uint64_t rpos = rng() % (data_.size() + 64);
      uint32_t len = 1 + static_cast<uint32_t>(rng() % 64);
      uint32_t got_a = 0, got_b = 0;
      ASSERT_TRUE((*plain)->RandomFetch(rpos, len, a, &got_a).ok());
      ASSERT_TRUE(prefetching->RandomFetch(rpos, len, b, &got_b).ok());
      ASSERT_EQ(got_a, got_b);
      ASSERT_EQ(std::string(a, got_a), std::string(b, got_b));
      continue;
    }
    uint64_t gap = rng() % 3 == 0 ? rng() % 50000 : rng() % 512;
    pos += gap;
    if (pos > data_.size() + 32) {
      pos = 0;
      (*plain)->BeginScan();
      prefetching->BeginScan();
    }
    uint32_t len = 1 + static_cast<uint32_t>(rng() % 256);
    uint32_t got_a = 0, got_b = 0;
    ASSERT_TRUE((*plain)->Fetch(pos, len, a, &got_a).ok());
    ASSERT_TRUE(prefetching->Fetch(pos, len, b, &got_b).ok());
    ASSERT_EQ(got_a, got_b) << "pos " << pos << " len " << len;
    ASSERT_EQ(std::string(a, got_a), std::string(b, got_b)) << "pos " << pos;
  }
}

TEST_F(StringReaderTest, PrefetchingFetchBatchMatchesPlain) {
  StringReaderOptions options;
  options.buffer_bytes = 8192;
  StringReaderOptions prefetch_options = options;
  prefetch_options.prefetch = true;
  IoStats plain_stats;
  auto plain = OpenStringReader(&env_, "/s", options, &plain_stats);
  ASSERT_TRUE(plain.ok());
  auto prefetching = Open(prefetch_options);

  std::mt19937_64 rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint64_t> positions;
    uint64_t pos = rng() % 1000;
    while (pos + 64 < data_.size()) {
      positions.push_back(pos);
      pos += 16 + rng() % 30000;
    }
    std::vector<char> out_a(positions.size() * 32);
    std::vector<char> out_b(positions.size() * 32);
    std::vector<FetchRequest> req_a(positions.size());
    std::vector<FetchRequest> req_b(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      req_a[i] = {positions[i], 32, out_a.data() + 32 * i, 0};
      req_b[i] = {positions[i], 32, out_b.data() + 32 * i, 0};
    }
    (*plain)->BeginScan();
    prefetching->BeginScan();
    ASSERT_TRUE((*plain)->FetchBatch(req_a).ok());
    ASSERT_TRUE(prefetching->FetchBatch(req_b).ok());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      ASSERT_EQ(req_a[i].got, req_b[i].got);
    }
    ASSERT_EQ(out_a, out_b) << "round " << round;
  }
  EXPECT_GT(stats_.prefetch_hits, 0u);
}

TEST_F(StringReaderTest, PrefetchThrottlesSpeculationOnSeekHeavyScans) {
  // A sparse seek-optimized scan discards every speculative window; after
  // a couple of wasted windows the reader must stop speculating instead of
  // burning a full buffer of device bandwidth per skip.
  StringReaderOptions options;
  options.buffer_bytes = 8192;
  options.seek_optimization = true;
  options.skip_threshold_bytes = 8192;
  options.prefetch = true;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[16];
  uint32_t got = 0;
  for (uint64_t pos = 0; pos + 16 <= data_.size(); pos += 60000) {
    ASSERT_TRUE(reader->Fetch(pos, 16, buf, &got).ok());
    ASSERT_EQ(std::string(buf, got), data_.substr(pos, 16));
  }
  // ~17 skips; unthrottled speculation would read one 8 KiB window per
  // skip (~140 KiB). The throttle caps waste at kMaxWastedSpeculations
  // windows plus the re-arm probes after recovery streaks.
  EXPECT_LE(stats_.prefetched_bytes, 6u * options.buffer_bytes)
      << "speculation was not throttled on a seek-heavy scan";

  // ...and a dense sequential scan afterwards re-arms the double buffer.
  uint64_t hits_before = stats_.prefetch_hits;
  reader->BeginScan();
  for (uint64_t pos = 0; pos < 200000; pos += 4096) {
    ASSERT_TRUE(reader->Fetch(pos, 16, buf, &got).ok());
  }
  EXPECT_GT(stats_.prefetch_hits, hits_before + 5)
      << "speculation did not recover after the pattern turned sequential";
}

TEST_F(StringReaderTest, PrefetchRingCountsDepthHits) {
  // Depth 4 (the default): a steady sequential scan keeps several windows
  // live at once, so most hits come from windows issued alongside others —
  // exactly what prefetch_depth_hits counts.
  StringReaderOptions options;
  options.buffer_bytes = 16384;
  options.prefetch = true;
  options.prefetch_depth = 4;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[64];
  uint32_t got = 0;
  for (uint64_t pos = 0; pos + 64 <= data_.size(); pos += 8192) {
    ASSERT_TRUE(reader->Fetch(pos, 64, buf, &got).ok());
  }
  reader.reset();  // fold residual background traffic
  EXPECT_GT(stats_.prefetch_hits, 50u);
  EXPECT_GT(stats_.prefetch_depth_hits, 40u);
  EXPECT_LE(stats_.prefetch_depth_hits, stats_.prefetch_hits);
}

TEST_F(StringReaderTest, PrefetchDepthOneIsDoubleBufferingWithoutDepthHits) {
  StringReaderOptions options;
  options.buffer_bytes = 16384;
  options.prefetch = true;
  options.prefetch_depth = 1;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[64];
  uint32_t got = 0;
  for (uint64_t pos = 0; pos + 64 <= data_.size(); pos += 8192) {
    ASSERT_TRUE(reader->Fetch(pos, 64, buf, &got).ok());
    EXPECT_EQ(std::string(buf, got), data_.substr(pos, 64));
  }
  reader.reset();
  // Still hits (the classic double buffer) but never a depth hit: a single
  // slot is always issued alone.
  EXPECT_GT(stats_.prefetch_hits, 50u);
  EXPECT_EQ(stats_.prefetch_depth_hits, 0u);
}

TEST_F(StringReaderTest, RingMatchesPlainReaderUnderRandomizedUse) {
  // The adversarial sequence of PrefetchingMatchesPlainReaderUnderRandomized
  // Use, at ring depth 4 (that test runs the same body at the default
  // depth): scan restarts, seek-optimized gaps, EOF, interleaved random.
  StringReaderOptions plain_options;
  plain_options.buffer_bytes = 8192;
  plain_options.seek_optimization = true;
  plain_options.skip_threshold_bytes = 16384;
  StringReaderOptions prefetch_options = plain_options;
  prefetch_options.prefetch = true;
  prefetch_options.prefetch_depth = 4;

  IoStats plain_stats;
  auto plain = OpenStringReader(&env_, "/s", plain_options, &plain_stats);
  ASSERT_TRUE(plain.ok());
  auto prefetching = Open(prefetch_options);

  std::mt19937_64 rng(777);
  char a[256], b[256];
  uint64_t pos = 0;
  (*plain)->BeginScan();
  prefetching->BeginScan();
  for (int step = 0; step < 3000; ++step) {
    const int kind = static_cast<int>(rng() % 20);
    if (kind == 0) {
      pos = rng() % data_.size();
      (*plain)->BeginScan(pos);
      prefetching->BeginScan(pos);
      continue;
    }
    if (kind == 1) {
      uint64_t rpos = rng() % (data_.size() + 64);
      uint32_t len = 1 + static_cast<uint32_t>(rng() % 64);
      uint32_t got_a = 0, got_b = 0;
      ASSERT_TRUE((*plain)->RandomFetch(rpos, len, a, &got_a).ok());
      ASSERT_TRUE(prefetching->RandomFetch(rpos, len, b, &got_b).ok());
      ASSERT_EQ(got_a, got_b);
      ASSERT_EQ(std::string(a, got_a), std::string(b, got_b));
      continue;
    }
    uint64_t gap = rng() % 3 == 0 ? rng() % 50000 : rng() % 512;
    pos += gap;
    if (pos > data_.size() + 32) {
      pos = 0;
      (*plain)->BeginScan();
      prefetching->BeginScan();
    }
    uint32_t len = 1 + static_cast<uint32_t>(rng() % 256);
    uint32_t got_a = 0, got_b = 0;
    ASSERT_TRUE((*plain)->Fetch(pos, len, a, &got_a).ok());
    ASSERT_TRUE(prefetching->Fetch(pos, len, b, &got_b).ok());
    ASSERT_EQ(got_a, got_b) << "pos " << pos << " len " << len;
    ASSERT_EQ(std::string(a, got_a), std::string(b, got_b)) << "pos " << pos;
  }
}

TEST_F(StringReaderTest, CacheBackedReaderBillsCacheBytesNotDeviceBytes) {
  TileCacheOptions cache_options;
  cache_options.budget_bytes = 2 << 20;
  cache_options.tile_bytes = 64 << 10;
  auto cache = TileCache::Open(&env_, "/s", cache_options);
  ASSERT_TRUE(cache.ok());

  StringReaderOptions options;
  options.buffer_bytes = 16384;
  options.prefetch = true;
  options.tile_cache = *cache;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[64];
  uint32_t got = 0;
  for (uint64_t pos = 0; pos + 64 <= data_.size(); pos += 4096) {
    ASSERT_TRUE(reader->Fetch(pos, 64, buf, &got).ok());
    ASSERT_EQ(std::string(buf, got), data_.substr(pos, 64));
  }
  reader.reset();
  // The reader's traffic is memory copies out of the cache...
  EXPECT_EQ(stats_.bytes_read, 0u);
  EXPECT_GE(stats_.cache_served_bytes, data_.size());
  // ...and the device transfer happened exactly once, inside the cache.
  TileCache::Snapshot snapshot = (*cache)->stats();
  EXPECT_EQ(snapshot.device_bytes_read, data_.size());
  EXPECT_GT(snapshot.hits, 0u);

  // A second full scan is pure cache residency: zero new device bytes.
  IoStats second_stats;
  StringReaderOptions second_options = options;
  auto second = OpenStringReader(&env_, "/s", second_options, &second_stats);
  ASSERT_TRUE(second.ok());
  (*second)->BeginScan();
  for (uint64_t pos = 0; pos + 64 <= data_.size(); pos += 4096) {
    ASSERT_TRUE((*second)->Fetch(pos, 64, buf, &got).ok());
  }
  second->reset();
  EXPECT_EQ((*cache)->stats().device_bytes_read, data_.size());
}

TEST_F(StringReaderTest, CacheBackedReaderRejectsMismatchedPath) {
  ASSERT_TRUE(env_.WriteFile("/other", "abc").ok());
  TileCacheOptions cache_options;
  cache_options.budget_bytes = 1 << 20;
  auto cache = TileCache::Open(&env_, "/other", cache_options);
  ASSERT_TRUE(cache.ok());
  StringReaderOptions options;
  options.tile_cache = *cache;
  auto reader = OpenStringReader(&env_, "/s", options, &stats_);
  EXPECT_FALSE(reader.ok());
}

TEST_F(StringReaderTest, PrefetchDisabledReaderHasNoPrefetchCounters) {
  auto reader = Open({});
  reader->BeginScan();
  char buf[64];
  uint32_t got = 0;
  for (uint64_t pos = 0; pos < 500000; pos += 8192) {
    ASSERT_TRUE(reader->Fetch(pos, 64, buf, &got).ok());
  }
  EXPECT_EQ(stats_.prefetch_hits, 0u);
  EXPECT_EQ(stats_.prefetch_misses, 0u);
  EXPECT_EQ(stats_.prefetched_bytes, 0u);
}

}  // namespace
}  // namespace era
