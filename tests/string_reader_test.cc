#include "io/string_reader.h"

#include <gtest/gtest.h>

#include <string>

#include "io/mem_env.h"

namespace era {
namespace {

class StringReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_.resize(1 << 20);
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = static_cast<char>('A' + (i % 26));
    }
    ASSERT_TRUE(env_.WriteFile("/s", data_).ok());
  }

  std::unique_ptr<StringReader> Open(const StringReaderOptions& options) {
    auto reader = OpenStringReader(&env_, "/s", options, &stats_);
    EXPECT_TRUE(reader.ok());
    return std::move(*reader);
  }

  MemEnv env_;
  IoStats stats_;
  std::string data_;
};

TEST_F(StringReaderTest, SequentialFetchMatchesContent) {
  StringReaderOptions options;
  options.buffer_bytes = 8192;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[64];
  uint32_t got = 0;
  for (uint64_t pos = 0; pos < 100000; pos += 1000) {
    ASSERT_TRUE(reader->Fetch(pos, 64, buf, &got).ok());
    ASSERT_EQ(got, 64u);
    EXPECT_EQ(std::string(buf, 64), data_.substr(pos, 64));
  }
}

TEST_F(StringReaderTest, BackwardsFetchWithinScanFails) {
  auto reader = Open({});
  reader->BeginScan();
  char buf[8];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(5000, 8, buf, &got).ok());
  EXPECT_FALSE(reader->Fetch(4000, 8, buf, &got).ok());
}

TEST_F(StringReaderTest, NewScanAllowsRewind) {
  auto reader = Open({});
  reader->BeginScan();
  char buf[8];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(5000, 8, buf, &got).ok());
  reader->BeginScan();
  ASSERT_TRUE(reader->Fetch(0, 8, buf, &got).ok());
  EXPECT_EQ(std::string(buf, got), data_.substr(0, 8));
  EXPECT_EQ(stats_.scans_started, 2u);
}

TEST_F(StringReaderTest, FetchClampsAtEof) {
  auto reader = Open({});
  reader->BeginScan(data_.size() - 10);
  char buf[64];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(data_.size() - 10, 64, buf, &got).ok());
  EXPECT_EQ(got, 10u);
  ASSERT_TRUE(reader->Fetch(data_.size() + 5, 64, buf, &got).ok());
  EXPECT_EQ(got, 0u);
}

TEST_F(StringReaderTest, ReadThroughBillsSequentialBytes) {
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  options.seek_optimization = false;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[4];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(0, 4, buf, &got).ok());
  uint64_t before = stats_.bytes_read;
  // Jump far ahead: without seek optimization, the gap is read through.
  ASSERT_TRUE(reader->Fetch(500000, 4, buf, &got).ok());
  EXPECT_GE(stats_.bytes_read - before, 490000u);
  EXPECT_EQ(stats_.bytes_skipped, 0u);
}

TEST_F(StringReaderTest, SeekOptimizationSkipsGap) {
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  options.seek_optimization = true;
  options.skip_threshold_bytes = 64 << 10;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[4];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(0, 4, buf, &got).ok());
  uint64_t read_before = stats_.bytes_read;
  uint64_t seeks_before = stats_.seeks;
  ASSERT_TRUE(reader->Fetch(500000, 4, buf, &got).ok());
  EXPECT_EQ(std::string(buf, 4), data_.substr(500000, 4));
  // Only one buffer worth of data fetched; the gap was skipped with a seek.
  EXPECT_LE(stats_.bytes_read - read_before, options.buffer_bytes);
  EXPECT_EQ(stats_.seeks, seeks_before + 1);
  EXPECT_GT(stats_.bytes_skipped, 400000u);
}

TEST_F(StringReaderTest, SmallGapIsReadThroughEvenWithSeekOpt) {
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  options.seek_optimization = true;
  options.skip_threshold_bytes = 64 << 10;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[4];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(0, 4, buf, &got).ok());
  uint64_t seeks_before = stats_.seeks;
  ASSERT_TRUE(reader->Fetch(10000, 4, buf, &got).ok());  // < threshold
  EXPECT_EQ(stats_.seeks, seeks_before);
  EXPECT_EQ(std::string(buf, 4), data_.substr(10000, 4));
}

TEST_F(StringReaderTest, RandomFetchCountsSeeks) {
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  auto reader = Open(options);
  char buf[16];
  uint32_t got = 0;
  ASSERT_TRUE(reader->RandomFetch(900000, 16, buf, &got).ok());
  EXPECT_EQ(std::string(buf, got), data_.substr(900000, 16));
  uint64_t seeks_after_first = stats_.seeks;
  EXPECT_GE(seeks_after_first, 1u);
  // A second fetch inside the same window is free.
  ASSERT_TRUE(reader->RandomFetch(900100, 16, buf, &got).ok());
  EXPECT_EQ(stats_.seeks, seeks_after_first);
  // Jumping back is another seek.
  ASSERT_TRUE(reader->RandomFetch(100, 16, buf, &got).ok());
  EXPECT_EQ(stats_.seeks, seeks_after_first + 1);
}

TEST_F(StringReaderTest, FetchSpanningBufferBoundary) {
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  auto reader = Open(options);
  reader->BeginScan();
  char buf[256];
  uint32_t got = 0;
  ASSERT_TRUE(reader->Fetch(4000, 256, buf, &got).ok());
  EXPECT_EQ(got, 256u);
  EXPECT_EQ(std::string(buf, 256), data_.substr(4000, 256));
}

TEST_F(StringReaderTest, FetchBatchMatchesContentAndCoalesces) {
  StringReaderOptions options;
  options.buffer_bytes = 64 << 10;
  auto reader = Open(options);
  reader->BeginScan();

  // Adjacent and overlapping windows, the SubTreePrepare request shape.
  char out[8][32];
  std::vector<FetchRequest> requests;
  uint64_t pos = 1000;
  for (int i = 0; i < 8; ++i) {
    requests.push_back({pos, 32, out[i], 0});
    pos += (i % 2 == 0) ? 16 : 32;  // every other request overlaps
  }
  ASSERT_TRUE(reader->FetchBatch(requests).ok());
  for (const FetchRequest& r : requests) {
    ASSERT_EQ(r.got, 32u);
    EXPECT_EQ(std::string(r.out, r.got), data_.substr(r.pos, 32));
  }
  // The whole batch fits in one window residency: one refill, no seeks.
  EXPECT_EQ(stats_.sequential_refills, 1u);
  EXPECT_EQ(stats_.seeks, 0u);
  EXPECT_EQ(stats_.fetch_batches, 1u);
  EXPECT_EQ(stats_.batched_requests, 8u);
}

TEST_F(StringReaderTest, FetchBatchShortReadsAtEof) {
  auto reader = Open({});
  reader->BeginScan();
  char a[64], b[64], c[64];
  std::vector<FetchRequest> requests = {
      {data_.size() - 100, 64, a, 0},  // fully inside
      {data_.size() - 10, 64, b, 0},   // short
      {data_.size() + 5, 64, c, 0},    // past the end
  };
  ASSERT_TRUE(reader->FetchBatch(requests).ok());
  EXPECT_EQ(requests[0].got, 64u);
  EXPECT_EQ(requests[1].got, 10u);
  EXPECT_EQ(std::string(requests[1].out, requests[1].got),
            data_.substr(data_.size() - 10));
  EXPECT_EQ(requests[2].got, 0u);
}

TEST_F(StringReaderTest, FetchBatchRejectsUnsortedStream) {
  auto reader = Open({});
  reader->BeginScan();
  char a[8], b[8];
  std::vector<FetchRequest> requests = {{5000, 8, a, 0}, {4000, 8, b, 0}};
  Status status = reader->FetchBatch(requests);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST_F(StringReaderTest, RandomFetchBatchHitsResidentWindow) {
  StringReaderOptions options;
  options.buffer_bytes = 8192;
  options.random_window_bytes = 4096;
  auto reader = Open(options);
  char a[16], b[16], c[16];
  // First request repositions (one seek); the other two hit the window.
  std::vector<FetchRequest> requests = {
      {500000, 16, a, 0}, {500100, 16, b, 0}, {500050, 16, c, 0}};
  ASSERT_TRUE(reader->RandomFetchBatch(requests).ok());
  for (const FetchRequest& r : requests) {
    ASSERT_EQ(r.got, 16u);
    EXPECT_EQ(std::string(r.out, r.got), data_.substr(r.pos, 16));
  }
  EXPECT_EQ(stats_.seeks, 1u);
  EXPECT_EQ(stats_.fetch_batches, 1u);
  EXPECT_EQ(stats_.batched_requests, 3u);
}

TEST(DiskModelTest, PricesTransferAndSeeks) {
  IoStats stats;
  stats.bytes_read = 100 * 1024 * 1024;  // 1 second at 100 MB/s
  stats.seeks = 125;                     // 1 second at 8 ms each
  DiskModel model;
  EXPECT_NEAR(model.ModeledSeconds(stats), 2.0, 1e-9);
}

}  // namespace
}  // namespace era
