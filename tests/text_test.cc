#include <gtest/gtest.h>

#include "io/mem_env.h"
#include "text/corpus.h"
#include "text/fasta.h"
#include "text/text_generator.h"

namespace era {
namespace {

TEST(TextGeneratorTest, DeterministicInSeed) {
  std::string a = GenerateDna(10000, 42);
  std::string b = GenerateDna(10000, 42);
  std::string c = GenerateDna(10000, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TextGeneratorTest, RespectsLengthAndTerminal) {
  for (uint64_t len : {0ull, 1ull, 100ull, 12345ull}) {
    std::string text = GenerateDna(len, 7);
    EXPECT_EQ(text.size(), len + 1);
    EXPECT_EQ(text.back(), kTerminal);
  }
}

TEST(TextGeneratorTest, OutputsValidateAgainstAlphabet) {
  EXPECT_TRUE(Alphabet::Dna().ValidateText(GenerateDna(20000, 1)).ok());
  EXPECT_TRUE(
      Alphabet::Protein().ValidateText(GenerateProtein(20000, 2)).ok());
  EXPECT_TRUE(
      Alphabet::English().ValidateText(GenerateEnglish(20000, 3)).ok());
}

TEST(TextGeneratorTest, UsesWholeAlphabet) {
  std::string text = GenerateProtein(50000, 11);
  const Alphabet protein = Alphabet::Protein();
  std::vector<int> seen(static_cast<std::size_t>(protein.size()), 0);
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    seen[static_cast<std::size_t>(protein.Code(text[i]))] = 1;
  }
  for (int i = 0; i < protein.size(); ++i) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(i)])
        << "symbol " << protein.Symbol(i) << " never generated";
  }
}

TEST(TextGeneratorTest, RepeatInjectionCreatesLongRepeats) {
  GeneratorOptions with_repeats;
  with_repeats.repeat_rate = 0.05;
  with_repeats.mean_repeat_length = 500;
  GeneratorOptions without;
  without.repeat_rate = 0.0;

  auto longest_repeat = [](const std::string& text) {
    // O(n^2)-ish sampling probe: check a few long substrings for recurrence.
    std::size_t best = 0;
    for (std::size_t start = 0; start + 64 < text.size(); start += 997) {
      for (std::size_t len = 64; start + len < text.size(); len *= 2) {
        if (text.find(text.substr(start, len), start + 1) !=
            std::string::npos) {
          best = std::max(best, len);
        } else {
          break;
        }
      }
    }
    return best;
  };

  std::string repetitive =
      GenerateText(Alphabet::Dna(), 100000, 5, with_repeats);
  std::string plain = GenerateText(Alphabet::Dna(), 100000, 5, without);
  EXPECT_GT(longest_repeat(repetitive), longest_repeat(plain));
}

TEST(FastaTest, RoundTrip) {
  MemEnv env;
  std::string text = GenerateDna(5000, 3);
  ASSERT_TRUE(WriteFasta(&env, "/x.fa", "synthetic chr1", text).ok());
  auto back = ReadFasta(&env, "/x.fa", Alphabet::Dna(),
                        FastaCleanPolicy::kStrict);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, text);
}

TEST(FastaTest, MultiRecordConcatenationAndCleaning) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/m.fa",
                            ">rec1 description\n"
                            "ACGTN\nNNACG\n"
                            ">rec2\n"
                            "ttga\n")
                  .ok());
  auto skip =
      ReadFasta(&env, "/m.fa", Alphabet::Dna(), FastaCleanPolicy::kSkip);
  ASSERT_TRUE(skip.ok());
  EXPECT_EQ(*skip, std::string("ACGTACGTTGA") + kTerminal);

  auto strict =
      ReadFasta(&env, "/m.fa", Alphabet::Dna(), FastaCleanPolicy::kStrict);
  EXPECT_FALSE(strict.ok());
}

TEST(FastaTest, MissingRecordsFail) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/bad.fa", "ACGT\n").ok());
  EXPECT_FALSE(
      ReadFasta(&env, "/bad.fa", Alphabet::Dna(), FastaCleanPolicy::kSkip)
          .ok());
  EXPECT_FALSE(
      ReadFastaRecords(&env, "/bad.fa", Alphabet::Dna(),
                       FastaCleanPolicy::kSkip)
          .ok());
}

TEST(FastaTest, RecordsParseHeadersAndSequencesSeparately) {
  // Multi-record files become (header, sequence) pairs — the document-
  // collection ingestion path — while ReadFasta keeps flattening them.
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/recs.fa",
                            "> chr1 primary assembly \r\n"
                            "ACGT\nACgt\n"
                            ">chr2\n"
                            "ttNNga\n"
                            ">empty-record\n"
                            ">chr3\nG\n")
                  .ok());
  auto records = ReadFastaRecords(&env, "/recs.fa", Alphabet::Dna(),
                                  FastaCleanPolicy::kSkip);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 4u);
  EXPECT_EQ((*records)[0].header, "chr1 primary assembly");
  EXPECT_EQ((*records)[0].sequence, "ACGTACGT");
  EXPECT_EQ((*records)[1].header, "chr2");
  EXPECT_EQ((*records)[1].sequence, "TTGA");
  EXPECT_EQ((*records)[2].header, "empty-record");
  EXPECT_EQ((*records)[2].sequence, "");
  EXPECT_EQ((*records)[3].header, "chr3");
  EXPECT_EQ((*records)[3].sequence, "G");

  // The flattening wrapper concatenates exactly the per-record sequences.
  auto flat =
      ReadFasta(&env, "/recs.fa", Alphabet::Dna(), FastaCleanPolicy::kSkip);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(*flat, std::string("ACGTACGTTTGAG") + kTerminal);

  // Strict cleaning errors propagate through the record path too.
  EXPECT_FALSE(ReadFastaRecords(&env, "/recs.fa", Alphabet::Dna(),
                                FastaCleanPolicy::kStrict)
                   .ok());

  // Sequence bytes before the first header are rejected...
  ASSERT_TRUE(env.WriteFile("/headless.fa", "ACGT\n>chr1\nACGT\n").ok());
  EXPECT_FALSE(ReadFastaRecords(&env, "/headless.fa", Alphabet::Dna(),
                                FastaCleanPolicy::kSkip)
                   .ok());

  // ...but leading whitespace before the first header is tolerated (real
  // FASTA files often start with a blank line).
  ASSERT_TRUE(env.WriteFile("/padded.fa", "\n \t\r\n>chr1\nACGT\n").ok());
  auto padded = ReadFastaRecords(&env, "/padded.fa", Alphabet::Dna(),
                                 FastaCleanPolicy::kStrict);
  ASSERT_TRUE(padded.ok()) << padded.status().ToString();
  ASSERT_EQ(padded->size(), 1u);
  EXPECT_EQ((*padded)[0].sequence, "ACGT");
}

TEST(CorpusTest, MaterializeWritesTerminalAndCaches) {
  MemEnv env;
  auto info = MaterializeCorpus(&env, "/corpus/dna", CorpusKind::kDna, 4096, 1);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->length, 4097u);

  std::string content;
  ASSERT_TRUE(env.ReadFileToString("/corpus/dna", &content).ok());
  EXPECT_EQ(content.size(), 4097u);
  EXPECT_EQ(content.back(), kTerminal);

  // Second call reuses the file (same size, no rewrite needed).
  auto again =
      MaterializeCorpus(&env, "/corpus/dna", CorpusKind::kDna, 4096, 1);
  ASSERT_TRUE(again.ok());
  std::string content2;
  ASSERT_TRUE(env.ReadFileToString("/corpus/dna", &content2).ok());
  EXPECT_EQ(content, content2);
}

TEST(CorpusTest, KindsMapToAlphabets) {
  EXPECT_EQ(AlphabetFor(CorpusKind::kDna).size(), 4);
  EXPECT_EQ(AlphabetFor(CorpusKind::kProtein).size(), 20);
  EXPECT_EQ(AlphabetFor(CorpusKind::kEnglish).size(), 26);
  EXPECT_STREQ(CorpusName(CorpusKind::kDna), "DNA");
}

TEST(CorpusTest, MaterializeTextValidates) {
  MemEnv env;
  EXPECT_FALSE(
      MaterializeText(&env, "/t", Alphabet::Dna(), "ACGT").ok());  // no term
  auto ok = MaterializeText(&env, "/t", Alphabet::Dna(), "ACGT~");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->length, 5u);
}

}  // namespace
}  // namespace era
