// Full-pipeline integration tests on the POSIX filesystem: generate ->
// build (serial/parallel/baselines) -> persist -> reload -> query ->
// validate, at sizes large enough to force many virtual trees.

#include <gtest/gtest.h>

#include <chrono>

#include "era/era_builder.h"
#include "era/parallel_builder.h"
#include "io/env.h"
#include "query/applications.h"
#include "query/query_engine.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"
#include "text/corpus.h"
#include "text/text_generator.h"
#include "wavefront/wavefront.h"

namespace era {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = GetDefaultEnv();
    base_ = ::testing::TempDir() + "era_integration_" +
            std::to_string(
                std::chrono::steady_clock::now().time_since_epoch().count());
    ASSERT_TRUE(env_->CreateDir(base_).ok());
  }

  Env* env_ = nullptr;
  std::string base_;
};

TEST_F(IntegrationTest, EndToEndOnDisk) {
  // 256 KB DNA with a 128 KB budget: decidedly out-of-core.
  std::string text = GenerateDna(256 << 10, 77);
  auto info = MaterializeText(env_, base_ + "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());

  BuildOptions options;
  options.work_dir = base_ + "/index";
  options.memory_budget = 128 << 10;
  EraBuilder builder(options);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.num_groups, 4u)
      << "budget should force several virtual trees";

  // Reload from disk through a fresh handle and validate everything.
  auto loaded = TreeIndex::Load(env_, base_ + "/index");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(ValidateIndex(env_, *loaded, text).ok());
  EXPECT_TRUE(testing::IndexMatchesOracle(env_, *loaded, text));

  // Queries against a naive scan.
  auto engine = QueryEngine::Open(env_, base_ + "/index");
  ASSERT_TRUE(engine.ok());
  for (std::size_t offset : {0u, 1000u, 77777u, 200000u}) {
    std::string pattern = text.substr(offset, 24);
    auto hits = (*engine)->Locate(pattern);
    ASSERT_TRUE(hits.ok());
    std::vector<uint64_t> expected;
    std::size_t pos = text.find(pattern);
    while (pos != std::string::npos) {
      expected.push_back(pos);
      pos = text.find(pattern, pos + 1);
    }
    EXPECT_EQ(*hits, expected) << "offset " << offset;
  }

  // The longest repeated substring agrees with the LCP oracle.
  SaLcp oracle = testing::OracleSaLcp(text);
  auto lrs = LongestRepeatedSubstring(env_, *loaded, text);
  ASSERT_TRUE(lrs.ok());
  EXPECT_EQ(lrs->length,
            *std::max_element(oracle.lcp.begin(), oracle.lcp.end()));
}

TEST_F(IntegrationTest, ParallelAndSerialAgreeOnDisk) {
  std::string text = GenerateProtein(128 << 10, 78);
  auto info =
      MaterializeText(env_, base_ + "/text", Alphabet::Protein(), text);
  ASSERT_TRUE(info.ok());

  BuildOptions serial_options;
  serial_options.work_dir = base_ + "/serial";
  serial_options.memory_budget = 256 << 10;
  EraBuilder serial(serial_options);
  auto serial_result = serial.Build(*info);
  ASSERT_TRUE(serial_result.ok()) << serial_result.status().ToString();

  BuildOptions parallel_options;
  parallel_options.work_dir = base_ + "/parallel";
  parallel_options.memory_budget = 256 << 10;
  // NOTE: per-worker budget = total/workers, so the partition plans differ
  // from the serial build; canonical suffix order must still agree.
  ParallelBuilder parallel(parallel_options, 3);
  auto parallel_result = parallel.Build(*info);
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.status().ToString();

  auto serial_order = testing::GlobalLeafOrder(env_, serial_result->index);
  auto parallel_order =
      testing::GlobalLeafOrder(env_, parallel_result->index);
  ASSERT_TRUE(serial_order.ok());
  ASSERT_TRUE(parallel_order.ok());
  EXPECT_EQ(*serial_order, *parallel_order);
}

TEST_F(IntegrationTest, WaveFrontProducesIdenticalIndexOnDisk) {
  std::string text = GenerateDna(96 << 10, 79);
  auto info = MaterializeText(env_, base_ + "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());

  BuildOptions options;
  options.work_dir = base_ + "/wf";
  options.memory_budget = 192 << 10;
  WaveFrontBuilder builder(options);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(env_, result->index, text));
}

TEST_F(IntegrationTest, EnglishCorpusRoundTrip) {
  std::string text = GenerateEnglish(128 << 10, 80);
  auto info =
      MaterializeText(env_, base_ + "/text", Alphabet::English(), text);
  ASSERT_TRUE(info.ok());

  BuildOptions options;
  options.work_dir = base_ + "/idx";
  options.memory_budget = 192 << 10;
  EraBuilder builder(options);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(env_, result->index, text));

  auto engine = QueryEngine::Open(env_, base_ + "/idx");
  ASSERT_TRUE(engine.ok());
  auto the_count = (*engine)->Count("the");
  ASSERT_TRUE(the_count.ok());
  EXPECT_GT(*the_count, 0u) << "'the' is the most frequent vocabulary word";
}

TEST_F(IntegrationTest, RebuildingIntoSameDirectoryIsClean) {
  std::string text1 = GenerateDna(32 << 10, 81);
  std::string text2 = GenerateDna(48 << 10, 82);
  auto info1 = MaterializeText(env_, base_ + "/t1", Alphabet::Dna(), text1);
  auto info2 = MaterializeText(env_, base_ + "/t2", Alphabet::Dna(), text2);
  ASSERT_TRUE(info1.ok());
  ASSERT_TRUE(info2.ok());

  BuildOptions options;
  options.work_dir = base_ + "/idx";
  options.memory_budget = 96 << 10;
  EraBuilder builder(options);
  ASSERT_TRUE(builder.Build(*info1).ok());
  auto second = builder.Build(*info2);  // overwrite with a different text
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(testing::IndexMatchesOracle(env_, second->index, text2));
}

}  // namespace
}  // namespace era
