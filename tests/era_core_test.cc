// Unit tests for the ERA core pieces: memory layout, range policy, vertical
// partitioning, SubTreePrepare (including the paper's literal traces), and
// BuildSubTree.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "era/build_subtree.h"
#include "era/memory_layout.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "era/vertical_partitioner.h"
#include "io/mem_env.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"

namespace era {
namespace {

// The running example of Figure 2 with '~' as the terminal.
constexpr const char* kPaperText = "TGGTGGTGGTGCGGTGATGGTGC~";

BuildOptions TestOptions(Env* env) {
  BuildOptions options;
  options.env = env;
  options.work_dir = "/work";
  options.memory_budget = 1 << 20;
  options.input_buffer_bytes = 4096;
  return options;
}

TEST(MemoryLayoutTest, AreasSumToBudgetAndFmPositive) {
  BuildOptions options;
  options.work_dir = "/w";
  options.memory_budget = 64 << 20;
  auto layout = PlanMemory(options, 4);
  ASSERT_TRUE(layout.ok());
  EXPECT_LE(layout->total(), options.memory_budget);
  EXPECT_GT(layout->fm, 0u);
  // Tree area is ~60% of what remains after the fixed buffers (Figure 6);
  // the tile-cache carve and the prefetch ring are part of the fixed
  // retrieved-data area.
  uint64_t remaining = options.memory_budget - layout->input_buffer_bytes -
                       layout->read_ahead_bytes - layout->r_buffer_bytes -
                       layout->tile_cache_bytes - layout->trie_bytes;
  EXPECT_NEAR(static_cast<double>(layout->tree_area_bytes),
              0.6 * static_cast<double>(remaining),
              0.01 * static_cast<double>(remaining));
}

TEST(MemoryLayoutTest, TileCacheCarveComesFromRAndPreservesFm) {
  BuildOptions uncached;
  uncached.work_dir = "/w";
  uncached.memory_budget = 64 << 20;
  uncached.tile_cache = false;
  BuildOptions cached = uncached;
  cached.tile_cache = true;
  auto plain = PlanMemory(uncached, 4);
  auto carved = PlanMemory(cached, 4);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(carved.ok());
  EXPECT_EQ(plain->tile_cache_bytes, 0u);
  EXPECT_GT(carved->tile_cache_bytes, 0u);
  // The carve comes out of the retrieved-data area (R/trie slack, shared
  // with the prefetch ring) alone...
  EXPECT_EQ(carved->r_buffer_bytes + carved->trie_bytes +
                carved->tile_cache_bytes + carved->read_ahead_bytes,
            plain->r_buffer_bytes + plain->trie_bytes +
                plain->read_ahead_bytes);
  EXPECT_GE(carved->r_buffer_bytes, 512u << 10);  // elastic-range floor
  EXPECT_GE(carved->trie_bytes, 64u << 10);       // trie floor
  // ...so FM, the tree area, and the processing area — everything the
  // partition plan (and with it the emitted index bytes) depends on — are
  // identical between cached and uncached builds.
  EXPECT_EQ(carved->fm, plain->fm);
  EXPECT_EQ(carved->tree_area_bytes, plain->tree_area_bytes);
  EXPECT_EQ(carved->processing_bytes, plain->processing_bytes);
  EXPECT_EQ(carved->total(), plain->total());
}

TEST(MemoryLayoutTest, ExplicitTileCacheBudgetHonoredOrRejected) {
  BuildOptions options;
  options.work_dir = "/w";
  options.memory_budget = 64 << 20;
  options.tile_cache = true;
  options.tile_cache_budget_bytes = 1 << 20;
  auto layout = PlanMemory(options, 4);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->tile_cache_bytes, uint64_t{1} << 20);

  // A budget that would squeeze R below its floor is a configuration
  // error, not a silent over-commit.
  options.tile_cache_budget_bytes = 1ull << 30;
  auto too_big = PlanMemory(options, 4);
  ASSERT_FALSE(too_big.ok());
  EXPECT_TRUE(too_big.status().IsOutOfBudget());
}

TEST(MemoryLayoutTest, TinyBudgetDisablesTileCacheInsteadOfFailing) {
  BuildOptions options;
  options.work_dir = "/w";
  options.memory_budget = 1 << 20;
  options.tile_cache = true;
  auto layout = PlanMemory(options, 4);
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  // R at this scale is already at its floor; the auto carve backs off to
  // zero (builders then skip cache creation) rather than starving the
  // elastic range.
  EXPECT_EQ(layout->tile_cache_bytes, 0u);
  EXPECT_GT(layout->fm, 0u);
}

TEST(MemoryLayoutTest, FmScalesWithBudget) {
  BuildOptions small;
  small.work_dir = "/w";
  small.memory_budget = 1 << 20;
  BuildOptions large = small;
  large.memory_budget = 64 << 20;
  auto l1 = PlanMemory(small, 4);
  auto l2 = PlanMemory(large, 4);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_GT(l2->fm, 8 * l1->fm);
}

TEST(MemoryLayoutTest, RejectsOversizedExplicitRBuffer) {
  BuildOptions options;
  options.work_dir = "/w";
  options.memory_budget = 1 << 20;
  options.r_buffer_bytes = 2 << 20;  // explicitly larger than the budget
  auto layout = PlanMemory(options, 4);
  EXPECT_FALSE(layout.ok());
  EXPECT_TRUE(layout.status().IsOutOfBudget());
}

TEST(MemoryLayoutTest, TinyBudgetShrinksInputBuffer) {
  // A 64 KB budget still plans: B_S adapts downward instead of starving the
  // tree area.
  BuildOptions options;
  options.work_dir = "/w";
  options.memory_budget = 1 << 16;
  auto layout = PlanMemory(options, 4);
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  EXPECT_LT(layout->input_buffer_bytes, options.input_buffer_bytes);
  EXPECT_GT(layout->fm, 0u);
  EXPECT_LE(layout->total(), options.memory_budget);
}

TEST(MemoryLayoutTest, WaveFrontGetsSmallerFmThanEraForSameBudget) {
  BuildOptions options;
  options.work_dir = "/w";
  options.memory_budget = 32 << 20;
  auto era = PlanMemory(options, 4);
  auto wf = PlanMemoryWaveFront(options, 4);
  ASSERT_TRUE(era.ok());
  ASSERT_TRUE(wf.ok());
  // WaveFront spends ~50% on buffers, so it can host smaller sub-trees:
  // the drawback the paper calls out in Section 3.
  EXPECT_LT(wf->fm, era->fm);
}

TEST(RangePolicyTest, ElasticGrowsAsLeavesResolve) {
  RangePolicy policy = RangePolicy::Elastic(1 << 20, 4, 65536);
  uint32_t r1 = policy.NextRange(1 << 18);  // many active leaves
  uint32_t r2 = policy.NextRange(1 << 10);
  uint32_t r3 = policy.NextRange(4);
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
  EXPECT_EQ(r1, 4u);       // clamped at min
  EXPECT_EQ(r3, 65536u);   // clamped at max
}

TEST(RangePolicyTest, FixedIgnoresActiveCount) {
  RangePolicy policy = RangePolicy::Fixed(32);
  EXPECT_EQ(policy.NextRange(1), 32u);
  EXPECT_EQ(policy.NextRange(1000000), 32u);
  EXPECT_FALSE(policy.elastic());
}

TEST(GroupingTest, FirstFitDecreasingRespectsFm) {
  std::vector<PrefixInfo> prefixes = {
      {"GT", 5}, {"GG", 5}, {"TGG", 4}, {"C", 2},  {"GC", 2},
      {"TGC", 2}, {"A", 1}, {"GA", 1},  {"TGA", 1}};
  auto groups = GroupPrefixes(prefixes, 5, true);
  uint64_t total = 0;
  for (const auto& g : groups) {
    EXPECT_LE(g.total_frequency, 5u);
    uint64_t sum = 0;
    for (const auto& p : g.prefixes) sum += p.frequency;
    EXPECT_EQ(sum, g.total_frequency);
    total += sum;
  }
  EXPECT_EQ(total, 23u);
  // First-fit-decreasing packs tightly: 23 total at FM=5 needs 5 groups.
  EXPECT_EQ(groups.size(), 5u);
}

TEST(GroupingTest, PaperExampleGroupsTggWithTga) {
  // Section 4.1: with FM = 5, TGG (4) and TGA (1) share a group while TGC
  // lands elsewhere.
  std::vector<PrefixInfo> prefixes = {{"TGA", 1}, {"TGC", 2}, {"TGG", 4}};
  auto groups = GroupPrefixes(prefixes, 5, true);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].prefixes[0].prefix, "TGG");
  ASSERT_EQ(groups[0].prefixes.size(), 2u);
  EXPECT_EQ(groups[0].prefixes[1].prefix, "TGA");
  EXPECT_EQ(groups[1].prefixes[0].prefix, "TGC");
}

TEST(GroupingTest, DisabledGroupingMakesSingletons) {
  std::vector<PrefixInfo> prefixes = {{"A", 1}, {"B", 2}, {"C", 3}};
  auto groups = GroupPrefixes(prefixes, 100, false);
  EXPECT_EQ(groups.size(), 3u);
}

class VerticalPartitionTest : public ::testing::Test {
 protected:
  StatusOr<PartitionPlan> Partition(const std::string& text, uint64_t fm,
                                    bool grouping = true) {
    env_ = std::make_unique<MemEnv>();
    auto info = MaterializeText(env_.get(), "/s", Alphabet::Dna(), text);
    if (!info.ok()) return info.status();
    BuildOptions options = TestOptions(env_.get());
    options.group_virtual_trees = grouping;
    return VerticalPartition(*info, options, fm);
  }

  std::unique_ptr<MemEnv> env_;
};

TEST_F(VerticalPartitionTest, PaperExampleFrequencies) {
  auto plan = Partition(kPaperText, 5);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Collect all selected prefixes with frequencies.
  std::map<std::string, uint64_t> freq;
  for (const auto& group : plan->groups) {
    for (const auto& p : group.prefixes) freq[p.prefix] = p.frequency;
  }
  std::map<std::string, uint64_t> expected = {
      {"A", 1},  {"C", 2},  {"GA", 1},  {"GC", 2},  {"GG", 5},
      {"GT", 5}, {"TGA", 1}, {"TGC", 2}, {"TGG", 4}};
  EXPECT_EQ(freq, expected);

  // Terminal-only suffix is a direct trie leaf at position n = 23.
  ASSERT_EQ(plan->terminal_leaves.size(), 1u);
  EXPECT_EQ(plan->terminal_leaves[0].first, "");
  EXPECT_EQ(plan->terminal_leaves[0].second, 23u);

  // Every suffix is covered exactly once: sum of frequencies + leaves.
  uint64_t covered = 1;  // terminal leaf
  for (const auto& [p, f] : freq) covered += f;
  EXPECT_EQ(covered, 24u);
}

TEST_F(VerticalPartitionTest, AllFrequenciesRespectFm) {
  std::string text = testing::RandomText(Alphabet::Dna(), 20000, 3);
  for (uint64_t fm : {50ull, 200ull, 1000ull}) {
    auto plan = Partition(text, fm);
    ASSERT_TRUE(plan.ok());
    uint64_t covered = 0;
    for (const auto& group : plan->groups) {
      EXPECT_LE(group.total_frequency, fm);
      for (const auto& p : group.prefixes) {
        EXPECT_LE(p.frequency, fm);
        EXPECT_GT(p.frequency, 0u);
        covered += p.frequency;
      }
    }
    covered += plan->terminal_leaves.size();
    EXPECT_EQ(covered, text.size()) << "fm=" << fm;
  }
}

TEST_F(VerticalPartitionTest, SplitEmitsTerminalLeafForTailPrefix) {
  // Text ends with "AC" + terminal and "A" is frequent enough to split, so
  // suffix "AC~"... — rather, force a split of a prefix that is a suffix of
  // the body. Use "AAAA...AC" so prefix "A" splits and the tail "C" check
  // fires for prefix "C"? Build a targeted case: body "ACACACAC...AC" with
  // fm small: "AC" repeated; prefix A splits into AA(0), AC(k), AG, AT and
  // the suffix "C~" sits under prefix "C"; the tail occurrence of "AC" ends
  // at the terminal so when "AC" splits further, "AC~" becomes a leaf.
  std::string body;
  for (int i = 0; i < 32; ++i) body += "AC";
  auto plan = Partition(body + "~", 4);
  ASSERT_TRUE(plan.ok());
  // "AC...": frequency 32 > 4, splits repeatedly; eventually the suffix
  // "ACAC..~" tails produce terminal leaves for split prefixes.
  bool found_nonroot_leaf = false;
  for (const auto& [prefix, pos] : plan->terminal_leaves) {
    if (!prefix.empty()) {
      found_nonroot_leaf = true;
      // The leaf must indeed be the suffix prefix+terminal.
      EXPECT_EQ(body.substr(pos), prefix);
    }
  }
  EXPECT_TRUE(found_nonroot_leaf);
  // Coverage still exact.
  uint64_t covered = plan->terminal_leaves.size();
  for (const auto& group : plan->groups) covered += group.total_frequency;
  EXPECT_EQ(covered, body.size() + 1);
}

TEST_F(VerticalPartitionTest, FmOfOneTerminatesOnUnaryText) {
  // fm = 1 forces maximal prefix extension: on A^64 the only accepted
  // sub-tree is A^64 itself (frequency 1) and every shorter suffix A^k~
  // becomes a direct terminal leaf. The worst case is many rounds — it must
  // still terminate with exact coverage.
  std::string body(64, 'A');
  auto plan = Partition(body + "~", 1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  uint64_t covered = plan->terminal_leaves.size();
  for (const auto& group : plan->groups) {
    EXPECT_LE(group.total_frequency, 1u);
    covered += group.total_frequency;
  }
  EXPECT_EQ(covered, 65u);
  EXPECT_EQ(plan->rounds, 64u);
}

// ---------------------------------------------------------------------------
// SubTreePrepare: the paper's worked example, literally (Traces 1-3).
// ---------------------------------------------------------------------------

class PaperTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.WriteFile("/s", kPaperText).ok());
    reader_options_.buffer_bytes = 4096;
    auto reader = OpenStringReader(&env_, "/s", reader_options_, &stats_);
    ASSERT_TRUE(reader.ok());
    reader_ = std::move(*reader);
    group_.prefixes = {{"TG", 7}};
    group_.total_frequency = 7;
  }

  MemEnv env_;
  StringReaderOptions reader_options_;
  IoStats stats_;
  std::unique_ptr<StringReader> reader_;
  VirtualTree group_;
};

TEST_F(PaperTraceTest, TracesMatchThePaper) {
  GroupPreparer preparer(group_, RangePolicy::Fixed(4), reader_.get(),
                         std::strlen(kPaperText));
  std::vector<PrepareSnapshot> snapshots;
  preparer.SetObserver(
      [&](const PrepareSnapshot& s) { snapshots.push_back(s); });
  ASSERT_TRUE(preparer.Run().ok());

  ASSERT_EQ(snapshots.size(), 2u) << "the paper's example takes 2 iterations";

  // ---- After iteration 1 (the paper's Trace 2).
  const auto& t2 = snapshots[0].states[0];
  EXPECT_EQ(snapshots[0].range, 4u);
  EXPECT_EQ(t2.L, (std::vector<uint64_t>{14, 9, 20, 6, 17, 0, 3}));
  EXPECT_EQ(t2.P, (std::vector<uint64_t>{4, 3, 6, 2, 5, 0, 1}));
  EXPECT_EQ(t2.I, (std::vector<int64_t>{5, 6, 3, -1, -1, 4, -1}));
  // R (windows), post-sort: ATGG CGGT C~ GTGC GTGC GTGG GTGG.
  EXPECT_EQ(t2.R,
            (std::vector<std::string>{"ATGG", "CGGT", "C~", "GTGC", "GTGC",
                                      "GTGG", "GTGG"}));
  // B: (A,C,2) (G,~,3) (C,G,2) — — (C,G,5) —
  ASSERT_TRUE(t2.B[1].has_value());
  EXPECT_EQ(*t2.B[1], std::make_tuple('A', 'C', uint64_t{2}));
  ASSERT_TRUE(t2.B[2].has_value());
  EXPECT_EQ(*t2.B[2], std::make_tuple('G', '~', uint64_t{3}));
  ASSERT_TRUE(t2.B[3].has_value());
  EXPECT_EQ(*t2.B[3], std::make_tuple('C', 'G', uint64_t{2}));
  EXPECT_FALSE(t2.B[4].has_value());
  ASSERT_TRUE(t2.B[5].has_value());
  EXPECT_EQ(*t2.B[5], std::make_tuple('C', 'G', uint64_t{5}));
  EXPECT_FALSE(t2.B[6].has_value());
  // Active areas: {3,4} and {5,6}; slots 0-2 resolved.
  EXPECT_EQ(t2.area[0], -1);
  EXPECT_EQ(t2.area[1], -1);
  EXPECT_EQ(t2.area[2], -1);
  EXPECT_EQ(t2.area[3], t2.area[4]);
  EXPECT_EQ(t2.area[5], t2.area[6]);
  EXPECT_NE(t2.area[3], t2.area[5]);
  EXPECT_GT(t2.area[3], 0);

  // ---- After iteration 2 (the paper's Trace 3).
  const auto& t3 = snapshots[1].states[0];
  EXPECT_EQ(t3.L, (std::vector<uint64_t>{14, 9, 20, 6, 17, 3, 0}));
  // Note: the paper's Trace 3 prints P = [4,3,6,2,5,0,1], i.e. it does not
  // permute P in the final iteration even though Line 14 reorders R, P and
  // L together. With P permuted alongside L (as the algorithm specifies),
  // slots 5/6 carry appearance ranks 1/0 after leaves 3 and 0 swap. The
  // done-marking via I[P[i]] touches the same set either way, so the trees
  // are identical; we assert the self-consistent value.
  EXPECT_EQ(t3.P, (std::vector<uint64_t>{4, 3, 6, 2, 5, 1, 0}));
  EXPECT_EQ(t3.I, (std::vector<int64_t>{-1, -1, -1, -1, -1, -1, -1}));
  // Newly fetched windows: GGTG at slot 3, ~ at slot 4, TGCG/TGGT at 5/6.
  EXPECT_EQ(t3.R[3], "GGTG");
  EXPECT_EQ(t3.R[4], "~");
  EXPECT_EQ(t3.R[5], "TGCG");
  EXPECT_EQ(t3.R[6], "TGGT");
  ASSERT_TRUE(t3.B[4].has_value());
  EXPECT_EQ(*t3.B[4], std::make_tuple('G', '~', uint64_t{6}));
  ASSERT_TRUE(t3.B[6].has_value());
  EXPECT_EQ(*t3.B[6], std::make_tuple('C', 'G', uint64_t{8}));

  // ---- Final (L, B): Section 4.2.2's table for T_TG.
  auto& result = preparer.results()[0];
  EXPECT_EQ(result.leaves, (std::vector<uint64_t>{14, 9, 20, 6, 17, 3, 0}));
  std::vector<std::tuple<char, char, uint64_t>> expected_b = {
      {'A', 'C', 2}, {'G', '~', 3}, {'C', 'G', 2},
      {'G', '~', 6}, {'C', 'G', 5}, {'C', 'G', 8}};
  for (std::size_t i = 1; i < result.branches.size(); ++i) {
    ASSERT_TRUE(result.branches[i].defined);
    EXPECT_EQ(result.branches[i].c1, std::get<0>(expected_b[i - 1]));
    EXPECT_EQ(result.branches[i].c2, std::get<1>(expected_b[i - 1]));
    EXPECT_EQ(result.branches[i].offset, std::get<2>(expected_b[i - 1]));
  }
}

TEST_F(PaperTraceTest, BuildSubTreeProducesFigure5Tree) {
  GroupPreparer preparer(group_, RangePolicy::Fixed(4), reader_.get(),
                         std::strlen(kPaperText));
  ASSERT_TRUE(preparer.Run().ok());
  auto tree = BuildSubTree(preparer.results()[0], std::strlen(kPaperText));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  std::string text = kPaperText;
  EXPECT_TRUE(ValidateSubTree(*tree, text, "TG").ok());
  EXPECT_EQ(CountLeaves(*tree), 7u);

  // Canonical form equals the oracle restricted to suffixes starting TG.
  SaLcp oracle = testing::OracleSaLcp(text);
  std::vector<uint64_t> tg_sa;
  std::vector<uint64_t> tg_lcp;
  for (std::size_t i = 0; i < oracle.sa.size(); ++i) {
    if (text.compare(oracle.sa[i], 2, "TG") == 0) {
      if (!tg_sa.empty()) tg_lcp.push_back(oracle.lcp[i - 1]);
      tg_sa.push_back(oracle.sa[i]);
    }
  }
  SaLcp canon = TreeToSaLcp(*tree);
  EXPECT_EQ(canon.sa, tg_sa);
  EXPECT_EQ(canon.lcp, tg_lcp);
}

TEST_F(PaperTraceTest, ElasticRangeGrowsAfterLeavesResolve) {
  // With R = 28 bytes, iteration 1 has 7 active leaves -> range 4; after
  // three leaves resolve, 4 remain -> range 7.
  GroupPreparer preparer(group_, RangePolicy::Elastic(28, 2, 64),
                         reader_.get(), std::strlen(kPaperText));
  std::vector<uint32_t> ranges;
  preparer.SetObserver(
      [&](const PrepareSnapshot& s) { ranges.push_back(s.range); });
  ASSERT_TRUE(preparer.Run().ok());
  ASSERT_GE(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], 4u);
  EXPECT_EQ(ranges[1], 7u);
}

// ---------------------------------------------------------------------------
// BuildSubTree unit cases.
// ---------------------------------------------------------------------------

TEST(BuildSubTreeTest, SingleLeaf) {
  PreparedSubTree prepared;
  prepared.prefix = "G";
  prepared.leaves = {5};
  prepared.branches.resize(1);
  auto tree = BuildSubTree(prepared, 10);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 2u);
  EXPECT_EQ(tree->node(1).leaf_id, 5u);
  EXPECT_EQ(tree->node(1).edge_len, 5u);  // suffix of length 10-5
}

TEST(BuildSubTreeTest, EmptyFails) {
  PreparedSubTree prepared;
  auto tree = BuildSubTree(prepared, 10);
  EXPECT_FALSE(tree.ok());
}

TEST(BuildSubTreeTest, UndefinedBranchFails) {
  PreparedSubTree prepared;
  prepared.prefix = "A";
  prepared.leaves = {1, 2};
  prepared.branches.resize(2);  // branches[1] undefined
  auto tree = BuildSubTree(prepared, 10);
  EXPECT_FALSE(tree.ok());
  EXPECT_TRUE(tree.status().IsInternal());
}

}  // namespace
}  // namespace era
