#include "common/status.h"

#include <gtest/gtest.h>

namespace era {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfBudget("x").IsOutOfBudget());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_FALSE(Status::IOError("x").ok());
}

TEST(StatusTest, ServingCodesAreDistinct) {
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsCancelled());
  EXPECT_FALSE(Status::Cancelled("x").IsResourceExhausted());
  EXPECT_FALSE(Status::ResourceExhausted("x").IsDeadlineExceeded());
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "Cancelled: stop");
  EXPECT_EQ(Status::ResourceExhausted("full").ToString(),
            "ResourceExhausted: full");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::IOError("open failed");
  EXPECT_EQ(s.ToString(), "IOError: open failed");
  EXPECT_EQ(s.message(), "open failed");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    ERA_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    ERA_RETURN_NOT_OK(succeeds());
    return Status::Internal("reached end");
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> StatusOr<int> {
    if (ok) return 7;
    return Status::IOError("no");
  };
  auto consume = [&](bool ok) -> Status {
    ERA_ASSIGN_OR_RETURN(int x, produce(ok));
    EXPECT_EQ(x, 7);
    return Status::OK();
  };
  EXPECT_TRUE(consume(true).ok());
  EXPECT_TRUE(consume(false).IsIOError());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(9));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 9);
}

}  // namespace
}  // namespace era
