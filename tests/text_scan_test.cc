// Aho-Corasick matcher, CRC32, and options plumbing.

#include "text/aho_corasick.h"

#include <gtest/gtest.h>

#include <map>

#include "common/crc32.h"
#include "common/options.h"
#include "io/mem_env.h"
#include "tests/test_util.h"

namespace era {
namespace {

/// Brute-force pattern match oracle.
std::vector<std::pair<int32_t, uint64_t>> NaiveMatches(
    const std::string& text, const std::vector<std::string>& patterns) {
  std::vector<std::pair<int32_t, uint64_t>> out;
  for (std::size_t id = 0; id < patterns.size(); ++id) {
    std::size_t pos = text.find(patterns[id]);
    while (pos != std::string::npos) {
      out.emplace_back(static_cast<int32_t>(id), pos);
      pos = text.find(patterns[id], pos + 1);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  return out;
}

std::vector<std::pair<int32_t, uint64_t>> AcMatches(
    const std::string& text, const std::vector<std::string>& patterns) {
  auto ac = AhoCorasick::Build(patterns);
  EXPECT_TRUE(ac.ok());
  std::vector<std::pair<int32_t, uint64_t>> out;
  ac->Reset();
  for (std::size_t i = 0; i < text.size(); ++i) {
    ac->Step(text[i], i,
             [&](int32_t id, uint64_t pos) { out.emplace_back(id, pos); });
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  return out;
}

TEST(AhoCorasickTest, SimplePatterns) {
  std::string text = "ABCABCDABX";
  std::vector<std::string> patterns = {"ABC", "BCD", "X"};
  EXPECT_EQ(AcMatches(text, patterns), NaiveMatches(text, patterns));
}

TEST(AhoCorasickTest, OverlappingAndNestedPatterns) {
  std::string text = "AAAAAA";
  std::vector<std::string> patterns = {"A", "AA", "AAA"};
  EXPECT_EQ(AcMatches(text, patterns), NaiveMatches(text, patterns));
}

TEST(AhoCorasickTest, PatternIsSuffixOfAnother) {
  std::string text = "GTGCGTGG";
  std::vector<std::string> patterns = {"GTG", "TG", "G"};
  EXPECT_EQ(AcMatches(text, patterns), NaiveMatches(text, patterns));
}

TEST(AhoCorasickTest, DuplicatePatternsBothFire) {
  std::string text = "XYXY";
  std::vector<std::string> patterns = {"XY", "XY"};
  auto matches = AcMatches(text, patterns);
  EXPECT_EQ(matches.size(), 4u);  // 2 occurrences x 2 pattern ids
}

TEST(AhoCorasickTest, EmptyPatternRejected) {
  EXPECT_FALSE(AhoCorasick::Build({"A", ""}).ok());
}

TEST(AhoCorasickTest, RandomTextsMatchOracle) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    std::string text = testing::RandomText(Alphabet::Dna(), 5000, seed);
    std::vector<std::string> patterns = {"A",    "ACG", "TTT",
                                         "GTGC", "CATG", "GGGGG"};
    EXPECT_EQ(AcMatches(text, patterns), NaiveMatches(text, patterns))
        << "seed " << seed;
  }
}

TEST(AhoCorasickTest, ScanAllStreamsWholeFile) {
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 200000, 9);
  ASSERT_TRUE(env.WriteFile("/s", text).ok());
  std::vector<std::string> patterns = {"ACGT", "TTAA"};
  auto ac = AhoCorasick::Build(patterns);
  ASSERT_TRUE(ac.ok());
  IoStats stats;
  auto reader = OpenStringReader(&env, "/s", {}, &stats);
  ASSERT_TRUE(reader.ok());
  std::vector<std::pair<int32_t, uint64_t>> matches;
  ASSERT_TRUE(ac->ScanAll(reader->get(), [&](int32_t id, uint64_t pos) {
                  matches.emplace_back(id, pos);
                }).ok());
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  EXPECT_EQ(matches, NaiveMatches(text, patterns));
  EXPECT_GE(stats.bytes_read, text.size());
  EXPECT_EQ(stats.scans_started, 1u);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyAndChaining) {
  EXPECT_EQ(Crc32("", 0), 0u);
  // Chained CRC over two halves differs from concatenated only if seeded
  // correctly; verify chaining equals one-shot.
  std::string data = "the quick brown fox";
  uint32_t one_shot = Crc32(data.data(), data.size());
  uint32_t chained = Crc32(data.data() + 5, data.size() - 5,
                           Crc32(data.data(), 5));
  EXPECT_EQ(one_shot, chained);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = testing::RandomText(Alphabet::Dna(), 1000, 3);
  uint32_t crc = Crc32(data.data(), data.size());
  data[500] = static_cast<char>(data[500] ^ 1);
  EXPECT_NE(Crc32(data.data(), data.size()), crc);
}

TEST(OptionsTest, ValidationCatchesBadConfigs) {
  BuildOptions options;
  options.work_dir = "/w";
  EXPECT_TRUE(ValidateBuildOptions(options).ok());

  BuildOptions no_dir = options;
  no_dir.work_dir = "";
  EXPECT_FALSE(ValidateBuildOptions(no_dir).ok());

  BuildOptions tiny = options;
  tiny.memory_budget = 1024;
  EXPECT_FALSE(ValidateBuildOptions(tiny).ok());

  BuildOptions bad_range = options;
  bad_range.min_range = 100;
  bad_range.max_range = 10;
  EXPECT_FALSE(ValidateBuildOptions(bad_range).ok());

  BuildOptions bad_fixed = options;
  bad_fixed.range_policy = RangePolicyKind::kFixed;
  bad_fixed.fixed_range = 0;
  EXPECT_FALSE(ValidateBuildOptions(bad_fixed).ok());

  BuildOptions small_input = options;
  small_input.input_buffer_bytes = 100;
  EXPECT_FALSE(ValidateBuildOptions(small_input).ok());
}

TEST(OptionsTest, RBufferAutoSizing) {
  BuildOptions options;
  options.work_dir = "/w";
  options.memory_budget = 64 << 20;
  // DNA-sized alphabets get a smaller R than protein-sized ones when the
  // auto rule hits the clamps.
  options.memory_budget = 1 << 20;
  uint64_t dna = ResolveRBufferBytes(options, 4);
  uint64_t protein = ResolveRBufferBytes(options, 20);
  EXPECT_LE(dna, protein);
  // Explicit value wins.
  options.r_buffer_bytes = 12345;
  EXPECT_EQ(ResolveRBufferBytes(options, 4), 12345u);
}

}  // namespace
}  // namespace era
