#include "alphabet/alphabet.h"

#include <gtest/gtest.h>

#include "alphabet/encoded_string.h"
#include "tests/test_util.h"

namespace era {
namespace {

TEST(AlphabetTest, DnaBasics) {
  Alphabet dna = Alphabet::Dna();
  EXPECT_EQ(dna.size(), 4);
  EXPECT_EQ(dna.bits_per_symbol(), 2);
  EXPECT_EQ(dna.Code('A'), 0);
  EXPECT_EQ(dna.Code('C'), 1);
  EXPECT_EQ(dna.Code('G'), 2);
  EXPECT_EQ(dna.Code('T'), 3);
  EXPECT_EQ(dna.Code(kTerminal), 4);  // terminal sorts last
  EXPECT_EQ(dna.Code('X'), -1);
  EXPECT_TRUE(dna.Contains('G'));
  EXPECT_FALSE(dna.Contains(kTerminal));
}

TEST(AlphabetTest, ProteinAndEnglishSizes) {
  EXPECT_EQ(Alphabet::Protein().size(), 20);
  EXPECT_EQ(Alphabet::Protein().bits_per_symbol(), 5);
  EXPECT_EQ(Alphabet::English().size(), 26);
  EXPECT_EQ(Alphabet::English().bits_per_symbol(), 5);
}

TEST(AlphabetTest, SymbolCodeRoundTrip) {
  for (const Alphabet& a :
       {Alphabet::Dna(), Alphabet::Protein(), Alphabet::English()}) {
    for (int code = 0; code <= a.size(); ++code) {
      EXPECT_EQ(a.Code(a.Symbol(code)), code);
    }
  }
}

TEST(AlphabetTest, TerminalSortsAfterAllSymbols) {
  for (const Alphabet& a :
       {Alphabet::Dna(), Alphabet::Protein(), Alphabet::English()}) {
    for (char c : a.symbols()) {
      EXPECT_LT(c, a.terminal())
          << "terminal must be the largest byte (paper's $-last ordering)";
    }
  }
}

TEST(AlphabetTest, CreateRejectsBadInput) {
  EXPECT_FALSE(Alphabet::Create("").ok());
  EXPECT_FALSE(Alphabet::Create("CA").ok());    // not ascending
  EXPECT_FALSE(Alphabet::Create("AA").ok());    // duplicate
  EXPECT_FALSE(Alphabet::Create("A~").ok());    // >= terminal
  EXPECT_TRUE(Alphabet::Create("xyz").ok());
}

TEST(AlphabetTest, ValidateText) {
  Alphabet dna = Alphabet::Dna();
  EXPECT_TRUE(dna.ValidateText("ACGT~").ok());
  EXPECT_FALSE(dna.ValidateText("ACGT").ok());   // no terminal
  EXPECT_FALSE(dna.ValidateText("ACXT~").ok());  // foreign symbol
  EXPECT_FALSE(dna.ValidateText("").ok());
  EXPECT_TRUE(dna.ValidateText("~").ok());  // empty body is legal
}

struct EncodedStringCase {
  const char* name;
  Alphabet alphabet;
  std::size_t length;
  uint64_t seed;
};

class EncodedStringRoundTrip
    : public ::testing::TestWithParam<EncodedStringCase> {};

TEST_P(EncodedStringRoundTrip, AtMatchesOriginal) {
  const auto& param = GetParam();
  std::string text =
      testing::RandomText(param.alphabet, param.length, param.seed);
  auto encoded = EncodedString::Encode(param.alphabet, text);
  ASSERT_TRUE(encoded.ok());
  ASSERT_EQ(encoded->size(), text.size());
  for (uint64_t i = 0; i < text.size(); ++i) {
    ASSERT_EQ(encoded->At(i), text[i]) << "position " << i;
  }
}

TEST_P(EncodedStringRoundTrip, ExtractMatchesSubstr) {
  const auto& param = GetParam();
  std::string text =
      testing::RandomText(param.alphabet, param.length, param.seed + 1);
  auto encoded = EncodedString::Encode(param.alphabet, text);
  ASSERT_TRUE(encoded.ok());
  char buf[64];
  for (uint64_t pos = 0; pos < text.size(); pos += 37) {
    uint32_t got = encoded->Extract(pos, 64, buf);
    EXPECT_EQ(std::string(buf, got), text.substr(pos, 64));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Alphabets, EncodedStringRoundTrip,
    ::testing::Values(
        EncodedStringCase{"dna_small", Alphabet::Dna(), 100, 1},
        EncodedStringCase{"dna_large", Alphabet::Dna(), 10000, 2},
        EncodedStringCase{"protein", Alphabet::Protein(), 5000, 3},
        EncodedStringCase{"english", Alphabet::English(), 5000, 4},
        EncodedStringCase{"empty_body", Alphabet::Dna(), 0, 5},
        EncodedStringCase{"one_symbol", Alphabet::Dna(), 1, 6}),
    [](const auto& info) { return info.param.name; });

TEST(EncodedStringTest, DnaUsesTwoBitsPerSymbol) {
  std::string text = testing::RandomText(Alphabet::Dna(), 64000, 9);
  auto encoded = EncodedString::Encode(Alphabet::Dna(), text);
  ASSERT_TRUE(encoded.ok());
  // 64000 symbols at 2 bits = 16000 bytes (+ one spill word + rounding).
  EXPECT_LE(encoded->MemoryBytes(), 16100u);
}

TEST(EncodedStringTest, RejectsInvalidText) {
  EXPECT_FALSE(EncodedString::Encode(Alphabet::Dna(), "ACGT").ok());
  EXPECT_FALSE(EncodedString::Encode(Alphabet::Dna(), "AXA~").ok());
}

}  // namespace
}  // namespace era
