#include "ukkonen/ukkonen.h"

#include <gtest/gtest.h>

#include "suffixtree/canonical.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"

namespace era {
namespace {

TEST(UkkonenTest, RejectsBadInput) {
  EXPECT_FALSE(BuildUkkonenTree("ACGT").ok());      // no terminal
  EXPECT_FALSE(BuildUkkonenTree("AC~GT~").ok());    // terminal in body
  EXPECT_FALSE(BuildUkkonenTree("").ok());
}

TEST(UkkonenTest, TerminalOnly) {
  auto tree = BuildUkkonenTree("~");
  ASSERT_TRUE(tree.ok());
  SaLcp canon = TreeToSaLcp(*tree);
  EXPECT_EQ(canon.sa, (std::vector<uint64_t>{0}));
  EXPECT_TRUE(canon.lcp.empty());
}

TEST(UkkonenTest, BananaExample) {
  // Figure 1 of the paper, adapted to our terminal byte.
  std::string text = "banana~";
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  SaLcp canon = TreeToSaLcp(*tree);
  EXPECT_EQ(canon.sa, (std::vector<uint64_t>{1, 3, 5, 0, 2, 4, 6}));
  // LCPs: anana~/ana~ = 3, ana~/a~ = 1, a~/banana~ = 0, banana~/nana~ = 0,
  // nana~/na~ = 2, na~/~ = 0.
  EXPECT_EQ(canon.lcp, (std::vector<uint64_t>{3, 1, 0, 0, 2, 0}));
}

TEST(UkkonenTest, PaperExampleString) {
  // The running example of Figure 2.
  std::string text = "TGGTGGTGGTGCGGTGATGGTGC~";
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  SaLcp canon = TreeToSaLcp(*tree);
  EXPECT_EQ(canon, testing::OracleSaLcp(text));
  // Leaf count: one per suffix.
  EXPECT_EQ(CountLeaves(*tree), text.size());
  // Table 1 of the paper: the suffixes with S-prefix TG, in lexicographic
  // order, sit at offsets 14, 9, 20, 6, 17, 3, 0 (Trace 3's final L).
  std::vector<uint64_t> tg_leaves;
  for (uint64_t pos : canon.sa) {
    if (text.compare(pos, 2, "TG") == 0) tg_leaves.push_back(pos);
  }
  EXPECT_EQ(tg_leaves, (std::vector<uint64_t>{14, 9, 20, 6, 17, 3, 0}));
}

TEST(UkkonenTest, ValidatorAcceptsFullTree) {
  std::string text = testing::RandomText(Alphabet::Dna(), 500, 77);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(ValidateSubTree(*tree, text, "").ok());
}

struct UkkCase {
  std::string name;
  Alphabet alphabet;
  std::size_t length;
  uint64_t seed;
  bool repetitive;
};

class UkkonenMatchesOracle : public ::testing::TestWithParam<UkkCase> {};

TEST_P(UkkonenMatchesOracle, CanonicalFormAgrees) {
  const auto& param = GetParam();
  std::string text =
      param.repetitive
          ? testing::RepetitiveText(param.alphabet, param.length, param.seed)
          : testing::RandomText(param.alphabet, param.length, param.seed);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(TreeToSaLcp(*tree), testing::OracleSaLcp(text));
  EXPECT_EQ(CountLeaves(*tree), text.size());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, UkkonenMatchesOracle,
    ::testing::Values(
        UkkCase{"dna_tiny", Alphabet::Dna(), 10, 1, false},
        UkkCase{"dna_small", Alphabet::Dna(), 200, 2, false},
        UkkCase{"dna_medium", Alphabet::Dna(), 5000, 3, false},
        UkkCase{"dna_repetitive", Alphabet::Dna(), 3000, 4, true},
        UkkCase{"protein", Alphabet::Protein(), 3000, 5, false},
        UkkCase{"english", Alphabet::English(), 3000, 6, false},
        UkkCase{"binary", *Alphabet::Create("ab"), 3000, 7, false},
        UkkCase{"binary_repetitive", *Alphabet::Create("ab"), 3000, 8, true},
        UkkCase{"unary", *Alphabet::Create("a"), 200, 9, false}),
    [](const auto& info) { return info.param.name; });

TEST(UkkonenTest, InternalNodeCountBounded) {
  // #internal nodes <= #leaves (paper, Section 4.1: equal in their model).
  std::string text = testing::RandomText(Alphabet::Dna(), 2000, 13);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  uint64_t leaves = CountLeaves(*tree);
  uint64_t internal = tree->size() - leaves;
  EXPECT_LE(internal, leaves);
}

}  // namespace
}  // namespace era
