// Shared helpers for the test suite.

#ifndef ERA_TESTS_TEST_UTIL_H_
#define ERA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "alphabet/alphabet.h"
#include "io/env.h"
#include "sa/lcp.h"
#include "sa/sais.h"
#include "suffixtree/canonical.h"
#include "suffixtree/tree_index.h"
#include "suffixtree/trie.h"

namespace era {
namespace testing {

/// Uniform random string over `alphabet` of `body_len` symbols, terminal
/// appended. Deterministic in (alphabet, body_len, seed).
inline std::string RandomText(const Alphabet& alphabet, std::size_t body_len,
                              uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(0, alphabet.size() - 1);
  std::string text;
  text.reserve(body_len + 1);
  for (std::size_t i = 0; i < body_len; ++i) {
    text.push_back(alphabet.Symbol(dist(rng)));
  }
  text.push_back(alphabet.terminal());
  return text;
}

/// Highly repetitive random text (exercises deep trees / long LCPs).
inline std::string RepetitiveText(const Alphabet& alphabet,
                                  std::size_t body_len, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(0, alphabet.size() - 1);
  std::string unit;
  std::size_t unit_len = 3 + seed % 7;
  for (std::size_t i = 0; i < unit_len; ++i) {
    unit.push_back(alphabet.Symbol(dist(rng)));
  }
  std::string text;
  while (text.size() < body_len) {
    text += unit;
    if (rng() % 4 == 0 && !text.empty()) {
      text.back() = alphabet.Symbol(dist(rng));  // occasional mutation
    }
  }
  text.resize(body_len);
  text.push_back(alphabet.terminal());
  return text;
}

/// Ground-truth (SA, LCP-between-adjacent) via SA-IS + Kasai.
inline SaLcp OracleSaLcp(const std::string& text) {
  SaLcp out;
  out.sa = BuildSuffixArray(text);
  auto lcp = BuildLcpArray(text, out.sa);
  out.lcp.assign(lcp.begin() + 1, lcp.end());
  return out;
}

/// Global lexicographic leaf order of an index (trie-interleaved sub-tree
/// leaves plus direct terminal leaves). Must equal the oracle suffix array.
inline StatusOr<std::vector<uint64_t>> GlobalLeafOrder(Env* env,
                                                       const TreeIndex& index) {
  std::vector<PrefixTrie::Entry> entries;
  index.trie().CollectEntries(0, &entries);
  std::vector<uint64_t> order;
  for (const auto& entry : entries) {
    if (entry.subtree_id >= 0) {
      ERA_ASSIGN_OR_RETURN(
          auto tree, index.OpenSubTree(
                         env, static_cast<uint32_t>(entry.subtree_id),
                         nullptr));
      SaLcp canon = TreeToSaLcp(*tree);
      order.insert(order.end(), canon.sa.begin(), canon.sa.end());
    } else {
      order.push_back(entry.leaf_position);
    }
  }
  return order;
}

/// Full equivalence check of an index against the SA-IS oracle: global leaf
/// order and per-sub-tree LCP structure.
inline ::testing::AssertionResult IndexMatchesOracle(Env* env,
                                                     const TreeIndex& index,
                                                     const std::string& text) {
  SaLcp oracle = OracleSaLcp(text);
  auto order = GlobalLeafOrder(env, index);
  if (!order.ok()) {
    return ::testing::AssertionFailure()
           << "GlobalLeafOrder failed: " << order.status().ToString();
  }
  if (*order != oracle.sa) {
    return ::testing::AssertionFailure()
           << "global leaf order differs from the oracle suffix array "
           << "(sizes " << order->size() << " vs " << oracle.sa.size() << ")";
  }
  // Each sub-tree covers a contiguous SA range, so its internal LCPs must
  // equal the oracle's LCPs for adjacent global ranks.
  std::size_t rank = 0;
  std::vector<PrefixTrie::Entry> entries;
  index.trie().CollectEntries(0, &entries);
  for (const auto& entry : entries) {
    if (entry.subtree_id < 0) {
      ++rank;
      continue;
    }
    auto tree = index.OpenSubTree(
        env, static_cast<uint32_t>(entry.subtree_id), nullptr);
    if (!tree.ok()) {
      return ::testing::AssertionFailure()
             << "OpenSubTree: " << tree.status().ToString();
    }
    SaLcp canon = TreeToSaLcp(**tree);
    for (std::size_t i = 0; i < canon.lcp.size(); ++i) {
      uint64_t expected = oracle.lcp[rank + i];  // bond (rank+i, rank+i+1)
      if (canon.lcp[i] != expected) {
        return ::testing::AssertionFailure()
               << "sub-tree " << entry.subtree_id << " lcp[" << i << "] = "
               << canon.lcp[i] << ", oracle says " << expected;
      }
    }
    rank += canon.sa.size();
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing
}  // namespace era

#endif  // ERA_TESTS_TEST_UTIL_H_
