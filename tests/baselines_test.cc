// Correctness of the competitor implementations (WaveFront, B2ST, TRELLIS)
// against the SA-IS oracle, plus their paper-documented characteristics.

#include <gtest/gtest.h>

#include "b2st/b2st.h"
#include "era/build_subtree.h"
#include "sa/lcp.h"
#include "io/mem_env.h"
#include "suffixtree/serializer.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"
#include "trellis/trellis.h"
#include "ukkonen/ukkonen.h"
#include "wavefront/wavefront.h"

namespace era {
namespace {

struct BaselineCase {
  std::string name;
  Alphabet alphabet;
  std::size_t length;
  uint64_t seed;
  bool repetitive = false;
  uint64_t memory_budget = 1 << 20;
};

BuildOptions MakeOptions(Env* env, const BaselineCase& c,
                         const std::string& dir) {
  BuildOptions options;
  options.env = env;
  options.work_dir = dir;
  options.memory_budget = c.memory_budget;
  options.input_buffer_bytes = 4096;
  return options;
}

class WaveFrontEndToEnd : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(WaveFrontEndToEnd, MatchesOracle) {
  const auto& c = GetParam();
  MemEnv env;
  std::string text =
      c.repetitive ? testing::RepetitiveText(c.alphabet, c.length, c.seed)
                   : testing::RandomText(c.alphabet, c.length, c.seed);
  auto info = MaterializeText(&env, "/text", c.alphabet, text);
  ASSERT_TRUE(info.ok());

  WaveFrontBuilder builder(MakeOptions(&env, c, "/wf"));
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(&env, result->index, text));
  EXPECT_TRUE(ValidateIndex(&env, result->index, text).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaveFrontEndToEnd,
    ::testing::Values(
        BaselineCase{"dna", Alphabet::Dna(), 3000, 1},
        BaselineCase{"dna_repetitive", Alphabet::Dna(), 3000, 2, true},
        BaselineCase{"protein", Alphabet::Protein(), 3000, 3},
        BaselineCase{"english", Alphabet::English(), 3000, 4},
        BaselineCase{"dna_small_budget", Alphabet::Dna(), 15000, 5, false,
                     128 << 10}),
    [](const auto& info) { return info.param.name; });

TEST(WaveFrontTest, OneScanPerSubTree) {
  // No virtual trees: the occurrence scans alone equal the sub-tree count
  // (ERA's grouping is exactly what removes this overhead).
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 30000, 9);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  BaselineCase c{"x", Alphabet::Dna(), 0, 0, false, 256 << 10};
  WaveFrontBuilder builder(MakeOptions(&env, c, "/wf"));
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->stats.io.scans_started, result->stats.num_subtrees);
  EXPECT_GT(result->stats.num_subtrees, 1u);
}

class B2stEndToEnd : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(B2stEndToEnd, ForestMatchesOracle) {
  const auto& c = GetParam();
  MemEnv env;
  std::string text =
      c.repetitive ? testing::RepetitiveText(c.alphabet, c.length, c.seed)
                   : testing::RandomText(c.alphabet, c.length, c.seed);
  auto info = MaterializeText(&env, "/text", c.alphabet, text);
  ASSERT_TRUE(info.ok());

  B2stBuilder builder(MakeOptions(&env, c, "/b2st"));
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Concatenated forest = oracle suffix array; per-tree LCPs match.
  SaLcp oracle = testing::OracleSaLcp(text);
  std::vector<uint64_t> global_sa;
  std::size_t rank = 0;
  for (const std::string& file : result->subtree_files) {
    TreeBuffer tree;
    ASSERT_TRUE(
        ReadSubTree(&env, result->work_dir + "/" + file, &tree, nullptr,
                    nullptr)
            .ok());
    SaLcp canon = TreeToSaLcp(tree);
    for (std::size_t i = 0; i < canon.lcp.size(); ++i) {
      ASSERT_EQ(canon.lcp[i], oracle.lcp[rank + i]) << "file " << file;
    }
    rank += canon.sa.size();
    global_sa.insert(global_sa.end(), canon.sa.begin(), canon.sa.end());
  }
  EXPECT_EQ(global_sa, oracle.sa);

  // Temporaries were billed: B2ST writes partition suffix arrays (8 bytes
  // per suffix) before the merge — the "large temporary results" the paper
  // criticizes.
  EXPECT_GE(result->stats.io.bytes_written, text.size() * sizeof(uint64_t));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, B2stEndToEnd,
    ::testing::Values(
        BaselineCase{"dna", Alphabet::Dna(), 3000, 11},
        BaselineCase{"dna_repetitive", Alphabet::Dna(), 3000, 12, true},
        BaselineCase{"protein", Alphabet::Protein(), 3000, 13},
        BaselineCase{"many_partitions", Alphabet::Dna(), 50000, 14, false,
                     256 << 10},
        BaselineCase{"single_partition", Alphabet::Dna(), 1000, 15, false,
                     32 << 20}),
    [](const auto& info) { return info.param.name; });

class TrellisEndToEnd : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(TrellisEndToEnd, MatchesOracle) {
  const auto& c = GetParam();
  MemEnv env;
  std::string text =
      c.repetitive ? testing::RepetitiveText(c.alphabet, c.length, c.seed)
                   : testing::RandomText(c.alphabet, c.length, c.seed);
  auto info = MaterializeText(&env, "/text", c.alphabet, text);
  ASSERT_TRUE(info.ok());

  TrellisBuilder builder(MakeOptions(&env, c, "/trellis"));
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(&env, result->index, text));
  EXPECT_TRUE(ValidateIndex(&env, result->index, text).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrellisEndToEnd,
    ::testing::Values(
        BaselineCase{"dna", Alphabet::Dna(), 3000, 21},
        BaselineCase{"dna_repetitive", Alphabet::Dna(), 3000, 22, true},
        BaselineCase{"protein", Alphabet::Protein(), 2000, 23},
        BaselineCase{"multi_segment", Alphabet::Dna(), 30000, 24, false,
                     512 << 10}),
    [](const auto& info) { return info.param.name; });

TEST(TrellisTest, RefusesWhenStringExceedsMemory) {
  // The paper's Figure 10(a): TRELLIS plots only start once S fits in RAM.
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Protein(), 400000, 25);
  auto info = MaterializeText(&env, "/text", Alphabet::Protein(), text);
  ASSERT_TRUE(info.ok());
  BaselineCase c{"too_big", Alphabet::Protein(), 0, 0, false, 256 << 10};
  TrellisBuilder builder(MakeOptions(&env, c, "/trellis"));
  auto result = builder.Build(*info);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotSupported()) << result.status().ToString();
}

TEST(TrellisMergeTest, MergesDisjointLeafSets) {
  // Split the suffixes of one string across two trees by parity, merge,
  // and compare with the whole-tree oracle.
  std::string text = testing::RandomText(Alphabet::Dna(), 400, 31);
  SaLcp oracle = testing::OracleSaLcp(text);

  auto build_subset = [&](int parity) {
    PreparedSubTree prepared;
    prepared.prefix = "";
    bool first = true;
    uint64_t prev = 0;
    for (uint64_t pos : oracle.sa) {
      if (static_cast<int>(pos % 2) != parity) continue;
      if (first) {
        prepared.branches.push_back({0, 0, 0, true});
        first = false;
      } else {
        BranchInfo branch;
        branch.offset = LcpOfSuffixes(text, prev, pos);
        branch.defined = true;
        prepared.branches.push_back(branch);
      }
      prepared.leaves.push_back(pos);
      prev = pos;
    }
    auto tree = BuildSubTree(prepared, text.size());
    EXPECT_TRUE(tree.ok());
    return std::move(*tree);
  };

  TreeBuffer even = build_subset(0);
  TreeBuffer odd = build_subset(1);
  auto merged = MergeSubTrees({&even, &odd}, text);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(TreeToSaLcp(*merged), oracle);
  EXPECT_TRUE(ValidateSubTree(*merged, text, "").ok());
}

TEST(TrellisMergeTest, SingleTreeMergeIsIdentity) {
  std::string text = testing::RandomText(Alphabet::Dna(), 300, 33);
  auto whole = BuildUkkonenTree(text);
  ASSERT_TRUE(whole.ok());
  auto merged = MergeSubTrees({&*whole}, text);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(TreeToSaLcp(*merged), TreeToSaLcp(*whole));
}

TEST(BaselineAgreementTest, AllBuildersProduceTheSameTree) {
  // ERA, WaveFront and TRELLIS all emit prefix-routed TreeIndexes: their
  // global leaf orders must agree bit-for-bit.
  MemEnv env;
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 5000, 41);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  BaselineCase c{"agree", Alphabet::Dna(), 0, 0, false, 1 << 20};

  EraBuilder era_builder(MakeOptions(&env, c, "/era"));
  auto era_result = era_builder.Build(*info);
  ASSERT_TRUE(era_result.ok());
  auto era_order = testing::GlobalLeafOrder(&env, era_result->index);
  ASSERT_TRUE(era_order.ok());

  WaveFrontBuilder wf_builder(MakeOptions(&env, c, "/wf"));
  auto wf_result = wf_builder.Build(*info);
  ASSERT_TRUE(wf_result.ok());
  auto wf_order = testing::GlobalLeafOrder(&env, wf_result->index);
  ASSERT_TRUE(wf_order.ok());
  EXPECT_EQ(*wf_order, *era_order);

  TrellisBuilder trellis_builder(MakeOptions(&env, c, "/trellis"));
  auto trellis_result = trellis_builder.Build(*info);
  ASSERT_TRUE(trellis_result.ok());
  auto trellis_order = testing::GlobalLeafOrder(&env, trellis_result->index);
  ASSERT_TRUE(trellis_order.ok());
  EXPECT_EQ(*trellis_order, *era_order);
}

}  // namespace
}  // namespace era
