// End-to-end tests of the serial ERA builder against the SA-IS oracle,
// sweeping alphabets, text shapes, memory budgets, range policies, grouping
// and the two horizontal methods.

#include "era/era_builder.h"

#include <gtest/gtest.h>

#include "io/mem_env.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"

namespace era {
namespace {

struct BuilderCase {
  std::string name;
  Alphabet alphabet;
  std::size_t length;
  uint64_t seed;
  bool repetitive = false;
  uint64_t memory_budget = 1 << 20;
  bool grouping = true;
  bool seek_optimization = true;
  RangePolicyKind range_policy = RangePolicyKind::kElastic;
  uint32_t fixed_range = 16;
  HorizontalMethod horizontal = HorizontalMethod::kPrepareBuild;
};

class EraBuilderEndToEnd : public ::testing::TestWithParam<BuilderCase> {
 protected:
  std::string BuildAndCheck(const BuilderCase& c) {
    MemEnv env;
    std::string text =
        c.repetitive ? testing::RepetitiveText(c.alphabet, c.length, c.seed)
                     : testing::RandomText(c.alphabet, c.length, c.seed);
    auto info = MaterializeText(&env, "/text", c.alphabet, text);
    EXPECT_TRUE(info.ok());

    BuildOptions options;
    options.env = &env;
    options.work_dir = "/idx";
    options.memory_budget = c.memory_budget;
    options.input_buffer_bytes = 4096;
    options.group_virtual_trees = c.grouping;
    options.seek_optimization = c.seek_optimization;
    options.range_policy = c.range_policy;
    options.fixed_range = c.fixed_range;
    options.horizontal = c.horizontal;

    EraBuilder builder(options);
    auto result = builder.Build(*info);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return "";

    EXPECT_TRUE(testing::IndexMatchesOracle(&env, result->index, text));
    EXPECT_TRUE(ValidateIndex(&env, result->index, text).ok());
    EXPECT_EQ(result->index.TotalSuffixes(), text.size());
    EXPECT_GT(result->stats.num_subtrees, 0u);
    EXPECT_GT(result->stats.io.bytes_read, 0u);

    // Return the manifest for determinism checks.
    std::string manifest;
    EXPECT_TRUE(env.ReadFileToString("/idx/MANIFEST", &manifest).ok());
    return manifest;
  }
};

TEST_P(EraBuilderEndToEnd, MatchesOracle) { BuildAndCheck(GetParam()); }

INSTANTIATE_TEST_SUITE_P(
    Sweep, EraBuilderEndToEnd,
    ::testing::Values(
        BuilderCase{.name = "dna_small", .alphabet = Alphabet::Dna(),
                    .length = 2000, .seed = 1},
        BuilderCase{.name = "dna_tiny_budget", .alphabet = Alphabet::Dna(),
                    .length = 20000, .seed = 2, .memory_budget = 96 << 10},
        BuilderCase{.name = "dna_repetitive", .alphabet = Alphabet::Dna(),
                    .length = 8000, .seed = 3, .repetitive = true},
        BuilderCase{.name = "protein", .alphabet = Alphabet::Protein(),
                    .length = 6000, .seed = 4},
        BuilderCase{.name = "english", .alphabet = Alphabet::English(),
                    .length = 6000, .seed = 5},
        BuilderCase{.name = "binary", .alphabet = *Alphabet::Create("ab"),
                    .length = 6000, .seed = 6},
        BuilderCase{.name = "no_grouping", .alphabet = Alphabet::Dna(),
                    .length = 5000, .seed = 7, .grouping = false},
        BuilderCase{.name = "no_seek_opt", .alphabet = Alphabet::Dna(),
                    .length = 5000, .seed = 8, .seek_optimization = false},
        BuilderCase{.name = "fixed_range_16", .alphabet = Alphabet::Dna(),
                    .length = 5000, .seed = 9,
                    .range_policy = RangePolicyKind::kFixed,
                    .fixed_range = 16},
        BuilderCase{.name = "fixed_range_4", .alphabet = Alphabet::Dna(),
                    .length = 5000, .seed = 10,
                    .range_policy = RangePolicyKind::kFixed,
                    .fixed_range = 4},
        BuilderCase{.name = "branch_edge_dna", .alphabet = Alphabet::Dna(),
                    .length = 5000, .seed = 11,
                    .horizontal = HorizontalMethod::kBranchEdge},
        BuilderCase{.name = "branch_edge_protein",
                    .alphabet = Alphabet::Protein(), .length = 4000,
                    .seed = 12, .horizontal = HorizontalMethod::kBranchEdge},
        BuilderCase{.name = "branch_edge_repetitive",
                    .alphabet = Alphabet::Dna(), .length = 5000, .seed = 13,
                    .repetitive = true,
                    .horizontal = HorizontalMethod::kBranchEdge},
        BuilderCase{.name = "branch_edge_tiny_budget",
                    .alphabet = Alphabet::Dna(), .length = 20000, .seed = 14,
                    .memory_budget = 96 << 10,
                    .horizontal = HorizontalMethod::kBranchEdge}),
    [](const auto& info) { return info.param.name; });

TEST(EraBuilderTest, DeterministicAcrossRuns) {
  BuilderCase c{.name = "det", .alphabet = Alphabet::Dna(), .length = 4000,
                .seed = 42};
  // Run the same build twice in fresh environments; manifests must match.
  auto run = [&]() {
    MemEnv env;
    std::string text = testing::RandomText(c.alphabet, c.length, c.seed);
    auto info = MaterializeText(&env, "/text", c.alphabet, text);
    BuildOptions options;
    options.env = &env;
    options.work_dir = "/idx";
    options.memory_budget = c.memory_budget;
    options.input_buffer_bytes = 4096;
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    EXPECT_TRUE(result.ok());
    std::string manifest;
    EXPECT_TRUE(env.ReadFileToString("/idx/MANIFEST", &manifest).ok());
    return manifest;
  };
  EXPECT_EQ(run(), run());
}

TEST(EraBuilderTest, VariantsProduceIdenticalTrees) {
  // Elastic vs fixed range, grouping on/off, seek on/off and both horizontal
  // methods must all produce the same canonical global order.
  MemEnv env;
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 6000, 99);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());

  auto global_order = [&](BuildOptions options, const std::string& dir) {
    options.env = &env;
    options.work_dir = dir;
    options.memory_budget = 1 << 20;
    options.input_buffer_bytes = 4096;
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    auto order = testing::GlobalLeafOrder(&env, result->index);
    EXPECT_TRUE(order.ok());
    return *order;
  };

  BuildOptions base;
  auto reference = global_order(base, "/idx0");
  EXPECT_EQ(reference, testing::OracleSaLcp(text).sa);

  BuildOptions fixed;
  fixed.range_policy = RangePolicyKind::kFixed;
  fixed.fixed_range = 8;
  EXPECT_EQ(global_order(fixed, "/idx1"), reference);

  BuildOptions ungrouped;
  ungrouped.group_virtual_trees = false;
  EXPECT_EQ(global_order(ungrouped, "/idx2"), reference);

  BuildOptions no_seek;
  no_seek.seek_optimization = false;
  EXPECT_EQ(global_order(no_seek, "/idx3"), reference);

  BuildOptions branch_edge;
  branch_edge.horizontal = HorizontalMethod::kBranchEdge;
  EXPECT_EQ(global_order(branch_edge, "/idx4"), reference);
}

TEST(EraBuilderTest, FailsCleanlyOnMissingText) {
  MemEnv env;
  BuildOptions options;
  options.env = &env;
  options.work_dir = "/idx";
  TextInfo info{"/missing", 100, Alphabet::Dna()};
  EraBuilder builder(options);
  auto result = builder.Build(info);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError()) << result.status().ToString();
}

TEST(EraBuilderTest, FailsCleanlyOnLengthMismatch) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/text", "ACGT~").ok());
  BuildOptions options;
  options.env = &env;
  options.work_dir = "/idx";
  TextInfo info{"/text", 100, Alphabet::Dna()};  // wrong length
  EraBuilder builder(options);
  auto result = builder.Build(info);
  EXPECT_FALSE(result.ok());
}

TEST(EraBuilderTest, StatsAreCoherent) {
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 30000, 17);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  BuildOptions options;
  options.env = &env;
  options.work_dir = "/idx";
  options.memory_budget = 128 << 10;
  options.input_buffer_bytes = 4096;
  EraBuilder builder(options);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const BuildStats& stats = result->stats;
  EXPECT_GT(stats.fm, 0u);
  EXPECT_GT(stats.num_groups, 0u);
  EXPECT_GE(stats.num_subtrees, stats.num_groups);
  EXPECT_GT(stats.prepare_rounds, 0u);
  EXPECT_GT(stats.peak_tree_bytes, 0u);
  // The peak in-memory tree must respect the budgeted tree area:
  // 2 nodes/leaf * 32 B * FM.
  EXPECT_LE(stats.peak_tree_bytes, stats.fm * kTreeBytesPerLeaf);
  EXPECT_GE(stats.total_seconds, stats.vertical_seconds);
  // Multiple scans of S happened (partitioning rounds + per-group scans).
  EXPECT_GT(stats.io.scans_started, stats.num_groups);
  DiskModel disk;
  EXPECT_GT(stats.ModeledSeconds(disk), stats.total_seconds);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(EraBuilderTest, GroupingReducesScansOfS) {
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 40000, 23);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());

  auto scans = [&](bool grouping, const std::string& dir) {
    BuildOptions options;
    options.env = &env;
    options.work_dir = dir;
    options.memory_budget = 256 << 10;
    options.input_buffer_bytes = 4096;
    options.group_virtual_trees = grouping;
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    EXPECT_TRUE(result.ok());
    return result->stats.io.scans_started;
  };
  // Virtual trees amortize scans across sub-trees (Figure 9(a)).
  EXPECT_LT(scans(true, "/g1"), scans(false, "/g2"));
}

}  // namespace
}  // namespace era
