// Unit tests for the overload-control primitives: QueryContext deadlines
// and cancellation, the deadline-aware retry loop, and the
// AdmissionController's slot/queue/shed/drain state machine.

#include "query/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/query_context.h"
#include "io/retry_policy.h"

namespace era {
namespace {

using Clock = QueryContext::Clock;

TEST(QueryContextTest, BackgroundNeverExpiresOrCancels) {
  const QueryContext& ctx = QueryContext::Background();
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.expired());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_GT(ctx.RemainingSeconds(), 1e18);
}

TEST(QueryContextTest, TimeoutExpires) {
  QueryContext ctx = QueryContext::WithTimeout(0.005);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.Check().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(ctx.expired());
  EXPECT_TRUE(ctx.Check().IsDeadlineExceeded());
  EXPECT_LT(ctx.RemainingSeconds(), 0.0);
}

TEST(QueryContextTest, CancellationIsSharedAcrossCopies) {
  QueryContext ctx = QueryContext::WithTimeout(60.0);
  QueryContext copy = ctx;
  EXPECT_TRUE(copy.Check().ok());
  ctx.cancel.Cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(copy.Check().IsCancelled());
}

TEST(QueryContextTest, CancellationWinsOverExpiry) {
  QueryContext ctx = QueryContext::WithDeadline(Clock::now());
  ctx.cancel.Cancel();
  EXPECT_TRUE(ctx.Check().IsCancelled());
}

TEST(RetryPolicyTest, NeverSleepsPastTheDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_seconds = 0.05;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_seconds = 0.05;

  // 1ms of budget left against ~50ms backoffs: the IOError must surface in
  // roughly 1ms, with zero re-attempts slept.
  QueryContext ctx = QueryContext::WithTimeout(0.001);
  uint64_t retries = 0;
  const auto start = Clock::now();
  Status s = RunWithRetry(
      policy, &ctx, [] { return Status::IOError("transient"); }, &retries);
  const double took =
      std::chrono::duration<double>(Clock::now() - start).count();
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(retries, 0u);
  EXPECT_LT(took, 0.04);
}

TEST(RetryPolicyTest, CancelledContextStopsRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_seconds = 0.05;

  QueryContext ctx;
  ctx.cancel.Cancel();
  uint64_t retries = 0;
  Status s = RunWithRetry(
      policy, &ctx, [] { return Status::IOError("transient"); }, &retries);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(retries, 0u);
}

TEST(RetryPolicyTest, NullContextRetriesInFull) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.0001;

  uint64_t retries = 0;
  Status s = RunWithRetry(
      policy, nullptr, [] { return Status::IOError("transient"); }, &retries);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(retries, 2u);
}

AdmissionOptions EnabledOptions(uint32_t slots, uint32_t queue) {
  AdmissionOptions options;
  options.enabled = true;
  options.max_in_flight = slots;
  options.max_queue = queue;
  options.queue_poll_seconds = 0.001;
  return options;
}

TEST(AdmissionTest, DisabledAdmitsEverythingButTracksInFlight) {
  AdmissionController controller(AdmissionOptions{});  // disabled
  Permit a, b;
  ASSERT_TRUE(controller.Admit(QueryContext::Background(), &a).ok());
  ASSERT_TRUE(controller.Admit(QueryContext::Background(), &b).ok());
  EXPECT_EQ(controller.in_flight(), 2u);
  a.Release();
  EXPECT_EQ(controller.in_flight(), 1u);
  b.Release();
  EXPECT_EQ(controller.in_flight(), 0u);
  EXPECT_EQ(controller.stats().admitted, 2u);
}

TEST(AdmissionTest, ShedsWhenQueueIsFull) {
  AdmissionController controller(EnabledOptions(/*slots=*/1, /*queue=*/0));
  Permit held;
  ASSERT_TRUE(controller.Admit(QueryContext::Background(), &held).ok());
  Permit denied;
  Status s = controller.Admit(QueryContext::Background(), &denied);
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_FALSE(denied.valid());
  EXPECT_EQ(controller.stats().shed, 1u);
  EXPECT_EQ(controller.in_flight(), 1u);
}

TEST(AdmissionTest, ExpiredOrCancelledContextIsRefusedUpFront) {
  AdmissionController controller(EnabledOptions(4, 4));
  Permit permit;
  EXPECT_TRUE(controller.Admit(QueryContext::WithDeadline(Clock::now()), &permit)
                  .IsDeadlineExceeded());
  QueryContext cancelled;
  cancelled.cancel.Cancel();
  EXPECT_TRUE(controller.Admit(cancelled, &permit).IsCancelled());
  ServingStats stats = controller.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.admitted, 0u);
}

TEST(AdmissionTest, QueuedWaiterIsGrantedWhenTheSlotFrees) {
  AdmissionController controller(EnabledOptions(/*slots=*/1, /*queue=*/4));
  Permit held;
  ASSERT_TRUE(controller.Admit(QueryContext::Background(), &held).ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    Permit permit;
    Status s = controller.Admit(QueryContext::Background(), &permit);
    ASSERT_TRUE(s.ok()) << s.ToString();
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());
  held.Release();
  waiter.join();
  EXPECT_TRUE(granted.load());

  ServingStats stats = controller.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.queued, 1u);
  // The queued grant billed a wait-histogram bucket.
  uint64_t bucketed = 0;
  for (uint32_t i = 0; i < ServingStats::kWaitBuckets; ++i) {
    bucketed += stats.queue_wait_buckets[i];
  }
  EXPECT_EQ(bucketed, 1u);
  controller.WaitIdle();
  EXPECT_EQ(controller.in_flight(), 0u);
}

TEST(AdmissionTest, DeadlineExpiresWhileQueued) {
  AdmissionController controller(EnabledOptions(/*slots=*/1, /*queue=*/4));
  Permit held;
  ASSERT_TRUE(controller.Admit(QueryContext::Background(), &held).ok());

  Permit permit;
  Status s = controller.Admit(QueryContext::WithTimeout(0.02), &permit);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_EQ(controller.stats().deadline_exceeded, 1u);
  EXPECT_EQ(controller.stats().admitted, 1u);
}

TEST(AdmissionTest, CancelWhileQueuedReturnsCancelled) {
  AdmissionController controller(EnabledOptions(/*slots=*/1, /*queue=*/4));
  Permit held;
  ASSERT_TRUE(controller.Admit(QueryContext::Background(), &held).ok());

  QueryContext ctx;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ctx.cancel.Cancel();
  });
  Permit permit;
  Status s = controller.Admit(ctx, &permit);
  canceller.join();
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_EQ(controller.stats().cancelled, 1u);
}

TEST(AdmissionTest, PerClientCapShedsTheFlooderOnly) {
  AdmissionOptions options = EnabledOptions(/*slots=*/1, /*queue=*/8);
  options.max_queue_per_client = 1;
  AdmissionController controller(options);
  Permit held;
  ASSERT_TRUE(controller.Admit(QueryContext::Background(), &held).ok());

  QueryContext flooder;
  flooder.client_id = 1;
  std::thread queued_flood([&] {
    Permit permit;
    Status s = controller.Admit(flooder, &permit);
    EXPECT_TRUE(s.ok()) << s.ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // The flooder's second waiter exceeds its per-client cap: shed instantly.
  Permit denied;
  EXPECT_TRUE(controller.Admit(flooder, &denied).IsResourceExhausted());

  // Another client still queues fine.
  QueryContext polite;
  polite.client_id = 2;
  std::thread queued_polite([&] {
    Permit permit;
    Status s = controller.Admit(polite, &permit);
    EXPECT_TRUE(s.ok()) << s.ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  held.Release();
  queued_flood.join();
  queued_polite.join();
  controller.WaitIdle();
  ServingStats stats = controller.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.queued, 2u);
}

TEST(AdmissionTest, RoundRobinServesClientsFairly) {
  AdmissionController controller(EnabledOptions(/*slots=*/1, /*queue=*/8));
  Permit held;
  ASSERT_TRUE(controller.Admit(QueryContext::Background(), &held).ok());

  // Client 1 enqueues two waiters, then client 2 enqueues one. Round-robin
  // grant order must interleave: 1, 2, 1 — strict FIFO would starve client
  // 2 behind client 1's backlog.
  std::mutex mu;
  std::vector<uint64_t> grant_order;
  auto waiter = [&](uint64_t client) {
    QueryContext ctx;
    ctx.client_id = client;
    Permit permit;
    Status s = controller.Admit(ctx, &permit);
    ASSERT_TRUE(s.ok()) << s.ToString();
    std::lock_guard<std::mutex> lock(mu);
    grant_order.push_back(client);
    // Permit releases here, handing the slot to the next waiter; the next
    // grant can only happen after this row was recorded.
  };
  std::thread a1(waiter, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread a2(waiter, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread b1(waiter, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  held.Release();
  a1.join();
  a2.join();
  b1.join();
  ASSERT_EQ(grant_order.size(), 3u);
  EXPECT_EQ(grant_order[0], 1u);
  EXPECT_EQ(grant_order[1], 2u);
  EXPECT_EQ(grant_order[2], 1u);
}

TEST(AdmissionTest, DrainShedsWaitersAndRejectsNewUntilResume) {
  AdmissionController controller(EnabledOptions(/*slots=*/1, /*queue=*/4));
  Permit held;
  ASSERT_TRUE(controller.Admit(QueryContext::Background(), &held).ok());

  std::atomic<int> waiter_result{-1};
  std::thread waiter([&] {
    Permit permit;
    Status s = controller.Admit(QueryContext::Background(), &permit);
    waiter_result.store(s.IsResourceExhausted() ? 1 : 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  controller.Drain();
  waiter.join();
  EXPECT_EQ(waiter_result.load(), 1) << "queued waiter must be shed";
  EXPECT_TRUE(controller.draining());

  // New work is refused; the in-flight permit is unaffected.
  Permit denied;
  EXPECT_TRUE(controller.Admit(QueryContext::Background(), &denied)
                  .IsResourceExhausted());
  EXPECT_EQ(controller.in_flight(), 1u);
  held.Release();
  controller.WaitIdle();
  EXPECT_EQ(controller.in_flight(), 0u);

  controller.Resume();
  Permit again;
  EXPECT_TRUE(controller.Admit(QueryContext::Background(), &again).ok());
}

TEST(AdmissionTest, RecordOutcomeBillsMidFlightDegradation) {
  AdmissionController controller(EnabledOptions(4, 4));
  controller.RecordOutcome(Status::DeadlineExceeded("mid-flight"));
  controller.RecordOutcome(Status::Cancelled("mid-flight"));
  controller.RecordOutcome(Status::OK());
  ServingStats stats = controller.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST(AdmissionTest, WaitBucketBoundsAreMonotone) {
  for (uint32_t i = 1; i < ServingStats::kWaitBuckets; ++i) {
    EXPECT_GT(ServingStats::WaitBucketBound(i),
              ServingStats::WaitBucketBound(i - 1));
  }
}

// Regression pin for the migration onto the shared Histogram: the old
// hand-rolled queue-wait histogram assigned a wait to the FIRST bucket with
// seconds <= bound (upper-inclusive). The shared type must agree on every
// boundary, midpoint, and beyond-last-finite-bound value, or dashboards
// keyed on bucket indices silently shift.
TEST(AdmissionTest, SharedHistogramPreservesWaitBucketSemantics) {
  const std::vector<double> bounds = ServingStats::WaitBucketBounds();
  ASSERT_EQ(bounds.size(), static_cast<std::size_t>(ServingStats::kWaitBuckets));
  Histogram histogram(bounds);
  ASSERT_EQ(histogram.bounds().size(),
            static_cast<std::size_t>(ServingStats::kWaitBuckets));

  auto legacy_bucket = [&](double seconds) -> std::size_t {
    for (uint32_t i = 0; i < ServingStats::kWaitBuckets; ++i) {
      if (seconds <= ServingStats::WaitBucketBound(i)) return i;
    }
    return ServingStats::kWaitBuckets - 1;
  };

  std::vector<double> probes = {0.0, 1e-9, 7.5, 100.0};
  for (uint32_t i = 0; i + 1 < ServingStats::kWaitBuckets; ++i) {
    const double bound = ServingStats::WaitBucketBound(i);
    probes.push_back(bound);            // exactly on: upper-INCLUSIVE
    probes.push_back(bound * 0.999);    // just inside
    probes.push_back(bound * 1.001);    // just past: next bucket
  }
  for (double seconds : probes) {
    EXPECT_EQ(histogram.BucketFor(seconds), legacy_bucket(seconds))
        << "seconds=" << seconds;
  }
}

// The ServingStats view's queue_wait_buckets must be the shared histogram's
// per-bucket counts (same indices the old struct exposed).
TEST(AdmissionTest, StatsViewExposesQueueWaitBuckets) {
  AdmissionController controller(EnabledOptions(/*slots=*/1, /*queue=*/4));
  Permit held;
  ASSERT_TRUE(controller.Admit(QueryContext::Background(), &held).ok());
  std::thread waiter([&] {
    Permit permit;
    Status s = controller.Admit(QueryContext::Background(), &permit);
    ASSERT_TRUE(s.ok()) << s.ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  held.Release();
  waiter.join();

  ServingStats stats = controller.stats();
  uint64_t bucketed = 0;
  for (uint32_t i = 0; i < ServingStats::kWaitBuckets; ++i) {
    bucketed += stats.queue_wait_buckets[i];
  }
  // Exactly the one queued grant landed in some bucket. (WHICH bucket is a
  // scheduling question — under load the waiter thread may enqueue
  // arbitrarily late into the holder's sleep, making its measured wait
  // arbitrarily short — so bucket placement is pinned by the probe test
  // above, not by wall timing here.)
  EXPECT_EQ(bucketed, 1u);
  EXPECT_EQ(stats.queued, 1u);
  controller.WaitIdle();
}

}  // namespace
}  // namespace era
