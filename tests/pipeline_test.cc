// The pipelined horizontal phase: work-stealing scheduler, background
// sub-tree writer, latency-injecting Env, and — the acceptance bar — a
// byte-identical serialized index from ParallelBuilder at any worker count
// versus the serial EraBuilder, on both MemEnv and PosixEnv.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "era/era_builder.h"
#include "era/parallel_builder.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "era/subtree_writer.h"
#include "era/work_queue.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "suffixtree/serializer.h"
#include "suffixtree/tree_buffer.h"
#include "tests/test_util.h"

namespace era {
namespace {

// ---------------------------------------------------------------------------
// WorkStealingQueue
// ---------------------------------------------------------------------------

TEST(WorkStealingQueueTest, DrainsSeededTasksInOrder) {
  WorkStealingQueue queue(1);
  std::vector<PipelineTask> seeds;
  for (uint32_t g = 0; g < 5; ++g) {
    seeds.push_back({PipelineTask::Kind::kGroup, g, 0});
  }
  queue.SeedGlobal(seeds);
  PipelineTask task;
  for (uint32_t g = 0; g < 5; ++g) {
    ASSERT_TRUE(queue.Pop(0, &task));
    EXPECT_EQ(task.group, g) << "injection queue must preserve LPT order";
    queue.TaskDone();
  }
  EXPECT_FALSE(queue.Pop(0, &task));
}

TEST(WorkStealingQueueTest, OwnDequeIsLifoAndBeatsGlobal) {
  WorkStealingQueue queue(2);
  queue.SeedGlobal({{PipelineTask::Kind::kGroup, 7, 0}});
  queue.Push(0, {PipelineTask::Kind::kBuildPrefix, 1, 1});
  queue.Push(0, {PipelineTask::Kind::kBuildPrefix, 1, 2});
  PipelineTask task;
  ASSERT_TRUE(queue.Pop(0, &task));  // own deque first, LIFO
  EXPECT_EQ(task.prefix, 2u);
  queue.TaskDone();
  ASSERT_TRUE(queue.Pop(0, &task));
  EXPECT_EQ(task.prefix, 1u);
  queue.TaskDone();
  ASSERT_TRUE(queue.Pop(0, &task));  // then the injection queue
  EXPECT_EQ(task.group, 7u);
  queue.TaskDone();
}

TEST(WorkStealingQueueTest, StealsOldestFromVictim) {
  WorkStealingQueue queue(2);
  // Worker 0 spawned two build tasks; worker 1 must steal the OLDEST.
  queue.Push(0, {PipelineTask::Kind::kBuildPrefix, 3, 0});
  queue.Push(0, {PipelineTask::Kind::kBuildPrefix, 3, 1});
  PipelineTask task;
  ASSERT_TRUE(queue.Pop(1, &task));
  EXPECT_EQ(task.prefix, 0u) << "steals take the FIFO end";
  queue.TaskDone();
  ASSERT_TRUE(queue.Pop(1, &task));
  EXPECT_EQ(task.prefix, 1u);
  queue.TaskDone();
}

TEST(WorkStealingQueueTest, PopBlocksUntilSpawnedWorkOrCompletion) {
  // Worker 1 parks in Pop while worker 0 holds the only outstanding task;
  // it must wake for the task worker 0 spawns, not return early.
  WorkStealingQueue queue(2);
  queue.SeedGlobal({{PipelineTask::Kind::kGroup, 0, 0}});
  PipelineTask task;
  ASSERT_TRUE(queue.Pop(0, &task));

  std::atomic<int> got{-1};
  std::thread waiter([&] {
    PipelineTask stolen;
    got = queue.Pop(1, &stolen) ? static_cast<int>(stolen.prefix) : -2;
    if (got >= 0) queue.TaskDone();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), -1) << "Pop returned while work was in flight";
  queue.Push(0, {PipelineTask::Kind::kBuildPrefix, 0, 9});
  queue.TaskDone();  // the group task
  waiter.join();
  EXPECT_EQ(got.load(), 9);
  EXPECT_FALSE(queue.Pop(1, &task));
}

TEST(WorkStealingQueueTest, AbortWakesEveryone) {
  WorkStealingQueue queue(2);
  queue.SeedGlobal({{PipelineTask::Kind::kGroup, 0, 0}});
  PipelineTask task;
  ASSERT_TRUE(queue.Pop(0, &task));  // in flight, never completed
  std::thread waiter([&] {
    PipelineTask t;
    EXPECT_FALSE(queue.Pop(1, &t));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Abort();
  waiter.join();
  EXPECT_FALSE(queue.Pop(0, &task));
}

// ---------------------------------------------------------------------------
// BackgroundSubTreeWriter
// ---------------------------------------------------------------------------

TreeBuffer MakeTree(uint32_t leaves) {
  TreeBuffer tree;
  for (uint32_t i = 0; i < leaves; ++i) {
    uint32_t node = tree.AddNode();
    tree.node(node).edge_start = i;
    tree.node(node).edge_len = 1;
    tree.node(node).leaf_id = i;
    tree.AppendChildLast(0, node);
  }
  return tree;
}

TEST(BackgroundSubTreeWriterTest, WritesEverythingAndCountsIo) {
  MemEnv env;
  BackgroundSubTreeWriter writer(&env, 2, 1 << 20);
  for (int i = 0; i < 16; ++i) {
    writer.Enqueue("/st_" + std::to_string(i), "p" + std::to_string(i),
                   MakeTree(8));
  }
  ASSERT_TRUE(writer.Drain().ok());
  EXPECT_GT(writer.io().bytes_written, 0u);
  for (int i = 0; i < 16; ++i) {
    TreeBuffer tree;
    std::string prefix;
    ASSERT_TRUE(
        ReadSubTree(&env, "/st_" + std::to_string(i), &tree, &prefix, nullptr)
            .ok());
    EXPECT_EQ(prefix, "p" + std::to_string(i));
    EXPECT_EQ(tree.size(), 9u);  // root + 8 leaves
  }
}

TEST(BackgroundSubTreeWriterTest, BackpressureBoundsTheBacklog) {
  MemEnv env;
  LatencyModel slow;
  slow.write_latency_seconds = 0.005;
  LatencyEnv latency_env(&env, slow);
  const uint64_t tree_bytes = MakeTree(64).MemoryBytes();
  // Bound admits ~2 trees; the peak backlog must respect it even though 12
  // trees flow through a deliberately slow device.
  BackgroundSubTreeWriter writer(&latency_env, 1, 2 * tree_bytes);
  for (int i = 0; i < 12; ++i) {
    writer.Enqueue("/st_" + std::to_string(i), "p", MakeTree(64));
  }
  ASSERT_TRUE(writer.Drain().ok());
  EXPECT_LE(writer.peak_queued_bytes(), 2 * tree_bytes);
  EXPECT_EQ(env.FileCount(), 12u);
}

TEST(BackgroundSubTreeWriterTest, ReportsFirstWriteError) {
  // PosixEnv with a nonexistent directory: every write fails.
  BackgroundSubTreeWriter writer(GetDefaultEnv(), 1, 1 << 20);
  writer.Enqueue("/nonexistent_era_dir/st_0", "p", MakeTree(4));
  Status s = writer.Drain();
  EXPECT_FALSE(s.ok());
}

// ---------------------------------------------------------------------------
// LatencyEnv
// ---------------------------------------------------------------------------

TEST(LatencyEnvTest, PreservesBytesAndInjectsWallTime) {
  MemEnv base;
  ASSERT_TRUE(base.WriteFile("/f", std::string(100000, 'x')).ok());
  LatencyModel model;
  model.read_latency_seconds = 0.01;
  model.read_bytes_per_second = 1e12;  // latency-only
  LatencyEnv env(&base, model);

  auto file = env.OpenRandomAccess("/f");
  ASSERT_TRUE(file.ok());
  std::string buf(100000, '\0');
  std::size_t got = 0;
  WallTimer timer;
  ASSERT_TRUE((*file)->Read(0, buf.size(), buf.data(), &got).ok());
  EXPECT_GE(timer.Seconds(), 0.009);
  EXPECT_EQ(got, 100000u);
  EXPECT_EQ(buf, std::string(100000, 'x'));
}

// ---------------------------------------------------------------------------
// Determinism: identical index bytes, any worker count, serial included
// ---------------------------------------------------------------------------

constexpr uint64_t kSerialBudget = 2 << 20;

BuildOptions DetOptions(Env* env, const std::string& dir, uint64_t budget) {
  BuildOptions options;
  options.env = env;
  options.work_dir = dir;
  options.memory_budget = budget;
  options.input_buffer_bytes = 4096;
  return options;
}

/// All index files (MANIFEST + every sub-tree), keyed by relative name.
std::vector<std::pair<std::string, std::string>> IndexBytes(
    Env* env, const TreeIndex& index, const std::string& dir) {
  std::vector<std::pair<std::string, std::string>> files;
  std::string manifest;
  EXPECT_TRUE(env->ReadFileToString(dir + "/MANIFEST", &manifest).ok());
  files.emplace_back("MANIFEST", std::move(manifest));
  for (const SubTreeEntry& entry : index.subtrees()) {
    std::string blob;
    EXPECT_TRUE(
        env->ReadFileToString(dir + "/" + entry.filename, &blob).ok());
    files.emplace_back(entry.filename, std::move(blob));
  }
  return files;
}

void CheckDeterminismOn(Env* env, const std::string& root) {
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 20000, 71);
  auto info = MaterializeText(env, root + "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());

  EraBuilder serial(DetOptions(env, root + "/serial", kSerialBudget));
  auto serial_result = serial.Build(*info);
  ASSERT_TRUE(serial_result.ok()) << serial_result.status().ToString();
  auto reference =
      IndexBytes(env, serial_result->index, root + "/serial");
  ASSERT_FALSE(reference.empty());

  for (unsigned workers : {1u, 2u, 7u}) {
    // Budget scales with workers so the per-core share — and therefore FM
    // and the whole partition plan — matches the serial run exactly.
    std::string dir = root + "/w" + std::to_string(workers);
    ParallelBuilder builder(
        DetOptions(env, dir, kSerialBudget * workers), workers);
    auto result = builder.Build(*info);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto files = IndexBytes(env, result->index, dir);
    ASSERT_EQ(files.size(), reference.size()) << workers << " workers";
    for (std::size_t i = 0; i < files.size(); ++i) {
      EXPECT_EQ(files[i].first, reference[i].first) << workers << " workers";
      EXPECT_TRUE(files[i].second == reference[i].second)
          << "file " << files[i].first << " diverged at " << workers
          << " workers";
    }
  }
}

TEST(PipelineDeterminismTest, ByteIdenticalIndexOnMemEnv) {
  MemEnv env;
  CheckDeterminismOn(&env, "/det");
}

/// Cached vs uncached builds must emit byte-identical indexes at every
/// worker count: the tile-cache carve changes only the elastic range (the
/// algorithm's convergence point is range-independent), never FM or the
/// partition plan, and the cache returns exactly the file's bytes.
void CheckCachedUncachedIdentity(Env* env, const std::string& root) {
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 24000, 91);
  auto info = MaterializeText(env, root + "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());

  // An explicit R large enough to carve from (the auto R at this tiny
  // budget sits at the carve floor, which disables the cache). Identical
  // in the cached and uncached builds so the fixed areas — and FM — match.
  constexpr uint64_t kTestRBuffer = 1 << 20;

  BuildOptions uncached_options = DetOptions(env, root + "/ref",
                                             kSerialBudget);
  uncached_options.r_buffer_bytes = kTestRBuffer;
  uncached_options.tile_cache = false;
  EraBuilder uncached(uncached_options);
  auto uncached_result = uncached.Build(*info);
  ASSERT_TRUE(uncached_result.ok()) << uncached_result.status().ToString();
  EXPECT_EQ(uncached_result->stats.io.tile_hits, 0u);
  EXPECT_EQ(uncached_result->stats.io.tile_misses, 0u);
  auto reference = IndexBytes(env, uncached_result->index, root + "/ref");
  ASSERT_FALSE(reference.empty());

  for (unsigned workers : {1u, 2u, 7u}) {
    std::string dir = root + "/cw" + std::to_string(workers);
    BuildOptions options = DetOptions(env, dir, kSerialBudget * workers);
    options.r_buffer_bytes = kTestRBuffer;
    ASSERT_TRUE(options.tile_cache) << "tile cache must default on";
    ParallelBuilder builder(options, workers);
    auto result = builder.Build(*info);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->stats.io.tile_hits, 0u) << workers << " workers";
    // The cache's whole point: strictly fewer device bytes than the
    // uncached reference moved, while producing the same tree.
    EXPECT_LT(result->stats.io.bytes_read,
              uncached_result->stats.io.bytes_read)
        << workers << " workers";
    EXPECT_GT(result->stats.io.cache_served_bytes, 0u);
    auto files = IndexBytes(env, result->index, dir);
    ASSERT_EQ(files.size(), reference.size()) << workers << " workers";
    for (std::size_t i = 0; i < files.size(); ++i) {
      EXPECT_EQ(files[i].first, reference[i].first) << workers << " workers";
      EXPECT_TRUE(files[i].second == reference[i].second)
          << "file " << files[i].first << " diverged from the uncached "
          << "reference at " << workers << " workers";
    }
  }
}

TEST(PipelineDeterminismTest, CachedMatchesUncachedOnMemEnv) {
  MemEnv env;
  CheckCachedUncachedIdentity(&env, "/cvu");
}

TEST(PipelineDeterminismTest, CachedMatchesUncachedOnPosixEnv) {
  std::string root = "/tmp/era_pipeline_cvu_" + std::to_string(::getpid());
  Env* env = GetDefaultEnv();
  ASSERT_TRUE(env->CreateDir(root).ok());
  CheckCachedUncachedIdentity(env, root);
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}

TEST(PipelineTest, TileCacheStatsSurfaceInBuildStats) {
  MemEnv env;
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 30000, 92);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  BuildOptions options = DetOptions(&env, "/tc", 4 << 20);
  options.r_buffer_bytes = 1 << 20;  // room for the carve at this budget
  ParallelBuilder builder(options, 2);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BuildStats& stats = result->stats;
  EXPECT_EQ(stats.text_bytes, info->length);
  EXPECT_GT(stats.io.tile_hits, 0u);
  EXPECT_GT(stats.io.tile_device_bytes, 0u);
  EXPECT_GT(stats.tile_hit_rate(), 0.0);
  EXPECT_GT(stats.io_amplification(), 0.0);
  // The whole text fits in the cache at this scale, so device reads are
  // bounded by a couple of passes while logical traffic is far larger.
  EXPECT_LT(stats.io.bytes_read, stats.io.cache_served_bytes);
  EXPECT_TRUE(testing::IndexMatchesOracle(&env, result->index, text));
}

TEST(PipelineDeterminismTest, ByteIdenticalIndexOnPosixEnv) {
  std::string root = "/tmp/era_pipeline_det_" + std::to_string(::getpid());
  Env* env = GetDefaultEnv();
  ASSERT_TRUE(env->CreateDir(root).ok());
  CheckDeterminismOn(env, root);
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}

// ---------------------------------------------------------------------------
// Pipeline integration details
// ---------------------------------------------------------------------------

TEST(PipelineTest, PrefetchIsOnByDefaultAndHits) {
  MemEnv env;
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 30000, 72);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  ParallelBuilder builder(DetOptions(&env, "/pf", 4 << 20), 2);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.io.prefetch_hits, 0u)
      << "sequential scans should be served from the double buffer";
  EXPECT_GT(result->stats.io.prefetched_bytes, 0u);
  EXPECT_TRUE(testing::IndexMatchesOracle(&env, result->index, text));
}

TEST(PipelineTest, PrefetchCanBeDisabled) {
  MemEnv env;
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 10000, 73);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  BuildOptions options = DetOptions(&env, "/nopf", 4 << 20);
  options.prefetch_reads = false;
  ParallelBuilder builder(options, 2);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.io.prefetch_hits, 0u);
  EXPECT_EQ(result->stats.io.prefetched_bytes, 0u);
}

TEST(PipelineTest, ReportsWorkerBusySeconds) {
  MemEnv env;
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 20000, 74);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  ParallelBuilder builder(DetOptions(&env, "/busy", 4 << 20), 3);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->worker_busy_seconds.size(), 3u);
  double total_busy = 0;
  for (double b : result->worker_busy_seconds) {
    EXPECT_GE(b, 0.0);
    total_busy += b;
  }
  EXPECT_GT(total_busy, 0.0);
  // Busy time is a subset of each worker's wall time.
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_LE(result->worker_busy_seconds[w],
              result->worker_seconds[w] + 1e-6);
  }
}

TEST(PipelineTest, StreamingPrepareEmitsEveryPrefixExactlyOnce) {
  // Covers the GroupPreparer emit callback directly: every prefix arrives
  // exactly once, with its k slot, and results() stays empty.
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 4000, 75);
  ASSERT_TRUE(env.WriteFile("/s", text).ok());
  IoStats io;
  auto reader = OpenStringReader(&env, "/s", {}, &io);
  ASSERT_TRUE(reader.ok());

  // Count occurrences of a few 2-mers to build a valid group.
  VirtualTree group;
  for (const char* p : {"AA", "AC", "AG", "AT"}) {
    uint64_t freq = 0;
    for (std::size_t i = 0; i + 2 < text.size(); ++i) {
      if (text.compare(i, 2, p) == 0) ++freq;
    }
    if (freq > 0) group.prefixes.push_back({p, freq});
  }
  ASSERT_GE(group.prefixes.size(), 2u);

  GroupPreparer preparer(group, RangePolicy::Elastic(1 << 16, 4, 256),
                         reader->get(), text.size());
  std::vector<int> seen(group.prefixes.size(), 0);
  preparer.SetEmitCallback(
      [&](std::size_t k, PreparedSubTree&& prepared) -> Status {
        EXPECT_LT(k, seen.size());
        ++seen[k];
        EXPECT_EQ(prepared.prefix, group.prefixes[k].prefix);
        EXPECT_EQ(prepared.leaves.size(), group.prefixes[k].frequency);
        return Status::OK();
      });
  ASSERT_TRUE(preparer.Run().ok());
  for (std::size_t k = 0; k < seen.size(); ++k) {
    EXPECT_EQ(seen[k], 1) << "prefix " << k;
  }
  EXPECT_TRUE(preparer.results().empty());
}

}  // namespace
}  // namespace era
