// Codec-layer tests for the v3 compressed sub-tree format: varint/zigzag
// round-trips, bit-packing at every width (including the 0 and 64 edges),
// randomized fuzz against a reference model, and payload-level corruption —
// every truncation of a valid payload must decode to Corruption, never to a
// wrong tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/codec.h"
#include "suffixtree/compressed_tree.h"
#include "suffixtree/tree_buffer.h"
#include "tests/test_util.h"
#include "ukkonen/ukkonen.h"

namespace era {
namespace {

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             129,
                             16383,
                             16384,
                             (1ull << 21) - 1,
                             1ull << 21,
                             (1ull << 35) + 17,
                             (1ull << 56) - 1,
                             1ull << 63,
                             std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  std::size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, RejectsTruncationAndOverlongEncodings) {
  std::string buf;
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  // Every strict prefix of a varint is a truncation error.
  for (std::size_t len = 0; len < buf.size(); ++len) {
    std::size_t pos = 0;
    uint64_t out = 0;
    EXPECT_FALSE(GetVarint64(buf.data(), len, &pos, &out)) << len;
  }
  // Ten continuation bytes: the encoding claims > 64 bits.
  std::string overlong(10, static_cast<char>(0x80));
  std::size_t pos = 0;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint64(overlong.data(), overlong.size(), &pos, &out));
  // A 10th byte above 1 overflows 64 bits even with a clear top bit.
  std::string overflow(9, static_cast<char>(0xFF));
  overflow.push_back(0x02);
  pos = 0;
  EXPECT_FALSE(GetVarint64(overflow.data(), overflow.size(), &pos, &out));
}

TEST(ZigZagTest, RoundTripsAndOrdersSmallMagnitudes) {
  const int64_t values[] = {0, -1, 1, -2, 2, 1000, -1000,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
  // Small magnitudes of either sign must stay 1-byte varints.
  EXPECT_LT(ZigZagEncode(-64), 128u);
  EXPECT_LT(ZigZagEncode(63), 128u);
}

TEST(BitWidthTest, MatchesDefinition) {
  EXPECT_EQ(BitWidth(0), 0u);
  EXPECT_EQ(BitWidth(1), 1u);
  EXPECT_EQ(BitWidth(2), 2u);
  EXPECT_EQ(BitWidth(3), 2u);
  EXPECT_EQ(BitWidth(255), 8u);
  EXPECT_EQ(BitWidth(256), 9u);
  EXPECT_EQ(BitWidth(std::numeric_limits<uint64_t>::max()), 64u);
  for (uint32_t w = 1; w <= 64; ++w) {
    EXPECT_EQ(BitWidth(MaskLow(w)), w);
    if (w < 64) EXPECT_EQ(BitWidth(1ull << w), w + 1);
  }
}

TEST(BitPackTest, RoundTripsEveryWidth) {
  // For each width, write boundary values and read them back at computed
  // offsets, exactly as the packed node records do.
  for (uint32_t width = 0; width <= 64; ++width) {
    std::vector<uint64_t> values = {0, MaskLow(width),
                                    MaskLow(width) >> 1,
                                    width == 0 ? 0 : 1ull};
    BitWriter writer;
    for (uint64_t v : values) writer.Put(v, width);
    writer.Finish();
    std::string bytes = writer.TakeBytes();
    bytes.append(kBitReaderPadBytes, '\0');
    BitReader reader(bytes.data(), bytes.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(reader.Get(i * width, width), values[i])
          << "width=" << width << " i=" << i;
    }
  }
}

TEST(BitPackTest, FuzzMixedWidthRecordsAgainstModel) {
  // Random records of six random-width fields (the v3 node shape), written
  // once and then read back in random access order.
  std::mt19937_64 rng(20260807);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint32_t> widths(6);
    uint32_t record_bits = 0;
    for (uint32_t& w : widths) {
      w = static_cast<uint32_t>(rng() % 65);
      record_bits += w;
    }
    if (record_bits == 0) continue;
    const std::size_t num_records = 1 + rng() % 200;

    std::vector<std::vector<uint64_t>> model(num_records);
    BitWriter writer;
    for (std::size_t r = 0; r < num_records; ++r) {
      for (uint32_t w : widths) {
        const uint64_t v = rng() & MaskLow(w);
        model[r].push_back(v);
        writer.Put(v, w);
      }
    }
    writer.Finish();
    std::string bytes = writer.TakeBytes();
    EXPECT_EQ(bytes.size(),
              (static_cast<uint64_t>(record_bits) * num_records + 7) / 8);
    bytes.append(kBitReaderPadBytes, '\0');
    BitReader reader(bytes.data(), bytes.size());

    std::vector<std::size_t> order(num_records);
    for (std::size_t r = 0; r < num_records; ++r) order[r] = r;
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t r : order) {
      uint64_t bit = static_cast<uint64_t>(r) * record_bits;
      for (std::size_t f = 0; f < widths.size(); ++f) {
        EXPECT_EQ(reader.Get(bit, widths[f]), model[r][f])
            << "round=" << round << " record=" << r << " field=" << f;
        bit += widths[f];
      }
    }
  }
}

CountedTree EncodableTree(uint64_t text_bytes, uint64_t seed) {
  std::string text = testing::RandomText(Alphabet::Dna(), text_bytes, seed);
  auto linked = BuildUkkonenTree(text);
  EXPECT_TRUE(linked.ok());
  auto counted = BuildCountedTree(*linked);
  EXPECT_TRUE(counted.ok());
  return std::move(*counted);
}

TEST(CompressedPayloadTest, RoundTripsExactly) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    CountedTree tree = EncodableTree(1500, seed);
    std::string payload = CompressedSubTree::EncodePayload(tree);
    auto packed = CompressedSubTree::FromPayload(payload, tree.size());
    ASSERT_TRUE(packed.ok()) << packed.status().ToString();
    EXPECT_EQ(packed->size(), tree.size());
    EXPECT_EQ(packed->LeafCount(), tree.LeafCount());
    // Deterministic encoding: same tree, same bytes.
    EXPECT_EQ(CompressedSubTree::EncodePayload(tree), payload);

    auto inflated = packed->Inflate();
    ASSERT_TRUE(inflated.ok());
    ASSERT_EQ(inflated->size(), tree.size());
    for (uint32_t i = 0; i < tree.size(); ++i) {
      const CountedNode& a = tree.node(i);
      const CountedNode& b = inflated->node(i);
      EXPECT_EQ(a.edge_start, b.edge_start);
      EXPECT_EQ(a.leaf_or_count, b.leaf_or_count);
      EXPECT_EQ(a.edge_len, b.edge_len);
      EXPECT_EQ(a.children_begin, b.children_begin);
      EXPECT_EQ(a.num_children, b.num_children);
    }
  }
}

TEST(CompressedPayloadTest, EveryTruncationIsCorruption) {
  CountedTree tree = EncodableTree(600, 5);
  std::string payload = CompressedSubTree::EncodePayload(tree);
  ASSERT_GT(payload.size(), 80u);
  // Check every length near the structural boundaries plus a sample of the
  // rest (full O(n^2) is slow for no extra coverage).
  for (std::size_t len = 0; len < payload.size(); ++len) {
    if (len > 100 && len + 100 < payload.size() && len % 37 != 0) continue;
    auto packed =
        CompressedSubTree::FromPayload(payload.substr(0, len), tree.size());
    EXPECT_FALSE(packed.ok()) << "len=" << len;
    if (!packed.ok()) {
      EXPECT_TRUE(packed.status().IsCorruption()) << "len=" << len;
    }
  }
  // Trailing garbage is just as dead.
  auto padded = CompressedSubTree::FromPayload(payload + "x", tree.size());
  EXPECT_FALSE(padded.ok());
  // A wrong node count cannot pass the size checks.
  EXPECT_FALSE(CompressedSubTree::FromPayload(payload, tree.size() - 1).ok());
  EXPECT_FALSE(CompressedSubTree::FromPayload(payload, tree.size() + 1).ok());
}

TEST(CompressedPayloadTest, HeaderTamperingIsCorruption) {
  CountedTree tree = EncodableTree(600, 11);
  std::string payload = CompressedSubTree::EncodePayload(tree);
  // Flipping any declared width breaks the w == BitWidth(max) rule or the
  // total-size equation; both must be caught.
  for (std::size_t off = 60; off < 66; ++off) {  // the six width bytes
    std::string bad = payload;
    bad[off] = static_cast<char>(bad[off] + 1);
    EXPECT_FALSE(
        CompressedSubTree::FromPayload(bad, tree.size()).ok())
        << "width byte " << off;
  }
}

TEST(CompressedPayloadTest, LazyLeafRangesMatchFullDecode) {
  CountedTree tree = EncodableTree(2000, 13);
  std::string payload = CompressedSubTree::EncodePayload(tree);
  auto packed = CompressedSubTree::FromPayload(std::move(payload),
                                               tree.size());
  ASSERT_TRUE(packed.ok());

  std::vector<uint64_t> all;
  ASSERT_TRUE(packed
                  ->DecodeLeafRange(0, packed->LeafCount(), nullptr,
                                    packed->LeafCount(), &all)
                  .ok());
  ASSERT_EQ(all.size(), packed->LeafCount());
  for (uint64_t rank = 0; rank < packed->LeafCount(); rank += 17) {
    EXPECT_EQ(packed->LeafId(rank), all[rank]);
  }

  std::mt19937_64 rng(99);
  for (int round = 0; round < 40; ++round) {
    const uint64_t begin = rng() % all.size();
    const uint64_t count = rng() % (all.size() - begin + 1);
    const std::size_t limit = static_cast<std::size_t>(rng() % (count + 2));
    std::vector<uint64_t> got;
    ASSERT_TRUE(
        packed->DecodeLeafRange(begin, count, nullptr, limit, &got).ok());
    const std::size_t expect = std::min<std::size_t>(limit, count);
    ASSERT_EQ(got.size(), expect);
    for (std::size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(got[i], all[begin + i]);
    }
  }
}

}  // namespace
}  // namespace era
