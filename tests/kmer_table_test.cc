// KmerDispatchTable: the flat top-layer routing table must agree with
// PrefixTrie::Descend on every input — random patterns, short patterns,
// uncoded symbols, and walks that continue past the table's depth.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "suffixtree/trie.h"

namespace era {
namespace {

PrefixTrie UnevenTrie() {
  // Variable-depth prefixes, like a real frequency-based partition: some
  // sub-trees hang at depth 1, some at depth 3.
  PrefixTrie trie;
  EXPECT_TRUE(trie.InsertSubTree("A", 0, 10).ok());
  EXPECT_TRUE(trie.InsertSubTree("CA", 1, 4).ok());
  EXPECT_TRUE(trie.InsertSubTree("CC", 2, 4).ok());
  EXPECT_TRUE(trie.InsertSubTree("CGT", 3, 2).ok());
  EXPECT_TRUE(trie.InsertSubTree("G", 4, 9).ok());
  EXPECT_TRUE(trie.InsertSubTree("TTT", 5, 1).ok());
  EXPECT_TRUE(trie.InsertTerminalLeaf("T", 100).ok());
  return trie;
}

void ExpectSameRouting(const PrefixTrie& trie, const KmerDispatchTable& table,
                       const std::string& pattern) {
  const PrefixTrie::DescendResult direct = trie.Descend(pattern);
  const PrefixTrie::DescendResult routed = table.Route(trie, pattern);
  EXPECT_EQ(routed.node, direct.node) << "pattern: " << pattern;
  EXPECT_EQ(routed.matched, direct.matched) << "pattern: " << pattern;
  EXPECT_EQ(routed.pattern_exhausted, direct.pattern_exhausted)
      << "pattern: " << pattern;
}

TEST(KmerDispatchTableTest, MatchesDescendOnExhaustiveShortPatterns) {
  PrefixTrie trie = UnevenTrie();
  KmerDispatchTable table;
  table.Build(trie, "ACGT");
  ASSERT_TRUE(table.enabled());
  EXPECT_EQ(table.k(), 3u);  // deepest prefix is 3; 4^3 fits far under cap
  EXPECT_EQ(table.slot_count(), 64u);

  // Every pattern over the alphabet up to length 5, plus the empty pattern.
  std::vector<std::string> patterns = {""};
  const std::string symbols = "ACGT";
  for (std::size_t start = 0, len = 1; len <= 5; ++len) {
    std::vector<std::string> next;
    for (const std::string& p :
         std::vector<std::string>(patterns.begin() + start, patterns.end())) {
      if (p.size() != len - 1) continue;
      for (char c : symbols) next.push_back(p + c);
    }
    start = patterns.size();
    patterns.insert(patterns.end(), next.begin(), next.end());
  }
  for (const std::string& p : patterns) ExpectSameRouting(trie, table, p);
}

TEST(KmerDispatchTableTest, MatchesDescendOnRandomAndUncodedPatterns) {
  PrefixTrie trie = UnevenTrie();
  KmerDispatchTable table;
  table.Build(trie, "ACGT");

  std::mt19937_64 rng(7);
  const std::string symbols = "ACGT~X";  // ~ and X are not in the table code
  for (int i = 0; i < 2000; ++i) {
    std::string pattern;
    const std::size_t len = rng() % 12;
    for (std::size_t j = 0; j < len; ++j) {
      pattern.push_back(symbols[rng() % symbols.size()]);
    }
    ExpectSameRouting(trie, table, pattern);
  }
}

TEST(KmerDispatchTableTest, DeepTrieContinuesWalkPastTableDepth) {
  // A trie deeper than the slot cap allows: k is clamped and Route finishes
  // the walk through the map nodes.
  PrefixTrie trie;
  std::string deep(12, 'A');
  ASSERT_TRUE(trie.InsertSubTree(deep, 0, 1).ok());
  ASSERT_TRUE(trie.InsertSubTree("C", 1, 5).ok());
  KmerDispatchTable table;
  table.Build(trie, "ACGT");
  ASSERT_TRUE(table.enabled());
  EXPECT_LT(table.k(), 12u);  // 4^12 > kMaxSlots forces a clamp
  EXPECT_LE(table.slot_count(), KmerDispatchTable::kMaxSlots);

  for (std::size_t len = 0; len <= 14; ++len) {
    ExpectSameRouting(trie, table, std::string(len, 'A'));
  }
  ExpectSameRouting(trie, table, std::string(8, 'A') + "C");
  ExpectSameRouting(trie, table, "C" + std::string(8, 'A'));
}

TEST(KmerDispatchTableTest, DisabledFallbacksStillRoute) {
  // Depth-0 trie (no partitions): table disables itself, Route must still
  // behave exactly like Descend.
  PrefixTrie empty;
  KmerDispatchTable table;
  table.Build(empty, "ACGT");
  EXPECT_FALSE(table.enabled());
  ExpectSameRouting(empty, table, "ACG");
  ExpectSameRouting(empty, table, "");

  PrefixTrie trie = UnevenTrie();
  KmerDispatchTable no_alphabet;
  no_alphabet.Build(trie, "");
  EXPECT_FALSE(no_alphabet.enabled());
  ExpectSameRouting(trie, no_alphabet, "CGT");
}

}  // namespace
}  // namespace era
