// Format compatibility across v1/v2/v3: every builder emits the configured
// format (bit-packed v3 by default, counted v2 on request), both serve
// queries byte-identically, and legacy v1 mirrors still read and answer the
// same.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "b2st/b2st.h"
#include "era/era_builder.h"
#include "io/mem_env.h"
#include "query/query_engine.h"
#include "suffixtree/canonical.h"
#include "suffixtree/serializer.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"
#include "trellis/trellis.h"
#include "ukkonen/ukkonen.h"
#include "wavefront/wavefront.h"

namespace era {
namespace {

BuildOptions SmallBuildOptions(Env* env, const std::string& dir) {
  BuildOptions options;
  options.env = env;
  options.work_dir = dir;
  options.memory_budget = 256 << 10;  // force several sub-trees
  options.input_buffer_bytes = 4096;
  return options;
}

/// Version field of a serialized sub-tree file (header bytes 8..11).
uint32_t FileVersion(MemEnv* env, const std::string& path) {
  std::string raw;
  EXPECT_TRUE(env->ReadFileToString(path, &raw).ok());
  uint32_t version = 0;
  EXPECT_GE(raw.size(), 12u);
  std::memcpy(&version, raw.data() + 8, sizeof(version));
  return version;
}

/// Mirrors `index` into `dst_dir` with every sub-tree rewritten as v1.
void MirrorIndexAsV1(MemEnv* env, const TreeIndex& index,
                     const std::string& dst_dir) {
  ASSERT_TRUE(env->CreateDir(dst_dir).ok());
  std::string manifest;
  ASSERT_TRUE(
      env->ReadFileToString(index.dir() + "/MANIFEST", &manifest).ok());
  ASSERT_TRUE(env->WriteFile(dst_dir + "/MANIFEST", manifest).ok());
  for (const SubTreeEntry& entry : index.subtrees()) {
    TreeBuffer tree;
    std::string prefix;
    ASSERT_TRUE(ReadSubTree(env, index.dir() + "/" + entry.filename, &tree,
                            &prefix, nullptr)
                    .ok());
    ASSERT_TRUE(WriteSubTreeV1(env, dst_dir + "/" + entry.filename, prefix,
                               tree, nullptr)
                    .ok());
    EXPECT_EQ(FileVersion(env, dst_dir + "/" + entry.filename), 1u);
  }
}

/// Queries both engines with the same pattern set and requires identical
/// answers (the "byte-identical query results" criterion).
void ExpectIdenticalAnswers(QueryEngine* v2, QueryEngine* v1,
                            const std::string& text) {
  std::vector<std::string> patterns = {"A", "AC", "TTT"};
  for (std::size_t offset : {0u, 17u, 901u, 2503u}) {
    for (std::size_t len : {3u, 9u, 30u}) {
      if (offset + len < text.size()) {
        patterns.push_back(text.substr(offset, len));
      }
    }
  }
  patterns.push_back(text.substr(text.size() - 12));  // suffix incl. terminal
  patterns.push_back("ACGTACGTACGTACGTACGTACGT");     // likely absent
  for (const std::string& pattern : patterns) {
    auto count2 = v2->Count(pattern);
    auto count1 = v1->Count(pattern);
    ASSERT_TRUE(count2.ok()) << count2.status().ToString();
    ASSERT_TRUE(count1.ok()) << count1.status().ToString();
    EXPECT_EQ(*count2, *count1) << "pattern: " << pattern;
    auto hits2 = v2->Locate(pattern);
    auto hits1 = v1->Locate(pattern);
    ASSERT_TRUE(hits2.ok());
    ASSERT_TRUE(hits1.ok());
    EXPECT_EQ(*hits2, *hits1) << "pattern: " << pattern;
    EXPECT_EQ(hits2->size(), *count2) << "pattern: " << pattern;
  }
}

class BuilderFormatTest
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

StatusOr<BuildResult> BuildWith(int which, const BuildOptions& options,
                                const TextInfo& info) {
  switch (which) {
    case 0: {
      EraBuilder builder(options);
      return builder.Build(info);
    }
    case 1: {
      WaveFrontBuilder builder(options);
      return builder.Build(info);
    }
    default: {
      TrellisBuilder builder(options);
      return builder.Build(info);
    }
  }
}

TEST_P(BuilderFormatTest, EmitsConfiguredFormatAndAllVersionsAnswerAlike) {
  MemEnv env;
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 4000, 99);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());

  // Default build: bit-packed v3 files.
  auto result_v3 = BuildWith(GetParam().second,
                             SmallBuildOptions(&env, "/idx_v3"), *info);
  ASSERT_TRUE(result_v3.ok()) << result_v3.status().ToString();
  const TreeIndex& index_v3 = result_v3->index;
  ASSERT_GT(index_v3.subtrees().size(), 1u);

  // Same build with --format v2 semantics: counted files.
  BuildOptions v2_options = SmallBuildOptions(&env, "/idx_v2");
  v2_options.format = SubTreeFormat::kCounted;
  auto result_v2 = BuildWith(GetParam().second, v2_options, *info);
  ASSERT_TRUE(result_v2.ok()) << result_v2.status().ToString();
  const TreeIndex& index_v2 = result_v2->index;
  ASSERT_EQ(index_v2.subtrees().size(), index_v3.subtrees().size());

  // Every emitted file carries the configured version, validates, and the
  // v3 serving form stays compressed with the identical canonical shape as
  // its v2 twin.
  for (std::size_t i = 0; i < index_v3.subtrees().size(); ++i) {
    const SubTreeEntry& entry = index_v3.subtrees()[i];
    const SubTreeEntry& entry_v2 = index_v2.subtrees()[i];
    EXPECT_EQ(entry.prefix, entry_v2.prefix);
    EXPECT_EQ(FileVersion(&env, index_v3.dir() + "/" + entry.filename), 3u);
    EXPECT_EQ(
        FileVersion(&env, index_v2.dir() + "/" + entry_v2.filename), 2u);

    CountedTree counted;
    std::string prefix;
    ASSERT_TRUE(ReadCountedSubTree(&env, index_v3.dir() + "/" + entry.filename,
                                   &counted, &prefix, nullptr)
                    .ok());
    EXPECT_EQ(prefix, entry.prefix);
    EXPECT_EQ(counted.LeafCount(), entry.frequency);
    EXPECT_TRUE(ValidateSubTree(counted, text, entry.prefix).ok());

    ServedSubTree served;
    ASSERT_TRUE(ReadServedSubTree(&env, index_v3.dir() + "/" + entry.filename,
                                  &served, nullptr, nullptr)
                    .ok());
    EXPECT_TRUE(served.compressed());
    // The packed serving form must be smaller than the counted records it
    // replaces (the cache-density win the format exists for).
    EXPECT_LT(served.MemoryBytes(), counted.MemoryBytes());

    CountedTree counted_v2;
    ASSERT_TRUE(
        ReadCountedSubTree(&env, index_v2.dir() + "/" + entry_v2.filename,
                           &counted_v2, nullptr, nullptr)
            .ok());
    EXPECT_EQ(TreeToSaLcp(served), TreeToSaLcp(counted_v2));
  }

  MirrorIndexAsV1(&env, index_v2, "/idx_v1");
  auto v3 = QueryEngine::Open(&env, "/idx_v3");
  auto v2 = QueryEngine::Open(&env, "/idx_v2");
  auto v1 = QueryEngine::Open(&env, "/idx_v1");
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ExpectIdenticalAnswers(v3->get(), v2->get(), text);
  ExpectIdenticalAnswers(v2->get(), v1->get(), text);
}

INSTANTIATE_TEST_SUITE_P(AllBuilders, BuilderFormatTest,
                         ::testing::Values(std::make_pair("era", 0),
                                           std::make_pair("wavefront", 1),
                                           std::make_pair("trellis", 2)),
                         [](const auto& info) { return info.param.first; });

TEST(B2stFormatTest, ForestFilesRoundTripBothForms) {
  // B2ST emits a forest (no manifest); its files must still round-trip
  // through both readers with identical canonical form.
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 3000, 21);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  B2stBuilder builder(SmallBuildOptions(&env, "/b2st"));
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->subtree_files.empty());
  for (const std::string& file : result->subtree_files) {
    const std::string path = result->work_dir + "/" + file;
    TreeBuffer linked;
    CountedTree counted;
    ASSERT_TRUE(ReadSubTree(&env, path, &linked, nullptr, nullptr).ok());
    ASSERT_TRUE(
        ReadCountedSubTree(&env, path, &counted, nullptr, nullptr).ok());
    EXPECT_EQ(TreeToSaLcp(linked), TreeToSaLcp(counted));
    EXPECT_EQ(CountLeaves(counted), counted.LeafCount());
  }
}

TEST(FormatCompatTest, V1FilesStillReadable) {
  // The full v1 write -> read matrix: a legacy file loads into the linked
  // form verbatim and into the serving form via conversion, with the same
  // canonical structure and a correct leaf count.
  std::string text = testing::RandomText(Alphabet::Dna(), 500, 3);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  MemEnv env;
  ASSERT_TRUE(WriteSubTreeV1(&env, "/v1.bin", "AC", *tree, nullptr).ok());
  EXPECT_EQ(FileVersion(&env, "/v1.bin"), 1u);

  TreeBuffer linked;
  std::string prefix;
  ASSERT_TRUE(ReadSubTree(&env, "/v1.bin", &linked, &prefix, nullptr).ok());
  EXPECT_EQ(prefix, "AC");
  EXPECT_EQ(TreeToSaLcp(linked), TreeToSaLcp(*tree));

  CountedTree counted;
  ASSERT_TRUE(
      ReadCountedSubTree(&env, "/v1.bin", &counted, &prefix, nullptr).ok());
  EXPECT_EQ(counted.size(), tree->size());
  EXPECT_EQ(TreeToSaLcp(counted), TreeToSaLcp(*tree));
  EXPECT_EQ(counted.LeafCount(), CountLeaves(*tree));
}

}  // namespace
}  // namespace era
