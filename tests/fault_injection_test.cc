// FaultyEnv fault injection and retry-with-backoff: the deterministic fault
// schedules, the durability model behind SimulateCrash, atomic publish
// surviving crashes, and transient faults absorbed by RunWithRetry in
// StringReader / TileCache / a full build.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "era/era_builder.h"
#include "io/env.h"
#include "io/faulty_env.h"
#include "io/mem_env.h"
#include "io/retry_policy.h"
#include "io/string_reader.h"
#include "io/tile_cache.h"
#include "tests/test_util.h"
#include "text/corpus.h"

namespace era {
namespace {

// ---------------------------------------------------------------------------
// ParseFaultSpec
// ---------------------------------------------------------------------------

TEST(ParseFaultSpecTest, ParsesTheDocumentedKeys) {
  auto spec = ParseFaultSpec(
      "read_transient=0.25,write_transient=0.5,short_write=0.125,"
      "fail_read_at=3,read_permanent=1,fail_write_at=7,write_permanent=0,"
      "enospc_after=64MB,crash_after_writes=9,torn_write_at=11,seed=13,"
      "path=work_dir");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec->read_transient_p, 0.25);
  EXPECT_DOUBLE_EQ(spec->write_transient_p, 0.5);
  EXPECT_DOUBLE_EQ(spec->short_write_p, 0.125);
  EXPECT_EQ(spec->fail_read_at, 3u);
  EXPECT_TRUE(spec->read_fail_permanent);
  EXPECT_EQ(spec->fail_write_at, 7u);
  EXPECT_FALSE(spec->write_fail_permanent);
  EXPECT_EQ(spec->enospc_after_bytes, 64ull << 20);
  EXPECT_EQ(spec->crash_after_writes, 9u);
  EXPECT_EQ(spec->torn_write_at, 11u);
  EXPECT_EQ(spec->seed, 13u);
  EXPECT_EQ(spec->path_filter, "work_dir");
}

TEST(ParseFaultSpecTest, RejectsGarbage) {
  EXPECT_FALSE(ParseFaultSpec("frobnicate=1").ok());
  EXPECT_FALSE(ParseFaultSpec("read_transient=2.0").ok());
  EXPECT_FALSE(ParseFaultSpec("enospc_after=64XB").ok());
  EXPECT_FALSE(ParseFaultSpec("no_equals_sign").ok());
  EXPECT_TRUE(ParseFaultSpec("").ok());  // empty spec: no faults
}

// ---------------------------------------------------------------------------
// FaultyEnv schedules
// ---------------------------------------------------------------------------

Status ReadOnce(Env* env, const std::string& path) {
  auto file = env->OpenRandomAccess(path);
  if (!file.ok()) return file.status();
  char buf[8];
  std::size_t got = 0;
  return (*file)->Read(0, sizeof(buf), buf, &got);
}

TEST(FaultyEnvTest, FailReadAtHitsExactlyTheNthCall) {
  MemEnv base;
  ASSERT_TRUE(base.WriteFile("/f", "payload").ok());
  FaultSpec spec;
  spec.fail_read_at = 3;
  FaultyEnv env(&base, spec);
  EXPECT_TRUE(ReadOnce(&env, "/f").ok());
  EXPECT_TRUE(ReadOnce(&env, "/f").ok());
  EXPECT_TRUE(ReadOnce(&env, "/f").IsIOError());  // the 3rd
  EXPECT_TRUE(ReadOnce(&env, "/f").ok());         // transient, not latched
  EXPECT_EQ(env.stats().read_faults, 1u);
}

TEST(FaultyEnvTest, PermanentReadFaultLatches) {
  MemEnv base;
  ASSERT_TRUE(base.WriteFile("/f", "payload").ok());
  FaultSpec spec;
  spec.fail_read_at = 2;
  spec.read_fail_permanent = true;
  FaultyEnv env(&base, spec);
  EXPECT_TRUE(ReadOnce(&env, "/f").ok());
  EXPECT_TRUE(ReadOnce(&env, "/f").IsIOError());
  EXPECT_TRUE(ReadOnce(&env, "/f").IsIOError());  // dead region stays dead
}

TEST(FaultyEnvTest, TransientProbabilityIsSeedDeterministic) {
  auto schedule = [](uint64_t seed) {
    MemEnv base;
    EXPECT_TRUE(base.WriteFile("/f", "payload").ok());
    FaultSpec spec;
    spec.read_transient_p = 0.5;
    spec.seed = seed;
    FaultyEnv env(&base, spec);
    std::vector<bool> failed;
    for (int i = 0; i < 32; ++i) failed.push_back(!ReadOnce(&env, "/f").ok());
    return failed;
  };
  EXPECT_EQ(schedule(7), schedule(7)) << "same seed, same fault schedule";
  EXPECT_NE(schedule(7), schedule(8));
}

TEST(FaultyEnvTest, PathFilterGatesInjection) {
  MemEnv base;
  ASSERT_TRUE(base.WriteFile("/idx/st_0", "x").ok());
  ASSERT_TRUE(base.WriteFile("/text", "y").ok());
  FaultSpec spec;
  spec.read_transient_p = 1.0;
  spec.path_filter = "/idx/";
  FaultyEnv env(&base, spec);
  EXPECT_TRUE(ReadOnce(&env, "/idx/st_0").IsIOError());
  EXPECT_TRUE(ReadOnce(&env, "/text").ok());
}

TEST(FaultyEnvTest, EnospcAfterByteBudget) {
  MemEnv base;
  FaultSpec spec;
  spec.enospc_after_bytes = 10;
  FaultyEnv env(&base, spec);
  auto file = env.NewWritable("/f");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("12345678").ok());    // 8 persisted
  Status s = (*file)->Append("12345678");           // would exceed 10
  EXPECT_TRUE(s.IsIOError());
  EXPECT_NE(s.ToString().find("no space"), std::string::npos);
  EXPECT_EQ(env.stats().enospc_faults, 1u);
  EXPECT_TRUE((*file)->Append("12").ok());          // still fits exactly
}

TEST(FaultyEnvTest, ShortWriteIsSilentAndHalf) {
  MemEnv base;
  FaultSpec spec;
  spec.short_write_p = 1.0;
  FaultyEnv env(&base, spec);
  auto file = env.NewWritable("/f");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("12345678").ok()) << "short write reports OK";
  ASSERT_TRUE((*file)->Close().ok());
  auto size = base.FileSize("/f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 4u);
  EXPECT_EQ(env.stats().short_writes, 1u);
}

TEST(FaultyEnvTest, SimulateCrashDropsUnsyncedSuffix) {
  MemEnv base;
  FaultyEnv env(&base, FaultSpec{});
  {
    auto file = env.NewWritable("/synced_then_more");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("durable").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Append("_volatile").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto file = env.NewWritable("/never_synced");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("gone").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(base.WriteFile("/preexisting", "untouched").ok());

  env.SimulateCrash();
  std::string content;
  ASSERT_TRUE(base.ReadFileToString("/synced_then_more", &content).ok());
  EXPECT_EQ(content, "durable") << "crash truncates to the synced prefix";
  EXPECT_FALSE(base.FileExists("/never_synced"));
  ASSERT_TRUE(base.ReadFileToString("/preexisting", &content).ok());
  EXPECT_EQ(content, "untouched") << "files predating the env are preserved";
  EXPECT_EQ(env.stats().files_damaged, 2u);
  EXPECT_TRUE(env.crashed());
  EXPECT_TRUE(ReadOnce(&env, "/preexisting").IsIOError())
      << "a crashed env fails every later operation";
}

TEST(FaultyEnvTest, TornWriteCrashesWithHalfDurable) {
  MemEnv base;
  FaultSpec spec;
  spec.torn_write_at = 2;
  FaultyEnv env(&base, spec);
  auto file = env.NewWritable("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("headerXX").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  Status s = (*file)->Append("ABCDEFGH");  // torn: 4 bytes land, then crash
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(env.crashed());
  std::string content;
  ASSERT_TRUE(base.ReadFileToString("/f", &content).ok());
  EXPECT_EQ(content, "headerXXABCD") << "the torn prefix survives the crash";
}

TEST(FaultyEnvTest, AtomicWriteIsInvisibleUntilCommitSurvivesCrash) {
  MemEnv base;
  ASSERT_TRUE(base.WriteFile("/artifact", "old version").ok());
  FaultyEnv env(&base, FaultSpec{});
  // Committed atomic write: fully durable even though the env crashes next.
  ASSERT_TRUE(AtomicallyWriteFile(&env, "/artifact", "new version").ok());
  // Uncommitted writer: its temp file must vanish at the crash.
  auto writer = AtomicFileWriter::Open(&env, "/half_done");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("in flight").ok());
  env.SimulateCrash();
  std::string content;
  ASSERT_TRUE(base.ReadFileToString("/artifact", &content).ok());
  EXPECT_EQ(content, "new version");
  EXPECT_FALSE(base.FileExists("/half_done"));
  EXPECT_FALSE(base.FileExists("/half_done.tmp"));
}

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsIsCappedAndDeterministic) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.enabled());
  double prev = 0;
  for (uint32_t attempt = 1; attempt <= 3; ++attempt) {
    double b = policy.BackoffSeconds(attempt);
    EXPECT_GT(b, 0.0);
    EXPECT_LE(b, policy.max_backoff_seconds);
    EXPECT_GE(b, prev * 0.5) << "jitter floor is half nominal";
    EXPECT_DOUBLE_EQ(b, policy.BackoffSeconds(attempt)) << "deterministic";
    prev = b;
  }
}

TEST(RetryPolicyTest, RetriesIOErrorUpToMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0;  // keep the test fast
  int calls = 0;
  uint64_t retries = 0;
  Status s = RunWithRetry(
      policy,
      [&] {
        ++calls;
        return Status::IOError("still broken");
      },
      &retries);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryPolicyTest, SucceedsAfterTransientAndCountsRetries) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0;
  int calls = 0;
  uint64_t retries = 0;
  Status s = RunWithRetry(
      policy,
      [&] {
        return ++calls < 3 ? Status::IOError("blip") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(retries, 2u);
}

TEST(RetryPolicyTest, NeverRetriesCorruption) {
  RetryPolicy policy;
  int calls = 0;
  uint64_t retries = 0;
  Status s = RunWithRetry(
      policy,
      [&] {
        ++calls;
        return Status::Corruption("bad checksum");
      },
      &retries);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(calls, 1) << "re-reading cannot fix wrong bytes";
  EXPECT_EQ(retries, 0u);
}

// ---------------------------------------------------------------------------
// Retry absorption in the readers
// ---------------------------------------------------------------------------

TEST(RetryAbsorptionTest, StringReaderAbsorbsATransientReadFault) {
  MemEnv base;
  std::string text(32 << 10, 'a');
  for (std::size_t i = 0; i < text.size(); ++i) {
    text[i] = static_cast<char>('a' + i % 4);
  }
  ASSERT_TRUE(base.WriteFile("/text", text).ok());
  FaultSpec spec;
  spec.fail_read_at = 2;  // the second device read fails once
  FaultyEnv env(&base, spec);

  StringReaderOptions options;
  options.buffer_bytes = 4096;
  IoStats stats;
  auto reader = OpenStringReader(&env, "/text", options, &stats);
  ASSERT_TRUE(reader.ok());
  (*reader)->BeginScan();
  std::string out(text.size(), '\0');
  uint32_t got = 0;
  ASSERT_TRUE((*reader)
                  ->Fetch(0, static_cast<uint32_t>(out.size()), out.data(),
                          &got)
                  .ok())
      << "the retry policy must absorb the injected fault";
  EXPECT_EQ(got, text.size());
  EXPECT_EQ(out, text);
  EXPECT_GE(stats.read_retries, 1u);
}

TEST(RetryAbsorptionTest, DisabledPolicySurfacesTheFault) {
  MemEnv base;
  ASSERT_TRUE(base.WriteFile("/text", std::string(16 << 10, 'x')).ok());
  FaultSpec spec;
  spec.fail_read_at = 1;
  FaultyEnv env(&base, spec);
  StringReaderOptions options;
  options.buffer_bytes = 4096;
  options.retry.max_attempts = 1;  // retry off
  IoStats stats;
  auto reader = OpenStringReader(&env, "/text", options, &stats);
  ASSERT_TRUE(reader.ok());
  (*reader)->BeginScan();
  char buf[64];
  uint32_t got = 0;
  EXPECT_TRUE((*reader)->Fetch(0, sizeof(buf), buf, &got).IsIOError());
  EXPECT_EQ(stats.read_retries, 0u);
}

TEST(RetryAbsorptionTest, TileCacheAbsorbsATransientLoadFault) {
  MemEnv base;
  std::string text(256 << 10, 'g');
  ASSERT_TRUE(base.WriteFile("/text", text).ok());
  FaultSpec spec;
  spec.fail_read_at = 1;  // the very first tile load fails once
  FaultyEnv env(&base, spec);

  TileCacheOptions options;
  options.budget_bytes = 1 << 20;
  auto cache = TileCache::Open(&env, "/text", options);
  ASSERT_TRUE(cache.ok());
  std::string out(8192, '\0');
  std::size_t got = 0;
  ASSERT_TRUE((*cache)->ReadAt(0, out.size(), out.data(), &got).ok());
  EXPECT_EQ(got, out.size());
  EXPECT_EQ(out, text.substr(0, out.size()));
  EXPECT_GE((*cache)->stats().read_retries, 1u);
}

TEST(RetryAbsorptionTest, BuildUnderTransientFaultsIsByteIdentical) {
  // A build whose text reads randomly blip must absorb every fault and emit
  // exactly the bytes a fault-free build emits.
  MemEnv clean_env;
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 12000, 29);
  auto info = MaterializeText(&clean_env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());

  BuildOptions options;
  options.env = &clean_env;
  options.work_dir = "/ref";
  options.memory_budget = 2 << 20;
  options.input_buffer_bytes = 4096;
  EraBuilder reference(options);
  auto ref = reference.Build(*info);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  MemEnv faulty_base;
  ASSERT_TRUE(
      MaterializeText(&faulty_base, "/text", Alphabet::Dna(), text).ok());
  FaultSpec spec;
  // The builder serves every text read through one shared TileCache, so a
  // small text is a handful of tile loads; fail the first deterministically.
  spec.fail_read_at = 1;
  spec.path_filter = "/text";  // fault the scans, not the artifacts
  FaultyEnv faulty(&faulty_base, spec);
  BuildOptions faulted = options;
  faulted.env = &faulty;
  faulted.work_dir = "/out";
  EraBuilder builder(faulted);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(faulty.stats().read_faults, 0u)
      << "the drill injected nothing: " << faulty.stats().ToString();
  EXPECT_GE(result->stats.io.read_retries, faulty.stats().read_faults);

  for (const SubTreeEntry& entry : ref->index.subtrees()) {
    std::string want, have;
    ASSERT_TRUE(
        clean_env.ReadFileToString("/ref/" + entry.filename, &want).ok());
    ASSERT_TRUE(
        faulty_base.ReadFileToString("/out/" + entry.filename, &have).ok());
    EXPECT_EQ(want, have) << entry.filename;
  }
}

}  // namespace
}  // namespace era
