// Shared-descent dictionary matching (QueryEngine::MatchDictionary) against
// the per-pattern oracle loop and the Aho-Corasick streaming baseline, the
// duplicate-folding regression pins, doc-level dictionary counting, and
// mid-dictionary cancellation. The concurrency case runs under the
// ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "collection/collection_builder.h"
#include "collection/doc_engine.h"
#include "era/era_builder.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "io/string_reader.h"
#include "query/query_engine.h"
#include "query/query_workload.h"
#include "tests/test_util.h"
#include "text/aho_corasick.h"

namespace era {
namespace {

BuildOptions SmallBuildOptions(Env* env, const std::string& dir,
                               SubTreeFormat format) {
  BuildOptions options;
  options.env = env;
  options.work_dir = dir;
  options.memory_budget = 256 << 10;  // force several sub-trees
  options.input_buffer_bytes = 4096;
  options.format = format;
  return options;
}

/// The oracle: the per-pattern Count/Locate loop MatchDictionary must be
/// byte-identical to.
std::vector<DictOutcome> PerPatternLoop(QueryEngine* engine,
                                        const std::vector<std::string>& patterns,
                                        const DictMatchOptions& options) {
  std::vector<DictOutcome> out(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    auto count = engine->Count(patterns[i]);
    if (!count.ok()) {
      out[i].status = count.status();
      continue;
    }
    out[i].count = *count;
    if (options.locate) {
      auto hits = engine->Locate(patterns[i], options.locate_limit);
      if (!hits.ok()) {
        out[i].status = hits.status();
        out[i].count = 0;
        continue;
      }
      out[i].offsets = std::move(*hits);
    }
  }
  return out;
}

void ExpectSameOutcomes(const std::vector<DictOutcome>& got,
                        const std::vector<DictOutcome>& expected,
                        const std::vector<std::string>& patterns) {
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status.code(), expected[i].status.code())
        << "item " << i << " pattern: " << patterns[i] << " got "
        << got[i].status.ToString() << " want "
        << expected[i].status.ToString();
    EXPECT_EQ(got[i].count, expected[i].count)
        << "item " << i << " pattern: " << patterns[i];
    EXPECT_EQ(got[i].offsets, expected[i].offsets)
        << "item " << i << " pattern: " << patterns[i];
  }
}

// ---------------------------------------------------------------------------
// Randomized equivalence: every alphabet, both sub-tree formats, dictionary
// sizes from one pattern to thousands, count and locate modes.
// ---------------------------------------------------------------------------

TEST(DictMatcherEquivalence, MatchesPerPatternLoopAcrossAlphabetsAndFormats) {
  const Alphabet alphabets[] = {Alphabet::Dna(), Alphabet::Protein(),
                                Alphabet::English()};
  for (const Alphabet& alphabet : alphabets) {
    MemEnv env;
    const std::string text = testing::RepetitiveText(alphabet, 6000, 29);
    auto info = MaterializeText(&env, "/text", alphabet, text);
    ASSERT_TRUE(info.ok());
    for (SubTreeFormat format :
         {SubTreeFormat::kPacked, SubTreeFormat::kCounted}) {
      const std::string dir =
          format == SubTreeFormat::kPacked ? "/idx_v3" : "/idx_v2";
      EraBuilder builder(SmallBuildOptions(&env, dir, format));
      auto result = builder.Build(*info);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      auto engine = QueryEngine::Open(&env, dir);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();

      for (std::size_t num_patterns : {1u, 7u, 300u, 2000u}) {
        DictWorkloadOptions workload;
        workload.num_patterns = num_patterns;
        workload.num_prefix_groups = 8;
        workload.prefix_len = 6;
        workload.min_len = 3;
        workload.max_len = 20;
        workload.seed = 100 + num_patterns;
        const std::vector<std::string> patterns =
            SampleDictionaryWorkload(text, workload);
        ASSERT_EQ(patterns.size(), num_patterns);

        DictMatchOptions count_mode;
        auto counted = (*engine)->MatchDictionary(patterns, count_mode);
        ASSERT_TRUE(counted.ok()) << counted.status().ToString();
        ExpectSameOutcomes(*counted,
                           PerPatternLoop(engine->get(), patterns, count_mode),
                           patterns);

        DictMatchOptions locate_mode;
        locate_mode.locate = true;
        locate_mode.locate_limit = 13;
        auto located = (*engine)->MatchDictionary(patterns, locate_mode);
        ASSERT_TRUE(located.ok()) << located.status().ToString();
        ExpectSameOutcomes(
            *located, PerPatternLoop(engine->get(), patterns, locate_mode),
            patterns);
      }
    }
  }
}

TEST(DictMatcherEquivalence, AhoCorasickStreamingBaselineAgreesOnCounts) {
  MemEnv env;
  const std::string text = testing::RepetitiveText(Alphabet::Dna(), 8000, 53);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  EraBuilder builder(SmallBuildOptions(&env, "/idx", SubTreeFormat::kPacked));
  ASSERT_TRUE(builder.Build(*info).ok());
  auto engine = QueryEngine::Open(&env, "/idx");
  ASSERT_TRUE(engine.ok());

  DictWorkloadOptions workload;
  workload.num_patterns = 500;
  workload.prefix_len = 5;
  workload.min_len = 2;
  workload.max_len = 16;
  workload.seed = 9;
  const std::vector<std::string> patterns =
      SampleDictionaryWorkload(text, workload);

  // Stream the text through the automaton once; duplicates fire per id, so
  // the per-id tallies line up with the per-item dictionary outcomes.
  auto matcher = AhoCorasick::Build(patterns);
  ASSERT_TRUE(matcher.ok()) << matcher.status().ToString();
  IoStats io;
  auto reader = OpenStringReader(&env, "/text", {}, &io);
  ASSERT_TRUE(reader.ok());
  std::vector<uint64_t> ac_counts(patterns.size(), 0);
  ASSERT_TRUE(matcher
                  ->ScanAll(reader->get(),
                            [&](int32_t id, uint64_t) {
                              ++ac_counts[static_cast<std::size_t>(id)];
                            })
                  .ok());

  auto outcomes = (*engine)->MatchDictionary(patterns);
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes->size(), patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    ASSERT_TRUE((*outcomes)[i].status.ok())
        << (*outcomes)[i].status.ToString();
    EXPECT_EQ((*outcomes)[i].count, ac_counts[i])
        << "pattern: " << patterns[i];
  }
}

// ---------------------------------------------------------------------------
// Routing edge paths: trie-resolved shorts, misses, empty patterns.
// ---------------------------------------------------------------------------

class DictMatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text_ = testing::RepetitiveText(Alphabet::Dna(), 8000, 71);
    auto info = MaterializeText(&env_, "/text", Alphabet::Dna(), text_);
    ASSERT_TRUE(info.ok());
    EraBuilder builder(
        SmallBuildOptions(&env_, "/idx", SubTreeFormat::kPacked));
    auto result = builder.Build(*info);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto engine = QueryEngine::Open(&env_, "/idx");
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  MemEnv env_;
  std::string text_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(DictMatcherTest, TrieResolvedMissingAndEmptyPatterns) {
  std::string almost = text_.substr(1000, 20);
  almost.back() = almost.back() == 'A' ? 'C' : 'A';
  const std::vector<std::string> patterns = {
      "",                                   // per-item InvalidArgument
      "A",                                  // trie-resolved
      "C",
      "AC",
      "ACGTACGTACGTACGTACGTACGTACGTACGT",   // almost surely absent
      text_.substr(10, 12),
      almost,                               // diverges in its last symbol
      "A",                                  // duplicate of a trie pattern
      "",                                   // duplicate empty
      text_.substr(7000),                   // full suffix incl. terminal
  };
  for (bool locate : {false, true}) {
    DictMatchOptions options;
    options.locate = locate;
    options.locate_limit = 7;
    auto outcomes = engine_->MatchDictionary(patterns, options);
    ASSERT_TRUE(outcomes.ok());
    ExpectSameOutcomes(*outcomes,
                       PerPatternLoop(engine_.get(), patterns, options),
                       patterns);
    EXPECT_TRUE((*outcomes)[0].status.IsInvalidArgument());
    EXPECT_TRUE((*outcomes)[8].status.IsInvalidArgument());
  }
}

// ---------------------------------------------------------------------------
// Duplicate folding: duplicated items must not add tree work, in the plain
// batches and in the dictionary path.
// ---------------------------------------------------------------------------

TEST_F(DictMatcherTest, BatchDuplicatesFoldWithoutExtraTreeWork) {
  // Distinct patterns only (the repetitive text makes naive substring picks
  // collide, which would skew the fold accounting below).
  std::vector<std::string> unique;
  for (std::size_t i = 0; unique.size() < 40 && i * 97 + 17 < text_.size();
       ++i) {
    std::string pattern = text_.substr(i * 97, 8 + i % 9);
    if (std::find(unique.begin(), unique.end(), pattern) == unique.end()) {
      unique.push_back(std::move(pattern));
    }
  }
  ASSERT_EQ(unique.size(), 40u);
  std::vector<std::string> duplicated;
  for (std::size_t i = 0; i < unique.size() * 5; ++i) {
    duplicated.push_back(unique[i % unique.size()]);
  }
  const uint64_t expected_folds = duplicated.size() - unique.size();

  // Context-free CountBatch: the duplicated batch must cost exactly the
  // unique batch's tree work (the regression this test pins).
  QueryStats before = engine_->stats();
  auto unique_counts = engine_->CountBatch(unique);
  ASSERT_TRUE(unique_counts.ok());
  QueryStats mid = engine_->stats();
  auto dup_counts = engine_->CountBatch(duplicated);
  ASSERT_TRUE(dup_counts.ok());
  QueryStats after = engine_->stats();
  EXPECT_EQ(after.nodes_visited - mid.nodes_visited,
            mid.nodes_visited - before.nodes_visited);
  EXPECT_EQ(after.leaves_enumerated - mid.leaves_enumerated,
            mid.leaves_enumerated - before.leaves_enumerated);
  EXPECT_EQ(after.batch_duplicates_folded - mid.batch_duplicates_folded,
            expected_folds);
  for (std::size_t i = 0; i < duplicated.size(); ++i) {
    EXPECT_EQ((*dup_counts)[i], (*unique_counts)[i % unique.size()]);
  }

  // Context overload of LocateBatch: same fold, same answers per duplicate.
  const QueryContext ctx;
  before = engine_->stats();
  auto unique_hits = engine_->LocateBatch(ctx, unique, 10);
  ASSERT_TRUE(unique_hits.ok());
  mid = engine_->stats();
  auto dup_hits = engine_->LocateBatch(ctx, duplicated, 10);
  ASSERT_TRUE(dup_hits.ok());
  after = engine_->stats();
  EXPECT_EQ(after.leaves_enumerated - mid.leaves_enumerated,
            mid.leaves_enumerated - before.leaves_enumerated);
  EXPECT_EQ(after.batch_duplicates_folded - mid.batch_duplicates_folded,
            expected_folds);
  for (std::size_t i = 0; i < duplicated.size(); ++i) {
    ASSERT_TRUE((*dup_hits)[i].status.ok());
    EXPECT_EQ((*dup_hits)[i].offsets,
              (*unique_hits)[i % unique.size()].offsets);
  }

  // Dictionary path: duplicated items fold before routing, so descents and
  // leaf enumeration match the unique run exactly.
  DictMatchOptions locate_mode;
  locate_mode.locate = true;
  locate_mode.locate_limit = 10;
  before = engine_->stats();
  auto unique_dict = engine_->MatchDictionary(unique, locate_mode);
  ASSERT_TRUE(unique_dict.ok());
  mid = engine_->stats();
  auto dup_dict = engine_->MatchDictionary(duplicated, locate_mode);
  ASSERT_TRUE(dup_dict.ok());
  after = engine_->stats();
  EXPECT_EQ(after.dict_descents_shared - mid.dict_descents_shared,
            mid.dict_descents_shared - before.dict_descents_shared);
  EXPECT_EQ(after.leaves_enumerated - mid.leaves_enumerated,
            mid.leaves_enumerated - before.leaves_enumerated);
  EXPECT_EQ(after.batch_duplicates_folded - mid.batch_duplicates_folded,
            expected_folds);
  EXPECT_EQ(after.dict_groups_formed - mid.dict_groups_formed,
            mid.dict_groups_formed - before.dict_groups_formed);
  for (std::size_t i = 0; i < duplicated.size(); ++i) {
    EXPECT_EQ((*dup_dict)[i].count, (*unique_dict)[i % unique.size()].count);
    EXPECT_EQ((*dup_dict)[i].offsets,
              (*unique_dict)[i % unique.size()].offsets);
  }
}

TEST_F(DictMatcherTest, SharedPrefixesShareDescents) {
  // Patterns extending one anchor share their prefix descent: the saved
  // counter must light up, and the whole dictionary must route to few
  // groups (one per touched sub-tree, not one per pattern).
  std::vector<std::string> patterns;
  for (std::size_t len = 6; len < 26; ++len) {
    patterns.push_back(text_.substr(500, len));
  }
  const QueryStats before = engine_->stats();
  auto outcomes = engine_->MatchDictionary(patterns);
  ASSERT_TRUE(outcomes.ok());
  const QueryStats after = engine_->stats();
  EXPECT_GT(after.dict_descents_saved, before.dict_descents_saved);
  // All 20 patterns extend one 6-symbol anchor, so they route to one
  // sub-tree and form one group.
  EXPECT_EQ(after.dict_groups_formed - before.dict_groups_formed, 1u);
  ExpectSameOutcomes(*outcomes,
                     PerPatternLoop(engine_.get(), patterns, {}), patterns);
}

// ---------------------------------------------------------------------------
// Doc-level dictionary counting.
// ---------------------------------------------------------------------------

TEST(DictMatcherDocTest, CountDocsDictionaryMatchesPerPatternCountDocs) {
  MemEnv env;
  CollectionBuildOptions options;
  options.build.env = &env;
  options.build.work_dir = "/coll";
  options.build.memory_budget = 512 << 10;
  options.build.input_buffer_bytes = 4096;
  CollectionBuilder builder(Alphabet::Dna(), options);
  ASSERT_TRUE(builder.AddSyntheticDocuments(12, 2048, 5).ok());
  ASSERT_TRUE(builder.Build().ok());
  auto doc_engine = DocEngine::Open(&env, "/coll");
  ASSERT_TRUE(doc_engine.ok()) << doc_engine.status().ToString();

  std::string text;
  ASSERT_TRUE(
      env.ReadFileToString((*doc_engine)->engine().index().text().path, &text)
          .ok());
  DictWorkloadOptions workload;
  workload.num_patterns = 300;
  workload.prefix_len = 5;
  workload.min_len = 3;
  workload.max_len = 14;
  workload.seed = 17;
  std::vector<std::string> patterns = SampleDictionaryWorkload(text, workload);
  patterns.push_back("AC|GT");  // crosses a separator: InvalidArgument
  patterns.push_back("");

  auto outcomes = (*doc_engine)->CountDocsDictionary(patterns);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    auto expected = (*doc_engine)->CountDocs(patterns[i]);
    if (!expected.ok()) {
      EXPECT_EQ((*outcomes)[i].status.code(), expected.status().code())
          << "pattern: " << patterns[i];
      continue;
    }
    ASSERT_TRUE((*outcomes)[i].status.ok())
        << (*outcomes)[i].status.ToString();
    EXPECT_EQ((*outcomes)[i].count, *expected) << "pattern: " << patterns[i];
  }
}

// ---------------------------------------------------------------------------
// Mid-dictionary cancellation and concurrent dictionaries.
// ---------------------------------------------------------------------------

TEST(DictMatcherServingTest, MidDictionaryCancellationLeavesEngineReusable) {
  MemEnv env;
  const std::string text = testing::RepetitiveText(Alphabet::Dna(), 12000, 47);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  EraBuilder builder(SmallBuildOptions(&env, "/idx", SubTreeFormat::kPacked));
  ASSERT_TRUE(builder.Build(*info).ok());

  // ~1ms of device time per request and an all-straggler dictionary (no
  // shared anchors to amortize): the run takes hundreds of milliseconds, so
  // a cancel fired at 50ms lands mid-flight.
  LatencyModel model;
  model.read_latency_seconds = 0.001;
  model.queue_depth = 2;
  LatencyEnv slow_env(&env, model);
  QueryEngineOptions engine_options;
  engine_options.cache.budget_bytes = 64 << 10;
  auto slow = QueryEngine::Open(&slow_env, "/idx", engine_options);
  ASSERT_TRUE(slow.ok());
  auto fast = QueryEngine::Open(&env, "/idx");
  ASSERT_TRUE(fast.ok());

  DictWorkloadOptions workload;
  workload.num_patterns = 600;
  workload.duplicate_fraction = 0;
  workload.straggler_fraction = 1.0;
  workload.mutant_fraction = 0.3;
  workload.min_len = 6;
  workload.max_len = 24;
  workload.seed = 3;
  const std::vector<std::string> patterns =
      SampleDictionaryWorkload(text, workload);
  DictMatchOptions options;
  options.locate = true;
  options.locate_limit = 25;
  const std::vector<DictOutcome> expected =
      PerPatternLoop(fast->get(), patterns, options);

  QueryContext ctx;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ctx.cancel.Cancel();
  });
  auto outcomes = (*slow)->MatchDictionary(ctx, patterns, options);
  canceller.join();
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), patterns.size());

  // The dictionary is processed in sorted-unique order, so the cancelled
  // items are not a contiguous tail of the ORIGINAL order; the contract is
  // per item: either Cancelled, or the full correct answer.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < outcomes->size(); ++i) {
    const DictOutcome& outcome = (*outcomes)[i];
    if (outcome.status.IsCancelled()) {
      ++cancelled;
      EXPECT_EQ(outcome.count, 0u);
      EXPECT_TRUE(outcome.offsets.empty());
      continue;
    }
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.count, expected[i].count) << "item " << i;
    EXPECT_EQ(outcome.offsets, expected[i].offsets) << "item " << i;
  }
  EXPECT_GT(cancelled, 0u) << "cancellation landed too late to observe";
  EXPECT_GE((*slow)->serving().cancelled, 1u);

  // The engine must be fully reusable afterwards (lease returned, no state
  // left behind): a fresh context-free run answers everything.
  auto again = (*slow)->MatchDictionary(patterns, options);
  ASSERT_TRUE(again.ok());
  ExpectSameOutcomes(*again, expected, patterns);
}

TEST(DictMatcherConcurrencyTest, ParallelDictionariesReturnIdenticalOutcomes) {
  MemEnv env;
  const std::string text = testing::RepetitiveText(Alphabet::Dna(), 8000, 13);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  EraBuilder builder(SmallBuildOptions(&env, "/idx", SubTreeFormat::kPacked));
  ASSERT_TRUE(builder.Build(*info).ok());
  QueryEngineOptions engine_options;
  engine_options.cache.budget_bytes = 128 << 10;  // keep evictions happening
  auto engine = QueryEngine::Open(&env, "/idx", engine_options);
  ASSERT_TRUE(engine.ok());

  DictWorkloadOptions workload;
  workload.num_patterns = 400;
  workload.seed = 21;
  const std::vector<std::string> patterns =
      SampleDictionaryWorkload(text, workload);
  DictMatchOptions locate_mode;
  locate_mode.locate = true;
  locate_mode.locate_limit = 9;
  const std::vector<DictOutcome> expected_counts =
      PerPatternLoop(engine->get(), patterns, {});
  const std::vector<DictOutcome> expected_hits =
      PerPatternLoop(engine->get(), patterns, locate_mode);

  constexpr unsigned kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Status> failures(kThreads, Status::OK());
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const bool locate = t % 2 == 1;
      auto outcomes = (*engine)->MatchDictionary(
          patterns, locate ? locate_mode : DictMatchOptions{});
      if (!outcomes.ok()) {
        failures[t] = outcomes.status();
        return;
      }
      const std::vector<DictOutcome>& expected =
          locate ? expected_hits : expected_counts;
      for (std::size_t i = 0; i < outcomes->size(); ++i) {
        if ((*outcomes)[i].count != expected[i].count ||
            (*outcomes)[i].offsets != expected[i].offsets ||
            !(*outcomes)[i].status.ok()) {
          failures[t] = Status::Corruption("thread saw divergent outcome");
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].ok()) << "thread " << t << ": "
                                  << failures[t].ToString();
  }
}

}  // namespace
}  // namespace era
