#include "sa/sais.h"

#include <gtest/gtest.h>

#include "sa/lcp.h"
#include "tests/test_util.h"

namespace era {
namespace {

TEST(SaisTest, KnownSmallExample) {
  // banana with our terminal: suffixes of "banana~".
  std::string text = "banana~";
  auto sa = BuildSuffixArray(text);
  // Sorted suffixes: anana~(1), ana~(3), a~(5), banana~(0), nana~(2),
  // na~(4), ~(6)  — terminal sorts last.
  std::vector<uint64_t> expected = {1, 3, 5, 0, 2, 4, 6};
  EXPECT_EQ(sa, expected);
}

TEST(SaisTest, SingleCharacter) {
  auto sa = BuildSuffixArray("~");
  EXPECT_EQ(sa, (std::vector<uint64_t>{0}));
}

TEST(SaisTest, AllSameSymbol) {
  std::string text = "aaaaaa~";
  auto sa = BuildSuffixArray(text);
  // Shorter run of a's sorts first? "a~" vs "aa~": compare position 1:
  // '~' > 'a', so "aa~" < "a~": longest suffix of a's sorts first.
  std::vector<uint64_t> expected = {0, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(sa, expected);
}

struct SaCase {
  std::string name;
  Alphabet alphabet;
  std::size_t length;
  uint64_t seed;
  bool repetitive;
};

class SaisMatchesNaive : public ::testing::TestWithParam<SaCase> {};

TEST_P(SaisMatchesNaive, Agree) {
  const auto& param = GetParam();
  std::string text =
      param.repetitive
          ? testing::RepetitiveText(param.alphabet, param.length, param.seed)
          : testing::RandomText(param.alphabet, param.length, param.seed);
  EXPECT_EQ(BuildSuffixArray(text), BuildSuffixArrayNaive(text));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SaisMatchesNaive,
    ::testing::Values(
        SaCase{"dna_tiny", Alphabet::Dna(), 16, 1, false},
        SaCase{"dna_small", Alphabet::Dna(), 500, 2, false},
        SaCase{"dna_medium", Alphabet::Dna(), 5000, 3, false},
        SaCase{"dna_repetitive", Alphabet::Dna(), 2000, 4, true},
        SaCase{"protein", Alphabet::Protein(), 3000, 5, false},
        SaCase{"protein_repetitive", Alphabet::Protein(), 1500, 6, true},
        SaCase{"english", Alphabet::English(), 3000, 7, false},
        SaCase{"english_repetitive", Alphabet::English(), 1500, 8, true},
        SaCase{"binary_alphabet", *Alphabet::Create("ab"), 4000, 9, false},
        SaCase{"binary_repetitive", *Alphabet::Create("ab"), 4000, 10, true},
        SaCase{"unary", *Alphabet::Create("a"), 300, 11, false}),
    [](const auto& info) { return info.param.name; });

class LcpMatchesDirect : public ::testing::TestWithParam<SaCase> {};

TEST_P(LcpMatchesDirect, Agree) {
  const auto& param = GetParam();
  std::string text =
      param.repetitive
          ? testing::RepetitiveText(param.alphabet, param.length, param.seed)
          : testing::RandomText(param.alphabet, param.length, param.seed);
  auto sa = BuildSuffixArray(text);
  auto lcp = BuildLcpArray(text, sa);
  ASSERT_EQ(lcp.size(), sa.size());
  EXPECT_EQ(lcp[0], 0u);
  for (std::size_t i = 1; i < sa.size(); ++i) {
    EXPECT_EQ(lcp[i], LcpOfSuffixes(text, sa[i - 1], sa[i])) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LcpMatchesDirect,
    ::testing::Values(
        SaCase{"dna", Alphabet::Dna(), 2000, 21, false},
        SaCase{"dna_repetitive", Alphabet::Dna(), 2000, 22, true},
        SaCase{"protein", Alphabet::Protein(), 2000, 23, false},
        SaCase{"english", Alphabet::English(), 2000, 24, false}),
    [](const auto& info) { return info.param.name; });

TEST(SaisTest, LargeDnaAgainstNaive) {
  std::string text = testing::RandomText(Alphabet::Dna(), 50000, 99);
  EXPECT_EQ(BuildSuffixArray(text), BuildSuffixArrayNaive(text));
}

}  // namespace
}  // namespace era
