// Equivalence and allocation-freedom of the rewritten SubTreePrepare kernel.
//
// The radix/arena/batched-fetch GroupPreparer must produce byte-identical
// (L, B) output to BaselineGroupPreparer (the checked-in pre-refactor code
// path) across alphabets, prefix counts, and range policies — and its
// scratch arena must stop allocating after the first round.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "era/prepare_scratch.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "era/subtree_prepare_baseline.h"
#include "io/mem_env.h"
#include "tests/test_util.h"

namespace era {
namespace {

/// Draws `count` distinct k-mers that occur in `text` (appearance order).
std::vector<std::string> SamplePrefixes(const std::string& text,
                                        std::size_t k, std::size_t count,
                                        uint64_t seed) {
  std::set<std::string> pool;
  for (std::size_t i = 0; i + k < text.size(); ++i) {
    pool.insert(text.substr(i, k));
  }
  std::vector<std::string> all(pool.begin(), pool.end());
  std::mt19937_64 rng(seed);
  std::shuffle(all.begin(), all.end(), rng);
  all.resize(std::min(count, all.size()));
  return all;
}

struct PrepareCase {
  Alphabet alphabet;
  std::size_t text_len;
  std::size_t prefix_len;
  std::size_t prefix_count;
  RangePolicy policy;
  bool repetitive;
  uint64_t seed;
};

void RunEquivalenceCase(const PrepareCase& c) {
  std::string text =
      c.repetitive
          ? testing::RepetitiveText(c.alphabet, c.text_len, c.seed)
          : testing::RandomText(c.alphabet, c.text_len, c.seed);
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/s", text).ok());

  VirtualTree group;
  for (const std::string& p :
       SamplePrefixes(text, c.prefix_len, c.prefix_count, c.seed * 7 + 1)) {
    group.prefixes.push_back({p, 0});
  }
  ASSERT_FALSE(group.prefixes.empty());

  IoStats new_io, old_io;
  auto new_reader = OpenStringReader(&env, "/s", {}, &new_io);
  auto old_reader = OpenStringReader(&env, "/s", {}, &old_io);
  ASSERT_TRUE(new_reader.ok());
  ASSERT_TRUE(old_reader.ok());

  GroupPreparer rewritten(group, c.policy, new_reader->get(), text.size());
  BaselineGroupPreparer reference(group, c.policy, old_reader->get(),
                                  text.size());
  ASSERT_TRUE(rewritten.Run().ok());
  ASSERT_TRUE(reference.Run().ok());

  ASSERT_EQ(rewritten.results().size(), reference.results().size());
  EXPECT_EQ(rewritten.stats().rounds, reference.stats().rounds);
  EXPECT_EQ(rewritten.stats().symbols_fetched,
            reference.stats().symbols_fetched);
  for (std::size_t i = 0; i < rewritten.results().size(); ++i) {
    const PreparedSubTree& got = rewritten.results()[i];
    const PreparedSubTree& want = reference.results()[i];
    EXPECT_EQ(got.prefix, want.prefix);
    ASSERT_EQ(got.leaves, want.leaves) << "prefix " << want.prefix;
    ASSERT_EQ(got.branches.size(), want.branches.size());
    for (std::size_t b = 0; b < got.branches.size(); ++b) {
      EXPECT_EQ(got.branches[b].defined, want.branches[b].defined)
          << want.prefix << " branch " << b;
      EXPECT_EQ(got.branches[b].offset, want.branches[b].offset)
          << want.prefix << " branch " << b;
      EXPECT_EQ(got.branches[b].c1, want.branches[b].c1)
          << want.prefix << " branch " << b;
      EXPECT_EQ(got.branches[b].c2, want.branches[b].c2)
          << want.prefix << " branch " << b;
    }
  }
}

TEST(PrepareKernelEquivalence, DnaSinglePrefixFixedRange) {
  RunEquivalenceCase({Alphabet::Dna(), 4000, 2, 1, RangePolicy::Fixed(4),
                      /*repetitive=*/false, 11});
}

TEST(PrepareKernelEquivalence, DnaManyPrefixesElastic) {
  RunEquivalenceCase({Alphabet::Dna(), 20000, 2, 16,
                      RangePolicy::Elastic(64 << 10, 4, 512),
                      /*repetitive=*/false, 12});
}

TEST(PrepareKernelEquivalence, DnaRepetitiveDeepLcps) {
  // Long shared runs force full-key radix ties and the deep re-extraction
  // path (and, in the baseline, the memcmp fallback).
  RunEquivalenceCase({Alphabet::Dna(), 15000, 3, 24,
                      RangePolicy::Elastic(32 << 10, 4, 256),
                      /*repetitive=*/true, 13});
}

TEST(PrepareKernelEquivalence, ProteinWidePrefixSet) {
  RunEquivalenceCase({Alphabet::Protein(), 25000, 1, 20,
                      RangePolicy::Elastic(64 << 10, 8, 1024),
                      /*repetitive=*/false, 14});
}

TEST(PrepareKernelEquivalence, ProteinFixedWideRange) {
  RunEquivalenceCase({Alphabet::Protein(), 12000, 2, 64,
                      RangePolicy::Fixed(32), /*repetitive=*/false, 15});
}

TEST(PrepareKernelEquivalence, EnglishMixedFixedNarrowRange) {
  // range < 8: every key is zero-padded and areas resolve via the short-key
  // paths.
  RunEquivalenceCase({Alphabet::English(), 18000, 2, 32,
                      RangePolicy::Fixed(3), /*repetitive=*/false, 16});
}

TEST(PrepareKernelEquivalence, RandomizedSweep) {
  std::mt19937_64 rng(991);
  const Alphabet alphabets[] = {Alphabet::Dna(), Alphabet::Protein()};
  for (int round = 0; round < 12; ++round) {
    RangePolicy policy =
        rng() % 2 == 0
            ? RangePolicy::Fixed(2 + rng() % 40)
            : RangePolicy::Elastic(8ull << (10 + rng() % 4), 4,
                                   4u << (rng() % 8));
    PrepareCase c{alphabets[round % 2],
                  2000 + rng() % 12000,
                  1 + rng() % 3,
                  1 + rng() % 64,
                  policy,
                  (rng() % 3) == 0,
                  rng()};
    SCOPED_TRACE("sweep round " + std::to_string(round));
    RunEquivalenceCase(c);
  }
}

TEST(PrepareScratchTest, SteadyStateRoundsDoNotAllocate) {
  PrepareScratch scratch;
  scratch.BeginRound(/*total_active=*/5000, /*range=*/16, /*max_area=*/5000);
  uint64_t after_first = scratch.allocations();
  EXPECT_GT(after_first, 0u);
  // Re-laying out rounds at or below the high-water mark is free.
  for (int round = 0; round < 50; ++round) {
    scratch.BeginRound(5000 - round * 50, 16, 4000);
  }
  EXPECT_EQ(scratch.allocations(), after_first);
  // Growing any dimension allocates again...
  scratch.BeginRound(20000, 16, 8000);
  EXPECT_GT(scratch.allocations(), after_first);
  uint64_t after_growth = scratch.allocations();
  // ...and the new high-water mark is again free to reuse.
  scratch.BeginRound(20000, 16, 8000);
  EXPECT_EQ(scratch.allocations(), after_growth);
}

TEST(PrepareScratchTest, PreparerStopsAllocatingAfterFirstRound) {
  // The acceptance proxy for "zero vector constructions in RunRound steady
  // state": the elastic range keeps active*range bounded by the R budget,
  // which round 2 reaches (round 1's product can sit slightly below it, so
  // the high-water mark may still move once); from round 2 on the arena
  // counter must freeze.
  // Repetitive text keeps areas alive for many rounds (deep LCPs).
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 60000, 77);
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/s", text).ok());
  VirtualTree group;
  for (const std::string& p : SamplePrefixes(text, 2, 8, 5)) {
    group.prefixes.push_back({p, 0});
  }
  IoStats io;
  auto reader = OpenStringReader(&env, "/s", {}, &io);
  ASSERT_TRUE(reader.ok());
  GroupPreparer preparer(group, RangePolicy::Elastic(64 << 10, 4, 256),
                         reader->get(), text.size());
  std::vector<uint64_t> allocations_per_round;
  preparer.SetObserver([&](const PrepareSnapshot&) {
    allocations_per_round.push_back(preparer.scratch().allocations());
  });
  ASSERT_TRUE(preparer.Run().ok());
  ASSERT_GE(allocations_per_round.size(), 3u);
  for (std::size_t r = 2; r < allocations_per_round.size(); ++r) {
    EXPECT_EQ(allocations_per_round[r], allocations_per_round[1])
        << "round " << r + 1 << " allocated";
  }
}

}  // namespace
}  // namespace era
