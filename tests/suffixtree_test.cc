#include <gtest/gtest.h>

#include "io/mem_env.h"
#include "suffixtree/canonical.h"
#include "suffixtree/serializer.h"
#include "suffixtree/tree_buffer.h"
#include "suffixtree/tree_index.h"
#include "suffixtree/trie.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"
#include "ukkonen/ukkonen.h"

namespace era {
namespace {

TEST(TreeNodeTest, LayoutIs32Bytes) {
  EXPECT_EQ(sizeof(TreeNode), 32u);
  TreeNode node;
  EXPECT_FALSE(node.IsLeaf());
  node.leaf_id = 5;
  EXPECT_TRUE(node.IsLeaf());
}

TEST(TreeBufferTest, RootAlwaysPresent) {
  TreeBuffer tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.node(0).first_child, kNilNode);
}

TEST(TreeBufferTest, AppendChildLastMaintainsOrder) {
  TreeBuffer tree;
  uint32_t a = tree.AddNode();
  uint32_t b = tree.AddNode();
  uint32_t c = tree.AddNode();
  tree.AppendChildLast(0, a);
  tree.AppendChildLast(0, b);
  tree.AppendChildLast(0, c);
  EXPECT_EQ(tree.node(0).first_child, a);
  EXPECT_EQ(tree.node(a).next_sibling, b);
  EXPECT_EQ(tree.node(b).next_sibling, c);
  EXPECT_EQ(tree.node(c).next_sibling, kNilNode);
  EXPECT_EQ(tree.CountChildren(0), 3u);
}

TEST(CanonicalTest, HandBuiltTree) {
  // Tree for "aba~": suffixes aba~(0), a~(2), ba~(1), ~(3).
  // Sorted: aba~ < a~ (b < ~), ba~, ~.
  std::string text = "aba~";
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  SaLcp canon = TreeToSaLcp(*tree);
  EXPECT_EQ(canon.sa, (std::vector<uint64_t>{0, 2, 1, 3}));
  EXPECT_EQ(canon.lcp, (std::vector<uint64_t>{1, 0, 0}));
}

TEST(SerializerTest, RoundTrip) {
  std::string text = testing::RandomText(Alphabet::Dna(), 300, 5);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());

  MemEnv env;
  IoStats stats;
  ASSERT_TRUE(WriteSubTree(&env, "/t.bin", "AC", *tree, &stats).ok());
  EXPECT_GT(stats.bytes_written, 0u);

  TreeBuffer back;
  std::string prefix;
  ASSERT_TRUE(ReadSubTree(&env, "/t.bin", &back, &prefix, &stats).ok());
  EXPECT_EQ(prefix, "AC");
  EXPECT_EQ(back.size(), tree->size());
  EXPECT_EQ(TreeToSaLcp(back), TreeToSaLcp(*tree));
}

TEST(SerializerTest, DetectsCorruption) {
  std::string text = testing::RandomText(Alphabet::Dna(), 100, 6);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());

  MemEnv env;
  ASSERT_TRUE(WriteSubTree(&env, "/t.bin", "A", *tree, nullptr).ok());
  std::string raw;
  ASSERT_TRUE(env.ReadFileToString("/t.bin", &raw).ok());

  // Flip one byte in the node array (past the 32-byte header + 1-byte
  // prefix).
  std::string corrupted = raw;
  corrupted[40] = static_cast<char>(corrupted[40] ^ 0x40);
  ASSERT_TRUE(env.WriteFile("/bad.bin", corrupted).ok());
  TreeBuffer out;
  Status s = ReadSubTree(&env, "/bad.bin", &out, nullptr, nullptr);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Truncation.
  ASSERT_TRUE(env.WriteFile("/short.bin", raw.substr(0, raw.size() / 2)).ok());
  s = ReadSubTree(&env, "/short.bin", &out, nullptr, nullptr);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Bad magic.
  std::string bad_magic = raw;
  bad_magic[0] = 'X';
  ASSERT_TRUE(env.WriteFile("/magic.bin", bad_magic).ok());
  s = ReadSubTree(&env, "/magic.bin", &out, nullptr, nullptr);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(CountedTreeTest, ConversionPreservesStructureAndCounts) {
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 600, 9);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());

  auto counted = BuildCountedTree(*tree);
  ASSERT_TRUE(counted.ok()) << counted.status().ToString();
  EXPECT_EQ(counted->size(), tree->size());
  EXPECT_EQ(counted->LeafCount(), CountLeaves(*tree));
  EXPECT_EQ(TreeToSaLcp(*counted), TreeToSaLcp(*tree));
  // Root slot 0, no incoming edge; every internal node's child block sits
  // strictly after it and the stored counts aggregate correctly.
  EXPECT_EQ(counted->node(0).edge_len, 0u);
  for (uint32_t i = 0; i < counted->size(); ++i) {
    const CountedNode& n = counted->node(i);
    if (n.IsLeaf()) continue;
    EXPECT_GT(n.children_begin, i);
    uint64_t total = 0;
    for (uint32_t c = 0; c < n.num_children; ++c) {
      total += counted->node(n.children_begin + c).LeafCount();
    }
    EXPECT_EQ(total, n.leaf_or_count);
  }
  EXPECT_TRUE(ValidateSubTree(*counted, text, "").ok());

  // Round-trip back to the linked form.
  auto back = LinkedFromCounted(*counted);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(TreeToSaLcp(*back), TreeToSaLcp(*tree));
  EXPECT_TRUE(ValidateSubTree(*back, text, "").ok());
}

TEST(CountedTreeTest, ConversionRejectsMalformedTrees) {
  // Cycle through first_child.
  TreeBuffer cyclic;
  uint32_t a = cyclic.AddNode();
  cyclic.node(0).first_child = a;
  cyclic.node(a).leaf_id = kNoLeaf;
  cyclic.node(a).first_child = 0;
  EXPECT_FALSE(BuildCountedTree(cyclic).ok());

  // Childless internal node (includes the degenerate root-only arena).
  TreeBuffer rootonly;
  EXPECT_FALSE(BuildCountedTree(rootonly).ok());

  // Orphan: node never linked under the root.
  TreeBuffer orphan;
  uint32_t leaf = orphan.AddNode();
  orphan.node(leaf).leaf_id = 0;
  orphan.node(leaf).edge_len = 1;
  orphan.node(0).first_child = leaf;
  orphan.AddNode();  // never linked
  EXPECT_FALSE(BuildCountedTree(orphan).ok());
}

TEST(CountedTreeTest, LayoutCheckRejectsInterleavedDescendantBlocks) {
  // A CRC-valid v2 array can pass per-node bounds and count-consistency
  // checks while two subtrees' descendant ranges interleave — which would
  // make the linear Locate scan surface another subtree's leaves. The
  // canonical-layout check must reject it (regression for the load check).
  //
  //   slot0 root   cb=1 #2 Σ=3
  //   slot1 inner  cb=3 #1 Σ=2      (its descendants should be 3..4)
  //   slot2 inner  cb=4 #1 Σ=1
  //   slot3 inner  cb=5 #2 Σ=2      (node1's grandchildren pushed to 5,6)
  //   slot4 leaf                    (node2's leaf inside node1's range)
  //   slot5 leaf, slot6 leaf
  CountedTree bad;
  auto& nodes = bad.mutable_nodes();
  nodes.resize(7);
  auto internal = [&](uint32_t i, uint32_t cb, uint32_t k, uint64_t count) {
    nodes[i].children_begin = cb;
    nodes[i].num_children = k;
    nodes[i].leaf_or_count = count;
    nodes[i].edge_len = i == 0 ? 0 : 1;
  };
  auto leaf = [&](uint32_t i, uint64_t id) {
    nodes[i].leaf_or_count = id;
    nodes[i].edge_len = 1;
  };
  internal(0, 1, 2, 3);
  internal(1, 3, 1, 2);
  internal(2, 4, 1, 1);
  internal(3, 5, 2, 2);
  leaf(4, 40);
  leaf(5, 50);
  leaf(6, 60);
  Status s = ValidateCountedLayout(bad);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Swapped (non-canonical but non-interleaved) block order is rejected
  // too: the format pins the exact writer layout.
  CountedTree swapped;
  auto& sn = swapped.mutable_nodes();
  sn.resize(7);
  sn[0].children_begin = 1;
  sn[0].num_children = 2;
  sn[0].leaf_or_count = 4;
  for (uint32_t i : {1u, 2u}) {
    sn[i].edge_len = 1;
    sn[i].num_children = 2;
    sn[i].leaf_or_count = 2;
  }
  sn[1].children_begin = 5;  // canonical: 3
  sn[2].children_begin = 3;  // canonical: 5
  for (uint32_t i = 3; i < 7; ++i) {
    sn[i].edge_len = 1;
    sn[i].leaf_or_count = i;
  }
  EXPECT_TRUE(ValidateCountedLayout(swapped).IsCorruption());
}

TEST(TreeIndexCacheTest, LruEvictsWithinBudgetAndPinsInFlight) {
  MemEnv env;
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 8000, 31);

  // A hand-assembled index (dir is the MemEnv root): the same Ukkonen tree
  // serialized under eight distinct ids.
  TreeIndex index;
  TextInfo info{"/text", static_cast<uint64_t>(text.size()), Alphabet::Dna()};
  ASSERT_TRUE(env.WriteFile("/text", text).ok());
  index.SetText(info);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 8; ++i) {
    std::string name = "st_" + std::to_string(i);
    ASSERT_TRUE(WriteSubTree(&env, "/" + name, "A", *tree, nullptr).ok());
    index.AddSubTree("A", CountLeaves(*tree), name);
  }
  // The budget math must use the actual serving charge (the packed blob for
  // the default v3 format), not the inflated counted size.
  ServedSubTree served;
  ASSERT_TRUE(ReadServedSubTree(&env, "/st_0", &served, nullptr, nullptr).ok());
  const uint64_t tree_bytes = served.MemoryBytes();

  // Single shard with room for ~2 trees: opening 8 distinct ids must evict.
  TreeCacheOptions options;
  options.shards = 1;
  options.budget_bytes = 2 * tree_bytes + tree_bytes / 2;
  index.ConfigureCache(options);

  IoStats stats;
  std::shared_ptr<const ServedSubTree> pinned;
  for (uint32_t id = 0; id < 8; ++id) {
    auto opened = index.OpenSubTree(&env, id, &stats);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    if (id == 0) pinned = *opened;
  }
  TreeIndex::CacheSnapshot snap = index.CacheStats();
  EXPECT_EQ(snap.misses, 8u);
  EXPECT_GT(snap.evictions, 0u);
  EXPECT_LE(snap.resident_bytes, options.budget_bytes);
  EXPECT_EQ(stats.cache_misses, 8u);
  EXPECT_EQ(stats.cache_evicted_bytes, snap.evicted_bytes);

  // Id 0 was evicted long ago, but the pinned shared_ptr stays valid.
  EXPECT_EQ(pinned->LeafCount(), CountLeaves(*tree));

  // Re-opening a resident id is a hit; re-opening id 0 is a miss again.
  auto hit = index.OpenSubTree(&env, 7, &stats);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(stats.cache_hits, 1u);
  auto miss = index.OpenSubTree(&env, 0, &stats);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(stats.cache_misses, 9u);

  // LRU order: after touching id 7, filling past the budget evicts older
  // ids first, never the most recently used one.
  EXPECT_TRUE(index.OpenSubTree(&env, 7, nullptr).ok());
  snap = index.CacheStats();
  uint64_t hits_before = snap.hits;
  EXPECT_TRUE(index.OpenSubTree(&env, 7, nullptr).ok());
  EXPECT_EQ(index.CacheStats().hits, hits_before + 1);

  // An explicit sweep empties residency without counting as LRU eviction.
  uint64_t evictions_before = index.CacheStats().evictions;
  index.EvictCache();
  snap = index.CacheStats();
  EXPECT_EQ(snap.resident_trees, 0u);
  EXPECT_EQ(snap.resident_bytes, 0u);
  EXPECT_EQ(snap.evictions, evictions_before);
}

TEST(TrieTest, InsertAndDescend) {
  PrefixTrie trie;
  ASSERT_TRUE(trie.InsertSubTree("TGA", 0, 10).ok());
  ASSERT_TRUE(trie.InsertSubTree("TGC", 1, 20).ok());
  ASSERT_TRUE(trie.InsertSubTree("A", 2, 5).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("TG", 100).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("", 999).ok());

  auto r = trie.Descend("TGAXX");
  EXPECT_EQ(r.matched, 3u);
  EXPECT_FALSE(r.pattern_exhausted);
  EXPECT_EQ(trie.node(r.node).subtree_id, 0);

  r = trie.Descend("T");
  EXPECT_EQ(r.matched, 1u);
  EXPECT_TRUE(r.pattern_exhausted);

  r = trie.Descend("G");
  EXPECT_EQ(r.matched, 0u);
  EXPECT_FALSE(r.pattern_exhausted);
}

TEST(TrieTest, RejectsConflicts) {
  PrefixTrie trie;
  ASSERT_TRUE(trie.InsertSubTree("AB", 0, 1).ok());
  EXPECT_FALSE(trie.InsertSubTree("AB", 1, 1).ok());   // duplicate
  EXPECT_FALSE(trie.InsertSubTree("", 2, 1).ok());     // empty
  ASSERT_TRUE(trie.InsertTerminalLeaf("A", 5).ok());
  EXPECT_FALSE(trie.InsertTerminalLeaf("A", 6).ok());  // duplicate leaf
}

TEST(TrieTest, TotalFrequencyAggregates) {
  PrefixTrie trie;
  ASSERT_TRUE(trie.InsertSubTree("AA", 0, 10).ok());
  ASSERT_TRUE(trie.InsertSubTree("AB", 1, 20).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("A", 7).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("", 99).ok());
  EXPECT_EQ(trie.TotalFrequency(0), 32u);  // 10 + 20 + 2 terminal leaves
}

TEST(TrieTest, CollectInOrderIsLexicographic) {
  PrefixTrie trie;
  ASSERT_TRUE(trie.InsertSubTree("TGG", 0, 1).ok());
  ASSERT_TRUE(trie.InsertSubTree("TGA", 1, 1).ok());
  ASSERT_TRUE(trie.InsertSubTree("A", 2, 1).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("TG", 50).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("", 99).ok());

  std::vector<int32_t> ids;
  std::vector<uint64_t> leaves;
  trie.CollectInOrder(0, &ids, &leaves);
  // Lexicographic: A(2), TGA(1), TGG(0); terminal leaves: TG~ then ~...
  EXPECT_EQ(ids, (std::vector<int32_t>{2, 1, 0}));
  // "TG~" < "~" because 'T' < '~'.
  EXPECT_EQ(leaves, (std::vector<uint64_t>{50, 99}));
}

TEST(TrieTest, SerializeDeserializeRoundTrip) {
  PrefixTrie trie;
  ASSERT_TRUE(trie.InsertSubTree("ACG", 0, 11).ok());
  ASSERT_TRUE(trie.InsertSubTree("ACT", 1, 22).ok());
  ASSERT_TRUE(trie.InsertSubTree("G", 2, 33).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("AC", 5).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("", 44).ok());

  auto back = PrefixTrie::Deserialize(trie.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), trie.size());
  EXPECT_EQ(back->TotalFrequency(0), trie.TotalFrequency(0));

  std::vector<int32_t> ids1, ids2;
  std::vector<uint64_t> l1, l2;
  trie.CollectInOrder(0, &ids1, &l1);
  back->CollectInOrder(0, &ids2, &l2);
  EXPECT_EQ(ids1, ids2);
  EXPECT_EQ(l1, l2);

  auto r = back->Descend("ACT");
  EXPECT_TRUE(r.pattern_exhausted);
  EXPECT_EQ(back->node(r.node).subtree_id, 1);
}

TEST(TrieTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(PrefixTrie::Deserialize("").ok());
  EXPECT_FALSE(PrefixTrie::Deserialize("abc").ok());
  std::string valid = PrefixTrie().Serialize();
  EXPECT_FALSE(
      PrefixTrie::Deserialize(valid + "trailing garbage").ok());
}

TEST(TreeIndexTest, SaveLoadRoundTrip) {
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 200, 8);

  TreeIndex index;
  TextInfo info{"/text", static_cast<uint64_t>(text.size()), Alphabet::Dna()};
  index.SetText(info);

  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(env.CreateDir("/idx").ok());
  ASSERT_TRUE(WriteSubTree(&env, "/idx/st_0", "A", *tree, nullptr).ok());
  uint32_t id = index.AddSubTree("A", 42, "st_0");
  ASSERT_TRUE(index.mutable_trie().InsertSubTree("A", id, 42).ok());
  ASSERT_TRUE(index.Save(&env, "/idx").ok());

  auto loaded = TreeIndex::Load(&env, "/idx");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->text().length, text.size());
  EXPECT_EQ(loaded->text().alphabet.symbols(), "ACGT");
  ASSERT_EQ(loaded->subtrees().size(), 1u);
  EXPECT_EQ(loaded->subtrees()[0].prefix, "A");
  EXPECT_EQ(loaded->subtrees()[0].frequency, 42u);

  IoStats stats;
  auto sub = loaded->OpenSubTree(&env, 0, &stats);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ((*sub)->size(), tree->size());
  EXPECT_GT(stats.bytes_read, 0u);

  // Second open comes from cache: stats unchanged.
  uint64_t bytes = stats.bytes_read;
  auto sub2 = loaded->OpenSubTree(&env, 0, &stats);
  ASSERT_TRUE(sub2.ok());
  EXPECT_EQ(stats.bytes_read, bytes);

  loaded->EvictCache();
  auto sub3 = loaded->OpenSubTree(&env, 0, &stats);
  ASSERT_TRUE(sub3.ok());
  EXPECT_GT(stats.bytes_read, bytes);
}

TEST(TreeIndexTest, LoadRejectsMissingOrBadManifest) {
  MemEnv env;
  EXPECT_FALSE(TreeIndex::Load(&env, "/nope").ok());
  ASSERT_TRUE(env.WriteFile("/bad/MANIFEST", "format: other-thing\n").ok());
  EXPECT_FALSE(TreeIndex::Load(&env, "/bad").ok());
}

TEST(ValidatorTest, DetectsMutations) {
  std::string text = testing::RandomText(Alphabet::Dna(), 300, 15);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(ValidateSubTree(*tree, text, "").ok());

  // Swap two leaves' ids: breaks suffix/path correspondence.
  TreeBuffer broken = *tree;
  std::vector<uint32_t> leaf_nodes;
  for (uint32_t i = 0; i < broken.size(); ++i) {
    if (broken.node(i).IsLeaf()) leaf_nodes.push_back(i);
  }
  ASSERT_GE(leaf_nodes.size(), 2u);
  std::swap(broken.node(leaf_nodes[0]).leaf_id,
            broken.node(leaf_nodes[1]).leaf_id);
  EXPECT_FALSE(ValidateSubTree(broken, text, "").ok());

  // Out-of-range edge.
  TreeBuffer broken2 = *tree;
  broken2.node(leaf_nodes[0]).edge_start = text.size() + 100;
  EXPECT_FALSE(ValidateSubTree(broken2, text, "").ok());

  // Cycle: point a child pointer back at the root.
  TreeBuffer broken3 = *tree;
  broken3.node(leaf_nodes[0]).leaf_id = kNoLeaf;
  broken3.node(leaf_nodes[0]).first_child = 0;
  EXPECT_FALSE(ValidateSubTree(broken3, text, "").ok());
}

}  // namespace
}  // namespace era
