#include <gtest/gtest.h>

#include "io/mem_env.h"
#include "suffixtree/canonical.h"
#include "suffixtree/serializer.h"
#include "suffixtree/tree_buffer.h"
#include "suffixtree/tree_index.h"
#include "suffixtree/trie.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"
#include "ukkonen/ukkonen.h"

namespace era {
namespace {

TEST(TreeNodeTest, LayoutIs32Bytes) {
  EXPECT_EQ(sizeof(TreeNode), 32u);
  TreeNode node;
  EXPECT_FALSE(node.IsLeaf());
  node.leaf_id = 5;
  EXPECT_TRUE(node.IsLeaf());
}

TEST(TreeBufferTest, RootAlwaysPresent) {
  TreeBuffer tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.node(0).first_child, kNilNode);
}

TEST(TreeBufferTest, AppendChildLastMaintainsOrder) {
  TreeBuffer tree;
  uint32_t a = tree.AddNode();
  uint32_t b = tree.AddNode();
  uint32_t c = tree.AddNode();
  tree.AppendChildLast(0, a);
  tree.AppendChildLast(0, b);
  tree.AppendChildLast(0, c);
  EXPECT_EQ(tree.node(0).first_child, a);
  EXPECT_EQ(tree.node(a).next_sibling, b);
  EXPECT_EQ(tree.node(b).next_sibling, c);
  EXPECT_EQ(tree.node(c).next_sibling, kNilNode);
  EXPECT_EQ(tree.CountChildren(0), 3u);
}

TEST(CanonicalTest, HandBuiltTree) {
  // Tree for "aba~": suffixes aba~(0), a~(2), ba~(1), ~(3).
  // Sorted: aba~ < a~ (b < ~), ba~, ~.
  std::string text = "aba~";
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  SaLcp canon = TreeToSaLcp(*tree);
  EXPECT_EQ(canon.sa, (std::vector<uint64_t>{0, 2, 1, 3}));
  EXPECT_EQ(canon.lcp, (std::vector<uint64_t>{1, 0, 0}));
}

TEST(SerializerTest, RoundTrip) {
  std::string text = testing::RandomText(Alphabet::Dna(), 300, 5);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());

  MemEnv env;
  IoStats stats;
  ASSERT_TRUE(WriteSubTree(&env, "/t.bin", "AC", *tree, &stats).ok());
  EXPECT_GT(stats.bytes_written, 0u);

  TreeBuffer back;
  std::string prefix;
  ASSERT_TRUE(ReadSubTree(&env, "/t.bin", &back, &prefix, &stats).ok());
  EXPECT_EQ(prefix, "AC");
  EXPECT_EQ(back.size(), tree->size());
  EXPECT_EQ(TreeToSaLcp(back), TreeToSaLcp(*tree));
}

TEST(SerializerTest, DetectsCorruption) {
  std::string text = testing::RandomText(Alphabet::Dna(), 100, 6);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());

  MemEnv env;
  ASSERT_TRUE(WriteSubTree(&env, "/t.bin", "A", *tree, nullptr).ok());
  std::string raw;
  ASSERT_TRUE(env.ReadFileToString("/t.bin", &raw).ok());

  // Flip one byte in the node array (past the 32-byte header + 1-byte
  // prefix).
  std::string corrupted = raw;
  corrupted[40] = static_cast<char>(corrupted[40] ^ 0x40);
  ASSERT_TRUE(env.WriteFile("/bad.bin", corrupted).ok());
  TreeBuffer out;
  Status s = ReadSubTree(&env, "/bad.bin", &out, nullptr, nullptr);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Truncation.
  ASSERT_TRUE(env.WriteFile("/short.bin", raw.substr(0, raw.size() / 2)).ok());
  s = ReadSubTree(&env, "/short.bin", &out, nullptr, nullptr);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Bad magic.
  std::string bad_magic = raw;
  bad_magic[0] = 'X';
  ASSERT_TRUE(env.WriteFile("/magic.bin", bad_magic).ok());
  s = ReadSubTree(&env, "/magic.bin", &out, nullptr, nullptr);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(TrieTest, InsertAndDescend) {
  PrefixTrie trie;
  ASSERT_TRUE(trie.InsertSubTree("TGA", 0, 10).ok());
  ASSERT_TRUE(trie.InsertSubTree("TGC", 1, 20).ok());
  ASSERT_TRUE(trie.InsertSubTree("A", 2, 5).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("TG", 100).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("", 999).ok());

  auto r = trie.Descend("TGAXX");
  EXPECT_EQ(r.matched, 3u);
  EXPECT_FALSE(r.pattern_exhausted);
  EXPECT_EQ(trie.node(r.node).subtree_id, 0);

  r = trie.Descend("T");
  EXPECT_EQ(r.matched, 1u);
  EXPECT_TRUE(r.pattern_exhausted);

  r = trie.Descend("G");
  EXPECT_EQ(r.matched, 0u);
  EXPECT_FALSE(r.pattern_exhausted);
}

TEST(TrieTest, RejectsConflicts) {
  PrefixTrie trie;
  ASSERT_TRUE(trie.InsertSubTree("AB", 0, 1).ok());
  EXPECT_FALSE(trie.InsertSubTree("AB", 1, 1).ok());   // duplicate
  EXPECT_FALSE(trie.InsertSubTree("", 2, 1).ok());     // empty
  ASSERT_TRUE(trie.InsertTerminalLeaf("A", 5).ok());
  EXPECT_FALSE(trie.InsertTerminalLeaf("A", 6).ok());  // duplicate leaf
}

TEST(TrieTest, TotalFrequencyAggregates) {
  PrefixTrie trie;
  ASSERT_TRUE(trie.InsertSubTree("AA", 0, 10).ok());
  ASSERT_TRUE(trie.InsertSubTree("AB", 1, 20).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("A", 7).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("", 99).ok());
  EXPECT_EQ(trie.TotalFrequency(0), 32u);  // 10 + 20 + 2 terminal leaves
}

TEST(TrieTest, CollectInOrderIsLexicographic) {
  PrefixTrie trie;
  ASSERT_TRUE(trie.InsertSubTree("TGG", 0, 1).ok());
  ASSERT_TRUE(trie.InsertSubTree("TGA", 1, 1).ok());
  ASSERT_TRUE(trie.InsertSubTree("A", 2, 1).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("TG", 50).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("", 99).ok());

  std::vector<int32_t> ids;
  std::vector<uint64_t> leaves;
  trie.CollectInOrder(0, &ids, &leaves);
  // Lexicographic: A(2), TGA(1), TGG(0); terminal leaves: TG~ then ~...
  EXPECT_EQ(ids, (std::vector<int32_t>{2, 1, 0}));
  // "TG~" < "~" because 'T' < '~'.
  EXPECT_EQ(leaves, (std::vector<uint64_t>{50, 99}));
}

TEST(TrieTest, SerializeDeserializeRoundTrip) {
  PrefixTrie trie;
  ASSERT_TRUE(trie.InsertSubTree("ACG", 0, 11).ok());
  ASSERT_TRUE(trie.InsertSubTree("ACT", 1, 22).ok());
  ASSERT_TRUE(trie.InsertSubTree("G", 2, 33).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("AC", 5).ok());
  ASSERT_TRUE(trie.InsertTerminalLeaf("", 44).ok());

  auto back = PrefixTrie::Deserialize(trie.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), trie.size());
  EXPECT_EQ(back->TotalFrequency(0), trie.TotalFrequency(0));

  std::vector<int32_t> ids1, ids2;
  std::vector<uint64_t> l1, l2;
  trie.CollectInOrder(0, &ids1, &l1);
  back->CollectInOrder(0, &ids2, &l2);
  EXPECT_EQ(ids1, ids2);
  EXPECT_EQ(l1, l2);

  auto r = back->Descend("ACT");
  EXPECT_TRUE(r.pattern_exhausted);
  EXPECT_EQ(back->node(r.node).subtree_id, 1);
}

TEST(TrieTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(PrefixTrie::Deserialize("").ok());
  EXPECT_FALSE(PrefixTrie::Deserialize("abc").ok());
  std::string valid = PrefixTrie().Serialize();
  EXPECT_FALSE(
      PrefixTrie::Deserialize(valid + "trailing garbage").ok());
}

TEST(TreeIndexTest, SaveLoadRoundTrip) {
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 200, 8);

  TreeIndex index;
  TextInfo info{"/text", static_cast<uint64_t>(text.size()), Alphabet::Dna()};
  index.SetText(info);

  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(env.CreateDir("/idx").ok());
  ASSERT_TRUE(WriteSubTree(&env, "/idx/st_0", "A", *tree, nullptr).ok());
  uint32_t id = index.AddSubTree("A", 42, "st_0");
  ASSERT_TRUE(index.mutable_trie().InsertSubTree("A", id, 42).ok());
  ASSERT_TRUE(index.Save(&env, "/idx").ok());

  auto loaded = TreeIndex::Load(&env, "/idx");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->text().length, text.size());
  EXPECT_EQ(loaded->text().alphabet.symbols(), "ACGT");
  ASSERT_EQ(loaded->subtrees().size(), 1u);
  EXPECT_EQ(loaded->subtrees()[0].prefix, "A");
  EXPECT_EQ(loaded->subtrees()[0].frequency, 42u);

  IoStats stats;
  auto sub = loaded->OpenSubTree(&env, 0, &stats);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ((*sub)->size(), tree->size());
  EXPECT_GT(stats.bytes_read, 0u);

  // Second open comes from cache: stats unchanged.
  uint64_t bytes = stats.bytes_read;
  auto sub2 = loaded->OpenSubTree(&env, 0, &stats);
  ASSERT_TRUE(sub2.ok());
  EXPECT_EQ(stats.bytes_read, bytes);

  loaded->EvictCache();
  auto sub3 = loaded->OpenSubTree(&env, 0, &stats);
  ASSERT_TRUE(sub3.ok());
  EXPECT_GT(stats.bytes_read, bytes);
}

TEST(TreeIndexTest, LoadRejectsMissingOrBadManifest) {
  MemEnv env;
  EXPECT_FALSE(TreeIndex::Load(&env, "/nope").ok());
  ASSERT_TRUE(env.WriteFile("/bad/MANIFEST", "format: other-thing\n").ok());
  EXPECT_FALSE(TreeIndex::Load(&env, "/bad").ok());
}

TEST(ValidatorTest, DetectsMutations) {
  std::string text = testing::RandomText(Alphabet::Dna(), 300, 15);
  auto tree = BuildUkkonenTree(text);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(ValidateSubTree(*tree, text, "").ok());

  // Swap two leaves' ids: breaks suffix/path correspondence.
  TreeBuffer broken = *tree;
  std::vector<uint32_t> leaf_nodes;
  for (uint32_t i = 0; i < broken.size(); ++i) {
    if (broken.node(i).IsLeaf()) leaf_nodes.push_back(i);
  }
  ASSERT_GE(leaf_nodes.size(), 2u);
  std::swap(broken.node(leaf_nodes[0]).leaf_id,
            broken.node(leaf_nodes[1]).leaf_id);
  EXPECT_FALSE(ValidateSubTree(broken, text, "").ok());

  // Out-of-range edge.
  TreeBuffer broken2 = *tree;
  broken2.node(leaf_nodes[0]).edge_start = text.size() + 100;
  EXPECT_FALSE(ValidateSubTree(broken2, text, "").ok());

  // Cycle: point a child pointer back at the root.
  TreeBuffer broken3 = *tree;
  broken3.node(leaf_nodes[0]).leaf_id = kNoLeaf;
  broken3.node(leaf_nodes[0]).first_child = 0;
  EXPECT_FALSE(ValidateSubTree(broken3, text, "").ok());
}

}  // namespace
}  // namespace era
