// On-disk damage on the read path: checksums turn bit flips and truncation
// into Corruption (never silent wrong answers), and the QueryEngine degrades
// per-query — a damaged sub-tree quarantines itself while the rest of the
// index keeps serving, and a repaired file serves again without a restart.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "era/era_builder.h"
#include "io/mem_env.h"
#include "query/query_engine.h"
#include "suffixtree/serializer.h"
#include "suffixtree/tree_index.h"
#include "tests/test_util.h"
#include "text/corpus.h"

namespace era {
namespace {

/// A small built index on MemEnv shared by the cases in this file.
struct BuiltIndex {
  MemEnv env;
  TextInfo info;
  std::vector<SubTreeEntry> subtrees;

  BuiltIndex() {
    std::string text = testing::RepetitiveText(Alphabet::Dna(), 12000, 31);
    auto materialized =
        MaterializeText(&env, "/text", Alphabet::Dna(), text);
    EXPECT_TRUE(materialized.ok());
    info = *materialized;
    BuildOptions options;
    options.env = &env;
    options.work_dir = "/idx";
    options.memory_budget = 2 << 20;
    options.input_buffer_bytes = 4096;
    EraBuilder builder(options);
    auto result = builder.Build(info);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    subtrees = result->index.subtrees();
    EXPECT_GE(subtrees.size(), 2u)
        << "the degradation cases need a healthy sub-tree to keep serving";
  }

  /// Copies the clean index into a fresh MemEnv so each case damages its
  /// own copy.
  void CloneInto(MemEnv* dst) const {
    auto copy = [&](const std::string& path) {
      std::string bytes;
      ASSERT_TRUE(
          const_cast<MemEnv&>(env).ReadFileToString(path, &bytes).ok());
      ASSERT_TRUE(dst->WriteFile(path, bytes).ok());
    };
    copy("/text");
    copy("/idx/MANIFEST");
    for (const SubTreeEntry& entry : subtrees) copy("/idx/" + entry.filename);
  }
};

BuiltIndex& Built() {
  static BuiltIndex* built = new BuiltIndex();
  return *built;
}

TEST(CorruptionTest, SubTreeBitFlipsAreCorruption) {
  MemEnv env;
  Built().CloneInto(&env);
  std::string path = "/idx/" + Built().subtrees[0].filename;
  std::string clean;
  ASSERT_TRUE(env.ReadFileToString(path, &clean).ok());

  for (std::size_t offset :
       {std::size_t{0}, clean.size() / 4, clean.size() / 2,
        clean.size() - 1}) {
    std::string damaged = clean;
    damaged[offset] ^= 0x10;
    ASSERT_TRUE(env.WriteFile(path, damaged).ok());
    CountedTree tree;
    Status s = ReadCountedSubTree(&env, path, &tree, nullptr, nullptr);
    EXPECT_FALSE(s.ok()) << "bit flip at offset " << offset << " undetected";
    EXPECT_TRUE(s.IsCorruption())
        << "offset " << offset << ": " << s.ToString();
  }
}

TEST(CorruptionTest, TruncatedSubTreeIsCorruption) {
  MemEnv env;
  Built().CloneInto(&env);
  std::string path = "/idx/" + Built().subtrees[0].filename;
  std::string clean;
  ASSERT_TRUE(env.ReadFileToString(path, &clean).ok());

  for (std::size_t keep : {std::size_t{0}, std::size_t{4}, clean.size() / 2,
                           clean.size() - 1}) {
    ASSERT_TRUE(env.WriteFile(path, clean.substr(0, keep)).ok());
    CountedTree tree;
    Status s = ReadCountedSubTree(&env, path, &tree, nullptr, nullptr);
    EXPECT_FALSE(s.ok()) << "truncation to " << keep << " bytes undetected";
    EXPECT_TRUE(s.IsCorruption()) << "keep=" << keep << ": " << s.ToString();
  }
}

TEST(CorruptionTest, ManifestDamageIsCorruption) {
  MemEnv env;
  Built().CloneInto(&env);
  std::string clean;
  ASSERT_TRUE(env.ReadFileToString("/idx/MANIFEST", &clean).ok());

  // Flip one character of a recorded frequency.
  std::string damaged = clean;
  std::size_t pos = damaged.find("subtree: ");
  ASSERT_NE(pos, std::string::npos);
  std::size_t digit = damaged.find_first_of("0123456789", pos);
  ASSERT_NE(digit, std::string::npos);
  damaged[digit] = damaged[digit] == '1' ? '2' : '1';
  ASSERT_TRUE(env.WriteFile("/idx/MANIFEST", damaged).ok());
  EXPECT_TRUE(TreeIndex::Load(&env, "/idx").status().IsCorruption());

  // Truncate away the trailing checksum line.
  std::size_t crc_line = clean.rfind("crc: ");
  ASSERT_NE(crc_line, std::string::npos);
  ASSERT_TRUE(
      env.WriteFile("/idx/MANIFEST", clean.substr(0, crc_line)).ok());
  EXPECT_TRUE(TreeIndex::Load(&env, "/idx").status().IsCorruption());
}

TEST(CorruptionTest, QueryEngineQuarantinesAndRecoversWithoutRestart) {
  MemEnv env;
  Built().CloneInto(&env);
  auto engine = QueryEngine::Open(&env, "/idx");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Patterns one symbol longer than a sub-tree's prefix force the engine to
  // open that sub-tree (the trie alone cannot answer them).
  const SubTreeEntry& victim = Built().subtrees[0];
  const SubTreeEntry& healthy = Built().subtrees[1];
  std::string victim_pattern = victim.prefix + "A";
  std::string healthy_pattern = healthy.prefix + "A";

  std::string victim_path = "/idx/" + victim.filename;
  std::string clean;
  ASSERT_TRUE(env.ReadFileToString(victim_path, &clean).ok());
  std::string damaged = clean;
  damaged[damaged.size() / 2] ^= 0x08;
  ASSERT_TRUE(env.WriteFile(victim_path, damaged).ok());

  // The damaged sub-tree fails ITS queries with Unavailable...
  auto count = (*engine)->Count(victim_pattern);
  EXPECT_TRUE(count.status().IsUnavailable()) << count.status().ToString();
  auto located = (*engine)->Locate(victim_pattern);
  EXPECT_TRUE(located.status().IsUnavailable());
  EXPECT_GE((*engine)->stats().unavailable_queries, 2u);
  auto quarantine = (*engine)->quarantine();
  ASSERT_EQ(quarantine.size(), 1u);
  EXPECT_EQ(quarantine.begin()->first, 0u) << "sub-tree 0 is the victim";
  EXPECT_GE(quarantine.begin()->second, 2u);

  // ...while patterns routed to healthy sub-trees keep serving.
  auto healthy_count = (*engine)->Count(healthy_pattern);
  ASSERT_TRUE(healthy_count.ok()) << healthy_count.status().ToString();

  // Repair the file: the very next query succeeds on the same engine —
  // proof that the failed load was never admitted to the cache.
  ASSERT_TRUE(env.WriteFile(victim_path, clean).ok());
  auto recovered = (*engine)->Count(victim_pattern);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // And the answer agrees with a fresh engine over the clean index.
  MemEnv fresh_env;
  Built().CloneInto(&fresh_env);
  auto fresh = QueryEngine::Open(&fresh_env, "/idx");
  ASSERT_TRUE(fresh.ok());
  auto expected = (*fresh)->Count(victim_pattern);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*recovered, *expected);
}

TEST(CorruptionTest, MissingSubTreeFileIsUnavailableNotFatal) {
  MemEnv env;
  Built().CloneInto(&env);
  auto engine = QueryEngine::Open(&env, "/idx");
  ASSERT_TRUE(engine.ok());
  const SubTreeEntry& victim = Built().subtrees[0];
  ASSERT_TRUE(env.DeleteFile("/idx/" + victim.filename).ok());
  auto count = (*engine)->Count(victim.prefix + "A");
  EXPECT_TRUE(count.status().IsUnavailable()) << count.status().ToString();
  auto healthy = (*engine)->Count(Built().subtrees[1].prefix + "A");
  EXPECT_TRUE(healthy.ok()) << healthy.status().ToString();
}

}  // namespace
}  // namespace era
