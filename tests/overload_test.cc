// Engine-level overload behavior: deadline expiry and cancellation through
// the full serving stack (admission -> trie descent -> sub-tree loads ->
// reader refills), batches stopping mid-flight, drain semantics, and an
// 8-thread deadline storm. Runs under the ThreadSanitizer CI job.
//
// The serving engines sit on a LatencyEnv over the MemEnv so queries cost
// real wall time (otherwise nothing can expire mid-flight deterministically);
// ground truth comes from a context-free engine on the raw MemEnv.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "era/era_builder.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "query/query_engine.h"
#include "query/query_workload.h"
#include "tests/test_util.h"

namespace era {
namespace {

using Clock = QueryContext::Clock;

class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text_ = testing::RepetitiveText(Alphabet::Dna(), 12000, 47);
    auto info = MaterializeText(&env_, "/text", Alphabet::Dna(), text_);
    ASSERT_TRUE(info.ok());

    BuildOptions options;
    options.env = &env_;
    options.work_dir = "/idx";
    options.memory_budget = 256 << 10;  // force several sub-trees
    options.input_buffer_bytes = 4096;
    EraBuilder builder(options);
    auto result = builder.Build(*info);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // Ground truth from an unloaded, context-free engine on the raw env.
    auto fast = QueryEngine::Open(&env_, "/idx");
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    fast_engine_ = std::move(*fast);

    QueryWorkloadOptions workload;
    workload.num_patterns = 120;
    workload.min_len = 3;
    workload.max_len = 16;
    workload.seed = 7;
    patterns_ = SamplePatternWorkload(text_, workload);
    ASSERT_FALSE(patterns_.empty());
    for (const std::string& pattern : patterns_) {
      auto count = fast_engine_->Count(pattern);
      ASSERT_TRUE(count.ok());
      expected_counts_.push_back(*count);
      auto hits = fast_engine_->Locate(pattern, 25);
      ASSERT_TRUE(hits.ok());
      expected_hits_.push_back(std::move(*hits));
    }
  }

  /// An engine whose device charges `latency_seconds` per request, so
  /// queries take real wall time and deadlines can expire mid-flight.
  std::unique_ptr<QueryEngine> SlowEngine(double latency_seconds,
                                          const QueryEngineOptions& options) {
    LatencyModel model;
    model.read_latency_seconds = latency_seconds;
    model.queue_depth = 2;
    slow_envs_.push_back(std::make_unique<LatencyEnv>(&env_, model));
    auto engine = QueryEngine::Open(slow_envs_.back().get(), "/idx", options);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return engine.ok() ? std::move(*engine) : nullptr;
  }

  MemEnv env_;
  std::string text_;
  std::unique_ptr<QueryEngine> fast_engine_;
  std::vector<std::unique_ptr<LatencyEnv>> slow_envs_;
  std::vector<std::string> patterns_;
  std::vector<uint64_t> expected_counts_;
  std::vector<std::vector<uint64_t>> expected_hits_;
};

TEST_F(OverloadTest, ExpiredContextFailsFastOnEveryEntryPoint) {
  QueryContext expired = QueryContext::WithDeadline(Clock::now());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(fast_engine_->Count(expired, patterns_[0])
                  .status()
                  .IsDeadlineExceeded());
  EXPECT_TRUE(fast_engine_->Locate(expired, patterns_[0])
                  .status()
                  .IsDeadlineExceeded());
  EXPECT_TRUE(fast_engine_->Contains(expired, patterns_[0])
                  .status()
                  .IsDeadlineExceeded());
  EXPECT_GE(fast_engine_->serving().deadline_exceeded, 3u);

  // The engine is unharmed: the same query succeeds context-free.
  auto count = fast_engine_->Count(patterns_[0]);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, expected_counts_[0]);
}

TEST_F(OverloadTest, CancelledContextReportsCancelled) {
  QueryContext ctx;
  ctx.cancel.Cancel();
  EXPECT_TRUE(fast_engine_->Count(ctx, patterns_[0]).status().IsCancelled());
  EXPECT_GE(fast_engine_->serving().cancelled, 1u);
}

TEST_F(OverloadTest, MidBatchCancellationLeavesEngineReusable) {
  // ~1ms of device time per request: a 600-item batch runs for hundreds of
  // milliseconds, so a cancel fired at 60ms lands mid-flight.
  QueryEngineOptions options;
  options.cache.budget_bytes = 64 << 10;  // tiny cache: loads keep happening
  auto engine = SlowEngine(0.001, options);
  ASSERT_NE(engine, nullptr);

  std::vector<std::string> batch;
  for (std::size_t i = 0; i < 600; ++i) {
    batch.push_back(patterns_[i % patterns_.size()]);
  }

  QueryContext ctx;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ctx.cancel.Cancel();
  });
  auto outcomes = engine->LocateBatch(ctx, batch, 25);
  canceller.join();
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), batch.size());

  // Once an item observes the cancellation, it and every later item carry
  // Cancelled; completed items keep their (correct) answers.
  std::size_t first_cancelled = outcomes->size();
  for (std::size_t i = 0; i < outcomes->size(); ++i) {
    const LocateOutcome& outcome = (*outcomes)[i];
    if (outcome.status.IsCancelled()) {
      first_cancelled = std::min(first_cancelled, i);
      continue;
    }
    ASSERT_LT(i, first_cancelled) << "non-cancelled item after cancellation";
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.offsets, expected_hits_[i % patterns_.size()]);
  }
  EXPECT_LT(first_cancelled, outcomes->size()) << "cancel landed too late";
  EXPECT_GE(engine->serving().cancelled, 1u);

  // The engine (and its pooled readers) must be fully reusable.
  for (std::size_t i = 0; i < 5; ++i) {
    auto count = engine->Count(patterns_[i]);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(*count, expected_counts_[i]);
  }
}

TEST_F(OverloadTest, BatchDeadlineStampsRemainingItems) {
  QueryEngineOptions options;
  options.cache.budget_bytes = 64 << 10;
  auto engine = SlowEngine(0.001, options);
  ASSERT_NE(engine, nullptr);

  std::vector<std::string> batch;
  for (std::size_t i = 0; i < 600; ++i) {
    batch.push_back(patterns_[i % patterns_.size()]);
  }
  QueryContext ctx = QueryContext::WithTimeout(0.05);
  auto outcomes = engine->CountBatch(ctx, batch);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), batch.size());
  // The tail of the batch must be DeadlineExceeded (the batch cannot finish
  // 600 device-bound items in 50ms), and completed prefix items are correct.
  EXPECT_TRUE(outcomes->back().status.IsDeadlineExceeded());
  for (std::size_t i = 0; i < outcomes->size(); ++i) {
    const CountOutcome& outcome = (*outcomes)[i];
    if (outcome.status.ok()) {
      EXPECT_EQ(outcome.count, expected_counts_[i % patterns_.size()]);
    } else {
      EXPECT_TRUE(outcome.status.IsDeadlineExceeded())
          << outcome.status.ToString();
    }
  }
}

TEST_F(OverloadTest, DeadlineStormKeepsEveryAnswerCorrectOrAbandoned) {
  QueryEngineOptions options;
  options.cache.budget_bytes = 64 << 10;
  options.admission.enabled = true;
  options.admission.max_in_flight = 2;
  options.admission.max_queue = 4;
  options.admission.queue_poll_seconds = 0.001;
  auto engine = SlowEngine(0.0002, options);
  ASSERT_NE(engine, nullptr);

  constexpr unsigned kThreads = 8;
  constexpr int kRounds = 2;
  std::atomic<uint64_t> ok{0}, expired{0}, shed{0};
  std::atomic<uint64_t> wrong{0}, illegal{0};

  auto worker = [&](unsigned t) {
    std::mt19937_64 rng(0x5eedull * (t + 1));
    std::uniform_real_distribution<double> deadline_ms(0.05, 4.0);
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t i = t; i < patterns_.size(); i += kThreads) {
        QueryContext ctx =
            QueryContext::WithTimeout(deadline_ms(rng) / 1000.0);
        ctx.client_id = t;
        if (i % 2 == 0) {
          auto count = engine->Count(ctx, patterns_[i]);
          if (count.ok()) {
            ++ok;
            if (*count != expected_counts_[i]) ++wrong;
          } else if (count.status().IsDeadlineExceeded()) {
            ++expired;
          } else if (count.status().IsResourceExhausted()) {
            ++shed;
          } else {
            ++illegal;
          }
        } else {
          auto hits = engine->Locate(ctx, patterns_[i], 25);
          if (hits.ok()) {
            ++ok;
            if (*hits != expected_hits_[i]) ++wrong;
          } else if (hits.status().IsDeadlineExceeded()) {
            ++expired;
          } else if (hits.status().IsResourceExhausted()) {
            ++shed;
          } else {
            ++illegal;
          }
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& thread : threads) thread.join();

  // The storm contract: every response is a byte-correct answer or an
  // honest DeadlineExceeded/ResourceExhausted. Nothing else, ever.
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(illegal.load(), 0u);
  EXPECT_GT(expired.load() + shed.load(), 0u) << "storm never stressed";
  EXPECT_EQ(ok.load() + expired.load() + shed.load(),
            kRounds * patterns_.size());

  // And the engine serves normally afterwards.
  auto count = engine->Count(patterns_[0]);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, expected_counts_[0]);
}

TEST_F(OverloadTest, DrainRejectsNewWorkWhileInFlightCompletes) {
  QueryEngineOptions options;
  options.cache.budget_bytes = 64 << 10;
  auto engine = SlowEngine(0.001, options);
  ASSERT_NE(engine, nullptr);

  // A long device-bound batch holds its admission slot for its whole run
  // (admission is disabled here — Drain's contract must hold regardless).
  std::vector<std::string> batch;
  for (std::size_t i = 0; i < 300; ++i) {
    batch.push_back(patterns_[i % patterns_.size()]);
  }
  std::atomic<bool> batch_ok{false};
  std::thread in_flight([&] {
    auto counts = engine->CountBatch(batch);
    batch_ok.store(counts.ok() && counts->size() == batch.size());
  });

  // Wait until the batch is genuinely in flight, then drain.
  const auto give_up = Clock::now() + std::chrono::seconds(5);
  while (engine->admission().in_flight() == 0 && Clock::now() < give_up) {
    std::this_thread::yield();
  }
  ASSERT_GT(engine->admission().in_flight(), 0u);
  engine->Drain();

  // New work is refused with ResourceExhausted while draining...
  EXPECT_TRUE(
      engine->Count(patterns_[0]).status().IsResourceExhausted());
  EXPECT_TRUE(engine->Count(QueryContext::Background(), patterns_[0])
                  .status()
                  .IsResourceExhausted());

  // ...but the in-flight batch runs to completion, untouched.
  in_flight.join();
  EXPECT_TRUE(batch_ok.load());
  engine->admission().WaitIdle();
  EXPECT_EQ(engine->admission().in_flight(), 0u);

  engine->Resume();
  auto count = engine->Count(patterns_[0]);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, expected_counts_[0]);
}

TEST_F(OverloadTest, DocEngineStatsSplitDegradation) {
  // DocQueryStats counters are exercised in collection tests; here we only
  // need the serving passthroughs on QueryEngine's stats to stay coherent
  // under mixed failures.
  QueryContext expired = QueryContext::WithDeadline(Clock::now());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  (void)fast_engine_->Count(expired, patterns_[0]);
  ServingStats serving = fast_engine_->serving();
  EXPECT_GE(serving.deadline_exceeded, 1u);
  EXPECT_EQ(serving.shed, 0u);
}

}  // namespace
}  // namespace era
