// Adversarial and degenerate inputs through the full ERA pipeline: unary
// strings (maximum LCP chains), alternating strings, de-Bruijn-like dense
// strings, single-symbol bodies, and pathological prefix structures.

#include <gtest/gtest.h>

#include "era/era_builder.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "io/mem_env.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"

namespace era {
namespace {

/// Builds with ERA and checks the result against the oracle.
void BuildAndVerify(const std::string& text, const Alphabet& alphabet,
                    uint64_t budget = 1 << 20) {
  MemEnv env;
  auto info = MaterializeText(&env, "/text", alphabet, text);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  BuildOptions options;
  options.env = &env;
  options.work_dir = "/idx";
  options.memory_budget = budget;
  options.input_buffer_bytes = 4096;
  EraBuilder builder(options);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(&env, result->index, text));
  EXPECT_TRUE(ValidateIndex(&env, result->index, text).ok());
}

TEST(EdgeCaseTest, TerminalOnlyText) {
  BuildAndVerify(std::string(1, kTerminal), Alphabet::Dna());
}

TEST(EdgeCaseTest, SingleSymbolBody) { BuildAndVerify("A~", Alphabet::Dna()); }

TEST(EdgeCaseTest, TwoSymbolBody) { BuildAndVerify("AC~", Alphabet::Dna()); }

TEST(EdgeCaseTest, UnaryString) {
  // a^n: every suffix is a prefix of the previous; adjacent LCPs are n-1,
  // n-2, ... — the deepest possible tree.
  for (std::size_t n : {3u, 17u, 100u, 1000u}) {
    BuildAndVerify(std::string(n, 'A') + '~', Alphabet::Dna());
  }
}

TEST(EdgeCaseTest, AlternatingString) {
  std::string text;
  for (int i = 0; i < 500; ++i) text += "AC";
  BuildAndVerify(text + '~', Alphabet::Dna());
}

TEST(EdgeCaseTest, PeriodicWithLongPeriod) {
  std::string unit = "ACGTTGCAACGG";
  std::string text;
  for (int i = 0; i < 100; ++i) text += unit;
  BuildAndVerify(text + '~', Alphabet::Dna());
}

TEST(EdgeCaseTest, DenseKmerCoverage) {
  // All 3-mers over {A,C,G,T} concatenated: every short prefix occurs.
  std::string text;
  const char* sym = "ACGT";
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        text += sym[a];
        text += sym[b];
        text += sym[c];
      }
    }
  }
  BuildAndVerify(text + '~', Alphabet::Dna());
}

TEST(EdgeCaseTest, PalindromeHeavy) {
  std::string half = testing::RandomText(Alphabet::Dna(), 400, 5);
  half.pop_back();
  std::string text = half;
  text.append(half.rbegin(), half.rend());
  BuildAndVerify(text + '~', Alphabet::Dna());
}

TEST(EdgeCaseTest, TinyBudgetOnRepetitiveText) {
  // Tight memory on a nasty string: many sub-trees, deep prefixes.
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 30000, 6);
  BuildAndVerify(text, Alphabet::Dna(), 80 << 10);
}

TEST(EdgeCaseTest, SingleCharacterAlphabet) {
  auto unary = Alphabet::Create("x");
  ASSERT_TRUE(unary.ok());
  BuildAndVerify(std::string(300, 'x') + '~', *unary);
}

TEST(EdgeCaseTest, TwoCharacterAlphabetThueMorse) {
  // Thue-Morse sequence: overlap-free, worst-case-ish branching structure.
  std::string text = "a";
  while (text.size() < 2048) {
    std::string flipped;
    for (char c : text) flipped += (c == 'a' ? 'b' : 'a');
    text += flipped;
  }
  auto ab = Alphabet::Create("ab");
  ASSERT_TRUE(ab.ok());
  BuildAndVerify(text + '~', *ab);
}

TEST(EdgeCaseTest, GroupPreparerWithManyPrefixesInOneGroup) {
  // A virtual tree holding every 2-mer: the shared-scan machinery must
  // interleave many states without confusing their request streams.
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 20000, 7);
  ASSERT_TRUE(env.WriteFile("/s", text).ok());

  VirtualTree group;
  const char* sym = "ACGT";
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      std::string p{sym[a], sym[b]};
      uint64_t freq = 0;
      for (std::size_t i = 0; i + 2 < text.size(); ++i) {
        if (text.compare(i, 2, p) == 0) ++freq;
      }
      if (freq > 0) group.prefixes.push_back({p, freq});
    }
  }
  IoStats stats;
  auto reader = OpenStringReader(&env, "/s", {}, &stats);
  ASSERT_TRUE(reader.ok());
  GroupPreparer preparer(group, RangePolicy::Elastic(1 << 16, 4, 1024),
                         reader->get(), text.size());
  ASSERT_TRUE(preparer.Run().ok());

  // Every prefix's (L, B) must match the oracle slice.
  SaLcp oracle = testing::OracleSaLcp(text);
  for (auto& prepared : preparer.results()) {
    std::vector<uint64_t> expected_sa;
    std::vector<uint64_t> expected_lcp;
    for (std::size_t i = 0; i < oracle.sa.size(); ++i) {
      if (text.compare(oracle.sa[i], prepared.prefix.size(),
                       prepared.prefix) == 0) {
        if (!expected_sa.empty()) expected_lcp.push_back(oracle.lcp[i - 1]);
        expected_sa.push_back(oracle.sa[i]);
      }
    }
    ASSERT_EQ(prepared.leaves, expected_sa) << prepared.prefix;
    for (std::size_t i = 1; i < prepared.branches.size(); ++i) {
      ASSERT_TRUE(prepared.branches[i].defined);
      ASSERT_EQ(prepared.branches[i].offset, expected_lcp[i - 1])
          << prepared.prefix << " bond " << i;
    }
  }
}

TEST(EdgeCaseTest, FixedRangeOneSymbol) {
  // range = 1 degenerates SubTreePrepare to symbol-by-symbol refinement —
  // the slowest correct configuration.
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 2000, 8);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  BuildOptions options;
  options.env = &env;
  options.work_dir = "/idx";
  options.memory_budget = 1 << 20;
  options.input_buffer_bytes = 4096;
  options.range_policy = RangePolicyKind::kFixed;
  options.fixed_range = 1;
  EraBuilder builder(options);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(&env, result->index, text));
}

TEST(EdgeCaseTest, SweepSeedsForFuzzCoverage) {
  // Small randomized sweep: every seed builds and validates.
  for (uint64_t seed = 100; seed < 112; ++seed) {
    std::string text = seed % 2 == 0
                           ? testing::RandomText(Alphabet::Dna(),
                                                 500 + seed * 37, seed)
                           : testing::RepetitiveText(Alphabet::Protein(),
                                                     500 + seed * 29, seed);
    const Alphabet alphabet =
        seed % 2 == 0 ? Alphabet::Dna() : Alphabet::Protein();
    BuildAndVerify(text, alphabet, 256 << 10);
  }
}

}  // namespace
}  // namespace era
