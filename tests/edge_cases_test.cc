// Adversarial and degenerate inputs through the full ERA pipeline: unary
// strings (maximum LCP chains), alternating strings, de-Bruijn-like dense
// strings, single-symbol bodies, and pathological prefix structures.

#include <gtest/gtest.h>

#include <limits>

#include "era/branch_edge.h"
#include "era/build_subtree.h"
#include "era/era_builder.h"
#include "era/memory_layout.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "era/vertical_partitioner.h"
#include "io/mem_env.h"
#include "suffixtree/validator.h"
#include "tests/test_util.h"

namespace era {
namespace {

/// Builds with ERA and checks the result against the oracle.
void BuildAndVerify(const std::string& text, const Alphabet& alphabet,
                    uint64_t budget = 1 << 20) {
  MemEnv env;
  auto info = MaterializeText(&env, "/text", alphabet, text);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  BuildOptions options;
  options.env = &env;
  options.work_dir = "/idx";
  options.memory_budget = budget;
  options.input_buffer_bytes = 4096;
  EraBuilder builder(options);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(&env, result->index, text));
  EXPECT_TRUE(ValidateIndex(&env, result->index, text).ok());
}

TEST(EdgeCaseTest, TerminalOnlyText) {
  BuildAndVerify(std::string(1, kTerminal), Alphabet::Dna());
}

TEST(EdgeCaseTest, SingleSymbolBody) { BuildAndVerify("A~", Alphabet::Dna()); }

TEST(EdgeCaseTest, TwoSymbolBody) { BuildAndVerify("AC~", Alphabet::Dna()); }

TEST(EdgeCaseTest, UnaryString) {
  // a^n: every suffix is a prefix of the previous; adjacent LCPs are n-1,
  // n-2, ... — the deepest possible tree.
  for (std::size_t n : {3u, 17u, 100u, 1000u}) {
    BuildAndVerify(std::string(n, 'A') + '~', Alphabet::Dna());
  }
}

TEST(EdgeCaseTest, AlternatingString) {
  std::string text;
  for (int i = 0; i < 500; ++i) text += "AC";
  BuildAndVerify(text + '~', Alphabet::Dna());
}

TEST(EdgeCaseTest, PeriodicWithLongPeriod) {
  std::string unit = "ACGTTGCAACGG";
  std::string text;
  for (int i = 0; i < 100; ++i) text += unit;
  BuildAndVerify(text + '~', Alphabet::Dna());
}

TEST(EdgeCaseTest, DenseKmerCoverage) {
  // All 3-mers over {A,C,G,T} concatenated: every short prefix occurs.
  std::string text;
  const char* sym = "ACGT";
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        text += sym[a];
        text += sym[b];
        text += sym[c];
      }
    }
  }
  BuildAndVerify(text + '~', Alphabet::Dna());
}

TEST(EdgeCaseTest, PalindromeHeavy) {
  std::string half = testing::RandomText(Alphabet::Dna(), 400, 5);
  half.pop_back();
  std::string text = half;
  text.append(half.rbegin(), half.rend());
  BuildAndVerify(text + '~', Alphabet::Dna());
}

TEST(EdgeCaseTest, TinyBudgetOnRepetitiveText) {
  // Tight memory on a nasty string: many sub-trees, deep prefixes.
  std::string text = testing::RepetitiveText(Alphabet::Dna(), 30000, 6);
  BuildAndVerify(text, Alphabet::Dna(), 80 << 10);
}

TEST(EdgeCaseTest, SingleCharacterAlphabet) {
  auto unary = Alphabet::Create("x");
  ASSERT_TRUE(unary.ok());
  BuildAndVerify(std::string(300, 'x') + '~', *unary);
}

TEST(EdgeCaseTest, TwoCharacterAlphabetThueMorse) {
  // Thue-Morse sequence: overlap-free, worst-case-ish branching structure.
  std::string text = "a";
  while (text.size() < 2048) {
    std::string flipped;
    for (char c : text) flipped += (c == 'a' ? 'b' : 'a');
    text += flipped;
  }
  auto ab = Alphabet::Create("ab");
  ASSERT_TRUE(ab.ok());
  BuildAndVerify(text + '~', *ab);
}

TEST(EdgeCaseTest, GroupPreparerWithManyPrefixesInOneGroup) {
  // A virtual tree holding every 2-mer: the shared-scan machinery must
  // interleave many states without confusing their request streams.
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 20000, 7);
  ASSERT_TRUE(env.WriteFile("/s", text).ok());

  VirtualTree group;
  const char* sym = "ACGT";
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      std::string p{sym[a], sym[b]};
      uint64_t freq = 0;
      for (std::size_t i = 0; i + 2 < text.size(); ++i) {
        if (text.compare(i, 2, p) == 0) ++freq;
      }
      if (freq > 0) group.prefixes.push_back({p, freq});
    }
  }
  IoStats stats;
  auto reader = OpenStringReader(&env, "/s", {}, &stats);
  ASSERT_TRUE(reader.ok());
  GroupPreparer preparer(group, RangePolicy::Elastic(1 << 16, 4, 1024),
                         reader->get(), text.size());
  ASSERT_TRUE(preparer.Run().ok());

  // Every prefix's (L, B) must match the oracle slice.
  SaLcp oracle = testing::OracleSaLcp(text);
  for (auto& prepared : preparer.results()) {
    std::vector<uint64_t> expected_sa;
    std::vector<uint64_t> expected_lcp;
    for (std::size_t i = 0; i < oracle.sa.size(); ++i) {
      if (text.compare(oracle.sa[i], prepared.prefix.size(),
                       prepared.prefix) == 0) {
        if (!expected_sa.empty()) expected_lcp.push_back(oracle.lcp[i - 1]);
        expected_sa.push_back(oracle.sa[i]);
      }
    }
    ASSERT_EQ(prepared.leaves, expected_sa) << prepared.prefix;
    for (std::size_t i = 1; i < prepared.branches.size(); ++i) {
      ASSERT_TRUE(prepared.branches[i].defined);
      ASSERT_EQ(prepared.branches[i].offset, expected_lcp[i - 1])
          << prepared.prefix << " bond " << i;
    }
  }
}

TEST(EdgeCaseTest, FixedRangeOneSymbol) {
  // range = 1 degenerates SubTreePrepare to symbol-by-symbol refinement —
  // the slowest correct configuration.
  MemEnv env;
  std::string text = testing::RandomText(Alphabet::Dna(), 2000, 8);
  auto info = MaterializeText(&env, "/text", Alphabet::Dna(), text);
  ASSERT_TRUE(info.ok());
  BuildOptions options;
  options.env = &env;
  options.work_dir = "/idx";
  options.memory_budget = 1 << 20;
  options.input_buffer_bytes = 4096;
  options.range_policy = RangePolicyKind::kFixed;
  options.fixed_range = 1;
  EraBuilder builder(options);
  auto result = builder.Build(*info);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(testing::IndexMatchesOracle(&env, result->index, text));
}

TEST(EdgeCaseTest, BuildSubTreeAcceptsEdgeLenAtThe32BitBoundary) {
  // BuildSubTree works purely on (L, B) and text_length, so the 4 GiB edge
  // boundary is testable without materializing a 4 GiB string. One leaf at
  // position 5 with text_length = 5 + UINT32_MAX puts the leaf edge exactly
  // at the widest representable length.
  const uint64_t kMax = std::numeric_limits<uint32_t>::max();
  PreparedSubTree prepared;
  prepared.prefix = "A";
  prepared.leaves = {5};
  prepared.branches.resize(1);
  prepared.branches[0].defined = true;  // sentinel
  auto tree = BuildSubTree(prepared, /*text_length=*/5 + kMax);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->node(1).edge_len, kMax);
}

TEST(EdgeCaseTest, BuildSubTreeRejectsEdgeLenOverflow) {
  // One past the boundary: silently truncating edge_len used to produce a
  // structurally wrong tree; now it must fail loudly.
  const uint64_t kMax = std::numeric_limits<uint32_t>::max();
  PreparedSubTree prepared;
  prepared.prefix = "A";
  prepared.leaves = {5};
  prepared.branches.resize(1);
  prepared.branches[0].defined = true;
  auto tree = BuildSubTree(prepared, /*text_length=*/5 + kMax + 1);
  ASSERT_FALSE(tree.ok());
  EXPECT_TRUE(tree.status().IsInternal()) << tree.status().ToString();
}

TEST(EdgeCaseTest, BuildSubTreeRejectsOverflowOnLaterLeaves) {
  // The first leaf fits but the second one's edge (text_length - pos - d)
  // still overflows; every edge_len assignment must be checked.
  const uint64_t kMax = std::numeric_limits<uint32_t>::max();
  PreparedSubTree prepared;
  prepared.prefix = "A";
  prepared.leaves = {static_cast<uint64_t>(kMax) + 10, 2};
  prepared.branches.resize(2);
  prepared.branches[0].defined = true;
  prepared.branches[1] = {/*offset=*/1, 'a', 'b', /*defined=*/true};
  auto tree = BuildSubTree(prepared, /*text_length=*/kMax + 20);
  ASSERT_FALSE(tree.ok());
  EXPECT_TRUE(tree.status().IsInternal()) << tree.status().ToString();
}

TEST(EdgeCaseTest, BranchEdgeRejectsTextBeyondEdgeLimit) {
  // The BranchEdge method assigns whole suffix tails as edge labels, so a
  // text past the 32-bit node field must be rejected up front instead of
  // silently truncating (the same guarantee CheckedEdgeLen gives the
  // prepare/build path).
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/s", "ACGT~").ok());
  IoStats io;
  auto reader = OpenStringReader(&env, "/s", {}, &io);
  ASSERT_TRUE(reader.ok());
  VirtualTree group;
  group.prefixes.push_back({"A", 1});
  GroupStrBuilder builder(
      group, RangePolicy::Fixed(4), reader->get(),
      /*text_length=*/uint64_t{std::numeric_limits<uint32_t>::max()} + 2);
  Status s = builder.Run();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInternal()) << s.ToString();
}

TEST(EdgeCaseTest, VerticalPartitionSurvivesDegenerateTinyInputs) {
  // Tiny bodies with a tiny FM: working prefixes quickly reach (and the
  // guard must stop them at) the text-body boundary where
  // n - p.size() would wrap around.
  for (const char* body : {"", "A", "AA", "AC", "AAA"}) {
    MemEnv env;
    std::string text = std::string(body) + '~';
    auto info = MaterializeText(&env, "/t", Alphabet::Dna(), text);
    ASSERT_TRUE(info.ok());
    BuildOptions options;
    options.env = &env;
    options.work_dir = "/idx";
    options.memory_budget = 1 << 20;
    options.input_buffer_bytes = 4096;
    for (uint64_t fm : {1u, 2u, 100u}) {
      auto plan = VerticalPartition(*info, options, fm);
      ASSERT_TRUE(plan.ok()) << "body '" << body << "' fm " << fm << ": "
                             << plan.status().ToString();
      // Accounting must still close: every suffix lands in exactly one
      // sub-tree or direct trie leaf.
      uint64_t suffixes = plan->terminal_leaves.size();
      for (const VirtualTree& g : plan->groups) {
        suffixes += g.total_frequency;
      }
      EXPECT_EQ(suffixes, text.size()) << "body '" << body << "' fm " << fm;
    }
  }
}

TEST(EdgeCaseTest, SweepSeedsForFuzzCoverage) {
  // Small randomized sweep: every seed builds and validates.
  for (uint64_t seed = 100; seed < 112; ++seed) {
    std::string text = seed % 2 == 0
                           ? testing::RandomText(Alphabet::Dna(),
                                                 500 + seed * 37, seed)
                           : testing::RepetitiveText(Alphabet::Protein(),
                                                     500 + seed * 29, seed);
    const Alphabet alphabet =
        seed % 2 == 0 ? Alphabet::Dna() : Alphabet::Protein();
    BuildAndVerify(text, alphabet, 256 << 10);
  }
}

}  // namespace
}  // namespace era
