#include "sa/lcp.h"

namespace era {

std::vector<uint64_t> BuildLcpArray(const std::string& text,
                                    const std::vector<uint64_t>& sa) {
  const std::size_t n = sa.size();
  std::vector<uint64_t> rank(n), lcp(n, 0);
  for (std::size_t i = 0; i < n; ++i) rank[sa[i]] = i;
  uint64_t h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rank[i] > 0) {
      uint64_t j = sa[rank[i] - 1];
      while (i + h < text.size() && j + h < text.size() &&
             text[i + h] == text[j + h]) {
        ++h;
      }
      lcp[rank[i]] = h;
      if (h > 0) --h;
    } else {
      h = 0;
    }
  }
  return lcp;
}

uint64_t LcpOfSuffixes(const std::string& text, uint64_t a, uint64_t b) {
  uint64_t h = 0;
  while (a + h < text.size() && b + h < text.size() &&
         text[a + h] == text[b + h]) {
    ++h;
  }
  return h;
}

}  // namespace era
