// Linear-time suffix array construction (SA-IS, Nong/Zhang/Chan 2009).
//
// Substrate for the B2ST baseline (per-partition suffix arrays) and the test
// oracle for every tree builder. Works on raw bytes; because every text in
// this library ends with a unique terminal byte, no suffix is a prefix of
// another and the ordering is the plain lexicographic order of the byte
// strings.

#ifndef ERA_SA_SAIS_H_
#define ERA_SA_SAIS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace era {

/// Suffix array of `text` (all |text| suffixes, lexicographic). O(n).
std::vector<uint64_t> BuildSuffixArray(const std::string& text);

/// O(n^2 log n) reference implementation for tests.
std::vector<uint64_t> BuildSuffixArrayNaive(const std::string& text);

}  // namespace era

#endif  // ERA_SA_SAIS_H_
