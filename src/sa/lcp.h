// Longest-common-prefix arrays (Kasai et al. 2001).

#ifndef ERA_SA_LCP_H_
#define ERA_SA_LCP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace era {

/// lcp[i] = LCP(text[sa[i-1]..], text[sa[i]..]) for i in [1, n);
/// lcp[0] = 0. O(n).
std::vector<uint64_t> BuildLcpArray(const std::string& text,
                                    const std::vector<uint64_t>& sa);

/// Direct character-by-character LCP of two suffixes (test oracle).
uint64_t LcpOfSuffixes(const std::string& text, uint64_t a, uint64_t b);

}  // namespace era

#endif  // ERA_SA_LCP_H_
