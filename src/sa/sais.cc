#include "sa/sais.h"

#include <algorithm>
#include <numeric>

namespace era {

namespace {

// Core SA-IS over an integer string `s` whose last element is a unique
// smallest sentinel (value 0). Values are < k. `sa` receives the suffix
// array of s (including the sentinel suffix at sa[0]).
void SaIs(const std::vector<uint32_t>& s, uint32_t k, std::vector<uint32_t>* sa) {
  const std::size_t n = s.size();
  sa->assign(n, 0);
  if (n == 1) {
    (*sa)[0] = 0;
    return;
  }

  // Classify suffixes: S-type (true) or L-type (false).
  std::vector<char> is_s(n, 0);
  is_s[n - 1] = 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
  }
  auto is_lms = [&](std::size_t i) {
    return i > 0 && is_s[i] && !is_s[i - 1];
  };

  // Bucket boundaries by symbol.
  std::vector<uint32_t> bucket_sizes(k, 0);
  for (uint32_t c : s) ++bucket_sizes[c];
  std::vector<uint32_t> bucket_heads(k), bucket_tails(k);
  auto reset_buckets = [&] {
    uint32_t sum = 0;
    for (uint32_t c = 0; c < k; ++c) {
      bucket_heads[c] = sum;
      sum += bucket_sizes[c];
      bucket_tails[c] = sum;
    }
  };

  constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  auto induce = [&](const std::vector<uint32_t>& lms_order) {
    sa->assign(n, kEmpty);
    reset_buckets();
    // Place LMS suffixes at bucket tails in the given order (reversed so
    // the last-inserted ends up first).
    for (std::size_t idx = lms_order.size(); idx-- > 0;) {
      uint32_t i = lms_order[idx];
      (*sa)[--bucket_tails[s[i]]] = i;
    }
    // Induce L-type from left to right.
    reset_buckets();
    for (std::size_t idx = 0; idx < n; ++idx) {
      uint32_t j = (*sa)[idx];
      if (j == kEmpty || j == 0) continue;
      uint32_t i = j - 1;
      if (!is_s[i]) (*sa)[bucket_heads[s[i]]++] = i;
    }
    // Induce S-type from right to left.
    reset_buckets();
    for (std::size_t idx = n; idx-- > 0;) {
      uint32_t j = (*sa)[idx];
      if (j == kEmpty || j == 0) continue;
      uint32_t i = j - 1;
      if (is_s[i]) (*sa)[--bucket_tails[s[i]]] = i;
    }
  };

  // First pass: approximate order of LMS suffixes (any order works to get
  // the LMS-substring names).
  std::vector<uint32_t> lms_positions;
  for (std::size_t i = 1; i < n; ++i) {
    if (is_lms(i)) lms_positions.push_back(static_cast<uint32_t>(i));
  }
  induce(lms_positions);

  // Extract LMS suffixes in the induced order and name LMS substrings.
  std::vector<uint32_t> sorted_lms;
  sorted_lms.reserve(lms_positions.size());
  for (std::size_t idx = 0; idx < n; ++idx) {
    uint32_t j = (*sa)[idx];
    if (j != kEmpty && j > 0 && is_lms(j)) sorted_lms.push_back(j);
  }

  std::vector<uint32_t> name_of(n, kEmpty);
  uint32_t names = 0;
  uint32_t prev = kEmpty;
  for (uint32_t pos : sorted_lms) {
    if (prev == kEmpty) {
      name_of[pos] = names;
    } else {
      // Compare LMS substrings at prev and pos.
      bool same = true;
      for (std::size_t d = 0;; ++d) {
        bool prev_lms = d > 0 && is_lms(prev + d);
        bool pos_lms = d > 0 && is_lms(pos + d);
        if (prev + d >= n || pos + d >= n || s[prev + d] != s[pos + d] ||
            is_s[prev + d] != is_s[pos + d]) {
          same = false;
          break;
        }
        if (prev_lms || pos_lms) {
          same = prev_lms && pos_lms;
          break;
        }
      }
      if (!same) ++names;
      name_of[pos] = names;
    }
    prev = pos;
  }
  ++names;  // count, not max index

  if (names < lms_positions.size()) {
    // Names are not unique: recurse on the reduced string.
    std::vector<uint32_t> reduced;
    reduced.reserve(lms_positions.size());
    for (uint32_t i : lms_positions) reduced.push_back(name_of[i]);
    std::vector<uint32_t> reduced_sa;
    SaIs(reduced, names, &reduced_sa);
    std::vector<uint32_t> ordered(lms_positions.size());
    for (std::size_t i = 0; i < reduced_sa.size(); ++i) {
      ordered[i] = lms_positions[reduced_sa[i]];
    }
    induce(ordered);
  } else {
    induce(sorted_lms);
  }
}

}  // namespace

std::vector<uint64_t> BuildSuffixArray(const std::string& text) {
  const std::size_t n = text.size();
  std::vector<uint64_t> result;
  if (n == 0) return result;

  // Shift bytes by +1 and append the required unique smallest sentinel.
  std::vector<uint32_t> s(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<uint32_t>(static_cast<unsigned char>(text[i])) + 1;
  }
  s[n] = 0;

  std::vector<uint32_t> sa;
  SaIs(s, 258, &sa);

  result.reserve(n);
  for (std::size_t i = 1; i < sa.size(); ++i) {  // skip the sentinel suffix
    result.push_back(sa[i]);
  }
  return result;
}

std::vector<uint64_t> BuildSuffixArrayNaive(const std::string& text) {
  std::vector<uint64_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](uint64_t a, uint64_t b) {
    return text.compare(a, std::string::npos, text, b, std::string::npos) < 0;
  });
  return sa;
}

}  // namespace era
