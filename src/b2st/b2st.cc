#include "b2st/b2st.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/timer.h"
#include "era/build_subtree.h"
#include "era/memory_layout.h"
#include "io/string_reader.h"
#include "sa/sais.h"
#include "suffixtree/serializer.h"

namespace era {

namespace {

/// Look-ahead context appended to each partition before building its local
/// suffix array.
constexpr uint64_t kContextBytes = 1024;

/// Comparison key stored with every temp-file entry — the stand-in for
/// B2ST's pairwise order arrays: order information precomputed in phase 1 so
/// the merge reads temp files sequentially instead of seeking in S. Ties
/// beyond the key (rare outside long repeats) fall back to a disk
/// comparison.
constexpr uint32_t kKeyBytes = 32;

/// Temp-file entry: global position + key length + fixed-width key.
struct SaEntry {
  uint64_t position;
  uint32_t key_len;
  char key[kKeyBytes];
};
static_assert(sizeof(SaEntry) == 48, "entry layout is serialized verbatim");

/// Streams the suffixes at `a` and `b` from `offset` onward until they
/// differ; returns the total LCP and the order. Distinct suffixes always
/// differ before either ends (unique terminal).
Status StreamedCompare(StringReader* reader_a, StringReader* reader_b,
                       uint64_t a, uint64_t b, uint64_t offset, bool* a_less,
                       uint64_t* lcp) {
  char buf_a[256];
  char buf_b[256];
  while (true) {
    uint32_t got_a = 0;
    uint32_t got_b = 0;
    ERA_RETURN_NOT_OK(
        reader_a->RandomFetch(a + offset, sizeof(buf_a), buf_a, &got_a));
    ERA_RETURN_NOT_OK(
        reader_b->RandomFetch(b + offset, sizeof(buf_b), buf_b, &got_b));
    uint32_t m = std::min(got_a, got_b);
    for (uint32_t i = 0; i < m; ++i) {
      if (buf_a[i] != buf_b[i]) {
        *a_less = buf_a[i] < buf_b[i];
        *lcp = offset + i;
        return Status::OK();
      }
    }
    if (m == 0 || got_a != got_b) {
      return Status::Internal("suffix comparison ran past the terminal");
    }
    offset += m;
  }
}

/// Buffered sequential reader over one partition's temp file. After Open(),
/// head() is valid while has_head(); Pop() consumes it and loads the next.
class EntryStream {
 public:
  Status Open(Env* env, const std::string& path, IoStats* io) {
    io_ = io;
    ERA_ASSIGN_OR_RETURN(file_, env->OpenRandomAccess(path));
    count_ = file_->Size() / sizeof(SaEntry);
    return Pop();
  }

  bool has_head() const { return has_head_; }
  const SaEntry& head() const { return head_; }

  /// Consumes the current head and loads the next entry if any.
  Status Pop() {
    if (cursor_ >= count_) {
      has_head_ = false;
      return Status::OK();
    }
    if (buffer_pos_ >= buffer_.size()) {
      std::size_t want =
          std::min<std::size_t>(kBlockEntries, count_ - cursor_);
      buffer_.resize(want);
      std::size_t got = 0;
      ERA_RETURN_NOT_OK(file_->Read(
          cursor_ * sizeof(SaEntry), want * sizeof(SaEntry),
          reinterpret_cast<char*>(buffer_.data()), &got));
      if (got != want * sizeof(SaEntry)) {
        return Status::Corruption("truncated partition temp file");
      }
      if (io_ != nullptr) {
        io_->bytes_read += got;
        ++io_->seeks;  // switching between k interleaved streams
      }
      buffer_pos_ = 0;
    }
    head_ = buffer_[buffer_pos_++];
    ++cursor_;
    has_head_ = true;
    return Status::OK();
  }

 private:
  static constexpr std::size_t kBlockEntries = 512;

  std::unique_ptr<RandomAccessFile> file_;
  IoStats* io_ = nullptr;
  uint64_t cursor_ = 0;
  uint64_t count_ = 0;
  std::vector<SaEntry> buffer_;
  std::size_t buffer_pos_ = 0;
  SaEntry head_{};
  bool has_head_ = false;
};

}  // namespace

StatusOr<B2stResult> B2stBuilder::Build(const TextInfo& text) {
  WallTimer total_timer;
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options_));
  Env* env = options_.GetEnv();
  ERA_RETURN_NOT_OK(env->CreateDir(options_.work_dir));

  B2stResult result;
  result.work_dir = options_.work_dir;
  BuildStats& stats = result.stats;

  // SA-IS working set is ~17-20 bytes per input byte (expanded integer
  // string, suffix array, type/bucket arrays); size partitions so phase 1
  // stays within the budget.
  const uint64_t partition_bytes =
      std::max<uint64_t>(4096, options_.memory_budget / 20);
  const uint64_t n = text.length;
  const uint64_t num_partitions = (n + partition_bytes - 1) / partition_bytes;
  stats.num_groups = num_partitions;

  StringReaderOptions reader_options;
  reader_options.buffer_bytes =
      std::max<uint64_t>(4096, options_.input_buffer_bytes);

  // ---- Phase 1: per-partition suffix arrays + order keys, spilled to disk.
  {
    IoStats phase1_io;
    ERA_ASSIGN_OR_RETURN(
        auto reader,
        OpenStringReader(env, text.path, reader_options, &phase1_io));
    for (uint64_t k = 0; k < num_partitions; ++k) {
      uint64_t begin = k * partition_bytes;
      uint64_t end = std::min(n, begin + partition_bytes);
      uint64_t context_end = std::min(n, end + kContextBytes);

      std::string chunk(context_end - begin, '\0');
      uint32_t got = 0;
      reader->BeginScan(begin);  // partitions overlap by the context
      ERA_RETURN_NOT_OK(reader->Fetch(begin,
                                      static_cast<uint32_t>(chunk.size()),
                                      chunk.data(), &got));
      if (got != chunk.size()) {
        return Status::IOError("short read of partition " + std::to_string(k));
      }
      std::vector<uint64_t> local_sa = BuildSuffixArray(chunk);
      std::string blob;
      blob.reserve((end - begin) * sizeof(SaEntry));
      for (uint64_t pos : local_sa) {
        if (pos >= end - begin) continue;
        SaEntry entry;
        entry.position = begin + pos;
        entry.key_len = static_cast<uint32_t>(
            std::min<uint64_t>(kKeyBytes, chunk.size() - pos));
        std::memset(entry.key, 0, sizeof(entry.key));
        std::memcpy(entry.key, chunk.data() + pos, entry.key_len);
        blob.append(reinterpret_cast<const char*>(&entry), sizeof(entry));
      }
      ERA_RETURN_NOT_OK(env->WriteFile(
          options_.work_dir + "/sa_" + std::to_string(k) + ".tmp", blob));
      phase1_io.bytes_written += blob.size();
    }
    stats.io.Add(phase1_io);
  }

  // ---- Phase 2: k-way merge over the temp-file streams.
  IoStats merge_io;
  std::vector<EntryStream> streams(num_partitions);
  for (uint64_t k = 0; k < num_partitions; ++k) {
    ERA_RETURN_NOT_OK(streams[k].Open(
        env, options_.work_dir + "/sa_" + std::to_string(k) + ".tmp",
        &merge_io));
  }
  // Dedicated fallback readers for key ties. The original algorithm
  // resolves these comparisons with order arrays precomputed by additional
  // sequential phase-1 passes (which is why its temporaries reach ~130x the
  // input); billing the fallback as sequential volume mirrors that cost
  // shape instead of charging phantom head movement.
  StringReaderOptions fallback_options;
  fallback_options.buffer_bytes = 16 << 10;
  fallback_options.bill_random_as_sequential = true;
  fallback_options.random_window_bytes = 1024;
  ERA_ASSIGN_OR_RETURN(
      auto lcp_reader_a,
      OpenStringReader(env, text.path, fallback_options, &merge_io));
  ERA_ASSIGN_OR_RETURN(
      auto lcp_reader_b,
      OpenStringReader(env, text.path, fallback_options, &merge_io));

  // B2ST never opens a build TileCache (one linear pass per partition
  // pair); plan without the carve so R is not shrunk for nothing.
  BuildOptions plan_options = options_;
  plan_options.tile_cache = false;
  plan_options.prefetch_reads = false;  // nor a prefetch ring
  ERA_ASSIGN_OR_RETURN(MemoryLayout layout,
                       PlanMemory(plan_options, text.alphabet.size()));
  stats.fm = layout.fm;
  stats.text_bytes = text.length;

  PreparedSubTree current;
  SaEntry prev{};
  bool have_prev = false;
  uint64_t emitted = 0;
  uint32_t subtree_counter = 0;
  IoStats write_io;

  auto flush_subtree = [&]() -> Status {
    if (current.leaves.empty()) return Status::OK();
    ERA_ASSIGN_OR_RETURN(TreeBuffer tree, BuildSubTree(current, text.length));
    stats.peak_tree_bytes =
        std::max(stats.peak_tree_bytes, tree.MemoryBytes());
    std::string filename = "bt_" + std::to_string(subtree_counter++) + ".bin";
    ERA_RETURN_NOT_OK(WriteSubTree(env, options_.work_dir + "/" + filename,
                                   "", tree, &write_io, nullptr,
                                   options_.format));
    result.subtree_files.push_back(filename);
    current.leaves.clear();
    current.branches.clear();
    return Status::OK();
  };

  // Key-based comparison with disk fallback. Returns a<b and, if the
  // entries are adjacent in the output, their LCP.
  auto compare = [&](const SaEntry& a, const SaEntry& b, bool* a_less,
                     uint64_t* lcp) -> Status {
    uint32_t m = std::min(a.key_len, b.key_len);
    uint32_t i = 0;
    while (i < m && a.key[i] == b.key[i]) ++i;
    if (i < m) {
      *a_less = static_cast<unsigned char>(a.key[i]) <
                static_cast<unsigned char>(b.key[i]);
      *lcp = i;
      return Status::OK();
    }
    if (m < kKeyBytes) {
      // The shorter key ended at the text end (terminal included): keys
      // cannot be equal-and-exhausted for distinct suffixes.
      *a_less = a.key_len < b.key_len;
      *lcp = i;
      return Status::OK();
    }
    return StreamedCompare(lcp_reader_a.get(), lcp_reader_b.get(), a.position,
                           b.position, kKeyBytes, a_less, lcp);
  };

  while (true) {
    int best = -1;
    for (std::size_t k = 0; k < streams.size(); ++k) {
      if (!streams[k].has_head()) continue;
      if (best < 0) {
        best = static_cast<int>(k);
        continue;
      }
      bool less = false;
      uint64_t lcp = 0;
      ERA_RETURN_NOT_OK(compare(streams[k].head(),
                                streams[static_cast<std::size_t>(best)].head(),
                                &less, &lcp));
      if (less) best = static_cast<int>(k);
    }
    if (best < 0) break;
    EntryStream& winner = streams[static_cast<std::size_t>(best)];
    const SaEntry head = winner.head();

    uint64_t lcp = 0;
    if (have_prev) {
      bool less = false;
      ERA_RETURN_NOT_OK(compare(prev, head, &less, &lcp));
      if (!less) {
        return Status::Internal("merge order violated");
      }
      if (current.leaves.size() >= layout.fm) {
        ERA_RETURN_NOT_OK(flush_subtree());
      }
    }

    BranchInfo branch;
    branch.offset = lcp;
    branch.defined = true;
    current.branches.push_back(branch);
    current.leaves.push_back(head.position);
    ++emitted;
    prev = head;
    have_prev = true;
    ERA_RETURN_NOT_OK(winner.Pop());
  }
  ERA_RETURN_NOT_OK(flush_subtree());
  stats.io.Add(merge_io);
  stats.io.Add(write_io);
  stats.num_subtrees = result.subtree_files.size();

  if (emitted != n) {
    return Status::Internal("merge emitted " + std::to_string(emitted) +
                            " of " + std::to_string(n) + " suffixes");
  }

  for (uint64_t k = 0; k < num_partitions; ++k) {
    ERA_RETURN_NOT_OK(env->DeleteFile(options_.work_dir + "/sa_" +
                                      std::to_string(k) + ".tmp"));
  }
  stats.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace era
