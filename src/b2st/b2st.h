// B2ST baseline (Barsky, Stege, Thomo, Upton, CIKM 2009 — reference [2]).
//
// The suffix-array route to an out-of-core suffix tree, as this paper's
// Section 3 describes it:
//   1. Split S into partitions sized so a partition's suffix array fits in
//      memory; build each with SA-IS (plus a bounded look-ahead context) and
//      spill it to disk — the large temporary results the paper calls out.
//   2. K-way merge the partition suffix arrays. Order decisions that the
//      look-ahead context cannot settle are resolved by comparing the
//      suffixes directly from disk through buffered readers (the original
//      resolves these with pairwise order arrays; same information, same
//      asymptotics, far more I/O when memory is small — the O(n^2/M)
//      degradation in the paper's complexity discussion).
//   3. Cut the merged (SA, LCP) stream into bounded sub-trees and build each
//      in batch (the construction-at-the-end property that makes B2ST cache
//      friendly).
//
// B2ST has no prefix-routed trie; its output is an ordered forest manifest.

#ifndef ERA_B2ST_B2ST_H_
#define ERA_B2ST_B2ST_H_

#include <string>
#include <vector>

#include "common/options.h"
#include "common/status.h"
#include "era/era_builder.h"
#include "text/corpus.h"

namespace era {

/// Output manifest: sub-tree files in global lexicographic order.
struct B2stResult {
  std::vector<std::string> subtree_files;  // relative to work_dir
  std::string work_dir;
  BuildStats stats;
};

/// Out-of-core suffix-array-merge builder.
class B2stBuilder {
 public:
  explicit B2stBuilder(const BuildOptions& options) : options_(options) {}

  StatusOr<B2stResult> Build(const TextInfo& text);

 private:
  BuildOptions options_;
};

}  // namespace era

#endif  // ERA_B2ST_B2ST_H_
