// TRELLIS baseline (Phoophakdee & Zaki, SIGMOD 2007 — reference [13]).
//
// The semi-disk-based approach as this paper's Section 3 describes it:
//   * requires the input string S to fit in main memory (the paper's plots
//     for TRELLIS start only once that holds; we return NotSupported
//     otherwise). S is held bit-packed (2 bits/symbol for DNA, 5 for
//     protein/English — the encoding Section 6.1 discusses);
//   * phase 1 partitions S into segments, builds the suffix sub-trees of
//     each segment split by a global set of variable-length prefixes, and
//     stores every (segment, prefix) sub-tree on disk — ~an order of
//     magnitude more bytes than S;
//   * phase 2 merges, for each prefix, the sub-trees of all segments into
//     the final sub-tree. The loads are random disk I/O over a forest ~26x
//     the input — the merge-phase bottleneck the paper measures in
//     Figure 10(a).
//
// The merge is a real structural k-way suffix-tree merge (edges compared
// symbol-by-symbol against the in-memory S).

#ifndef ERA_TRELLIS_TRELLIS_H_
#define ERA_TRELLIS_TRELLIS_H_

#include <vector>

#include "common/options.h"
#include "common/status.h"
#include "era/era_builder.h"
#include "suffixtree/tree_buffer.h"
#include "text/corpus.h"

namespace era {

/// Merges sub-trees (over the same text) into one. Exposed for tests.
/// `cursors` are the roots of the trees to merge; all trees must index
/// disjoint leaf sets of suffixes of `text`.
StatusOr<TreeBuffer> MergeSubTrees(const std::vector<const TreeBuffer*>& trees,
                                   const std::string& text);

/// The semi-disk-based TRELLIS builder.
class TrellisBuilder {
 public:
  explicit TrellisBuilder(const BuildOptions& options) : options_(options) {}

  /// Fails with NotSupported if S does not fit in the memory budget.
  StatusOr<BuildResult> Build(const TextInfo& text);

 private:
  BuildOptions options_;
};

}  // namespace era

#endif  // ERA_TRELLIS_TRELLIS_H_
