#include "trellis/trellis.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/timer.h"
#include "era/build_subtree.h"
#include "era/memory_layout.h"
#include "era/vertical_partitioner.h"
#include "sa/lcp.h"
#include "suffixtree/serializer.h"

namespace era {

namespace {

/// A position inside a source tree during merging: `node`'s incoming edge
/// with `consumed` symbols of its label already matched.
struct Cursor {
  const TreeBuffer* tree;
  uint32_t node;
  uint32_t consumed;
};

/// Recursively copies the subtree under `cursor` into `out` beneath
/// `out_parent`, trimming `consumed` symbols off the top edge. Children are
/// already sorted in the source. Returns the new node id.
uint32_t CopySubTree(TreeBuffer* out, const Cursor& cursor) {
  struct Item {
    uint32_t src;
    uint32_t dst;
  };
  const TreeBuffer& src_tree = *cursor.tree;
  uint32_t top = out->AddNode();
  {
    const TreeNode& src = src_tree.node(cursor.node);
    TreeNode& dst = out->node(top);
    dst.edge_start = src.edge_start + cursor.consumed;
    dst.edge_len = src.edge_len - cursor.consumed;
    dst.leaf_id = src.leaf_id;
  }
  std::vector<Item> stack{{cursor.node, top}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    uint32_t prev_dst = kNilNode;
    for (uint32_t c = src_tree.node(item.src).first_child; c != kNilNode;
         c = src_tree.node(c).next_sibling) {
      uint32_t fresh = out->AddNode();
      const TreeNode& src = src_tree.node(c);
      TreeNode& dst = out->node(fresh);
      dst.edge_start = src.edge_start;
      dst.edge_len = src.edge_len;
      dst.leaf_id = src.leaf_id;
      if (prev_dst == kNilNode) {
        out->node(item.dst).first_child = fresh;
      } else {
        out->node(prev_dst).next_sibling = fresh;
      }
      prev_dst = fresh;
      stack.push_back({c, fresh});
    }
  }
  return top;
}

/// Merges the children represented by `cursors` (all at the same path
/// depth) under `out_parent`.
Status MergeChildren(TreeBuffer* out, uint32_t out_parent,
                     std::vector<Cursor> cursors, const std::string& text) {
  // Expand cursors that sit exactly at a node boundary into that node's
  // children; cursors mid-edge represent a pending child themselves.
  std::vector<Cursor> pending;
  for (const Cursor& cursor : cursors) {
    const TreeNode& node = cursor.tree->node(cursor.node);
    if (cursor.consumed == node.edge_len) {
      for (uint32_t c = node.first_child; c != kNilNode;
           c = cursor.tree->node(c).next_sibling) {
        pending.push_back({cursor.tree, c, 0});
      }
    } else {
      pending.push_back(cursor);
    }
  }

  // Group by the next symbol.
  auto next_symbol = [&](const Cursor& cursor) {
    const TreeNode& node = cursor.tree->node(cursor.node);
    return text[node.edge_start + cursor.consumed];
  };
  std::stable_sort(pending.begin(), pending.end(),
                   [&](const Cursor& a, const Cursor& b) {
                     return next_symbol(a) < next_symbol(b);
                   });

  uint32_t prev_child = kNilNode;
  std::size_t g = 0;
  while (g < pending.size()) {
    char symbol = next_symbol(pending[g]);
    std::size_t h = g;
    while (h < pending.size() && next_symbol(pending[h]) == symbol) ++h;

    uint32_t fresh;
    if (h - g == 1) {
      // Only one source continues with this symbol: verbatim copy.
      fresh = CopySubTree(out, pending[g]);
    } else {
      // Advance all members while their labels agree.
      std::vector<Cursor> members(pending.begin() + g, pending.begin() + h);
      const Cursor& head = members[0];
      uint64_t label_start =
          head.tree->node(head.node).edge_start + head.consumed;
      uint32_t advance = 0;
      bool diverged = false;
      while (!diverged) {
        // Has any member exhausted its edge label?
        for (Cursor& m : members) {
          const TreeNode& node = m.tree->node(m.node);
          if (m.consumed + advance == node.edge_len) {
            diverged = true;  // boundary: stop advancing here
            break;
          }
        }
        if (diverged) break;
        char want =
            text[head.tree->node(head.node).edge_start + head.consumed +
                 advance];
        for (Cursor& m : members) {
          const TreeNode& node = m.tree->node(m.node);
          if (text[node.edge_start + m.consumed + advance] != want) {
            diverged = true;
            break;
          }
        }
        if (!diverged) ++advance;
      }
      if (advance == 0) {
        return Status::Internal(
            "merge group shares no label symbols despite equal heads");
      }
      fresh = out->AddNode();
      TreeNode& fresh_node = out->node(fresh);
      fresh_node.edge_start = label_start;
      fresh_node.edge_len = advance;
      for (Cursor& m : members) m.consumed += advance;
      ERA_RETURN_NOT_OK(MergeChildren(out, fresh, std::move(members), text));
    }
    if (prev_child == kNilNode) {
      out->node(out_parent).first_child = fresh;
    } else {
      out->node(prev_child).next_sibling = fresh;
    }
    prev_child = fresh;
    g = h;
  }
  return Status::OK();
}

}  // namespace

StatusOr<TreeBuffer> MergeSubTrees(const std::vector<const TreeBuffer*>& trees,
                                   const std::string& text) {
  TreeBuffer out;
  std::vector<Cursor> cursors;
  for (const TreeBuffer* tree : trees) {
    cursors.push_back({tree, 0, 0});
  }
  ERA_RETURN_NOT_OK(MergeChildren(&out, 0, std::move(cursors), text));
  return out;
}

StatusOr<BuildResult> TrellisBuilder::Build(const TextInfo& text) {
  WallTimer total_timer;
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options_));
  Env* env = options_.GetEnv();
  ERA_RETURN_NOT_OK(env->CreateDir(options_.work_dir));

  BuildStats stats;

  // TRELLIS keeps S in memory (bit-packed). If it does not fit in half the
  // budget, the configuration is out of the algorithm's regime.
  int bits = text.alphabet.bits_per_symbol();
  uint64_t packed_bytes = (text.length * bits + 7) / 8;
  if (packed_bytes > options_.memory_budget / 2) {
    return Status::NotSupported(
        "TRELLIS requires the input string in memory (" +
        std::to_string(packed_bytes) + " bytes packed > half of budget)");
  }

  IoStats load_io;
  std::string packed_text;
  {
    StringReaderOptions reader_options;
    reader_options.buffer_bytes = options_.input_buffer_bytes;
    ERA_ASSIGN_OR_RETURN(
        auto reader,
        OpenStringReader(env, text.path, reader_options, &load_io));
    reader->BeginScan();
    packed_text.resize(text.length);
    uint32_t got = 0;
    uint64_t pos = 0;
    while (pos < text.length) {
      uint32_t want = static_cast<uint32_t>(
          std::min<uint64_t>(1 << 20, text.length - pos));
      ERA_RETURN_NOT_OK(
          reader->Fetch(pos, want, packed_text.data() + pos, &got));
      if (got == 0) break;
      pos += got;
    }
    if (pos != text.length) return Status::IOError("short read of text");
  }
  stats.io.Add(load_io);
  // For accounting we treat the resident string at its packed size; the
  // byte string here is an implementation convenience of the testbed.
  const std::string& s = packed_text;
  const uint64_t n = text.length;

  // TRELLIS never opens a build TileCache (its merge phase is semi-disk-
  // based random access); plan without the carve so R is not shrunk for a
  // cache that would go unused.
  BuildOptions plan_options = options_;
  plan_options.tile_cache = false;
  plan_options.prefetch_reads = false;  // nor a prefetch ring
  ERA_ASSIGN_OR_RETURN(MemoryLayout layout,
                       PlanMemory(plan_options, text.alphabet.size()));
  stats.fm = layout.fm;
  stats.text_bytes = text.length;

  // Global prefix set (computed in memory; TRELLIS derives its prefixes in
  // a preprocessing pass).
  WallTimer vertical_timer;
  ERA_ASSIGN_OR_RETURN(PartitionPlan plan,
                       VerticalPartition(text, options_, layout.fm));
  stats.vertical_seconds = vertical_timer.Seconds();
  stats.io.Add(plan.io);

  // Flatten groups: TRELLIS merges per prefix, grouping is ERA's trick.
  std::vector<PrefixInfo> prefixes;
  for (const auto& group : plan.groups) {
    for (const auto& p : group.prefixes) prefixes.push_back(p);
  }
  std::sort(prefixes.begin(), prefixes.end(),
            [](const PrefixInfo& a, const PrefixInfo& b) {
              return a.prefix < b.prefix;
            });
  stats.num_groups = prefixes.size();
  stats.num_subtrees = prefixes.size();

  // ---- Phase 1: per-segment sub-trees split by prefix, spilled to disk.
  const uint64_t segment_len =
      std::max<uint64_t>(1024, layout.fm);  // suffixes starting per segment
  const uint64_t num_segments = (n + segment_len - 1) / segment_len;
  IoStats spill_io;

  // (prefix index, segment) -> filename.
  std::map<std::pair<std::size_t, uint64_t>, std::string> spills;
  for (uint64_t seg = 0; seg < num_segments; ++seg) {
    uint64_t begin = seg * segment_len;
    uint64_t end = std::min(n, begin + segment_len);

    // Sort the segment's suffixes (in-memory comparisons against S).
    std::vector<uint64_t> suffixes(end - begin);
    std::iota(suffixes.begin(), suffixes.end(), begin);
    std::sort(suffixes.begin(), suffixes.end(), [&](uint64_t a, uint64_t b) {
      return s.compare(a, std::string::npos, s, b, std::string::npos) < 0;
    });

    // Distribute by prefix (binary search over the sorted prefix set) and
    // build one sub-tree per non-empty prefix bucket with the shared stack
    // construction.
    std::size_t p = 0;
    std::size_t i = 0;
    while (i < suffixes.size()) {
      // Find the prefix bucket for suffixes[i]; suffixes without a bucket
      // are the direct trie leaves (p + terminal) handled by the plan.
      while (p < prefixes.size() &&
             s.compare(suffixes[i], prefixes[p].prefix.size(),
                       prefixes[p].prefix) > 0) {
        ++p;
      }
      if (p == prefixes.size() ||
          s.compare(suffixes[i], prefixes[p].prefix.size(),
                    prefixes[p].prefix) != 0) {
        ++i;  // terminal leaf (covered via the plan) or gap
        continue;
      }
      PreparedSubTree prepared;
      prepared.prefix = prefixes[p].prefix;
      prepared.branches.push_back({0, 0, 0, true});
      prepared.leaves.push_back(suffixes[i]);
      std::size_t j = i + 1;
      while (j < suffixes.size() &&
             s.compare(suffixes[j], prefixes[p].prefix.size(),
                       prefixes[p].prefix) == 0) {
        BranchInfo branch;
        branch.offset = LcpOfSuffixes(s, suffixes[j - 1], suffixes[j]);
        branch.defined = true;
        prepared.branches.push_back(branch);
        prepared.leaves.push_back(suffixes[j]);
        ++j;
      }
      ERA_ASSIGN_OR_RETURN(TreeBuffer tree, BuildSubTree(prepared, n));
      std::string filename = "seg_" + std::to_string(seg) + "_p" +
                             std::to_string(p) + ".bin";
      ERA_RETURN_NOT_OK(WriteSubTree(env, options_.work_dir + "/" + filename,
                                     prepared.prefix, tree, &spill_io,
                                     nullptr, options_.format));
      spills[{p, seg}] = filename;
      i = j;
    }
  }
  stats.io.Add(spill_io);

  // ---- Phase 2: per-prefix merge of segment sub-trees (random disk I/O).
  WallTimer merge_timer;
  IoStats merge_io;
  std::vector<GroupOutput> outputs(prefixes.size());
  for (std::size_t p = 0; p < prefixes.size(); ++p) {
    std::vector<TreeBuffer> loaded;
    for (uint64_t seg = 0; seg < num_segments; ++seg) {
      auto it = spills.find({p, seg});
      if (it == spills.end()) continue;
      TreeBuffer tree;
      ERA_RETURN_NOT_OK(ReadSubTree(env, options_.work_dir + "/" + it->second,
                                    &tree, nullptr, &merge_io));
      loaded.push_back(std::move(tree));
    }
    if (loaded.empty()) {
      return Status::Internal("prefix with no segment sub-trees: " +
                              prefixes[p].prefix);
    }
    std::vector<const TreeBuffer*> pointers;
    for (const TreeBuffer& t : loaded) pointers.push_back(&t);
    ERA_ASSIGN_OR_RETURN(TreeBuffer merged, MergeSubTrees(pointers, s));

    uint64_t group_bytes = merged.MemoryBytes();
    for (const TreeBuffer& t : loaded) group_bytes += t.MemoryBytes();
    stats.peak_tree_bytes = std::max(stats.peak_tree_bytes, group_bytes);

    std::string filename = "st_" + std::to_string(p) + "_0.bin";
    ERA_RETURN_NOT_OK(WriteSubTree(env, options_.work_dir + "/" + filename,
                                   prefixes[p].prefix, merged,
                                   &outputs[p].write_io, nullptr,
                                   options_.format));
    outputs[p].subtrees.push_back(
        {prefixes[p].prefix, prefixes[p].frequency, filename});
    stats.io.Add(outputs[p].write_io);

    // Drop the spills for this prefix.
    for (uint64_t seg = 0; seg < num_segments; ++seg) {
      auto it = spills.find({p, seg});
      if (it != spills.end()) {
        ERA_RETURN_NOT_OK(env->DeleteFile(options_.work_dir + "/" +
                                          it->second));
      }
    }
  }
  stats.io.Add(merge_io);
  stats.horizontal_seconds = merge_timer.Seconds();

  BuildResult result;
  ERA_ASSIGN_OR_RETURN(result.index,
                       AssembleIndex(text, options_, plan, outputs));
  stats.total_seconds = total_timer.Seconds();
  result.stats = stats;
  return result;
}

}  // namespace era
