// era_cli — command-line front end for the library.
//
//   era_cli build  <text-file> <index-dir> [--budget-mb N] [--alphabet dna|
//                  protein|english] [--threads N] [--algorithm era|wavefront]
//                  [--resume] [--no-checkpoint] [--faults SPEC]
//
// --faults injects deterministic failures through io/faulty_env.h. SPEC is
// comma-separated key=value pairs, e.g.
//   --faults=read_transient=0.01,enospc_after=64MB,seed=7
// keys: read_transient / write_transient / short_write (probabilities),
// fail_read_at / fail_write_at / crash_after_writes / torn_write_at / seed
// (1-based call counts), read_permanent / write_permanent (0/1),
// enospc_after (bytes, K/M/G suffixes), path (substring filter).
//
// Exit codes: 0 success, 1 failure, 2 usage error, 3 I/O error, 4 deadline
// exceeded, 5 shed/overloaded — so drills and CI can tell a bad invocation
// from a bad device from an overloaded server.
//   era_cli query  <index-dir> <pattern> [--limit N] [--deadline-ms N]
//   era_cli stats  <index-dir>
//   era_cli inspect <index-dir>           (per-sub-tree format/size/ratio)
//   era_cli verify <index-dir>            (loads text + validates everything)
//   era_cli generate <out-file> <dna|protein|english> <bytes> [seed]
//   era_cli bench-query <index-dir> [--threads N] [--patterns N]
//                  [--cache-mb N] [--seed S]   (replays a sampled workload)
//   era_cli build-collection <index-dir> [--alphabet ...] [--budget-mb N]
//                  [--threads N] [--fasta] [--synthetic N] [--doc-bytes M]
//                  [--seed S] [doc-file ...]   (generalized index + DOCMAP)
//   era_cli doc-query <index-dir> <pattern> [--top K] [--doc NAME]
//   era_cli dict-query <index-dir> --patterns FILE [--top K] [--doc]
//                  [--deadline-ms N]   (batched dictionary matching; --doc
//                  counts distinct documents per pattern)
//
// The text file must be raw symbols; a trailing terminal byte ('~') is
// appended if missing.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "collection/collection_builder.h"
#include "collection/doc_engine.h"
#include "common/metrics.h"
#include "era/era_builder.h"
#include "era/parallel_builder.h"
#include "io/env.h"
#include "io/faulty_env.h"
#include "query/query_engine.h"
#include "query/query_workload.h"
#include "suffixtree/serializer.h"
#include "suffixtree/validator.h"
#include "text/corpus.h"
#include "text/text_generator.h"
#include "wavefront/wavefront.h"

namespace era {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  era_cli build  <text-file> <index-dir> [--budget-mb N]\n"
      "                 [--alphabet dna|protein|english] [--threads N]\n"
      "                 [--algorithm era|wavefront] [--cache-budget MB]\n"
      "                 [--format v2|v3] [--no-tile-cache] [--resume]\n"
      "                 [--no-checkpoint] [--faults SPEC]\n"
      "       (--format picks the sub-tree file format: v3 bit-packed\n"
      "        (default) or v2 fixed 32-byte records)\n"
      "       (--resume skips groups an earlier killed build completed;\n"
      "        --faults injects deterministic failures, e.g.\n"
      "        read_transient=0.01,enospc_after=64MB,seed=7)\n"
      "  era_cli query  <index-dir> <pattern> [--limit N] [--deadline-ms N]\n"
      "                 [--metrics-out FILE] [--trace-out FILE]\n"
      "  era_cli stats  <index-dir>\n"
      "  era_cli inspect <index-dir>\n"
      "  era_cli verify <index-dir>\n"
      "  era_cli generate <out-file> <dna|protein|english> <bytes> [seed]\n"
      "  era_cli bench-query <index-dir> [--threads N] [--patterns N]\n"
      "                 [--cache-mb N] [--seed S] [--metrics-out FILE]\n"
      "                 [--trace-out FILE]\n"
      "       (--metrics-out writes the registry snapshot: Prometheus text,\n"
      "        or JSON when FILE ends in .json; --trace-out writes the last\n"
      "        traces as chrome://tracing JSON)\n"
      "  era_cli build-collection <index-dir> [--alphabet dna|protein|\n"
      "                 english] [--budget-mb N] [--threads N] [--fasta]\n"
      "                 [--synthetic N] [--doc-bytes M] [--seed S]\n"
      "                 [doc-file ...]\n"
      "       (each doc-file is one document; with --fasta every record of\n"
      "        every file becomes a document; --synthetic N generates N\n"
      "        documents of ~M bytes)\n"
      "  era_cli doc-query <index-dir> <pattern> [--top K] [--doc NAME]\n"
      "                 [--deadline-ms N] [--metrics-out FILE]\n"
      "                 [--trace-out FILE]\n"
      "  era_cli dict-query <index-dir> --patterns FILE [--top K] [--doc]\n"
      "                 [--deadline-ms N] [--metrics-out FILE]\n"
      "                 [--trace-out FILE]\n"
      "       (FILE holds one pattern per line; the whole set is answered\n"
      "        in one shared-descent pass. --doc reports distinct matching\n"
      "        documents per pattern instead of occurrence counts)\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  // Distinct exit codes so scripts can separate "device/file problem"
  // (exit 3, retryable, maybe --resume), "deadline exceeded" (exit 4, the
  // query was too slow, not wrong) and "shed/overloaded" (exit 5, retry
  // elsewhere or later) from logic failures (exit 1).
  if (status.IsDeadlineExceeded()) return 4;
  if (status.IsResourceExhausted()) return 5;
  return status.IsIOError() ? 3 : 1;
}

StatusOr<Alphabet> ParseAlphabet(const std::string& name) {
  if (name == "dna") return Alphabet::Dna();
  if (name == "protein") return Alphabet::Protein();
  if (name == "english") return Alphabet::English();
  return Status::InvalidArgument("unknown alphabet: " + name);
}

/// Returns the value of --flag from args (either "--flag value" or
/// "--flag=value"), or `fallback`.
std::string FlagValue(const std::vector<std::string>& args,
                      const std::string& flag, const std::string& fallback) {
  const std::string prefix = flag + "=";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag && i + 1 < args.size()) return args[i + 1];
    if (args[i].compare(0, prefix.size(), prefix) == 0) {
      return args[i].substr(prefix.size());
    }
  }
  return fallback;
}

bool HasFlag(const std::vector<std::string>& args, const std::string& flag) {
  for (const std::string& arg : args) {
    if (arg == flag) return true;
  }
  return false;
}

/// The caller's --deadline-ms as a QueryContext (no deadline when absent or
/// zero). The clock starts at parse time — the deadline covers the query
/// itself, not the index open, matching a server that admits after startup.
QueryContext ContextFromArgs(const std::vector<std::string>& args) {
  const double ms =
      std::strtod(FlagValue(args, "--deadline-ms", "0").c_str(), nullptr);
  if (ms <= 0) return QueryContext::Background();
  return QueryContext::WithTimeout(ms / 1000.0);
}

/// Registry-backed degradation printer — the single place the CLI's failure
/// paths (query, doc-query, bench-query) report serving state from. Snapshots
/// the global registry; if any degradation counter is nonzero, prints every
/// nonzero serving/doc-serving sample, so shed and quarantine and deadline
/// counters all surface through one code path. Prints nothing on a healthy
/// run, keeping the happy path clean.
void PrintDegradation() {
  static const char* const kTriggers[] = {
      "era_serving_shed_total",
      "era_serving_deadline_exceeded_total",
      "era_serving_cancelled_total",
      "era_serving_deadline_evicted_total",
      "era_query_unavailable_queries_total",
      "era_query_quarantined_subtrees",
      "era_doc_unavailable_queries_total",
      "era_doc_deadline_exceeded_total",
      "era_doc_shed_total",
  };
  const std::vector<MetricSample> samples =
      MetricsRegistry::Global()->Snapshot();
  bool degraded = false;
  for (const MetricSample& sample : samples) {
    for (const char* name : kTriggers) {
      if (sample.name == name && sample.value != 0) {
        degraded = true;
        break;
      }
    }
    if (degraded) break;
  }
  if (!degraded) return;
  std::printf("serving degradation (registry snapshot):\n");
  for (const MetricSample& sample : samples) {
    const bool relevant =
        sample.name.rfind("era_serving_", 0) == 0 ||
        sample.name.rfind("era_doc_", 0) == 0 ||
        sample.name == "era_query_unavailable_queries_total" ||
        sample.name == "era_query_quarantined_subtrees" ||
        sample.name == "era_query_subtree_load_failures_total";
    if (!relevant || sample.kind == MetricKind::kHistogram ||
        sample.value == 0) {
      continue;
    }
    const std::string labels = RenderLabels(sample.labels);
    if (labels.empty()) {
      std::printf("  %s %.0f\n", sample.name.c_str(), sample.value);
    } else {
      std::printf("  %s{%s} %.0f\n", sample.name.c_str(), labels.c_str(),
                  sample.value);
    }
  }
}

/// Writes the global registry snapshot to `path`: JSON when the filename
/// ends in .json, Prometheus text exposition otherwise. Empty path no-ops.
Status WriteMetricsOut(const std::string& path) {
  if (path.empty()) return Status::OK();
  MetricsRegistry* registry = MetricsRegistry::Global();
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  return GetDefaultEnv()->WriteFile(
      path, json ? registry->ExportJson() : registry->ExportPrometheus());
}

/// Writes the engine's recent traces as chrome://tracing JSON. Empty path
/// no-ops; a null tracer (tracing was not enabled) is an error because the
/// caller explicitly asked for traces.
Status WriteTraceOut(const std::string& path, TraceRecorder* tracer) {
  if (path.empty()) return Status::OK();
  if (tracer == nullptr) {
    return Status::InvalidArgument("--trace-out requires tracing (internal)");
  }
  return GetDefaultEnv()->WriteFile(path, tracer->ExportChromeTracing());
}

int CmdBuild(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  Env* env = GetDefaultEnv();
  const std::string text_path = args[0];
  const std::string index_dir = args[1];

  auto alphabet_or = ParseAlphabet(FlagValue(args, "--alphabet", "dna"));
  if (!alphabet_or.ok()) return Fail(alphabet_or.status());
  Alphabet alphabet = *alphabet_or;
  uint64_t budget =
      std::strtoull(FlagValue(args, "--budget-mb", "64").c_str(), nullptr, 10)
      << 20;
  unsigned threads = static_cast<unsigned>(
      std::strtoul(FlagValue(args, "--threads", "1").c_str(), nullptr, 10));
  std::string algorithm = FlagValue(args, "--algorithm", "era");
  uint64_t cache_budget_mb = std::strtoull(
      FlagValue(args, "--cache-budget", "0").c_str(), nullptr, 10);
  const bool tile_cache = !HasFlag(args, "--no-tile-cache");

  // Fault injection: wrap the whole build's filesystem in a FaultyEnv so
  // the drill exercises the same code paths production failures would.
  std::unique_ptr<FaultyEnv> faulty;
  const std::string fault_spec = FlagValue(args, "--faults", "");
  if (!fault_spec.empty()) {
    auto spec = ParseFaultSpec(fault_spec);
    if (!spec.ok()) return Fail(spec.status());
    faulty = std::make_unique<FaultyEnv>(env, *spec);
    env = faulty.get();
  }

  // Ensure the text ends with the terminal.
  std::string text;
  if (Status s = env->ReadFileToString(text_path, &text); !s.ok()) {
    return Fail(s);
  }
  std::string effective_path = text_path;
  if (text.empty() || text.back() != kTerminal) {
    text.push_back(kTerminal);
    effective_path = text_path + ".era";
    if (Status s = env->WriteFile(effective_path, text); !s.ok()) {
      return Fail(s);
    }
    std::printf("appended terminal; indexing %s\n", effective_path.c_str());
  }
  if (Status s = alphabet.ValidateText(text); !s.ok()) return Fail(s);

  TextInfo info;
  info.path = effective_path;
  info.length = text.size();
  info.alphabet = alphabet;

  BuildOptions options;
  options.work_dir = index_dir;
  options.memory_budget = budget;
  options.tile_cache = tile_cache;
  options.tile_cache_budget_bytes = cache_budget_mb << 20;
  options.env = env;
  options.resume = HasFlag(args, "--resume");
  options.checkpoint = !HasFlag(args, "--no-checkpoint");
  const std::string format = FlagValue(args, "--format", "v3");
  if (format == "v2") {
    options.format = SubTreeFormat::kCounted;
  } else if (format == "v3") {
    options.format = SubTreeFormat::kPacked;
  } else {
    std::fprintf(stderr, "unknown --format: %s (expected v2 or v3)\n",
                 format.c_str());
    return Usage();
  }

  BuildStats stats;
  Status build_status;
  if (algorithm == "wavefront" && threads <= 1) {
    WaveFrontBuilder builder(options);
    auto result = builder.Build(info);
    build_status = result.status();
    if (result.ok()) stats = result->stats;
  } else if (threads > 1) {
    ParallelAlgorithm pa = algorithm == "wavefront"
                               ? ParallelAlgorithm::kWaveFront
                               : ParallelAlgorithm::kEra;
    ParallelBuilder builder(options, threads, pa);
    auto result = builder.Build(info);
    build_status = result.status();
    if (result.ok()) stats = result->stats;
  } else {
    EraBuilder builder(options);
    auto result = builder.Build(info);
    build_status = result.status();
    if (result.ok()) stats = result->stats;
  }
  if (faulty != nullptr) {
    std::printf("faults: %s\n", faulty->stats().ToString().c_str());
  }
  if (!build_status.ok()) return Fail(build_status);
  std::printf("%s\n", stats.ToString().c_str());
  const std::string phase_table = FormatPhaseTable(stats.phases);
  if (!phase_table.empty()) std::printf("%s", phase_table.c_str());
  const uint64_t refills = stats.io.prefetch_hits + stats.io.prefetch_misses;
  std::printf(
      "io: amplification=%.2fx (%llu MB device reads / %llu MB text)\n"
      "prefetch: hit_rate=%.3f (%llu hits, %llu depth hits, %llu misses)  "
      "tile cache: hit_rate=%.3f (%llu hits, %llu misses, %llu MB from "
      "device, %llu MB evicted)\n",
      stats.io_amplification(),
      static_cast<unsigned long long>(stats.io.bytes_read >> 20),
      static_cast<unsigned long long>(stats.text_bytes >> 20),
      refills == 0 ? 0.0
                   : static_cast<double>(stats.io.prefetch_hits) / refills,
      static_cast<unsigned long long>(stats.io.prefetch_hits),
      static_cast<unsigned long long>(stats.io.prefetch_depth_hits),
      static_cast<unsigned long long>(stats.io.prefetch_misses),
      stats.tile_hit_rate(),
      static_cast<unsigned long long>(stats.io.tile_hits),
      static_cast<unsigned long long>(stats.io.tile_misses),
      static_cast<unsigned long long>(stats.io.tile_device_bytes >> 20),
      static_cast<unsigned long long>(stats.io.tile_evicted_bytes >> 20));
  return 0;
}

int CmdQuery(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  const std::string metrics_out = FlagValue(args, "--metrics-out", "");
  const std::string trace_out = FlagValue(args, "--trace-out", "");
  QueryEngineOptions options;
  options.trace.enabled = !trace_out.empty();
  auto engine = QueryEngine::Open(GetDefaultEnv(), args[0], options);
  if (!engine.ok()) return Fail(engine.status());
  std::size_t limit = static_cast<std::size_t>(
      std::strtoull(FlagValue(args, "--limit", "10").c_str(), nullptr, 10));
  const QueryContext ctx = ContextFromArgs(args);

  // Exports run on success AND failure: a shed or timed-out query is
  // exactly when the operator wants the metrics file.
  auto finish = [&](int code) {
    if (Status s = WriteMetricsOut(metrics_out); !s.ok()) return Fail(s);
    if (Status s = WriteTraceOut(trace_out, (*engine)->tracer()); !s.ok()) {
      return Fail(s);
    }
    return code;
  };

  auto count = (*engine)->Count(ctx, args[1]);
  if (!count.ok()) {
    PrintDegradation();
    return finish(Fail(count.status()));
  }
  auto hits = (*engine)->Locate(ctx, args[1], limit);
  if (!hits.ok()) {
    PrintDegradation();
    return finish(Fail(hits.status()));
  }
  std::printf("%llu occurrence(s)", static_cast<unsigned long long>(*count));
  if (!hits->empty()) {
    std::printf("; first %zu:", hits->size());
    for (uint64_t h : *hits) {
      std::printf(" %llu", static_cast<unsigned long long>(h));
    }
  }
  std::printf("\n");
  return finish(0);
}

int CmdStats(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  auto index = TreeIndex::Load(GetDefaultEnv(), args[0]);
  if (!index.ok()) return Fail(index.status());
  std::printf("text: %s (%llu symbols incl. terminal)\n",
              index->text().path.c_str(),
              static_cast<unsigned long long>(index->text().length));
  std::printf("alphabet: %s (+terminal)\n",
              index->text().alphabet.symbols().c_str());
  std::printf("sub-trees: %zu\n", index->subtrees().size());
  std::printf("indexed suffixes: %llu\n",
              static_cast<unsigned long long>(index->TotalSuffixes()));
  std::printf("trie nodes: %u (%llu bytes)\n", index->trie().size(),
              static_cast<unsigned long long>(index->trie().MemoryBytes()));
  uint64_t max_freq = 0;
  for (const auto& entry : index->subtrees()) {
    max_freq = std::max(max_freq, entry.frequency);
  }
  std::printf("largest sub-tree: %llu leaves\n",
              static_cast<unsigned long long>(max_freq));
  return 0;
}

int CmdInspect(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  Env* env = GetDefaultEnv();
  auto index = TreeIndex::Load(env, args[0]);
  if (!index.ok()) return Fail(index.status());

  std::printf("%-6s %-4s %-9s %10s %12s %12s %12s %6s\n", "id", "fmt",
              "prefix", "nodes", "disk_bytes", "serve_bytes", "v2_bytes",
              "ratio");
  uint64_t total_disk = 0;
  uint64_t total_serving = 0;
  uint64_t total_inflated = 0;
  uint64_t total_nodes = 0;
  for (uint32_t id = 0; id < index->subtrees().size(); ++id) {
    const SubTreeEntry& entry = index->subtrees()[id];
    auto info = InspectSubTreeFile(env, index->dir() + "/" + entry.filename);
    if (!info.ok()) return Fail(info.status());
    const double ratio =
        info->serving_bytes == 0
            ? 0.0
            : static_cast<double>(info->inflated_bytes) / info->serving_bytes;
    std::printf("%-6u v%-3u %-9s %10llu %12llu %12llu %12llu %5.2fx\n", id,
                info->version, entry.prefix.c_str(),
                static_cast<unsigned long long>(info->node_count),
                static_cast<unsigned long long>(info->file_bytes),
                static_cast<unsigned long long>(info->serving_bytes),
                static_cast<unsigned long long>(info->inflated_bytes), ratio);
    total_disk += info->file_bytes;
    total_serving += info->serving_bytes;
    total_inflated += info->inflated_bytes;
    total_nodes += info->node_count;
  }
  const double total_ratio =
      total_serving == 0
          ? 0.0
          : static_cast<double>(total_inflated) / total_serving;
  std::printf(
      "total: %zu sub-trees, %llu nodes, %llu disk bytes, %llu serving "
      "bytes (%.2fx vs %llu inflated), %.2f bytes/node resident\n",
      index->subtrees().size(), static_cast<unsigned long long>(total_nodes),
      static_cast<unsigned long long>(total_disk),
      static_cast<unsigned long long>(total_serving), total_ratio,
      static_cast<unsigned long long>(total_inflated),
      total_nodes == 0 ? 0.0
                       : static_cast<double>(total_serving) / total_nodes);
  return 0;
}

int CmdVerify(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  Env* env = GetDefaultEnv();
  auto index = TreeIndex::Load(env, args[0]);
  if (!index.ok()) return Fail(index.status());
  std::string text;
  if (Status s = env->ReadFileToString(index->text().path, &text); !s.ok()) {
    return Fail(s);
  }
  if (Status s = ValidateIndex(env, *index, text); !s.ok()) {
    std::printf("INVALID: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("OK: %zu sub-trees, %llu suffixes, all invariants hold\n",
              index->subtrees().size(),
              static_cast<unsigned long long>(index->TotalSuffixes()));
  return 0;
}

int CmdBenchQuery(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  Env* env = GetDefaultEnv();

  unsigned threads = static_cast<unsigned>(
      std::strtoul(FlagValue(args, "--threads", "4").c_str(), nullptr, 10));
  QueryWorkloadOptions workload_options;
  workload_options.num_patterns = static_cast<std::size_t>(std::strtoull(
      FlagValue(args, "--patterns", "2000").c_str(), nullptr, 10));
  workload_options.seed = std::strtoull(
      FlagValue(args, "--seed", "42").c_str(), nullptr, 10);

  const std::string metrics_out = FlagValue(args, "--metrics-out", "");
  const std::string trace_out = FlagValue(args, "--trace-out", "");
  QueryEngineOptions engine_options;
  engine_options.cache.budget_bytes =
      std::strtoull(FlagValue(args, "--cache-mb", "64").c_str(), nullptr, 10)
      << 20;
  engine_options.trace.enabled = !trace_out.empty();

  auto engine = QueryEngine::Open(env, args[0], engine_options);
  if (!engine.ok()) return Fail(engine.status());

  std::string text;
  if (Status s = env->ReadFileToString((*engine)->index().text().path, &text);
      !s.ok()) {
    return Fail(s);
  }
  std::vector<std::string> patterns =
      SamplePatternWorkload(text, workload_options);
  text.clear();

  auto replay = ReplayWorkload(engine->get(), patterns, threads,
                               workload_options);
  if (!replay.ok()) {
    PrintDegradation();
    return Fail(replay.status());
  }

  TreeIndex::CacheSnapshot cache = (*engine)->cache();
  const uint64_t lookups = cache.hits + cache.misses;
  QueryStats stats = (*engine)->stats();
  std::printf(
      "threads=%u queries=%llu (count=%llu locate=%llu) wall=%.3fs "
      "qps=%.0f\n",
      threads, static_cast<unsigned long long>(replay->queries),
      static_cast<unsigned long long>(replay->count_queries),
      static_cast<unsigned long long>(replay->locate_queries),
      replay->wall_seconds, replay->qps);
  std::printf(
      "cache: hit_rate=%.3f hits=%llu misses=%llu evictions=%llu "
      "evicted=%lluB resident=%lluB/%llu trees\n",
      lookups == 0 ? 0.0 : static_cast<double>(cache.hits) / lookups,
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.evictions),
      static_cast<unsigned long long>(cache.evicted_bytes),
      static_cast<unsigned long long>(cache.resident_bytes),
      static_cast<unsigned long long>(cache.resident_trees));
  std::printf(
      "work: nodes_visited=%llu leaves_enumerated=%llu "
      "trie_resolved_counts=%llu checksum=%llu\n",
      static_cast<unsigned long long>(stats.nodes_visited),
      static_cast<unsigned long long>(stats.leaves_enumerated),
      static_cast<unsigned long long>(stats.trie_resolved_counts),
      static_cast<unsigned long long>(replay->occurrence_checksum));
  std::printf("latency: p50=%.3fms p90=%.3fms p99=%.3fms\n", replay->p50_ms,
              replay->p90_ms, replay->p99_ms);
  PrintDegradation();
  if (Status s = WriteMetricsOut(metrics_out); !s.ok()) return Fail(s);
  if (Status s = WriteTraceOut(trace_out, (*engine)->tracer()); !s.ok()) {
    return Fail(s);
  }
  return 0;
}

int CmdBuildCollection(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  Env* env = GetDefaultEnv();
  const std::string index_dir = args[0];

  auto alphabet_or = ParseAlphabet(FlagValue(args, "--alphabet", "dna"));
  if (!alphabet_or.ok()) return Fail(alphabet_or.status());

  CollectionBuildOptions options;
  options.build.work_dir = index_dir;
  options.build.memory_budget =
      std::strtoull(FlagValue(args, "--budget-mb", "64").c_str(), nullptr, 10)
      << 20;
  options.num_workers = static_cast<unsigned>(std::max(
      1ul, std::strtoul(FlagValue(args, "--threads", "1").c_str(), nullptr,
                        10)));

  const std::size_t synthetic = static_cast<std::size_t>(
      std::strtoull(FlagValue(args, "--synthetic", "0").c_str(), nullptr, 10));
  const std::size_t doc_bytes = static_cast<std::size_t>(std::strtoull(
      FlagValue(args, "--doc-bytes", "65536").c_str(), nullptr, 10));
  const uint64_t seed =
      std::strtoull(FlagValue(args, "--seed", "42").c_str(), nullptr, 10);
  bool fasta = false;
  for (const std::string& arg : args) {
    if (arg == "--fasta") fasta = true;
  }

  // Positional document files: everything after the index dir that is not a
  // flag or a flag's value.
  std::vector<std::string> doc_files;
  const std::vector<std::string> value_flags = {
      "--alphabet", "--budget-mb", "--threads",
      "--synthetic", "--doc-bytes", "--seed"};
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--fasta") continue;
    bool is_value_flag = false;
    for (const std::string& flag : value_flags) {
      if (args[i] == flag) {
        is_value_flag = true;
        break;
      }
    }
    if (is_value_flag) {
      ++i;  // skip the flag's value
      continue;
    }
    doc_files.push_back(args[i]);
  }

  CollectionBuilder builder(*alphabet_or, options);
  if (synthetic > 0) {
    if (Status s = builder.AddSyntheticDocuments(synthetic, doc_bytes, seed);
        !s.ok()) {
      return Fail(s);
    }
  }
  for (const std::string& file : doc_files) {
    Status s = fasta
                   ? builder.AddFastaFile(env, file, FastaCleanPolicy::kSkip)
                   : builder.AddTextFile(env, file);
    if (!s.ok()) return Fail(s);
  }
  if (builder.num_documents() == 0) {
    std::fprintf(stderr, "no documents (give doc files or --synthetic N)\n");
    return Usage();
  }

  auto result = builder.Build();
  if (!result.ok()) return Fail(result.status());
  std::printf("collection: %u documents, %llu document bytes\n",
              result->documents.num_documents(),
              static_cast<unsigned long long>(
                  result->documents.TotalDocumentBytes()));
  std::printf("%s\n", result->stats.ToString().c_str());
  return 0;
}

/// doc-query's failure path: the unified registry-snapshot printer (doc and
/// engine degradation counters flow through the same registry), then the
/// status-mapped exit code.
int FailDocQuery(const Status& status) {
  PrintDegradation();
  return Fail(status);
}

int CmdDocQuery(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  const std::string metrics_out = FlagValue(args, "--metrics-out", "");
  const std::string trace_out = FlagValue(args, "--trace-out", "");
  QueryEngineOptions options;
  options.trace.enabled = !trace_out.empty();
  auto engine = DocEngine::Open(GetDefaultEnv(), args[0], options);
  if (!engine.ok()) return Fail(engine.status());
  const std::string& pattern = args[1];
  const std::size_t top = static_cast<std::size_t>(
      std::strtoull(FlagValue(args, "--top", "5").c_str(), nullptr, 10));
  const QueryContext ctx = ContextFromArgs(args);

  auto finish = [&](int code) {
    if (Status s = WriteMetricsOut(metrics_out); !s.ok()) return Fail(s);
    if (Status s = WriteTraceOut(trace_out, (*engine)->engine().tracer());
        !s.ok()) {
      return Fail(s);
    }
    return code;
  };

  auto histogram = (*engine)->DocumentHistogram(ctx, pattern);
  if (!histogram.ok()) return finish(FailDocQuery(histogram.status()));
  uint64_t occurrences = 0;
  for (const DocHit& hit : *histogram) occurrences += hit.occurrences;
  std::printf("%zu of %u documents match (%llu occurrences)\n",
              histogram->size(), (*engine)->documents().num_documents(),
              static_cast<unsigned long long>(occurrences));
  for (const DocHit& hit : TopKFromHistogram(*histogram, top)) {
    std::printf("  %-40s %llu\n",
                (*engine)->documents().document(hit.doc_id).name.c_str(),
                static_cast<unsigned long long>(hit.occurrences));
  }

  const std::string doc_name = FlagValue(args, "--doc", "");
  if (!doc_name.empty()) {
    auto doc_id = (*engine)->documents().FindDocument(doc_name);
    if (!doc_id.ok()) return Fail(doc_id.status());
    auto local = (*engine)->LocateInDoc(ctx, pattern, *doc_id);
    if (!local.ok()) return finish(FailDocQuery(local.status()));
    std::printf("%s: %zu occurrence(s)", doc_name.c_str(), local->size());
    const std::size_t shown = std::min<std::size_t>(local->size(), 20);
    if (shown > 0) {
      std::printf("; first %zu:", shown);
      for (std::size_t i = 0; i < shown; ++i) {
        std::printf(" %llu", static_cast<unsigned long long>((*local)[i]));
      }
    }
    std::printf("\n");
  }
  return finish(0);
}

int CmdDictQuery(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  Env* env = GetDefaultEnv();
  const std::string patterns_file = FlagValue(args, "--patterns", "");
  if (patterns_file.empty()) {
    std::fprintf(stderr, "dict-query needs --patterns FILE\n");
    return Usage();
  }
  const std::string metrics_out = FlagValue(args, "--metrics-out", "");
  const std::string trace_out = FlagValue(args, "--trace-out", "");
  const std::size_t top = static_cast<std::size_t>(
      std::strtoull(FlagValue(args, "--top", "5").c_str(), nullptr, 10));
  const bool doc_mode = HasFlag(args, "--doc");
  const QueryContext ctx = ContextFromArgs(args);

  // One pattern per line; blank lines (and trailing \r) are skipped so both
  // Unix and DOS files work.
  std::string blob;
  if (Status s = env->ReadFileToString(patterns_file, &blob); !s.ok()) {
    return Fail(s);
  }
  std::vector<std::string> patterns;
  for (std::size_t start = 0; start < blob.size();) {
    std::size_t end = blob.find('\n', start);
    if (end == std::string::npos) end = blob.size();
    std::string line = blob.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) patterns.push_back(std::move(line));
    start = end + 1;
  }
  blob.clear();
  if (patterns.empty()) {
    std::fprintf(stderr, "no patterns in %s\n", patterns_file.c_str());
    return 2;
  }

  QueryEngineOptions options;
  options.trace.enabled = !trace_out.empty();
  std::unique_ptr<DocEngine> doc_engine;
  std::unique_ptr<QueryEngine> plain_engine;
  QueryEngine* engine = nullptr;
  if (doc_mode) {
    auto opened = DocEngine::Open(env, args[0], options);
    if (!opened.ok()) return Fail(opened.status());
    doc_engine = std::move(*opened);
    engine = &doc_engine->engine();
  } else {
    auto opened = QueryEngine::Open(env, args[0], options);
    if (!opened.ok()) return Fail(opened.status());
    plain_engine = std::move(*opened);
    engine = plain_engine.get();
  }

  auto finish = [&](int code) {
    if (Status s = WriteMetricsOut(metrics_out); !s.ok()) return Fail(s);
    if (Status s = WriteTraceOut(trace_out, engine->tracer()); !s.ok()) {
      return Fail(s);
    }
    return code;
  };

  // Per-item statuses and counts, unified across the two modes.
  std::vector<Status> statuses(patterns.size(), Status::OK());
  std::vector<uint64_t> counts(patterns.size(), 0);
  if (doc_mode) {
    auto outcomes = doc_engine->CountDocsDictionary(ctx, patterns);
    if (!outcomes.ok()) {
      PrintDegradation();
      return finish(Fail(outcomes.status()));
    }
    for (std::size_t i = 0; i < outcomes->size(); ++i) {
      statuses[i] = (*outcomes)[i].status;
      counts[i] = (*outcomes)[i].count;
    }
  } else {
    auto outcomes = engine->MatchDictionary(ctx, patterns);
    if (!outcomes.ok()) {
      PrintDegradation();
      return finish(Fail(outcomes.status()));
    }
    for (std::size_t i = 0; i < outcomes->size(); ++i) {
      statuses[i] = (*outcomes)[i].status;
      counts[i] = (*outcomes)[i].count;
    }
  }

  std::size_t answered = 0, matched = 0, failed = 0;
  uint64_t total = 0;
  const Status* terminal = nullptr;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (statuses[i].ok()) {
      ++answered;
      if (counts[i] > 0) ++matched;
      total += counts[i];
    } else {
      ++failed;
      if (terminal == nullptr && (statuses[i].IsDeadlineExceeded() ||
                                  statuses[i].IsCancelled())) {
        terminal = &statuses[i];
      }
    }
  }
  std::printf("%zu pattern(s): %zu answered, %zu matched, %zu failed; "
              "total %s=%llu\n",
              patterns.size(), answered, matched, failed,
              doc_mode ? "matching_docs" : "occurrences",
              static_cast<unsigned long long>(total));
  if (top > 0 && matched > 0) {
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      if (statuses[i].ok() && counts[i] > 0) order.push_back(i);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (counts[a] != counts[b]) return counts[a] > counts[b];
                return patterns[a] < patterns[b];
              });
    if (order.size() > top) order.resize(top);
    std::printf("top %zu:\n", order.size());
    for (std::size_t i : order) {
      std::printf("  %-40s %llu\n", patterns[i].c_str(),
                  static_cast<unsigned long long>(counts[i]));
    }
  }
  const QueryStats stats = engine->stats();
  std::printf("dict: groups=%llu shared_descents=%llu descents_saved=%llu "
              "duplicates_folded=%llu\n",
              static_cast<unsigned long long>(stats.dict_groups_formed),
              static_cast<unsigned long long>(stats.dict_descents_shared),
              static_cast<unsigned long long>(stats.dict_descents_saved),
              static_cast<unsigned long long>(stats.batch_duplicates_folded));
  PrintDegradation();
  // A mid-dictionary deadline/cancellation is reported with the same exit
  // codes as a single query that hit it (4/5), after the partial results.
  if (terminal != nullptr) return finish(Fail(*terminal));
  return finish(0);
}

int CmdGenerate(const std::vector<std::string>& args) {
  if (args.size() < 3) return Usage();
  uint64_t bytes = std::strtoull(args[2].c_str(), nullptr, 10);
  uint64_t seed = args.size() > 3
                      ? std::strtoull(args[3].c_str(), nullptr, 10)
                      : 42;
  std::string text;
  if (args[1] == "dna") {
    text = GenerateDna(bytes, seed);
  } else if (args[1] == "protein") {
    text = GenerateProtein(bytes, seed);
  } else if (args[1] == "english") {
    text = GenerateEnglish(bytes, seed);
  } else {
    return Usage();
  }
  if (Status s = GetDefaultEnv()->WriteFile(args[0], text); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %zu bytes (terminal included) to %s\n", text.size(),
              args[0].c_str());
  return 0;
}

}  // namespace
}  // namespace era

int main(int argc, char** argv) {
  if (argc < 2) return era::Usage();
  std::vector<std::string> args(argv + 2, argv + argc);
  std::string command = argv[1];
  if (command == "build") return era::CmdBuild(args);
  if (command == "query") return era::CmdQuery(args);
  if (command == "stats") return era::CmdStats(args);
  if (command == "inspect") return era::CmdInspect(args);
  if (command == "verify") return era::CmdVerify(args);
  if (command == "generate") return era::CmdGenerate(args);
  if (command == "bench-query") return era::CmdBenchQuery(args);
  if (command == "build-collection") return era::CmdBuildCollection(args);
  if (command == "doc-query") return era::CmdDocQuery(args);
  if (command == "dict-query") return era::CmdDictQuery(args);
  return era::Usage();
}
