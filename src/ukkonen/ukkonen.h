// Ukkonen's online O(n) in-memory suffix tree construction.
//
// The in-memory representative of Table 2 and the correctness oracle for the
// disk-based builders. Requires the whole text (with unique trailing
// terminal) in memory; it is intentionally *not* instrumented — the paper's
// point is precisely that this class of algorithm loses once data exceeds
// RAM (poor locality of reference).

#ifndef ERA_UKKONEN_UKKONEN_H_
#define ERA_UKKONEN_UKKONEN_H_

#include <string>

#include "common/status.h"
#include "suffixtree/tree_buffer.h"

namespace era {

/// Builds the suffix tree of `text` (must end with the unique terminal byte)
/// and returns it in the shared TreeBuffer representation with children in
/// lexicographic order.
StatusOr<TreeBuffer> BuildUkkonenTree(const std::string& text);

}  // namespace era

#endif  // ERA_UKKONEN_UKKONEN_H_
