#include "ukkonen/ukkonen.h"

#include <map>
#include <vector>

#include "alphabet/alphabet.h"

namespace era {

namespace {

/// Internal node representation during online construction.
struct UkkNode {
  int64_t start;                 // inclusive edge start in text
  int64_t end;                   // exclusive edge end; kOpenEnd for leaves
  int32_t suffix_link = 0;       // defaults to root
  std::map<char, int32_t> next;  // ordered children (terminal byte is
                                 // largest, matching the paper's ordering)
};

constexpr int64_t kOpenEnd = -1;

class UkkonenBuilder {
 public:
  explicit UkkonenBuilder(const std::string& text) : text_(text) {
    nodes_.push_back({-1, -1, 0, {}});  // root = 0
  }

  void Build() {
    for (std::size_t i = 0; i < text_.size(); ++i) {
      Extend(static_cast<int64_t>(i));
    }
  }

  /// Converts to the shared flat representation (children already sorted by
  /// the ordered map).
  TreeBuffer ToTreeBuffer() const {
    TreeBuffer out;
    const int64_t n = static_cast<int64_t>(text_.size());
    struct Frame {
      int32_t ukk;
      uint32_t flat;
      int64_t depth;
    };
    std::vector<Frame> stack;
    stack.push_back({0, 0, 0});
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      const UkkNode& src = nodes_[f.ukk];
      // Link children in lexicographic order. Build the sibling chain by
      // iterating the ordered map in reverse and prepending.
      uint32_t chain = kNilNode;
      for (auto it = src.next.rbegin(); it != src.next.rend(); ++it) {
        int32_t child = it->second;
        const UkkNode& cn = nodes_[child];
        int64_t edge_end = cn.end == kOpenEnd ? n : cn.end;
        uint32_t flat_child = out.AddNode();
        TreeNode& fc = out.node(flat_child);
        fc.edge_start = static_cast<uint64_t>(cn.start);
        fc.edge_len = static_cast<uint32_t>(edge_end - cn.start);
        fc.next_sibling = chain;
        chain = flat_child;
        int64_t child_depth = f.depth + (edge_end - cn.start);
        if (cn.next.empty()) {
          fc.leaf_id = static_cast<uint64_t>(n - child_depth);
        } else {
          stack.push_back({child, flat_child, child_depth});
        }
      }
      out.node(f.flat).first_child = chain;
    }
    return out;
  }

 private:
  int32_t NewNode(int64_t start, int64_t end) {
    nodes_.push_back({start, end, 0, {}});
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  int64_t EdgeLength(int32_t v, int64_t current) const {
    const UkkNode& node = nodes_[v];
    int64_t end = node.end == kOpenEnd ? current + 1 : node.end;
    return end - node.start;
  }

  void Extend(int64_t i) {
    char c = text_[static_cast<std::size_t>(i)];
    ++remaining_;
    int32_t last_internal = 0;

    while (remaining_ > 0) {
      if (active_length_ == 0) active_edge_ = i;
      char edge_first = text_[static_cast<std::size_t>(active_edge_)];
      auto it = nodes_[active_node_].next.find(edge_first);
      if (it == nodes_[active_node_].next.end()) {
        // No edge: create a leaf here.
        int32_t leaf = NewNode(i, kOpenEnd);
        nodes_[active_node_].next[edge_first] = leaf;
        if (last_internal != 0) {
          nodes_[last_internal].suffix_link = active_node_;
          last_internal = 0;
        }
      } else {
        int32_t next_node = it->second;
        int64_t len = EdgeLength(next_node, i);
        if (active_length_ >= len) {
          // Walk down.
          active_edge_ += len;
          active_length_ -= len;
          active_node_ = next_node;
          continue;
        }
        if (text_[static_cast<std::size_t>(nodes_[next_node].start +
                                           active_length_)] == c) {
          // Symbol already present: rule 3, stop here.
          if (last_internal != 0 && active_node_ != 0) {
            nodes_[last_internal].suffix_link = active_node_;
            last_internal = 0;
          }
          ++active_length_;
          break;
        }
        // Split the edge.
        int32_t split = NewNode(nodes_[next_node].start,
                                nodes_[next_node].start + active_length_);
        nodes_[active_node_].next[edge_first] = split;
        int32_t leaf = NewNode(i, kOpenEnd);
        nodes_[split].next[c] = leaf;
        nodes_[next_node].start += active_length_;
        nodes_[split].next[text_[static_cast<std::size_t>(
            nodes_[next_node].start)]] = next_node;
        if (last_internal != 0) {
          nodes_[last_internal].suffix_link = split;
        }
        last_internal = split;
      }

      --remaining_;
      if (active_node_ == 0 && active_length_ > 0) {
        --active_length_;
        active_edge_ = i - remaining_ + 1;
      } else if (active_node_ != 0) {
        active_node_ = nodes_[active_node_].suffix_link;
      }
    }
  }

  const std::string& text_;
  std::vector<UkkNode> nodes_;
  int32_t active_node_ = 0;
  int64_t active_edge_ = 0;
  int64_t active_length_ = 0;
  int64_t remaining_ = 0;
};

}  // namespace

StatusOr<TreeBuffer> BuildUkkonenTree(const std::string& text) {
  if (text.empty() || text.back() != kTerminal) {
    return Status::InvalidArgument("text must end with the terminal byte");
  }
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == kTerminal) {
      return Status::InvalidArgument("terminal byte inside text body");
    }
  }
  UkkonenBuilder builder(text);
  builder.Build();
  return builder.ToTreeBuffer();
}

}  // namespace era
