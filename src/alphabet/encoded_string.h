// Bit-packed in-memory string.
//
// Section 6.1 of the paper notes that DNA is kept at 2 bits/symbol and
// protein/English at 5 bits/symbol, which determines how much of S fits in
// RAM for the semi-disk-based competitor (TRELLIS). EncodedString packs the
// body of the text (terminal excluded); At(size()) returns the terminal.

#ifndef ERA_ALPHABET_ENCODED_STRING_H_
#define ERA_ALPHABET_ENCODED_STRING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"

namespace era {

/// Immutable bit-packed text. Build once via Encode(), then random-access.
class EncodedString {
 public:
  /// Packs `text` (which must validate against `alphabet`, i.e. end with the
  /// terminal).
  static StatusOr<EncodedString> Encode(const Alphabet& alphabet,
                                        const std::string& text);

  /// Number of addressable positions, including the final terminal.
  uint64_t size() const { return body_length_ + 1; }

  /// Symbol at position i; size()-1 yields the terminal.
  char At(uint64_t i) const {
    if (i >= body_length_) return kTerminal;
    uint64_t bit = i * bits_;
    uint64_t word = bit >> 6;
    unsigned shift = static_cast<unsigned>(bit & 63);
    uint64_t value = words_[word] >> shift;
    if (shift + bits_ > 64) {
      value |= words_[word + 1] << (64 - shift);
    }
    return alphabet_.Symbol(static_cast<int>(value & mask_));
  }

  /// Decodes [pos, pos+len) into `out`; clamps at the end of the string.
  /// Returns the number of symbols produced.
  uint32_t Extract(uint64_t pos, uint32_t len, char* out) const;

  /// Bytes of heap memory used by the packed representation.
  uint64_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  const Alphabet& alphabet() const { return alphabet_; }

 private:
  EncodedString(const Alphabet& alphabet, uint64_t body_length, int bits)
      : alphabet_(alphabet),
        body_length_(body_length),
        bits_(bits),
        mask_((1u << bits) - 1) {}

  Alphabet alphabet_;
  uint64_t body_length_;
  int bits_;
  uint64_t mask_;
  std::vector<uint64_t> words_;
};

}  // namespace era

#endif  // ERA_ALPHABET_ENCODED_STRING_H_
