// Alphabet registry and symbol codec.
//
// Conventions (chosen to match the paper's worked example, Section 4.2.2):
//   * Alphabet symbols are printable bytes stored in ascending byte order, so
//     raw byte comparison of text equals lexicographic symbol comparison.
//   * The end-of-string terminal is a single byte strictly GREATER than every
//     alphabet symbol (default '~'), because the paper's traces sort the `$`
//     branch after all alphabet branches (e.g. B[2] = (G,$,3)).
// The terminal is appended exactly once, as the last byte of the text file.

#ifndef ERA_ALPHABET_ALPHABET_H_
#define ERA_ALPHABET_ALPHABET_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace era {

/// Terminal byte used by this library ('~' = 0x7E, above all letters/digits).
inline constexpr char kTerminal = '~';

/// An ordered set of symbols plus the terminal. Value type, cheap to copy.
class Alphabet {
 public:
  /// Builds an alphabet from its symbols. Symbols must be unique, printable,
  /// in strictly ascending byte order, and below the terminal byte.
  static StatusOr<Alphabet> Create(const std::string& symbols);

  /// DNA: {A, C, G, T}.
  static Alphabet Dna();
  /// 20 standard amino-acid letters.
  static Alphabet Protein();
  /// 26 lowercase English letters.
  static Alphabet English();

  /// Number of symbols (terminal excluded).
  int size() const { return static_cast<int>(symbols_.size()); }
  const std::string& symbols() const { return symbols_; }
  char terminal() const { return kTerminal; }

  /// True iff `c` is an alphabet symbol (terminal excluded).
  bool Contains(char c) const { return code_[static_cast<uint8_t>(c)] >= 0; }

  /// Symbol -> dense code in [0, size); terminal -> size. Returns -1 for
  /// bytes outside the alphabet.
  int Code(char c) const {
    if (c == kTerminal) return size();
    return code_[static_cast<uint8_t>(c)];
  }

  /// Dense code -> symbol; `size()` maps back to the terminal.
  char Symbol(int code) const {
    if (code == size()) return kTerminal;
    return symbols_[static_cast<std::size_t>(code)];
  }

  /// Bits needed to encode one symbol (terminal excluded), e.g. 2 for DNA,
  /// 5 for protein/English — the encodings Section 6.1 of the paper uses.
  int bits_per_symbol() const { return bits_per_symbol_; }

  /// Validates that `text` consists of alphabet symbols with exactly one
  /// terminal, as its final byte.
  Status ValidateText(const std::string& text) const;

 private:
  Alphabet() { code_.fill(-1); }

  std::string symbols_;
  std::array<int16_t, 256> code_;
  int bits_per_symbol_ = 0;
};

}  // namespace era

#endif  // ERA_ALPHABET_ALPHABET_H_
