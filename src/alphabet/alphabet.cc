#include "alphabet/alphabet.h"

namespace era {

StatusOr<Alphabet> Alphabet::Create(const std::string& symbols) {
  if (symbols.empty()) {
    return Status::InvalidArgument("alphabet must not be empty");
  }
  Alphabet a;
  char prev = '\0';
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    char c = symbols[i];
    if (i > 0 && c <= prev) {
      return Status::InvalidArgument(
          "alphabet symbols must be in strictly ascending order");
    }
    if (c >= kTerminal || c < '!') {
      return Status::InvalidArgument(
          "alphabet symbols must be printable and below the terminal byte");
    }
    a.code_[static_cast<uint8_t>(c)] = static_cast<int16_t>(i);
    prev = c;
  }
  a.symbols_ = symbols;
  int bits = 1;
  while ((1 << bits) < static_cast<int>(symbols.size())) ++bits;
  a.bits_per_symbol_ = bits;
  return a;
}

Alphabet Alphabet::Dna() {
  auto a = Create("ACGT");
  return *a;
}

Alphabet Alphabet::Protein() {
  auto a = Create("ACDEFGHIKLMNPQRSTVWY");
  return *a;
}

Alphabet Alphabet::English() {
  auto a = Create("abcdefghijklmnopqrstuvwxyz");
  return *a;
}

Status Alphabet::ValidateText(const std::string& text) const {
  if (text.empty() || text.back() != kTerminal) {
    return Status::InvalidArgument("text must end with the terminal byte");
  }
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (!Contains(text[i])) {
      return Status::InvalidArgument("text contains byte outside alphabet at " +
                                     std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace era
