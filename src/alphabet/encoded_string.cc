#include "alphabet/encoded_string.h"

namespace era {

StatusOr<EncodedString> EncodedString::Encode(const Alphabet& alphabet,
                                              const std::string& text) {
  ERA_RETURN_NOT_OK(alphabet.ValidateText(text));
  uint64_t body = text.size() - 1;  // terminal excluded
  int bits = alphabet.bits_per_symbol();
  EncodedString out(alphabet, body, bits);
  out.words_.assign((body * bits + 63) / 64 + 1, 0);
  for (uint64_t i = 0; i < body; ++i) {
    uint64_t code = static_cast<uint64_t>(alphabet.Code(text[i]));
    uint64_t bit = i * bits;
    uint64_t word = bit >> 6;
    unsigned shift = static_cast<unsigned>(bit & 63);
    out.words_[word] |= code << shift;
    if (shift + bits > 64) {
      out.words_[word + 1] |= code >> (64 - shift);
    }
  }
  return out;
}

uint32_t EncodedString::Extract(uint64_t pos, uint32_t len, char* out) const {
  uint32_t produced = 0;
  while (produced < len && pos + produced < size()) {
    out[produced] = At(pos + produced);
    ++produced;
  }
  return produced;
}

}  // namespace era
