// Shared read-through tile cache over the input string.
//
// ERA's premise is that S does not fit in memory, so the horizontal phase
// re-streams it once per group per prepare round — BENCH_era.json's committed
// record prices that at ~1000x I/O amplification (device bytes read / text
// bytes). Most of that traffic is the *same* tiles over and over: every
// group's occurrence scan walks the whole file and consecutive prepare rounds
// revisit almost the same positions. The TileCache turns that repetition into
// memory hits: one process-wide, byte-budgeted cache of fixed-size tiles,
// shared by every worker (and every worker's prefetch thread), fed through
// the thread-safe RandomAccessFile::ReadAt hook.
//
// Design points (see README "I/O anatomy"):
//   * Sharded LRU with shared_ptr pinning, in the style of the sub-tree
//     cache (suffixtree/tree_index.h): lookups lock only their shard, device
//     loads run outside any lock, and a tile handed to a reader stays valid
//     even if the budget evicts it mid-copy.
//   * Scan-resistant admission: a cyclic scan of a file larger than the
//     budget is LRU's worst case (every hit-to-be is evicted moments before
//     its reuse). Eviction is therefore gated on proven reuse — a resident
//     tile that has been touched more than once since the last aging sweep
//     is never evicted for a first-time tile; the newcomer is served straight
//     from the device instead (a "bypass"). The resident set freezes onto a
//     stable prefix of the scan cycle, converting that fraction of every
//     subsequent pass into hits. Periodic count-halving lets the set rotate
//     if the workload genuinely shifts.
//   * The cache owns the device accounting: misses bill device bytes into
//     the cache's counters, and cache-backed readers bill
//     IoStats::cache_served_bytes instead of bytes_read, so
//     BuildStats::io_amplification stays an honest device-traffic ratio.

#ifndef ERA_IO_TILE_CACHE_H_
#define ERA_IO_TILE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "io/env.h"
#include "io/retry_policy.h"

namespace era {

/// Tuning knobs for one TileCache.
struct TileCacheOptions {
  /// Total bytes of resident tile data across all shards. A shard evicts
  /// (or bypasses) once it exceeds its share, but always keeps at least one
  /// resident tile so a budget smaller than one tile still caches.
  uint64_t budget_bytes = 8ull << 20;
  /// Tile size in bytes. Must be a power of two >= 4 KiB. 128 KiB default:
  /// coarse enough that per-tile overhead vanishes, fine enough that a
  /// budget a few MB short of the file still keeps ~90% of it resident.
  uint32_t tile_bytes = 128u << 10;
  /// Independently locked shards (tile index modulo shards, so neighboring
  /// tiles of one sequential scan land in different shards).
  uint32_t shards = 8;
  /// Transient device-read faults (IOError only) under cache loads and
  /// bypass reads are retried with exponential backoff; absorbed retries
  /// show up in Snapshot::read_retries.
  RetryPolicy retry;
};

/// One cached tile. `data.size()` is the valid length (short only for the
/// tile containing end-of-file).
struct CachedTile {
  std::vector<char> data;
};

/// Process-wide cache of fixed-size tiles of one file. Thread-safe: any
/// number of workers and prefetch threads may call GetTile/ReadAt
/// concurrently.
class TileCache {
 public:
  /// Opens `path` from `env` and snapshots its size. The file must outlive
  /// nothing — the cache owns its handle.
  static StatusOr<std::shared_ptr<TileCache>> Open(
      Env* env, const std::string& path, const TileCacheOptions& options);

  /// Returns tile `index` (file bytes [index*tile, (index+1)*tile)),
  /// loading it from the device on a miss. The shared_ptr pins the bytes:
  /// eviction drops a tile from the cache but never invalidates a pinned
  /// copy. Indexes at or past end-of-file return an empty tile. `ctx` (may
  /// be null) is the caller's deadline/cancellation context, checked before
  /// a miss touches the device and threaded into the retry backoffs.
  StatusOr<std::shared_ptr<const CachedTile>> GetTile(
      uint64_t index, const QueryContext* ctx = nullptr);

  /// Read-through positional read (pread semantics, short at end-of-file).
  /// Spans tile boundaries transparently. `ctx` (may be null) is checked at
  /// each tile boundary — a multi-tile read abandons between tiles, never
  /// mid-copy.
  Status ReadAt(uint64_t offset, std::size_t n, char* scratch,
                std::size_t* out_n, const QueryContext* ctx = nullptr);

  /// Drops every resident tile (not counted as LRU evictions). Pinned tiles
  /// stay valid for their holders.
  void EvictAll();

  uint64_t file_size() const { return file_size_; }
  uint32_t tile_bytes() const { return options_.tile_bytes; }
  const std::string& path() const { return path_; }

  /// Point-in-time totals across shards.
  struct Snapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t device_bytes_read = 0;
    uint64_t evictions = 0;
    uint64_t evicted_bytes = 0;
    /// Misses served from the device without admission (the would-be victim
    /// had proven reuse; see the scan-resistance note above).
    uint64_t bypasses = 0;
    /// Transient device-read faults absorbed by the retry policy.
    uint64_t read_retries = 0;
    uint64_t resident_bytes = 0;
    uint64_t resident_tiles = 0;
  };
  Snapshot stats() const;

 private:
  TileCache(std::unique_ptr<RandomAccessFile> file, std::string path,
            const TileCacheOptions& options);

  struct Shard {
    mutable std::mutex mutex;
    /// Most-recently-used at the front.
    std::list<uint64_t> lru;
    struct Entry {
      std::shared_ptr<const CachedTile> tile;
      std::list<uint64_t>::iterator pos;
      /// Touches since the last aging sweep; eviction requires <= 1.
      uint32_t access_count = 0;
    };
    std::unordered_map<uint64_t, Entry> entries;
    uint64_t resident_bytes = 0;
    uint64_t lookup_tick = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t evicted_bytes = 0;
    uint64_t bypasses = 0;
  };

  Shard& ShardFor(uint64_t index) {
    return shards_[index % shards_.size()];
  }
  /// Halves every access count once enough lookups have passed; called with
  /// the shard lock held. Keeps the frozen resident set rotatable.
  void AgeLocked(Shard* shard);
  /// Whether the admission policy could make room for `bytes` of tile
  /// `index` without mutating anything (the pre-load decision). Caller
  /// holds the shard lock.
  bool RoomPossibleLocked(const Shard& shard, uint64_t index,
                          uint64_t bytes) const;
  /// Evicts what the admission policy allows to make room for `bytes` of
  /// tile `index`; returns whether the tile may be admitted. Only called
  /// after a successful device load. Caller holds the shard lock.
  bool MakeRoomLocked(Shard* shard, uint64_t index, uint64_t bytes);
  /// Reads tile `index` from the device; inserts it when `admit` (subject
  /// to a re-check against racing inserts).
  StatusOr<std::shared_ptr<const CachedTile>> LoadAndMaybeAdmit(
      uint64_t index, bool admit, const QueryContext* ctx);

  std::unique_ptr<RandomAccessFile> file_;
  const std::string path_;
  const TileCacheOptions options_;
  const uint64_t file_size_;
  const uint64_t per_shard_budget_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> device_bytes_read_{0};
  std::atomic<uint64_t> read_retries_{0};
};

/// RandomAccessFile adapter serving all reads through `cache` (both Read and
/// ReadAt — the adapter is stateless, so either is safe from any thread).
/// Lets StringReader/PrefetchingStringReader become cache-backed without
/// changing their refill logic.
std::unique_ptr<RandomAccessFile> NewCachedFile(
    std::shared_ptr<TileCache> cache);

}  // namespace era

#endif  // ERA_IO_TILE_CACHE_H_
