#include "io/string_reader.h"

#include <algorithm>
#include <cstring>

#include "common/metrics.h"

namespace era {

namespace {

/// memcpy for the batched fast path: writes exactly `len` bytes with two
/// overlapped word stores instead of a size-dispatched memcpy call. The
/// SubTreePrepare request stream is millions of 4..64-byte copies; the
/// dispatch overhead is measurable there.
inline void CopySmall(char* dst, const char* src, uint32_t len) {
  if (len >= 8) {
    if (len <= 16) {
      uint64_t head, tail;
      std::memcpy(&head, src, 8);
      std::memcpy(&tail, src + len - 8, 8);
      std::memcpy(dst, &head, 8);
      std::memcpy(dst + len - 8, &tail, 8);
      return;
    }
    std::memcpy(dst, src, len);
    return;
  }
  if (len >= 4) {
    uint32_t head, tail;
    std::memcpy(&head, src, 4);
    std::memcpy(&tail, src + len - 4, 4);
    std::memcpy(dst, &head, 4);
    std::memcpy(dst + len - 4, &tail, 4);
    return;
  }
  for (uint32_t i = 0; i < len; ++i) dst[i] = src[i];
}

}  // namespace

StringReader::StringReader(std::unique_ptr<RandomAccessFile> file,
                           const StringReaderOptions& options, IoStats* stats)
    : file_(std::move(file)), options_(options), stats_(stats) {
  if (options_.buffer_bytes < 4096) options_.buffer_bytes = 4096;
  buffer_.resize(options_.buffer_bytes);
}

void StringReader::BeginScan(uint64_t start_pos) {
  scan_pos_ = start_pos;
  if (stats_ != nullptr) ++stats_->scans_started;
  // The window itself is kept: if the new scan starts inside it we can serve
  // without touching the device.
}

Status StringReader::Refill(uint64_t pos, bool sequential,
                            bool full_window) {
  // The device-read boundary: an expired or cancelled query abandons here,
  // before issuing the next window, never mid-transfer.
  if (context_ != nullptr) ERA_RETURN_NOT_OK(context_->Check());
  std::size_t want = buffer_.size();
  if (!sequential && !full_window) {
    want = std::min<std::size_t>(want, options_.random_window_bytes);
  }
  std::size_t got = 0;
  uint64_t retries = 0;
  // Traced queries record each window transfer as a span; `note`
  // distinguishes sequential refills from random repositionings.
  TraceSpan span(context_ != nullptr ? context_->trace : nullptr,
                 "device_read");
  span.set_note(sequential ? "sequential" : "random");
  ERA_RETURN_NOT_OK(RunWithRetry(
      options_.retry, context_,
      [&] { return file_->Read(pos, want, buffer_.data(), &got); },
      &retries));
  if (stats_ != nullptr) {
    stats_->read_retries += retries;
    // A cache-backed reader copies from resident tiles, not the device; the
    // TileCache bills the device bytes its misses actually transfer.
    if (options_.tile_cache != nullptr) {
      stats_->cache_served_bytes += got;
    } else {
      stats_->bytes_read += got;
    }
    if (sequential || options_.bill_random_as_sequential) {
      ++stats_->sequential_refills;
    } else {
      ++stats_->seeks;
    }
  }
  buffer_start_ = pos;
  buffer_len_ = got;
  has_window_ = true;
  return Status::OK();
}

Status StringReader::Fetch(uint64_t pos, uint32_t len, char* out,
                           uint32_t* out_len) {
  if (pos < scan_pos_) {
    return Status::InvalidArgument(
        "Fetch position moved backwards within a scan");
  }
  scan_pos_ = pos;
  return FetchInto(pos, len, out, out_len);
}

Status StringReader::FetchInto(uint64_t pos, uint32_t len, char* out,
                               uint32_t* out_len) {
  uint32_t written = 0;
  uint64_t cur = pos;
  while (written < len && cur < file_->Size()) {
    bool in_window = has_window_ && cur >= buffer_start_ &&
                     cur < buffer_start_ + buffer_len_;
    if (!in_window) {
      uint64_t window_end = has_window_ ? buffer_start_ + buffer_len_ : 0;
      if (has_window_ && cur >= window_end) {
        uint64_t gap = cur - window_end;
        if (options_.seek_optimization && gap >= options_.skip_threshold_bytes) {
          // Skip the gap with a short seek instead of reading through it.
          // A device-backed reader loads a full window (the scan continues
          // and the next actives amortize it — Section 4.4); a cache-backed
          // reader loads a small one instead: on sparse rounds each skip
          // landing in a non-resident tile would otherwise bypass-read a
          // full window from the device, while re-refilling out of resident
          // tiles costs only a memcpy.
          if (stats_ != nullptr) stats_->bytes_skipped += gap;
          ERA_RETURN_NOT_OK(Refill(cur, /*sequential=*/false,
                                   /*full_window=*/options_.tile_cache ==
                                       nullptr));
        } else {
          // Read through: the scan continues sequentially; intermediate
          // blocks are fetched (and billed) even though they are unneeded.
          uint64_t next = window_end;
          while (next + buffer_.size() <= cur) {
            ERA_RETURN_NOT_OK(Refill(next, /*sequential=*/true));
            next = buffer_start_ + buffer_len_;
            if (buffer_len_ == 0) break;  // EOF guard
          }
          ERA_RETURN_NOT_OK(Refill(cur, /*sequential=*/true));
        }
      } else {
        // First access of this reader, or a position before the window (only
        // possible right after BeginScan rewound): treat as a fresh
        // positioning.
        ERA_RETURN_NOT_OK(Refill(cur, /*sequential=*/!has_window_));
      }
      if (buffer_len_ == 0) break;  // EOF
    }
    uint64_t offset_in_buffer = cur - buffer_start_;
    uint64_t avail = buffer_len_ - offset_in_buffer;
    uint32_t take = static_cast<uint32_t>(
        std::min<uint64_t>(avail, len - written));
    std::memcpy(out + written, buffer_.data() + offset_in_buffer, take);
    written += take;
    cur += take;
  }
  *out_len = written;
  return Status::OK();
}

Status StringReader::ServeBatch(std::span<FetchRequest> requests,
                                bool sequential) {
  if (stats_ != nullptr) {
    ++stats_->fetch_batches;
    stats_->batched_requests += requests.size();
  }
  for (FetchRequest& request : requests) {
    if (sequential) {
      if (request.pos < scan_pos_) {
        return Status::InvalidArgument(
            "FetchBatch request stream is not sorted by position");
      }
      scan_pos_ = request.pos;
    }
    // Coalesced fast path: runs of adjacent and overlapping windows land in
    // the resident buffer, where each request is one bounds check and one
    // small copy.
    if (has_window_ && request.pos >= buffer_start_ &&
        request.pos + request.len <= buffer_start_ + buffer_len_) {
      CopySmall(request.out, buffer_.data() + (request.pos - buffer_start_),
                request.len);
      request.got = request.len;
      continue;
    }
    if (sequential) {
      ERA_RETURN_NOT_OK(
          FetchInto(request.pos, request.len, request.out, &request.got));
    } else {
      ERA_RETURN_NOT_OK(
          RandomFetch(request.pos, request.len, request.out, &request.got));
    }
  }
  return Status::OK();
}

Status StringReader::FetchBatch(std::span<FetchRequest> requests) {
  return ServeBatch(requests, /*sequential=*/true);
}

Status StringReader::RandomFetchBatch(std::span<FetchRequest> requests) {
  return ServeBatch(requests, /*sequential=*/false);
}

Status StringReader::RandomFetch(uint64_t pos, uint32_t len, char* out,
                                 uint32_t* out_len) {
  uint32_t written = 0;
  uint64_t cur = pos;
  while (written < len && cur < file_->Size()) {
    bool in_window = has_window_ && cur >= buffer_start_ &&
                     cur < buffer_start_ + buffer_len_;
    if (!in_window) {
      ERA_RETURN_NOT_OK(
          Refill(cur, /*sequential=*/false, /*full_window=*/false));
      if (buffer_len_ == 0) break;
    }
    uint64_t offset_in_buffer = cur - buffer_start_;
    uint64_t avail = buffer_len_ - offset_in_buffer;
    uint32_t take = static_cast<uint32_t>(
        std::min<uint64_t>(avail, len - written));
    std::memcpy(out + written, buffer_.data() + offset_in_buffer, take);
    written += take;
    cur += take;
  }
  *out_len = written;
  return Status::OK();
}

PrefetchingStringReader::PrefetchingStringReader(
    std::unique_ptr<RandomAccessFile> file, const StringReaderOptions& options,
    IoStats* stats)
    : StringReader(std::move(file), options, stats) {
  ring_.resize(std::max<uint32_t>(1, options_.prefetch_depth));
  for (Slot& slot : ring_) slot.data.resize(buffer_.size());
  thread_ = std::thread([this] { PrefetchLoop(); });
}

PrefetchingStringReader::~PrefetchingStringReader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Bill reads the consumer never synchronized on (e.g. the speculative
  // windows past the last refill of a scan) — they did hit the device.
  if (stats_ != nullptr) stats_->Add(background_io_);
}

int PrefetchingStringReader::FreeSlotLocked() const {
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (!ring_[i].valid && !ring_[i].pending) return static_cast<int>(i);
  }
  return -1;
}

uint32_t PrefetchingStringReader::LiveCountLocked() const {
  uint32_t live = 0;
  for (const Slot& slot : ring_) {
    if (slot.valid || slot.pending) ++live;
  }
  return live;
}

void PrefetchingStringReader::FoldBackgroundIoLocked() {
  if (stats_ != nullptr) {
    stats_->Add(background_io_);
    background_io_ = IoStats();
  }
}

void PrefetchingStringReader::IssueSpeculationLocked() {
  bool issued = false;
  while (spec_armed_ && next_spec_pos_ < file_->Size()) {
    const int s = FreeSlotLocked();
    if (s < 0) break;
    Slot& slot = ring_[static_cast<std::size_t>(s)];
    slot.pending = true;
    slot.start = next_spec_pos_;
    slot.issued_with_live = LiveCountLocked() - 1;  // everyone but this slot
    next_spec_pos_ += slot.data.size();
    issue_queue_.push_back(s);
    issued = true;
  }
  if (issued) cv_.notify_all();
}

void PrefetchingStringReader::PrefetchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return shutdown_ || !issue_queue_.empty(); });
    if (shutdown_) return;
    const int s = issue_queue_.front();
    issue_queue_.erase(issue_queue_.begin());
    Slot& slot = ring_[static_cast<std::size_t>(s)];
    const uint64_t pos = slot.start;
    lock.unlock();
    std::size_t got = 0;
    uint64_t retries = 0;
    Status status = RunWithRetry(
        options_.retry,
        [&] {
          return file_->ReadAt(pos, slot.data.size(), slot.data.data(), &got);
        },
        &retries);
    lock.lock();
    background_io_.read_retries += retries;
    if (status.ok()) {
      slot.len = got;
      slot.valid = got > 0;
      if (options_.tile_cache != nullptr) {
        background_io_.cache_served_bytes += got;
      } else {
        background_io_.bytes_read += got;
      }
      background_io_.prefetched_bytes += got;
      ++background_io_.sequential_refills;
    } else {
      background_status_ = status;
      slot.valid = false;
      spec_armed_ = false;  // stop speculating until the consumer resolves it
    }
    slot.pending = false;
    cv_.notify_all();
  }
}

Status PrefetchingStringReader::Refill(uint64_t pos, bool sequential,
                                       bool full_window) {
  if (!sequential || !full_window) {
    // Random repositionings (including seek-optimization skips) keep the
    // base path. Background reads only touch ring slots, so they may
    // proceed concurrently; their windows stay valid for when the
    // interrupted scan resumes. A skip also breaks the streak that re-arms
    // a paused speculation.
    recovery_refills_ = 0;
    return StringReader::Refill(pos, sequential, full_window);
  }
  // Same boundary as the base Refill: a ring hit is still a refill, and the
  // wait on an in-flight slot below should not start for a dead query.
  if (context_ != nullptr) ERA_RETURN_NOT_OK(context_->Check());
  std::unique_lock<std::mutex> lock(mu_);
  FoldBackgroundIoLocked();
  if (!background_status_.ok()) {
    // The speculation failed, but this refill may target a readable
    // window the algorithm actually needs — treat it as a miss and let
    // the foreground read's own status decide. A real device error still
    // fails fast below.
    background_status_ = Status::OK();
    for (Slot& slot : ring_) {
      if (!slot.pending) slot.valid = false;
    }
  }
  // Serve from the ring: wait out an in-flight read of the target window
  // (the wait is exactly the device overlap the hit measures).
  int found = -1;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Slot& slot = ring_[i];
    const uint64_t end =
        slot.start + (slot.pending ? slot.data.size() : slot.len);
    if ((slot.valid || slot.pending) && pos >= slot.start && pos < end) {
      found = static_cast<int>(i);
      break;
    }
  }
  if (found >= 0 && ring_[static_cast<std::size_t>(found)].pending) {
    Slot& slot = ring_[static_cast<std::size_t>(found)];
    cv_.wait(lock, [&slot] { return !slot.pending; });
    FoldBackgroundIoLocked();
    if (!slot.valid || pos >= slot.start + slot.len) found = -1;
    background_status_ = Status::OK();  // a short/failed read falls through
  }
  if (found >= 0) {
    Slot& slot = ring_[static_cast<std::size_t>(found)];
    std::swap(buffer_, slot.data);
    buffer_start_ = slot.start;
    buffer_len_ = slot.len;
    has_window_ = true;
    slot.valid = false;
    wasted_speculations_ = 0;
    recovery_refills_ = 0;
    if (stats_ != nullptr) {
      ++stats_->prefetch_hits;
      if (slot.issued_with_live > 0) ++stats_->prefetch_depth_hits;
    }
    // Windows entirely behind the scan can never be consumed now; free
    // their slots so the ring keeps speculating ahead.
    for (Slot& stale : ring_) {
      if (stale.valid && stale.start + stale.len <= pos) stale.valid = false;
    }
    spec_armed_ = true;
    IssueSpeculationLocked();
    return Status::OK();
  }

  // Miss: the scan went somewhere the ring did not speculate. Completed
  // windows are wasted; discard them, and cancel issued-but-unstarted reads
  // (a read already in flight finishes and is swept as stale later).
  bool wasted = false;
  for (Slot& slot : ring_) {
    if (slot.valid) {
      slot.valid = false;
      wasted = true;
    }
  }
  for (int s : issue_queue_) {
    ring_[static_cast<std::size_t>(s)].pending = false;
  }
  issue_queue_.clear();
  if (wasted) ++wasted_speculations_;
  spec_armed_ = false;
  lock.unlock();
  ERA_RETURN_NOT_OK(StringReader::Refill(pos, sequential, full_window));
  if (stats_ != nullptr) ++stats_->prefetch_misses;
  bool speculate = true;
  if (wasted_speculations_ >= kMaxWastedSpeculations) {
    // Sparse scan: stop burning bandwidth on windows the skips jump over
    // until the pattern proves sequential again.
    if (++recovery_refills_ >= kRecoveryRefills) {
      wasted_speculations_ = 0;
      recovery_refills_ = 0;
    } else {
      speculate = false;
    }
  }
  if (!speculate) return Status::OK();
  lock.lock();
  if (buffer_len_ > 0 && buffer_start_ + buffer_len_ < file_->Size()) {
    next_spec_pos_ = buffer_start_ + buffer_len_;
    spec_armed_ = true;
    IssueSpeculationLocked();
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<StringReader>> OpenStringReader(
    Env* env, const std::string& path, const StringReaderOptions& options,
    IoStats* stats) {
  std::unique_ptr<RandomAccessFile> file;
  if (options.tile_cache != nullptr) {
    if (options.tile_cache->path() != path) {
      return Status::InvalidArgument(
          "tile cache was opened on '" + options.tile_cache->path() +
          "', reader on '" + path + "'");
    }
    file = NewCachedFile(options.tile_cache);
  } else {
    ERA_ASSIGN_OR_RETURN(file, env->OpenRandomAccess(path));
  }
  if (options.prefetch) {
    return std::unique_ptr<StringReader>(
        new PrefetchingStringReader(std::move(file), options, stats));
  }
  return std::make_unique<StringReader>(std::move(file), options, stats);
}

}  // namespace era
