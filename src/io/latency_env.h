// Env decorator that injects modeled device latency into file traffic.
//
// On a laptop-scale testbed the OS page cache serves nearly every read, so
// the CPU/I-O overlap machinery (prefetching readers, background sub-tree
// writes, multi-worker scheduling) is invisible in wall time even though it
// is exactly what the paper's disk-bound evaluation measures. DESIGN.md's
// answer for the figure benches is the *modeled seconds* of io_stats.h;
// LatencyEnv is the complement for end-to-end benches: it makes each request
// cost real wall time by sleeping in the calling thread, so overlap shows up
// as a genuine speedup. Latency is charged per request —
// `latency + bytes / bandwidth` — and concurrent requests sleep
// independently (a queue-depth > 1 device, NVMe-like), which is what lets a
// prefetch thread or a second worker hide its transfer behind another
// thread's compute.

#ifndef ERA_IO_LATENCY_ENV_H_
#define ERA_IO_LATENCY_ENV_H_

#include <memory>
#include <string>

#include "io/env.h"

namespace era {

/// Per-request cost of the simulated device.
struct LatencyModel {
  /// Fixed setup cost of one read request (seconds).
  double read_latency_seconds = 0.0002;
  /// Fixed setup cost of one write request (seconds).
  double write_latency_seconds = 0.0002;
  /// Transfer bandwidth for reads (bytes/second).
  double read_bytes_per_second = 128.0 * 1024 * 1024;
  /// Transfer bandwidth for writes (bytes/second).
  double write_bytes_per_second = 128.0 * 1024 * 1024;
  /// Requests the device services concurrently (0 = unbounded, the
  /// default — every prior bench keeps its behavior). A real device has a
  /// finite queue depth: requests beyond it wait in FIFO order at the
  /// device and their wait is real wall time. Bounding it is what makes
  /// saturation — and therefore overload collapse — observable:
  /// with unbounded concurrency, offering more load always adds throughput
  /// and no arrival rate is "above capacity".
  uint32_t queue_depth = 0;

  double ReadSeconds(uint64_t bytes) const {
    return read_latency_seconds +
           static_cast<double>(bytes) / read_bytes_per_second;
  }
  double WriteSeconds(uint64_t bytes) const {
    return write_latency_seconds +
           static_cast<double>(bytes) / write_bytes_per_second;
  }
};

/// The device's service channel: a FIFO counting semaphore shared by every
/// file the env opens, enforcing LatencyModel::queue_depth. Internal.
class DeviceChannel;

/// Wraps another Env; all data-plane traffic (RandomAccessFile reads,
/// WritableFile appends) sleeps for the modeled duration — and, with a
/// bounded queue_depth, first waits for one of the device's service slots
/// (all files opened by one env share the device). Metadata operations pass
/// through untouched. Does not own `base`.
class LatencyEnv : public Env {
 public:
  LatencyEnv(Env* base, const LatencyModel& model);

  StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> NewWritable(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;

  const LatencyModel& model() const { return model_; }

 private:
  Env* base_;
  LatencyModel model_;
  std::shared_ptr<DeviceChannel> channel_;
};

}  // namespace era

#endif  // ERA_IO_LATENCY_ENV_H_
