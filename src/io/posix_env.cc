#include "io/posix_env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace era {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, std::size_t n, char* scratch,
              std::size_t* out_n) const override {
    std::size_t total = 0;
    while (total < n) {
      ssize_t got = ::pread(fd_, scratch + total, n - total,
                            static_cast<off_t>(offset + total));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread " + path_));
      }
      if (got == 0) break;  // EOF
      total += static_cast<std::size_t>(got);
    }
    *out_n = total;
    return Status::OK();
  }

  // pread never touches a shared cursor, so the inherited ReadAt default
  // (forward to Read; concurrent background reads) holds without locking.
  uint64_t Size() const override { return size_; }

 private:
  int fd_;
  uint64_t size_;
  std::string path_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const char* data, std::size_t n) override {
    std::size_t total = 0;
    while (total < n) {
      ssize_t put = ::write(fd_, data + total, n - total);
      if (put < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("write " + path_));
      }
      total += static_cast<std::size_t>(put);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Internal("sync of closed file " + path_);
    if (::fsync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fsync " + path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::IOError(ErrnoMessage("close " + path_));
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

StatusOr<std::unique_ptr<RandomAccessFile>> PosixEnv::OpenRandomAccess(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open " + path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("fstat " + path));
  }
  return std::unique_ptr<RandomAccessFile>(
      new PosixRandomAccessFile(fd, static_cast<uint64_t>(st.st_size), path));
}

StatusOr<std::unique_ptr<WritableFile>> PosixEnv::NewWritable(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open " + path));
  return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
}

bool PosixEnv::FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

StatusOr<uint64_t> PosixEnv::FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError(ErrnoMessage("stat " + path));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status PosixEnv::DeleteFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("unlink " + path));
  }
  return Status::OK();
}

Status PosixEnv::CreateDir(const std::string& path) {
  std::string partial;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!partial.empty() && partial != "/") {
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
          return Status::IOError(ErrnoMessage("mkdir " + partial));
        }
      }
    }
    if (i < path.size()) partial.push_back(path[i]);
  }
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("rename " + from + " -> " + to));
  }
  return Status::OK();
}

Env* GetDefaultEnv() {
  static PosixEnv env;
  return &env;
}

}  // namespace era
