#include "io/tile_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace era {

namespace {

bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

TileCache::TileCache(std::unique_ptr<RandomAccessFile> file, std::string path,
                     const TileCacheOptions& options)
    : file_(std::move(file)),
      path_(std::move(path)),
      options_(options),
      file_size_(file_->Size()),
      per_shard_budget_(options.budget_bytes /
                        (options.shards == 0 ? 1 : options.shards)),
      shards_(options.shards == 0 ? 1 : options.shards) {}

StatusOr<std::shared_ptr<TileCache>> TileCache::Open(
    Env* env, const std::string& path, const TileCacheOptions& options) {
  if (!IsPowerOfTwo(options.tile_bytes) || options.tile_bytes < 4096) {
    return Status::InvalidArgument(
        "tile_bytes must be a power of two >= 4 KiB");
  }
  if (options.budget_bytes == 0) {
    return Status::InvalidArgument("tile cache budget must be positive");
  }
  ERA_ASSIGN_OR_RETURN(auto file, env->OpenRandomAccess(path));
  return std::shared_ptr<TileCache>(
      new TileCache(std::move(file), path, options));
}

void TileCache::AgeLocked(Shard* shard) {
  // Aging period: long enough that the scan-resistant resident set stays
  // frozen across many full passes, short enough that a genuinely shifted
  // working set can displace it. Counts halve, so a tile needs fresh
  // touches to stay eviction-proof.
  const uint64_t capacity_tiles =
      std::max<uint64_t>(1, per_shard_budget_ / options_.tile_bytes);
  if (++shard->lookup_tick < 32 * capacity_tiles) return;
  shard->lookup_tick = 0;
  for (auto& [index, entry] : shard->entries) {
    entry.access_count /= 2;
  }
}

bool TileCache::RoomPossibleLocked(const Shard& shard, uint64_t index,
                                   uint64_t bytes) const {
  // Non-mutating twin of MakeRoomLocked, used for the pre-load admission
  // decision: nothing is evicted until the device read has actually
  // succeeded (a failed load must not cost resident tiles).
  if (shard.entries.empty()) return true;
  uint64_t reclaimable = 0;
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    if (shard.resident_bytes - reclaimable + bytes <= per_shard_budget_) {
      break;
    }
    auto victim = shard.entries.find(*it);
    const bool evictable =
        victim->second.access_count == 0 ||
        (victim->second.access_count <= 1 && *it > index);
    if (evictable) reclaimable += victim->second.tile->data.size();
  }
  return shard.resident_bytes - reclaimable + bytes <= per_shard_budget_;
}

bool TileCache::MakeRoomLocked(Shard* shard, uint64_t index, uint64_t bytes) {
  // Scan-resistant admission. A cyclic scan of a file larger than the
  // budget is LRU's worst case: every tile is evicted moments before its
  // next use, for 0% reuse. A resident tile is therefore evictable only if
  //   * its access count aged to 0 (provably cold — lets a genuinely
  //     shifted working set displace the old one), or
  //   * it is touch-count-cold (<= 1) AND lies deeper in the file than the
  //     newcomer — for cyclic scans this deterministically freezes a prefix
  //     of the cycle, which is as good as any fixed subset can do (Belady),
  //     and converts that fraction of every later pass into hits.
  // Otherwise the newcomer is not admitted; ReadAt then reads only the
  // requested span from the device, so a miss never costs more than the
  // same read would have cost without the cache.
  for (auto it = shard->lru.rbegin();
       it != shard->lru.rend() &&
       shard->resident_bytes + bytes > per_shard_budget_;) {
    const uint64_t victim_index = *it;
    auto victim = shard->entries.find(victim_index);
    const bool evictable =
        victim->second.access_count == 0 ||
        (victim->second.access_count <= 1 && victim_index > index);
    if (!evictable) {
      ++it;
      continue;
    }
    shard->resident_bytes -= victim->second.tile->data.size();
    ++shard->evictions;
    shard->evicted_bytes += victim->second.tile->data.size();
    shard->entries.erase(victim);
    // Erase via the forward iterator corresponding to this reverse one.
    it = std::make_reverse_iterator(shard->lru.erase(std::next(it).base()));
  }
  // A shard always admits its first tile, however tight the budget (the
  // "never below one resident entry" grace of the sub-tree cache).
  return shard->resident_bytes + bytes <= per_shard_budget_ ||
         shard->entries.empty();
}

StatusOr<std::shared_ptr<const CachedTile>> TileCache::LoadAndMaybeAdmit(
    uint64_t index, bool admit, const QueryContext* ctx) {
  const uint64_t offset = index * static_cast<uint64_t>(options_.tile_bytes);
  // The device-read boundary: a dead query stops before issuing the load.
  if (ctx != nullptr) ERA_RETURN_NOT_OK(ctx->Check());
  // Load outside any lock: concurrent misses on the same tile may read it
  // more than once; at most one copy is retained.
  const std::size_t want = static_cast<std::size_t>(
      std::min<uint64_t>(options_.tile_bytes, file_size_ - offset));
  auto tile = std::make_shared<CachedTile>();
  tile->data.resize(want);
  std::size_t got = 0;
  uint64_t retries = 0;
  ERA_RETURN_NOT_OK(RunWithRetry(
      options_.retry, ctx,
      [&] { return file_->ReadAt(offset, want, tile->data.data(), &got); },
      &retries));
  if (retries > 0) {
    read_retries_.fetch_add(retries, std::memory_order_relaxed);
  }
  tile->data.resize(got);
  device_bytes_read_.fetch_add(got, std::memory_order_relaxed);
  if (got == 0 || !admit) {
    return std::shared_ptr<const CachedTile>(tile);
  }
  Shard& shard = ShardFor(index);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(index);
  if (it != shard.entries.end()) {
    // Raced with another loader; keep the retained copy, discard ours.
    return it->second.tile;
  }
  // The room made before the load may have been refilled by a racer;
  // re-check rather than exceed the budget.
  if (!MakeRoomLocked(&shard, index, tile->data.size())) {
    ++shard.bypasses;
    return std::shared_ptr<const CachedTile>(tile);
  }
  shard.lru.push_front(index);
  shard.entries[index] =
      Shard::Entry{tile, shard.lru.begin(), /*access_count=*/1};
  shard.resident_bytes += tile->data.size();
  return std::shared_ptr<const CachedTile>(tile);
}

StatusOr<std::shared_ptr<const CachedTile>> TileCache::GetTile(
    uint64_t index, const QueryContext* ctx) {
  const uint64_t offset = index * static_cast<uint64_t>(options_.tile_bytes);
  if (offset >= file_size_) {
    return std::shared_ptr<const CachedTile>(std::make_shared<CachedTile>());
  }
  Shard& shard = ShardFor(index);
  bool admit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    AgeLocked(&shard);
    auto it = shard.entries.find(index);
    if (it != shard.entries.end()) {
      ++shard.hits;
      ++it->second.access_count;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.pos);
      return it->second.tile;
    }
    ++shard.misses;
    const uint64_t bytes =
        std::min<uint64_t>(options_.tile_bytes, file_size_ - offset);
    admit = RoomPossibleLocked(shard, index, bytes);
    if (!admit) ++shard.bypasses;
  }
  // GetTile's contract is a full pinned tile, so even a bypass loads the
  // whole tile; the span-granular bypass lives in ReadAt.
  return LoadAndMaybeAdmit(index, admit, ctx);
}

Status TileCache::ReadAt(uint64_t offset, std::size_t n, char* scratch,
                         std::size_t* out_n, const QueryContext* ctx) {
  *out_n = 0;
  if (offset >= file_size_) return Status::OK();
  n = static_cast<std::size_t>(
      std::min<uint64_t>(n, file_size_ - offset));
  std::size_t written = 0;
  while (written < n) {
    // Tile boundary: a multi-tile read abandons here, never mid-copy. Hits
    // pay the check too — it is one relaxed load plus a clock read, and the
    // boundary contract should not depend on residency.
    if (ctx != nullptr) ERA_RETURN_NOT_OK(ctx->Check());
    const uint64_t pos = offset + written;
    const uint64_t index = pos / options_.tile_bytes;
    const uint64_t tile_start = index * options_.tile_bytes;
    const uint64_t in_tile = pos - tile_start;
    const uint64_t tile_len =
        std::min<uint64_t>(options_.tile_bytes, file_size_ - tile_start);
    const std::size_t take = static_cast<std::size_t>(
        std::min<uint64_t>(tile_len - in_tile, n - written));

    Shard& shard = ShardFor(index);
    std::shared_ptr<const CachedTile> tile;
    bool admit = false;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      AgeLocked(&shard);
      auto it = shard.entries.find(index);
      if (it != shard.entries.end()) {
        ++shard.hits;
        ++it->second.access_count;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.pos);
        tile = it->second.tile;  // pin; copy happens outside the lock
      } else {
        ++shard.misses;
        admit = RoomPossibleLocked(shard, index, tile_len);
        if (!admit) ++shard.bypasses;
      }
    }
    if (tile == nullptr && admit) {
      ERA_ASSIGN_OR_RETURN(tile,
                           LoadAndMaybeAdmit(index, /*admit=*/true, ctx));
    }
    if (tile != nullptr) {
      if (in_tile >= tile->data.size()) {
        return Status::Internal("tile cache read past tile content");
      }
      std::memcpy(scratch + written, tile->data.data() + in_tile, take);
      written += take;
      continue;
    }
    // Bypass: the admission policy kept this tile out, so read exactly the
    // requested span — a miss must never amplify the device traffic the
    // uncached path would have produced.
    std::size_t got = 0;
    uint64_t retries = 0;
    ERA_RETURN_NOT_OK(RunWithRetry(
        options_.retry, ctx,
        [&] { return file_->ReadAt(pos, take, scratch + written, &got); },
        &retries));
    if (retries > 0) {
      read_retries_.fetch_add(retries, std::memory_order_relaxed);
    }
    device_bytes_read_.fetch_add(got, std::memory_order_relaxed);
    if (got < take) {
      return Status::Internal("tile cache bypass read came back short");
    }
    written += got;
  }
  *out_n = written;
  return Status::OK();
}

void TileCache::EvictAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
    shard.lru.clear();
    shard.resident_bytes = 0;
  }
}

TileCache::Snapshot TileCache::stats() const {
  Snapshot snapshot;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    snapshot.hits += shard.hits;
    snapshot.misses += shard.misses;
    snapshot.evictions += shard.evictions;
    snapshot.evicted_bytes += shard.evicted_bytes;
    snapshot.bypasses += shard.bypasses;
    snapshot.resident_bytes += shard.resident_bytes;
    snapshot.resident_tiles += shard.entries.size();
  }
  snapshot.device_bytes_read =
      device_bytes_read_.load(std::memory_order_relaxed);
  snapshot.read_retries = read_retries_.load(std::memory_order_relaxed);
  return snapshot;
}

namespace {

class CachedFile : public RandomAccessFile {
 public:
  explicit CachedFile(std::shared_ptr<TileCache> cache)
      : cache_(std::move(cache)) {}

  Status Read(uint64_t offset, std::size_t n, char* scratch,
              std::size_t* out_n) const override {
    return cache_->ReadAt(offset, n, scratch, out_n);
  }

  Status ReadAt(uint64_t offset, std::size_t n, char* scratch,
                std::size_t* out_n) const override {
    return cache_->ReadAt(offset, n, scratch, out_n);
  }

  uint64_t Size() const override { return cache_->file_size(); }

 private:
  std::shared_ptr<TileCache> cache_;
};

}  // namespace

std::unique_ptr<RandomAccessFile> NewCachedFile(
    std::shared_ptr<TileCache> cache) {
  return std::make_unique<CachedFile>(std::move(cache));
}

}  // namespace era
