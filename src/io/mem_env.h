// In-memory Env for tests and for fully in-memory pipelines.

#ifndef ERA_IO_MEM_ENV_H_
#define ERA_IO_MEM_ENV_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "io/env.h"

namespace era {

/// Env whose files live in a process-local map. Thread-safe. Directories are
/// implicit (CreateDir is a no-op bookkeeping call).
class MemEnv : public Env {
 public:
  StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> NewWritable(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;

  /// Number of files currently stored (test helper).
  std::size_t FileCount();

 private:
  std::mutex mutex_;
  // shared_ptr so open readers survive deletion/replacement of the path.
  std::map<std::string, std::shared_ptr<std::string>> files_;
};

}  // namespace era

#endif  // ERA_IO_MEM_ENV_H_
