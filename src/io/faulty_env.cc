#include "io/faulty_env.h"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace era {

namespace {

/// "64MB" / "64M" / "1024" → bytes. Returns false on garbage.
bool ParseSize(const std::string& value, uint64_t* out) {
  char* end = nullptr;
  unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str()) return false;
  uint64_t mult = 1;
  std::string suffix(end);
  if (suffix == "K" || suffix == "KB") {
    mult = 1ull << 10;
  } else if (suffix == "M" || suffix == "MB") {
    mult = 1ull << 20;
  } else if (suffix == "G" || suffix == "GB") {
    mult = 1ull << 30;
  } else if (!suffix.empty()) {
    return false;
  }
  *out = static_cast<uint64_t>(n) * mult;
  return true;
}

bool ParseProbability(const std::string& value, double* out) {
  char* end = nullptr;
  double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || p < 0 || p > 1) return false;
  *out = p;
  return true;
}

}  // namespace

StatusOr<FaultSpec> ParseFaultSpec(const std::string& spec) {
  FaultSpec out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec item has no '=': " + item);
    }
    std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);
    bool ok = true;
    if (key == "read_transient") {
      ok = ParseProbability(value, &out.read_transient_p);
    } else if (key == "write_transient") {
      ok = ParseProbability(value, &out.write_transient_p);
    } else if (key == "short_write") {
      ok = ParseProbability(value, &out.short_write_p);
    } else if (key == "fail_read_at") {
      ok = ParseSize(value, &out.fail_read_at);
    } else if (key == "read_permanent") {
      out.read_fail_permanent = value != "0";
    } else if (key == "fail_write_at") {
      ok = ParseSize(value, &out.fail_write_at);
    } else if (key == "write_permanent") {
      out.write_fail_permanent = value != "0";
    } else if (key == "enospc_after") {
      ok = ParseSize(value, &out.enospc_after_bytes);
    } else if (key == "crash_after_writes") {
      ok = ParseSize(value, &out.crash_after_writes);
    } else if (key == "torn_write_at") {
      ok = ParseSize(value, &out.torn_write_at);
    } else if (key == "seed") {
      ok = ParseSize(value, &out.seed);
    } else if (key == "path") {
      out.path_filter = value;
    } else {
      return Status::InvalidArgument("unknown fault spec key: " + key);
    }
    if (!ok) {
      return Status::InvalidArgument("bad fault spec value: " + item);
    }
  }
  return out;
}

std::string FaultyEnv::Stats::ToString() const {
  std::ostringstream os;
  os << "reads=" << reads << " writes=" << writes
     << " read_faults=" << read_faults << " write_faults=" << write_faults
     << " short_writes=" << short_writes << " enospc=" << enospc_faults
     << " crashes=" << crashes << " files_damaged=" << files_damaged;
  return os.str();
}

FaultyEnv::FaultyEnv(Env* base, const FaultSpec& spec)
    : base_(base), spec_(spec), rng_(spec.seed) {}

bool FaultyEnv::Matches(const std::string& path) const {
  return spec_.path_filter.empty() ||
         path.find(spec_.path_filter) != std::string::npos;
}

Status FaultyEnv::CrashedStatus(const std::string& op) const {
  return Status::IOError("simulated crash: env is down (" + op + ")");
}

Status FaultyEnv::BeforeRead(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedStatus("read " + path);
  if (!Matches(path)) return Status::OK();
  ++read_calls_;
  ++stats_.reads;
  bool inject = false;
  if (spec_.fail_read_at != 0 && read_calls_ == spec_.fail_read_at) {
    inject = true;
    if (spec_.read_fail_permanent) read_latched_ = true;
  } else if (read_latched_) {
    inject = true;
  } else if (spec_.read_transient_p > 0) {
    double roll = static_cast<double>(rng_() >> 11) /
                  static_cast<double>(1ull << 53);
    inject = roll < spec_.read_transient_p;
  }
  if (inject) {
    ++stats_.read_faults;
    return Status::IOError("injected read fault on " + path);
  }
  return Status::OK();
}

Status FaultyEnv::BeforeAppend(const std::string& path, std::size_t n,
                               std::size_t* persist_n, bool* crash_after,
                               bool* durable) {
  std::lock_guard<std::mutex> lock(mu_);
  *persist_n = n;
  *crash_after = false;
  *durable = false;
  if (crashed_) return CrashedStatus("write " + path);
  if (!Matches(path)) return Status::OK();
  ++write_calls_;
  ++stats_.writes;
  if (spec_.torn_write_at != 0 && write_calls_ == spec_.torn_write_at) {
    // Half the append reaches the platter, then the process dies. The torn
    // prefix counts as durable: that is exactly the state a reader finds
    // after reboot, and what atomic rename must make invisible.
    *persist_n = n / 2;
    *durable = true;
    *crash_after = true;
    ++stats_.write_faults;
    return Status::OK();
  }
  if (spec_.enospc_after_bytes != 0 &&
      persisted_total_ + n > spec_.enospc_after_bytes) {
    ++stats_.write_faults;
    ++stats_.enospc_faults;
    return Status::IOError("no space left on device (injected) writing " +
                           path);
  }
  bool inject = false;
  if (spec_.fail_write_at != 0 && write_calls_ == spec_.fail_write_at) {
    inject = true;
    if (spec_.write_fail_permanent) write_latched_ = true;
  } else if (write_latched_) {
    inject = true;
  } else if (spec_.write_transient_p > 0) {
    double roll = static_cast<double>(rng_() >> 11) /
                  static_cast<double>(1ull << 53);
    inject = roll < spec_.write_transient_p;
  }
  if (inject) {
    ++stats_.write_faults;
    return Status::IOError("injected write fault on " + path);
  }
  if (spec_.short_write_p > 0) {
    double roll = static_cast<double>(rng_() >> 11) /
                  static_cast<double>(1ull << 53);
    if (roll < spec_.short_write_p) {
      *persist_n = n / 2;  // silent: the caller sees OK
      ++stats_.short_writes;
    }
  }
  if (spec_.crash_after_writes != 0 &&
      write_calls_ == spec_.crash_after_writes) {
    *crash_after = true;
  }
  return Status::OK();
}

void FaultyEnv::NotePersisted(const std::string& path, uint64_t n,
                              bool durable) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& state = files_[path];
  state.persisted_bytes += n;
  if (durable) state.durable_bytes = state.persisted_bytes;
  persisted_total_ += n;
}

Status FaultyEnv::NoteSync(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedStatus("sync " + path);
  FileState& state = files_[path];
  state.durable_bytes = state.persisted_bytes;
  return Status::OK();
}

void FaultyEnv::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  SimulateCrashLocked();
}

void FaultyEnv::SimulateCrashLocked() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  // Roll every tracked file back to its durable prefix. Files that predate
  // this Env were never tracked and keep their content.
  for (const auto& [path, state] : files_) {
    auto size = base_->FileSize(path);
    if (!size.ok()) continue;  // already deleted/renamed away
    if (state.durable_bytes >= *size) continue;
    if (state.durable_bytes == 0) {
      base_->DeleteFile(path);
      ++stats_.files_damaged;
      continue;
    }
    auto file = base_->OpenRandomAccess(path);
    if (!file.ok()) continue;
    std::string prefix(state.durable_bytes, '\0');
    std::size_t got = 0;
    if (!(*file)->Read(0, prefix.size(), prefix.data(), &got).ok() ||
        got != prefix.size()) {
      continue;
    }
    base_->WriteFile(path, prefix);
    ++stats_.files_damaged;
  }
}

bool FaultyEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

FaultyEnv::Stats FaultyEnv::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

namespace {

class FaultyRandomAccessFileImpl : public RandomAccessFile {
 public:
  FaultyRandomAccessFileImpl(FaultyEnv* env, std::string path,
                             std::unique_ptr<RandomAccessFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Read(uint64_t offset, std::size_t n, char* scratch,
              std::size_t* out_n) const override {
    ERA_RETURN_NOT_OK(env_->BeforeRead(path_));
    return base_->Read(offset, n, scratch, out_n);
  }

  Status ReadAt(uint64_t offset, std::size_t n, char* scratch,
                std::size_t* out_n) const override {
    ERA_RETURN_NOT_OK(env_->BeforeRead(path_));
    return base_->ReadAt(offset, n, scratch, out_n);
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  FaultyEnv* env_;
  std::string path_;
  std::unique_ptr<RandomAccessFile> base_;
};

class FaultyWritableFileImpl : public WritableFile {
 public:
  FaultyWritableFileImpl(FaultyEnv* env, std::string path,
                         std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(const char* data, std::size_t n) override {
    std::size_t persist_n = n;
    bool crash_after = false;
    bool durable = false;
    ERA_RETURN_NOT_OK(
        env_->BeforeAppend(path_, n, &persist_n, &crash_after, &durable));
    if (persist_n > 0) {
      ERA_RETURN_NOT_OK(base_->Append(data, persist_n));
      env_->NotePersisted(path_, persist_n, durable);
    }
    if (crash_after) {
      env_->SimulateCrash();
      return Status::IOError("injected crash during append to " + path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    ERA_RETURN_NOT_OK(base_->Sync());
    return env_->NoteSync(path_);
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultyEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

}  // namespace

StatusOr<std::unique_ptr<RandomAccessFile>> FaultyEnv::OpenRandomAccess(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus("open " + path);
  }
  ERA_ASSIGN_OR_RETURN(auto file, base_->OpenRandomAccess(path));
  return std::unique_ptr<RandomAccessFile>(
      new FaultyRandomAccessFileImpl(this, path, std::move(file)));
}

StatusOr<std::unique_ptr<WritableFile>> FaultyEnv::NewWritable(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus("create " + path);
  }
  ERA_ASSIGN_OR_RETURN(auto file, base_->NewWritable(path));
  {
    std::lock_guard<std::mutex> lock(mu_);
    files_[path] = FileState{};
  }
  return std::unique_ptr<WritableFile>(
      new FaultyWritableFileImpl(this, path, std::move(file)));
}

bool FaultyEnv::FileExists(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return false;
  }
  return base_->FileExists(path);
}

StatusOr<uint64_t> FaultyEnv::FileSize(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus("stat " + path);
  }
  return base_->FileSize(path);
}

Status FaultyEnv::DeleteFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus("unlink " + path);
    files_.erase(path);
  }
  return base_->DeleteFile(path);
}

Status FaultyEnv::CreateDir(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus("mkdir " + path);
  }
  return base_->CreateDir(path);
}

Status FaultyEnv::RenameFile(const std::string& from, const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashedStatus("rename " + from);
  }
  ERA_RETURN_NOT_OK(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  } else {
    // Renaming an untracked (pre-existing, fully durable) file over a
    // tracked one: the target inherits the source's durability.
    files_.erase(to);
  }
  return Status::OK();
}

}  // namespace era
