// POSIX-backed Env implementation.

#ifndef ERA_IO_POSIX_ENV_H_
#define ERA_IO_POSIX_ENV_H_

#include "io/env.h"

namespace era {

/// Env over the local filesystem (pread-based, thread-safe).
class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> NewWritable(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
};

}  // namespace era

#endif  // ERA_IO_POSIX_ENV_H_
