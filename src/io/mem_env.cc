#include "io/mem_env.h"

#include <algorithm>
#include <cstring>

namespace era {

namespace {

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<std::string> data)
      : data_(std::move(data)) {}

  Status Read(uint64_t offset, std::size_t n, char* scratch,
              std::size_t* out_n) const override {
    if (offset >= data_->size()) {
      *out_n = 0;
      return Status::OK();
    }
    std::size_t avail = data_->size() - offset;
    std::size_t take = std::min(n, avail);
    std::memcpy(scratch, data_->data() + offset, take);
    *out_n = take;
    return Status::OK();
  }

  // The backing string is immutable once opened (writers replace the map
  // entry with a fresh shared_ptr), so the inherited ReadAt default
  // (forward to Read) is safe to call concurrently.
  uint64_t Size() const override { return data_->size(); }

 private:
  std::shared_ptr<std::string> data_;
};

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<std::string> data)
      : data_(std::move(data)) {}

  Status Append(const char* data, std::size_t n) override {
    data_->append(data, n);
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<std::string> data_;
};

}  // namespace

StatusOr<std::unique_ptr<RandomAccessFile>> MemEnv::OpenRandomAccess(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::IOError("mem file not found: " + path);
  }
  return std::unique_ptr<RandomAccessFile>(
      new MemRandomAccessFile(it->second));
}

StatusOr<std::unique_ptr<WritableFile>> MemEnv::NewWritable(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto data = std::make_shared<std::string>();
  files_[path] = data;
  return std::unique_ptr<WritableFile>(new MemWritableFile(std::move(data)));
}

bool MemEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) > 0;
}

StatusOr<uint64_t> MemEnv::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::IOError("mem file not found: " + path);
  }
  return static_cast<uint64_t>(it->second->size());
}

Status MemEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(path) == 0) {
    return Status::IOError("mem file not found: " + path);
  }
  return Status::OK();
}

Status MemEnv::CreateDir(const std::string&) { return Status::OK(); }

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::IOError("mem file not found: " + from);
  }
  // Swap the whole entry in, POSIX-style: readers holding the old `to`
  // shared_ptr keep their snapshot.
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

std::size_t MemEnv::FileCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.size();
}

}  // namespace era
