// Buffered, instrumented access to the input string.
//
// StringReader is the only path through which builders touch the text of S.
// It provides:
//   * Fetch()       — monotonically increasing positions within a scan; this
//                     is the sequential access pattern of ERA/WaveFront/B2ST.
//                     With the disk-seek optimization enabled, long gaps
//                     between requested positions are skipped with a seek
//                     instead of being read through (Section 4.4 of the
//                     paper).
//   * RandomFetch() — arbitrary positions (used by the semi-disk-based
//                     TRELLIS merge phase and by query-time edge-label
//                     resolution); buffer misses count as seeks.
//
// All traffic is tallied into the IoStats supplied at construction.

#ifndef ERA_IO_STRING_READER_H_
#define ERA_IO_STRING_READER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "io/retry_policy.h"
#include "io/tile_cache.h"

namespace era {

/// Options controlling one StringReader.
struct StringReaderOptions {
  /// Size of the in-memory window (the paper's input buffer B_S).
  uint64_t buffer_bytes = 1 << 20;
  /// If true, skip unneeded stretches of the file with a seek when the gap
  /// exceeds `skip_threshold_bytes`.
  bool seek_optimization = false;
  /// Minimum gap that justifies a seek instead of reading through.
  uint64_t skip_threshold_bytes = 64 << 10;
  /// Window loaded on a random (non-sequential) repositioning. Small by
  /// default: a random miss fetches a block, not a full scan buffer.
  uint64_t random_window_bytes = 4096;
  /// Bill random repositionings as sequential transfer instead of seeks.
  /// Used by the WaveFront emulation: the real algorithm organizes exactly
  /// this traffic into block-nested-loop tile scans, so its device-level
  /// pattern is sequential volume, not head movement (see
  /// wavefront/wavefront.h).
  bool bill_random_as_sequential = false;
  /// Ring-buffer sequential refills: a background thread keeps up to
  /// `prefetch_depth` upcoming windows read ahead via
  /// RandomAccessFile::ReadAt while the builder consumes the resident one,
  /// hiding device latency behind compute (Section 4.4's CPU/I-O overlap
  /// argument). OpenStringReader returns a PrefetchingStringReader when set.
  bool prefetch = false;
  /// Number of speculative windows the prefetch ring keeps in flight ahead
  /// of the scan. 1 is classic double buffering; deeper rings keep the
  /// background thread streaming continuously instead of ping-ponging with
  /// the consumer. Hits that only a depth > 1 can produce are counted
  /// separately (IoStats::prefetch_depth_hits).
  uint32_t prefetch_depth = 4;
  /// Shared read-through tile cache (io/tile_cache.h). When set, the reader
  /// is served from the cache instead of the device: refills bill
  /// IoStats::cache_served_bytes, and the cache accounts the real device
  /// traffic its misses cause. The cache must have been opened on the same
  /// path this reader is opened on.
  std::shared_ptr<TileCache> tile_cache;
  /// Transient device-read faults (IOError only — never Corruption) are
  /// retried with exponential backoff before the scan fails; absorbed
  /// retries are tallied into IoStats::read_retries.
  RetryPolicy retry;
};

/// One read of a batched fetch. `out` must have room for `len` bytes; `got`
/// receives the number of bytes actually available (short at end-of-file).
struct FetchRequest {
  uint64_t pos = 0;
  uint32_t len = 0;
  char* out = nullptr;
  uint32_t got = 0;
};

/// Instrumented buffered reader over one file. Not thread-safe; each worker
/// owns its own StringReader.
class StringReader {
 public:
  /// `stats` may be nullptr (no accounting). Does not take ownership of it.
  StringReader(std::unique_ptr<RandomAccessFile> file,
               const StringReaderOptions& options, IoStats* stats);

  /// Starts a new sequential scan at position `start_pos`; Fetch positions
  /// must be non-decreasing until the next BeginScan.
  void BeginScan(uint64_t start_pos = 0);

  /// Reads up to `len` bytes at `pos` (which must be >= the previous Fetch
  /// position within this scan); `*out_len` receives the bytes available
  /// (short at end-of-file).
  Status Fetch(uint64_t pos, uint32_t len, char* out, uint32_t* out_len);

  /// Serves a pre-merged stream of sequential reads in one call: request
  /// positions must be non-decreasing (like Fetch within a scan). Runs of
  /// requests that land in the resident window are each served with a single
  /// memcpy, and the window advances once per gap instead of once per
  /// request — the batch drives exactly one pass over the buffer.
  Status FetchBatch(std::span<FetchRequest> requests);

  /// Reads up to `len` bytes at any `pos`; buffer misses reposition the
  /// window (counted as a seek).
  Status RandomFetch(uint64_t pos, uint32_t len, char* out, uint32_t* out_len);

  /// Batched RandomFetch: positions may be arbitrary; requests that hit the
  /// resident window are served with one memcpy and no repositioning.
  Status RandomFetchBatch(std::span<FetchRequest> requests);

  /// File size in bytes.
  uint64_t size() const { return file_->Size(); }

  /// Binds the caller's deadline/cancellation context to subsequent reads:
  /// every window refill checks it before touching the device and its retry
  /// backoffs never sleep past the deadline. `ctx` is borrowed, not owned —
  /// it must outlive the binding; pass nullptr to unbind. Consumer-thread
  /// state: the prefetch ring's background reads deliberately ignore it
  /// (speculative windows are reusable by the next query, and racing the
  /// binding against an in-flight background read would be unsound).
  void SetContext(const QueryContext* ctx) { context_ = ctx; }

  virtual ~StringReader() = default;

 protected:
  /// Loads the window so that it starts at `pos`. `sequential` controls
  /// whether the move is billed as a continued scan or as a seek;
  /// `full_window` loads the whole scan buffer even on a seek (used by the
  /// disk-seek optimization, which continues a scan after the skip).
  /// Virtual so PrefetchingStringReader can satisfy sequential refills from
  /// its background double buffer.
  virtual Status Refill(uint64_t pos, bool sequential,
                        bool full_window = true);

  std::unique_ptr<RandomAccessFile> file_;
  StringReaderOptions options_;
  IoStats* stats_;
  /// Borrowed per-query context (see SetContext); nullptr = unbounded.
  const QueryContext* context_ = nullptr;

  std::vector<char> buffer_;
  uint64_t buffer_start_ = 0;  // file offset of buffer_[0]
  uint64_t buffer_len_ = 0;    // valid bytes in buffer_
  bool has_window_ = false;

 private:
  /// Core of Fetch: reads [pos, pos+len) into `out`, moving the window as
  /// needed. Does not validate scan monotonicity (callers do).
  Status FetchInto(uint64_t pos, uint32_t len, char* out, uint32_t* out_len);

  /// Shared body of FetchBatch/RandomFetchBatch; `sequential` selects the
  /// monotonicity check and the buffer-miss path.
  Status ServeBatch(std::span<FetchRequest> requests, bool sequential);

  uint64_t scan_pos_ = 0;      // last requested position in this scan
};

/// StringReader whose sequential refills come from a prefetch ring: while
/// the builder consumes the resident window, a background thread keeps up
/// to `prefetch_depth` upcoming windows read ahead through
/// RandomAccessFile::ReadAt. A refill that lands inside a completed ring
/// slot swaps buffers instead of touching the device (an IoStats prefetch
/// hit — a depth hit when the slot was issued alongside other live slots);
/// anything else — scan restarts, long seek-optimization skips, random
/// repositionings — falls back to the base synchronous path. Like
/// StringReader it is single-consumer: only the internal prefetch thread
/// runs concurrently with the owner.
class PrefetchingStringReader : public StringReader {
 public:
  PrefetchingStringReader(std::unique_ptr<RandomAccessFile> file,
                          const StringReaderOptions& options, IoStats* stats);
  ~PrefetchingStringReader() override;

 protected:
  Status Refill(uint64_t pos, bool sequential, bool full_window) override;

 private:
  /// One speculative window. `data` is written by the prefetch thread only
  /// while `pending`; the consumer touches it only after `pending` cleared
  /// under mu_ (the mutex publishes the bytes).
  struct Slot {
    std::vector<char> data;
    uint64_t start = 0;
    uint64_t len = 0;
    bool valid = false;    // completed, unconsumed
    bool pending = false;  // background read in flight
    /// Live (valid or pending) slots when this read was issued; > 0 marks a
    /// window only a depth > 1 ring would have speculated this early.
    uint32_t issued_with_live = 0;
  };

  void PrefetchLoop();
  /// Index of a free ring slot, or -1. Caller holds mu_.
  int FreeSlotLocked() const;
  /// Number of valid or pending slots. Caller holds mu_.
  uint32_t LiveCountLocked() const;
  /// Folds background_io_ into stats_. Caller holds mu_.
  void FoldBackgroundIoLocked();
  /// Marks free slots pending for the next speculative windows and queues
  /// them for the prefetch thread. Issuing on the CONSUMER side is what
  /// makes the ring effective on a busy host: the very next refill already
  /// has a pending slot to wait on (the wait is the measured overlap),
  /// instead of hoping the background thread won a timeslice in between.
  /// Caller holds mu_.
  void IssueSpeculationLocked();

  // Adaptive speculation throttle (consumer-thread-only state): on
  // seek-optimized sparse scans every skip discards the in-flight
  // speculative windows, so after `kMaxWastedSpeculations` consecutive
  // wasted rounds speculation pauses until the access pattern proves
  // sequential again (`kRecoveryRefills` uninterrupted sequential refills).
  static constexpr uint32_t kMaxWastedSpeculations = 2;
  static constexpr uint32_t kRecoveryRefills = 2;
  uint32_t wasted_speculations_ = 0;
  uint32_t recovery_refills_ = 0;

  // All fields below mu_ are shared with the prefetch thread.
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> ring_;
  /// Slots issued but not yet executed, in issue (= position) order.
  std::vector<int> issue_queue_;
  /// Next window to speculate on, when armed.
  uint64_t next_spec_pos_ = 0;
  bool spec_armed_ = false;
  bool shutdown_ = false;
  Status background_status_;
  /// Traffic performed by the background thread; folded into stats_ by the
  /// consumer at the next refill (IoStats itself is not thread-safe).
  IoStats background_io_;
  std::thread thread_;
};

/// Opens `path` from `env` and wraps it in a StringReader.
StatusOr<std::unique_ptr<StringReader>> OpenStringReader(
    Env* env, const std::string& path, const StringReaderOptions& options,
    IoStats* stats);

}  // namespace era

#endif  // ERA_IO_STRING_READER_H_
