// Buffered, instrumented access to the input string.
//
// StringReader is the only path through which builders touch the text of S.
// It provides:
//   * Fetch()       — monotonically increasing positions within a scan; this
//                     is the sequential access pattern of ERA/WaveFront/B2ST.
//                     With the disk-seek optimization enabled, long gaps
//                     between requested positions are skipped with a seek
//                     instead of being read through (Section 4.4 of the
//                     paper).
//   * RandomFetch() — arbitrary positions (used by the semi-disk-based
//                     TRELLIS merge phase and by query-time edge-label
//                     resolution); buffer misses count as seeks.
//
// All traffic is tallied into the IoStats supplied at construction.

#ifndef ERA_IO_STRING_READER_H_
#define ERA_IO_STRING_READER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "io/env.h"
#include "io/io_stats.h"

namespace era {

/// Options controlling one StringReader.
struct StringReaderOptions {
  /// Size of the in-memory window (the paper's input buffer B_S).
  uint64_t buffer_bytes = 1 << 20;
  /// If true, skip unneeded stretches of the file with a seek when the gap
  /// exceeds `skip_threshold_bytes`.
  bool seek_optimization = false;
  /// Minimum gap that justifies a seek instead of reading through.
  uint64_t skip_threshold_bytes = 64 << 10;
  /// Window loaded on a random (non-sequential) repositioning. Small by
  /// default: a random miss fetches a block, not a full scan buffer.
  uint64_t random_window_bytes = 4096;
  /// Bill random repositionings as sequential transfer instead of seeks.
  /// Used by the WaveFront emulation: the real algorithm organizes exactly
  /// this traffic into block-nested-loop tile scans, so its device-level
  /// pattern is sequential volume, not head movement (see
  /// wavefront/wavefront.h).
  bool bill_random_as_sequential = false;
};

/// One read of a batched fetch. `out` must have room for `len` bytes; `got`
/// receives the number of bytes actually available (short at end-of-file).
struct FetchRequest {
  uint64_t pos = 0;
  uint32_t len = 0;
  char* out = nullptr;
  uint32_t got = 0;
};

/// Instrumented buffered reader over one file. Not thread-safe; each worker
/// owns its own StringReader.
class StringReader {
 public:
  /// `stats` may be nullptr (no accounting). Does not take ownership of it.
  StringReader(std::unique_ptr<RandomAccessFile> file,
               const StringReaderOptions& options, IoStats* stats);

  /// Starts a new sequential scan at position `start_pos`; Fetch positions
  /// must be non-decreasing until the next BeginScan.
  void BeginScan(uint64_t start_pos = 0);

  /// Reads up to `len` bytes at `pos` (which must be >= the previous Fetch
  /// position within this scan); `*out_len` receives the bytes available
  /// (short at end-of-file).
  Status Fetch(uint64_t pos, uint32_t len, char* out, uint32_t* out_len);

  /// Serves a pre-merged stream of sequential reads in one call: request
  /// positions must be non-decreasing (like Fetch within a scan). Runs of
  /// requests that land in the resident window are each served with a single
  /// memcpy, and the window advances once per gap instead of once per
  /// request — the batch drives exactly one pass over the buffer.
  Status FetchBatch(std::span<FetchRequest> requests);

  /// Reads up to `len` bytes at any `pos`; buffer misses reposition the
  /// window (counted as a seek).
  Status RandomFetch(uint64_t pos, uint32_t len, char* out, uint32_t* out_len);

  /// Batched RandomFetch: positions may be arbitrary; requests that hit the
  /// resident window are served with one memcpy and no repositioning.
  Status RandomFetchBatch(std::span<FetchRequest> requests);

  /// File size in bytes.
  uint64_t size() const { return file_->Size(); }

 private:
  /// Loads the window so that it starts at `pos`. `sequential` controls
  /// whether the move is billed as a continued scan or as a seek;
  /// `full_window` loads the whole scan buffer even on a seek (used by the
  /// disk-seek optimization, which continues a scan after the skip).
  Status Refill(uint64_t pos, bool sequential, bool full_window = true);

  /// Core of Fetch: reads [pos, pos+len) into `out`, moving the window as
  /// needed. Does not validate scan monotonicity (callers do).
  Status FetchInto(uint64_t pos, uint32_t len, char* out, uint32_t* out_len);

  /// Shared body of FetchBatch/RandomFetchBatch; `sequential` selects the
  /// monotonicity check and the buffer-miss path.
  Status ServeBatch(std::span<FetchRequest> requests, bool sequential);

  std::unique_ptr<RandomAccessFile> file_;
  StringReaderOptions options_;
  IoStats* stats_;

  std::vector<char> buffer_;
  uint64_t buffer_start_ = 0;  // file offset of buffer_[0]
  uint64_t buffer_len_ = 0;    // valid bytes in buffer_
  uint64_t scan_pos_ = 0;      // last requested position in this scan
  bool has_window_ = false;
};

/// Opens `path` from `env` and wraps it in a StringReader.
StatusOr<std::unique_ptr<StringReader>> OpenStringReader(
    Env* env, const std::string& path, const StringReaderOptions& options,
    IoStats* stats);

}  // namespace era

#endif  // ERA_IO_STRING_READER_H_
