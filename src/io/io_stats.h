// I/O instrumentation and the disk cost model.
//
// Every builder reads the input string through readers that tally their
// accesses into an IoStats. Benchmarks report both measured wall time and the
// "modeled disk time" obtained by pricing the recorded events with a
// DiskModel. This is the repository's documented substitution for the paper's
// disk-bound testbed: at laptop scale the OS page cache hides most I/O
// latency, so modeled time restores the I/O-bound component of the shapes the
// paper measures (see DESIGN.md §4).

#ifndef ERA_IO_IO_STATS_H_
#define ERA_IO_IO_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace era {

/// Counters for the disk traffic of one builder (or one thread of one).
struct IoStats {
  /// Bytes actually transferred from the input string file.
  uint64_t bytes_read = 0;
  /// Bytes written (serialized sub-trees, temporaries).
  uint64_t bytes_written = 0;
  /// Number of buffer refills that continued sequentially.
  uint64_t sequential_refills = 0;
  /// Number of random repositionings (disk seeks).
  uint64_t seeks = 0;
  /// Bytes skipped over via the disk-seek optimization (Section 4.4).
  uint64_t bytes_skipped = 0;
  /// Number of full passes over the input string that were started.
  uint64_t scans_started = 0;
  /// Number of FetchBatch/RandomFetchBatch calls issued.
  uint64_t fetch_batches = 0;
  /// Total individual requests served through batched fetches.
  uint64_t batched_requests = 0;
  /// Sequential window refills served from a completed background prefetch
  /// (the device wait overlapped with compute; see PrefetchingStringReader).
  uint64_t prefetch_hits = 0;
  /// Sequential window refills that went to the device in the foreground
  /// even though prefetching was enabled (first window of a scan, or the
  /// scan jumped outside the predicted next window).
  uint64_t prefetch_misses = 0;
  /// Prefetch hits on windows that were issued while other speculative
  /// windows were still live in the ring — hits only a prefetch depth > 1
  /// can produce (see StringReaderOptions::prefetch_depth).
  uint64_t prefetch_depth_hits = 0;
  /// Bytes transferred by background prefetch reads. For a device-backed
  /// reader these are counted into bytes_read as well (real device traffic,
  /// just issued off the consuming thread); for a cache-backed reader they
  /// count into cache_served_bytes instead.
  uint64_t prefetched_bytes = 0;
  /// Reader bytes served out of a shared TileCache (memory copies; the
  /// cache bills the underlying device traffic into tile_device_bytes).
  uint64_t cache_served_bytes = 0;
  /// Tile-cache lookups served from resident tiles (no device traffic).
  uint64_t tile_hits = 0;
  /// Tile-cache lookups that loaded the tile from the device.
  uint64_t tile_misses = 0;
  /// Bytes the tile cache transferred from the device on misses. The
  /// builders fold this into bytes_read as well, so bytes_read stays the
  /// single honest device-read total; this field keeps the attribution.
  uint64_t tile_device_bytes = 0;
  /// Bytes of resident tiles dropped by tile-cache budget evictions.
  uint64_t tile_evicted_bytes = 0;
  /// Sub-tree opens served from the in-memory cache (no device traffic).
  uint64_t cache_hits = 0;
  /// Sub-tree opens that had to load the file from the device.
  uint64_t cache_misses = 0;
  /// Bytes of cached sub-trees dropped by LRU budget evictions (explicit
  /// EvictCache sweeps are not counted; see TreeIndex).
  uint64_t cache_evicted_bytes = 0;
  /// Device reads that failed transiently and were re-issued by a
  /// RetryPolicy. A nonzero count with a successful run means faults were
  /// absorbed, not ignored.
  uint64_t read_retries = 0;

  /// Accumulates `other` into this (for aggregating per-thread stats).
  void Add(const IoStats& other) {
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    sequential_refills += other.sequential_refills;
    seeks += other.seeks;
    bytes_skipped += other.bytes_skipped;
    scans_started += other.scans_started;
    fetch_batches += other.fetch_batches;
    batched_requests += other.batched_requests;
    prefetch_hits += other.prefetch_hits;
    prefetch_misses += other.prefetch_misses;
    prefetch_depth_hits += other.prefetch_depth_hits;
    prefetched_bytes += other.prefetched_bytes;
    cache_served_bytes += other.cache_served_bytes;
    tile_hits += other.tile_hits;
    tile_misses += other.tile_misses;
    tile_device_bytes += other.tile_device_bytes;
    tile_evicted_bytes += other.tile_evicted_bytes;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evicted_bytes += other.cache_evicted_bytes;
    read_retries += other.read_retries;
  }

  std::string ToString() const;
};

/// One IoStats field described for the metrics registry: exported metric
/// name, help text, and the member it reads. The table (IoStatsFields) is
/// the single source of truth for folding an IoStats into registry counters
/// and for materializing the IoStats snapshot back out of them — adding a
/// field here wires it through export automatically.
struct IoStatsField {
  const char* name;
  const char* help;
  uint64_t IoStats::*member;
};

/// All IoStats fields, in declaration order.
const std::vector<IoStatsField>& IoStatsFields();

/// Prices IoStats events as a conventional spinning disk would.
struct DiskModel {
  /// Sequential transfer bandwidth in bytes/second (default 100 MB/s).
  double sequential_bytes_per_second = 100.0 * 1024 * 1024;
  /// Cost of one random repositioning in seconds (default 8 ms).
  double seek_seconds = 0.008;

  /// Disk time the recorded events would take on the modeled device.
  double ModeledSeconds(const IoStats& stats) const {
    double xfer = static_cast<double>(stats.bytes_read + stats.bytes_written) /
                  sequential_bytes_per_second;
    double seek = static_cast<double>(stats.seeks) * seek_seconds;
    return xfer + seek;
  }
};

}  // namespace era

#endif  // ERA_IO_IO_STATS_H_
