#include "io/latency_env.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace era {

namespace {

void SleepSeconds(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds));
}

}  // namespace

/// FIFO counting semaphore: request i may be serviced once fewer than
/// `depth` of requests [0, i) are still in service. Tickets make the wait
/// order strict FIFO — a device queue, not a scrum — so the modeled wait
/// time of an overloaded device is the textbook backlog/throughput, not
/// whatever the scheduler's wakeup order happens to produce.
class DeviceChannel {
 public:
  explicit DeviceChannel(uint32_t depth) : depth_(depth) {}

  void Acquire() {
    if (depth_ == 0) return;  // unbounded device
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t ticket = next_ticket_++;
    cv_.wait(lock, [&] { return ticket < served_ + depth_; });
  }

  void Release() {
    if (depth_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    ++served_;
    cv_.notify_all();
  }

 private:
  const uint32_t depth_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_ticket_ = 0;  // next arrival's ticket
  uint64_t served_ = 0;       // requests fully serviced
};

namespace {

/// RAII slot hold spanning one request's base I/O plus its modeled sleep.
class ChannelSlot {
 public:
  explicit ChannelSlot(DeviceChannel* channel) : channel_(channel) {
    channel_->Acquire();
  }
  ~ChannelSlot() { channel_->Release(); }
  ChannelSlot(const ChannelSlot&) = delete;
  ChannelSlot& operator=(const ChannelSlot&) = delete;

 private:
  DeviceChannel* channel_;
};

class LatencyRandomAccessFile : public RandomAccessFile {
 public:
  LatencyRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                          const LatencyModel& model,
                          std::shared_ptr<DeviceChannel> channel)
      : base_(std::move(base)), model_(model), channel_(std::move(channel)) {}

  Status Read(uint64_t offset, std::size_t n, char* scratch,
              std::size_t* out_n) const override {
    ChannelSlot slot(channel_.get());
    ERA_RETURN_NOT_OK(base_->Read(offset, n, scratch, out_n));
    SleepSeconds(model_.ReadSeconds(*out_n));
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, std::size_t n, char* scratch,
                std::size_t* out_n) const override {
    ChannelSlot slot(channel_.get());
    ERA_RETURN_NOT_OK(base_->ReadAt(offset, n, scratch, out_n));
    SleepSeconds(model_.ReadSeconds(*out_n));
    return Status::OK();
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  LatencyModel model_;
  std::shared_ptr<DeviceChannel> channel_;
};

class LatencyWritableFile : public WritableFile {
 public:
  LatencyWritableFile(std::unique_ptr<WritableFile> base,
                      const LatencyModel& model,
                      std::shared_ptr<DeviceChannel> channel)
      : base_(std::move(base)), model_(model), channel_(std::move(channel)) {}

  Status Append(const char* data, std::size_t n) override {
    ChannelSlot slot(channel_.get());
    ERA_RETURN_NOT_OK(base_->Append(data, n));
    SleepSeconds(model_.WriteSeconds(n));
    return Status::OK();
  }

  Status Sync() override {
    ChannelSlot slot(channel_.get());
    ERA_RETURN_NOT_OK(base_->Sync());
    // A flush costs one device round-trip but no transfer (the appends
    // already paid for their bytes).
    SleepSeconds(model_.write_latency_seconds);
    return Status::OK();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  LatencyModel model_;
  std::shared_ptr<DeviceChannel> channel_;
};

}  // namespace

LatencyEnv::LatencyEnv(Env* base, const LatencyModel& model)
    : base_(base),
      model_(model),
      channel_(std::make_shared<DeviceChannel>(model.queue_depth)) {}

StatusOr<std::unique_ptr<RandomAccessFile>> LatencyEnv::OpenRandomAccess(
    const std::string& path) {
  ERA_ASSIGN_OR_RETURN(auto file, base_->OpenRandomAccess(path));
  return std::unique_ptr<RandomAccessFile>(
      new LatencyRandomAccessFile(std::move(file), model_, channel_));
}

StatusOr<std::unique_ptr<WritableFile>> LatencyEnv::NewWritable(
    const std::string& path) {
  ERA_ASSIGN_OR_RETURN(auto file, base_->NewWritable(path));
  return std::unique_ptr<WritableFile>(
      new LatencyWritableFile(std::move(file), model_, channel_));
}

bool LatencyEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

StatusOr<uint64_t> LatencyEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status LatencyEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

Status LatencyEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status LatencyEnv::RenameFile(const std::string& from, const std::string& to) {
  return base_->RenameFile(from, to);
}

}  // namespace era
