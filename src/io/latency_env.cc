#include "io/latency_env.h"

#include <chrono>
#include <thread>

namespace era {

namespace {

void SleepSeconds(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds));
}

class LatencyRandomAccessFile : public RandomAccessFile {
 public:
  LatencyRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                          const LatencyModel& model)
      : base_(std::move(base)), model_(model) {}

  Status Read(uint64_t offset, std::size_t n, char* scratch,
              std::size_t* out_n) const override {
    ERA_RETURN_NOT_OK(base_->Read(offset, n, scratch, out_n));
    SleepSeconds(model_.ReadSeconds(*out_n));
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, std::size_t n, char* scratch,
                std::size_t* out_n) const override {
    ERA_RETURN_NOT_OK(base_->ReadAt(offset, n, scratch, out_n));
    SleepSeconds(model_.ReadSeconds(*out_n));
    return Status::OK();
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  LatencyModel model_;
};

class LatencyWritableFile : public WritableFile {
 public:
  LatencyWritableFile(std::unique_ptr<WritableFile> base,
                      const LatencyModel& model)
      : base_(std::move(base)), model_(model) {}

  Status Append(const char* data, std::size_t n) override {
    ERA_RETURN_NOT_OK(base_->Append(data, n));
    SleepSeconds(model_.WriteSeconds(n));
    return Status::OK();
  }

  Status Sync() override {
    ERA_RETURN_NOT_OK(base_->Sync());
    // A flush costs one device round-trip but no transfer (the appends
    // already paid for their bytes).
    SleepSeconds(model_.write_latency_seconds);
    return Status::OK();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  LatencyModel model_;
};

}  // namespace

StatusOr<std::unique_ptr<RandomAccessFile>> LatencyEnv::OpenRandomAccess(
    const std::string& path) {
  ERA_ASSIGN_OR_RETURN(auto file, base_->OpenRandomAccess(path));
  return std::unique_ptr<RandomAccessFile>(
      new LatencyRandomAccessFile(std::move(file), model_));
}

StatusOr<std::unique_ptr<WritableFile>> LatencyEnv::NewWritable(
    const std::string& path) {
  ERA_ASSIGN_OR_RETURN(auto file, base_->NewWritable(path));
  return std::unique_ptr<WritableFile>(
      new LatencyWritableFile(std::move(file), model_));
}

bool LatencyEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

StatusOr<uint64_t> LatencyEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status LatencyEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

Status LatencyEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status LatencyEnv::RenameFile(const std::string& from, const std::string& to) {
  return base_->RenameFile(from, to);
}

}  // namespace era
