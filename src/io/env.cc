#include "io/env.h"

#include "common/crc32.h"

namespace era {

Status Env::WriteFile(const std::string& path, const std::string& data) {
  ERA_ASSIGN_OR_RETURN(auto file, NewWritable(path));
  ERA_RETURN_NOT_OK(file->Append(data.data(), data.size()));
  return file->Close();
}

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  ERA_ASSIGN_OR_RETURN(auto file, OpenRandomAccess(path));
  out->clear();
  out->resize(file->Size());
  std::size_t got = 0;
  ERA_RETURN_NOT_OK(file->Read(0, out->size(), out->data(), &got));
  if (got != out->size()) {
    return Status::IOError("short read of " + path);
  }
  return Status::OK();
}

StatusOr<AtomicFileWriter> AtomicFileWriter::Open(Env* env,
                                                  const std::string& path) {
  std::string tmp_path = path + ".tmp";
  auto file = env->NewWritable(tmp_path);
  if (!file.ok()) {
    return file.status().WithContext("atomic write of " + path);
  }
  return AtomicFileWriter(env, path, std::move(tmp_path),
                          std::move(*file));
}

AtomicFileWriter::~AtomicFileWriter() {
  if (file_ != nullptr) Abandon();
}

Status AtomicFileWriter::Append(const char* data, std::size_t n) {
  if (file_ == nullptr) {
    return Status::Internal("append to spent atomic writer for " + path_);
  }
  if (Status s = file_->Append(data, n); !s.ok()) {
    return s.WithContext("atomic write of " + path_);
  }
  crc_ = Crc32c(data, n, crc_);
  bytes_ += n;
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (file_ == nullptr) {
    return Status::Internal("commit of spent atomic writer for " + path_);
  }
  Status s = file_->Sync();
  if (s.ok()) s = file_->Close();
  file_.reset();
  if (s.ok()) s = env_->RenameFile(tmp_path_, path_);
  if (!s.ok()) {
    env_->DeleteFile(tmp_path_);  // best effort; ignore secondary failures
    return s.WithContext("atomic write of " + path_);
  }
  return Status::OK();
}

void AtomicFileWriter::Abandon() {
  if (file_ != nullptr) {
    file_->Close();
    file_.reset();
  }
  env_->DeleteFile(tmp_path_);  // best effort
}

Status AtomicallyWriteFile(Env* env, const std::string& path,
                           const std::string& data, uint32_t* file_crc) {
  ERA_ASSIGN_OR_RETURN(AtomicFileWriter writer,
                       AtomicFileWriter::Open(env, path));
  ERA_RETURN_NOT_OK(writer.Append(data));
  ERA_RETURN_NOT_OK(writer.Commit());
  if (file_crc != nullptr) *file_crc = writer.crc32c();
  return Status::OK();
}

}  // namespace era
