#include "io/env.h"

namespace era {

Status Env::WriteFile(const std::string& path, const std::string& data) {
  ERA_ASSIGN_OR_RETURN(auto file, NewWritable(path));
  ERA_RETURN_NOT_OK(file->Append(data.data(), data.size()));
  return file->Close();
}

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  ERA_ASSIGN_OR_RETURN(auto file, OpenRandomAccess(path));
  out->clear();
  out->resize(file->Size());
  std::size_t got = 0;
  ERA_RETURN_NOT_OK(file->Read(0, out->size(), out->data(), &got));
  if (got != out->size()) {
    return Status::IOError("short read of " + path);
  }
  return Status::OK();
}

}  // namespace era
