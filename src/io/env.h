// Storage abstraction (RocksDB-style Env).
//
// All file access in the library goes through Env so that tests can run
// against an in-memory filesystem and so that every byte read by a builder is
// observable by the instrumentation layer (IoStats).

#ifndef ERA_IO_ENV_H_
#define ERA_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace era {

/// Read-only file with positional reads (pread semantics).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset` into `scratch`. `*out_n` receives the
  /// number of bytes actually read (0 at EOF). Short reads at end-of-file are
  /// not errors.
  virtual Status Read(uint64_t offset, std::size_t n, char* scratch,
                      std::size_t* out_n) const = 0;

  /// Positional read used by background prefetchers. Same semantics as
  /// Read(), with one extra requirement: implementations must allow ReadAt
  /// to run concurrently with Read/ReadAt calls on the same file from other
  /// threads (pread semantics — no shared cursor). The default forwards to
  /// Read(), which is sufficient whenever Read is already stateless; an Env
  /// whose Read mutates per-file state must override this with a
  /// thread-safe path.
  virtual Status ReadAt(uint64_t offset, std::size_t n, char* scratch,
                        std::size_t* out_n) const {
    return Read(offset, n, scratch, out_n);
  }

  /// Total file size in bytes.
  virtual uint64_t Size() const = 0;
};

/// Append-only output file.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const char* data, std::size_t n) = 0;
  virtual Status Close() = 0;

  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
};

/// Filesystem abstraction. Thread-safe; files returned by it are independently
/// usable from different threads (each with its own read position state).
class Env {
 public:
  virtual ~Env() = default;

  virtual StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) = 0;
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritable(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  /// Creates a directory (and parents). No-op if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Convenience: writes `data` to `path`, replacing existing content.
  Status WriteFile(const std::string& path, const std::string& data);
  /// Convenience: reads the whole file into `*out`.
  Status ReadFileToString(const std::string& path, std::string* out);
};

/// Process-wide POSIX Env singleton.
Env* GetDefaultEnv();

}  // namespace era

#endif  // ERA_IO_ENV_H_
