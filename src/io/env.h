// Storage abstraction (RocksDB-style Env).
//
// All file access in the library goes through Env so that tests can run
// against an in-memory filesystem and so that every byte read by a builder is
// observable by the instrumentation layer (IoStats).

#ifndef ERA_IO_ENV_H_
#define ERA_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace era {

/// Read-only file with positional reads (pread semantics).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset` into `scratch`. `*out_n` receives the
  /// number of bytes actually read (0 at EOF). Short reads at end-of-file are
  /// not errors.
  virtual Status Read(uint64_t offset, std::size_t n, char* scratch,
                      std::size_t* out_n) const = 0;

  /// Positional read used by background prefetchers. Same semantics as
  /// Read(), with one extra requirement: implementations must allow ReadAt
  /// to run concurrently with Read/ReadAt calls on the same file from other
  /// threads (pread semantics — no shared cursor). The default forwards to
  /// Read(), which is sufficient whenever Read is already stateless; an Env
  /// whose Read mutates per-file state must override this with a
  /// thread-safe path.
  virtual Status ReadAt(uint64_t offset, std::size_t n, char* scratch,
                        std::size_t* out_n) const {
    return Read(offset, n, scratch, out_n);
  }

  /// Total file size in bytes.
  virtual uint64_t Size() const = 0;
};

/// Append-only output file.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const char* data, std::size_t n) = 0;
  /// Makes every byte appended so far durable: after Sync returns OK, the
  /// data survives a crash (Env::SimulateCrash in a FaultyEnv, power loss on
  /// a real device). Un-synced appends may be lost. Default is a no-op,
  /// which is correct for Envs with no crash notion (MemEnv).
  virtual Status Sync() { return Status::OK(); }
  virtual Status Close() = 0;

  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
};

/// Filesystem abstraction. Thread-safe; files returned by it are independently
/// usable from different threads (each with its own read position state).
class Env {
 public:
  virtual ~Env() = default;

  virtual StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) = 0;
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritable(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  /// Creates a directory (and parents). No-op if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics): readers
  /// observe either the old content of `to` or all of `from`, never a mix.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Convenience: writes `data` to `path`, replacing existing content.
  /// Not atomic and not durable — use AtomicallyWriteFile for artifacts that
  /// must never be observed half-written.
  Status WriteFile(const std::string& path, const std::string& data);
  /// Convenience: reads the whole file into `*out`.
  Status ReadFileToString(const std::string& path, std::string* out);
};

/// Streams an artifact into `<path>.tmp` and publishes it with
/// Sync + Close + rename on Commit. A crash at any point leaves either the
/// previous content of `path` or the complete new content — never a torn
/// file (at worst a stray `.tmp` that the next writer overwrites).
/// Abandons (deletes the temp file) on destruction unless committed.
class AtomicFileWriter {
 public:
  static StatusOr<AtomicFileWriter> Open(Env* env, const std::string& path);

  AtomicFileWriter(AtomicFileWriter&&) = default;
  AtomicFileWriter& operator=(AtomicFileWriter&&) = default;
  ~AtomicFileWriter();

  Status Append(const char* data, std::size_t n);
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }

  /// CRC-32C of every byte appended so far — after Commit, the checksum of
  /// the published file. Lets callers record artifact checksums without
  /// re-reading what they just wrote.
  uint32_t crc32c() const { return crc_; }
  uint64_t bytes_appended() const { return bytes_; }

  /// Sync + Close + rename onto the final path. The writer is spent after
  /// Commit (successful or not).
  Status Commit();
  /// Drops the temp file (best effort). Called implicitly by the destructor
  /// when Commit was never reached.
  void Abandon();

 private:
  AtomicFileWriter(Env* env, std::string path, std::string tmp_path,
                   std::unique_ptr<WritableFile> file)
      : env_(env),
        path_(std::move(path)),
        tmp_path_(std::move(tmp_path)),
        file_(std::move(file)) {}

  Env* env_ = nullptr;
  std::string path_;
  std::string tmp_path_;
  std::unique_ptr<WritableFile> file_;  // null once committed/abandoned
  uint32_t crc_ = 0;
  uint64_t bytes_ = 0;
};

/// Convenience: atomically + durably replaces `path` with `data` (temp file,
/// Sync, rename). `file_crc` (optional) receives the CRC-32C of `data`.
Status AtomicallyWriteFile(Env* env, const std::string& path,
                           const std::string& data,
                           uint32_t* file_crc = nullptr);

/// Process-wide POSIX Env singleton.
Env* GetDefaultEnv();

}  // namespace era

#endif  // ERA_IO_ENV_H_
