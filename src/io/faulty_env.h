// Fault-injecting Env decorator for robustness tests and reproducible
// failure drills.
//
// FaultyEnv wraps any Env and injects deterministic, seedable faults into
// its data plane: transient or permanent read/write errors (by probability
// or by call-count trigger), silent short writes, ENOSPC after a byte
// budget, torn-write-then-crash, and a whole-process SimulateCrash() that
// drops every byte not made durable by WritableFile::Sync. The same spec +
// seed always injects the same schedule, so a failing fault scenario is a
// one-line reproduction (`era_cli build --faults=<spec>`).
//
// Durability model: the wrapper tracks, per file it created, how many
// persisted bytes a Sync has covered. SimulateCrash truncates each tracked
// file to that durable prefix (deleting never-synced files), then latches
// the Env so every later operation fails — exactly what a killed process
// leaves on a real filesystem. Files that predate the wrapper are preserved.

#ifndef ERA_IO_FAULTY_ENV_H_
#define ERA_IO_FAULTY_ENV_H_

#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>

#include "io/env.h"

namespace era {

/// What to inject. Probabilities are per matching call; triggers are
/// 1-based call counts over the whole Env. Zero disables a fault.
struct FaultSpec {
  /// Each matching read call fails with this probability. A retry re-rolls.
  double read_transient_p = 0;
  /// Each matching append fails with this probability (nothing persisted).
  double write_transient_p = 0;
  /// With this probability an append silently persists only half its bytes
  /// and still reports success — the tear only checksums can catch.
  double short_write_p = 0;
  /// Fail the Nth matching read call.
  uint64_t fail_read_at = 0;
  /// With fail_read_at: every read from the Nth on fails (a dead region),
  /// not just the Nth (a transient blip).
  bool read_fail_permanent = false;
  /// Fail the Nth matching append.
  uint64_t fail_write_at = 0;
  bool write_fail_permanent = false;
  /// Appends fail once this many bytes have been persisted (device full).
  uint64_t enospc_after_bytes = 0;
  /// Crash (as if SimulateCrash) right after the Nth matching append
  /// persists — the kill-point knob for the resume sweep.
  uint64_t crash_after_writes = 0;
  /// The Nth matching append persists half its bytes durably, then the
  /// process crashes — a torn in-place write.
  uint64_t torn_write_at = 0;
  /// Only paths containing this substring are faulted (all files are still
  /// tracked for crash durability). Empty matches everything.
  std::string path_filter;
  /// Seed for the probability rolls.
  uint64_t seed = 42;
};

/// Parses the CLI spec string, e.g.
/// "read_transient=0.01,enospc_after=64MB,seed=7". Keys: read_transient,
/// write_transient, short_write (probabilities); fail_read_at,
/// fail_write_at, crash_after_writes, torn_write_at, seed (counts);
/// read_permanent, write_permanent (0/1); enospc_after (bytes, K/M/G
/// suffixes); path (substring filter).
StatusOr<FaultSpec> ParseFaultSpec(const std::string& spec);

/// Env decorator injecting the faults described by a FaultSpec. Thread-safe.
/// Does not own `base`.
class FaultyEnv : public Env {
 public:
  struct Stats {
    uint64_t reads = 0;            // matching read calls observed
    uint64_t writes = 0;           // matching append calls observed
    uint64_t read_faults = 0;      // injected read failures
    uint64_t write_faults = 0;     // injected append failures (incl. ENOSPC)
    uint64_t short_writes = 0;     // silent partial appends
    uint64_t enospc_faults = 0;
    uint64_t crashes = 0;          // 0 or 1
    uint64_t files_damaged = 0;    // files truncated or deleted by the crash
    std::string ToString() const;
  };

  FaultyEnv(Env* base, const FaultSpec& spec);

  StatusOr<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> NewWritable(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;

  /// Drops the un-synced suffix of every file written through this Env and
  /// latches the crashed state: all subsequent operations fail with
  /// IOError. Idempotent.
  void SimulateCrash();

  bool crashed() const;
  Stats stats() const;
  const FaultSpec& spec() const { return spec_; }

  // Hooks for the wrapped file objects (implementation detail, not API).

  /// Gate for one read call: counts it and decides whether to fail it.
  Status BeforeRead(const std::string& path);
  /// Gate for one append of `n` bytes: counts it, decides failure / short
  /// write / crash. On OK, `*persist_n` is how many bytes to forward to the
  /// base file (may be < n for a short or torn write) and `*crash_after` is
  /// set when the env must crash once those bytes are persisted.
  Status BeforeAppend(const std::string& path, std::size_t n,
                      std::size_t* persist_n, bool* crash_after,
                      bool* durable);
  void NotePersisted(const std::string& path, uint64_t n, bool durable);
  Status NoteSync(const std::string& path);

 private:
  struct FileState {
    uint64_t persisted_bytes = 0;  // bytes that reached the base env
    uint64_t durable_bytes = 0;    // prefix covered by a successful Sync
  };

  bool Matches(const std::string& path) const;
  void SimulateCrashLocked();
  Status CrashedStatus(const std::string& op) const;

  Env* base_;
  const FaultSpec spec_;
  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  bool crashed_ = false;
  bool read_latched_ = false;
  bool write_latched_ = false;
  uint64_t read_calls_ = 0;
  uint64_t write_calls_ = 0;
  uint64_t persisted_total_ = 0;
  std::map<std::string, FileState> files_;
  Stats stats_;
};

}  // namespace era

#endif  // ERA_IO_FAULTY_ENV_H_
