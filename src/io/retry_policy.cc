#include "io/retry_policy.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace era {

namespace {

/// SplitMix64: cheap, stateless, well-mixed — the jitter only needs to
/// decorrelate concurrent retriers, not pass randomness tests.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::BackoffSeconds(uint32_t attempt) const {
  double nominal = initial_backoff_seconds;
  for (uint32_t i = 1; i < attempt; ++i) nominal *= backoff_multiplier;
  nominal = std::min(nominal, max_backoff_seconds);
  double unit = static_cast<double>(Mix(jitter_seed ^ attempt) >> 11) /
                static_cast<double>(1ull << 53);
  return nominal * (0.5 + 0.5 * unit);
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, uint64_t* retries) {
  return RunWithRetry(policy, nullptr, op, retries);
}

Status RunWithRetry(const RetryPolicy& policy, const QueryContext* ctx,
                    const std::function<Status()>& op, uint64_t* retries) {
  Status s = op();
  for (uint32_t attempt = 1;
       !s.ok() && s.IsIOError() && attempt < policy.max_attempts; ++attempt) {
    double backoff = policy.BackoffSeconds(attempt);
    if (ctx != nullptr) {
      // Return the IOError promptly rather than burn budget the caller no
      // longer has: a sleep that outlives the deadline helps no one, and a
      // cancelled caller has stopped listening.
      if (ctx->cancelled() || ctx->RemainingSeconds() <= backoff) return s;
    }
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    if (retries != nullptr) ++*retries;
    s = op();
  }
  return s;
}

}  // namespace era
