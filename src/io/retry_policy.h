// Bounded retry with exponential backoff for transient device-read faults.
//
// The horizontal phase of an ERA build streams hundreds of gigabytes on a
// genome-scale run; at that volume a single transient pread failure should
// cost one re-issue, not the whole build. RetryPolicy is the one shared
// knob: readers (StringReader, TileCache, TreeIndex) wrap their device reads
// in RunWithRetry and bill re-attempts to IoStats::read_retries so absorbed
// faults stay observable.

#ifndef ERA_IO_RETRY_POLICY_H_
#define ERA_IO_RETRY_POLICY_H_

#include <cstdint>
#include <functional>

#include "common/query_context.h"
#include "common/status.h"

namespace era {

/// How to retry an IOError'd device read. Only IOError is retried:
/// Corruption means the bytes arrived but are wrong — re-reading cannot fix
/// a bad checksum, and the caller must surface it (quarantine, rebuild).
struct RetryPolicy {
  /// Total attempts including the first (1 disables retry).
  uint32_t max_attempts = 4;
  /// Backoff before the first re-attempt, in seconds.
  double initial_backoff_seconds = 0.0002;
  /// Backoff growth per re-attempt.
  double backoff_multiplier = 4.0;
  /// Ceiling on a single backoff sleep, in seconds.
  double max_backoff_seconds = 0.05;
  /// Seed for the deterministic jitter applied to each backoff (scales the
  /// sleep into [0.5, 1.0) of nominal). Same seed, same sleeps — fault
  /// schedules in tests stay reproducible.
  uint64_t jitter_seed = 1;

  bool enabled() const { return max_attempts > 1; }

  /// Deterministic jittered backoff before re-attempt number `attempt`
  /// (1-based), in seconds. Exposed for tests.
  double BackoffSeconds(uint32_t attempt) const;
};

/// Runs `op` up to `policy.max_attempts` times, sleeping the jittered
/// backoff between IOError failures. Non-IOError statuses return
/// immediately. `*retries` (may be null) accumulates the number of
/// re-attempts actually performed, successful or not.
Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, uint64_t* retries);

/// Deadline-aware variant: before each backoff sleep the caller's context
/// (may be null, meaning no deadline) is consulted — if the token is
/// cancelled or the remaining budget would be consumed by the sleep, the
/// last IOError is returned promptly instead. The retry loop never sleeps
/// past the caller's deadline: a retryable fault with 1ms of budget left
/// costs ~1ms, not a full backoff schedule.
Status RunWithRetry(const RetryPolicy& policy, const QueryContext* ctx,
                    const std::function<Status()>& op, uint64_t* retries);

}  // namespace era

#endif  // ERA_IO_RETRY_POLICY_H_
