#include "io/io_stats.h"

#include <sstream>

namespace era {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "read=" << bytes_read << "B written=" << bytes_written
     << "B seq_refills=" << sequential_refills << " seeks=" << seeks
     << " skipped=" << bytes_skipped << "B scans=" << scans_started
     << " batches=" << fetch_batches << " batched_reqs=" << batched_requests
     << " prefetch_hits=" << prefetch_hits
     << " prefetch_misses=" << prefetch_misses
     << " prefetch_depth_hits=" << prefetch_depth_hits
     << " prefetched=" << prefetched_bytes << "B"
     << " cache_served=" << cache_served_bytes << "B"
     << " tile_hits=" << tile_hits << " tile_misses=" << tile_misses
     << " tile_device=" << tile_device_bytes << "B"
     << " tile_evicted=" << tile_evicted_bytes << "B"
     << " cache_hits=" << cache_hits << " cache_misses=" << cache_misses
     << " cache_evicted=" << cache_evicted_bytes << "B"
     << " read_retries=" << read_retries;
  return os.str();
}

const std::vector<IoStatsField>& IoStatsFields() {
  static const std::vector<IoStatsField>* fields = new std::vector<IoStatsField>{
      {"era_io_bytes_read_total", "Bytes transferred from the device",
       &IoStats::bytes_read},
      {"era_io_bytes_written_total", "Bytes written (sub-trees, temporaries)",
       &IoStats::bytes_written},
      {"era_io_sequential_refills_total",
       "Buffer refills that continued sequentially",
       &IoStats::sequential_refills},
      {"era_io_seeks_total", "Random repositionings (disk seeks)",
       &IoStats::seeks},
      {"era_io_bytes_skipped_total",
       "Bytes skipped via the disk-seek optimization", &IoStats::bytes_skipped},
      {"era_io_scans_started_total", "Full input passes started",
       &IoStats::scans_started},
      {"era_io_fetch_batches_total", "FetchBatch/RandomFetchBatch calls",
       &IoStats::fetch_batches},
      {"era_io_batched_requests_total",
       "Individual requests served through batched fetches",
       &IoStats::batched_requests},
      {"era_io_prefetch_hits_total",
       "Refills served from a completed background prefetch",
       &IoStats::prefetch_hits},
      {"era_io_prefetch_misses_total",
       "Refills that went to the device despite prefetching",
       &IoStats::prefetch_misses},
      {"era_io_prefetch_depth_hits_total",
       "Prefetch hits only a depth > 1 ring can produce",
       &IoStats::prefetch_depth_hits},
      {"era_io_prefetched_bytes_total",
       "Bytes transferred by background prefetch reads",
       &IoStats::prefetched_bytes},
      {"era_io_cache_served_bytes_total",
       "Reader bytes served out of a shared tile cache",
       &IoStats::cache_served_bytes},
      {"era_io_tile_hits_total", "Tile-cache lookups served from residency",
       &IoStats::tile_hits},
      {"era_io_tile_misses_total",
       "Tile-cache lookups that loaded from the device", &IoStats::tile_misses},
      {"era_io_tile_device_bytes_total",
       "Bytes the tile cache transferred from the device on misses",
       &IoStats::tile_device_bytes},
      {"era_io_tile_evicted_bytes_total",
       "Resident tile bytes dropped by budget evictions",
       &IoStats::tile_evicted_bytes},
      {"era_io_cache_hits_total",
       "Sub-tree opens served from the in-memory cache", &IoStats::cache_hits},
      {"era_io_cache_misses_total",
       "Sub-tree opens that loaded the file from the device",
       &IoStats::cache_misses},
      {"era_io_cache_evicted_bytes_total",
       "Cached sub-tree bytes dropped by LRU budget evictions",
       &IoStats::cache_evicted_bytes},
      {"era_io_read_retries_total",
       "Transiently failed device reads re-issued by a RetryPolicy",
       &IoStats::read_retries},
  };
  return *fields;
}

}  // namespace era
