#include "io/io_stats.h"

#include <sstream>

namespace era {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "read=" << bytes_read << "B written=" << bytes_written
     << "B seq_refills=" << sequential_refills << " seeks=" << seeks
     << " skipped=" << bytes_skipped << "B scans=" << scans_started
     << " batches=" << fetch_batches << " batched_reqs=" << batched_requests;
  return os.str();
}

}  // namespace era
