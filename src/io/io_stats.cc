#include "io/io_stats.h"

#include <sstream>

namespace era {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "read=" << bytes_read << "B written=" << bytes_written
     << "B seq_refills=" << sequential_refills << " seeks=" << seeks
     << " skipped=" << bytes_skipped << "B scans=" << scans_started
     << " batches=" << fetch_batches << " batched_reqs=" << batched_requests
     << " prefetch_hits=" << prefetch_hits
     << " prefetch_misses=" << prefetch_misses
     << " prefetch_depth_hits=" << prefetch_depth_hits
     << " prefetched=" << prefetched_bytes << "B"
     << " cache_served=" << cache_served_bytes << "B"
     << " tile_hits=" << tile_hits << " tile_misses=" << tile_misses
     << " tile_device=" << tile_device_bytes << "B"
     << " tile_evicted=" << tile_evicted_bytes << "B"
     << " cache_hits=" << cache_hits << " cache_misses=" << cache_misses
     << " cache_evicted=" << cache_evicted_bytes << "B"
     << " read_retries=" << read_retries;
  return os.str();
}

}  // namespace era
