#include "wavefront/wavefront.h"

#include <algorithm>

#include "common/timer.h"
#include "suffixtree/serializer.h"
#include "text/aho_corasick.h"

namespace era {

namespace {

/// Reads one symbol at `pos` through a buffered reader (the nested-loop
/// tile access pattern: hits are free, misses refill a tile).
StatusOr<char> SymbolAt(StringReader* reader, uint64_t pos) {
  char c = 0;
  uint32_t got = 0;
  ERA_RETURN_NOT_OK(reader->RandomFetch(pos, 1, &c, &got));
  if (got != 1) return Status::Internal("symbol read past end of string");
  return c;
}

/// Compares text[a..a+len) (edge side) with text[b..b+len) (suffix side) in
/// chunks; returns the number of equal leading symbols.
Status CompareRun(StringReader* edge_reader, StringReader* suffix_reader,
                  uint64_t a, uint64_t b, uint64_t len, uint64_t* matched) {
  char buf_a[64];
  char buf_b[64];
  uint64_t done = 0;
  while (done < len) {
    uint32_t want = static_cast<uint32_t>(
        std::min<uint64_t>(sizeof(buf_a), len - done));
    uint32_t got_a = 0;
    uint32_t got_b = 0;
    ERA_RETURN_NOT_OK(edge_reader->RandomFetch(a + done, want, buf_a, &got_a));
    ERA_RETURN_NOT_OK(
        suffix_reader->RandomFetch(b + done, want, buf_b, &got_b));
    uint32_t m = std::min(got_a, got_b);
    for (uint32_t i = 0; i < m; ++i) {
      if (buf_a[i] != buf_b[i]) {
        *matched = done + i;
        return Status::OK();
      }
    }
    if (m == 0) break;
    done += m;
  }
  *matched = done;
  return Status::OK();
}

}  // namespace

StatusOr<TreeBuffer> WaveFrontBuildSubTree(const std::string& prefix,
                                           const std::vector<uint64_t>& occ,
                                           uint64_t text_length,
                                           StringReader* suffix_reader,
                                           StringReader* edge_reader) {
  (void)prefix;
  TreeBuffer tree;
  tree.Reserve(2 * occ.size());

  bool first = true;
  for (uint64_t q : occ) {
    if (first) {
      uint32_t leaf = tree.AddNode();
      TreeNode& node = tree.node(leaf);
      node.edge_start = q;
      node.edge_len = static_cast<uint32_t>(text_length - q);
      node.leaf_id = q;
      tree.node(0).first_child = leaf;
      first = false;
      continue;
    }

    // Top-down traversal from the sub-tree root for every new suffix — the
    // repeated tree navigation WaveFront pays per node (Section 3).
    uint32_t node = 0;
    uint64_t depth = 0;
    for (;;) {
      ERA_ASSIGN_OR_RETURN(char want, SymbolAt(suffix_reader, q + depth));
      // Find the child whose edge begins with `want`, tracking the
      // insertion point to keep siblings sorted. Probing stays sequential
      // with early exit — batching all sibling symbols would fetch tiles
      // the real algorithm never touches and inflate the baseline's
      // measured I/O.
      uint32_t prev = kNilNode;
      uint32_t child = tree.node(node).first_child;
      char have = 0;
      while (child != kNilNode) {
        ERA_ASSIGN_OR_RETURN(
            have, SymbolAt(edge_reader, tree.node(child).edge_start));
        if (have >= want) break;
        prev = child;
        child = tree.node(child).next_sibling;
      }

      if (child == kNilNode || have != want) {
        // No matching edge: attach a fresh leaf here, between prev and
        // child (sorted order).
        uint32_t leaf = tree.AddNode();
        TreeNode& leaf_node = tree.node(leaf);
        leaf_node.edge_start = q + depth;
        leaf_node.edge_len = static_cast<uint32_t>(text_length - q - depth);
        leaf_node.leaf_id = q;
        leaf_node.next_sibling = child;
        if (prev == kNilNode) {
          tree.node(node).first_child = leaf;
        } else {
          tree.node(prev).next_sibling = leaf;
        }
        break;
      }

      // Walk the edge label, comparing with the suffix (chunked reads from
      // the two nested-loop buffers).
      const uint32_t edge_len = tree.node(child).edge_len;
      const uint64_t edge_start = tree.node(child).edge_start;
      uint64_t run = 0;
      ERA_RETURN_NOT_OK(CompareRun(edge_reader, suffix_reader, edge_start + 1,
                                   q + depth + 1, edge_len - 1, &run));
      uint32_t j = 1 + static_cast<uint32_t>(run);
      if (j == edge_len) {
        // Whole edge matched: descend.
        depth += edge_len;
        node = child;
        continue;
      }

      // Mismatch inside the edge: split at j, then attach the new leaf in
      // symbol order relative to the old edge's continuation.
      uint32_t mid = tree.AddNode();
      uint32_t leaf = tree.AddNode();
      TreeNode& child_node = tree.node(child);
      TreeNode& mid_node = tree.node(mid);
      TreeNode& leaf_node = tree.node(leaf);

      mid_node.edge_start = child_node.edge_start;
      mid_node.edge_len = j;
      mid_node.next_sibling = child_node.next_sibling;
      child_node.edge_start += j;
      child_node.edge_len -= j;
      child_node.next_sibling = kNilNode;

      leaf_node.edge_start = q + depth + j;
      leaf_node.edge_len =
          static_cast<uint32_t>(text_length - q - depth - j);
      leaf_node.leaf_id = q;

      ERA_ASSIGN_OR_RETURN(char old_sym,
                           SymbolAt(edge_reader, child_node.edge_start));
      ERA_ASSIGN_OR_RETURN(char new_sym,
                           SymbolAt(suffix_reader, q + depth + j));
      if (new_sym < old_sym) {
        mid_node.first_child = leaf;
        leaf_node.next_sibling = child;
      } else {
        mid_node.first_child = child;
        child_node.next_sibling = leaf;
      }

      if (prev == kNilNode) {
        tree.node(node).first_child = mid;
      } else {
        tree.node(prev).next_sibling = mid;
      }
      break;
    }
  }
  return tree;
}

Status WaveFrontProcessUnit(const TextInfo& text, const BuildOptions& options,
                            const VirtualTree& unit, uint64_t unit_id,
                            StringReader* scan_reader,
                            StringReader* suffix_reader,
                            StringReader* edge_reader, GroupOutput* out) {
  if (unit.prefixes.size() != 1) {
    return Status::InvalidArgument(
        "WaveFront processes one sub-tree per unit (no virtual trees)");
  }
  const std::string& prefix = unit.prefixes[0].prefix;

  // One scan of S per sub-tree: WaveFront has no grouping to amortize it.
  ERA_ASSIGN_OR_RETURN(auto matcher,
                       AhoCorasick::Build({prefix}));
  std::vector<uint64_t> occ;
  occ.reserve(unit.prefixes[0].frequency);
  ERA_RETURN_NOT_OK(matcher.ScanAll(
      scan_reader, [&](int32_t, uint64_t pos) { occ.push_back(pos); }));
  if (occ.size() != unit.prefixes[0].frequency) {
    return Status::Internal("occurrence count mismatch for " + prefix);
  }

  ERA_ASSIGN_OR_RETURN(TreeBuffer tree,
                       WaveFrontBuildSubTree(prefix, occ, text.length,
                                             suffix_reader, edge_reader));
  out->rounds = 1;
  out->tree_bytes = tree.MemoryBytes();
  std::string filename = "st_" + std::to_string(unit_id) + "_0.bin";
  ERA_RETURN_NOT_OK(WriteSubTree(options.GetEnv(),
                                 options.work_dir + "/" + filename, prefix,
                                 tree, &out->write_io, nullptr,
                                 options.format));
  out->subtrees.push_back({prefix, occ.size(), filename});
  return Status::OK();
}

StatusOr<BuildResult> WaveFrontBuilder::Build(const TextInfo& text) {
  WallTimer total_timer;
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options_));
  ERA_RETURN_NOT_OK(options_.GetEnv()->CreateDir(options_.work_dir));

  BuildStats stats;
  ERA_ASSIGN_OR_RETURN(MemoryLayout layout,
                       PlanMemoryWaveFront(options_, text.alphabet.size()));
  stats.fm = layout.fm;
  stats.text_bytes = text.length;

  BuildOptions partition_options = options_;
  partition_options.group_virtual_trees = false;
  ERA_ASSIGN_OR_RETURN(PartitionPlan plan,
                       VerticalPartition(text, partition_options, layout.fm));
  stats.vertical_seconds = plan.seconds;
  stats.io.Add(plan.io);
  stats.num_groups = plan.groups.size();
  stats.num_subtrees = plan.NumSubTrees();

  WallTimer horizontal_timer;
  IoStats scan_io;
  StringReaderOptions scan_options;
  scan_options.buffer_bytes = std::max<uint64_t>(4096, layout.trie_bytes);
  scan_options.seek_optimization = false;  // WaveFront reads S in full
  ERA_ASSIGN_OR_RETURN(auto scan_reader,
                       OpenStringReader(options_.GetEnv(), text.path,
                                        scan_options, &scan_io));
  StringReaderOptions suffix_options;
  suffix_options.buffer_bytes = layout.input_buffer_bytes;
  suffix_options.bill_random_as_sequential = true;  // BNL tile traffic
  suffix_options.random_window_bytes = 512;
  ERA_ASSIGN_OR_RETURN(auto suffix_reader,
                       OpenStringReader(options_.GetEnv(), text.path,
                                        suffix_options, &scan_io));
  StringReaderOptions edge_options;
  edge_options.buffer_bytes = layout.r_buffer_bytes;
  edge_options.bill_random_as_sequential = true;  // BNL tile traffic
  edge_options.random_window_bytes = 512;
  ERA_ASSIGN_OR_RETURN(auto edge_reader,
                       OpenStringReader(options_.GetEnv(), text.path,
                                        edge_options, &scan_io));

  std::vector<GroupOutput> outputs(plan.groups.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    ERA_RETURN_NOT_OK(WaveFrontProcessUnit(
        text, options_, plan.groups[g], g, scan_reader.get(),
        suffix_reader.get(), edge_reader.get(), &outputs[g]));
    stats.prepare_rounds += outputs[g].rounds;
    stats.peak_tree_bytes =
        std::max(stats.peak_tree_bytes, outputs[g].tree_bytes);
    stats.io.Add(outputs[g].write_io);
  }
  stats.io.Add(scan_io);
  stats.horizontal_seconds = horizontal_timer.Seconds();

  BuildResult result;
  ERA_ASSIGN_OR_RETURN(result.index,
                       AssembleIndex(text, options_, plan, outputs));
  stats.total_seconds = total_timer.Seconds();
  result.stats = stats;
  return result;
}

}  // namespace era
