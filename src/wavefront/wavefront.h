// WaveFront baseline (Ghoting & Makarychev, SIGMOD 2009 — reference [7]).
//
// Implemented as this paper describes it (Sections 3 and 6.1):
//   * vertical partitioning by variable-length S-prefixes, but WITHOUT
//     virtual-tree grouping — every sub-tree scans S on its own;
//   * the block-nested-loop memory split: the two buffers take ~50% of the
//     budget, so FM is roughly half of ERA's for the same memory
//     (PlanMemoryWaveFront);
//   * suffixes are inserted in string order (left to right), each insertion
//     traversing the partial sub-tree top-down and comparing edge labels
//     symbol by symbol — the CPU overhead and scattered memory access the
//     paper contrasts with ERA's lexicographic batch construction; larger
//     alphabets mean longer child chains, reproducing Figure 11(b)'s
//     sensitivity to |Σ|.
//
// Suffix-side symbols stream through one buffer; edge-label symbols through
// the other (the nested-loop tiling). Both are instrumented.

#ifndef ERA_WAVEFRONT_WAVEFRONT_H_
#define ERA_WAVEFRONT_WAVEFRONT_H_

#include <string>

#include "common/options.h"
#include "common/status.h"
#include "era/era_builder.h"
#include "era/memory_layout.h"
#include "era/vertical_partitioner.h"
#include "io/string_reader.h"
#include "suffixtree/tree_buffer.h"
#include "text/corpus.h"

namespace era {

/// Builds the sub-tree for one S-prefix by string-order insertion.
/// `suffix_reader` feeds new-suffix symbols, `edge_reader` feeds edge-label
/// symbols (WaveFront's two nested-loop buffers).
StatusOr<TreeBuffer> WaveFrontBuildSubTree(const std::string& prefix,
                                           const std::vector<uint64_t>& occ,
                                           uint64_t text_length,
                                           StringReader* suffix_reader,
                                           StringReader* edge_reader);

/// Processes one single-prefix work unit end to end (occurrence scan +
/// insertion + serialization). Shared by the serial and parallel drivers.
Status WaveFrontProcessUnit(const TextInfo& text, const BuildOptions& options,
                            const VirtualTree& unit, uint64_t unit_id,
                            StringReader* scan_reader,
                            StringReader* suffix_reader,
                            StringReader* edge_reader, GroupOutput* out);

/// The serial WaveFront builder.
class WaveFrontBuilder {
 public:
  explicit WaveFrontBuilder(const BuildOptions& options) : options_(options) {}

  StatusOr<BuildResult> Build(const TextInfo& text);

 private:
  BuildOptions options_;
};

}  // namespace era

#endif  // ERA_WAVEFRONT_WAVEFRONT_H_
