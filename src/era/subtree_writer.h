// Bounded background serialization of finished sub-trees (the write-overlap
// stage of the pipelined horizontal phase).
//
// Workers hand a built TreeBuffer off and immediately return to preparing or
// building the next prefix; a small ThreadPool drains the queue through
// WriteSubTree. Admission is bounded by queued bytes so a slow device cannot
// buffer an entire build in memory. Output determinism is unaffected: each
// file's bytes depend only on (prefix, tree), and the st_<group>_<k> naming
// plus slot-indexed GroupOutput recording fix the assembly order before any
// write races can occur.

#ifndef ERA_ERA_SUBTREE_WRITER_H_
#define ERA_ERA_SUBTREE_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/thread_pool.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "suffixtree/tree_buffer.h"

namespace era {

class BackgroundSubTreeWriter {
 public:
  /// `max_queued_bytes` bounds the in-memory backlog (tree bytes accepted
  /// but not yet written); Enqueue blocks while it is exceeded. A tree
  /// larger than the whole bound is still admitted once the queue is empty,
  /// so progress is always possible. `format` selects the on-disk sub-tree
  /// format every job is written in.
  BackgroundSubTreeWriter(Env* env, std::size_t num_threads,
                          uint64_t max_queued_bytes,
                          SubTreeFormat format = SubTreeFormat::kPacked);
  /// Drains outstanding writes (errors are reported via Drain; call it).
  ~BackgroundSubTreeWriter();

  BackgroundSubTreeWriter(const BackgroundSubTreeWriter&) = delete;
  BackgroundSubTreeWriter& operator=(const BackgroundSubTreeWriter&) = delete;

  /// Invoked once per job with the write outcome and, on success, the
  /// CRC-32C of the published file (checkpointing hook). Runs on a writer
  /// thread with no writer lock held; must be cheap and thread-safe.
  using WriteDone = std::function<void(const Status&, uint32_t file_crc)>;

  /// Queues `tree` for serialization to `path`. Blocks on backpressure.
  /// After the first write error every later Enqueue is dropped (its `done`
  /// fires with that error); Drain() returns the original error, which
  /// names the failing path.
  void Enqueue(std::string path, std::string prefix, TreeBuffer tree,
               WriteDone done = nullptr);

  /// True once a write has failed (or a submission was rejected). Lock-cheap
  /// fast path that producers poll between tasks to stop building doomed
  /// work early; Drain() has the authoritative Status.
  bool Failed() const;

  /// Waits for every queued write and returns the first error.
  Status Drain();

  /// Aggregate serialization traffic. Only stable after Drain().
  const IoStats& io() const { return io_; }
  /// High-water mark of the backlog, for tuning the bound.
  uint64_t peak_queued_bytes() const { return peak_queued_bytes_; }
  /// Summed wall time the writer threads spent inside WriteSubTree and the
  /// number of jobs written — the "subtree_write" phase of a build's profile.
  /// Only stable after Drain().
  double write_seconds() const { return write_seconds_; }
  uint64_t jobs_written() const { return jobs_written_; }

 private:
  Env* env_;
  uint64_t max_queued_bytes_;
  SubTreeFormat format_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t queued_bytes_ = 0;
  uint64_t peak_queued_bytes_ = 0;
  Status first_error_;
  std::atomic<bool> failed_{false};  // mirrors !first_error_.ok()

  IoStats io_;
  double write_seconds_ = 0;
  uint64_t jobs_written_ = 0;
  ThreadPool pool_;  // last: its workers use the members above
};

}  // namespace era

#endif  // ERA_ERA_SUBTREE_WRITER_H_
