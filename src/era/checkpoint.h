// Crash-consistent build checkpointing for the horizontal phase.
//
// ROADMAP item 3: a killed genome-scale build used to lose everything. The
// fix is a single `<work_dir>/CHECKPOINT` file that records, after every
// completed prefix group, the set of groups whose sub-tree files are fully
// and durably on disk — group id plus the CRC-32C of each published
// st_<g>_<k>.bin. The file is rewritten atomically (temp + Sync + rename),
// so at any kill point it describes only artifacts that actually survive,
// and a checkpoint that ended mid-group simply omits that group.
//
// Resume (`BuildOptions::resume`) re-runs the deterministic vertical
// partition, verifies the recorded groups against the plan fingerprint and
// the on-disk file checksums, skips the groups that check out, and rebuilds
// the rest. Because every sub-tree's bytes depend only on (prefix, tree)
// and slot naming is deterministic, the resumed index is byte-identical to
// an uninterrupted build at any worker count.

#ifndef ERA_ERA_CHECKPOINT_H_
#define ERA_ERA_CHECKPOINT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "era/vertical_partitioner.h"
#include "io/env.h"

namespace era {

/// Name of the checkpoint file inside a build's work_dir.
inline constexpr char kCheckpointFilename[] = "CHECKPOINT";

/// Canonical sub-tree filename `st_<group_id>_<k>.bin` — the deterministic
/// slot naming shared by the builders (emit) and resume (verify).
std::string SubTreeFileName(uint64_t group_id, std::size_t k);

/// Identifies the build a checkpoint belongs to. Vertical partitioning is
/// deterministic in (text, options), so these four numbers changing means
/// the checkpointed sub-trees describe a different plan and must not be
/// reused.
struct CheckpointFingerprint {
  uint64_t text_length = 0;
  uint64_t fm = 0;
  uint64_t num_groups = 0;
  uint64_t num_subtrees = 0;

  bool operator==(const CheckpointFingerprint& o) const {
    return text_length == o.text_length && fm == o.fm &&
           num_groups == o.num_groups && num_subtrees == o.num_subtrees;
  }
};

/// Parsed CHECKPOINT contents.
struct CheckpointState {
  CheckpointFingerprint fingerprint;
  struct Group {
    uint64_t group_id = 0;
    /// Slot-indexed CRC-32C of each st_<group_id>_<k>.bin as written.
    std::vector<uint32_t> subtree_crcs;
  };
  std::vector<Group> groups;
};

/// What a resume pass decided per group.
struct ResumePlan {
  /// group_done[g] — group g's sub-trees are all on disk and checksum-clean;
  /// the builder skips it and reconstructs its GroupOutput from the plan.
  std::vector<char> group_done;
  /// Valid where group_done: the recorded per-slot file CRCs.
  std::vector<std::vector<uint32_t>> group_crcs;
  uint64_t groups_skipped = 0;
  uint64_t subtrees_verified = 0;
};

/// Loads and parses `<work_dir>/CHECKPOINT`. IOError when unreadable,
/// Corruption when malformed or checksum-invalid.
StatusOr<CheckpointState> LoadCheckpoint(Env* env,
                                         const std::string& work_dir);

/// Decides what a resumed build may skip: loads the checkpoint, matches its
/// fingerprint against `fingerprint`, and re-reads every recorded sub-tree
/// file, accepting a group only when all of its files exist with matching
/// CRC-32C. Any problem — no checkpoint, wrong fingerprint, missing or
/// corrupt file — silently degrades that group (or everything) to a
/// rebuild; this function only errors on malformed arguments.
ResumePlan PlanResume(Env* env, const std::string& work_dir,
                      const CheckpointFingerprint& fingerprint,
                      const PartitionPlan& plan);

/// Maintains CHECKPOINT during a build. Thread-safe: workers and background
/// writer threads report each durably published sub-tree; when a group's
/// last sub-tree lands, the file is atomically rewritten with the group
/// added. Checkpoint I/O failures never fail the build — the checkpoint is
/// an optimization, and `status()` exposes the first failure for logging.
class CheckpointManager {
 public:
  /// `group_sizes[g]` is the number of sub-trees group g must publish.
  CheckpointManager(Env* env, std::string work_dir,
                    const CheckpointFingerprint& fingerprint,
                    std::vector<uint64_t> group_sizes);

  /// Seeds a group verified by PlanResume: it is recorded in every
  /// subsequent rewrite without waiting for notifications.
  void MarkGroupVerified(uint64_t group_id, std::vector<uint32_t> crcs);

  /// Reports one durably published sub-tree. Rewrites CHECKPOINT when this
  /// completes group `group_id`.
  void NoteSubTreeWritten(uint64_t group_id, std::size_t k,
                          uint32_t file_crc);

  /// First checkpoint-write failure, or OK.
  Status status() const;

 private:
  Status WriteLocked();

  Env* env_;
  std::string path_;
  CheckpointFingerprint fingerprint_;
  mutable std::mutex mu_;
  std::vector<uint64_t> pending_;               // sub-trees still owed
  std::vector<std::vector<uint32_t>> crcs_;     // slot-indexed, per group
  std::vector<char> done_;
  Status status_;
};

}  // namespace era

#endif  // ERA_ERA_CHECKPOINT_H_
