// Algorithm BuildSubTree (Section 4.2.2).
//
// Assembles a sub-tree from the prepared (L, B) arrays in one batch pass
// with a stack of the rightmost path — sequential memory access, no
// traversals, and no access to the input string: every edge label is an
// (offset, length) slice of S derived from L and the B offsets.

#ifndef ERA_ERA_BUILD_SUBTREE_H_
#define ERA_ERA_BUILD_SUBTREE_H_

#include "common/status.h"
#include "era/subtree_prepare.h"
#include "suffixtree/tree_buffer.h"

namespace era {

/// Builds the sub-tree for `prepared` over a text of `text_length` bytes
/// (terminal included). The resulting sub-tree root (node 0) carries the
/// full path labels from the global root, i.e. the first edge starts with
/// the partition prefix.
StatusOr<TreeBuffer> BuildSubTree(const PreparedSubTree& prepared,
                                  uint64_t text_length);

}  // namespace era

#endif  // ERA_ERA_BUILD_SUBTREE_H_
