// The pre-refactor SubTreePrepare implementation, kept verbatim.
//
// BaselineGroupPreparer is the code path GroupPreparer had before the
// allocation-free radix/arena rewrite: per-area std::vector allocations every
// round, a comparison std::sort with a memcmp fallback, one StringReader
// Fetch per unresolved leaf, and a std::priority_queue cursor merge. It is
// checked in for two consumers:
//   * bench/micro_kernels.cc pins the rewrite's speedup as
//     BM_SubTreePrepare vs BM_SubTreePrepareBaseline, and
//   * tests/prepare_kernel_test.cc uses it as the reference preparer the
//     rewritten kernel must match byte-for-byte.
// It shares every public struct (PreparedSubTree, PrepareStats, ...) with
// era/subtree_prepare.h and must produce identical output.

#ifndef ERA_ERA_SUBTREE_PREPARE_BASELINE_H_
#define ERA_ERA_SUBTREE_PREPARE_BASELINE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "era/vertical_partitioner.h"
#include "io/string_reader.h"

namespace era {

/// Pre-refactor SubTreePrepare (see file comment). Interface mirrors
/// GroupPreparer minus the observer hook.
class BaselineGroupPreparer {
 public:
  BaselineGroupPreparer(const VirtualTree& group, const RangePolicy& policy,
                        StringReader* reader, uint64_t text_length);

  Status Run();

  std::vector<PreparedSubTree>& results() { return results_; }
  const PrepareStats& stats() const { return stats_; }

 private:
  static constexpr int64_t kDoneSlot = -1;

  struct State {
    std::string prefix;
    uint64_t expected_frequency = 0;
    std::vector<uint64_t> L;
    std::vector<uint64_t> P;
    std::vector<int64_t> I;
    std::vector<BranchInfo> B;
    std::vector<std::pair<uint32_t, uint32_t>> areas;
    uint64_t start = 0;

    std::vector<uint32_t> slot_to_compact;
    std::vector<char> was_active;
    std::vector<char> windows;
    std::vector<uint32_t> window_len;
    uint64_t active_count = 0;
  };

  Status ScanOccurrences();
  Status RunRound(uint32_t range);

  const VirtualTree& group_;
  RangePolicy policy_;
  StringReader* reader_;
  uint64_t text_length_;
  std::vector<State> states_;
  std::vector<PreparedSubTree> results_;
  PrepareStats stats_;
};

}  // namespace era

#endif  // ERA_ERA_SUBTREE_PREPARE_BASELINE_H_
