#include "era/checkpoint.h"

#include <cstdlib>
#include <sstream>

#include "common/crc32.h"
#include "common/logging.h"

namespace era {

namespace {

constexpr char kFormatLine[] = "era-checkpoint-v1";

std::string Render(const CheckpointFingerprint& fp,
                   const std::vector<CheckpointState::Group>& groups) {
  std::ostringstream os;
  os << kFormatLine << "\n";
  os << "text_length: " << fp.text_length << "\n";
  os << "fm: " << fp.fm << "\n";
  os << "groups: " << fp.num_groups << "\n";
  os << "subtrees: " << fp.num_subtrees << "\n";
  for (const auto& group : groups) {
    os << "group: " << group.group_id;
    for (uint32_t crc : group.subtree_crcs) os << " " << crc;
    os << "\n";
  }
  std::string body = os.str();
  std::ostringstream file;
  file << body << "crc: " << Crc32c(body.data(), body.size()) << "\n";
  return file.str();
}

bool ParseU64(const std::string& s, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0';
}

}  // namespace

std::string SubTreeFileName(uint64_t group_id, std::size_t k) {
  return "st_" + std::to_string(group_id) + "_" + std::to_string(k) + ".bin";
}

StatusOr<CheckpointState> LoadCheckpoint(Env* env,
                                         const std::string& work_dir) {
  const std::string path = work_dir + "/" + kCheckpointFilename;
  std::string raw;
  if (Status s = env->ReadFileToString(path, &raw); !s.ok()) {
    return s.WithContext("loading checkpoint " + path);
  }

  // The trailing "crc: N" line checksums everything before it.
  std::size_t crc_pos = raw.rfind("\ncrc: ");
  if (crc_pos == std::string::npos) {
    return Status::Corruption("checkpoint missing checksum line: " + path);
  }
  std::string body = raw.substr(0, crc_pos + 1);
  uint64_t declared = 0;
  std::string crc_value =
      raw.substr(crc_pos + 6, raw.size() - crc_pos - 6);
  while (!crc_value.empty() && crc_value.back() == '\n') crc_value.pop_back();
  if (!ParseU64(crc_value, &declared) ||
      Crc32c(body.data(), body.size()) != static_cast<uint32_t>(declared)) {
    return Status::Corruption("checkpoint checksum mismatch: " + path);
  }

  CheckpointState state;
  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line) || line != kFormatLine) {
    return Status::Corruption("not a checkpoint file: " + path);
  }
  while (std::getline(is, line)) {
    std::size_t colon = line.find(": ");
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 2);
    bool ok = true;
    if (key == "text_length") {
      ok = ParseU64(value, &state.fingerprint.text_length);
    } else if (key == "fm") {
      ok = ParseU64(value, &state.fingerprint.fm);
    } else if (key == "groups") {
      ok = ParseU64(value, &state.fingerprint.num_groups);
    } else if (key == "subtrees") {
      ok = ParseU64(value, &state.fingerprint.num_subtrees);
    } else if (key == "group") {
      CheckpointState::Group group;
      std::istringstream fields(value);
      std::string field;
      bool first = true;
      while (fields >> field) {
        uint64_t n = 0;
        if (!ParseU64(field, &n)) {
          ok = false;
          break;
        }
        if (first) {
          group.group_id = n;
          first = false;
        } else {
          group.subtree_crcs.push_back(static_cast<uint32_t>(n));
        }
      }
      if (first) ok = false;
      if (ok) state.groups.push_back(std::move(group));
    }
    if (!ok) {
      return Status::Corruption("bad checkpoint line \"" + line + "\" in " +
                                path);
    }
  }
  return state;
}

ResumePlan PlanResume(Env* env, const std::string& work_dir,
                      const CheckpointFingerprint& fingerprint,
                      const PartitionPlan& plan) {
  ResumePlan out;
  out.group_done.assign(plan.groups.size(), 0);
  out.group_crcs.resize(plan.groups.size());

  auto state = LoadCheckpoint(env, work_dir);
  if (!state.ok()) {
    ERA_LOG(Info) << "resume: no usable checkpoint ("
                  << state.status().ToString() << "); rebuilding everything";
    return out;
  }
  if (!(state->fingerprint == fingerprint)) {
    ERA_LOG(Warn) << "resume: checkpoint fingerprint does not match this "
                     "build; rebuilding everything";
    return out;
  }

  for (const auto& group : state->groups) {
    if (group.group_id >= plan.groups.size()) continue;
    const std::size_t expected =
        plan.groups[group.group_id].prefixes.size();
    if (group.subtree_crcs.size() != expected) continue;
    // Re-read every recorded file: resume trusts checksums, not existence.
    bool all_ok = true;
    for (std::size_t k = 0; k < expected && all_ok; ++k) {
      const std::string path =
          work_dir + "/" + SubTreeFileName(group.group_id, k);
      std::string bytes;
      if (!env->ReadFileToString(path, &bytes).ok() ||
          Crc32c(bytes.data(), bytes.size()) != group.subtree_crcs[k]) {
        all_ok = false;
      }
    }
    if (!all_ok) {
      ERA_LOG(Warn) << "resume: group " << group.group_id
                    << " failed verification; rebuilding it";
      continue;
    }
    out.group_done[group.group_id] = 1;
    out.group_crcs[group.group_id] = group.subtree_crcs;
    ++out.groups_skipped;
    out.subtrees_verified += expected;
  }
  return out;
}

CheckpointManager::CheckpointManager(Env* env, std::string work_dir,
                                     const CheckpointFingerprint& fingerprint,
                                     std::vector<uint64_t> group_sizes)
    : env_(env),
      path_(std::move(work_dir) + "/" + kCheckpointFilename),
      fingerprint_(fingerprint),
      pending_(std::move(group_sizes)),
      crcs_(pending_.size()),
      done_(pending_.size(), 0) {
  for (std::size_t g = 0; g < pending_.size(); ++g) {
    crcs_[g].assign(pending_[g], 0);
  }
}

void CheckpointManager::MarkGroupVerified(uint64_t group_id,
                                          std::vector<uint32_t> crcs) {
  std::lock_guard<std::mutex> lock(mu_);
  if (group_id >= done_.size()) return;
  crcs_[group_id] = std::move(crcs);
  pending_[group_id] = 0;
  done_[group_id] = 1;
}

void CheckpointManager::NoteSubTreeWritten(uint64_t group_id, std::size_t k,
                                           uint32_t file_crc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (group_id >= done_.size() || done_[group_id] ||
      k >= crcs_[group_id].size() || pending_[group_id] == 0) {
    return;
  }
  crcs_[group_id][k] = file_crc;
  if (--pending_[group_id] == 0) {
    done_[group_id] = 1;
    Status s = WriteLocked();
    if (!s.ok() && status_.ok()) {
      status_ = s;
      ERA_LOG(Warn) << "checkpoint write failed (build continues): "
                    << s.ToString();
    }
  }
}

Status CheckpointManager::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

Status CheckpointManager::WriteLocked() {
  std::vector<CheckpointState::Group> groups;
  for (std::size_t g = 0; g < done_.size(); ++g) {
    if (done_[g]) groups.push_back({g, crcs_[g]});
  }
  return AtomicallyWriteFile(env_, path_, Render(fingerprint_, groups));
}

}  // namespace era
