// Vertical partitioning (Section 4.1, Algorithm VerticalPartitioning).
//
// Splits the suffix tree of S into sub-trees T_p via variable-length
// S-prefixes whose frequencies fit FM, then groups sub-trees into virtual
// trees whose total frequency still fits FM so one scan of S feeds the whole
// group.
//
// $-handling: when a prefix p is split (f_p > FM), the occurrence of p that
// is immediately followed by the terminal — i.e. the suffix p$ — belongs to
// none of the extensions p·s, so it is emitted as a direct trie leaf. The
// terminal-only suffix $ (position n) is likewise always a trie leaf; these
// are the paper's singleton sub-trees such as T$ in Figure 2.

#ifndef ERA_ERA_VERTICAL_PARTITIONER_H_
#define ERA_ERA_VERTICAL_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/status.h"
#include "io/io_stats.h"
#include "io/tile_cache.h"
#include "text/corpus.h"

namespace era {

/// One S-prefix selected by partitioning.
struct PrefixInfo {
  std::string prefix;
  uint64_t frequency = 0;
  /// Coarse occupancy of the prefix's occurrences over the text: bit b set
  /// iff the prefix occurs in the b-th of 64 equal text slices. Computed for
  /// free during the final counting scan; drives the tile-affinity group
  /// order (parallel_builder.h), which schedules groups with overlapping
  /// footprints adjacently so their prepare rounds share tile-cache
  /// residency.
  uint64_t footprint_mask = 0;
};

/// A group of sub-trees processed as one unit (shared scans of S).
struct VirtualTree {
  std::vector<PrefixInfo> prefixes;
  uint64_t total_frequency = 0;
  /// Union of the member prefixes' footprint masks.
  uint64_t footprint_mask = 0;
};

/// Output of vertical partitioning.
struct PartitionPlan {
  std::vector<VirtualTree> groups;
  /// Direct trie leaves: (prefix, position) for suffixes prefix+terminal
  /// that fell out of splits, plus ("", n) for the terminal-only suffix.
  std::vector<std::pair<std::string, uint64_t>> terminal_leaves;
  /// Scan iterations executed (working-set rounds).
  uint32_t rounds = 0;
  /// Wall-clock seconds spent partitioning.
  double seconds = 0;
  /// I/O performed by the partitioning scans.
  IoStats io;

  /// Total number of sub-trees across groups.
  uint64_t NumSubTrees() const {
    uint64_t n = 0;
    for (const auto& g : groups) n += g.prefixes.size();
    return n;
  }
};

/// Runs Algorithm VerticalPartitioning followed by the grouping heuristic.
/// If `options.group_virtual_trees` is false every sub-tree gets its own
/// group (the "without grouping" baseline of Figure 9(a)). When a
/// `tile_cache` is given the counting scans read through it, warming it for
/// the horizontal phase.
StatusOr<PartitionPlan> VerticalPartition(
    const TextInfo& text, const BuildOptions& options, uint64_t fm,
    const std::shared_ptr<TileCache>& tile_cache = nullptr);

/// The grouping heuristic alone (exposed for tests): first-fit into groups
/// from a frequency-descending list.
std::vector<VirtualTree> GroupPrefixes(std::vector<PrefixInfo> prefixes,
                                       uint64_t fm, bool enable_grouping);

}  // namespace era

#endif  // ERA_ERA_VERTICAL_PARTITIONER_H_
