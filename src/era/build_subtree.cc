#include "era/build_subtree.h"

#include <limits>
#include <string>
#include <vector>

namespace era {

namespace {

/// TreeNode stores edge lengths in 32 bits. An input whose suffix edges pass
/// 4 GiB cannot be represented in the current node format, so fail loudly
/// instead of silently truncating into a wrong tree.
Status CheckedEdgeLen(uint64_t len, uint32_t* out) {
  if (len > std::numeric_limits<uint32_t>::max()) {
    return Status::Internal(
        "edge length " + std::to_string(len) +
        " overflows the 32-bit tree-node field; the input is beyond the "
        "node format's 4 GiB edge limit");
  }
  *out = static_cast<uint32_t>(len);
  return Status::OK();
}

}  // namespace

StatusOr<TreeBuffer> BuildSubTree(const PreparedSubTree& prepared,
                                  uint64_t text_length) {
  const std::vector<uint64_t>& leaves = prepared.leaves;
  const std::vector<BranchInfo>& branches = prepared.branches;
  if (leaves.empty()) {
    return Status::InvalidArgument("prepared sub-tree has no leaves");
  }

  TreeBuffer tree;
  tree.Reserve(2 * leaves.size());

  // Stack of the rightmost path: (node, string depth at node).
  struct Entry {
    uint32_t node;
    uint64_t depth;
  };
  std::vector<Entry> stack;
  stack.push_back({0, 0});

  // First (lexicographically smallest) leaf hangs off the root with its
  // whole suffix as the label (Figure 5(a)).
  {
    uint32_t leaf = tree.AddNode();
    TreeNode& node = tree.node(leaf);
    node.edge_start = leaves[0];
    ERA_RETURN_NOT_OK(
        CheckedEdgeLen(text_length - leaves[0], &node.edge_len));
    node.leaf_id = leaves[0];
    tree.node(0).first_child = leaf;
    stack.push_back({leaf, text_length - leaves[0]});
  }

  for (std::size_t i = 1; i < leaves.size(); ++i) {
    if (!branches[i].defined) {
      return Status::Internal("undefined B entry at " + std::to_string(i));
    }
    const uint64_t d = branches[i].offset;

    // Pop the rightmost path down to depth d; `last` is the node whose
    // incoming edge crosses depth d (always exists: d is strictly smaller
    // than the previous leaf's depth because the terminal is unique).
    uint32_t last = kNilNode;
    while (stack.back().depth > d) {
      last = stack.back().node;
      stack.pop_back();
    }
    if (last == kNilNode) {
      return Status::Internal("non-decreasing branch offset at " +
                              std::to_string(i));
    }

    uint32_t attach;
    if (stack.back().depth == d) {
      // Branch point is an existing node.
      attach = stack.back().node;
    } else {
      // Break the edge to `last` at depth d (lines 15-21 of the paper).
      const uint64_t parent_depth = stack.back().depth;
      uint32_t mid = tree.AddNode();
      TreeNode& last_node = tree.node(last);
      TreeNode& mid_node = tree.node(mid);
      mid_node.edge_start = last_node.edge_start;
      ERA_RETURN_NOT_OK(CheckedEdgeLen(d - parent_depth, &mid_node.edge_len));
      last_node.edge_start += mid_node.edge_len;
      last_node.edge_len -= mid_node.edge_len;
      mid_node.first_child = last;
      mid_node.next_sibling = last_node.next_sibling;
      last_node.next_sibling = kNilNode;

      // Replace `last` with `mid` in its parent's child chain. `last` is on
      // the rightmost path, so the walk is bounded by the branching factor.
      uint32_t parent = stack.back().node;
      if (tree.node(parent).first_child == last) {
        tree.node(parent).first_child = mid;
      } else {
        uint32_t c = tree.node(parent).first_child;
        while (tree.node(c).next_sibling != last) {
          c = tree.node(c).next_sibling;
          if (c == kNilNode) {
            return Status::Internal("rightmost child not found during split");
          }
        }
        tree.node(c).next_sibling = mid;
      }
      stack.push_back({mid, d});
      attach = mid;
      last = tree.node(mid).first_child;  // == old `last`, now mid's child
    }

    // Append the new leaf as the last (lexicographically largest so far)
    // child of the attach node.
    uint32_t leaf = tree.AddNode();
    TreeNode& leaf_node = tree.node(leaf);
    leaf_node.edge_start = leaves[i] + d;
    ERA_RETURN_NOT_OK(
        CheckedEdgeLen(text_length - leaves[i] - d, &leaf_node.edge_len));
    leaf_node.leaf_id = leaves[i];
    tree.node(last).next_sibling = leaf;
    (void)attach;
    stack.push_back({leaf, text_length - leaves[i]});
  }
  return tree;
}

}  // namespace era
