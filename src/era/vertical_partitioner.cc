#include "era/vertical_partitioner.h"

#include <algorithm>

#include "common/timer.h"
#include "io/string_reader.h"
#include "text/aho_corasick.h"

namespace era {

std::vector<VirtualTree> GroupPrefixes(std::vector<PrefixInfo> prefixes,
                                       uint64_t fm, bool enable_grouping) {
  std::vector<VirtualTree> groups;
  if (!enable_grouping) {
    for (auto& p : prefixes) {
      VirtualTree g;
      g.total_frequency = p.frequency;
      g.footprint_mask = p.footprint_mask;
      g.prefixes.push_back(std::move(p));
      groups.push_back(std::move(g));
    }
    return groups;
  }

  // Sort in descending frequency order; ties broken lexicographically so the
  // plan is deterministic.
  std::sort(prefixes.begin(), prefixes.end(),
            [](const PrefixInfo& a, const PrefixInfo& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.prefix < b.prefix;
            });

  // First-fit from the head: take the most frequent remaining prefix, then
  // sweep the list adding every prefix that still fits (Algorithm
  // VerticalPartitioning, lines 13-22).
  std::vector<bool> used(prefixes.size(), false);
  for (std::size_t head = 0; head < prefixes.size(); ++head) {
    if (used[head]) continue;
    VirtualTree group;
    group.prefixes.push_back(prefixes[head]);
    group.total_frequency = prefixes[head].frequency;
    group.footprint_mask = prefixes[head].footprint_mask;
    used[head] = true;
    for (std::size_t i = head + 1; i < prefixes.size(); ++i) {
      if (used[i]) continue;
      if (group.total_frequency + prefixes[i].frequency <= fm) {
        group.prefixes.push_back(prefixes[i]);
        group.total_frequency += prefixes[i].frequency;
        group.footprint_mask |= prefixes[i].footprint_mask;
        used[i] = true;
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

StatusOr<PartitionPlan> VerticalPartition(
    const TextInfo& text, const BuildOptions& options, uint64_t fm,
    const std::shared_ptr<TileCache>& tile_cache) {
  WallTimer timer;
  PartitionPlan plan;
  const Alphabet& alphabet = text.alphabet;
  const uint64_t n = text.length - 1;  // body length; terminal at index n

  StringReaderOptions reader_options;
  reader_options.buffer_bytes = options.input_buffer_bytes;
  reader_options.seek_optimization = false;  // counting reads everything
  // This reader (and its prefetch ring) is transient: partitioning runs
  // before the horizontal phase commits the tree/processing areas, so the
  // ring lives in memory the plan has not yet spent.
  reader_options.prefetch = options.prefetch_reads;
  reader_options.prefetch_depth = options.prefetch_depth;
  reader_options.tile_cache = tile_cache;
  ERA_ASSIGN_OR_RETURN(auto reader,
                       OpenStringReader(options.GetEnv(), text.path,
                                        reader_options, &plan.io));

  // Bucket shift for the 64-slice footprint masks (see PrefixInfo): the
  // smallest power-of-two slice width that maps every position into
  // buckets 0..63.
  uint32_t footprint_shift = 0;
  while (((text.length - 1) >> footprint_shift) >= 64) ++footprint_shift;
  if (reader->size() != text.length) {
    return Status::InvalidArgument("text length does not match file size");
  }

  // The terminal-only suffix is always a direct trie leaf.
  plan.terminal_leaves.emplace_back("", n);

  // Working set P': prefixes of the current length still being refined.
  std::vector<std::string> working;
  for (int i = 0; i < alphabet.size(); ++i) {
    working.push_back(std::string(1, alphabet.Symbol(i)));
  }
  std::vector<PrefixInfo> accepted;

  while (!working.empty()) {
    ++plan.rounds;
    if (working[0].size() > n + 1) {
      return Status::OutOfBudget(
          "vertical partitioning exceeded text length; FM too small for a "
          "highly repetitive input");
    }
    ERA_ASSIGN_OR_RETURN(auto matcher, AhoCorasick::Build(working));
    std::vector<uint64_t> freq(working.size(), 0);
    std::vector<uint64_t> masks(working.size(), 0);
    ERA_RETURN_NOT_OK(matcher.ScanAll(
        reader.get(), [&](int32_t id, uint64_t pos) {
          ++freq[static_cast<std::size_t>(id)];
          masks[static_cast<std::size_t>(id)] |=
              uint64_t{1} << (pos >> footprint_shift);
        }));

    std::vector<std::string> next_working;
    for (std::size_t i = 0; i < working.size(); ++i) {
      const std::string& p = working[i];
      if (freq[i] == 0) continue;  // substring absent from S
      if (freq[i] <= fm) {
        accepted.push_back({p, freq[i], masks[i]});
        continue;
      }
      // Split: extend by every symbol; the occurrence followed by the
      // terminal (if any) becomes a direct trie leaf.
      for (int s = 0; s < alphabet.size(); ++s) {
        next_working.push_back(p + alphabet.Symbol(s));
      }
      if (p.size() > n) {
        // Defensive: n - p.size() below would wrap around. Under current
        // invariants this cannot fire — a prefix longer than the body has
        // freq 0 (patterns never contain the terminal) and was skipped
        // above — but the guard keeps the arithmetic safe if the scan or
        // terminal conventions ever change.
        continue;
      }
      uint64_t tail_pos = n - p.size();
      // p matches at tail_pos iff S ends with p right before the terminal.
      // The match set was counted above; re-checking via the text tail costs
      // one comparison against the in-buffer end of file.
      // (Read the tail directly — it is at most |p| bytes.)
      std::string tail(p.size(), '\0');
      uint32_t got = 0;
      ERA_RETURN_NOT_OK(reader->RandomFetch(
          tail_pos, static_cast<uint32_t>(p.size()),
          tail.data(), &got));
      if (got == p.size() && tail == p) {
        plan.terminal_leaves.emplace_back(p, tail_pos);
      }
    }
    working = std::move(next_working);
  }

  plan.groups =
      GroupPrefixes(std::move(accepted), fm, options.group_virtual_trees);
  // The reader bills into plan.io at destruction (a prefetching reader's
  // residual speculative window); destroy it before plan leaves the scope
  // so the accounting never depends on copy elision.
  reader.reset();
  plan.seconds = timer.Seconds();
  return plan;
}

}  // namespace era
