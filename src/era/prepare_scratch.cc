#include "era/prepare_scratch.h"

namespace era {

void PrepareScratch::BeginRound(uint64_t total_active, uint32_t range,
                                uint64_t max_area) {
  Size(&windows, total_active * range);
  Size(&window_len, total_active);
  Size(&requests, total_active);
  Size(&request_compact, total_active);
  Size(&sort_records, max_area);
  Size(&perm_l, max_area);
  Size(&perm_p, max_area);
  Size(&perm_compact, max_area);
  // Every area holds >= 2 slots, so one state can close at most
  // total_active / 2 + 1 new areas; reserving that bound keeps the run
  // scanner's push_backs allocation-free.
  if (area_tmp.capacity() < total_active / 2 + 1) {
    ++allocations_;
    area_tmp.reserve(total_active / 2 + 1);
  }
  area_tmp.clear();
}

}  // namespace era
