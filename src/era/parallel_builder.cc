#include "era/parallel_builder.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <numeric>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "era/build_subtree.h"
#include "era/checkpoint.h"
#include "era/memory_layout.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "era/subtree_writer.h"
#include "era/work_queue.h"
#include "wavefront/wavefront.h"

namespace era {

std::vector<std::size_t> LptGroupOrder(
    const std::vector<VirtualTree>& groups) {
  std::vector<std::size_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (groups[a].total_frequency != groups[b].total_frequency) {
      return groups[a].total_frequency > groups[b].total_frequency;
    }
    return a < b;
  });
  return order;
}

std::vector<std::size_t> TileAffinityOrder(
    const std::vector<VirtualTree>& groups) {
  std::vector<std::size_t> lpt = LptGroupOrder(groups);
  if (lpt.size() <= 2) return lpt;
  // Greedy footprint chaining over the LPT list: O(G^2) popcounts, trivial
  // at realistic group counts. Iterating candidates in LPT order makes the
  // tie-break (equal overlap -> better LPT rank) implicit, so all-equal
  // masks reproduce LptGroupOrder exactly.
  std::vector<char> used(groups.size(), 0);
  std::vector<std::size_t> order;
  order.reserve(lpt.size());
  std::size_t current = lpt[0];
  used[current] = 1;
  order.push_back(current);
  for (std::size_t step = 1; step < lpt.size(); ++step) {
    std::size_t best = lpt.size();
    int best_overlap = -1;
    for (std::size_t candidate : lpt) {
      if (used[candidate]) continue;
      const int overlap = std::popcount(groups[current].footprint_mask &
                                        groups[candidate].footprint_mask);
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best = candidate;
      }
    }
    current = best;
    used[current] = 1;
    order.push_back(current);
  }
  return order;
}

namespace {

/// Hand-off area between a group's prepare stage and the (stealable) build
/// tasks it spawns. `prepared` is slot-indexed; a slot is written by the
/// preparing worker strictly before the matching task is pushed (the queue
/// mutex publishes it), and moved out by whichever worker pops that task.
struct GroupWork {
  std::vector<PreparedSubTree> prepared;
  std::atomic<uint64_t> tree_bytes{0};
};

}  // namespace

StatusOr<ParallelBuildResult> ParallelBuilder::Build(const TextInfo& text) {
  WallTimer total_timer;
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options_));
  if (num_workers_ == 0) {
    return Status::InvalidArgument("parallel build needs at least one worker");
  }
  if (options_.memory_budget < num_workers_) {
    // Dividing the budget below would silently plan a zero-byte layout.
    return Status::InvalidArgument(
        "memory budget (" + std::to_string(options_.memory_budget) +
        " bytes) is smaller than the worker count (" +
        std::to_string(num_workers_) + "); the per-core share would be zero");
  }
  Env* env = options_.GetEnv();
  ERA_RETURN_NOT_OK(env->CreateDir(options_.work_dir));

  BuildStats stats;
  stats.text_bytes = text.length;

  // Memory is divided equally among cores; plan with the per-core share.
  BuildOptions worker_options = options_;
  worker_options.memory_budget = options_.memory_budget / num_workers_;
  if (options_.tile_cache_budget_bytes > 0) {
    // An explicit cache budget is the process-wide total, like
    // memory_budget; PlanMemory carves the per-core share.
    worker_options.tile_cache_budget_bytes = std::max<uint64_t>(
        1, options_.tile_cache_budget_bytes / num_workers_);
  }
  const bool wavefront = algorithm_ == ParallelAlgorithm::kWaveFront;
  if (wavefront) worker_options.group_virtual_trees = false;

  ERA_ASSIGN_OR_RETURN(
      MemoryLayout layout,
      wavefront ? PlanMemoryWaveFront(worker_options, text.alphabet.size())
                : PlanMemoryForBuild(worker_options, text, num_workers_));
  stats.fm = layout.fm;

  // One process-wide tile cache serves every worker (and every worker's
  // prefetch thread): a tile one group's scan loads is a hit for every
  // group scheduled near it. The WaveFront emulation keeps its modeled
  // device pattern uncached (PlanMemoryWaveFront never carves).
  ERA_ASSIGN_OR_RETURN(std::shared_ptr<TileCache> tile_cache,
                       OpenBuildTileCache(env, text, layout, num_workers_));

  // Vertical partitioning is not parallelized (its cost is low; Section 5).
  PhaseProfiler profiler;
  ERA_ASSIGN_OR_RETURN(
      PartitionPlan plan,
      VerticalPartition(text, worker_options, layout.fm, tile_cache));
  stats.vertical_seconds = plan.seconds;
  profiler.Record("vertical_partition", 0, plan.seconds);
  stats.io.Add(plan.io);
  stats.num_groups = plan.groups.size();
  stats.num_subtrees = plan.NumSubTrees();

  // ---- Horizontal phase: subtree-granular pipeline. ----
  WallTimer horizontal_timer;
  const std::size_t num_groups = plan.groups.size();

  const CheckpointFingerprint fingerprint{text.length, layout.fm,
                                          plan.groups.size(),
                                          plan.NumSubTrees()};
  ResumePlan resume;
  resume.group_done.assign(num_groups, 0);
  if (options_.resume) {
    resume = PlanResume(env, options_.work_dir, fingerprint, plan);
    stats.groups_resumed = resume.groups_skipped;
    stats.subtrees_verified = resume.subtrees_verified;
  }
  std::unique_ptr<CheckpointManager> checkpoint;
  if (options_.checkpoint) {
    std::vector<uint64_t> group_sizes(num_groups);
    for (std::size_t g = 0; g < num_groups; ++g) {
      group_sizes[g] = plan.groups[g].prefixes.size();
    }
    checkpoint = std::make_unique<CheckpointManager>(
        env, options_.work_dir, fingerprint, std::move(group_sizes));
    for (std::size_t g = 0; g < num_groups; ++g) {
      if (resume.group_done[g]) {
        checkpoint->MarkGroupVerified(g, resume.group_crcs[g]);
      }
    }
  }

  std::vector<GroupOutput> outputs(num_groups);
  std::vector<GroupWork> works(num_groups);
  std::vector<IoStats> worker_io(num_workers_);
  std::vector<double> worker_seconds(num_workers_, 0);
  std::vector<double> worker_busy_seconds(num_workers_, 0);
  std::vector<Status> worker_status(num_workers_);

  // Stage 3: finished trees leave the workers' critical path through a
  // bounded background writer. The backlog bound reuses the tree area of
  // one per-core share — memory the serial design would have spent holding
  // a group's trees until its last prefix anyway.
  BackgroundSubTreeWriter writer(
      env, /*num_threads=*/2,
      /*max_queued_bytes=*/
      std::max<uint64_t>(layout.tree_area_bytes, 4ull << 20),
      options_.format);

  // Stage 1: injection queue in tile-affinity-refined LPT order (groups
  // with overlapping text footprints run adjacently and convert each
  // other's tile-cache misses into hits) + per-worker deques.
  WorkStealingQueue queue(num_workers_);
  {
    std::vector<PipelineTask> seeds;
    seeds.reserve(num_groups);
    for (std::size_t g : TileAffinityOrder(plan.groups)) {
      if (resume.group_done[g]) {
        // Verified on disk by the resume pass: reconstruct the output from
        // the plan and never schedule the group.
        ReconstructGroupOutput(plan.groups[g], g, &outputs[g]);
        continue;
      }
      seeds.push_back({PipelineTask::Kind::kGroup,
                       static_cast<uint32_t>(g), 0});
    }
    queue.SeedGlobal(std::move(seeds));
  }

  const RangePolicy policy =
      RangePolicy::FromOptions(worker_options, layout.r_buffer_bytes);
  const bool prepare_build =
      !wavefront && worker_options.horizontal == HorizontalMethod::kPrepareBuild;

  std::vector<std::thread> workers;
  for (unsigned w = 0; w < num_workers_; ++w) {
    workers.emplace_back([&, w] {
      WallTimer worker_timer;
      double busy = 0;
      auto run = [&]() -> Status {
        // Stage 2: the scan reader double-buffers through a background
        // prefetch thread so device latency hides behind the radix kernel.
        StringReaderOptions reader_options;
        reader_options.buffer_bytes = layout.input_buffer_bytes;
        reader_options.seek_optimization = worker_options.seek_optimization;
        reader_options.prefetch = layout.read_ahead_bytes > 0 && !wavefront;
        reader_options.prefetch_depth = static_cast<uint32_t>(
            layout.read_ahead_bytes / layout.input_buffer_bytes);
        if (!wavefront) reader_options.tile_cache = tile_cache;
        ERA_ASSIGN_OR_RETURN(auto reader,
                             OpenStringReader(env, text.path, reader_options,
                                              &worker_io[w]));
        std::unique_ptr<StringReader> suffix_reader;
        std::unique_ptr<StringReader> edge_reader;
        if (wavefront) {
          StringReaderOptions wf_options;
          wf_options.buffer_bytes = layout.input_buffer_bytes;
          wf_options.bill_random_as_sequential = true;
          wf_options.random_window_bytes = 512;
          ERA_ASSIGN_OR_RETURN(suffix_reader,
                               OpenStringReader(env, text.path, wf_options,
                                                &worker_io[w]));
          StringReaderOptions edge_options;
          edge_options.buffer_bytes = layout.r_buffer_bytes;
          edge_options.bill_random_as_sequential = true;
          edge_options.random_window_bytes = 512;
          ERA_ASSIGN_OR_RETURN(edge_reader,
                               OpenStringReader(env, text.path, edge_options,
                                                &worker_io[w]));
        }

        auto run_task = [&](const PipelineTask& task) -> Status {
          const uint32_t g = task.group;
          if (task.kind == PipelineTask::Kind::kBuildPrefix) {
            GroupWork& gw = works[g];
            ERA_ASSIGN_OR_RETURN(
                uint64_t bytes,
                BuildAndEmitPrefix(worker_options, text.length, g, task.prefix,
                                   std::move(gw.prepared[task.prefix]),
                                   &outputs[g], &writer, checkpoint.get(),
                                   &profiler, w));
            gw.tree_bytes.fetch_add(bytes, std::memory_order_relaxed);
            return Status::OK();
          }
          if (wavefront) {
            WallTimer unit_timer;
            Status s = WaveFrontProcessUnit(text, worker_options,
                                            plan.groups[g], g, reader.get(),
                                            suffix_reader.get(),
                                            edge_reader.get(), &outputs[g]);
            profiler.Record("wavefront", w, unit_timer.Seconds());
            return s;
          }
          if (!prepare_build) {
            // BranchEdge fuses prepare+build per group; only its writes
            // overlap (the background writer).
            return ProcessGroup(text, worker_options, layout, plan.groups[g],
                                g, reader.get(), &outputs[g], &writer,
                                checkpoint.get(), &profiler, w);
          }
          // Prepare stage: stream each resolved prefix out as a stealable
          // build task, then keep draining our own deque LIFO.
          const VirtualTree& group = plan.groups[g];
          GroupWork& gw = works[g];
          gw.prepared.resize(group.prefixes.size());
          outputs[g].subtrees.resize(group.prefixes.size());
          GroupPreparer preparer(group, policy, reader.get(), text.length);
          preparer.SetEmitCallback(
              [&](std::size_t k, PreparedSubTree&& prepared) -> Status {
                gw.prepared[k] = std::move(prepared);
                queue.Push(w, {PipelineTask::Kind::kBuildPrefix, g,
                               static_cast<uint32_t>(k)});
                return Status::OK();
              });
          WallTimer prepare_timer;
          ERA_RETURN_NOT_OK(preparer.Run());
          profiler.Record("prepare", w, prepare_timer.Seconds());
          outputs[g].rounds = preparer.stats().rounds;
          return Status::OK();
        };

        PipelineTask task;
        while (queue.Pop(w, &task)) {
          if (writer.Failed()) {
            // A background write already failed permanently; building more
            // trees only queues more doomed work. Drain() reports the error.
            queue.TaskDone();
            queue.Abort();
            break;
          }
          WallTimer task_timer;
          Status s = run_task(task);
          busy += task_timer.Seconds();
          queue.TaskDone();
          ERA_RETURN_NOT_OK(s);
        }
        return Status::OK();
      };
      worker_status[w] = run();
      if (!worker_status[w].ok()) queue.Abort();
      worker_seconds[w] = worker_timer.Seconds();
      worker_busy_seconds[w] = busy;
    });
  }
  for (auto& t : workers) t.join();
  Status write_status = writer.Drain();
  for (const Status& s : worker_status) ERA_RETURN_NOT_OK(s);
  ERA_RETURN_NOT_OK(write_status);

  for (const IoStats& io : worker_io) stats.io.Add(io);
  stats.io.Add(writer.io());
  FoldTileCacheStats(tile_cache, &stats);
  for (std::size_t g = 0; g < num_groups; ++g) {
    GroupOutput& output = outputs[g];
    output.tree_bytes +=
        works[g].tree_bytes.load(std::memory_order_relaxed);
    stats.prepare_rounds += output.rounds;
    stats.peak_tree_bytes = std::max(stats.peak_tree_bytes, output.tree_bytes);
    stats.io.Add(output.write_io);
  }
  stats.horizontal_seconds = horizontal_timer.Seconds();
  // Background serialization ran off the workers' critical path; attribute
  // it to a synthetic worker column one past the build workers.
  if (writer.jobs_written() > 0) {
    profiler.Record("subtree_write", num_workers_, writer.write_seconds(),
                    writer.jobs_written());
  }

  ParallelBuildResult result;
  WallTimer assemble_timer;
  ERA_ASSIGN_OR_RETURN(result.index,
                       AssembleIndex(text, worker_options, plan, outputs));
  profiler.Record("assemble_index", 0, assemble_timer.Seconds());
  result.worker_seconds = worker_seconds;
  result.worker_busy_seconds = worker_busy_seconds;
  stats.total_seconds = total_timer.Seconds();
  stats.phases = profiler.Entries();
  result.stats = stats;
  return result;
}

}  // namespace era
