#include "era/parallel_builder.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "common/timer.h"
#include "era/memory_layout.h"
#include "wavefront/wavefront.h"

namespace era {

StatusOr<ParallelBuildResult> ParallelBuilder::Build(const TextInfo& text) {
  WallTimer total_timer;
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options_));
  if (num_workers_ == 0) {
    return Status::InvalidArgument("parallel build needs at least one worker");
  }
  if (options_.memory_budget < num_workers_) {
    // Dividing the budget below would silently plan a zero-byte layout.
    return Status::InvalidArgument(
        "memory budget (" + std::to_string(options_.memory_budget) +
        " bytes) is smaller than the worker count (" +
        std::to_string(num_workers_) + "); the per-core share would be zero");
  }
  Env* env = options_.GetEnv();
  ERA_RETURN_NOT_OK(env->CreateDir(options_.work_dir));

  BuildStats stats;

  // Memory is divided equally among cores; plan with the per-core share.
  BuildOptions worker_options = options_;
  worker_options.memory_budget = options_.memory_budget / num_workers_;
  const bool wavefront = algorithm_ == ParallelAlgorithm::kWaveFront;
  if (wavefront) worker_options.group_virtual_trees = false;

  ERA_ASSIGN_OR_RETURN(
      MemoryLayout layout,
      wavefront ? PlanMemoryWaveFront(worker_options, text.alphabet.size())
                : PlanMemory(worker_options, text.alphabet.size()));
  stats.fm = layout.fm;

  // Vertical partitioning is not parallelized (its cost is low; Section 5).
  ERA_ASSIGN_OR_RETURN(PartitionPlan plan,
                       VerticalPartition(text, worker_options, layout.fm));
  stats.vertical_seconds = plan.seconds;
  stats.io.Add(plan.io);
  stats.num_groups = plan.groups.size();
  stats.num_subtrees = plan.NumSubTrees();

  // Workers drain a shared queue of virtual trees.
  WallTimer horizontal_timer;
  std::atomic<std::size_t> next_group{0};
  std::vector<GroupOutput> outputs(plan.groups.size());
  std::vector<IoStats> worker_io(num_workers_);
  std::vector<double> worker_seconds(num_workers_, 0);
  std::vector<Status> worker_status(num_workers_);
  std::vector<std::thread> workers;

  for (unsigned w = 0; w < num_workers_; ++w) {
    workers.emplace_back([&, w] {
      WallTimer worker_timer;
      auto run = [&]() -> Status {
        StringReaderOptions reader_options;
        reader_options.buffer_bytes = layout.input_buffer_bytes;
        reader_options.seek_optimization = worker_options.seek_optimization;
        ERA_ASSIGN_OR_RETURN(auto reader,
                             OpenStringReader(env, text.path, reader_options,
                                              &worker_io[w]));
        std::unique_ptr<StringReader> suffix_reader;
        std::unique_ptr<StringReader> edge_reader;
        if (wavefront) {
          StringReaderOptions wf_options;
          wf_options.buffer_bytes = layout.input_buffer_bytes;
          wf_options.bill_random_as_sequential = true;
          wf_options.random_window_bytes = 512;
          ERA_ASSIGN_OR_RETURN(suffix_reader,
                               OpenStringReader(env, text.path, wf_options,
                                                &worker_io[w]));
          StringReaderOptions edge_options;
          edge_options.buffer_bytes = layout.r_buffer_bytes;
          edge_options.bill_random_as_sequential = true;
          edge_options.random_window_bytes = 512;
          ERA_ASSIGN_OR_RETURN(edge_reader,
                               OpenStringReader(env, text.path, edge_options,
                                                &worker_io[w]));
        }
        for (;;) {
          std::size_t g = next_group.fetch_add(1);
          if (g >= plan.groups.size()) break;
          if (wavefront) {
            ERA_RETURN_NOT_OK(WaveFrontProcessUnit(
                text, worker_options, plan.groups[g], g, reader.get(),
                suffix_reader.get(), edge_reader.get(), &outputs[g]));
          } else {
            ERA_RETURN_NOT_OK(ProcessGroup(text, worker_options, layout,
                                           plan.groups[g], g, reader.get(),
                                           &outputs[g]));
          }
        }
        return Status::OK();
      };
      worker_status[w] = run();
      worker_seconds[w] = worker_timer.Seconds();
    });
  }
  for (auto& t : workers) t.join();
  for (const Status& s : worker_status) ERA_RETURN_NOT_OK(s);

  for (const IoStats& io : worker_io) stats.io.Add(io);
  for (const GroupOutput& output : outputs) {
    stats.prepare_rounds += output.rounds;
    stats.peak_tree_bytes = std::max(stats.peak_tree_bytes, output.tree_bytes);
    stats.io.Add(output.write_io);
  }
  stats.horizontal_seconds = horizontal_timer.Seconds();

  ParallelBuildResult result;
  ERA_ASSIGN_OR_RETURN(result.index,
                       AssembleIndex(text, worker_options, plan, outputs));
  result.worker_seconds = worker_seconds;
  stats.total_seconds = total_timer.Seconds();
  result.stats = stats;
  return result;
}

}  // namespace era
