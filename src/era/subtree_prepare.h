// Algorithm SubTreePrepare (Section 4.2.2).
//
// For each S-prefix p in a virtual tree, computes the intermediate structure
// (L, B): L lists the occurrences of p (the sub-tree's leaves) in
// lexicographic order of their suffixes, and B[i] = (c1, c2, offset) records
// the branching relation between adjacent leaves — offset is the absolute
// string depth where the branches to L[i-1] and L[i] separate, and c1/c2 the
// first symbols after the separation.
//
// The implementation maintains the paper's auxiliary arrays:
//   I: appearance-rank -> current slot (drives the sequential fill of R)
//   P: slot -> appearance rank
//   A: active areas (represented as [begin,end) slot ranges)
//   R: per-active-slot window of `range` next symbols (compact storage)
// Each iteration performs one merged sequential scan of S for all sub-trees
// of the group, sorts every active area by window content, emits the B
// entries that became decidable, and retires resolved leaves — shrinking the
// active set so the elastic range grows.

#ifndef ERA_ERA_SUBTREE_PREPARE_H_
#define ERA_ERA_SUBTREE_PREPARE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/loser_tree.h"
#include "common/status.h"
#include "era/prepare_scratch.h"
#include "era/range_policy.h"
#include "era/vertical_partitioner.h"
#include "io/string_reader.h"

namespace era {

/// Branching relation between adjacent leaves (B array entry).
struct BranchInfo {
  uint64_t offset = 0;  // absolute depth of the separation point
  char c1 = 0;          // first symbol of the branch to L[i-1] after it
  char c2 = 0;          // first symbol of the branch to L[i] after it
  bool defined = false;
};

/// The (L, B) pair for one sub-tree, ready for BuildSubTree.
struct PreparedSubTree {
  std::string prefix;
  std::vector<uint64_t> leaves;       // L, lexicographically sorted
  std::vector<BranchInfo> branches;   // parallel to leaves; [0] unused
};

/// Counters for one group's preparation.
struct PrepareStats {
  uint32_t rounds = 0;
  uint64_t symbols_fetched = 0;
  uint64_t occurrence_scan_matches = 0;
};

/// Post-round state exposed to tests (mirrors the paper's Traces 1-3).
struct PrepareSnapshot {
  uint32_t round = 0;   // 1-based
  uint32_t range = 0;
  struct State {
    std::string prefix;
    std::vector<int64_t> I;  // -1 = done
    std::vector<uint64_t> P;
    std::vector<uint64_t> L;
    std::vector<std::string> R;  // window per slot; empty if not fetched
    std::vector<int64_t> area;   // -1 = resolved, else area ordinal (1-based)
    std::vector<std::optional<std::tuple<char, char, uint64_t>>> B;
  };
  std::vector<State> states;
};

/// Runs SubTreePrepare for all sub-trees of one virtual tree, sharing every
/// scan of S across the group (Section 4.1's I/O amortization).
class GroupPreparer {
 public:
  /// `reader` must outlive the preparer; its IoStats accumulate the scans.
  GroupPreparer(const VirtualTree& group, const RangePolicy& policy,
                StringReader* reader, uint64_t text_length);

  /// Observer invoked after every iteration (tests reproduce the paper's
  /// traces through this hook).
  void SetObserver(std::function<void(const PrepareSnapshot&)> observer) {
    observer_ = std::move(observer);
  }

  /// Streaming hand-off: called with (k, prepared) the moment prefix k's
  /// (L, B) is fully defined — often many rounds before the rest of the
  /// group resolves, which is what lets BuildSubTree/serialization overlap
  /// the remaining prepare scans. When set, ownership of each
  /// PreparedSubTree moves to the callback and results() stays empty.
  /// Mutually exclusive with SetObserver (the trace observer needs every
  /// state's arrays to survive to the end).
  using EmitFn = std::function<Status(std::size_t k, PreparedSubTree&&)>;
  void SetEmitCallback(EmitFn emit) { emit_ = std::move(emit); }

  /// Finds the occurrences (one scan) and iterates until every B is defined.
  Status Run();

  /// Results, one per prefix in group order. Valid after Run(); empty when
  /// an emit callback consumed them instead.
  std::vector<PreparedSubTree>& results() { return results_; }
  const PrepareStats& stats() const { return stats_; }

  /// The hot-path arena (tests assert its allocation counter stops moving
  /// after the first round).
  const PrepareScratch& scratch() const { return scratch_; }

 private:
  static constexpr int64_t kDoneSlot = -1;

  /// Per-prefix working state.
  struct State {
    std::string prefix;
    uint64_t expected_frequency = 0;
    std::vector<uint64_t> L;  // slot -> position in S
    std::vector<uint64_t> P;  // slot -> appearance rank
    std::vector<int64_t> I;   // appearance rank -> slot; kDoneSlot = done
    std::vector<BranchInfo> B;
    /// Active areas as [begin, end) slot ranges, each of size >= 2, sorted.
    std::vector<std::pair<uint32_t, uint32_t>> areas;
    uint64_t start = 0;  // symbols consumed so far (>= |prefix|)

    // Round-local layout into the shared PrepareScratch arena. A slot's
    // window lives at (window_base + slot_to_compact[slot]) * range. The
    // per-slot maps are sized once in ScanOccurrences and rewritten in
    // place each round.
    std::vector<uint32_t> slot_to_compact;
    std::vector<char> was_active;   // slot took part in the current round
    uint64_t window_base = 0;       // first arena compact index of this state
    uint64_t active_count = 0;
    bool emitted = false;           // handed to the emit callback already
  };

  Status ScanOccurrences();
  Status RunRound(uint32_t range);
  void EmitSnapshot(uint32_t range);
  /// Hands every newly resolved state (no active areas left) to emit_.
  Status FlushResolved();

  const VirtualTree& group_;
  RangePolicy policy_;
  StringReader* reader_;
  uint64_t text_length_;
  std::vector<State> states_;
  std::vector<PreparedSubTree> results_;
  PrepareStats stats_;
  std::function<void(const PrepareSnapshot&)> observer_;
  EmitFn emit_;

  // Recycled hot-path working memory (see prepare_scratch.h): the arena,
  // the k-way cursor merger, and the per-state appearance-rank cursors.
  PrepareScratch scratch_;
  LoserTree merge_;
  std::vector<std::size_t> cursor_rank_;
};

}  // namespace era

#endif  // ERA_ERA_SUBTREE_PREPARE_H_
