// GetRangeOfSymbols (Section 4.4): elastic vs static prefetch ranges.

#ifndef ERA_ERA_RANGE_POLICY_H_
#define ERA_ERA_RANGE_POLICY_H_

#include <algorithm>
#include <cstdint>

#include "common/options.h"

namespace era {

/// Decides how many symbols to prefetch per unresolved leaf in one
/// SubTreePrepare iteration.
class RangePolicy {
 public:
  /// Elastic range: |R| / active leaves, clamped to [min_range, max_range].
  /// As leaves resolve, the constant-size R is redistributed over the
  /// survivors and the range grows, cutting the number of scans of S.
  static RangePolicy Elastic(uint64_t r_buffer_bytes, uint32_t min_range,
                             uint32_t max_range) {
    RangePolicy p;
    p.elastic_ = true;
    p.r_buffer_bytes_ = r_buffer_bytes;
    p.min_range_ = min_range;
    p.max_range_ = max_range;
    return p;
  }

  /// Static range (the 16/32-symbol baselines of Figure 9(b)).
  static RangePolicy Fixed(uint32_t range) {
    RangePolicy p;
    p.elastic_ = false;
    p.min_range_ = p.max_range_ = range;
    return p;
  }

  /// Builds the policy selected by `options` with the resolved R size.
  static RangePolicy FromOptions(const BuildOptions& options,
                                 uint64_t r_buffer_bytes) {
    if (options.range_policy == RangePolicyKind::kFixed) {
      return Fixed(options.fixed_range);
    }
    return Elastic(r_buffer_bytes, options.min_range, options.max_range);
  }

  /// Range for the next iteration given the surviving active leaf count.
  uint32_t NextRange(uint64_t active_leaves) const {
    if (!elastic_) return min_range_;
    if (active_leaves == 0) return min_range_;
    uint64_t range = r_buffer_bytes_ / active_leaves;
    return static_cast<uint32_t>(
        std::clamp<uint64_t>(range, min_range_, max_range_));
  }

  bool elastic() const { return elastic_; }

 private:
  bool elastic_ = true;
  uint64_t r_buffer_bytes_ = 0;
  uint32_t min_range_ = 4;
  uint32_t max_range_ = 64 << 10;
};

}  // namespace era

#endif  // ERA_ERA_RANGE_POLICY_H_
