#include "era/memory_layout.h"

#include <algorithm>

namespace era {

StatusOr<MemoryLayout> PlanMemory(const BuildOptions& options,
                                  int alphabet_size) {
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options));
  MemoryLayout layout;
  // B_S shrinks for small budgets so buffers never crowd out the tree area.
  layout.input_buffer_bytes = std::clamp<uint64_t>(
      options.memory_budget / 8, 4096, options.input_buffer_bytes);
  layout.r_buffer_bytes = ResolveRBufferBytes(options, alphabet_size);
  if (options.r_buffer_bytes == 0) {
    // Auto-sized R must not eat the whole budget at small scales. An
    // explicitly configured R is honored; if it does not fit, the budget
    // check below reports the configuration error.
    layout.r_buffer_bytes =
        std::min(layout.r_buffer_bytes, options.memory_budget / 4);
  }
  layout.trie_bytes = std::min<uint64_t>(1 << 20, options.memory_budget / 16);

  // The tile cache and the prefetch ring are both carved out of the
  // retrieved-data area's slack (R above max(512 KB, R/8) plus the trie
  // area above max(64 KB, trie/8)), never out of the tree/processing
  // areas: the sum of the fixed areas is unchanged, so FM — and with it
  // the vertical partition and the emitted index bytes — is identical
  // whatever the cache/prefetch configuration. The elastic range pays
  // instead (a smaller range means more prepare rounds), which the cache
  // repays by serving those rounds from memory. Allocation priority is
  // cache first (residency removes device traffic outright), then ring
  // windows (they only *overlap* it): when a partial-residency cache
  // consumes the whole slack, the ring degrades to zero and read-ahead
  // turns off — exactly the regime where hits are memcpys anyway. Small-R
  // configurations carve nothing and keep both features' costs at zero.
  const uint64_t r = layout.r_buffer_bytes;
  const uint64_t r_floor = std::max<uint64_t>(512 << 10, r / 8);
  const uint64_t trie = layout.trie_bytes;
  const uint64_t trie_floor = std::max<uint64_t>(64 << 10, trie / 8);
  uint64_t slack = (r > r_floor ? r - r_floor : 0) +
                   (trie > trie_floor ? trie - trie_floor : 0);
  const uint64_t total_slack = slack;
  if (options.tile_cache) {
    if (options.tile_cache_budget_bytes > 0) {
      if (options.tile_cache_budget_bytes > slack) {
        return Status::OutOfBudget(
            "explicit tile cache budget (" +
            std::to_string(options.tile_cache_budget_bytes) +
            " bytes per core) does not fit in the retrieved-data area (" +
            std::to_string(slack) + " bytes of R/trie slack available)");
      }
      layout.tile_cache_bytes = options.tile_cache_budget_bytes;
    } else {
      layout.tile_cache_bytes = slack;
    }
    slack -= layout.tile_cache_bytes;
  }
  if (options.prefetch_reads) {
    const uint64_t want =
        layout.input_buffer_bytes *
        std::max<uint32_t>(1, options.prefetch_depth);
    layout.read_ahead_bytes =
        std::min(want, (slack / layout.input_buffer_bytes) *
                           layout.input_buffer_bytes);
    slack -= layout.read_ahead_bytes;
  }
  {
    // Deduct the consumed slack from R first, then from the trie area.
    const uint64_t taken = total_slack - slack;
    const uint64_t from_r =
        std::min(taken, r > r_floor ? r - r_floor : 0);
    layout.r_buffer_bytes = r - from_r;
    layout.trie_bytes = trie - (taken - from_r);
  }

  uint64_t fixed = layout.input_buffer_bytes + layout.read_ahead_bytes +
                   layout.r_buffer_bytes + layout.tile_cache_bytes +
                   layout.trie_bytes;
  if (fixed + (1 << 12) > options.memory_budget) {
    return Status::OutOfBudget(
        "memory budget too small for buffers and trie");
  }
  uint64_t remaining = options.memory_budget - fixed;
  layout.tree_area_bytes = remaining * 6 / 10;
  layout.processing_bytes = remaining - layout.tree_area_bytes;

  layout.fm = std::min(layout.tree_area_bytes / kTreeBytesPerLeaf,
                       layout.processing_bytes / kProcessingBytesPerLeaf);
  if (layout.fm < 2) {
    return Status::OutOfBudget("memory budget yields FM < 2");
  }
  return layout;
}

StatusOr<MemoryLayout> PlanMemoryWaveFront(const BuildOptions& options,
                                           int alphabet_size) {
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options));
  MemoryLayout layout;
  // Per the paper: for optimum performance WaveFront's two block-nested-loop
  // buffers occupy roughly 50% of the available memory.
  uint64_t buffers = options.memory_budget / 2;
  layout.input_buffer_bytes = buffers / 2;
  layout.r_buffer_bytes = buffers - layout.input_buffer_bytes;
  layout.trie_bytes = std::min<uint64_t>(1 << 20, options.memory_budget / 16);
  (void)alphabet_size;

  uint64_t fixed = buffers + layout.trie_bytes;
  if (fixed + (1 << 12) > options.memory_budget) {
    return Status::OutOfBudget(
        "memory budget too small for WaveFront buffers");
  }
  uint64_t remaining = options.memory_budget - fixed;
  // WaveFront builds the tree in place while inserting; its per-leaf
  // processing state (the suffix queue) is part of the tree area.
  layout.tree_area_bytes = remaining;
  layout.processing_bytes = 0;
  layout.fm = layout.tree_area_bytes / (kTreeBytesPerLeaf + 8);
  if (layout.fm < 2) {
    return Status::OutOfBudget("memory budget yields FM < 2");
  }
  return layout;
}

}  // namespace era
