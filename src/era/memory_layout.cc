#include "era/memory_layout.h"

#include <algorithm>

namespace era {

StatusOr<MemoryLayout> PlanMemory(const BuildOptions& options,
                                  int alphabet_size) {
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options));
  MemoryLayout layout;
  // B_S shrinks for small budgets so buffers never crowd out the tree area.
  layout.input_buffer_bytes = std::clamp<uint64_t>(
      options.memory_budget / 8, 4096, options.input_buffer_bytes);
  layout.r_buffer_bytes = ResolveRBufferBytes(options, alphabet_size);
  if (options.r_buffer_bytes == 0) {
    // Auto-sized R must not eat the whole budget at small scales. An
    // explicitly configured R is honored; if it does not fit, the budget
    // check below reports the configuration error.
    layout.r_buffer_bytes =
        std::min(layout.r_buffer_bytes, options.memory_budget / 4);
  }
  layout.trie_bytes = std::min<uint64_t>(1 << 20, options.memory_budget / 16);

  uint64_t fixed = layout.input_buffer_bytes + layout.r_buffer_bytes +
                   layout.trie_bytes;
  if (fixed + (1 << 12) > options.memory_budget) {
    return Status::OutOfBudget(
        "memory budget too small for buffers and trie");
  }
  uint64_t remaining = options.memory_budget - fixed;
  layout.tree_area_bytes = remaining * 6 / 10;
  layout.processing_bytes = remaining - layout.tree_area_bytes;

  layout.fm = std::min(layout.tree_area_bytes / kTreeBytesPerLeaf,
                       layout.processing_bytes / kProcessingBytesPerLeaf);
  if (layout.fm < 2) {
    return Status::OutOfBudget("memory budget yields FM < 2");
  }
  return layout;
}

StatusOr<MemoryLayout> PlanMemoryWaveFront(const BuildOptions& options,
                                           int alphabet_size) {
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options));
  MemoryLayout layout;
  // Per the paper: for optimum performance WaveFront's two block-nested-loop
  // buffers occupy roughly 50% of the available memory.
  uint64_t buffers = options.memory_budget / 2;
  layout.input_buffer_bytes = buffers / 2;
  layout.r_buffer_bytes = buffers - layout.input_buffer_bytes;
  layout.trie_bytes = std::min<uint64_t>(1 << 20, options.memory_budget / 16);
  (void)alphabet_size;

  uint64_t fixed = buffers + layout.trie_bytes;
  if (fixed + (1 << 12) > options.memory_budget) {
    return Status::OutOfBudget(
        "memory budget too small for WaveFront buffers");
  }
  uint64_t remaining = options.memory_budget - fixed;
  // WaveFront builds the tree in place while inserting; its per-leaf
  // processing state (the suffix queue) is part of the tree area.
  layout.tree_area_bytes = remaining;
  layout.processing_bytes = 0;
  layout.fm = layout.tree_area_bytes / (kTreeBytesPerLeaf + 8);
  if (layout.fm < 2) {
    return Status::OutOfBudget("memory budget yields FM < 2");
  }
  return layout;
}

}  // namespace era
