#include "era/subtree_prepare.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <numeric>

#include "text/aho_corasick.h"

namespace era {

namespace {

/// Reinterprets a native-endian u64 loaded from memory as the big-endian
/// value of those bytes (the sort keys compare in text byte order).
inline uint64_t NativeToBigEndian64(uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    return __builtin_bswap64(v);
  } else {
    return v;
  }
}

/// Index of the first (lowest-address) differing byte between two words
/// loaded from memory, given their nonzero XOR.
inline uint32_t FirstDiffByte(uint64_t native_xor) {
  if constexpr (std::endian::native == std::endian::little) {
    return static_cast<uint32_t>(__builtin_ctzll(native_xor) >> 3);
  } else {
    return static_cast<uint32_t>(__builtin_clzll(native_xor) >> 3);
  }
}

// ---------------------------------------------------------------------------
// In-place MSD radix sort of one active area.
//
// Records carry an 8-symbol big-endian key (a zero-padded load of window
// bytes [depth, depth+8)). The radix passes consume the key one byte at a
// time with an American-flag permutation; buckets below the cutoff finish
// with an insertion sort on (key, slot). Runs whose full 8-byte keys tie are
// reloaded from the next 8 window symbols and recursed — deep-LCP areas cost
// one 8-byte integer compare per 8 shared symbols instead of a memcmp per
// comparison pair.
// ---------------------------------------------------------------------------

/// Resolves slots to their windows inside the shared arena.
struct AreaSortContext {
  const char* windows;
  const uint32_t* window_len;
  const uint32_t* slot_to_compact;
  uint64_t window_base;
  uint32_t range;

  const char* WindowOf(uint32_t slot, uint32_t* len) const {
    uint64_t compact = window_base + slot_to_compact[slot];
    *len = window_len[compact];
    return windows + compact * range;
  }

  /// Big-endian load of window bytes [depth, depth+8), zero-padded past the
  /// window's end (one unaligned load + byte swap on little-endian hosts).
  uint64_t KeyAt(uint32_t slot, uint32_t depth) const {
    uint32_t len = 0;
    const char* w = WindowOf(slot, &len);
    if (depth >= len) return 0;
    uint64_t v = 0;
    std::memcpy(&v, w + depth, std::min<uint32_t>(8, len - depth));
    return NativeToBigEndian64(v);
  }
};

/// Length of the common prefix of w1[0,l1) and w2[0,l2), compared in 8-byte
/// chunks (the B-scan runs this once per adjacent slot pair per round).
uint32_t CommonPrefixLen(const char* w1, uint32_t l1, const char* w2,
                         uint32_t l2) {
  const uint32_t m = std::min(l1, l2);
  uint32_t cs = 0;
  while (cs + 8 <= m) {
    uint64_t a, b;
    std::memcpy(&a, w1 + cs, 8);
    std::memcpy(&b, w2 + cs, 8);
    if (a != b) {
      return cs + FirstDiffByte(a ^ b);
    }
    cs += 8;
  }
  while (cs < m && w1[cs] == w2[cs]) ++cs;
  return cs;
}

void InsertionSortByKeySlot(WindowSortRec* a, uint32_t n) {
  for (uint32_t i = 1; i < n; ++i) {
    WindowSortRec r = a[i];
    uint32_t j = i;
    while (j > 0 && (a[j - 1].key > r.key ||
                     (a[j - 1].key == r.key && a[j - 1].slot > r.slot))) {
      a[j] = a[j - 1];
      --j;
    }
    a[j] = r;
  }
}

constexpr uint32_t kRadixCutoff = 48;

/// Sorts [a, a+n) by (key, slot): American-flag MSD radix over the key's
/// bytes, insertion sort below the cutoff.
void RadixSortKeys(WindowSortRec* a, uint32_t n, uint32_t key_byte) {
  if (key_byte > 7) {
    // Exhausted key: every record in this bucket shares all 8 bytes, so
    // only the slot order remains — and the earlier byte passes scrambled
    // it. Insertion sort here is Theta(n^2) on large equal-key runs (e.g.
    // thousands of poly-A windows), so restore slot order directly.
    if (n >= kRadixCutoff) {
      std::sort(a, a + n, [](const WindowSortRec& x, const WindowSortRec& y) {
        return x.slot < y.slot;
      });
    } else {
      InsertionSortByKeySlot(a, n);
    }
    return;
  }
  if (n < kRadixCutoff) {
    InsertionSortByKeySlot(a, n);
    return;
  }
  const uint32_t shift = 56 - 8 * key_byte;
  uint32_t count[256] = {0};
  for (uint32_t i = 0; i < n; ++i) {
    ++count[(a[i].key >> shift) & 0xFF];
  }
  uint32_t begin[257];
  begin[0] = 0;
  for (uint32_t b = 0; b < 256; ++b) begin[b + 1] = begin[b] + count[b];
  uint32_t fill[256];
  std::memcpy(fill, begin, sizeof(fill));
  for (uint32_t b = 0; b < 256; ++b) {
    while (fill[b] < begin[b + 1]) {
      uint32_t d = (a[fill[b]].key >> shift) & 0xFF;
      if (d == b) {
        ++fill[b];
      } else {
        std::swap(a[fill[b]], a[fill[d]]);
        ++fill[d];
      }
    }
  }
  for (uint32_t b = 0; b < 256; ++b) {
    if (count[b] > 1) RadixSortKeys(a + begin[b], count[b], key_byte + 1);
  }
}

/// Sorts an area whose keys hold window bytes [depth, depth+8). Full-key
/// ties re-extract from the window tail and recurse (the memcmp-free deep
/// path); ties that exhaust a window fall back to a comparison sort with
/// the (content, length, slot) order of the reference implementation.
void SortArea(WindowSortRec* a, uint32_t n, uint32_t depth,
              const AreaSortContext& ctx) {
  RadixSortKeys(a, n, 0);
  uint32_t i = 0;
  while (i < n) {
    uint32_t j = i + 1;
    while (j < n && a[j].key == a[i].key) ++j;
    if (j - i >= 2) {
      const uint32_t next = depth + 8;
      bool all_deeper = true;
      for (uint32_t k = i; k < j && all_deeper; ++k) {
        uint32_t len = 0;
        ctx.WindowOf(a[k].slot, &len);
        all_deeper = len > next;
      }
      if (all_deeper) {
        for (uint32_t k = i; k < j; ++k) {
          a[k].key = ctx.KeyAt(a[k].slot, next);
        }
        SortArea(a + i, j - i, next, ctx);
      } else {
        // A window ended inside the key (only possible at end-of-file);
        // runs like this are tiny and about to be invariant-checked.
        std::sort(a + i, a + j,
                  [&ctx](const WindowSortRec& x, const WindowSortRec& y) {
                    uint32_t lx = 0, ly = 0;
                    const char* wx = ctx.WindowOf(x.slot, &lx);
                    const char* wy = ctx.WindowOf(y.slot, &ly);
                    int c = std::memcmp(wx, wy, std::min(lx, ly));
                    if (c != 0) return c < 0;
                    if (lx != ly) return lx < ly;
                    return x.slot < y.slot;
                  });
      }
    }
    i = j;
  }
}

}  // namespace

GroupPreparer::GroupPreparer(const VirtualTree& group,
                             const RangePolicy& policy, StringReader* reader,
                             uint64_t text_length)
    : group_(group),
      policy_(policy),
      reader_(reader),
      text_length_(text_length) {}

Status GroupPreparer::ScanOccurrences() {
  std::vector<std::string> patterns;
  patterns.reserve(group_.prefixes.size());
  states_.resize(group_.prefixes.size());
  for (std::size_t i = 0; i < group_.prefixes.size(); ++i) {
    patterns.push_back(group_.prefixes[i].prefix);
    states_[i].prefix = group_.prefixes[i].prefix;
    states_[i].expected_frequency = group_.prefixes[i].frequency;
    states_[i].L.reserve(group_.prefixes[i].frequency);
  }
  ERA_ASSIGN_OR_RETURN(auto matcher, AhoCorasick::Build(patterns));
  ERA_RETURN_NOT_OK(matcher.ScanAll(reader_, [&](int32_t id, uint64_t pos) {
    states_[static_cast<std::size_t>(id)].L.push_back(pos);
    ++stats_.occurrence_scan_matches;
  }));

  for (State& state : states_) {
    if (state.expected_frequency != 0 &&
        state.L.size() != state.expected_frequency) {
      return Status::Internal(
          "occurrence scan found " + std::to_string(state.L.size()) +
          " matches for '" + state.prefix + "', vertical partitioning " +
          "counted " + std::to_string(state.expected_frequency));
    }
    const std::size_t m = state.L.size();
    state.P.resize(m);
    std::iota(state.P.begin(), state.P.end(), 0);
    state.I.resize(m);
    std::iota(state.I.begin(), state.I.end(), 0);
    state.B.assign(m, BranchInfo{});
    if (!state.B.empty()) state.B[0].defined = true;  // sentinel
    state.start = state.prefix.size();
    // Sized once here, rewritten in place every round: the hot path must
    // not allocate in steady state.
    state.slot_to_compact.resize(m);
    state.was_active.resize(m);
    state.areas.reserve(m / 2 + 1);  // every area holds >= 2 slots
    if (m >= 2) {
      state.areas.emplace_back(0, static_cast<uint32_t>(m));
      state.active_count = m;
    } else {
      state.active_count = 0;
      if (m == 1) state.I[0] = kDoneSlot;
    }
  }
  cursor_rank_.resize(states_.size());
  return Status::OK();
}

Status GroupPreparer::RunRound(uint32_t range) {
  // ---- Lay the round out in the arena: per-state compact maps and window
  // slabs (paper lines 10-12's bookkeeping, without the per-round vectors).
  uint64_t total_active = 0;
  uint64_t max_area = 0;
  for (State& state : states_) {
    std::fill(state.was_active.begin(), state.was_active.end(), 0);
    state.window_base = total_active;
    uint64_t compact = 0;
    for (const auto& [begin, end] : state.areas) {
      max_area = std::max<uint64_t>(max_area, end - begin);
      for (uint32_t s = begin; s < end; ++s) {
        state.slot_to_compact[s] = static_cast<uint32_t>(compact++);
        state.was_active[s] = 1;
      }
    }
    state.active_count = compact;
    total_active += compact;
  }
  scratch_.BeginRound(total_active, range, max_area);

  // ---- Fill R with one merged sequential pass. Each state's unresolved
  // leaves are visited in appearance order via I, so per-state positions are
  // increasing; the loser tree merges the k sorted streams into one
  // monotone request stream, and FetchBatch serves it in a single pass over
  // the input buffer.
  auto advance = [](State* state, std::size_t from) -> std::size_t {
    std::size_t rank = from;
    while (rank < state->I.size() && state->I[rank] == kDoneSlot) ++rank;
    return rank;
  };
  merge_.Reset(static_cast<uint32_t>(states_.size()));
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& state = states_[i];
    std::size_t rank = advance(&state, 0);
    cursor_rank_[i] = rank;
    if (rank < state.I.size()) {
      uint64_t slot = static_cast<uint64_t>(state.I[rank]);
      merge_.SetKey(static_cast<uint32_t>(i), state.L[slot] + state.start);
    }
  }
  merge_.Build();
  uint64_t num_requests = 0;
  while (!merge_.Empty()) {
    const uint32_t way = merge_.MinWay();
    const uint64_t pos = merge_.MinKey();
    State& state = states_[way];
    std::size_t rank = cursor_rank_[way];
    uint64_t slot = static_cast<uint64_t>(state.I[rank]);
    uint64_t compact = state.window_base + state.slot_to_compact[slot];
    scratch_.requests[num_requests] = {
        pos, range, scratch_.windows.data() + compact * range, 0};
    scratch_.request_compact[num_requests] = compact;
    scratch_.window_len[compact] = range;  // optimistic; EOF tail patched below
    ++num_requests;
    rank = advance(&state, rank + 1);
    cursor_rank_[way] = rank;
    merge_.Replace(rank < state.I.size()
                       ? state.L[static_cast<uint64_t>(state.I[rank])] +
                             state.start
                       : LoserTree::kExhausted);
  }
  assert(num_requests == total_active);
  reader_->BeginScan();
  ERA_RETURN_NOT_OK(reader_->FetchBatch(
      std::span<FetchRequest>(scratch_.requests.data(), num_requests)));
  // A fetch comes back short only at end-of-file, and the stream is sorted
  // by position — so only a tail of the requests can need their optimistic
  // window_len corrected.
  stats_.symbols_fetched += num_requests * range;
  const uint64_t file_size = reader_->size();
  for (uint64_t r = num_requests; r-- > 0;) {
    if (scratch_.requests[r].pos + range <= file_size) break;
    scratch_.window_len[scratch_.request_compact[r]] = scratch_.requests[r].got;
    stats_.symbols_fetched -= range - scratch_.requests[r].got;
  }

  // ---- Sort active areas, define B, retire resolved leaves (lines 13-23).
  for (State& state : states_) {
    if (state.areas.empty()) continue;
    AreaSortContext ctx{scratch_.windows.data(), scratch_.window_len.data(),
                        state.slot_to_compact.data(), state.window_base,
                        range};
    auto window_of = [&](uint32_t slot) {
      uint32_t len = 0;
      const char* w = ctx.WindowOf(slot, &len);
      return std::pair<const char*, uint32_t>(w, len);
    };

    scratch_.area_tmp.clear();
    for (const auto& [begin, end] : state.areas) {
      const uint32_t area_size = end - begin;
      if (area_size == 2) {
        // Most areas degenerate to pairs within a few rounds; one common-
        // prefix scan both orders the pair and yields its B entry, skipping
        // the sort/permute machinery entirely.
        auto [w1, l1] = window_of(begin);
        auto [w2, l2] = window_of(begin + 1);
        uint32_t m = std::min(l1, l2);
        uint32_t cs = CommonPrefixLen(w1, l1, w2, l2);
        if (cs == m) {
          if (l1 != l2) {
            return Status::Internal(
                "window is a proper prefix of its neighbor; the terminal "
                "invariant is broken");
          }
          if (l1 < range) {
            return Status::Internal(
                "equal short windows: two suffixes share the terminal");
          }
          scratch_.area_tmp.emplace_back(begin, end);  // still undecidable
          continue;
        }
        char c1 = w1[cs];
        char c2 = w2[cs];
        if (static_cast<unsigned char>(c1) > static_cast<unsigned char>(c2)) {
          std::swap(state.L[begin], state.L[begin + 1]);
          std::swap(state.P[begin], state.P[begin + 1]);
          std::swap(state.slot_to_compact[begin],
                    state.slot_to_compact[begin + 1]);
          std::swap(c1, c2);
        }
        state.B[begin + 1].offset = state.start + cs;
        state.B[begin + 1].c1 = c1;
        state.B[begin + 1].c2 = c2;
        state.B[begin + 1].defined = true;
        state.I[state.P[begin]] = kDoneSlot;      // both slots resolved
        state.I[state.P[begin + 1]] = kDoneSlot;
        continue;
      }

      // Sort slots [begin, end) by window content (radix on the 8-symbol
      // keys; see SortArea). Equal windows keep their relative slot order
      // (they stay in one active area), so the slot tie-break keeps the
      // sort stable.
      WindowSortRec* order = scratch_.sort_records.data();
      for (uint32_t s = begin; s < end; ++s) {
        order[s - begin] = {ctx.KeyAt(s, 0), s};
      }
      SortArea(order, area_size, 0, ctx);

      // Apply the permutation to L, P and the slot->compact map. The window
      // bytes never move: re-pointing the map costs O(area) words instead
      // of two O(area * range) byte copies per round.
      for (uint32_t k = 0; k < area_size; ++k) {
        uint32_t src = order[k].slot;
        scratch_.perm_l[k] = state.L[src];
        scratch_.perm_p[k] = state.P[src];
        scratch_.perm_compact[k] = state.slot_to_compact[src];
      }
      for (uint32_t k = 0; k < area_size; ++k) {
        uint32_t slot = begin + k;
        state.L[slot] = scratch_.perm_l[k];
        state.P[slot] = scratch_.perm_p[k];
        state.slot_to_compact[slot] = scratch_.perm_compact[k];
        state.I[state.P[slot]] = static_cast<int64_t>(slot);
      }

      // Define the B entries that became decidable in this area and find
      // the runs of still-equal windows (the new active areas).
      uint32_t run_start = begin;
      for (uint32_t i = begin + 1; i <= end; ++i) {
        bool bond_open = false;
        if (i < end) {
          auto [w1, l1] = window_of(i - 1);
          auto [w2, l2] = window_of(i);
          uint32_t m = std::min(l1, l2);
          uint32_t cs = CommonPrefixLen(w1, l1, w2, l2);
          if (cs == m) {
            if (l1 != l2) {
              return Status::Internal(
                  "window is a proper prefix of its neighbor; the terminal "
                  "invariant is broken");
            }
            if (l1 < range) {
              return Status::Internal(
                  "equal short windows: two suffixes share the terminal");
            }
            bond_open = true;  // identical full windows: stay active
          } else {
            state.B[i].offset = state.start + cs;
            state.B[i].c1 = w1[cs];
            state.B[i].c2 = w2[cs];
            state.B[i].defined = true;
          }
        }
        if (!bond_open) {
          // Run [run_start, i) closed.
          if (i - run_start >= 2) {
            scratch_.area_tmp.emplace_back(run_start, i);
          } else {
            // Singleton: both bonds of this slot are now defined (or are
            // boundaries) — the leaf is resolved (lines 20-23).
            state.I[state.P[run_start]] = kDoneSlot;
          }
          run_start = i;
        }
      }
    }
    state.areas.assign(scratch_.area_tmp.begin(), scratch_.area_tmp.end());
    state.start += range;
  }
  return Status::OK();
}

void GroupPreparer::EmitSnapshot(uint32_t range) {
  if (!observer_) return;
  PrepareSnapshot snapshot;
  snapshot.round = stats_.rounds;
  snapshot.range = range;
  for (State& state : states_) {
    PrepareSnapshot::State s;
    s.prefix = state.prefix;
    s.I.assign(state.I.begin(), state.I.end());
    s.P = state.P;
    s.L = state.L;
    s.R.resize(state.L.size());
    s.area.assign(state.L.size(), -1);
    for (std::size_t a = 0; a < state.areas.size(); ++a) {
      for (uint32_t slot = state.areas[a].first; slot < state.areas[a].second;
           ++slot) {
        s.area[slot] = static_cast<int64_t>(a + 1);
      }
    }
    // Windows were fetched for the slots active at the start of the round;
    // expose them post-permutation (what the paper's traces print).
    for (uint32_t slot = 0; slot < state.L.size(); ++slot) {
      if (!state.was_active[slot]) continue;
      uint64_t compact = state.window_base + state.slot_to_compact[slot];
      s.R[slot].assign(scratch_.windows.data() + compact * range,
                       scratch_.window_len[compact]);
    }
    s.B.resize(state.B.size());
    for (std::size_t i = 0; i < state.B.size(); ++i) {
      if (state.B[i].defined && i > 0) {
        s.B[i] = std::make_tuple(state.B[i].c1, state.B[i].c2,
                                 state.B[i].offset);
      }
    }
    snapshot.states.push_back(std::move(s));
  }
  observer_(snapshot);
}

Status GroupPreparer::FlushResolved() {
  if (!emit_) return Status::OK();
  for (std::size_t k = 0; k < states_.size(); ++k) {
    State& state = states_[k];
    if (state.emitted || !state.areas.empty()) continue;
    state.emitted = true;
    PreparedSubTree prepared;
    prepared.prefix = std::move(state.prefix);
    prepared.leaves = std::move(state.L);
    prepared.branches = std::move(state.B);
    // Later rounds still walk this state: its (now moved-from) arrays are
    // never touched again because areas is empty and every I entry is
    // kDoneSlot.
    ERA_RETURN_NOT_OK(emit_(k, std::move(prepared)));
  }
  return Status::OK();
}

Status GroupPreparer::Run() {
  if (emit_ && observer_) {
    // FlushResolved moves each resolved state's arrays out; the trace
    // observer would then snapshot moved-from (empty) states silently.
    return Status::InvalidArgument(
        "SetEmitCallback and SetObserver are mutually exclusive");
  }
  ERA_RETURN_NOT_OK(ScanOccurrences());
  ERA_RETURN_NOT_OK(FlushResolved());  // single-occurrence prefixes

  while (true) {
    uint64_t total_active = 0;
    for (const State& state : states_) {
      for (const auto& [begin, end] : state.areas) {
        total_active += end - begin;
      }
    }
    if (total_active == 0) break;
    uint32_t range = policy_.NextRange(total_active);
    ++stats_.rounds;
    ERA_RETURN_NOT_OK(RunRound(range));
    EmitSnapshot(range);
    ERA_RETURN_NOT_OK(FlushResolved());
  }

  if (emit_) return Status::OK();  // everything already streamed out
  results_.clear();
  results_.reserve(states_.size());
  for (State& state : states_) {
    PreparedSubTree prepared;
    prepared.prefix = std::move(state.prefix);
    prepared.leaves = std::move(state.L);
    prepared.branches = std::move(state.B);
    results_.push_back(std::move(prepared));
  }
  return Status::OK();
}

}  // namespace era
