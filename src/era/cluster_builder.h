// Shared-nothing cluster construction (Section 5, Table 3, Figure 13).
//
// Simulates a cluster in-process: each "node" is a worker thread with its
// own private memory budget, its own file handle over its own copy of S,
// and its own IoStats — nothing is shared except the master's partition
// plan. The two costs the paper reports separately are modeled explicitly:
//   * string transfer:  |S| / network bandwidth (the broadcast to nodes);
//   * vertical partitioning: executed serially on the master (the paper did
//     not parallelize it either).
// Groups are assigned by longest-processing-time (greedy by frequency),
// which is what makes ERA's speed-up in Table 3 near-optimal.

#ifndef ERA_ERA_CLUSTER_BUILDER_H_
#define ERA_ERA_CLUSTER_BUILDER_H_

#include <vector>

#include "common/options.h"
#include "common/status.h"
#include "era/era_builder.h"
#include "era/parallel_builder.h"

namespace era {

/// Cluster shape and network model.
struct ClusterOptions {
  unsigned num_nodes = 4;
  /// Memory budget per node (the paper's 1 GB / 4 GB per CPU settings).
  uint64_t per_node_budget = 64 << 20;
  /// Broadcast bandwidth for the initial string transfer, bytes/second.
  double network_bytes_per_second = 19.0 * 1024 * 1024;  // paper's switch
  ParallelAlgorithm algorithm = ParallelAlgorithm::kEra;
};

/// Result with the per-phase breakdown Table 3 reports.
struct ClusterBuildResult {
  TreeIndex index;
  BuildStats stats;            // aggregated over nodes
  double makespan_seconds = 0; // slowest node's construction time
  double transfer_seconds = 0; // modeled broadcast of S
  double vertical_seconds = 0; // serial master phase
  std::vector<double> node_seconds;
  std::vector<IoStats> node_io;

  /// Construction-only time (Table 3's main columns exclude transfer and
  /// vertical partitioning).
  double ConstructionSeconds() const { return makespan_seconds; }
  /// End-to-end time (the paper's "ERA all" column).
  double AllSeconds() const {
    return makespan_seconds + transfer_seconds + vertical_seconds;
  }
};

/// Shared-nothing builder.
class ClusterBuilder {
 public:
  ClusterBuilder(const BuildOptions& options, const ClusterOptions& cluster)
      : options_(options), cluster_(cluster) {}

  StatusOr<ClusterBuildResult> Build(const TextInfo& text);

 private:
  BuildOptions options_;
  ClusterOptions cluster_;
};

}  // namespace era

#endif  // ERA_ERA_CLUSTER_BUILDER_H_
