// Subtree-granular scheduling for the pipelined horizontal phase.
//
// Work units are no longer whole virtual-tree groups: a group's prepare
// stage spawns one build task per prefix the moment that prefix's (L, B)
// resolves, so the expensive BuildSubTree/serialization work of a large
// group can be stolen by idle workers while the group's remaining prefixes
// are still being prepared.
//
// Topology: one injection queue seeded with the group tasks in LPT order
// (descending total frequency — the classic longest-processing-time
// heuristic, so the giant group never lands on the last free worker), plus
// one deque per worker for the tasks it spawns. A worker pops its own deque
// LIFO (it just produced those prefixes; their prepared arrays are warm),
// then takes from the injection queue, then steals the *oldest* task of
// another worker (FIFO — the task its owner is least likely to reach soon).
//
// Implementation note: one mutex guards everything. Task counts are small
// (hundreds) and tasks are coarse (milliseconds to seconds), so a lock-free
// Chase-Lev deque would buy nothing; what matters is the steal *policy*.

#ifndef ERA_ERA_WORK_QUEUE_H_
#define ERA_ERA_WORK_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace era {

/// One schedulable unit of the horizontal phase.
struct PipelineTask {
  enum class Kind : uint8_t {
    kGroup,        // run a group's prepare (or fused) stage
    kBuildPrefix,  // build + hand off one prepared prefix
  };
  Kind kind = Kind::kGroup;
  uint32_t group = 0;
  uint32_t prefix = 0;  // meaningful for kBuildPrefix
};

/// Blocking multi-queue with work stealing. Thread-safe. Every task taken
/// from Pop must be matched by exactly one TaskDone so completion can be
/// detected (tasks may spawn tasks, so "all queues empty" is not "done").
class WorkStealingQueue {
 public:
  explicit WorkStealingQueue(unsigned num_workers);

  /// Seeds the injection queue (callers pass tasks already in LPT order).
  void SeedGlobal(std::vector<PipelineTask> tasks);

  /// Pushes a spawned task onto `worker`'s own deque.
  void Push(unsigned worker, PipelineTask task);

  /// Takes the next task for `worker` (own LIFO, then injection FIFO, then
  /// steal FIFO). Blocks while tasks are in flight elsewhere; returns false
  /// once every task has completed or Abort() was called.
  bool Pop(unsigned worker, PipelineTask* out);

  /// Marks one previously popped task complete.
  void TaskDone();

  /// Wakes every worker and makes all further Pops return false (first
  /// error wins; outstanding work is abandoned).
  void Abort();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PipelineTask> global_;
  std::vector<std::deque<PipelineTask>> local_;
  std::size_t outstanding_ = 0;  // seeded/pushed tasks not yet TaskDone'd
  bool aborted_ = false;
};

}  // namespace era

#endif  // ERA_ERA_WORK_QUEUE_H_
