#include "era/cluster_builder.h"

#include <algorithm>
#include <numeric>
#include <thread>

#include "common/timer.h"
#include "era/memory_layout.h"
#include "wavefront/wavefront.h"

namespace era {

StatusOr<ClusterBuildResult> ClusterBuilder::Build(const TextInfo& text) {
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options_));
  Env* env = options_.GetEnv();
  ERA_RETURN_NOT_OK(env->CreateDir(options_.work_dir));

  ClusterBuildResult result;
  BuildStats& stats = result.stats;
  const unsigned nodes = std::max(1u, cluster_.num_nodes);

  // Each node plans against its own private budget.
  BuildOptions node_options = options_;
  node_options.memory_budget = cluster_.per_node_budget;
  const bool wavefront = cluster_.algorithm == ParallelAlgorithm::kWaveFront;
  if (wavefront) node_options.group_virtual_trees = false;
  // The shared-nothing emulation models independent nodes with private
  // memory; no process-wide TileCache exists here, so plan without the
  // carve.
  node_options.tile_cache = false;

  ERA_ASSIGN_OR_RETURN(
      MemoryLayout layout,
      wavefront ? PlanMemoryWaveFront(node_options, text.alphabet.size())
                : PlanMemory(node_options, text.alphabet.size()));
  stats.fm = layout.fm;
  stats.text_bytes = text.length;

  // Master: vertical partitioning (serial, reported separately).
  ERA_ASSIGN_OR_RETURN(PartitionPlan plan,
                       VerticalPartition(text, node_options, layout.fm));
  result.vertical_seconds = plan.seconds;
  stats.vertical_seconds = plan.seconds;
  stats.io.Add(plan.io);
  stats.num_groups = plan.groups.size();
  stats.num_subtrees = plan.NumSubTrees();

  // Modeled broadcast of S to every node.
  result.transfer_seconds = static_cast<double>(text.length) /
                            cluster_.network_bytes_per_second;

  // Longest-processing-time assignment of groups to nodes (same LPT order
  // the shared-memory pipeline feeds its queue, incl. deterministic ties).
  std::vector<std::size_t> order = LptGroupOrder(plan.groups);
  std::vector<std::vector<std::size_t>> assignment(nodes);
  std::vector<uint64_t> load(nodes, 0);
  for (std::size_t g : order) {
    std::size_t target = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[target].push_back(g);
    load[target] += plan.groups[g].total_frequency;
  }

  // Run every node as an isolated worker thread.
  std::vector<GroupOutput> outputs(plan.groups.size());
  result.node_seconds.assign(nodes, 0);
  result.node_io.assign(nodes, IoStats{});
  std::vector<Status> node_status(nodes);
  std::vector<std::thread> threads;
  for (unsigned nd = 0; nd < nodes; ++nd) {
    threads.emplace_back([&, nd] {
      WallTimer node_timer;
      auto run = [&]() -> Status {
        // Private handles: a shared-nothing node owns its disk.
        StringReaderOptions reader_options;
        reader_options.buffer_bytes = layout.input_buffer_bytes;
        reader_options.seek_optimization = node_options.seek_optimization;
        reader_options.prefetch = layout.read_ahead_bytes > 0 && !wavefront;
        reader_options.prefetch_depth = static_cast<uint32_t>(
            layout.read_ahead_bytes / layout.input_buffer_bytes);
        ERA_ASSIGN_OR_RETURN(auto reader,
                             OpenStringReader(env, text.path, reader_options,
                                              &result.node_io[nd]));
        std::unique_ptr<StringReader> suffix_reader;
        std::unique_ptr<StringReader> edge_reader;
        if (wavefront) {
          StringReaderOptions wf_options;
          wf_options.buffer_bytes = layout.input_buffer_bytes;
          wf_options.bill_random_as_sequential = true;
          wf_options.random_window_bytes = 512;
          ERA_ASSIGN_OR_RETURN(suffix_reader,
                               OpenStringReader(env, text.path, wf_options,
                                                &result.node_io[nd]));
          StringReaderOptions edge_options;
          edge_options.buffer_bytes = layout.r_buffer_bytes;
          edge_options.bill_random_as_sequential = true;
          edge_options.random_window_bytes = 512;
          ERA_ASSIGN_OR_RETURN(edge_reader,
                               OpenStringReader(env, text.path, edge_options,
                                                &result.node_io[nd]));
        }
        for (std::size_t g : assignment[nd]) {
          if (wavefront) {
            ERA_RETURN_NOT_OK(WaveFrontProcessUnit(
                text, node_options, plan.groups[g], g, reader.get(),
                suffix_reader.get(), edge_reader.get(), &outputs[g]));
          } else {
            ERA_RETURN_NOT_OK(ProcessGroup(text, node_options, layout,
                                           plan.groups[g], g, reader.get(),
                                           &outputs[g]));
          }
        }
        return Status::OK();
      };
      node_status[nd] = run();
      result.node_seconds[nd] = node_timer.Seconds();
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& s : node_status) ERA_RETURN_NOT_OK(s);

  result.makespan_seconds =
      *std::max_element(result.node_seconds.begin(), result.node_seconds.end());
  for (const IoStats& io : result.node_io) stats.io.Add(io);
  for (const GroupOutput& output : outputs) {
    stats.prepare_rounds += output.rounds;
    stats.peak_tree_bytes = std::max(stats.peak_tree_bytes, output.tree_bytes);
    stats.io.Add(output.write_io);
  }

  ERA_ASSIGN_OR_RETURN(result.index,
                       AssembleIndex(text, node_options, plan, outputs));
  stats.total_seconds = result.AllSeconds();
  stats.horizontal_seconds = result.makespan_seconds;
  return result;
}

}  // namespace era
