// Serial ERA driver (Section 4): vertical partitioning, then per virtual
// tree SubTreePrepare + BuildSubTree (or BranchEdge), serialization, and
// assembly of the final index behind the top-level trie.

#ifndef ERA_ERA_ERA_BUILDER_H_
#define ERA_ERA_ERA_BUILDER_H_

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/options.h"
#include "common/status.h"
#include "era/memory_layout.h"
#include "era/vertical_partitioner.h"
#include "io/string_reader.h"
#include "suffixtree/tree_index.h"
#include "text/corpus.h"

namespace era {

/// Timing and resource counters of one build.
struct BuildStats {
  double total_seconds = 0;
  double vertical_seconds = 0;
  double horizontal_seconds = 0;
  IoStats io;
  uint64_t fm = 0;
  uint64_t num_groups = 0;
  uint64_t num_subtrees = 0;
  uint64_t prepare_rounds = 0;    // sum over groups
  uint64_t peak_tree_bytes = 0;   // max per-group in-memory tree footprint
  /// Groups skipped by a resume after their sub-trees checksum-verified.
  uint64_t groups_resumed = 0;
  /// Sub-tree files whose CRC-32C the resume pass re-verified.
  uint64_t subtrees_verified = 0;
  /// Length of the indexed text (terminal included); denominator of
  /// io_amplification().
  uint64_t text_bytes = 0;
  /// Per-(phase, worker) wall-time attribution of the build: phases are
  /// "vertical_partition", "prepare", "build_subtree", "branch_edge",
  /// "wavefront", "subtree_write", and "assemble_index". Background-writer
  /// time is attributed to a synthetic worker id one past the build workers.
  /// Render with FormatPhaseTable().
  std::vector<PhaseProfiler::Entry> phases;

  /// Device bytes read per text byte — the cost of re-streaming S across
  /// groups and rounds. io.bytes_read counts only true device transfers
  /// (tile-cache hits bill cache_served_bytes instead), so this is the
  /// metric the shared tile cache exists to push down.
  double io_amplification() const {
    return text_bytes == 0
               ? 0.0
               : static_cast<double>(io.bytes_read) /
                     static_cast<double>(text_bytes);
  }

  /// Tile-cache hit rate over all lookups (0 when the cache was off).
  double tile_hit_rate() const {
    const uint64_t lookups = io.tile_hits + io.tile_misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(io.tile_hits) /
                     static_cast<double>(lookups);
  }

  /// Wall time plus the disk model's price for the recorded I/O (see
  /// io/io_stats.h for why benchmarks report this alongside raw wall time).
  double ModeledSeconds(const DiskModel& disk) const {
    return total_seconds + disk.ModeledSeconds(io);
  }

  std::string ToString() const;
};

/// A finished build: the on-disk index plus its statistics.
struct BuildResult {
  TreeIndex index;
  BuildStats stats;
};

class BackgroundSubTreeWriter;
class CheckpointManager;
struct PreparedSubTree;

/// Output of processing one virtual tree (used by serial and parallel
/// drivers alike).
struct GroupOutput {
  struct SubTreeOut {
    std::string prefix;
    uint64_t frequency = 0;
    std::string filename;
  };
  /// Slot-indexed by the prefix's position in the group, so the (group, k)
  /// assembly order is deterministic no matter which worker (or background
  /// writer) finishes a sub-tree first.
  std::vector<SubTreeOut> subtrees;
  uint32_t rounds = 0;
  uint64_t tree_bytes = 0;  // sum of the group's sub-tree bytes
  IoStats write_io;         // synchronous serialization traffic
};

/// Names one built sub-tree `st_<group_id>_<k>.bin`, records it in
/// out->subtrees[k] (which must already be sized), and either writes it
/// synchronously (billing out->write_io) or hands it to `writer`. Each
/// durably published file is reported to `checkpoint` (when given) with its
/// CRC-32C, on the writer thread for enqueued writes. Returns the tree's
/// in-memory size. Safe to call concurrently for distinct slots of the same
/// GroupOutput. Synchronous writes bill their wall time to `profiler` (when
/// given) as phase "subtree_write" under `worker`.
StatusOr<uint64_t> EmitBuiltSubTree(const BuildOptions& options,
                                    uint64_t group_id, std::size_t k,
                                    std::string prefix, uint64_t frequency,
                                    TreeBuffer&& tree, GroupOutput* out,
                                    BackgroundSubTreeWriter* writer,
                                    CheckpointManager* checkpoint = nullptr,
                                    PhaseProfiler* profiler = nullptr,
                                    unsigned worker = 0);

/// The full per-prefix tail of the pipeline: BuildSubTree on a prepared
/// prefix, then EmitBuiltSubTree. One body shared by the serial streaming
/// callback and the parallel kBuildPrefix task so the two paths cannot
/// diverge. Returns the tree's in-memory size.
StatusOr<uint64_t> BuildAndEmitPrefix(const BuildOptions& options,
                                      uint64_t text_length, uint64_t group_id,
                                      std::size_t k, PreparedSubTree&& prepared,
                                      GroupOutput* out,
                                      BackgroundSubTreeWriter* writer,
                                      CheckpointManager* checkpoint = nullptr,
                                      PhaseProfiler* profiler = nullptr,
                                      unsigned worker = 0);

/// Builds all sub-trees of `group`, writes them under `options.work_dir`
/// with filenames `st_<group_id>_<k>`, and reports what was written.
/// `reader` supplies the (instrumented) scans of S. The prepare stage
/// streams: each prefix is built and written (or enqueued on `writer`, when
/// given) as soon as it resolves, before the group's remaining prefixes
/// finish preparing.
Status ProcessGroup(const TextInfo& text, const BuildOptions& options,
                    const MemoryLayout& layout, const VirtualTree& group,
                    uint64_t group_id, StringReader* reader,
                    GroupOutput* out,
                    BackgroundSubTreeWriter* writer = nullptr,
                    CheckpointManager* checkpoint = nullptr,
                    PhaseProfiler* profiler = nullptr, unsigned worker = 0);

/// Fills `out` for a group that a resume pass verified on disk: sub-tree
/// entries are reconstructed from the plan (prefix, frequency) and the
/// deterministic slot naming, with no device traffic.
void ReconstructGroupOutput(const VirtualTree& group, uint64_t group_id,
                            GroupOutput* out);

/// PlanMemory plus the build-level tile-cache refinement: when the auto
/// carve exceeds this build's useful per-core share (tile-rounded file size
/// / num_workers — residency beyond the whole text buys nothing), the plan
/// is redone with the carve capped and the excess returned to the elastic
/// range, which directly reduces prepare rounds. FM is unaffected either
/// way.
StatusOr<MemoryLayout> PlanMemoryForBuild(const BuildOptions& options,
                                          const TextInfo& text,
                                          unsigned num_workers);

/// Opens the process-wide input-text tile cache for a build whose layout
/// carved `tile_cache_bytes` per core, or returns nullptr when the carve is
/// zero (cache disabled or budget too small). The budget is the sum of the
/// per-core carves, capped at the tile-rounded file size.
StatusOr<std::shared_ptr<TileCache>> OpenBuildTileCache(
    Env* env, const TextInfo& text, const MemoryLayout& layout,
    unsigned num_workers);

/// Folds a build tile cache's counters into `stats` (hits/misses/evictions
/// plus its device reads into io.bytes_read). No-op on nullptr.
void FoldTileCacheStats(const std::shared_ptr<TileCache>& cache,
                        BuildStats* stats);

/// Assembles a TreeIndex from per-group outputs plus the partition plan's
/// direct trie leaves, and saves its manifest into `options.work_dir`.
StatusOr<TreeIndex> AssembleIndex(const TextInfo& text,
                                  const BuildOptions& options,
                                  const PartitionPlan& plan,
                                  const std::vector<GroupOutput>& outputs);

/// The serial ERA builder (Section 4).
class EraBuilder {
 public:
  explicit EraBuilder(const BuildOptions& options) : options_(options) {}

  /// Builds the suffix-tree index of `text`.
  StatusOr<BuildResult> Build(const TextInfo& text);

 private:
  BuildOptions options_;
};

}  // namespace era

#endif  // ERA_ERA_ERA_BUILDER_H_
