// Shared-memory / shared-disk parallel construction (Section 5).
//
// A master performs vertical partitioning, then the virtual trees are
// divided among worker threads. All workers read the same input file (the
// architecture's strength) and split the memory budget equally (its
// constraint): FM is computed from the per-core share, so more cores mean
// smaller sub-trees — the interference-driven scaling limit of Figure 12.

#ifndef ERA_ERA_PARALLEL_BUILDER_H_
#define ERA_ERA_PARALLEL_BUILDER_H_

#include <vector>

#include "common/options.h"
#include "common/status.h"
#include "era/era_builder.h"

namespace era {

/// Which construction algorithm the parallel drivers run per work unit.
enum class ParallelAlgorithm {
  kEra,        // ERA horizontal partitioning (grouped virtual trees)
  kWaveFront,  // PWaveFront-style: one sub-tree per unit, WF insertion
};

/// Result of a parallel build: the index plus per-worker timing.
struct ParallelBuildResult {
  TreeIndex index;
  BuildStats stats;
  std::vector<double> worker_seconds;
};

/// Multicore builder over a shared Env/input file.
class ParallelBuilder {
 public:
  /// `options.memory_budget` is the TOTAL budget; it is divided equally
  /// among `num_workers` (the paper's Figure 12 setup). `num_workers == 0`
  /// is rejected by Build() with InvalidArgument.
  ParallelBuilder(const BuildOptions& options, unsigned num_workers,
                  ParallelAlgorithm algorithm = ParallelAlgorithm::kEra)
      : options_(options),
        num_workers_(num_workers),
        algorithm_(algorithm) {}

  StatusOr<ParallelBuildResult> Build(const TextInfo& text);

 private:
  BuildOptions options_;
  unsigned num_workers_;
  ParallelAlgorithm algorithm_;
};

}  // namespace era

#endif  // ERA_ERA_PARALLEL_BUILDER_H_
