// Shared-memory / shared-disk parallel construction (Section 5), pipelined.
//
// A master performs vertical partitioning, then the horizontal phase runs as
// a three-stage pipeline over subtree-granular tasks:
//
//   1. Scheduling — group tasks seed a work-stealing queue in LPT order
//      (era/work_queue.h); a group's prepare stage spawns one build task per
//      prefix the moment that prefix resolves, so idle workers steal
//      BuildSubTree work out of large groups mid-prepare.
//   2. Read-ahead — each worker's StringReader double-buffers its
//      sequential scans through a background prefetch thread
//      (PrefetchingStringReader), hiding device latency behind the radix
//      kernel.
//   3. Write overlap — finished trees go to a bounded BackgroundSubTreeWriter
//      instead of blocking the worker; (group, k) slot naming keeps the
//      assembled index byte-identical for any worker count.
//
// All workers read the same input file (the architecture's strength) and
// split the memory budget equally (its constraint): FM is computed from the
// per-core share, so more cores mean smaller sub-trees — the
// interference-driven scaling limit of Figure 12.

#ifndef ERA_ERA_PARALLEL_BUILDER_H_
#define ERA_ERA_PARALLEL_BUILDER_H_

#include <vector>

#include "common/options.h"
#include "common/status.h"
#include "era/era_builder.h"

namespace era {

/// Which construction algorithm the parallel drivers run per work unit.
enum class ParallelAlgorithm {
  kEra,        // ERA horizontal partitioning (grouped virtual trees)
  kWaveFront,  // PWaveFront-style: one sub-tree per unit, WF insertion
};

/// Result of a parallel build: the index plus per-worker timing.
struct ParallelBuildResult {
  TreeIndex index;
  BuildStats stats;
  std::vector<double> worker_seconds;
  /// Seconds each worker spent executing pipeline tasks (the rest of
  /// worker_seconds is time idle-waiting for stealable work).
  std::vector<double> worker_busy_seconds;
};

/// LPT dispatch order: group indices sorted by descending total_frequency,
/// ties by ascending index (deterministic). Seeding the queue in this order
/// keeps one giant group from landing on the last free worker. Exposed for
/// tests.
std::vector<std::size_t> LptGroupOrder(const std::vector<VirtualTree>& groups);

/// LPT order refined by tile-footprint affinity: starting from the LPT
/// head, each next group is the one whose footprint_mask overlaps the
/// previously scheduled group's the most (ties resolved by LPT rank, so
/// uniform footprints — e.g. short prefixes over random text — degrade to
/// exactly the LPT order). Groups that touch the same text regions run
/// adjacently, so their prepare rounds find each other's tiles still
/// resident in the shared TileCache instead of re-reading them from the
/// device. Deterministic; scheduling order never affects the emitted index
/// bytes. Exposed for tests.
std::vector<std::size_t> TileAffinityOrder(
    const std::vector<VirtualTree>& groups);

/// Multicore builder over a shared Env/input file.
class ParallelBuilder {
 public:
  /// `options.memory_budget` is the TOTAL budget; it is divided equally
  /// among `num_workers` (the paper's Figure 12 setup). `num_workers == 0`
  /// is rejected by Build() with InvalidArgument.
  ParallelBuilder(const BuildOptions& options, unsigned num_workers,
                  ParallelAlgorithm algorithm = ParallelAlgorithm::kEra)
      : options_(options),
        num_workers_(num_workers),
        algorithm_(algorithm) {}

  StatusOr<ParallelBuildResult> Build(const TextInfo& text);

 private:
  BuildOptions options_;
  unsigned num_workers_;
  ParallelAlgorithm algorithm_;
};

}  // namespace era

#endif  // ERA_ERA_PARALLEL_BUILDER_H_
