#include "era/subtree_writer.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/timer.h"
#include "suffixtree/serializer.h"

namespace era {

namespace {

/// One queued write. Heap-allocated and shared because ThreadPool tasks are
/// std::function (copyable) while TreeBuffer is move-only in spirit.
struct WriteJob {
  std::string path;
  std::string prefix;
  TreeBuffer tree;
  uint64_t bytes = 0;
  BackgroundSubTreeWriter::WriteDone done;
};

}  // namespace

BackgroundSubTreeWriter::BackgroundSubTreeWriter(Env* env,
                                                 std::size_t num_threads,
                                                 uint64_t max_queued_bytes,
                                                 SubTreeFormat format)
    : env_(env),
      max_queued_bytes_(std::max<uint64_t>(max_queued_bytes, 1)),
      format_(format),
      pool_(num_threads) {}

BackgroundSubTreeWriter::~BackgroundSubTreeWriter() { (void)Drain(); }

void BackgroundSubTreeWriter::Enqueue(std::string path, std::string prefix,
                                      TreeBuffer tree, WriteDone done) {
  auto job = std::make_shared<WriteJob>();
  job->path = std::move(path);
  job->prefix = std::move(prefix);
  job->bytes = tree.MemoryBytes();
  job->tree = std::move(tree);
  job->done = std::move(done);

  {
    std::unique_lock<std::mutex> lock(mu_);
    // A failed build must not keep blocking producers on backpressure —
    // fail fast instead of draining a doomed backlog through the device.
    cv_.wait(lock, [this, &job] {
      return !first_error_.ok() || queued_bytes_ == 0 ||
             queued_bytes_ + job->bytes <= max_queued_bytes_;
    });
    if (!first_error_.ok()) {
      // Build is failing; drop the work (outside the lock for the callback).
      Status err = first_error_;
      lock.unlock();
      if (job->done) job->done(err, 0);
      return;
    }
    queued_bytes_ += job->bytes;
    peak_queued_bytes_ = std::max(peak_queued_bytes_, queued_bytes_);
  }

  pool_.Submit([this, job] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_.ok()) {
        // Skip the device for work queued before the first failure.
        Status err = first_error_;
        queued_bytes_ -= job->bytes;
        cv_.notify_all();
        if (job->done) job->done(err, 0);
        return;
      }
    }
    IoStats local;
    uint32_t file_crc = 0;
    WallTimer write_timer;
    Status s = WriteSubTree(env_, job->path, job->prefix, job->tree, &local,
                            &file_crc, format_);
    const double write_seconds = write_timer.Seconds();
    {
      std::lock_guard<std::mutex> lock(mu_);
      io_.Add(local);
      write_seconds_ += write_seconds;
      ++jobs_written_;
      if (!s.ok() && first_error_.ok()) {
        first_error_ = s;
        failed_.store(true, std::memory_order_release);
      }
      queued_bytes_ -= job->bytes;
      cv_.notify_all();
    }
    if (job->done) job->done(s, file_crc);
  });
}

bool BackgroundSubTreeWriter::Failed() const {
  return failed_.load(std::memory_order_acquire);
}

Status BackgroundSubTreeWriter::Drain() {
  pool_.WaitIdle();
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

}  // namespace era
