#include "era/subtree_writer.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "suffixtree/serializer.h"

namespace era {

namespace {

/// One queued write. Heap-allocated and shared because ThreadPool tasks are
/// std::function (copyable) while TreeBuffer is move-only in spirit.
struct WriteJob {
  std::string path;
  std::string prefix;
  TreeBuffer tree;
  uint64_t bytes = 0;
};

}  // namespace

BackgroundSubTreeWriter::BackgroundSubTreeWriter(Env* env,
                                                 std::size_t num_threads,
                                                 uint64_t max_queued_bytes)
    : env_(env),
      max_queued_bytes_(std::max<uint64_t>(max_queued_bytes, 1)),
      pool_(num_threads) {}

BackgroundSubTreeWriter::~BackgroundSubTreeWriter() { (void)Drain(); }

void BackgroundSubTreeWriter::Enqueue(std::string path, std::string prefix,
                                      TreeBuffer tree) {
  auto job = std::make_shared<WriteJob>();
  job->path = std::move(path);
  job->prefix = std::move(prefix);
  job->bytes = tree.MemoryBytes();
  job->tree = std::move(tree);

  {
    std::unique_lock<std::mutex> lock(mu_);
    // A failed build must not keep blocking producers on backpressure —
    // fail fast instead of draining a doomed backlog through the device.
    cv_.wait(lock, [this, &job] {
      return !first_error_.ok() || queued_bytes_ == 0 ||
             queued_bytes_ + job->bytes <= max_queued_bytes_;
    });
    if (!first_error_.ok()) return;  // build is failing; drop the work
    queued_bytes_ += job->bytes;
    peak_queued_bytes_ = std::max(peak_queued_bytes_, queued_bytes_);
  }

  pool_.Submit([this, job] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_.ok()) {
        // Skip the device for work queued before the first failure.
        queued_bytes_ -= job->bytes;
        cv_.notify_all();
        return;
      }
    }
    IoStats local;
    Status s =
        WriteSubTree(env_, job->path, job->prefix, job->tree, &local);
    std::lock_guard<std::mutex> lock(mu_);
    io_.Add(local);
    if (!s.ok() && first_error_.ok()) first_error_ = s;
    queued_bytes_ -= job->bytes;
    cv_.notify_all();
  });
}

Status BackgroundSubTreeWriter::Drain() {
  pool_.WaitIdle();
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

}  // namespace era
