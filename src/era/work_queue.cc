#include "era/work_queue.h"

#include <utility>

namespace era {

WorkStealingQueue::WorkStealingQueue(unsigned num_workers)
    : local_(num_workers == 0 ? 1 : num_workers) {}

void WorkStealingQueue::SeedGlobal(std::vector<PipelineTask> tasks) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_ += tasks.size();
    for (const PipelineTask& t : tasks) global_.push_back(t);
  }
  cv_.notify_all();
}

void WorkStealingQueue::Push(unsigned worker, PipelineTask task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
    local_[worker].push_back(task);
  }
  cv_.notify_one();
}

bool WorkStealingQueue::Pop(unsigned worker, PipelineTask* out) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (aborted_) return false;
    if (!local_[worker].empty()) {
      *out = local_[worker].back();
      local_[worker].pop_back();
      return true;
    }
    if (!global_.empty()) {
      *out = global_.front();
      global_.pop_front();
      return true;
    }
    for (std::size_t i = 1; i < local_.size(); ++i) {
      std::deque<PipelineTask>& victim =
          local_[(worker + i) % local_.size()];
      if (!victim.empty()) {
        *out = victim.front();
        victim.pop_front();
        return true;
      }
    }
    if (outstanding_ == 0) return false;
    cv_.wait(lock);
  }
}

void WorkStealingQueue::TaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_ > 0) --outstanding_;
  if (outstanding_ == 0) cv_.notify_all();
}

void WorkStealingQueue::Abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

}  // namespace era
