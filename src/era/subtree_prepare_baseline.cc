#include "era/subtree_prepare_baseline.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <numeric>
#include <queue>

#include "text/aho_corasick.h"

namespace era {

BaselineGroupPreparer::BaselineGroupPreparer(const VirtualTree& group,
                             const RangePolicy& policy, StringReader* reader,
                             uint64_t text_length)
    : group_(group),
      policy_(policy),
      reader_(reader),
      text_length_(text_length) {}

Status BaselineGroupPreparer::ScanOccurrences() {
  std::vector<std::string> patterns;
  patterns.reserve(group_.prefixes.size());
  states_.resize(group_.prefixes.size());
  for (std::size_t i = 0; i < group_.prefixes.size(); ++i) {
    patterns.push_back(group_.prefixes[i].prefix);
    states_[i].prefix = group_.prefixes[i].prefix;
    states_[i].expected_frequency = group_.prefixes[i].frequency;
    states_[i].L.reserve(group_.prefixes[i].frequency);
  }
  ERA_ASSIGN_OR_RETURN(auto matcher, AhoCorasick::Build(patterns));
  ERA_RETURN_NOT_OK(matcher.ScanAll(reader_, [&](int32_t id, uint64_t pos) {
    states_[static_cast<std::size_t>(id)].L.push_back(pos);
    ++stats_.occurrence_scan_matches;
  }));

  for (State& state : states_) {
    if (state.expected_frequency != 0 &&
        state.L.size() != state.expected_frequency) {
      return Status::Internal(
          "occurrence scan found " + std::to_string(state.L.size()) +
          " matches for '" + state.prefix + "', vertical partitioning " +
          "counted " + std::to_string(state.expected_frequency));
    }
    const std::size_t m = state.L.size();
    state.P.resize(m);
    std::iota(state.P.begin(), state.P.end(), 0);
    state.I.resize(m);
    std::iota(state.I.begin(), state.I.end(), 0);
    state.B.assign(m, BranchInfo{});
    if (!state.B.empty()) state.B[0].defined = true;  // sentinel
    state.start = state.prefix.size();
    if (m >= 2) {
      state.areas.emplace_back(0, static_cast<uint32_t>(m));
      state.active_count = m;
    } else {
      state.active_count = 0;
      if (m == 1) state.I[0] = kDoneSlot;
    }
  }
  return Status::OK();
}

Status BaselineGroupPreparer::RunRound(uint32_t range) {
  // ---- Fill R: one merged sequential scan over all states (lines 10-12).
  // Each state's unresolved leaves are visited in appearance order via I, so
  // per-state request positions are increasing; a k-way merge keeps the
  // global request stream monotone.
  for (State& state : states_) {
    state.slot_to_compact.assign(state.L.size(), 0);
    state.was_active.assign(state.L.size(), 0);
    uint64_t compact = 0;
    for (const auto& [begin, end] : state.areas) {
      for (uint32_t s = begin; s < end; ++s) {
        state.slot_to_compact[s] = static_cast<uint32_t>(compact++);
        state.was_active[s] = 1;
      }
    }
    state.active_count = compact;
    state.windows.assign(compact * range, 0);
    state.window_len.assign(compact, 0);
  }

  struct Cursor {
    State* state;
    std::size_t rank;
    uint64_t pos;
  };
  auto advance = [&](State* state, std::size_t from) -> std::size_t {
    std::size_t rank = from;
    while (rank < state->I.size() && state->I[rank] == kDoneSlot) ++rank;
    return rank;
  };
  auto cmp = [](const Cursor& a, const Cursor& b) { return a.pos > b.pos; };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  for (State& state : states_) {
    std::size_t rank = advance(&state, 0);
    if (rank < state.I.size()) {
      uint64_t slot = static_cast<uint64_t>(state.I[rank]);
      heap.push({&state, rank, state.L[slot] + state.start});
    }
  }
  reader_->BeginScan();
  while (!heap.empty()) {
    Cursor cur = heap.top();
    heap.pop();
    State& state = *cur.state;
    uint64_t slot = static_cast<uint64_t>(state.I[cur.rank]);
    uint32_t compact = state.slot_to_compact[slot];
    uint32_t got = 0;
    ERA_RETURN_NOT_OK(reader_->Fetch(cur.pos, range,
                                     state.windows.data() +
                                         static_cast<uint64_t>(compact) * range,
                                     &got));
    state.window_len[compact] = got;
    stats_.symbols_fetched += got;
    std::size_t next = advance(&state, cur.rank + 1);
    if (next < state.I.size()) {
      uint64_t next_slot = static_cast<uint64_t>(state.I[next]);
      heap.push({&state, next, state.L[next_slot] + state.start});
    }
  }

  // ---- Sort active areas, define B, retire resolved leaves (lines 13-23).
  for (State& state : states_) {
    if (state.areas.empty()) continue;
    auto window_of = [&](uint32_t slot) {
      uint32_t compact = state.slot_to_compact[slot];
      return std::pair<const char*, uint32_t>(
          state.windows.data() + static_cast<uint64_t>(compact) * range,
          state.window_len[compact]);
    };

    std::vector<std::pair<uint32_t, uint32_t>> new_areas;
    for (const auto& [begin, end] : state.areas) {
      // Sort slots [begin, end) by window content. An 8-byte big-endian key
      // settles almost every comparison with one integer compare; ties fall
      // back to the window tail. Equal windows keep their relative slot
      // order (they stay in one active area), so the slot tie-break makes
      // the plain sort stable.
      struct SortRec {
        uint64_t key;
        uint32_t slot;
      };
      std::vector<SortRec> order(end - begin);
      for (uint32_t s = begin; s < end; ++s) {
        auto [w, len] = window_of(s);
        uint64_t key = 0;
        uint32_t take = std::min<uint32_t>(len, 8);
        for (uint32_t i = 0; i < take; ++i) {
          key |= static_cast<uint64_t>(static_cast<unsigned char>(w[i]))
                 << (56 - 8 * i);
        }
        order[s - begin] = {key, s};
      }
      std::sort(order.begin(), order.end(),
                [&](const SortRec& x, const SortRec& y) {
                  if (x.key != y.key) return x.key < y.key;
                  auto [wx, lx] = window_of(x.slot);
                  auto [wy, ly] = window_of(y.slot);
                  if (lx > 8 && ly > 8) {
                    uint32_t m = std::min(lx, ly) - 8;
                    int c = std::memcmp(wx + 8, wy + 8, m);
                    if (c != 0) return c < 0;
                  }
                  if (lx != ly) return lx < ly;  // unreachable if valid
                  return x.slot < y.slot;        // stability
                });

      // Apply the permutation to L, P and the compact windows; compact
      // indices within the area stay contiguous, so permute via temporaries.
      std::vector<uint64_t> new_l(order.size()), new_p(order.size());
      std::vector<char> new_windows(order.size() *
                                    static_cast<uint64_t>(range));
      std::vector<uint32_t> new_len(order.size());
      for (std::size_t k = 0; k < order.size(); ++k) {
        uint32_t src = order[k].slot;
        new_l[k] = state.L[src];
        new_p[k] = state.P[src];
        auto [w, len] = window_of(src);
        std::memcpy(new_windows.data() + k * range, w, len);
        new_len[k] = len;
      }
      uint32_t base_compact = state.slot_to_compact[begin];
      for (std::size_t k = 0; k < order.size(); ++k) {
        uint32_t slot = begin + static_cast<uint32_t>(k);
        state.L[slot] = new_l[k];
        state.P[slot] = new_p[k];
        std::memcpy(state.windows.data() +
                        (static_cast<uint64_t>(base_compact) + k) * range,
                    new_windows.data() + k * range, new_len[k]);
        state.window_len[base_compact + k] = new_len[k];
        state.slot_to_compact[slot] = base_compact + static_cast<uint32_t>(k);
        state.I[state.P[slot]] = static_cast<int64_t>(slot);
      }

      // Define the B entries that became decidable in this area and find
      // the runs of still-equal windows (the new active areas).
      uint32_t run_start = begin;
      for (uint32_t i = begin + 1; i <= end; ++i) {
        bool bond_open = false;
        if (i < end) {
          auto [w1, l1] = window_of(i - 1);
          auto [w2, l2] = window_of(i);
          uint32_t m = std::min(l1, l2);
          uint32_t cs = 0;
          while (cs < m && w1[cs] == w2[cs]) ++cs;
          if (cs == m) {
            if (l1 != l2) {
              return Status::Internal(
                  "window is a proper prefix of its neighbor; the terminal "
                  "invariant is broken");
            }
            if (l1 < range) {
              return Status::Internal(
                  "equal short windows: two suffixes share the terminal");
            }
            bond_open = true;  // identical full windows: stay active
          } else {
            state.B[i].offset = state.start + cs;
            state.B[i].c1 = w1[cs];
            state.B[i].c2 = w2[cs];
            state.B[i].defined = true;
          }
        }
        if (!bond_open) {
          // Run [run_start, i) closed.
          if (i - run_start >= 2) {
            new_areas.emplace_back(run_start, i);
          } else {
            // Singleton: both bonds of this slot are now defined (or are
            // boundaries) — the leaf is resolved (lines 20-23).
            state.I[state.P[run_start]] = kDoneSlot;
          }
          run_start = i;
        }
      }
    }
    state.areas = std::move(new_areas);
    state.start += range;
  }
  return Status::OK();
}

Status BaselineGroupPreparer::Run() {
  ERA_RETURN_NOT_OK(ScanOccurrences());

  while (true) {
    uint64_t total_active = 0;
    for (const State& state : states_) {
      for (const auto& [begin, end] : state.areas) {
        total_active += end - begin;
      }
    }
    if (total_active == 0) break;
    uint32_t range = policy_.NextRange(total_active);
    ++stats_.rounds;
    ERA_RETURN_NOT_OK(RunRound(range));
  }

  results_.clear();
  results_.reserve(states_.size());
  for (State& state : states_) {
    PreparedSubTree prepared;
    prepared.prefix = std::move(state.prefix);
    prepared.leaves = std::move(state.L);
    prepared.branches = std::move(state.B);
    results_.push_back(std::move(prepared));
  }
  return Status::OK();
}

}  // namespace era
