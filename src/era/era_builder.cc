#include "era/era_builder.h"

#include <algorithm>
#include <sstream>

#include "common/timer.h"
#include "era/branch_edge.h"
#include "era/build_subtree.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "suffixtree/serializer.h"

namespace era {

std::string BuildStats::ToString() const {
  std::ostringstream os;
  os << "total=" << total_seconds << "s (vertical=" << vertical_seconds
     << "s horizontal=" << horizontal_seconds << "s) fm=" << fm
     << " groups=" << num_groups << " subtrees=" << num_subtrees
     << " rounds=" << prepare_rounds << " peak_tree=" << peak_tree_bytes
     << "B io{" << io.ToString() << "}";
  return os.str();
}

Status ProcessGroup(const TextInfo& text, const BuildOptions& options,
                    const MemoryLayout& layout, const VirtualTree& group,
                    uint64_t group_id, StringReader* reader,
                    GroupOutput* out) {
  Env* env = options.GetEnv();
  RangePolicy policy = RangePolicy::FromOptions(options, layout.r_buffer_bytes);
  IoStats* write_stats = &out->write_io;

  if (options.horizontal == HorizontalMethod::kBranchEdge) {
    GroupStrBuilder builder(group, policy, reader, text.length);
    ERA_RETURN_NOT_OK(builder.Run());
    out->rounds = builder.stats().rounds;
    uint64_t tree_bytes = 0;
    for (std::size_t k = 0; k < builder.results().size(); ++k) {
      auto& [prefix, tree] = builder.results()[k];
      tree_bytes += tree.MemoryBytes();
      std::string filename = "st_" + std::to_string(group_id) + "_" +
                             std::to_string(k) + ".bin";
      ERA_RETURN_NOT_OK(WriteSubTree(env, options.work_dir + "/" + filename,
                                     prefix, tree, write_stats));
      out->subtrees.push_back(
          {prefix, group.prefixes[k].frequency, filename});
    }
    out->tree_bytes = tree_bytes;
  } else {
    GroupPreparer preparer(group, policy, reader, text.length);
    ERA_RETURN_NOT_OK(preparer.Run());
    out->rounds = preparer.stats().rounds;
    uint64_t tree_bytes = 0;
    for (std::size_t k = 0; k < preparer.results().size(); ++k) {
      PreparedSubTree& prepared = preparer.results()[k];
      ERA_ASSIGN_OR_RETURN(TreeBuffer tree,
                           BuildSubTree(prepared, text.length));
      tree_bytes += tree.MemoryBytes();
      std::string filename = "st_" + std::to_string(group_id) + "_" +
                             std::to_string(k) + ".bin";
      ERA_RETURN_NOT_OK(WriteSubTree(env, options.work_dir + "/" + filename,
                                     prepared.prefix, tree, write_stats));
      out->subtrees.push_back(
          {prepared.prefix, static_cast<uint64_t>(prepared.leaves.size()),
           filename});
    }
    out->tree_bytes = tree_bytes;
  }
  return Status::OK();
}

StatusOr<TreeIndex> AssembleIndex(const TextInfo& text,
                                  const BuildOptions& options,
                                  const PartitionPlan& plan,
                                  const std::vector<GroupOutput>& outputs) {
  TreeIndex index;
  index.SetText(text);
  for (const GroupOutput& output : outputs) {
    for (const auto& sub : output.subtrees) {
      uint32_t id = index.AddSubTree(sub.prefix, sub.frequency, sub.filename);
      ERA_RETURN_NOT_OK(
          index.mutable_trie().InsertSubTree(sub.prefix, id, sub.frequency));
    }
  }
  for (const auto& [prefix, position] : plan.terminal_leaves) {
    ERA_RETURN_NOT_OK(
        index.mutable_trie().InsertTerminalLeaf(prefix, position));
  }
  ERA_RETURN_NOT_OK(index.Save(options.GetEnv(), options.work_dir));
  ERA_ASSIGN_OR_RETURN(TreeIndex loaded,
                       TreeIndex::Load(options.GetEnv(), options.work_dir));
  return loaded;
}

StatusOr<BuildResult> EraBuilder::Build(const TextInfo& text) {
  WallTimer total_timer;
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options_));
  ERA_RETURN_NOT_OK(options_.GetEnv()->CreateDir(options_.work_dir));

  BuildStats stats;
  ERA_ASSIGN_OR_RETURN(MemoryLayout layout,
                       PlanMemory(options_, text.alphabet.size()));
  stats.fm = layout.fm;

  ERA_ASSIGN_OR_RETURN(PartitionPlan plan,
                       VerticalPartition(text, options_, layout.fm));
  stats.vertical_seconds = plan.seconds;
  stats.io.Add(plan.io);
  stats.num_groups = plan.groups.size();
  stats.num_subtrees = plan.NumSubTrees();

  WallTimer horizontal_timer;
  StringReaderOptions reader_options;
  reader_options.buffer_bytes = options_.input_buffer_bytes;
  reader_options.seek_optimization = options_.seek_optimization;
  IoStats scan_stats;
  ERA_ASSIGN_OR_RETURN(auto reader,
                       OpenStringReader(options_.GetEnv(), text.path,
                                        reader_options, &scan_stats));

  std::vector<GroupOutput> outputs(plan.groups.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    ERA_RETURN_NOT_OK(ProcessGroup(text, options_, layout, plan.groups[g], g,
                                   reader.get(), &outputs[g]));
    stats.prepare_rounds += outputs[g].rounds;
    stats.peak_tree_bytes =
        std::max(stats.peak_tree_bytes, outputs[g].tree_bytes);
    stats.io.Add(outputs[g].write_io);
  }
  stats.io.Add(scan_stats);
  stats.horizontal_seconds = horizontal_timer.Seconds();

  BuildResult result;
  ERA_ASSIGN_OR_RETURN(result.index,
                       AssembleIndex(text, options_, plan, outputs));
  stats.total_seconds = total_timer.Seconds();
  result.stats = stats;
  return result;
}

}  // namespace era
