#include "era/era_builder.h"

#include <algorithm>
#include <sstream>

#include "common/timer.h"
#include "era/branch_edge.h"
#include "era/build_subtree.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "era/subtree_writer.h"
#include "suffixtree/serializer.h"

namespace era {

std::string BuildStats::ToString() const {
  std::ostringstream os;
  os << "total=" << total_seconds << "s (vertical=" << vertical_seconds
     << "s horizontal=" << horizontal_seconds << "s) fm=" << fm
     << " groups=" << num_groups << " subtrees=" << num_subtrees
     << " rounds=" << prepare_rounds << " peak_tree=" << peak_tree_bytes
     << "B io{" << io.ToString() << "}";
  return os.str();
}

StatusOr<uint64_t> BuildAndEmitPrefix(const BuildOptions& options,
                                      uint64_t text_length, uint64_t group_id,
                                      std::size_t k, PreparedSubTree&& prepared,
                                      GroupOutput* out,
                                      BackgroundSubTreeWriter* writer) {
  ERA_ASSIGN_OR_RETURN(TreeBuffer tree, BuildSubTree(prepared, text_length));
  return EmitBuiltSubTree(options, group_id, k, std::move(prepared.prefix),
                          static_cast<uint64_t>(prepared.leaves.size()),
                          std::move(tree), out, writer);
}

StatusOr<uint64_t> EmitBuiltSubTree(const BuildOptions& options,
                                    uint64_t group_id, std::size_t k,
                                    std::string prefix, uint64_t frequency,
                                    TreeBuffer&& tree, GroupOutput* out,
                                    BackgroundSubTreeWriter* writer) {
  const uint64_t bytes = tree.MemoryBytes();
  std::string filename =
      "st_" + std::to_string(group_id) + "_" + std::to_string(k) + ".bin";
  std::string path = options.work_dir + "/" + filename;
  out->subtrees[k] = {prefix, frequency, std::move(filename)};
  if (writer != nullptr) {
    writer->Enqueue(std::move(path), std::move(prefix), std::move(tree));
  } else {
    ERA_RETURN_NOT_OK(WriteSubTree(options.GetEnv(), path, prefix, tree,
                                   &out->write_io));
  }
  return bytes;
}

Status ProcessGroup(const TextInfo& text, const BuildOptions& options,
                    const MemoryLayout& layout, const VirtualTree& group,
                    uint64_t group_id, StringReader* reader, GroupOutput* out,
                    BackgroundSubTreeWriter* writer) {
  RangePolicy policy = RangePolicy::FromOptions(options, layout.r_buffer_bytes);
  out->subtrees.resize(group.prefixes.size());

  if (options.horizontal == HorizontalMethod::kBranchEdge) {
    GroupStrBuilder builder(group, policy, reader, text.length);
    ERA_RETURN_NOT_OK(builder.Run());
    out->rounds = builder.stats().rounds;
    for (std::size_t k = 0; k < builder.results().size(); ++k) {
      auto& [prefix, tree] = builder.results()[k];
      ERA_ASSIGN_OR_RETURN(
          uint64_t bytes,
          EmitBuiltSubTree(options, group_id, k, prefix,
                           group.prefixes[k].frequency, std::move(tree), out,
                           writer));
      out->tree_bytes += bytes;
    }
  } else {
    GroupPreparer preparer(group, policy, reader, text.length);
    // Stream: a resolved prefix is built and handed to the writer while the
    // remaining prefixes are still scanning S (pipeline stages 2 and 3
    // overlap stage 1 even inside a single group).
    preparer.SetEmitCallback(
        [&](std::size_t k, PreparedSubTree&& prepared) -> Status {
          ERA_ASSIGN_OR_RETURN(
              uint64_t bytes,
              BuildAndEmitPrefix(options, text.length, group_id, k,
                                 std::move(prepared), out, writer));
          out->tree_bytes += bytes;
          return Status::OK();
        });
    ERA_RETURN_NOT_OK(preparer.Run());
    out->rounds = preparer.stats().rounds;
  }
  return Status::OK();
}

StatusOr<TreeIndex> AssembleIndex(const TextInfo& text,
                                  const BuildOptions& options,
                                  const PartitionPlan& plan,
                                  const std::vector<GroupOutput>& outputs) {
  TreeIndex index;
  index.SetText(text);
  for (const GroupOutput& output : outputs) {
    for (const auto& sub : output.subtrees) {
      uint32_t id = index.AddSubTree(sub.prefix, sub.frequency, sub.filename);
      ERA_RETURN_NOT_OK(
          index.mutable_trie().InsertSubTree(sub.prefix, id, sub.frequency));
    }
  }
  for (const auto& [prefix, position] : plan.terminal_leaves) {
    ERA_RETURN_NOT_OK(
        index.mutable_trie().InsertTerminalLeaf(prefix, position));
  }
  ERA_RETURN_NOT_OK(index.Save(options.GetEnv(), options.work_dir));
  ERA_ASSIGN_OR_RETURN(TreeIndex loaded,
                       TreeIndex::Load(options.GetEnv(), options.work_dir));
  return loaded;
}

StatusOr<BuildResult> EraBuilder::Build(const TextInfo& text) {
  WallTimer total_timer;
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options_));
  ERA_RETURN_NOT_OK(options_.GetEnv()->CreateDir(options_.work_dir));

  BuildStats stats;
  ERA_ASSIGN_OR_RETURN(MemoryLayout layout,
                       PlanMemory(options_, text.alphabet.size()));
  stats.fm = layout.fm;

  ERA_ASSIGN_OR_RETURN(PartitionPlan plan,
                       VerticalPartition(text, options_, layout.fm));
  stats.vertical_seconds = plan.seconds;
  stats.io.Add(plan.io);
  stats.num_groups = plan.groups.size();
  stats.num_subtrees = plan.NumSubTrees();

  WallTimer horizontal_timer;
  StringReaderOptions reader_options;
  reader_options.buffer_bytes = options_.input_buffer_bytes;
  reader_options.seek_optimization = options_.seek_optimization;
  reader_options.prefetch = options_.prefetch_reads;
  IoStats scan_stats;
  ERA_ASSIGN_OR_RETURN(auto reader,
                       OpenStringReader(options_.GetEnv(), text.path,
                                        reader_options, &scan_stats));

  std::vector<GroupOutput> outputs(plan.groups.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    ERA_RETURN_NOT_OK(ProcessGroup(text, options_, layout, plan.groups[g], g,
                                   reader.get(), &outputs[g]));
    stats.prepare_rounds += outputs[g].rounds;
    stats.peak_tree_bytes =
        std::max(stats.peak_tree_bytes, outputs[g].tree_bytes);
    stats.io.Add(outputs[g].write_io);
  }
  // A prefetching reader bills its residual speculative window at
  // destruction; tear it down before aggregating so nothing is lost.
  reader.reset();
  stats.io.Add(scan_stats);
  stats.horizontal_seconds = horizontal_timer.Seconds();

  BuildResult result;
  ERA_ASSIGN_OR_RETURN(result.index,
                       AssembleIndex(text, options_, plan, outputs));
  stats.total_seconds = total_timer.Seconds();
  result.stats = stats;
  return result;
}

}  // namespace era
