#include "era/era_builder.h"

#include <algorithm>
#include <sstream>

#include "common/timer.h"
#include "era/branch_edge.h"
#include "era/build_subtree.h"
#include "era/checkpoint.h"
#include "era/range_policy.h"
#include "era/subtree_prepare.h"
#include "era/subtree_writer.h"
#include "suffixtree/serializer.h"

namespace era {

std::string BuildStats::ToString() const {
  std::ostringstream os;
  os << "total=" << total_seconds << "s (vertical=" << vertical_seconds
     << "s horizontal=" << horizontal_seconds << "s) fm=" << fm
     << " groups=" << num_groups << " subtrees=" << num_subtrees
     << " rounds=" << prepare_rounds << " peak_tree=" << peak_tree_bytes
     << "B groups_resumed=" << groups_resumed
     << " subtrees_verified=" << subtrees_verified
     << " io_amplification=" << io_amplification()
     << " tile_hit_rate=" << tile_hit_rate()
     << " io{" << io.ToString() << "}";
  return os.str();
}

StatusOr<MemoryLayout> PlanMemoryForBuild(const BuildOptions& options,
                                          const TextInfo& text,
                                          unsigned num_workers) {
  ERA_ASSIGN_OR_RETURN(MemoryLayout layout,
                       PlanMemory(options, text.alphabet.size()));
  if (options.tile_cache_budget_bytes != 0 || layout.tile_cache_bytes == 0 ||
      num_workers == 0) {
    return layout;
  }
  TileCacheOptions defaults;
  const uint64_t tiles =
      (text.length + defaults.tile_bytes - 1) / defaults.tile_bytes;
  // Per-core share of a cache that holds the whole text, rounded up a tile
  // so the shares still sum past the file size.
  const uint64_t cap_per_core =
      std::max<uint64_t>(tiles, 1) * defaults.tile_bytes / num_workers +
      defaults.tile_bytes;
  if (layout.tile_cache_bytes <= cap_per_core) return layout;
  // More workers than the text needs cache: give the excess back to the
  // elastic range (fewer prepare rounds) instead of hoarding dead budget.
  BuildOptions capped = options;
  capped.tile_cache_budget_bytes = cap_per_core;
  return PlanMemory(capped, text.alphabet.size());
}

StatusOr<std::shared_ptr<TileCache>> OpenBuildTileCache(
    Env* env, const TextInfo& text, const MemoryLayout& layout,
    unsigned num_workers) {
  if (layout.tile_cache_bytes == 0) {
    return std::shared_ptr<TileCache>();
  }
  TileCacheOptions cache_options;
  // The cache is shared process-wide: its budget is the sum of the per-core
  // carves, capped at the (tile-rounded) file size — residency beyond the
  // whole text buys nothing.
  const uint64_t tiles =
      (text.length + cache_options.tile_bytes - 1) / cache_options.tile_bytes;
  cache_options.budget_bytes =
      std::min(layout.tile_cache_bytes * num_workers,
               std::max<uint64_t>(tiles, 1) * cache_options.tile_bytes);
  // Shards trade lock contention against budget granularity: each shard
  // strands up to one tile of its share. When the cache cannot hold the
  // whole file anyway (the partial-residency regime, where every stranded
  // tile is a per-pass device read), bytes win: use one shard. With the
  // whole file resident, contention wins: shard by size.
  const uint64_t rounded_file =
      std::max<uint64_t>(tiles, 1) * cache_options.tile_bytes;
  cache_options.shards =
      cache_options.budget_bytes < rounded_file
          ? 1
          : static_cast<uint32_t>(std::clamp<uint64_t>(
                cache_options.budget_bytes / (4 * cache_options.tile_bytes),
                1, 8));
  return TileCache::Open(env, text.path, cache_options);
}

void FoldTileCacheStats(const std::shared_ptr<TileCache>& cache,
                        BuildStats* stats) {
  if (cache == nullptr) return;
  const TileCache::Snapshot snapshot = cache->stats();
  stats->io.tile_hits += snapshot.hits;
  stats->io.tile_misses += snapshot.misses;
  stats->io.tile_device_bytes += snapshot.device_bytes_read;
  stats->io.tile_evicted_bytes += snapshot.evicted_bytes;
  stats->io.read_retries += snapshot.read_retries;
  // The cache's loads are the build's only device reads on cache-backed
  // paths; fold them into the canonical device-read total.
  stats->io.bytes_read += snapshot.device_bytes_read;
}

StatusOr<uint64_t> BuildAndEmitPrefix(const BuildOptions& options,
                                      uint64_t text_length, uint64_t group_id,
                                      std::size_t k, PreparedSubTree&& prepared,
                                      GroupOutput* out,
                                      BackgroundSubTreeWriter* writer,
                                      CheckpointManager* checkpoint,
                                      PhaseProfiler* profiler,
                                      unsigned worker) {
  WallTimer build_timer;
  ERA_ASSIGN_OR_RETURN(TreeBuffer tree, BuildSubTree(prepared, text_length));
  if (profiler != nullptr) {
    profiler->Record("build_subtree", worker, build_timer.Seconds());
  }
  return EmitBuiltSubTree(options, group_id, k, std::move(prepared.prefix),
                          static_cast<uint64_t>(prepared.leaves.size()),
                          std::move(tree), out, writer, checkpoint, profiler,
                          worker);
}

StatusOr<uint64_t> EmitBuiltSubTree(const BuildOptions& options,
                                    uint64_t group_id, std::size_t k,
                                    std::string prefix, uint64_t frequency,
                                    TreeBuffer&& tree, GroupOutput* out,
                                    BackgroundSubTreeWriter* writer,
                                    CheckpointManager* checkpoint,
                                    PhaseProfiler* profiler, unsigned worker) {
  const uint64_t bytes = tree.MemoryBytes();
  std::string filename = SubTreeFileName(group_id, k);
  std::string path = options.work_dir + "/" + filename;
  out->subtrees[k] = {prefix, frequency, std::move(filename)};
  if (writer != nullptr) {
    writer->Enqueue(std::move(path), std::move(prefix), std::move(tree),
                    checkpoint == nullptr
                        ? BackgroundSubTreeWriter::WriteDone()
                        : [checkpoint, group_id, k](const Status& s,
                                                    uint32_t file_crc) {
                            if (s.ok()) {
                              checkpoint->NoteSubTreeWritten(group_id, k,
                                                             file_crc);
                            }
                          });
  } else {
    WallTimer write_timer;
    uint32_t file_crc = 0;
    ERA_RETURN_NOT_OK(WriteSubTree(options.GetEnv(), path, prefix, tree,
                                   &out->write_io, &file_crc,
                                   options.format));
    if (profiler != nullptr) {
      profiler->Record("subtree_write", worker, write_timer.Seconds());
    }
    if (checkpoint != nullptr) {
      checkpoint->NoteSubTreeWritten(group_id, k, file_crc);
    }
  }
  return bytes;
}

void ReconstructGroupOutput(const VirtualTree& group, uint64_t group_id,
                            GroupOutput* out) {
  out->subtrees.resize(group.prefixes.size());
  for (std::size_t k = 0; k < group.prefixes.size(); ++k) {
    out->subtrees[k] = {group.prefixes[k].prefix,
                        group.prefixes[k].frequency,
                        SubTreeFileName(group_id, k)};
  }
}

Status ProcessGroup(const TextInfo& text, const BuildOptions& options,
                    const MemoryLayout& layout, const VirtualTree& group,
                    uint64_t group_id, StringReader* reader, GroupOutput* out,
                    BackgroundSubTreeWriter* writer,
                    CheckpointManager* checkpoint, PhaseProfiler* profiler,
                    unsigned worker) {
  RangePolicy policy = RangePolicy::FromOptions(options, layout.r_buffer_bytes);
  out->subtrees.resize(group.prefixes.size());

  if (options.horizontal == HorizontalMethod::kBranchEdge) {
    WallTimer fused_timer;
    GroupStrBuilder builder(group, policy, reader, text.length);
    ERA_RETURN_NOT_OK(builder.Run());
    if (profiler != nullptr) {
      profiler->Record("branch_edge", worker, fused_timer.Seconds());
    }
    out->rounds = builder.stats().rounds;
    for (std::size_t k = 0; k < builder.results().size(); ++k) {
      auto& [prefix, tree] = builder.results()[k];
      ERA_ASSIGN_OR_RETURN(
          uint64_t bytes,
          EmitBuiltSubTree(options, group_id, k, prefix,
                           group.prefixes[k].frequency, std::move(tree), out,
                           writer, checkpoint, profiler, worker));
      out->tree_bytes += bytes;
    }
  } else {
    GroupPreparer preparer(group, policy, reader, text.length);
    // Stream: a resolved prefix is built and handed to the writer while the
    // remaining prefixes are still scanning S (pipeline stages 2 and 3
    // overlap stage 1 even inside a single group). Build/write time spent
    // inside the emit callback is subtracted from the prepare phase so the
    // breakdown reflects the stages, not the call nesting.
    WallTimer prepare_timer;
    double nested_seconds = 0;
    preparer.SetEmitCallback(
        [&](std::size_t k, PreparedSubTree&& prepared) -> Status {
          WallTimer nested_timer;
          ERA_ASSIGN_OR_RETURN(
              uint64_t bytes,
              BuildAndEmitPrefix(options, text.length, group_id, k,
                                 std::move(prepared), out, writer,
                                 checkpoint, profiler, worker));
          out->tree_bytes += bytes;
          nested_seconds += nested_timer.Seconds();
          return Status::OK();
        });
    ERA_RETURN_NOT_OK(preparer.Run());
    if (profiler != nullptr) {
      profiler->Record(
          "prepare", worker,
          std::max(0.0, prepare_timer.Seconds() - nested_seconds));
    }
    out->rounds = preparer.stats().rounds;
  }
  return Status::OK();
}

StatusOr<TreeIndex> AssembleIndex(const TextInfo& text,
                                  const BuildOptions& options,
                                  const PartitionPlan& plan,
                                  const std::vector<GroupOutput>& outputs) {
  TreeIndex index;
  index.SetText(text);
  for (const GroupOutput& output : outputs) {
    for (const auto& sub : output.subtrees) {
      uint32_t id = index.AddSubTree(sub.prefix, sub.frequency, sub.filename);
      ERA_RETURN_NOT_OK(
          index.mutable_trie().InsertSubTree(sub.prefix, id, sub.frequency));
    }
  }
  for (const auto& [prefix, position] : plan.terminal_leaves) {
    ERA_RETURN_NOT_OK(
        index.mutable_trie().InsertTerminalLeaf(prefix, position));
  }
  ERA_RETURN_NOT_OK(index.Save(options.GetEnv(), options.work_dir));
  ERA_ASSIGN_OR_RETURN(TreeIndex loaded,
                       TreeIndex::Load(options.GetEnv(), options.work_dir));
  return loaded;
}

StatusOr<BuildResult> EraBuilder::Build(const TextInfo& text) {
  WallTimer total_timer;
  ERA_RETURN_NOT_OK(ValidateBuildOptions(options_));
  ERA_RETURN_NOT_OK(options_.GetEnv()->CreateDir(options_.work_dir));

  BuildStats stats;
  stats.text_bytes = text.length;
  ERA_ASSIGN_OR_RETURN(MemoryLayout layout,
                       PlanMemoryForBuild(options_, text, /*num_workers=*/1));
  stats.fm = layout.fm;

  ERA_ASSIGN_OR_RETURN(
      std::shared_ptr<TileCache> tile_cache,
      OpenBuildTileCache(options_.GetEnv(), text, layout, /*num_workers=*/1));

  PhaseProfiler profiler;
  ERA_ASSIGN_OR_RETURN(
      PartitionPlan plan,
      VerticalPartition(text, options_, layout.fm, tile_cache));
  stats.vertical_seconds = plan.seconds;
  profiler.Record("vertical_partition", 0, plan.seconds);
  stats.io.Add(plan.io);
  stats.num_groups = plan.groups.size();
  stats.num_subtrees = plan.NumSubTrees();

  WallTimer horizontal_timer;
  StringReaderOptions reader_options;
  reader_options.buffer_bytes = options_.input_buffer_bytes;
  reader_options.seek_optimization = options_.seek_optimization;
  reader_options.prefetch = layout.read_ahead_bytes > 0;
  reader_options.prefetch_depth = static_cast<uint32_t>(
      layout.read_ahead_bytes / layout.input_buffer_bytes);
  reader_options.tile_cache = tile_cache;
  IoStats scan_stats;
  ERA_ASSIGN_OR_RETURN(auto reader,
                       OpenStringReader(options_.GetEnv(), text.path,
                                        reader_options, &scan_stats));

  const CheckpointFingerprint fingerprint{text.length, layout.fm,
                                          plan.groups.size(),
                                          plan.NumSubTrees()};
  ResumePlan resume;
  resume.group_done.assign(plan.groups.size(), 0);
  if (options_.resume) {
    resume = PlanResume(options_.GetEnv(), options_.work_dir, fingerprint,
                        plan);
    stats.groups_resumed = resume.groups_skipped;
    stats.subtrees_verified = resume.subtrees_verified;
  }

  std::unique_ptr<CheckpointManager> checkpoint;
  if (options_.checkpoint) {
    std::vector<uint64_t> group_sizes(plan.groups.size());
    for (std::size_t g = 0; g < plan.groups.size(); ++g) {
      group_sizes[g] = plan.groups[g].prefixes.size();
    }
    checkpoint = std::make_unique<CheckpointManager>(
        options_.GetEnv(), options_.work_dir, fingerprint,
        std::move(group_sizes));
    for (std::size_t g = 0; g < plan.groups.size(); ++g) {
      if (resume.group_done[g]) {
        checkpoint->MarkGroupVerified(g, resume.group_crcs[g]);
      }
    }
  }

  std::vector<GroupOutput> outputs(plan.groups.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    if (resume.group_done[g]) {
      ReconstructGroupOutput(plan.groups[g], g, &outputs[g]);
      continue;
    }
    ERA_RETURN_NOT_OK(ProcessGroup(text, options_, layout, plan.groups[g], g,
                                   reader.get(), &outputs[g],
                                   /*writer=*/nullptr, checkpoint.get(),
                                   &profiler, /*worker=*/0));
    stats.prepare_rounds += outputs[g].rounds;
    stats.peak_tree_bytes =
        std::max(stats.peak_tree_bytes, outputs[g].tree_bytes);
    stats.io.Add(outputs[g].write_io);
  }
  // A prefetching reader bills its residual speculative windows at
  // destruction; tear it down before aggregating so nothing is lost.
  reader.reset();
  stats.io.Add(scan_stats);
  FoldTileCacheStats(tile_cache, &stats);
  stats.horizontal_seconds = horizontal_timer.Seconds();

  BuildResult result;
  WallTimer assemble_timer;
  ERA_ASSIGN_OR_RETURN(result.index,
                       AssembleIndex(text, options_, plan, outputs));
  profiler.Record("assemble_index", 0, assemble_timer.Seconds());
  stats.total_seconds = total_timer.Seconds();
  stats.phases = profiler.Entries();
  result.stats = stats;
  return result;
}

}  // namespace era
