// Memory allocation plan (Figure 6 of the paper).
//
// ERA divides the budget into: the retrieved-data area (input buffer B_S, the
// next-symbol buffer R, a small trie area), the suffix-tree area MTS (~60% of
// what remains), and the processing area (arrays L and B, ~40%). I, A and P
// live inside the tree area: they are only needed by SubTreePrepare, and
// BuildSubTree — which is what fills the tree area — runs afterwards and only
// needs L and B, so the regions can safely overlap.
//
// FM (Equation 1) is MTS / (2 * sizeof(TreeNode)), further constrained by the
// per-leaf processing footprint.

#ifndef ERA_ERA_MEMORY_LAYOUT_H_
#define ERA_ERA_MEMORY_LAYOUT_H_

#include <cstdint>

#include "common/options.h"
#include "common/status.h"

namespace era {

/// Resolved allocation of one builder's memory budget.
struct MemoryLayout {
  uint64_t input_buffer_bytes = 0;  // B_S (the resident scan window)
  /// Speculative windows of the prefetch ring, carved from the
  /// retrieved-data slack after the tile cache (whole windows, up to
  /// input_buffer_bytes * prefetch_depth). Zero disables read-ahead:
  /// either it was requested off, or the cache consumed the slack —
  /// charged here so the read path never silently exceeds the budget.
  uint64_t read_ahead_bytes = 0;
  uint64_t r_buffer_bytes = 0;      // R
  /// This core's share of the shared input-text tile cache (io/tile_cache.h).
  /// Carved out of the retrieved-data slack (R above its floor, then the
  /// trie area above its floor), never out of the tree/processing areas,
  /// so enabling the cache shrinks the elastic range but leaves FM — and
  /// with it the partition plan and the emitted index bytes — unchanged.
  uint64_t tile_cache_bytes = 0;
  uint64_t trie_bytes = 0;          // top-level trie area
  uint64_t tree_area_bytes = 0;     // MTS (sub-tree nodes; hosts I/A/P too)
  uint64_t processing_bytes = 0;    // L + B
  /// Maximum sub-tree frequency that fits (Equation 1 + processing bound).
  uint64_t fm = 0;

  uint64_t total() const {
    return input_buffer_bytes + read_ahead_bytes + r_buffer_bytes +
           tile_cache_bytes + trie_bytes + tree_area_bytes +
           processing_bytes;
  }
};

/// Per-leaf footprint in the processing area: L (8 bytes) + B (16 bytes) +
/// elastic-range slack for R bookkeeping (8 bytes).
inline constexpr uint64_t kProcessingBytesPerLeaf = 32;

/// Per-leaf footprint in the tree area: 2 nodes of 32 bytes (the paper's
/// 2 * f_p * sizeof(tree node)); I/A/P (24 bytes/leaf) overlap this and are
/// strictly smaller, so they do not constrain FM.
inline constexpr uint64_t kTreeBytesPerLeaf = 64;

/// Computes the layout for `options` and `alphabet_size`. Fails with
/// OutOfBudget if the fixed areas leave no room for trees.
StatusOr<MemoryLayout> PlanMemory(const BuildOptions& options,
                                  int alphabet_size);

/// WaveFront's allocation for the same budget (Section 3 / Section 6.1): the
/// two nested-loop buffers take ~50% of memory and the sub-tree the rest, so
/// WaveFront's FM is lower than ERA's for the same budget.
StatusOr<MemoryLayout> PlanMemoryWaveFront(const BuildOptions& options,
                                           int alphabet_size);

}  // namespace era

#endif  // ERA_ERA_MEMORY_LAYOUT_H_
