#include "era/branch_edge.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "text/aho_corasick.h"

namespace era {

GroupStrBuilder::GroupStrBuilder(const VirtualTree& group,
                                 const RangePolicy& policy,
                                 StringReader* reader, uint64_t text_length)
    : group_(group),
      policy_(policy),
      reader_(reader),
      text_length_(text_length) {}

void GroupStrBuilder::CloseLeaf(State* state, uint32_t node,
                                uint64_t parent_depth, uint64_t pos) {
  TreeNode& n = state->tree.node(node);
  n.edge_start = pos + parent_depth;
  n.edge_len = static_cast<uint32_t>(text_length_ - pos - parent_depth);
  n.leaf_id = pos;
}

Status GroupStrBuilder::CheckEdgeLimit() const {
  // Every edge label is a substring of S, so text_length_ fitting in the
  // 32-bit TreeNode field bounds every edge_len this module assigns
  // (CloseLeaf tails and the incremental open-edge extensions alike) —
  // the same 4 GiB node-format limit BuildSubTree enforces per edge.
  if (text_length_ > std::numeric_limits<uint32_t>::max()) {
    return Status::Internal(
        "text length " + std::to_string(text_length_) +
        " exceeds the 32-bit tree-node edge limit; the BranchEdge method "
        "cannot represent its leaf edges");
  }
  return Status::OK();
}

Status GroupStrBuilder::Run() {
  ERA_RETURN_NOT_OK(CheckEdgeLimit());
  // One shared scan finds the occurrence lists of every prefix in the group.
  std::vector<std::string> patterns;
  states_.resize(group_.prefixes.size());
  for (std::size_t i = 0; i < group_.prefixes.size(); ++i) {
    patterns.push_back(group_.prefixes[i].prefix);
    states_[i].prefix = group_.prefixes[i].prefix;
  }
  ERA_ASSIGN_OR_RETURN(auto matcher, AhoCorasick::Build(patterns));
  std::vector<std::vector<uint64_t>> occurrences(states_.size());
  ERA_RETURN_NOT_OK(matcher.ScanAll(reader_, [&](int32_t id, uint64_t pos) {
    occurrences[static_cast<std::size_t>(id)].push_back(pos);
  }));

  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& state = states_[i];
    auto& occ = occurrences[i];
    if (occ.empty()) {
      return Status::Internal("prefix without occurrences: " + state.prefix);
    }
    // ComputeSuffixSubTree: a single edge labeled with the prefix.
    uint32_t child = state.tree.AddNode();
    TreeNode& node = state.tree.node(child);
    node.edge_start = occ[0];
    node.edge_len = static_cast<uint32_t>(state.prefix.size());
    state.tree.node(0).first_child = child;
    if (occ.size() == 1) {
      CloseLeaf(&state, child, 0, occ[0]);
    } else {
      state.open.push_back({child, state.prefix.size(), std::move(occ)});
    }
  }

  // Level-synchronous BranchEdge rounds with one merged scan per round.
  std::vector<char> windows;
  std::vector<uint32_t> window_len;
  std::vector<FetchRequest> requests;
  while (true) {
    uint64_t total_active = 0;
    for (const State& state : states_) {
      for (const OpenEdge& e : state.open) total_active += e.positions.size();
    }
    if (total_active == 0) break;
    ++stats_.rounds;
    const uint32_t range = policy_.NextRange(total_active);

    // Merged fetch: requests are (position + depth) over all open edges,
    // sorted into one monotone stream and served by a single batched pass
    // over the input buffer.
    windows.assign(total_active * range, 0);
    window_len.assign(total_active, 0);
    requests.clear();
    requests.reserve(total_active);
    uint64_t flat = 0;
    for (State& state : states_) {
      for (OpenEdge& e : state.open) {
        for (uint64_t q : e.positions) {
          requests.push_back(
              {q + e.depth, range, windows.data() + flat * range, 0});
          ++flat;
        }
      }
    }
    std::sort(requests.begin(), requests.end(),
              [](const FetchRequest& a, const FetchRequest& b) {
                return a.pos < b.pos;
              });
    reader_->BeginScan();
    ERA_RETURN_NOT_OK(reader_->FetchBatch(requests));
    for (const FetchRequest& request : requests) {
      uint64_t index =
          static_cast<uint64_t>(request.out - windows.data()) / range;
      window_len[index] = request.got;
      stats_.symbols_fetched += request.got;
    }

    // Process each open edge: extend, branch, or settle leaves.
    flat = 0;
    for (State& state : states_) {
      std::vector<OpenEdge> next_open;
      for (OpenEdge& e : state.open) {
        const uint64_t base = flat;
        flat += e.positions.size();
        auto window_of = [&](std::size_t j) {
          return std::pair<const char*, uint32_t>(
              windows.data() + (base + j) * range, window_len[base + j]);
        };

        // Common prefix length of all windows (set Y generalized to ranges).
        auto [w0, l0] = window_of(0);
        uint32_t cl = l0;
        for (std::size_t j = 1; j < e.positions.size() && cl > 0; ++j) {
          auto [wj, lj] = window_of(j);
          uint32_t m = std::min(cl, lj);
          uint32_t k = 0;
          while (k < m && w0[k] == wj[k]) ++k;
          cl = k;
        }

        TreeNode& node = state.tree.node(e.node);
        if (cl == range) {
          // Proposition 1 case 2: the whole fetched range is shared; extend
          // the edge and keep it open.
          node.edge_len += range;
          e.depth += range;
          next_open.push_back(std::move(e));
          continue;
        }

        // Extend by the shared part, then branch on the next symbol
        // (Proposition 1 case 3).
        node.edge_len += cl;
        const uint64_t branch_depth = e.depth + cl;

        // Order positions by branch symbol (stable: keeps string order
        // inside each group).
        std::vector<std::size_t> order(e.positions.size());
        for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return window_of(a).first[cl] <
                                  window_of(b).first[cl];
                         });

        uint32_t prev_child = kNilNode;
        std::size_t g = 0;
        while (g < order.size()) {
          char symbol = window_of(order[g]).first[cl];
          std::size_t h = g;
          std::vector<uint64_t> members;
          while (h < order.size() && window_of(order[h]).first[cl] == symbol) {
            members.push_back(e.positions[order[h]]);
            ++h;
          }
          uint32_t child = state.tree.AddNode();
          TreeNode& child_node = state.tree.node(child);
          child_node.edge_start = members[0] + branch_depth;
          child_node.edge_len = 1;
          if (prev_child == kNilNode) {
            state.tree.node(e.node).first_child = child;
          } else {
            state.tree.node(prev_child).next_sibling = child;
          }
          prev_child = child;
          if (members.size() == 1) {
            CloseLeaf(&state, child, branch_depth, members[0]);
          } else {
            next_open.push_back({child, branch_depth + 1, std::move(members)});
          }
          g = h;
        }
      }
      state.open = std::move(next_open);
    }
  }

  results_.clear();
  for (State& state : states_) {
    results_.emplace_back(std::move(state.prefix), std::move(state.tree));
  }
  return Status::OK();
}

}  // namespace era
