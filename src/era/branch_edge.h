// ERA-str: Algorithms ComputeSuffixSubTree / BranchEdge (Section 4.2.1).
//
// The string-access-optimized horizontal partitioning: the sub-tree is grown
// level by level, one merged sequential scan of S per iteration, reading a
// range of symbols per unresolved branch. Unlike SubTreePrepare/BuildSubTree
// (Section 4.2.2), the tree is updated *during* the scan loop — the paper
// measures this as significantly slower due to scattered memory accesses
// (Figure 7), which is exactly what this implementation exhibits.

#ifndef ERA_ERA_BRANCH_EDGE_H_
#define ERA_ERA_BRANCH_EDGE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "era/range_policy.h"
#include "era/vertical_partitioner.h"
#include "io/string_reader.h"
#include "suffixtree/tree_buffer.h"

namespace era {

/// Counters for one group's ERA-str construction.
struct StrBuildStats {
  uint32_t rounds = 0;
  uint64_t symbols_fetched = 0;
};

/// Builds every sub-tree of a virtual tree with the iterative BranchEdge
/// method, sharing each scan of S across the whole group (optimization 3 of
/// Section 4.2.1).
class GroupStrBuilder {
 public:
  GroupStrBuilder(const VirtualTree& group, const RangePolicy& policy,
                  StringReader* reader, uint64_t text_length);

  Status Run();

  /// (prefix, sub-tree) pairs in group order. Valid after Run().
  std::vector<std::pair<std::string, TreeBuffer>>& results() {
    return results_;
  }
  const StrBuildStats& stats() const { return stats_; }

 private:
  /// An edge still being extended/branched, with the suffix occurrences
  /// whose paths run through it.
  struct OpenEdge {
    uint32_t node = 0;
    uint64_t depth = 0;  // string depth at the edge's lower end
    std::vector<uint64_t> positions;
  };

  struct State {
    std::string prefix;
    TreeBuffer tree;
    std::vector<OpenEdge> open;
  };

  /// Turns `node` into the leaf for suffix `pos` (extends the edge label to
  /// the end of the string).
  void CloseLeaf(State* state, uint32_t node, uint64_t parent_depth,
                 uint64_t pos);

  /// Rejects inputs whose edges cannot fit the 32-bit node field (every
  /// edge label is a substring of S, so checking text_length_ once covers
  /// all assignments).
  Status CheckEdgeLimit() const;

  const VirtualTree& group_;
  RangePolicy policy_;
  StringReader* reader_;
  uint64_t text_length_;
  std::vector<State> states_;
  std::vector<std::pair<std::string, TreeBuffer>> results_;
  StrBuildStats stats_;
};

}  // namespace era

#endif  // ERA_ERA_BRANCH_EDGE_H_
