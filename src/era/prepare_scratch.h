// Reusable working memory for the SubTreePrepare hot path.
//
// GroupPreparer::RunRound used to allocate ~8 fresh std::vectors per active
// area per round (window storage, sort records, permutation temporaries).
// PrepareScratch hoists all of that into one arena owned by the preparer:
// BeginRound() sizes every buffer for the round's total active leaf count and
// widest area, reusing capacity from previous rounds. In steady state no
// round performs any heap allocation: the elastic range keeps
// active_count * range bounded by the R budget while both factors drift, so
// the high-water marks are established within the first couple of rounds.
//
// The `allocations()` counter ticks once per buffer growth event; tests pin
// the hot path's allocation-freedom by asserting it stops moving after the
// first round.

#ifndef ERA_ERA_PREPARE_SCRATCH_H_
#define ERA_ERA_PREPARE_SCRATCH_H_

#include <cstdint>
#include <vector>

#include "io/string_reader.h"

namespace era {

/// One sort-key record: the next (up to) 8 window symbols, big-endian, and
/// the slot they belong to. Radix passes consume the key bytes most
/// significant first; ties reload the key from deeper in the window.
struct WindowSortRec {
  uint64_t key = 0;
  uint32_t slot = 0;
};

class PrepareScratch {
 public:
  /// Sizes every buffer for one round. `total_active` is the group-wide
  /// active leaf count, `range` the symbols fetched per leaf, `max_area` the
  /// widest single active area.
  void BeginRound(uint64_t total_active, uint32_t range, uint64_t max_area);

  /// Number of buffer-growth events since construction.
  uint64_t allocations() const { return allocations_; }

  // Shared window arena: one slab for every state of the group. A state's
  // window for compact index c lives at (window_base + c) * range.
  std::vector<char> windows;
  std::vector<uint32_t> window_len;

  // The merged fetch stream and, parallel to it, the global compact index
  // each request fills (FetchRequest carries no user tag).
  std::vector<FetchRequest> requests;
  std::vector<uint64_t> request_compact;

  // Radix sort records for one area.
  std::vector<WindowSortRec> sort_records;

  // Permutation temporaries for one area. Windows are never moved: the
  // permutation is applied to L, P and the slot->compact map, so a round
  // costs zero window byte copies.
  std::vector<uint64_t> perm_l;
  std::vector<uint64_t> perm_p;
  std::vector<uint32_t> perm_compact;

  // Next round's active areas for the state being processed.
  std::vector<std::pair<uint32_t, uint32_t>> area_tmp;

 private:
  /// resize() that counts capacity growth (the allocation events the hot
  /// path must not produce in steady state).
  template <typename V>
  void Size(V* vec, std::size_t n) {
    if (vec->capacity() < n) ++allocations_;
    vec->resize(n);
  }

  uint64_t allocations_ = 0;
};

}  // namespace era

#endif  // ERA_ERA_PREPARE_SCRATCH_H_
