// The full disk-resident suffix-tree index: trie + sub-tree files + manifest.
//
// Every construction algorithm in this repository (ERA, WaveFront, B2ST,
// TRELLIS) produces a TreeIndex, so validation, canonicalization and the
// query engine are shared.
//
// The reading side serves sub-trees through a sharded, byte-budgeted LRU
// cache of ServedSubTree values: v3 files stay in their compressed form (the
// cache charges the packed size, which is what fits 2-4x more sub-trees in
// the same budget), v1/v2 files load as counted trees. Lookups lock only
// their shard, loads run outside any lock, and entries are handed out as
// shared_ptr so an eviction never invalidates a tree an in-flight query is
// still walking. Pattern-to-sub-tree routing goes through a flat k-mer
// dispatch table built over the trie at Load time (Route()).

#ifndef ERA_SUFFIXTREE_TREE_INDEX_H_
#define ERA_SUFFIXTREE_TREE_INDEX_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "io/retry_policy.h"
#include "suffixtree/compressed_tree.h"
#include "suffixtree/tree_buffer.h"
#include "suffixtree/trie.h"
#include "text/corpus.h"

namespace era {

/// One serialized sub-tree in the manifest.
struct SubTreeEntry {
  std::string prefix;
  uint64_t frequency = 0;  // leaf count
  std::string filename;    // relative to the index directory
};

/// Tuning knobs for the sub-tree cache.
struct TreeCacheOptions {
  /// Total bytes of resident sub-trees across all shards. A shard evicts
  /// from its LRU end once it exceeds its share (budget / shards), but never
  /// below one resident entry, so a single oversized sub-tree still caches.
  uint64_t budget_bytes = 64ull << 20;
  /// Number of independently locked shards (sub-tree id modulo shards).
  uint32_t shards = 8;
  /// Retry schedule for sub-tree loads. Only IOError is retried; a
  /// Corruption (bad checksum) fails immediately and is never cached.
  RetryPolicy retry;
};

/// Disk layout:
///   <dir>/MANIFEST   key:value text lines + serialized trie blob
///   <dir>/st_<id>    sub-tree files (serializer.h format)
class TreeIndex {
 public:
  TreeIndex() = default;

  // ---- building side ----
  void SetText(const TextInfo& text) { text_ = text; }
  /// Registers a sub-tree file; returns its id.
  uint32_t AddSubTree(const std::string& prefix, uint64_t frequency,
                      const std::string& filename);
  PrefixTrie& mutable_trie() { return trie_; }

  /// Writes MANIFEST into `dir` (sub-tree files must already be there).
  Status Save(Env* env, const std::string& dir) const;

  // ---- reading side ----
  static StatusOr<TreeIndex> Load(Env* env, const std::string& dir);

  /// Reads (and caches) sub-tree `id` in its serving form (compressed for
  /// v3 files, counted for v1/v2). Thread-safe; cache hits/misses and
  /// eviction volume are billed to `stats` when given. Concurrent misses on
  /// the same id may load the file more than once; exactly one copy is
  /// retained. `ctx` (may be null) is the caller's deadline/cancellation
  /// context: a cache hit always succeeds, but a miss checks it before
  /// touching the device and its retry backoffs never sleep past the
  /// deadline.
  StatusOr<std::shared_ptr<const ServedSubTree>> OpenSubTree(
      Env* env, uint32_t id, IoStats* stats,
      const QueryContext* ctx = nullptr) const;

  /// Routes `pattern` to its deepest trie node — one k-mer table probe in
  /// the common case, a trie map walk otherwise. Equivalent to
  /// trie().Descend(pattern).
  PrefixTrie::DescendResult Route(const std::string& pattern) const {
    return dispatch_.Route(trie_, pattern);
  }

  const KmerDispatchTable& dispatch() const { return dispatch_; }

  /// Replaces the cache with a fresh one using `options`. Call before
  /// serving traffic; NOT safe concurrently with OpenSubTree.
  void ConfigureCache(const TreeCacheOptions& options) const;

  /// Drops every cached sub-tree (memory control for sweeps). Thread-safe;
  /// in-flight queries keep their pinned trees alive. Not counted as LRU
  /// evictions.
  void EvictCache() const;

  /// Point-in-time cache totals across shards.
  struct CacheSnapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t evicted_bytes = 0;
    uint64_t resident_bytes = 0;
    uint64_t resident_trees = 0;
  };
  CacheSnapshot CacheStats() const;

  const TextInfo& text() const { return text_; }
  const PrefixTrie& trie() const { return trie_; }
  const std::vector<SubTreeEntry>& subtrees() const { return subtrees_; }
  const std::string& dir() const { return dir_; }

  /// Total number of suffixes indexed (sub-tree frequencies + direct
  /// leaves); equals text().length when the index is complete.
  uint64_t TotalSuffixes() const;

 private:
  struct Shard {
    std::mutex mutex;
    /// Most-recently-used at the front.
    std::list<uint32_t> lru;
    struct Entry {
      std::shared_ptr<const ServedSubTree> tree;
      std::list<uint32_t>::iterator pos;
      uint64_t bytes = 0;
    };
    std::unordered_map<uint32_t, Entry> entries;
    uint64_t resident_bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t evicted_bytes = 0;
  };
  // Cache state lives behind a pointer so TreeIndex stays movable despite
  // the shard mutexes.
  struct Cache {
    explicit Cache(const TreeCacheOptions& opts)
        : options(opts),
          shards(opts.shards == 0 ? 1 : opts.shards),
          per_shard_budget(options.budget_bytes /
                           (opts.shards == 0 ? 1 : opts.shards)) {}
    TreeCacheOptions options;
    std::vector<Shard> shards;
    uint64_t per_shard_budget;
  };

  TextInfo text_;
  PrefixTrie trie_;
  KmerDispatchTable dispatch_;
  std::vector<SubTreeEntry> subtrees_;
  std::string dir_;
  mutable std::shared_ptr<Cache> cache_ =
      std::make_shared<Cache>(TreeCacheOptions{});
};

}  // namespace era

#endif  // ERA_SUFFIXTREE_TREE_INDEX_H_
