// The full disk-resident suffix-tree index: trie + sub-tree files + manifest.
//
// Every construction algorithm in this repository (ERA, WaveFront, B2ST,
// TRELLIS) produces a TreeIndex, so validation, canonicalization and the
// query engine are shared.

#ifndef ERA_SUFFIXTREE_TREE_INDEX_H_
#define ERA_SUFFIXTREE_TREE_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "suffixtree/tree_buffer.h"
#include "suffixtree/trie.h"
#include "text/corpus.h"

namespace era {

/// One serialized sub-tree in the manifest.
struct SubTreeEntry {
  std::string prefix;
  uint64_t frequency = 0;  // leaf count
  std::string filename;    // relative to the index directory
};

/// Disk layout:
///   <dir>/MANIFEST   key:value text lines + serialized trie blob
///   <dir>/st_<id>    sub-tree files (serializer.h format)
class TreeIndex {
 public:
  TreeIndex() = default;

  // ---- building side ----
  void SetText(const TextInfo& text) { text_ = text; }
  /// Registers a sub-tree file; returns its id.
  uint32_t AddSubTree(const std::string& prefix, uint64_t frequency,
                      const std::string& filename);
  PrefixTrie& mutable_trie() { return trie_; }

  /// Writes MANIFEST into `dir` (sub-tree files must already be there).
  Status Save(Env* env, const std::string& dir) const;

  // ---- reading side ----
  static StatusOr<TreeIndex> Load(Env* env, const std::string& dir);

  /// Reads (and caches) sub-tree `id`. Thread-safe.
  StatusOr<std::shared_ptr<const TreeBuffer>> OpenSubTree(Env* env,
                                                          uint32_t id,
                                                          IoStats* stats) const;

  /// Drops cached sub-trees (memory control for sweeps).
  void EvictCache() const;

  const TextInfo& text() const { return text_; }
  const PrefixTrie& trie() const { return trie_; }
  const std::vector<SubTreeEntry>& subtrees() const { return subtrees_; }
  const std::string& dir() const { return dir_; }

  /// Total number of suffixes indexed (sub-tree frequencies + direct
  /// leaves); equals text().length when the index is complete.
  uint64_t TotalSuffixes() const;

 private:
  // Cache state lives behind a pointer so TreeIndex stays movable despite
  // the mutex.
  struct Cache {
    std::mutex mutex;
    std::unordered_map<uint32_t, std::shared_ptr<const TreeBuffer>> trees;
  };

  TextInfo text_;
  PrefixTrie trie_;
  std::vector<SubTreeEntry> subtrees_;
  std::string dir_;
  std::shared_ptr<Cache> cache_ = std::make_shared<Cache>();
};

}  // namespace era

#endif  // ERA_SUFFIXTREE_TREE_INDEX_H_
