// Top-level trie connecting the sub-trees (Section 4, Figure 3).
//
// Vertical partitioning produces a set of variable-length S-prefixes; the
// trie routes a query prefix to the sub-tree that indexes it. It also holds
// the "direct leaves": suffixes of the form p$ that fall out when a prefix p
// is split during partitioning (the paper's singleton sub-trees like T$).
// The trie is tiny (KBs for the human genome) and always memory-resident.

#ifndef ERA_SUFFIXTREE_TRIE_H_
#define ERA_SUFFIXTREE_TRIE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace era {

/// Mutable prefix trie with per-node sub-tree references and direct leaves.
class PrefixTrie {
 public:
  struct Node {
    std::map<char, uint32_t> children;
    /// Sub-tree indexing all suffixes that start with this node's path;
    /// -1 if none. A node with a sub-tree reference has no children.
    int32_t subtree_id = -1;
    /// Frequency (leaf count) of the referenced sub-tree.
    uint64_t subtree_freq = 0;
    /// Direct leaf: position of the unique suffix path+terminal, or -1.
    int64_t terminal_leaf = -1;
  };

  PrefixTrie() : nodes_(1) {}

  /// Registers sub-tree `subtree_id` for `prefix`.
  Status InsertSubTree(const std::string& prefix, uint32_t subtree_id,
                       uint64_t frequency);

  /// Registers the direct leaf for suffix prefix+terminal at `position`.
  /// An empty prefix registers the terminal-only suffix (position n).
  Status InsertTerminalLeaf(const std::string& prefix, uint64_t position);

  /// Result of walking the trie with a pattern.
  struct DescendResult {
    /// Deepest trie node reached.
    uint32_t node = 0;
    /// Symbols of the pattern consumed by the walk.
    std::size_t matched = 0;
    /// True if the entire pattern was consumed inside the trie.
    bool pattern_exhausted = false;
  };

  /// Walks `pattern` from the root as far as the trie goes. If the walk stops
  /// at a node holding a sub-tree reference, the caller continues inside that
  /// sub-tree with the remaining pattern suffix.
  DescendResult Descend(const std::string& pattern) const;

  const Node& node(uint32_t i) const { return nodes_[i]; }
  uint32_t size() const { return static_cast<uint32_t>(nodes_.size()); }

  /// Sum of sub-tree frequencies and terminal leaves under `node` (number of
  /// suffixes sharing the node's path as a prefix).
  uint64_t TotalFrequency(uint32_t node) const;

  /// Collects, in lexicographic order, the sub-tree ids and terminal-leaf
  /// positions under `node`. Lexicographic means: at each node, children by
  /// symbol first, then the terminal leaf (the terminal sorts last).
  void CollectInOrder(uint32_t node, std::vector<int32_t>* subtree_ids,
                      std::vector<uint64_t>* terminal_leaves) const;

  /// One element of the interleaved lexicographic stream under a node:
  /// either a sub-tree reference or a direct terminal leaf.
  struct Entry {
    int32_t subtree_id = -1;     // >= 0 for sub-tree entries
    uint64_t leaf_position = 0;  // valid when subtree_id < 0
  };

  /// Emits sub-trees and terminal leaves under `node` as one lexicographic
  /// stream (the global suffix order of the index).
  void CollectEntries(uint32_t node, std::vector<Entry>* entries) const;

  /// Serialization to/from a flat byte string (stored in the index manifest).
  std::string Serialize() const;
  static StatusOr<PrefixTrie> Deserialize(const std::string& bytes);

  /// Rough memory footprint (for the "trie area" budget accounting).
  uint64_t MemoryBytes() const;

 private:
  /// Returns the node for `prefix`, creating intermediate nodes.
  uint32_t GetOrCreate(const std::string& prefix);

  std::vector<Node> nodes_;
};

/// Flat k-mer dispatch over the trie's top layer: one slot per length-k
/// alphabet string holding the precomputed Descend result for that k-mer, so
/// routing a pattern costs one array probe (plus a short map walk only when
/// the trie is deeper than k). Correct because the trie walk over the first
/// k symbols never depends on later symbols.
///
/// k is chosen from the vertical partitioner's prefix lengths — the trie's
/// maximum depth — capped so the table stays <= kMaxSlots entries (a few MB
/// at most; tiny next to the sub-tree cache). Patterns shorter than k, or
/// containing a symbol outside the alphabet, fall back to the map walk.
class KmerDispatchTable {
 public:
  /// Precomputes the table for `trie` over `alphabet_symbols` (each symbol
  /// distinct). An empty alphabet or depth-0 trie disables the table (Route
  /// degrades to PrefixTrie::Descend).
  void Build(const PrefixTrie& trie, const std::string& alphabet_symbols);

  /// Drop-in replacement for trie.Descend(pattern).
  PrefixTrie::DescendResult Route(const PrefixTrie& trie,
                                  const std::string& pattern) const;

  bool enabled() const { return k_ > 0; }
  uint32_t k() const { return k_; }
  uint32_t sigma() const { return sigma_; }
  uint64_t slot_count() const { return slots_.size(); }
  uint64_t MemoryBytes() const {
    return slots_.size() * sizeof(Slot) + sizeof(*this);
  }

  /// Largest permitted sigma^k (2^18 slots = 2 MB of table).
  static constexpr uint64_t kMaxSlots = 1ull << 18;

 private:
  struct Slot {
    uint32_t node = 0;     // deepest trie node for this k-mer
    uint32_t matched = 0;  // symbols consumed (< k when the walk stopped)
  };

  std::array<int16_t, 256> code_{};  // symbol -> dense code, -1 if uncoded
  std::vector<Slot> slots_;          // sigma^k entries, row-major by symbol
  uint32_t k_ = 0;
  uint32_t sigma_ = 0;
};

}  // namespace era

#endif  // ERA_SUFFIXTREE_TRIE_H_
