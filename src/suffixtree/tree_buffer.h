// Append-only node arena for one sub-tree.

#ifndef ERA_SUFFIXTREE_TREE_BUFFER_H_
#define ERA_SUFFIXTREE_TREE_BUFFER_H_

#include <cstdint>
#include <vector>

#include "suffixtree/node.h"

namespace era {

/// Growable array of TreeNodes. Node 0 is always the root. The buffer only
/// provides storage and navigation; builders maintain the sibling ordering
/// invariant (lexicographic by first edge symbol).
class TreeBuffer {
 public:
  TreeBuffer() { nodes_.emplace_back(); }

  /// Appends a fresh node, returning its index.
  uint32_t AddNode() {
    nodes_.emplace_back();
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  TreeNode& node(uint32_t i) { return nodes_[i]; }
  const TreeNode& node(uint32_t i) const { return nodes_[i]; }

  uint32_t size() const { return static_cast<uint32_t>(nodes_.size()); }
  uint64_t MemoryBytes() const { return nodes_.size() * sizeof(TreeNode); }

  void Reserve(uint64_t n) { nodes_.reserve(n); }

  /// Appends `child` as the LAST child of `parent` (O(#children); used by
  /// merge-based builders — batch builders link siblings directly).
  void AppendChildLast(uint32_t parent, uint32_t child) {
    uint32_t c = nodes_[parent].first_child;
    if (c == kNilNode) {
      nodes_[parent].first_child = child;
      return;
    }
    while (nodes_[c].next_sibling != kNilNode) c = nodes_[c].next_sibling;
    nodes_[c].next_sibling = child;
  }

  /// Number of children of `u` (O(#children)).
  uint32_t CountChildren(uint32_t u) const {
    uint32_t n = 0;
    for (uint32_t c = nodes_[u].first_child; c != kNilNode;
         c = nodes_[c].next_sibling) {
      ++n;
    }
    return n;
  }

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::vector<TreeNode>& mutable_nodes() { return nodes_; }

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace era

#endif  // ERA_SUFFIXTREE_TREE_BUFFER_H_
