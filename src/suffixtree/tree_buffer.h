// Append-only node arena for one sub-tree (builder side) and the immutable
// counted layout served at query time, plus the conversions between them.

#ifndef ERA_SUFFIXTREE_TREE_BUFFER_H_
#define ERA_SUFFIXTREE_TREE_BUFFER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "suffixtree/node.h"

namespace era {

/// Growable array of TreeNodes. Node 0 is always the root. The buffer only
/// provides storage and navigation; builders maintain the sibling ordering
/// invariant (lexicographic by first edge symbol).
class TreeBuffer {
 public:
  TreeBuffer() { nodes_.emplace_back(); }

  /// Appends a fresh node, returning its index.
  uint32_t AddNode() {
    nodes_.emplace_back();
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  TreeNode& node(uint32_t i) { return nodes_[i]; }
  const TreeNode& node(uint32_t i) const { return nodes_[i]; }

  uint32_t size() const { return static_cast<uint32_t>(nodes_.size()); }
  uint64_t MemoryBytes() const { return nodes_.size() * sizeof(TreeNode); }

  void Reserve(uint64_t n) { nodes_.reserve(n); }

  /// Appends `child` as the LAST child of `parent` (O(#children); used by
  /// merge-based builders — batch builders link siblings directly).
  void AppendChildLast(uint32_t parent, uint32_t child) {
    uint32_t c = nodes_[parent].first_child;
    if (c == kNilNode) {
      nodes_[parent].first_child = child;
      return;
    }
    while (nodes_[c].next_sibling != kNilNode) c = nodes_[c].next_sibling;
    nodes_[c].next_sibling = child;
  }

  /// Number of children of `u` (O(#children)).
  uint32_t CountChildren(uint32_t u) const {
    uint32_t n = 0;
    for (uint32_t c = nodes_[u].first_child; c != kNilNode;
         c = nodes_[c].next_sibling) {
      ++n;
    }
    return n;
  }

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::vector<TreeNode>& mutable_nodes() { return nodes_; }

 private:
  std::vector<TreeNode> nodes_;
};

/// Flat array of CountedNodes in the format-v2 layout (see node.h). Node 0
/// is the root. Immutable once built; this is the representation every
/// query-path consumer receives from TreeIndex::OpenSubTree, whether the
/// file on disk was v1 (converted at load) or v2 (read verbatim).
class CountedTree {
 public:
  const CountedNode& node(uint32_t i) const { return nodes_[i]; }

  uint32_t size() const { return static_cast<uint32_t>(nodes_.size()); }
  uint64_t MemoryBytes() const { return nodes_.size() * sizeof(CountedNode); }
  /// Total suffixes indexed by this sub-tree.
  uint64_t LeafCount() const {
    return nodes_.empty() ? 0 : nodes_[0].LeafCount();
  }

  const std::vector<CountedNode>& nodes() const { return nodes_; }
  std::vector<CountedNode>& mutable_nodes() { return nodes_; }

 private:
  std::vector<CountedNode> nodes_;
};

/// Converts a builder-side linked tree into the counted layout: DFS node
/// order with per-node contiguous child blocks (sibling order — which the
/// builders keep lexicographic — is preserved, so the blocks are sorted by
/// first symbol) and subtree leaf counts filled in. Fails with Corruption if
/// the linked structure is not a tree rooted at node 0 (cycle, orphan, or a
/// childless internal node).
StatusOr<CountedTree> BuildCountedTree(const TreeBuffer& tree);

/// Rebuilds a linked TreeBuffer from a counted tree (slot i maps to node i;
/// child blocks become first_child/next_sibling chains). Used to hand v2
/// files to consumers that still operate on the linked form, e.g. the
/// TRELLIS merge phase.
StatusOr<TreeBuffer> LinkedFromCounted(const CountedTree& tree);

/// Full structural check of a counted node array: root has no incoming edge,
/// child blocks are in bounds and strictly after their parent (traversals
/// strictly increase slot indices), stored subtree leaf counts aggregate
/// correctly, every node is reachable exactly once, and the canonical DFS
/// block layout holds — each internal node's strict descendants occupy
/// exactly [children_begin, children_begin + subtree_node_count - 1), which
/// is the invariant the linear descendant scan in CollectLeaves relies on.
/// Run by the serializer on every v2 load and by the validator.
Status ValidateCountedLayout(const CountedTree& tree);

}  // namespace era

#endif  // ERA_SUFFIXTREE_TREE_BUFFER_H_
