#include "suffixtree/compressed_tree.h"

#include <algorithm>
#include <cstring>

#include "common/query_context.h"

namespace era {

namespace {

/// Leaf-stream restart block size: one absolute varint every this many
/// values. 64 keeps a bounded-Locate seek to at most 63 skipped varints
/// while costing one uint64 restart slot per 64 leaves.
constexpr uint32_t kLeafRestartInterval = 64;

/// Cancellation/deadline poll period inside decode loops.
constexpr uint64_t kCtxCheckStride = 4096;

uint64_t ReadRestart(const std::string& blob, uint64_t restarts_off,
                     uint64_t block) {
  uint64_t v;
  std::memcpy(&v, blob.data() + restarts_off + block * sizeof(uint64_t),
              sizeof(v));
  return v;
}

}  // namespace

std::string CompressedSubTree::EncodePayload(const CountedTree& tree) {
  const uint32_t n = tree.size();
  PackedHeader h;
  h.leaf_restart_interval = kLeafRestartInterval;

  // Pass 1: per-field maxima, leaf ranks, and the leaf-id stream source.
  std::vector<uint64_t> leaf_prefix(n + 1, 0);  // leaf slots before slot i
  std::vector<uint64_t> leaves_by_rank;
  for (uint32_t i = 0; i < n; ++i) {
    const CountedNode& u = tree.node(i);
    leaf_prefix[i + 1] = leaf_prefix[i] + (u.IsLeaf() ? 1 : 0);
    if (u.IsLeaf()) leaves_by_rank.push_back(u.leaf_id());
    if (u.edge_start > h.max_edge_start) h.max_edge_start = u.edge_start;
    if (u.edge_len > h.max_edge_len) h.max_edge_len = u.edge_len;
    if (u.LeafCount() > h.max_count) h.max_count = u.LeafCount();
    if (u.children_begin > h.max_children_begin) {
      h.max_children_begin = u.children_begin;
    }
    if (u.num_children > h.max_num_children) {
      h.max_num_children = u.num_children;
    }
  }
  h.leaf_count = leaf_prefix[n];
  for (uint32_t i = 0; i < n; ++i) {
    const CountedNode& u = tree.node(i);
    const uint64_t ref =
        u.IsLeaf() ? leaf_prefix[i] : leaf_prefix[u.children_begin];
    if (ref > h.max_leaf_ref) h.max_leaf_ref = ref;
  }
  h.w_edge_start = static_cast<uint8_t>(BitWidth(h.max_edge_start));
  h.w_edge_len = static_cast<uint8_t>(BitWidth(h.max_edge_len));
  h.w_count = static_cast<uint8_t>(BitWidth(h.max_count));
  h.w_leaf_ref = static_cast<uint8_t>(BitWidth(h.max_leaf_ref));
  h.w_children_begin = static_cast<uint8_t>(BitWidth(h.max_children_begin));
  h.w_num_children = static_cast<uint8_t>(BitWidth(h.max_num_children));

  // Pass 2: bit-pack the records.
  BitWriter records;
  for (uint32_t i = 0; i < n; ++i) {
    const CountedNode& u = tree.node(i);
    const uint64_t ref =
        u.IsLeaf() ? leaf_prefix[i] : leaf_prefix[u.children_begin];
    records.Put(u.edge_start, h.w_edge_start);
    records.Put(u.edge_len, h.w_edge_len);
    records.Put(u.LeafCount(), h.w_count);
    records.Put(ref, h.w_leaf_ref);
    records.Put(u.children_begin, h.w_children_begin);
    records.Put(u.num_children, h.w_num_children);
  }
  records.Finish();

  // Pass 3: restart array + delta/varint leaf stream in slot order.
  std::string leaf_stream;
  std::vector<uint64_t> restarts;
  uint64_t prev = 0;
  for (uint64_t r = 0; r < leaves_by_rank.size(); ++r) {
    const uint64_t v = leaves_by_rank[r];
    if (r % kLeafRestartInterval == 0) {
      restarts.push_back(leaf_stream.size());
      PutVarint64(&leaf_stream, v);
    } else {
      PutVarint64(&leaf_stream,
                  ZigZagEncode(static_cast<int64_t>(v - prev)));
    }
    prev = v;
  }
  h.num_restarts = static_cast<uint32_t>(restarts.size());
  h.leaf_stream_bytes = leaf_stream.size();

  std::string payload;
  payload.reserve(sizeof(PackedHeader) + records.bytes().size() +
                  restarts.size() * sizeof(uint64_t) + leaf_stream.size());
  payload.append(reinterpret_cast<const char*>(&h), sizeof(h));
  payload.append(records.bytes());
  for (uint64_t off : restarts) {
    payload.append(reinterpret_cast<const char*>(&off), sizeof(off));
  }
  payload.append(leaf_stream);
  return payload;
}

StatusOr<CompressedSubTree> CompressedSubTree::FromPayload(
    std::string payload, uint64_t node_count) {
  if (payload.size() < sizeof(PackedHeader)) {
    return Status::Corruption("packed subtree payload shorter than header");
  }
  PackedHeader h;
  std::memcpy(&h, payload.data(), sizeof(h));

  if (node_count == 0 || node_count > 0xFFFFFFFFull) {
    return Status::Corruption("packed subtree node count out of range");
  }
  if (h.leaf_count == 0 || h.leaf_count > node_count) {
    return Status::Corruption("packed subtree leaf count out of range");
  }
  if (h.w_edge_start > 64 || h.w_count > 64 || h.w_leaf_ref > 64 ||
      h.w_edge_len > 32 || h.w_children_begin > 32 || h.w_num_children > 32) {
    return Status::Corruption("packed field width exceeds field size");
  }
  // The width rule is part of the format: widths must be exactly minimal for
  // the recorded maxima (and the maxima themselves are re-derived below).
  if (h.w_edge_start != BitWidth(h.max_edge_start) ||
      h.w_edge_len != BitWidth(h.max_edge_len) ||
      h.w_count != BitWidth(h.max_count) ||
      h.w_leaf_ref != BitWidth(h.max_leaf_ref) ||
      h.w_children_begin != BitWidth(h.max_children_begin) ||
      h.w_num_children != BitWidth(h.max_num_children)) {
    return Status::Corruption("packed field width is not width-minimal");
  }
  if (h.leaf_restart_interval == 0 ||
      h.leaf_restart_interval > (1u << 20)) {
    return Status::Corruption("packed leaf restart interval out of range");
  }
  const uint64_t expected_restarts =
      (h.leaf_count + h.leaf_restart_interval - 1) / h.leaf_restart_interval;
  if (h.num_restarts != expected_restarts) {
    return Status::Corruption("packed restart count mismatch");
  }

  const uint32_t record_bits = h.w_edge_start + h.w_edge_len + h.w_count +
                               h.w_leaf_ref + h.w_children_begin +
                               h.w_num_children;
  const uint64_t record_bytes = (node_count * record_bits + 7) / 8;
  const uint64_t expected_size = sizeof(PackedHeader) + record_bytes +
                                 h.num_restarts * sizeof(uint64_t) +
                                 h.leaf_stream_bytes;
  if (payload.size() != expected_size) {
    return Status::Corruption("packed subtree payload size mismatch");
  }

  CompressedSubTree t;
  t.payload_bytes_ = payload.size();
  t.blob_ = std::move(payload);
  t.blob_.append(kBitReaderPadBytes, '\0');
  t.header_ = h;
  t.node_count_ = static_cast<uint32_t>(node_count);
  t.record_bits_ = record_bits;
  t.records_off_ = sizeof(PackedHeader);
  t.restarts_off_ = t.records_off_ + record_bytes;
  t.leaves_off_ = t.restarts_off_ + h.num_restarts * sizeof(uint64_t);

  // Structural pass 1 (forward): field ranges, leaf ranks, recorded maxima.
  const uint32_t n = t.node_count_;
  std::vector<NodeView> nodes(n);
  std::vector<uint64_t> leaf_prefix(n + 1, 0);
  PackedHeader actual;  // re-derived maxima
  uint64_t leaf_rank = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const NodeView v = t.node(i);
    nodes[i] = v;
    leaf_prefix[i + 1] = leaf_prefix[i] + (v.IsLeaf() ? 1 : 0);
    if (v.IsLeaf()) {
      if (v.count != 1) {
        return Status::Corruption("packed leaf stores a subtree count != 1");
      }
      if (v.leaf_ref != leaf_rank) {
        return Status::Corruption("packed leaf rank out of sequence");
      }
      ++leaf_rank;
    } else {
      if (v.children_begin <= i || v.children_begin > n ||
          n - v.children_begin < v.num_children) {
        return Status::Corruption("counted child block out of bounds");
      }
      if (v.count == 0) {
        return Status::Corruption("packed internal node with zero count");
      }
    }
    if (v.edge_start > actual.max_edge_start) {
      actual.max_edge_start = v.edge_start;
    }
    if (v.edge_len > actual.max_edge_len) actual.max_edge_len = v.edge_len;
    if (v.count > actual.max_count) actual.max_count = v.count;
    if (v.leaf_ref > actual.max_leaf_ref) actual.max_leaf_ref = v.leaf_ref;
    if (v.children_begin > actual.max_children_begin) {
      actual.max_children_begin = v.children_begin;
    }
    if (v.num_children > actual.max_num_children) {
      actual.max_num_children = v.num_children;
    }
  }
  if (leaf_rank != h.leaf_count) {
    return Status::Corruption("packed leaf count does not match leaf slots");
  }
  if (actual.max_edge_start != h.max_edge_start ||
      actual.max_edge_len != h.max_edge_len ||
      actual.max_count != h.max_count ||
      actual.max_leaf_ref != h.max_leaf_ref ||
      actual.max_children_begin != h.max_children_begin ||
      actual.max_num_children != h.max_num_children) {
    return Status::Corruption("packed field maxima do not match records");
  }
  if (nodes[0].edge_len != 0) {
    return Status::Corruption("counted root has an incoming edge");
  }
  for (uint32_t i = 0; i < n; ++i) {
    const NodeView& v = nodes[i];
    if (!v.IsLeaf() && v.leaf_ref != leaf_prefix[v.children_begin]) {
      return Status::Corruption("packed leaf reference is inconsistent");
    }
  }

  // Structural pass 2 (reverse): the canonical counted DFS layout — same
  // sweep as ValidateCountedLayout, over the packed records.
  std::vector<uint64_t> span(n);
  for (uint64_t i = n; i-- > 0;) {
    const NodeView& u = nodes[i];
    if (u.IsLeaf()) {
      span[i] = 1;
      continue;
    }
    uint64_t subtree_nodes = 1;
    uint64_t leaves = 0;
    for (uint32_t c = 0; c < u.num_children; ++c) {
      subtree_nodes += span[u.children_begin + c];
      leaves += nodes[u.children_begin + c].count;
    }
    if (leaves != u.count) {
      return Status::Corruption("inconsistent subtree leaf count");
    }
    span[i] = subtree_nodes;
    uint64_t next = u.children_begin + u.num_children;
    for (uint32_t c = 0; c < u.num_children; ++c) {
      const NodeView& child = nodes[u.children_begin + c];
      if (child.IsLeaf()) continue;
      if (child.children_begin != next) {
        return Status::Corruption("descendant blocks are not contiguous");
      }
      next += span[u.children_begin + c] - 1;
    }
  }
  if (span[0] != n) {
    return Status::Corruption("unreachable nodes in counted tree");
  }

  // Leaf-stream pass: decode exactly leaf_count values, checking every
  // restart offset against the actual block boundary and consuming the
  // stream exactly.
  const char* stream = t.blob_.data() + t.leaves_off_;
  std::size_t pos = 0;
  for (uint64_t r = 0; r < h.leaf_count; ++r) {
    uint64_t raw;
    if (r % h.leaf_restart_interval == 0) {
      const uint64_t block = r / h.leaf_restart_interval;
      if (ReadRestart(t.blob_, t.restarts_off_, block) != pos) {
        return Status::Corruption("leaf stream restart offset mismatch");
      }
    }
    if (!GetVarint64(stream, h.leaf_stream_bytes, &pos, &raw)) {
      return Status::Corruption("truncated or malformed leaf stream varint");
    }
  }
  if (pos != h.leaf_stream_bytes) {
    return Status::Corruption("trailing bytes in leaf stream");
  }

  return t;
}

NodeView CompressedSubTree::node(uint32_t i) const {
  const BitReader records(blob_.data() + records_off_,
                          blob_.size() - records_off_);
  uint64_t bit = static_cast<uint64_t>(i) * record_bits_;
  NodeView v;
  v.edge_start = records.Get(bit, header_.w_edge_start);
  bit += header_.w_edge_start;
  v.edge_len = static_cast<uint32_t>(records.Get(bit, header_.w_edge_len));
  bit += header_.w_edge_len;
  v.count = records.Get(bit, header_.w_count);
  bit += header_.w_count;
  v.leaf_ref = records.Get(bit, header_.w_leaf_ref);
  bit += header_.w_leaf_ref;
  v.children_begin =
      static_cast<uint32_t>(records.Get(bit, header_.w_children_begin));
  bit += header_.w_children_begin;
  v.num_children =
      static_cast<uint32_t>(records.Get(bit, header_.w_num_children));
  return v;
}

uint64_t CompressedSubTree::LeafId(uint64_t rank) const {
  const char* stream = blob_.data() + leaves_off_;
  const uint64_t block = rank / header_.leaf_restart_interval;
  std::size_t pos = ReadRestart(blob_, restarts_off_, block);
  uint64_t v = 0;
  GetVarint64(stream, header_.leaf_stream_bytes, &pos, &v);
  for (uint64_t r = block * header_.leaf_restart_interval; r < rank; ++r) {
    uint64_t raw = 0;
    GetVarint64(stream, header_.leaf_stream_bytes, &pos, &raw);
    v = static_cast<uint64_t>(static_cast<int64_t>(v) + ZigZagDecode(raw));
  }
  return v;
}

Status CompressedSubTree::DecodeLeafRange(uint64_t rank_begin, uint64_t count,
                                          const QueryContext* ctx,
                                          std::size_t limit,
                                          std::vector<uint64_t>* out) const {
  if (count == 0 || limit == 0) return Status::OK();
  const uint64_t rank_end = rank_begin + count;
  const uint32_t interval = header_.leaf_restart_interval;
  const char* stream = blob_.data() + leaves_off_;
  const uint64_t first_block = rank_begin / interval;
  std::size_t pos = ReadRestart(blob_, restarts_off_, first_block);
  uint64_t v = 0;
  std::size_t appended = 0;
  for (uint64_t r = first_block * interval; r < rank_end; ++r) {
    uint64_t raw = 0;
    GetVarint64(stream, header_.leaf_stream_bytes, &pos, &raw);
    if (r % interval == 0) {
      v = raw;  // block-leading absolute value
    } else {
      v = static_cast<uint64_t>(static_cast<int64_t>(v) + ZigZagDecode(raw));
    }
    if (r >= rank_begin) {
      out->push_back(v);
      if (++appended >= limit) break;
    }
    if (ctx != nullptr && (r % kCtxCheckStride) == kCtxCheckStride - 1) {
      ERA_RETURN_NOT_OK(ctx->Check());
    }
  }
  return Status::OK();
}

StatusOr<CountedTree> CompressedSubTree::Inflate() const {
  std::vector<uint64_t> leaves;
  leaves.reserve(header_.leaf_count);
  ERA_RETURN_NOT_OK(DecodeLeafRange(0, header_.leaf_count, nullptr,
                                    static_cast<std::size_t>(-1), &leaves));
  CountedTree out;
  out.mutable_nodes().resize(node_count_);
  for (uint32_t i = 0; i < node_count_; ++i) {
    const NodeView v = node(i);
    CountedNode& dst = out.mutable_nodes()[i];
    dst.edge_start = v.edge_start;
    dst.edge_len = v.edge_len;
    dst.children_begin = v.children_begin;
    dst.num_children = v.num_children;
    dst.reserved = 0;
    dst.leaf_or_count = v.IsLeaf() ? leaves[v.leaf_ref] : v.count;
  }
  return out;
}

NodeView ServedSubTree::node(uint32_t i) const {
  if (compressed_) return packed_.node(i);
  const CountedNode& u = counted_.node(i);
  NodeView v;
  v.edge_start = u.edge_start;
  v.edge_len = u.edge_len;
  v.count = u.LeafCount();
  v.leaf_ref = u.IsLeaf() ? u.leaf_id() : 0;
  v.children_begin = u.children_begin;
  v.num_children = u.num_children;
  return v;
}

Status ServedSubTree::CollectLeaves(uint32_t slot, const QueryContext* ctx,
                                    std::size_t limit,
                                    std::vector<uint64_t>* out) const {
  if (limit == 0) return Status::OK();
  if (compressed_) {
    const NodeView v = packed_.node(slot);
    return packed_.DecodeLeafRange(v.leaf_ref, v.count, ctx, limit, out);
  }
  const CountedNode& u = counted_.node(slot);
  if (u.IsLeaf()) {
    out->push_back(u.leaf_id());
    return Status::OK();
  }
  // Canonical layout: the strict descendants of `slot` are one contiguous
  // slot range starting at children_begin, so scan forward until the
  // subtree's leaves are exhausted.
  uint64_t remaining = u.LeafCount();
  std::size_t appended = 0;
  for (uint32_t i = u.children_begin; remaining > 0 && i < counted_.size();
       ++i) {
    if (ctx != nullptr && (i % kCtxCheckStride) == 0) {
      ERA_RETURN_NOT_OK(ctx->Check());
    }
    const CountedNode& c = counted_.node(i);
    if (c.IsLeaf()) {
      out->push_back(c.leaf_id());
      --remaining;
      if (++appended >= limit) break;
    }
  }
  return Status::OK();
}

Status ServedSubTree::CollectLeafSlices(const std::vector<uint32_t>& slots,
                                        const QueryContext* ctx,
                                        std::vector<uint64_t>* buffer,
                                        std::vector<LeafSlice>* slices) const {
  slices->assign(slots.size(), LeafSlice{});
  if (slots.empty()) return Status::OK();

  if (compressed_) {
    // v3: each slot's leaves are the contiguous leaf-rank range
    // [leaf_ref, leaf_ref + count). Laminar ranges sorted by start are
    // either nested in the previous maximal run or start at/after its end,
    // so one DecodeLeafRange per maximal run covers everything and nested
    // requests alias into the run's decoded span.
    struct Req {
      uint64_t begin = 0;
      uint64_t count = 0;
      std::size_t idx = 0;
    };
    std::vector<Req> reqs(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const NodeView v = packed_.node(slots[i]);
      reqs[i] = Req{v.leaf_ref, v.count, i};
    }
    std::sort(reqs.begin(), reqs.end(), [](const Req& a, const Req& b) {
      if (a.begin != b.begin) return a.begin < b.begin;
      return a.count > b.count;  // outermost first on shared starts
    });
    uint64_t run_begin = 0;
    uint64_t run_end = 0;  // empty run sentinel: nothing nests in [0, 0)
    std::size_t run_base = 0;
    for (const Req& req : reqs) {
      const bool nested = run_end > run_begin && req.begin >= run_begin &&
                          req.begin + req.count <= run_end;
      if (!nested) {
        run_begin = req.begin;
        run_end = req.begin + req.count;
        run_base = buffer->size();
        ERA_RETURN_NOT_OK(packed_.DecodeLeafRange(
            req.begin, req.count, ctx, static_cast<std::size_t>(-1), buffer));
      }
      (*slices)[req.idx] =
          LeafSlice{run_base + static_cast<std::size_t>(req.begin - run_begin),
                    static_cast<std::size_t>(req.count)};
    }
    return Status::OK();
  }

  // Counted layout: a request's leaves are found by scanning forward from
  // scan_begin (children_begin for internal nodes, the slot itself for a
  // leaf) until its leaf budget is met. Requests sorted by scan_begin are
  // activated as one merged forward scan reaches them — a nested request's
  // leaves are a contiguous subrange of its ancestor's emission — and the
  // scan jumps over the gap between disjoint requests instead of walking it.
  struct Req {
    uint32_t scan_begin = 0;
    uint64_t budget = 0;
    std::size_t idx = 0;
  };
  std::vector<Req> reqs(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const CountedNode& u = counted_.node(slots[i]);
    reqs[i] = u.IsLeaf() ? Req{slots[i], 1, i}
                         : Req{u.children_begin, u.LeafCount(), i};
  }
  std::sort(reqs.begin(), reqs.end(), [](const Req& a, const Req& b) {
    if (a.scan_begin != b.scan_begin) return a.scan_begin < b.scan_begin;
    return a.budget > b.budget;  // outermost first on shared starts
  });
  std::size_t r = 0;
  uint64_t steps = 0;
  while (r < reqs.size()) {
    uint32_t pos = reqs[r].scan_begin;  // new maximal run starts here
    std::size_t need_end = buffer->size();
    while (true) {
      while (r < reqs.size() && reqs[r].scan_begin == pos) {
        (*slices)[reqs[r].idx] =
            LeafSlice{buffer->size(), static_cast<std::size_t>(reqs[r].budget)};
        const std::size_t end = buffer->size() +
                                static_cast<std::size_t>(reqs[r].budget);
        need_end = std::max(need_end, end);
        ++r;
      }
      if (buffer->size() >= need_end) break;  // run satisfied; skip the gap
      if (pos >= counted_.size()) {
        return Status::Corruption("leaf slices exceed sub-tree");
      }
      if (ctx != nullptr && (steps++ % kCtxCheckStride) == 0) {
        ERA_RETURN_NOT_OK(ctx->Check());
      }
      const CountedNode& c = counted_.node(pos);
      if (c.IsLeaf()) buffer->push_back(c.leaf_id());
      ++pos;
    }
  }
  return Status::OK();
}

StatusOr<CountedTree> ServedSubTree::Inflate() const {
  if (compressed_) return packed_.Inflate();
  CountedTree copy;
  copy.mutable_nodes() = counted_.nodes();
  return copy;
}

}  // namespace era
