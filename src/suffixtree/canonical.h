// Canonical form of a suffix (sub-)tree.
//
// The pair (SA, LCP) — leaf suffixes in DFS order plus the string depth of
// the LCA of each adjacent pair — uniquely determines the shape of a suffix
// tree. Tests compare builders to each other and to the SA-IS oracle through
// this form, independent of node layout.

#ifndef ERA_SUFFIXTREE_CANONICAL_H_
#define ERA_SUFFIXTREE_CANONICAL_H_

#include <cstdint>
#include <vector>

#include "suffixtree/compressed_tree.h"
#include "suffixtree/tree_buffer.h"

namespace era {

/// Suffix order plus adjacent-LCA depths. For a sub-tree of prefix p, lcp[i]
/// is an absolute string depth (>= |p| typically, except across the root).
struct SaLcp {
  std::vector<uint64_t> sa;
  std::vector<uint64_t> lcp;  // lcp.size() == sa.size() - 1 (empty if <=1 leaf)

  bool operator==(const SaLcp& other) const = default;
};

/// Extracts (SA, LCP) from a sub-tree by iterative DFS. Assumes children are
/// lexicographically ordered (all builders guarantee this; the validator
/// checks it).
SaLcp TreeToSaLcp(const TreeBuffer& tree);
SaLcp TreeToSaLcp(const CountedTree& tree);
/// Serving-form overload: walks the NodeView cursor API directly, so it works
/// on both counted and compressed (format v3) trees without inflating.
SaLcp TreeToSaLcp(const ServedSubTree& tree);

/// Leaf count of the tree (number of suffixes indexed). Both overloads scan
/// the node array (the CountedTree one deliberately ignores the stored
/// subtree counts so it can cross-check them).
uint64_t CountLeaves(const TreeBuffer& tree);
uint64_t CountLeaves(const CountedTree& tree);

}  // namespace era

#endif  // ERA_SUFFIXTREE_CANONICAL_H_
