// Structural and semantic validation of sub-trees and whole indexes.
//
// Used by tests (including failure injection) and available to applications
// as a post-construction integrity check. Validation needs the text in
// memory, so it is intended for test-scale inputs.

#ifndef ERA_SUFFIXTREE_VALIDATOR_H_
#define ERA_SUFFIXTREE_VALIDATOR_H_

#include <string>

#include "common/status.h"
#include "io/env.h"
#include "suffixtree/tree_buffer.h"
#include "suffixtree/tree_index.h"

namespace era {

/// Checks one sub-tree against the text:
///  * indices in range, exactly one visit per node (no cycles / orphans)
///  * every non-root internal node has >= 2 children; the sub-tree root has
///    >= 1 (its incoming path is the partition prefix)
///  * children are in strictly increasing first-symbol order
///  * each leaf's root-to-leaf label equals its suffix and starts with
///    `prefix`
///  * leaves appear in lexicographic order
Status ValidateSubTree(const TreeBuffer& tree, const std::string& text,
                       const std::string& prefix);

/// Counted-layout overload: converts to the linked form and applies every
/// check above, then verifies the counted-only invariants — stored subtree
/// leaf counts, child blocks strictly after their parent, and the DFS block
/// layout (the linear descendant scan yields exactly the DFS leaf set).
Status ValidateSubTree(const CountedTree& tree, const std::string& text,
                       const std::string& prefix);

/// Serving-form overload. For compressed (format v3) trees the bit-packed
/// invariants — header widths minimal for the recorded maxima, leaf-stream
/// restart offsets and delta decode, stored subtree counts — were already
/// enforced when the payload was decoded; this additionally inflates to the
/// counted form, runs every check above on it, and cross-checks that the
/// compressed cursor walk yields the identical canonical (SA, LCP).
Status ValidateSubTree(const ServedSubTree& tree, const std::string& text,
                       const std::string& prefix);

/// Validates a complete index: every sub-tree (loaded from `env`), plus
/// coverage — each suffix of `text` appears in exactly one sub-tree or trie
/// leaf, and the global leaf order is lexicographic.
Status ValidateIndex(Env* env, const TreeIndex& index,
                     const std::string& text);

}  // namespace era

#endif  // ERA_SUFFIXTREE_VALIDATOR_H_
