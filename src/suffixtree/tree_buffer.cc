#include "suffixtree/tree_buffer.h"

#include <utility>

namespace era {

StatusOr<CountedTree> BuildCountedTree(const TreeBuffer& tree) {
  const uint32_t n = tree.size();
  if (n == 0) return Status::Corruption("cannot convert an empty tree");

  CountedTree out;
  std::vector<CountedNode>& nodes = out.mutable_nodes();
  nodes.resize(n);

  auto copy_edge = [&](uint32_t old_id, uint32_t slot) {
    const TreeNode& src = tree.node(old_id);
    CountedNode& dst = nodes[slot];
    dst.edge_start = src.edge_start;
    dst.edge_len = src.edge_len;
    // Valid for leaves; overwritten with the subtree leaf count for internal
    // nodes by the reverse pass below.
    dst.leaf_or_count = src.leaf_id;
  };

  // DFS placement: popping a node assigns its children one contiguous block
  // at the tail, then descends into the first child, so the strict
  // descendants of every node end up in one contiguous range starting at its
  // children_begin (the layout contract of node.h).
  std::vector<std::pair<uint32_t, uint32_t>> stack;  // (old id, slot)
  std::vector<char> seen(n, 0);
  std::vector<uint32_t> kids;
  copy_edge(0, 0);
  seen[0] = 1;
  stack.push_back({0, 0});
  uint32_t next_slot = 1;
  while (!stack.empty()) {
    auto [u_old, u_slot] = stack.back();
    stack.pop_back();
    kids.clear();
    for (uint32_t c = tree.node(u_old).first_child; c != kNilNode;
         c = tree.node(c).next_sibling) {
      if (c >= n) return Status::Corruption("child id out of range");
      if (seen[c]) return Status::Corruption("linked structure is not a tree");
      seen[c] = 1;
      kids.push_back(c);
    }
    CountedNode& u = nodes[u_slot];
    if (kids.empty()) {
      if (!tree.node(u_old).IsLeaf()) {
        // Includes the degenerate root-only tree: a sub-tree that indexes no
        // suffix is never written, so fail loudly instead of encoding it.
        return Status::Corruption("childless internal node");
      }
      continue;
    }
    u.num_children = static_cast<uint32_t>(kids.size());
    u.children_begin = next_slot;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      copy_edge(kids[i], next_slot + static_cast<uint32_t>(i));
    }
    uint32_t block_begin = next_slot;
    next_slot += static_cast<uint32_t>(kids.size());
    for (std::size_t i = kids.size(); i-- > 0;) {
      stack.push_back({kids[i], block_begin + static_cast<uint32_t>(i)});
    }
  }
  if (next_slot != n) {
    return Status::Corruption("orphan nodes in linked tree");
  }

  // Children always live at higher slots than their parent, so one reverse
  // pass resolves every subtree leaf count.
  for (uint32_t i = n; i-- > 0;) {
    CountedNode& u = nodes[i];
    if (u.IsLeaf()) continue;
    uint64_t total = 0;
    for (uint32_t c = 0; c < u.num_children; ++c) {
      total += nodes[u.children_begin + c].LeafCount();
    }
    u.leaf_or_count = total;
  }
  return out;
}

Status ValidateCountedLayout(const CountedTree& tree) {
  const uint64_t n = tree.size();
  if (n == 0) return Status::Corruption("empty counted tree");
  if (tree.node(0).edge_len != 0) {
    return Status::Corruption("counted root has an incoming edge");
  }
  // Reverse pass: children always sit at higher slots, so subtree node and
  // leaf totals resolve bottom-up in one sweep.
  std::vector<uint64_t> span(n);  // nodes in the subtree, self included
  for (uint64_t i = n; i-- > 0;) {
    const CountedNode& u = tree.node(i);
    if (u.IsLeaf()) {
      span[i] = 1;
      continue;
    }
    if (u.children_begin <= i || u.children_begin > n ||
        n - u.children_begin < u.num_children) {
      return Status::Corruption("counted child block out of bounds");
    }
    uint64_t nodes = 1;
    uint64_t leaves = 0;
    for (uint32_t c = 0; c < u.num_children; ++c) {
      const CountedNode& child = tree.node(u.children_begin + c);
      nodes += span[u.children_begin + c];
      leaves += child.LeafCount();
    }
    if (leaves != u.leaf_or_count) {
      return Status::Corruption("inconsistent subtree leaf count");
    }
    span[i] = nodes;
    // Canonical DFS block layout: after this node's child block, the strict
    // descendants of each internal child follow consecutively in child
    // order. Without this, two subtrees' slot ranges could interleave and a
    // linear descendant scan would surface another subtree's leaves.
    uint64_t next = u.children_begin + u.num_children;
    for (uint32_t c = 0; c < u.num_children; ++c) {
      const CountedNode& child = tree.node(u.children_begin + c);
      if (child.IsLeaf()) continue;
      if (child.children_begin != next) {
        return Status::Corruption("descendant blocks are not contiguous");
      }
      next += span[u.children_begin + c] - 1;
    }
  }
  if (span[0] != n) {
    return Status::Corruption("unreachable nodes in counted tree");
  }
  return Status::OK();
}

StatusOr<TreeBuffer> LinkedFromCounted(const CountedTree& tree) {
  const uint32_t n = tree.size();
  if (n == 0) return Status::Corruption("cannot convert an empty tree");
  TreeBuffer out;
  out.Reserve(n);
  for (uint32_t i = 1; i < n; ++i) out.AddNode();
  for (uint32_t i = 0; i < n; ++i) {
    const CountedNode& src = tree.node(i);
    TreeNode& dst = out.node(i);
    dst.edge_start = src.edge_start;
    dst.edge_len = src.edge_len;
    dst.leaf_id = src.IsLeaf() ? src.leaf_id() : kNoLeaf;
    if (src.IsLeaf()) continue;
    if (src.children_begin <= i ||
        src.children_begin + src.num_children > n ||
        src.children_begin + src.num_children < src.children_begin) {
      return Status::Corruption("counted child block out of range");
    }
    dst.first_child = src.children_begin;
    for (uint32_t c = 0; c + 1 < src.num_children; ++c) {
      out.node(src.children_begin + c).next_sibling =
          src.children_begin + c + 1;
    }
  }
  return out;
}

}  // namespace era
