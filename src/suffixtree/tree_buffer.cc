// TreeBuffer is header-only; this translation unit anchors the header for
// build hygiene (include-what-you-use checks compile it standalone).
#include "suffixtree/tree_buffer.h"
