#include "suffixtree/validator.h"

#include <algorithm>
#include <vector>

#include "suffixtree/canonical.h"

namespace era {

namespace {

/// Compares suffixes `a` and `b` of `text` lexicographically.
bool SuffixLess(const std::string& text, uint64_t a, uint64_t b) {
  return text.compare(a, std::string::npos, text, b, std::string::npos) < 0;
}

}  // namespace

Status ValidateSubTree(const TreeBuffer& tree, const std::string& text,
                       const std::string& prefix) {
  if (tree.size() == 0) return Status::Corruption("empty tree");
  const uint64_t n = text.size();

  std::vector<char> visited(tree.size(), 0);
  struct Frame {
    uint32_t node;
    uint64_t depth;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0});
  visited[0] = 1;
  if (tree.node(0).edge_len != 0) {
    return Status::Corruption("root must have no incoming edge");
  }

  std::vector<uint64_t> leaves_in_order;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const TreeNode& node = tree.node(f.node);

    uint32_t num_children = 0;
    char prev_symbol = '\0';
    bool first = true;
    // Push children in reverse order so DFS emits them in forward order.
    std::vector<uint32_t> children;
    for (uint32_t c = node.first_child; c != kNilNode;
         c = tree.node(c).next_sibling) {
      if (c >= tree.size()) return Status::Corruption("child out of range");
      if (visited[c]) return Status::Corruption("node visited twice");
      visited[c] = 1;
      const TreeNode& child = tree.node(c);
      if (child.edge_len == 0) {
        return Status::Corruption("non-root node with empty edge");
      }
      if (child.edge_start + child.edge_len > n) {
        return Status::Corruption("edge label out of text bounds");
      }
      char symbol = text[child.edge_start];
      if (!first && symbol <= prev_symbol) {
        return Status::Corruption("children not in strict symbol order");
      }
      prev_symbol = symbol;
      first = false;
      ++num_children;
      children.push_back(c);
    }

    if (node.IsLeaf()) {
      if (num_children != 0) {
        return Status::Corruption("leaf with children");
      }
      if (node.leaf_id >= n) return Status::Corruption("leaf id out of range");
      // Root-to-leaf path must spell the suffix: depth symbols consumed, and
      // the edge labels must match the suffix text. We verify by checking
      // that the total depth equals the suffix length and each edge label
      // equals the corresponding slice of the suffix (done incrementally via
      // edge_start bookkeeping below).
      if (f.depth != n - node.leaf_id) {
        return Status::Corruption("leaf depth != suffix length");
      }
      leaves_in_order.push_back(node.leaf_id);
    } else {
      if (f.node != 0 && num_children < 2) {
        return Status::Corruption("internal node with < 2 children");
      }
      if (f.node == 0 && num_children < 1) {
        return Status::Corruption("root with no children");
      }
    }

    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, f.depth + tree.node(*it).edge_len});
    }
  }

  for (uint32_t i = 0; i < tree.size(); ++i) {
    if (!visited[i]) return Status::Corruption("orphan node");
  }

  // Each leaf's path label must equal its suffix, and leaves must be sorted.
  // Because edges reference the text, path-label equality reduces to: for
  // each leaf, walking down from the root, each edge label must match the
  // suffix slice at the appropriate offset. We re-walk per leaf (test-scale).
  for (uint64_t leaf_pos : leaves_in_order) {
    uint64_t suffix_len = n - leaf_pos;
    uint64_t depth = 0;
    uint32_t cur = 0;
    while (true) {
      const TreeNode& node = tree.node(cur);
      if (node.IsLeaf()) break;
      bool advanced = false;
      for (uint32_t c = node.first_child; c != kNilNode;
           c = tree.node(c).next_sibling) {
        const TreeNode& child = tree.node(c);
        if (text[child.edge_start] == text[leaf_pos + depth]) {
          if (text.compare(child.edge_start, child.edge_len, text,
                           leaf_pos + depth,
                           std::min<uint64_t>(child.edge_len,
                                              suffix_len - depth)) != 0) {
            return Status::Corruption("edge label does not match suffix");
          }
          depth += child.edge_len;
          cur = c;
          advanced = true;
          break;
        }
      }
      if (!advanced) return Status::Corruption("suffix not navigable");
      if (depth > suffix_len) {
        return Status::Corruption("path deeper than suffix");
      }
    }
    if (tree.node(cur).leaf_id != leaf_pos) {
      return Status::Corruption("navigation reached wrong leaf");
    }
  }

  for (std::size_t i = 0; i < leaves_in_order.size(); ++i) {
    uint64_t pos = leaves_in_order[i];
    if (text.compare(pos, prefix.size(), prefix) != 0) {
      return Status::Corruption("leaf suffix does not start with prefix");
    }
    if (i > 0 && !SuffixLess(text, leaves_in_order[i - 1], pos)) {
      return Status::Corruption("leaves not in lexicographic order");
    }
  }
  return Status::OK();
}

Status ValidateSubTree(const CountedTree& tree, const std::string& text,
                       const std::string& prefix) {
  // Counted-only invariants first (stored counts, acyclic child blocks,
  // canonical DFS descendant contiguity — the Locate scan's contract),
  // shared with the serializer's load-time check; then the full structural/
  // semantic suite over the identical node mapping in linked form.
  ERA_RETURN_NOT_OK(ValidateCountedLayout(tree));
  ERA_ASSIGN_OR_RETURN(TreeBuffer linked, LinkedFromCounted(tree));
  return ValidateSubTree(linked, text, prefix);
}

Status ValidateSubTree(const ServedSubTree& tree, const std::string& text,
                       const std::string& prefix) {
  ERA_ASSIGN_OR_RETURN(CountedTree counted, tree.Inflate());
  ERA_RETURN_NOT_OK(ValidateSubTree(counted, text, prefix));
  // The cursor walk over the serving form (bit-packed field decode + lazy
  // leaf-slot ranges for v3) must agree with the inflated counted layout.
  if (TreeToSaLcp(tree) != TreeToSaLcp(counted)) {
    return Status::Corruption(
        "compressed cursor walk disagrees with inflated tree");
  }
  return Status::OK();
}

Status ValidateIndex(Env* env, const TreeIndex& index,
                     const std::string& text) {
  if (index.text().length != text.size()) {
    return Status::Corruption("index text length mismatch");
  }

  std::vector<int32_t> subtree_ids;
  std::vector<uint64_t> terminal_leaves;
  index.trie().CollectInOrder(0, &subtree_ids, &terminal_leaves);
  if (subtree_ids.size() != index.subtrees().size()) {
    return Status::Corruption("trie references != manifest sub-tree count");
  }

  std::vector<char> covered(text.size(), 0);
  auto cover = [&](uint64_t pos) -> Status {
    if (pos >= text.size()) return Status::Corruption("position out of range");
    if (covered[pos]) {
      return Status::Corruption("suffix covered twice: " +
                                std::to_string(pos));
    }
    covered[pos] = 1;
    return Status::OK();
  };

  for (uint64_t pos : terminal_leaves) {
    ERA_RETURN_NOT_OK(cover(pos));
    // A terminal leaf for trie path p asserts text[pos..] == p + terminal;
    // verify the terminal indeed follows immediately.
    // (Path recovery from the trie is implicit; length check suffices
    // because coverage + per-subtree checks pin everything else down.)
  }

  for (int32_t id : subtree_ids) {
    const SubTreeEntry& entry = index.subtrees()[static_cast<uint32_t>(id)];
    ERA_ASSIGN_OR_RETURN(
        auto tree,
        index.OpenSubTree(env, static_cast<uint32_t>(id), nullptr));
    ERA_RETURN_NOT_OK(ValidateSubTree(*tree, text, entry.prefix));
    SaLcp canon = TreeToSaLcp(*tree);
    if (canon.sa.size() != entry.frequency) {
      return Status::Corruption("sub-tree frequency mismatch: " +
                                entry.prefix);
    }
    for (uint64_t pos : canon.sa) {
      ERA_RETURN_NOT_OK(cover(pos));
    }
  }

  for (std::size_t i = 0; i < covered.size(); ++i) {
    if (!covered[i]) {
      return Status::Corruption("suffix not covered: " + std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace era
